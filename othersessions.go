package fpgavirtio

import (
	"fmt"
	"time"

	"fpgavirtio/internal/drivers/virtioblk"
	"fpgavirtio/internal/drivers/virtioconsole"
	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/vdev"
)

// ConsoleSession is a booted VirtIO console testbed (the device type of
// the prior work the paper extends).
type ConsoleSession struct {
	s    *sim.Sim
	host *hostos.Host
	drv  *virtioconsole.Device
}

// OpenConsole boots a console session with echo user logic.
func OpenConsole(cfg Config) (*ConsoleSession, error) {
	if cfg.Faults != "" {
		return nil, fmt.Errorf("fpgavirtio: fault injection is not supported by console sessions")
	}
	s := sim.New()
	h := hostos.New(s, hostMemBytes, cfg.hostConfig(), cfg.Seed)
	vdev.NewConsole(s, h.RC, "fpga-vcon", vdev.ConsoleOptions{Link: cfg.Link.config()})
	cs := &ConsoleSession{s: s, host: h}
	if err := bootSession(s, h, func(p *sim.Proc, infos []*pcie.DeviceInfo) error {
		drv, err := virtioconsole.Probe(p, h, infos[0])
		if err != nil {
			return err
		}
		cs.drv = drv
		return nil
	}); err != nil {
		return nil, err
	}
	return cs, nil
}

// WriteRead sends bytes to the console device and waits for the echoed
// bytes, returning them with the observed round-trip time.
func (cs *ConsoleSession) WriteRead(data []byte) ([]byte, time.Duration, error) {
	var out []byte
	var rtt sim.Duration
	err := runApp(cs.s, cs.host, func(p *sim.Proc) error {
		t0 := cs.host.ClockGettime(p)
		if err := cs.drv.Write(p, data); err != nil {
			return err
		}
		got, err := cs.drv.Read(p)
		if err != nil {
			return err
		}
		t1 := cs.host.ClockGettime(p)
		out = got
		rtt = t1.Sub(t0)
		return nil
	})
	return out, toStd(rtt), err
}

// BlkSession is a booted VirtIO block-device testbed (the storage-
// accelerator use case).
type BlkSession struct {
	s    *sim.Sim
	host *hostos.Host
	dev  *vdev.BlkDevice
	drv  *virtioblk.Device
}

// BlkConfig configures a block session.
type BlkConfig struct {
	Config
	// CapacitySectors sizes the device (512-byte sectors; default 2048).
	CapacitySectors uint64
}

// OpenBlk boots a block-device session backed by card memory.
func OpenBlk(cfg BlkConfig) (*BlkSession, error) {
	if cfg.Faults != "" {
		return nil, fmt.Errorf("fpgavirtio: fault injection is not supported by block sessions")
	}
	s := sim.New()
	h := hostos.New(s, hostMemBytes, cfg.hostConfig(), cfg.Seed)
	dev := vdev.NewBlk(s, h.RC, "fpga-vblk", vdev.BlkOptions{
		Link:            cfg.Link.config(),
		CapacitySectors: cfg.CapacitySectors,
	})
	bs := &BlkSession{s: s, host: h, dev: dev}
	if err := bootSession(s, h, func(p *sim.Proc, infos []*pcie.DeviceInfo) error {
		drv, err := virtioblk.Probe(p, h, infos[0])
		if err != nil {
			return err
		}
		bs.drv = drv
		return nil
	}); err != nil {
		return nil, err
	}
	return bs, nil
}

// CapacitySectors reports the negotiated device capacity.
func (bs *BlkSession) CapacitySectors() uint64 { return bs.drv.CapacitySectors() }

// WriteSector writes one 512-byte sector and returns the operation time.
func (bs *BlkSession) WriteSector(sector uint64, data []byte) (time.Duration, error) {
	var rtt sim.Duration
	err := runApp(bs.s, bs.host, func(p *sim.Proc) error {
		t0 := bs.host.ClockGettime(p)
		if err := bs.drv.WriteSector(p, sector, data); err != nil {
			return err
		}
		rtt = bs.host.ClockGettime(p).Sub(t0)
		return nil
	})
	return toStd(rtt), err
}

// ReadSector reads one 512-byte sector and returns it with the
// operation time.
func (bs *BlkSession) ReadSector(sector uint64) ([]byte, time.Duration, error) {
	var out []byte
	var rtt sim.Duration
	err := runApp(bs.s, bs.host, func(p *sim.Proc) error {
		t0 := bs.host.ClockGettime(p)
		data, err := bs.drv.ReadSector(p, sector)
		if err != nil {
			return err
		}
		out = data
		rtt = bs.host.ClockGettime(p).Sub(t0)
		return nil
	})
	return out, toStd(rtt), err
}

// WriteSectors writes len(data)/512 consecutive sectors in one request.
func (bs *BlkSession) WriteSectors(sector uint64, data []byte) (time.Duration, error) {
	var rtt sim.Duration
	err := runApp(bs.s, bs.host, func(p *sim.Proc) error {
		t0 := bs.host.ClockGettime(p)
		if err := bs.drv.WriteSectors(p, sector, data); err != nil {
			return err
		}
		rtt = bs.host.ClockGettime(p).Sub(t0)
		return nil
	})
	return toStd(rtt), err
}

// ReadSectors reads count consecutive sectors in one request.
func (bs *BlkSession) ReadSectors(sector uint64, count int) ([]byte, time.Duration, error) {
	var out []byte
	var rtt sim.Duration
	err := runApp(bs.s, bs.host, func(p *sim.Proc) error {
		t0 := bs.host.ClockGettime(p)
		data, err := bs.drv.ReadSectors(p, sector, count)
		if err != nil {
			return err
		}
		out = data
		rtt = bs.host.ClockGettime(p).Sub(t0)
		return nil
	})
	return out, toStd(rtt), err
}

// Flush issues a flush barrier.
func (bs *BlkSession) Flush() error {
	return runApp(bs.s, bs.host, func(p *sim.Proc) error { return bs.drv.Flush(p) })
}

// ---- shared session plumbing -------------------------------------------

func bootSession(s *sim.Sim, h *hostos.Host, bind func(p *sim.Proc, infos []*pcie.DeviceInfo) error) error {
	var bootErr error
	booted := false
	s.Go("boot", func(p *sim.Proc) {
		defer s.Stop()
		infos := h.RC.Enumerate(p)
		if len(infos) == 0 {
			bootErr = fmt.Errorf("fpgavirtio: no devices enumerated")
			return
		}
		bootErr = bind(p, infos)
		booted = bootErr == nil
	})
	if err := s.Run(); err != nil {
		return err
	}
	if bootErr != nil {
		return bootErr
	}
	if !booted {
		return fmt.Errorf("fpgavirtio: session did not boot")
	}
	return nil
}

func runApp(s *sim.Sim, h *hostos.Host, fn func(p *sim.Proc) error) error {
	var opErr error
	done := false
	s.Go("app", func(p *sim.Proc) {
		defer s.Stop()
		opErr = fn(p)
		done = true
	})
	err := s.Run()
	publishSimStats(s, h.Metrics())
	if err != nil {
		return err
	}
	if !done {
		return fmt.Errorf("fpgavirtio: operation did not complete")
	}
	return opErr
}
