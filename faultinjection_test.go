package fpgavirtio

import (
	"reflect"
	"strings"
	"testing"

	"fpgavirtio/internal/telemetry"
)

// Fault-injection integration tests: every fault class the chaos soak
// leaves out gets a targeted run here, the recovery state machine is
// walked across ring configurations, and faulted runs must replay
// byte-identically — determinism is the contract that makes chaos
// results debuggable.

func metricValue(snaps []telemetry.MetricSnapshot, name string) float64 {
	for _, s := range snaps {
		if s.Name == name {
			return s.Value
		}
	}
	return 0
}

func faultedNetRun(t *testing.T, seed uint64, packets int, plan string, mutate func(*NetConfig)) ([]RTTSample, []telemetry.MetricSnapshot, *NetSession) {
	t.Helper()
	cfg := NetConfig{Config: Config{Seed: seed, Faults: plan}}
	if mutate != nil {
		mutate(&cfg)
	}
	ns, err := OpenNet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	samples := make([]RTTSample, 0, packets)
	err = ns.PingSeries(buf, packets, func(i int, s RTTSample) {
		samples = append(samples, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	return samples, ns.Registry().Snapshot(), ns
}

func faultedXDMARun(t *testing.T, seed uint64, packets int, plan string) ([]RTTSample, []telemetry.MetricSnapshot, *XDMASession) {
	t.Helper()
	xs, err := OpenXDMA(XDMAConfig{Config: Config{Seed: seed, Faults: plan}})
	if err != nil {
		t.Fatal(err)
	}
	// Non-zero payload so corrupted or dropped DMA data cannot collide
	// with a zeroed read-back buffer and pass the integrity check.
	buf := make([]byte, 256)
	for i := range buf {
		buf[i] = byte(i*7 + 3)
	}
	samples := make([]RTTSample, 0, packets)
	err = xs.RoundTripSeries(buf, packets, func(i int, s RTTSample) {
		samples = append(samples, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	return samples, xs.Registry().Snapshot(), xs
}

// ---- replay determinism under injection ---------------------------------

func TestReplayNetFaulted(t *testing.T) {
	const plan = "needsreset:every=80:count=3,irqdrop:p=0.005,cplpoison:every=300:count=2"
	s1, m1, ns := faultedNetRun(t, 42, 400, plan, nil)
	s2, m2, _ := faultedNetRun(t, 42, 400, plan, nil)
	requireSameSamples(t, s1, s2)
	requireSameMetrics(t, m1, m2)
	if ns.FaultEvents() == 0 {
		t.Fatal("plan armed but nothing injected — replay check is vacuous")
	}
	if got := ns.FaultPlan(); got != plan {
		t.Errorf("FaultPlan() = %q, want %q", got, plan)
	}
}

func TestReplayXDMAFaulted(t *testing.T) {
	const plan = "engineerr:every=70:count=3,irqdrop:p=0.005"
	s1, m1, xs := faultedXDMARun(t, 42, 400, plan)
	s2, m2, _ := faultedXDMARun(t, 42, 400, plan)
	requireSameSamples(t, s1, s2)
	requireSameMetrics(t, m1, m2)
	if xs.FaultEvents() == 0 {
		t.Fatal("plan armed but nothing injected — replay check is vacuous")
	}
}

// A session opened without a plan must not even register the fault and
// recovery instruments: the zero-fault path is byte-identical to a
// build without the faults package.
func TestZeroFaultPathRegistersNothing(t *testing.T) {
	ns, err := OpenNet(NetConfig{Config: Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ns.Ping(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if ns.FaultPlan() != "" || ns.FaultEvents() != 0 || ns.FaultSummary() != nil {
		t.Error("zero-fault session reports fault state")
	}
	for _, s := range ns.Registry().Snapshot() {
		if strings.HasPrefix(s.Name, "fault.") || strings.HasPrefix(s.Name, "recovery.") {
			t.Errorf("zero-fault session registered %q", s.Name)
		}
	}
}

// ---- recovery state machine across ring configurations ------------------

// TestVirtioResetRecoveryConfigs walks NEEDS_RESET → re-negotiation →
// ring rebuild → requeue on every virtqueue configuration the driver
// supports. Completion of the series proves the rebuilt rings carry
// traffic; the counters prove the walk actually happened.
func TestVirtioResetRecoveryConfigs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*NetConfig)
	}{
		{"split", nil},
		{"eventidx", func(c *NetConfig) { c.UseEventIdx = true }},
		{"packed", func(c *NetConfig) { c.UsePackedRing = true }},
		{"mq", func(c *NetConfig) { c.QueuePairs = 2 }},
		{"no-ctrlvq", func(c *NetConfig) { c.DisableCtrlVQ = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const plan = "needsreset:every=60:count=3"
			_, snaps, ns := faultedNetRun(t, 11, 400, plan, tc.mutate)
			if got := ns.FaultSummary()["needsreset"]; got != 3 {
				t.Fatalf("injected %d needsreset faults, want 3", got)
			}
			if resets := metricValue(snaps, telemetry.MetricRecoveryVirtioResets); resets < 3 {
				t.Errorf("recovery.virtio.resets = %v, want >= 3", resets)
			}
			if metricValue(snaps, telemetry.MetricRecoveryVirtioRequeue) == 0 {
				t.Error("no in-flight TX buffer was requeued across any reset")
			}
		})
	}
}

// ---- targeted per-class runs --------------------------------------------

// Classes excluded from DefaultChaosPlan, each exercised alone so a
// regression in one recovery path cannot hide behind another.

func TestFaultTLPDrop(t *testing.T) {
	// Dropped posted writes eat doorbells mid-run (after= skips the
	// boot-time config writes); the TX watchdog re-kicks.
	_, snaps, ns := faultedNetRun(t, 3, 400, "tlpdrop:every=97:count=3:after=400", nil)
	if ns.FaultSummary()["tlpdrop"] == 0 {
		t.Fatal("no TLP drop injected")
	}
	if metricValue(snaps, telemetry.MetricRecoveryVirtioWatchd) == 0 {
		t.Error("dropped doorbells recovered without the watchdog — check the plan still lands on kicks")
	}
}

func TestFaultStall(t *testing.T) {
	_, snaps, xs := faultedXDMARun(t, 4, 400, "stall:every=150:count=2:after=100")
	if xs.FaultSummary()["stall"] == 0 {
		t.Fatal("no stall window opened")
	}
	if metricValue(snaps, telemetry.MetricPCIeCplErrors) == 0 {
		t.Error("stalled reads did not surface completion errors")
	}
}

func TestFaultCplTimeout(t *testing.T) {
	// The XDMA hot path reads engine status on every transfer, so the
	// timed-out (all-ones) completions land mid-run and the channel
	// recovery path absorbs them.
	_, snaps, xs := faultedXDMARun(t, 5, 400, "cpltimeout:every=100:count=3:after=50")
	if xs.FaultSummary()["cpltimeout"] == 0 {
		t.Fatal("no completion timeout injected")
	}
	if metricValue(snaps, telemetry.MetricPCIeCplErrors) == 0 {
		t.Error("timed-out completions did not surface completion errors")
	}
}

func TestFaultCplTimeoutAtBoot(t *testing.T) {
	// Timeouts during feature negotiation: the silent-zero fix makes the
	// read complete all-ones and the transport's bounded retry re-reads
	// it, so the session still boots and carries traffic.
	_, snaps, ns := faultedNetRun(t, 5, 50, "cpltimeout:every=15:count=2", nil)
	if ns.FaultSummary()["cpltimeout"] == 0 {
		t.Fatal("no completion timeout injected at boot")
	}
	if metricValue(snaps, telemetry.MetricRecoveryMMIORetries) == 0 {
		t.Error("all-ones reads were not retried")
	}
}

func TestFaultDMAReadErr(t *testing.T) {
	_, snaps, xs := faultedXDMARun(t, 6, 400, "dmarderr:every=120:count=3:after=50")
	if xs.FaultSummary()["dmarderr"] == 0 {
		t.Fatal("no DMA read error injected")
	}
	if metricValue(snaps, telemetry.MetricRecoveryXDMAResubmits) == 0 {
		t.Error("corrupted round trips were not retried")
	}
}

func TestFaultDMAWriteErr(t *testing.T) {
	_, _, xs := faultedXDMARun(t, 7, 400, "dmawrerr:every=120:count=3:after=50")
	if xs.FaultSummary()["dmawrerr"] == 0 {
		t.Fatal("no DMA write error injected")
	}
	// Completion of the series is the assertion: a dropped write chunk
	// either mismatches (and retries) or lands on identical bytes from
	// the previous round trip — both must finish cleanly.
}

func TestFaultIRQSpurious(t *testing.T) {
	const plan = "irqspurious:p=0.02"
	s1, m1, ns := faultedNetRun(t, 8, 300, plan, nil)
	s2, m2, _ := faultedNetRun(t, 8, 300, plan, nil)
	if ns.FaultSummary()["irqspurious"] == 0 {
		t.Fatal("no spurious interrupt injected")
	}
	// Duplicate delivery must be harmless AND deterministic.
	requireSameSamples(t, s1, s2)
	requireSameMetrics(t, m1, m2)
}

// ---- misuse -------------------------------------------------------------

func TestFaultPlanRejected(t *testing.T) {
	if _, err := OpenNet(NetConfig{Config: Config{Seed: 1, Faults: "bogus:p=0.5"}}); err == nil {
		t.Error("OpenNet accepted an invalid plan")
	}
	if _, err := OpenXDMA(XDMAConfig{Config: Config{Seed: 1, Faults: "irqdrop"}}); err == nil {
		t.Error("OpenXDMA accepted a rule without p= or every=")
	}
	if _, err := OpenConsole(Config{Seed: 1, Faults: "irqdrop:p=0.1"}); err == nil {
		t.Error("OpenConsole accepted a fault plan")
	}
	if _, err := OpenBlk(BlkConfig{Config: Config{Seed: 1, Faults: "irqdrop:p=0.1"}}); err == nil {
		t.Error("OpenBlk accepted a fault plan")
	}
}

// Faulted runs with different seeds must diverge: the injector draws
// from the session seed, not a fixed stream.
func TestFaultedRunsDistinguishSeeds(t *testing.T) {
	const plan = "irqdrop:p=0.01"
	s1, _, _ := faultedNetRun(t, 1, 200, plan, nil)
	s2, _, _ := faultedNetRun(t, 2, 200, plan, nil)
	if reflect.DeepEqual(s1, s2) {
		t.Fatal("different seeds produced identical faulted runs")
	}
}
