package fpgavirtio

import (
	"fpgavirtio/internal/faults"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// flightWatch owns a session's always-on flight recorder and decides
// when its ring is worth freezing: a fault-recovery fired, or a new
// worst-case round trip just landed. It also feeds the tail.rtt.* HDR
// histograms so percentile estimates survive sweeps that never retain
// per-sample series. Everything here runs once per round trip on the
// 0-alloc hot path: reason strings are precomputed, the per-class
// scratch is a fixed slice, and the HDR instruments are cached at
// construction.
type flightWatch struct {
	fr  *telemetry.FlightRecorder
	inj *faults.Injector
	s   *sim.Sim

	// reasons[i] is the precomputed dump reason for faults.Classes[i].
	reasons []string
	// classSeen[i] is the per-class injection count at the last note.
	classSeen []int64
	lastTotal int64
	worst     sim.Duration

	rttTotal *telemetry.HDRHistogram
	rttSW    *telemetry.HDRHistogram
	rttHW    *telemetry.HDRHistogram
	rttRG    *telemetry.HDRHistogram
}

// reasonWorstRTT names the dump taken when a round trip sets a new
// worst-case latency.
const reasonWorstRTT = "worst-rtt"

// newFlightWatch builds the recorder, installs it as the sim's flight
// sink, and returns the watcher. One dump slot per fault class plus
// one for the worst-case trigger, so no trigger ever finds the slots
// exhausted.
func newFlightWatch(s *sim.Sim, inj *faults.Injector, reg *telemetry.Registry) *flightWatch {
	fr := telemetry.NewFlightRecorder(0, len(faults.Classes)+1, reg)
	s.SetFlightSink(fr)
	fw := &flightWatch{
		fr:        fr,
		inj:       inj,
		s:         s,
		reasons:   make([]string, len(faults.Classes)),
		classSeen: make([]int64, len(faults.Classes)),
		rttTotal:  reg.HDR(telemetry.MetricTailRTTTotalNs),
		rttSW:     reg.HDR(telemetry.MetricTailRTTSWNs),
		rttHW:     reg.HDR(telemetry.MetricTailRTTHWNs),
		rttRG:     reg.HDR(telemetry.MetricTailRTTRGNs),
	}
	for i, c := range faults.Classes {
		fw.reasons[i] = "fault:" + string(c)
	}
	return fw
}

// note records one completed round trip: HDR observations of the
// decomposition, plus dump triggers. Allocation-free.
func (fw *flightWatch) note(s RTTSample) {
	fw.rttTotal.Observe(s.Total.Nanoseconds())
	fw.rttSW.Observe(s.Software.Nanoseconds())
	fw.rttHW.Observe(s.Hardware.Nanoseconds())
	fw.rttRG.Observe(s.RespGen.Nanoseconds())
	fw.noteFaults()
	d := sim.Ns(s.Total.Nanoseconds())
	if d > fw.worst {
		fw.worst = d
		fw.fr.Snapshot(reasonWorstRTT, fw.s.Now())
	}
}

// noteFaults snapshots the ring for every fault class that fired since
// the previous call. The cheap Total() comparison keeps the common
// (no-new-faults) case to one counter read; windowed stream loops call
// this directly since they have no per-packet RTTSample.
func (fw *flightWatch) noteFaults() {
	t := fw.inj.Total()
	if t == fw.lastTotal {
		return
	}
	fw.lastTotal = t
	for i, c := range faults.Classes {
		if n := fw.inj.Injected(c); n != fw.classSeen[i] {
			fw.classSeen[i] = n
			fw.fr.Snapshot(fw.reasons[i], fw.s.Now())
		}
	}
}

// dumps returns the snapshots taken so far, oldest trigger first.
func (fw *flightWatch) dumps() []telemetry.FlightDump {
	if fw == nil {
		return nil
	}
	return fw.fr.Dumps()
}

// CapturedPath is one replayed round trip's critical-path analysis:
// the series index it occupied, the RTT the replay measured, and the
// innermost-span partition of that window.
type CapturedPath struct {
	Index int
	RTT   sim.Duration
	Path  *telemetry.CriticalPath
}
