package fpgavirtio

import (
	"reflect"
	"testing"

	"fpgavirtio/internal/telemetry"
)

// The simulation's contract is bit-level determinism: the same seed
// must reproduce every RTT sample, every breakdown component, and every
// metric the telemetry registry accumulated — in latency mode and in
// windowed throughput mode, on both driver paths. These tests run each
// workload twice from scratch and require deep equality.

func netLatencyRun(t *testing.T, seed uint64, packets int) ([]RTTSample, []telemetry.MetricSnapshot) {
	t.Helper()
	ns, err := OpenNet(NetConfig{Config: Config{Seed: seed}})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	samples := make([]RTTSample, 0, packets)
	for i := 0; i < packets; i++ {
		s, err := ns.PingDetailed(buf)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, s)
	}
	return samples, ns.Registry().Snapshot()
}

func netStreamRun(t *testing.T, seed uint64, sc StreamConfig) (StreamResult, []telemetry.MetricSnapshot) {
	t.Helper()
	ns, err := OpenNet(NetConfig{
		Config:          Config{Seed: seed},
		UseEventIdx:     true,
		QueuePairs:      2,
		TxKickBatch:     8,
		IRQCoalescePkts: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ns.Stream(sc)
	if err != nil {
		t.Fatal(err)
	}
	return res, ns.Registry().Snapshot()
}

func xdmaLatencyRun(t *testing.T, seed uint64, packets int) ([]RTTSample, []telemetry.MetricSnapshot) {
	t.Helper()
	xs, err := OpenXDMA(XDMAConfig{Config: Config{Seed: seed}})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	samples := make([]RTTSample, 0, packets)
	for i := 0; i < packets; i++ {
		s, err := xs.RoundTripDetailed(buf)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, s)
	}
	return samples, xs.Registry().Snapshot()
}

func xdmaStreamRun(t *testing.T, seed uint64, sc StreamConfig) (StreamResult, []telemetry.MetricSnapshot) {
	t.Helper()
	xs, err := OpenXDMA(XDMAConfig{Config: Config{Seed: seed}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := xs.Stream(sc)
	if err != nil {
		t.Fatal(err)
	}
	return res, xs.Registry().Snapshot()
}

func requireSameSamples(t *testing.T, a, b []RTTSample) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("replay diverged at sample %d: %+v vs %+v", i, a[i], b[i])
			}
		}
		t.Fatalf("replay diverged: %d vs %d samples", len(a), len(b))
	}
}

func requireSameMetrics(t *testing.T, a, b []telemetry.MetricSnapshot) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if i < len(b) && !reflect.DeepEqual(a[i], b[i]) {
				t.Fatalf("replay metric %q diverged:\n run1 %+v\n run2 %+v", a[i].Name, a[i], b[i])
			}
		}
		t.Fatalf("replay metrics diverged: %d vs %d snapshots", len(a), len(b))
	}
}

func TestReplayNetLatency(t *testing.T) {
	s1, m1 := netLatencyRun(t, 42, 200)
	s2, m2 := netLatencyRun(t, 42, 200)
	requireSameSamples(t, s1, s2)
	requireSameMetrics(t, m1, m2)
}

func TestReplayNetThroughput(t *testing.T) {
	sc := StreamConfig{Packets: 600, PayloadSize: 128, Window: 12}
	r1, m1 := netStreamRun(t, 42, sc)
	r2, m2 := netStreamRun(t, 42, sc)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("replay stream result diverged:\n run1 %+v\n run2 %+v", r1, r2)
	}
	requireSameMetrics(t, m1, m2)
}

func TestReplayNetStreamWindowOne(t *testing.T) {
	sc := StreamConfig{Packets: 120, PayloadSize: 64, Window: 1}
	r1, m1 := netStreamRun(t, 7, sc)
	r2, m2 := netStreamRun(t, 7, sc)
	requireSameSamples(t, r1.RTT, r2.RTT)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("replay stream result diverged")
	}
	requireSameMetrics(t, m1, m2)
}

func TestReplayXDMALatency(t *testing.T) {
	s1, m1 := xdmaLatencyRun(t, 42, 200)
	s2, m2 := xdmaLatencyRun(t, 42, 200)
	requireSameSamples(t, s1, s2)
	requireSameMetrics(t, m1, m2)
}

func TestReplayXDMAThroughput(t *testing.T) {
	sc := StreamConfig{Packets: 600, PayloadSize: 256, Window: 16}
	r1, m1 := xdmaStreamRun(t, 42, sc)
	r2, m2 := xdmaStreamRun(t, 42, sc)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("replay stream result diverged:\n run1 %+v\n run2 %+v", r1, r2)
	}
	requireSameMetrics(t, m1, m2)
}

// The batch series APIs (the sweep engine's hot loop) must replay
// exactly like everything else: same seed, same samples, same metrics.

func netSeriesRun(t *testing.T, seed uint64, packets int) ([]RTTSample, []telemetry.MetricSnapshot) {
	t.Helper()
	ns, err := OpenNet(NetConfig{Config: Config{Seed: seed}})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	samples := make([]RTTSample, 0, packets)
	err = ns.PingSeries(buf, packets, func(i int, s RTTSample) {
		samples = append(samples, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	return samples, ns.Registry().Snapshot()
}

func TestReplayNetPingSeries(t *testing.T) {
	s1, m1 := netSeriesRun(t, 42, 200)
	s2, m2 := netSeriesRun(t, 42, 200)
	requireSameSamples(t, s1, s2)
	requireSameMetrics(t, m1, m2)
}

func TestReplayXDMARoundTripSeries(t *testing.T) {
	run := func() ([]RTTSample, []telemetry.MetricSnapshot) {
		xs, err := OpenXDMA(XDMAConfig{Config: Config{Seed: 42}})
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 256)
		samples := make([]RTTSample, 0, 200)
		err = xs.RoundTripSeries(buf, 200, func(i int, s RTTSample) {
			samples = append(samples, s)
		})
		if err != nil {
			t.Fatal(err)
		}
		return samples, xs.Registry().Snapshot()
	}
	s1, m1 := run()
	s2, m2 := run()
	requireSameSamples(t, s1, s2)
	requireSameMetrics(t, m1, m2)
}

// Poll-mode runs must replay bit-for-bit too: the busy-poll loop
// advances sim time per spin iteration, so its schedule (and the
// poll.* counters) is as deterministic as the interrupt path's.

func netPollLatencyRun(t *testing.T, seed uint64, packets int) ([]RTTSample, []telemetry.MetricSnapshot) {
	t.Helper()
	ns, err := OpenNet(NetConfig{Config: Config{Seed: seed, PollMode: true}})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	samples := make([]RTTSample, 0, packets)
	err = ns.PingSeries(buf, packets, func(i int, s RTTSample) {
		samples = append(samples, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	return samples, ns.Registry().Snapshot()
}

func xdmaPollLatencyRun(t *testing.T, seed uint64, packets int) ([]RTTSample, []telemetry.MetricSnapshot) {
	t.Helper()
	xs, err := OpenXDMA(XDMAConfig{Config: Config{Seed: seed, PollMode: true}})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	samples := make([]RTTSample, 0, packets)
	err = xs.RoundTripSeries(buf, packets, func(i int, s RTTSample) {
		samples = append(samples, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	return samples, xs.Registry().Snapshot()
}

func TestReplayNetPollLatency(t *testing.T) {
	s1, m1 := netPollLatencyRun(t, 42, 200)
	s2, m2 := netPollLatencyRun(t, 42, 200)
	requireSameSamples(t, s1, s2)
	requireSameMetrics(t, m1, m2)
}

func TestReplayXDMAPollLatency(t *testing.T) {
	s1, m1 := xdmaPollLatencyRun(t, 42, 200)
	s2, m2 := xdmaPollLatencyRun(t, 42, 200)
	requireSameSamples(t, s1, s2)
	requireSameMetrics(t, m1, m2)
}

func TestReplayNetPollStream(t *testing.T) {
	sc := StreamConfig{Packets: 400, PayloadSize: 128, Window: 8}
	run := func() (StreamResult, []telemetry.MetricSnapshot) {
		ns, err := OpenNet(NetConfig{Config: Config{Seed: 42, PollMode: true}, TxKickBatch: 8})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ns.Stream(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res, ns.Registry().Snapshot()
	}
	r1, m1 := run()
	r2, m2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("poll stream replay diverged:\n run1 %+v\n run2 %+v", r1, r2)
	}
	requireSameMetrics(t, m1, m2)
}

func TestReplayXDMAPollStream(t *testing.T) {
	sc := StreamConfig{Packets: 400, PayloadSize: 256, Window: 16}
	run := func() (StreamResult, []telemetry.MetricSnapshot) {
		xs, err := OpenXDMA(XDMAConfig{Config: Config{Seed: 42, PollMode: true}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := xs.Stream(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res, xs.Registry().Snapshot()
	}
	r1, m1 := run()
	r2, m2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("poll stream replay diverged:\n run1 %+v\n run2 %+v", r1, r2)
	}
	requireSameMetrics(t, m1, m2)
}

// Poll and interrupt datapaths must NOT produce identical samples —
// otherwise the poll replay checks above could pass on a PollMode flag
// that never reaches the drivers.
func TestReplayPollDiffersFromIRQ(t *testing.T) {
	irq, _ := netSeriesRun(t, 42, 100)
	poll, _ := netPollLatencyRun(t, 42, 100)
	if reflect.DeepEqual(irq, poll) {
		t.Fatal("poll-mode samples identical to interrupt-mode samples")
	}
}

// Different seeds must NOT replay identically — otherwise the equality
// checks above would pass vacuously on a seed-blind implementation.
func TestReplayDistinguishesSeeds(t *testing.T) {
	s1, _ := netLatencyRun(t, 1, 100)
	s2, _ := netLatencyRun(t, 2, 100)
	if reflect.DeepEqual(s1, s2) {
		t.Fatal("different seeds produced identical sample series")
	}
}
