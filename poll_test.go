package fpgavirtio_test

import (
	"bytes"
	"sort"
	"testing"
	"time"

	fpgavirtio "fpgavirtio"
	"fpgavirtio/internal/telemetry"
)

// Poll-mode datapath tests: both stacks must work end to end with no
// MSI-X interrupts at all, account their spinning in the poll.*
// metrics, and beat their interrupt-mode twins on latency once the
// wake-up costs are off the critical path.

func TestNetPollModePing(t *testing.T) {
	ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
		Config: fpgavirtio.Config{Seed: 21, PollMode: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xcd}, 256)
	for i := 0; i < 20; i++ {
		echo, rtt, err := ns.Ping(payload)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !bytes.Equal(echo, payload) {
			t.Fatalf("iteration %d: echo mismatch", i)
		}
		if rtt < 5*time.Microsecond || rtt > 500*time.Microsecond {
			t.Fatalf("iteration %d: rtt = %v outside plausible range", i, rtt)
		}
	}
	if n := ns.BusStats().Interrupts; n != 0 {
		t.Errorf("poll-mode session raised %d interrupts, want 0", n)
	}
	reg := ns.Registry()
	if v := reg.Counter(telemetry.MetricPollSpins).Value(); v == 0 {
		t.Error("poll.spins = 0: the datapath never polled")
	}
	if v := reg.Counter(telemetry.MetricPollBurnNs).Value(); v == 0 {
		t.Error("poll.cpu.burn.ns = 0: spin cost not accounted")
	}
}

func TestXDMAPollModeRoundTrip(t *testing.T) {
	xs, err := fpgavirtio.OpenXDMA(fpgavirtio.XDMAConfig{
		Config: fpgavirtio.Config{Seed: 22, PollMode: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x3c}, 512)
	if err := xs.RoundTripSeries(data, 20, func(i int, s fpgavirtio.RTTSample) {
		if s.Total <= 0 || s.Hardware <= 0 || s.Software <= 0 {
			t.Fatalf("round trip %d: breakdown = %+v", i, s)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if n := xs.BusStats().Interrupts; n != 0 {
		t.Errorf("poll-mode session raised %d interrupts, want 0", n)
	}
	reg := xs.Registry()
	if v := reg.Counter(telemetry.MetricPollSpins).Value(); v == 0 {
		t.Error("poll.spins = 0: the datapath never polled")
	}
}

func TestPollModeRejectsEventIdx(t *testing.T) {
	_, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
		Config:      fpgavirtio.Config{Seed: 23, PollMode: true},
		UseEventIdx: true,
	})
	if err == nil {
		t.Fatal("PollMode + UseEventIdx accepted; poll mode arms no notification thresholds")
	}
}

// medianRTT measures n round trips and returns the median total.
func medianRTT(t *testing.T, n int, one func() time.Duration) time.Duration {
	t.Helper()
	samples := make([]time.Duration, n)
	for i := range samples {
		samples[i] = one()
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[n/2]
}

func TestNetPollModeFaster(t *testing.T) {
	measure := func(poll bool) time.Duration {
		ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
			Config: fpgavirtio.Config{Seed: 24, Quiet: true, PollMode: poll},
		})
		if err != nil {
			t.Fatal(err)
		}
		var rtts []time.Duration
		if err := ns.PingSeries(make([]byte, 512), 20, func(i int, s fpgavirtio.RTTSample) {
			rtts = append(rtts, s.Total)
		}); err != nil {
			t.Fatal(err)
		}
		sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
		return rtts[len(rtts)/2]
	}
	irq := measure(false)
	poll := measure(true)
	// Poll mode trades a burning core for the IRQ-entry, softirq and
	// scheduler-wake segments: with noise off it must win outright.
	if poll >= irq {
		t.Fatalf("poll median %v not below interrupt median %v", poll, irq)
	}
}

func TestXDMAPollModeFaster(t *testing.T) {
	measure := func(poll bool) time.Duration {
		xs, err := fpgavirtio.OpenXDMA(fpgavirtio.XDMAConfig{
			Config: fpgavirtio.Config{Seed: 25, Quiet: true, PollMode: poll},
		})
		if err != nil {
			t.Fatal(err)
		}
		var rtts []time.Duration
		if err := xs.RoundTripSeries(make([]byte, 512), 20, func(i int, s fpgavirtio.RTTSample) {
			rtts = append(rtts, s.Total)
		}); err != nil {
			t.Fatal(err)
		}
		sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
		return rtts[len(rtts)/2]
	}
	irq := measure(false)
	poll := measure(true)
	// The XDMA exchange fields two completion interrupts per round trip
	// in interrupt mode; removing both must show up clearly.
	if poll >= irq {
		t.Fatalf("poll median %v not below interrupt median %v", poll, irq)
	}
}

// irqLayerTime sums critical-path time attributed to the irq layer.
func irqLayerTime(paths []fpgavirtio.CapturedPath) (total time.Duration) {
	for _, cp := range paths {
		for _, l := range cp.Path.Layers {
			if l.Layer == telemetry.LayerIRQ {
				total += time.Duration(l.Total.Nanoseconds()) * time.Nanosecond
			}
		}
	}
	return total
}

func TestNetPollCriticalPathHasNoIRQLayer(t *testing.T) {
	open := func(poll bool) *fpgavirtio.NetSession {
		ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
			Config: fpgavirtio.Config{Seed: 26, PollMode: poll},
		})
		if err != nil {
			t.Fatal(err)
		}
		return ns
	}
	payload := make([]byte, 512)
	targets := []int{0, 5, 9}
	irqPaths, err := open(false).CaptureCriticalPaths(payload, targets)
	if err != nil {
		t.Fatal(err)
	}
	pollPaths, err := open(true).CaptureCriticalPaths(payload, targets)
	if err != nil {
		t.Fatal(err)
	}
	if got := irqLayerTime(irqPaths); got == 0 {
		t.Error("interrupt-mode critical path shows no irq-layer time; capture is broken")
	}
	if got := irqLayerTime(pollPaths); got != 0 {
		t.Errorf("poll-mode critical path charges %v to the irq layer, want exactly 0", got)
	}
}

func TestXDMAPollCriticalPathHasNoIRQLayer(t *testing.T) {
	open := func(poll bool) *fpgavirtio.XDMASession {
		xs, err := fpgavirtio.OpenXDMA(fpgavirtio.XDMAConfig{
			Config: fpgavirtio.Config{Seed: 27, PollMode: poll},
		})
		if err != nil {
			t.Fatal(err)
		}
		return xs
	}
	data := make([]byte, 512)
	targets := []int{0, 4}
	irqPaths, err := open(false).CaptureCriticalPaths(data, targets)
	if err != nil {
		t.Fatal(err)
	}
	pollPaths, err := open(true).CaptureCriticalPaths(data, targets)
	if err != nil {
		t.Fatal(err)
	}
	if got := irqLayerTime(irqPaths); got == 0 {
		t.Error("interrupt-mode critical path shows no irq-layer time; capture is broken")
	}
	if got := irqLayerTime(pollPaths); got != 0 {
		t.Errorf("poll-mode critical path charges %v to the irq layer, want exactly 0", got)
	}
}

func TestNetPollModeBurstAndStream(t *testing.T) {
	ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
		Config: fpgavirtio.Config{Seed: 28, Quiet: true, PollMode: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ns.Burst(32, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatalf("burst elapsed %v", res.Elapsed)
	}
	if res.Interrupts != 0 {
		t.Fatalf("burst took %d interrupts under poll mode", res.Interrupts)
	}
	st, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
		Config: fpgavirtio.Config{Seed: 28, Quiet: true, PollMode: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := st.Stream(fpgavirtio.StreamConfig{Packets: 64, PayloadSize: 256, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sres.PPS <= 0 {
		t.Fatalf("stream PPS = %v", sres.PPS)
	}
	if sres.Interrupts != 0 {
		t.Fatalf("stream took %d interrupts under poll mode", sres.Interrupts)
	}
}
