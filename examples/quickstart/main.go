// Quickstart: boot the paper's VirtIO network testbed — an FPGA that
// presents itself to the host as a VirtIO NIC — and send one UDP packet
// through the ordinary socket API. The FPGA's echo user logic answers,
// and the detailed sample shows the paper's latency decomposition.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	fpgavirtio "fpgavirtio"
)

func main() {
	// The zero-value NetConfig is the paper's testbed: Gen2 x2 link,
	// checksum offload and control queue on offer, host noise enabled.
	session, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
		Config: fpgavirtio.Config{Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("negotiated features:", session.NegotiatedFeatures())

	payload := []byte("hello from the host, via the kernel's own virtio-net driver")
	echo, rtt, err := session.Ping(payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("echoed %d bytes in %v\n", len(echo), rtt)

	// The paper's methodology: subtract the FPGA's hardware counters
	// and the user logic's response generation from the total.
	sample, err := session.PingDetailed(payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("breakdown: total=%v hardware=%v software=%v respgen=%v\n",
		sample.Total, sample.Hardware, sample.Software, sample.RespGen)

	stats := session.BusStats()
	fmt.Printf("bus traffic so far: %d TLPs down, %d TLPs up, %d interrupts\n",
		stats.DownTLPs, stats.UpTLPs, stats.Interrupts)
}
