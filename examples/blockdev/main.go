// Blockdev: the storage-accelerator use case from the paper's
// introduction. The same FPGA VirtIO controller, loaded with the block
// personality, appears to the host as a virtio-blk disk backed by card
// memory — no new driver was written; the host's native virtio-blk
// front-end drives it.
//
// Run with:
//
//	go run ./examples/blockdev
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	fpgavirtio "fpgavirtio"
)

func main() {
	session, err := fpgavirtio.OpenBlk(fpgavirtio.BlkConfig{
		Config:          fpgavirtio.Config{Seed: 3},
		CapacitySectors: 4096, // 2 MiB of card memory
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virtio-blk disk: %d sectors (%d KiB)\n",
		session.CapacitySectors(), session.CapacitySectors()/2)

	// Write a recognizable pattern across a few sectors.
	const sectors = 64
	var writeTotal, readTotal time.Duration
	for s := uint64(0); s < sectors; s++ {
		sector := bytes.Repeat([]byte{byte(s)}, 512)
		d, err := session.WriteSector(s, sector)
		if err != nil {
			log.Fatal(err)
		}
		writeTotal += d
	}
	if err := session.Flush(); err != nil {
		log.Fatal(err)
	}

	// Read back and verify.
	for s := uint64(0); s < sectors; s++ {
		data, d, err := session.ReadSector(s)
		if err != nil {
			log.Fatal(err)
		}
		readTotal += d
		for _, b := range data {
			if b != byte(s) {
				log.Fatalf("sector %d corrupted", s)
			}
		}
	}

	fmt.Printf("wrote %d sectors: mean %v per 512 B write\n", sectors, writeTotal/sectors)
	fmt.Printf("read  %d sectors: mean %v per 512 B read\n", sectors, readTotal/sectors)
	fmt.Println("verification: all sectors intact")
}
