// SmartNIC: the scenario from the paper's introduction — the FPGA as a
// network accelerator the host OS treats as a plain NIC. The example
// shows the two semantic benefits the paper highlights:
//
//  1. Checksum offload negotiated via VirtIO feature bits: the host
//     network stack skips software checksums and the FPGA computes
//     them at line rate, shaving host CPU time off every packet.
//  2. The control virtqueue: runtime device configuration (here,
//     promiscuous mode) through the standard virtio-net control path
//     instead of a custom ioctl.
//
// Run with:
//
//	go run ./examples/smartnic
package main

import (
	"fmt"
	"log"
	"time"

	fpgavirtio "fpgavirtio"
)

func measure(cfg fpgavirtio.NetConfig, label string, iters int) time.Duration {
	session, err := fpgavirtio.OpenNet(cfg)
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, 1024)
	var total time.Duration
	for i := 0; i < iters; i++ {
		s, err := session.PingDetailed(payload)
		if err != nil {
			log.Fatal(err)
		}
		total += s.Software
	}
	mean := total / time.Duration(iters)
	fmt.Printf("%-28s mean host-software time per packet: %v\n", label, mean)
	return mean
}

func main() {
	const iters = 500

	fmt.Println("== checksum offload (VIRTIO_NET_F_CSUM) ==")
	withOffload := measure(fpgavirtio.NetConfig{
		Config: fpgavirtio.Config{Seed: 7},
	}, "offloaded to FPGA:", iters)
	without := measure(fpgavirtio.NetConfig{
		Config:             fpgavirtio.Config{Seed: 7},
		DisableCsumOffload: true,
	}, "software checksums:", iters)
	fmt.Printf("offload saves %v of host CPU per 1 KB packet\n\n", without-withOffload)

	fmt.Println("== control virtqueue ==")
	session, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: 7}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("device promiscuous:", session.Promiscuous())
	if err := session.SetPromiscuous(true); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after VIRTIO_NET_CTRL_RX_PROMISC(on):", session.Promiscuous())
	if err := session.SetPromiscuous(false); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after VIRTIO_NET_CTRL_RX_PROMISC(off):", session.Promiscuous())

	fmt.Println()
	fmt.Println("== host-bypass interface (paper §III-A) ==")
	d, err := session.BypassCopy(4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user logic moved 4 KiB host-to-host in %v with no driver involvement\n", d)
}
