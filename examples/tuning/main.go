// Tuning: the negotiation knobs beyond the paper's baseline device —
// packed virtqueues, EVENT_IDX suppression and host-OS profiles — and
// what each buys on the simulated testbed. Run with:
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"time"

	fpgavirtio "fpgavirtio"
)

func meanPing(cfg fpgavirtio.NetConfig, iters int) (total, hw time.Duration) {
	session, err := fpgavirtio.OpenNet(cfg)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 256)
	for i := 0; i < iters; i++ {
		s, err := session.PingDetailed(buf)
		if err != nil {
			log.Fatal(err)
		}
		total += s.Total
		hw += s.Hardware
	}
	return total / time.Duration(iters), hw / time.Duration(iters)
}

func main() {
	const iters = 300
	base := fpgavirtio.Config{Seed: 21}

	fmt.Println("== virtqueue format (256 B echo) ==")
	st, sh := meanPing(fpgavirtio.NetConfig{Config: base}, iters)
	pt, ph := meanPing(fpgavirtio.NetConfig{Config: base, UsePackedRing: true}, iters)
	fmt.Printf("split ring:  total %v, device hardware %v\n", st, sh)
	fmt.Printf("packed ring: total %v, device hardware %v\n", pt, ph)
	fmt.Printf("packed saves %v of bus round trips per packet\n\n", sh-ph)

	fmt.Println("== EVENT_IDX under a 64-packet burst ==")
	flags, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: base})
	if err != nil {
		log.Fatal(err)
	}
	fRes, err := flags.Burst(64, 256)
	if err != nil {
		log.Fatal(err)
	}
	evidx, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: base, UseEventIdx: true})
	if err != nil {
		log.Fatal(err)
	}
	eRes, err := evidx.Burst(64, 256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flags:     %3d doorbells, %3d interrupts\n", fRes.Doorbells, fRes.Interrupts)
	fmt.Printf("EVENT_IDX: %3d doorbells, %3d interrupts\n\n", eRes.Doorbells, eRes.Interrupts)

	fmt.Println("== host OS profiles (256 B echo over 300 pings) ==")
	for _, prof := range []fpgavirtio.HostProfile{
		fpgavirtio.DesktopHost, fpgavirtio.ServerHost, fpgavirtio.RTHost,
	} {
		cfg := base
		cfg.Host = prof
		var worst time.Duration
		session, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: cfg})
		if err != nil {
			log.Fatal(err)
		}
		var sum time.Duration
		for i := 0; i < iters; i++ {
			_, rtt, err := session.Ping(make([]byte, 256))
			if err != nil {
				log.Fatal(err)
			}
			sum += rtt
			if rtt > worst {
				worst = rtt
			}
		}
		fmt.Printf("%-10s mean %v, worst-of-%d %v\n", prof, sum/iters, iters, worst)
	}
}
