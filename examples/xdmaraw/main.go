// XDMA raw: the paper's vendor baseline — the stock XDMA example design
// driven through the reference character-device driver. The application
// moves buffers with plain write()/read() on /dev/xdma0_h2c_0 and
// /dev/xdma0_c2h_0, exactly the comparison path of the evaluation.
//
// Run with:
//
//	go run ./examples/xdmaraw
package main

import (
	"fmt"
	"log"
	"time"

	fpgavirtio "fpgavirtio"
)

func main() {
	session, err := fpgavirtio.OpenXDMA(fpgavirtio.XDMAConfig{
		Config: fpgavirtio.Config{Seed: 11},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("favourable setup (paper §IV-C): back-to-back write()+read()")
	for _, size := range []int{64, 256, 1024, 4096} {
		buf := make([]byte, size)
		for i := range buf {
			buf[i] = byte(i)
		}
		const iters = 200
		var total time.Duration
		for i := 0; i < iters; i++ {
			d, err := session.RoundTrip(buf)
			if err != nil {
				log.Fatal(err)
			}
			total += d
		}
		sample, err := session.RoundTripDetailed(buf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d B: mean RTT %v (one sample: hw %v, sw %v)\n",
			size, total/iters, sample.Hardware, sample.Software)
	}

	fmt.Println()
	fmt.Println("realistic setup: wait for the user logic's data-ready interrupt")
	real, err := fpgavirtio.OpenXDMA(fpgavirtio.XDMAConfig{
		Config:       fpgavirtio.Config{Seed: 11},
		WaitC2HReady: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 1024)
	const iters = 200
	var total time.Duration
	for i := 0; i < iters; i++ {
		d, err := real.RoundTrip(buf)
		if err != nil {
			log.Fatal(err)
		}
		total += d
	}
	fmt.Printf("1024 B: mean RTT %v — the extra interrupt+wake the favourable setup discounts\n", total/iters)

	st := real.BusStats()
	fmt.Printf("bus totals: %d interrupts over %d round trips (3 per RTT: H2C, data-ready, C2H)\n",
		st.Interrupts, iters)
}
