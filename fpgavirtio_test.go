package fpgavirtio_test

import (
	"bytes"
	"testing"
	"time"

	fpgavirtio "fpgavirtio"
)

func TestNetSessionPing(t *testing.T) {
	ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xab}, 256)
	echo, rtt, err := ns.Ping(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echo, payload) {
		t.Fatal("echo mismatch")
	}
	if rtt < 10*time.Microsecond || rtt > 500*time.Microsecond {
		t.Fatalf("rtt = %v outside plausible range", rtt)
	}
}

func TestNetSessionDetailedBreakdown(t *testing.T) {
	ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: 2, Quiet: true}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ns.PingDetailed(make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	if s.Hardware <= 0 || s.Software <= 0 || s.RespGen <= 0 {
		t.Fatalf("breakdown has zero component: %+v", s)
	}
	if got := s.Software + s.Hardware + s.RespGen; got != s.Total {
		t.Fatalf("decomposition does not sum: %+v", s)
	}
	// VirtIO: the device walks the rings itself, so hardware time
	// exceeds the software share (paper Fig. 4).
	if s.Hardware <= s.Software {
		t.Fatalf("VirtIO hardware (%v) should exceed software (%v)", s.Hardware, s.Software)
	}
}

func TestNetSessionDeterministicBySeed(t *testing.T) {
	measure := func(seed uint64) time.Duration {
		ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: seed}})
		if err != nil {
			t.Fatal(err)
		}
		_, rtt, err := ns.Ping(make([]byte, 128))
		if err != nil {
			t.Fatal(err)
		}
		return rtt
	}
	if measure(42) != measure(42) {
		t.Fatal("same seed produced different latencies")
	}
}

func TestNetSessionFeaturesAndCtrl(t *testing.T) {
	ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !ns.ChecksumOffloaded() {
		t.Fatal("checksum offload not negotiated by default")
	}
	if err := ns.SetPromiscuous(true); err != nil {
		t.Fatal(err)
	}
	if !ns.Promiscuous() {
		t.Fatal("promiscuous not set")
	}
	off, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
		Config:             fpgavirtio.Config{Seed: 3},
		DisableCsumOffload: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if off.ChecksumOffloaded() {
		t.Fatal("offload negotiated despite disable")
	}
}

func TestNetSessionBypass(t *testing.T) {
	ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: 4, Quiet: true}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := ns.BypassCopy(4096)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("bypass duration %v", d)
	}
}

func TestXDMASessionRoundTrip(t *testing.T) {
	xs, err := fpgavirtio.OpenXDMA(fpgavirtio.XDMAConfig{Config: fpgavirtio.Config{Seed: 5, Quiet: true}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := xs.RoundTripDetailed(make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	if s.Total <= 0 || s.Hardware <= 0 || s.Software <= 0 {
		t.Fatalf("breakdown = %+v", s)
	}
	// XDMA: the driver does the descriptor work and fields two
	// interrupts, so software exceeds hardware (paper Fig. 5).
	if s.Software <= s.Hardware {
		t.Fatalf("XDMA software (%v) should exceed hardware (%v)", s.Software, s.Hardware)
	}
	st := xs.BusStats()
	if st.Interrupts != 2 {
		t.Fatalf("interrupts = %d, want 2 (H2C + C2H)", st.Interrupts)
	}
}

func TestConsoleSession(t *testing.T) {
	cs, err := fpgavirtio.OpenConsole(fpgavirtio.Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("console over virtio over pcie")
	echo, rtt, err := cs.WriteRead(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echo, msg) {
		t.Fatalf("console echo = %q", echo)
	}
	if rtt <= 0 {
		t.Fatal("zero console rtt")
	}
}

func TestBlkSession(t *testing.T) {
	bs, err := fpgavirtio.OpenBlk(fpgavirtio.BlkConfig{Config: fpgavirtio.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if bs.CapacitySectors() != 2048 {
		t.Fatalf("capacity = %d", bs.CapacitySectors())
	}
	sector := bytes.Repeat([]byte{0x5a}, 512)
	if _, err := bs.WriteSector(9, sector); err != nil {
		t.Fatal(err)
	}
	if err := bs.Flush(); err != nil {
		t.Fatal(err)
	}
	got, _, err := bs.ReadSector(9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, sector) {
		t.Fatal("sector mismatch")
	}
}

func TestGen3LinkFaster(t *testing.T) {
	measure := func(link fpgavirtio.Link) time.Duration {
		ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: 8, Quiet: true, Link: link}})
		if err != nil {
			t.Fatal(err)
		}
		s, err := ns.PingDetailed(make([]byte, 1024))
		if err != nil {
			t.Fatal(err)
		}
		return s.Hardware
	}
	slow := measure(fpgavirtio.Gen2x2)
	fast := measure(fpgavirtio.Gen3x4)
	if fast >= slow {
		t.Fatalf("Gen3x4 hw time (%v) not faster than Gen2x2 (%v)", fast, slow)
	}
}

func TestEventIdxPingStillWorks(t *testing.T) {
	ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
		Config:      fpgavirtio.Config{Seed: 9},
		UseEventIdx: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 300)
	for i := 0; i < 20; i++ {
		echo, _, err := ns.Ping(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(echo, payload) {
			t.Fatalf("iteration %d: echo mismatch", i)
		}
	}
}

func TestEventIdxReducesBurstSignalling(t *testing.T) {
	burst := func(eventIdx bool) fpgavirtio.BurstResult {
		ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
			Config:      fpgavirtio.Config{Seed: 10, Quiet: true},
			UseEventIdx: eventIdx,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ns.Burst(32, 128)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	flags := burst(false)
	evidx := burst(true)
	if evidx.Doorbells >= flags.Doorbells {
		t.Errorf("EVENT_IDX doorbells %d >= flags %d", evidx.Doorbells, flags.Doorbells)
	}
	if evidx.Interrupts > flags.Interrupts {
		t.Errorf("EVENT_IDX interrupts %d > flags %d", evidx.Interrupts, flags.Interrupts)
	}
	if evidx.Elapsed <= 0 || flags.Elapsed <= 0 {
		t.Error("burst elapsed times must be positive")
	}
}

func TestPackedRingEndToEnd(t *testing.T) {
	ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
		Config:        fpgavirtio.Config{Seed: 11},
		UsePackedRing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{3}, 400)
	for i := 0; i < 30; i++ {
		echo, _, err := ns.Ping(payload)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !bytes.Equal(echo, payload) {
			t.Fatalf("iteration %d: echo mismatch", i)
		}
	}
	if res, err := ns.Burst(48, 200); err != nil || res.Elapsed <= 0 {
		t.Fatalf("packed burst: %+v err=%v", res, err)
	}
}

func TestPackedRingFasterHardware(t *testing.T) {
	measure := func(packed bool) time.Duration {
		ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
			Config:        fpgavirtio.Config{Seed: 12, Quiet: true},
			UsePackedRing: packed,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := ns.PingDetailed(make([]byte, 256))
		if err != nil {
			t.Fatal(err)
		}
		return s.Hardware
	}
	split := measure(false)
	packed := measure(true)
	// The packed format discovers chains with one read where the split
	// format needs an avail-index read, a slot read and per-descriptor
	// reads: hardware time must drop measurably.
	if packed >= split {
		t.Fatalf("packed hw %v not below split hw %v", packed, split)
	}
	if float64(packed) > 0.9*float64(split) {
		t.Fatalf("packed hw %v saved <10%% vs split %v", packed, split)
	}
}
