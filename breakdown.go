package fpgavirtio

import (
	"fmt"
	"sort"
	"time"

	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// LayerBreakdown is the time one layer accumulated across a breakdown
// run, straight from the telemetry spans. Layers overlap (a driver span
// contains the PCIe transactions it issued), so the per-layer times are
// occupancy, not a partition of the total.
type LayerBreakdown struct {
	Layer string
	Time  time.Duration
	Spans int
}

// BreakdownReport is the span-derived latency attribution of a
// measurement run: the paper's software/hardware split computed by
// folding telemetry spans instead of reading the FPGA performance
// counters, plus the full per-layer occupancy table. Because the
// device-layer spans bracket the exact instants the hardware counters
// sample, the two attributions agree to within the counters' 8 ns
// quantization — BreakdownReport is the cross-check for the RTTSample
// decomposition, and the richer view of where the time went.
type BreakdownReport struct {
	Driver       string // "virtio-net" or "xdma"
	Rounds       int
	PayloadBytes int

	// Summed over all rounds.
	Total    time.Duration // application-observed time (app-layer spans)
	Hardware time.Duration // device engine occupancy (DMA/queue service)
	RespGen  time.Duration // user-logic response generation (virtio only)
	Software time.Duration // Total - Hardware - RespGen

	Layers  []LayerBreakdown
	Samples []RTTSample // the counter-based decomposition, per round

	// Critical is the per-layer critical-path attribution summed over
	// all rounds: each round's app window partitioned by the innermost
	// active span. Unlike Layers (occupancy, where nesting
	// double-counts), these totals partition the app time exactly, so
	// CriticalTotal == Total by construction and each layer's critical
	// time is bounded by its occupancy — the structural cross-check
	// between the two attributions.
	Critical      []LayerBreakdown
	CriticalTotal time.Duration

	// OpenSpans counts spans begun but never closed during the run —
	// always zero on a healthy round trip.
	OpenSpans int
}

// Breakdown measures rounds echo round trips of the given payload size
// with span recording enabled and returns the span-derived attribution
// alongside the per-round counter-based samples.
func (ns *NetSession) Breakdown(rounds, payloadBytes int) (BreakdownReport, error) {
	if rounds <= 0 {
		return BreakdownReport{}, fmt.Errorf("fpgavirtio: breakdown needs rounds > 0, got %d", rounds)
	}
	rec := telemetry.NewRecorder(0)
	ns.s.SetSpanSink(rec)
	defer ns.s.SetSpanSink(nil)

	payload := make([]byte, payloadBytes)
	samples := make([]RTTSample, 0, rounds)
	for i := 0; i < rounds; i++ {
		sample, err := ns.PingDetailed(payload)
		if err != nil {
			return BreakdownReport{}, err
		}
		samples = append(samples, sample)
	}
	return foldBreakdown("virtio-net", rounds, payloadBytes, rec, samples), nil
}

// Breakdown measures rounds write()+read() round trips of the given
// transfer size with span recording enabled and returns the
// span-derived attribution alongside the per-round counter-based
// samples.
func (xs *XDMASession) Breakdown(rounds, nbytes int) (BreakdownReport, error) {
	if rounds <= 0 {
		return BreakdownReport{}, fmt.Errorf("fpgavirtio: breakdown needs rounds > 0, got %d", rounds)
	}
	rec := telemetry.NewRecorder(0)
	xs.s.SetSpanSink(rec)
	defer xs.s.SetSpanSink(nil)

	data := make([]byte, nbytes)
	xs.host.RNG().Bytes(data)
	samples := make([]RTTSample, 0, rounds)
	for i := 0; i < rounds; i++ {
		sample, err := xs.RoundTripDetailed(data)
		if err != nil {
			return BreakdownReport{}, err
		}
		samples = append(samples, sample)
	}
	return foldBreakdown("xdma", rounds, nbytes, rec, samples), nil
}

// foldBreakdown computes the attribution from recorded spans. The
// hardware share mirrors what the RTTSample math reads from the FPGA
// counters: on the VirtIO path the queue-engine spans (minus the
// response-generation spans deducted per the paper's §IV-B), on the
// vendor path the DMA-engine channel-run spans.
func foldBreakdown(driver string, rounds, payload int, rec *telemetry.Recorder, samples []RTTSample) BreakdownReport {
	spans := rec.Spans()
	var total, hw, rg sim.Duration
	for _, s := range spans {
		d := s.Duration()
		switch {
		case s.Layer == telemetry.LayerApp:
			total += d
		case s.Layer == telemetry.LayerVirtIODevice && s.Name == "respgen":
			rg += d
		case s.Layer == telemetry.LayerVirtIODevice && driver == "virtio-net":
			hw += d
		case s.Layer == telemetry.LayerDMAEngine && driver == "xdma":
			hw += d
		}
	}
	var layers []LayerBreakdown
	for _, st := range telemetry.Attribution(spans) {
		layers = append(layers, LayerBreakdown{Layer: st.Layer, Time: toStd(st.Total), Spans: st.Spans})
	}

	// Critical-path fold: partition each round's app window and sum the
	// per-layer shares across rounds. Accumulation stays in simulated
	// picoseconds and converts once at the end — converting per round
	// would truncate sub-ns residue per (round, layer) and the layer
	// sums would drift below CriticalTotal.
	type critSum struct {
		total    sim.Duration
		segments int
	}
	critAcc := make(map[string]*critSum)
	var critTotal sim.Duration
	for _, s := range spans {
		if s.Layer != telemetry.LayerApp {
			continue
		}
		cp := telemetry.AnalyzeCriticalPathAt(spans, s)
		critTotal += cp.Total()
		for _, st := range cp.Layers {
			cs := critAcc[st.Layer]
			if cs == nil {
				cs = &critSum{}
				critAcc[st.Layer] = cs
			}
			cs.total += st.Total
			cs.segments += st.Segments
		}
	}
	// Telescoping conversion in a fixed layer order (canonical first,
	// leftovers sorted — never map order, so reports stay byte-stable):
	// layer ns values are differences of truncated cumulative ps, hence
	// sum exactly to toStd(critTotal).
	critLayers := make([]string, 0, len(critAcc))
	for _, l := range telemetry.CanonicalLayers {
		if _, ok := critAcc[l]; ok {
			critLayers = append(critLayers, l)
		}
	}
	rest := make([]string, 0, len(critAcc))
	for l := range critAcc {
		if telemetry.LayerRank(l) >= len(telemetry.CanonicalLayers) {
			rest = append(rest, l)
		}
	}
	sort.Strings(rest)
	critLayers = append(critLayers, rest...)
	var critical []LayerBreakdown
	var accPs sim.Duration
	var prev time.Duration
	for _, l := range critLayers {
		cs := critAcc[l]
		accPs += cs.total
		cur := toStd(accPs)
		critical = append(critical, LayerBreakdown{Layer: l, Time: cur - prev, Spans: cs.segments})
		prev = cur
	}

	return BreakdownReport{
		Driver:        driver,
		Rounds:        rounds,
		PayloadBytes:  payload,
		Total:         toStd(total),
		Hardware:      toStd(hw),
		RespGen:       toStd(rg),
		Software:      toStd(total - hw - rg),
		Layers:        layers,
		Samples:       samples,
		Critical:      critical,
		CriticalTotal: toStd(critTotal),
		OpenSpans:     len(rec.OpenSpans()),
	}
}
