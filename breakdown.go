package fpgavirtio

import (
	"fmt"
	"time"

	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// LayerBreakdown is the time one layer accumulated across a breakdown
// run, straight from the telemetry spans. Layers overlap (a driver span
// contains the PCIe transactions it issued), so the per-layer times are
// occupancy, not a partition of the total.
type LayerBreakdown struct {
	Layer string
	Time  time.Duration
	Spans int
}

// BreakdownReport is the span-derived latency attribution of a
// measurement run: the paper's software/hardware split computed by
// folding telemetry spans instead of reading the FPGA performance
// counters, plus the full per-layer occupancy table. Because the
// device-layer spans bracket the exact instants the hardware counters
// sample, the two attributions agree to within the counters' 8 ns
// quantization — BreakdownReport is the cross-check for the RTTSample
// decomposition, and the richer view of where the time went.
type BreakdownReport struct {
	Driver       string // "virtio-net" or "xdma"
	Rounds       int
	PayloadBytes int

	// Summed over all rounds.
	Total    time.Duration // application-observed time (app-layer spans)
	Hardware time.Duration // device engine occupancy (DMA/queue service)
	RespGen  time.Duration // user-logic response generation (virtio only)
	Software time.Duration // Total - Hardware - RespGen

	Layers  []LayerBreakdown
	Samples []RTTSample // the counter-based decomposition, per round

	// OpenSpans counts spans begun but never closed during the run —
	// always zero on a healthy round trip.
	OpenSpans int
}

// Breakdown measures rounds echo round trips of the given payload size
// with span recording enabled and returns the span-derived attribution
// alongside the per-round counter-based samples.
func (ns *NetSession) Breakdown(rounds, payloadBytes int) (BreakdownReport, error) {
	if rounds <= 0 {
		return BreakdownReport{}, fmt.Errorf("fpgavirtio: breakdown needs rounds > 0, got %d", rounds)
	}
	rec := telemetry.NewRecorder(0)
	ns.s.SetSpanSink(rec)
	defer ns.s.SetSpanSink(nil)

	payload := make([]byte, payloadBytes)
	samples := make([]RTTSample, 0, rounds)
	for i := 0; i < rounds; i++ {
		sample, err := ns.PingDetailed(payload)
		if err != nil {
			return BreakdownReport{}, err
		}
		samples = append(samples, sample)
	}
	return foldBreakdown("virtio-net", rounds, payloadBytes, rec, samples), nil
}

// Breakdown measures rounds write()+read() round trips of the given
// transfer size with span recording enabled and returns the
// span-derived attribution alongside the per-round counter-based
// samples.
func (xs *XDMASession) Breakdown(rounds, nbytes int) (BreakdownReport, error) {
	if rounds <= 0 {
		return BreakdownReport{}, fmt.Errorf("fpgavirtio: breakdown needs rounds > 0, got %d", rounds)
	}
	rec := telemetry.NewRecorder(0)
	xs.s.SetSpanSink(rec)
	defer xs.s.SetSpanSink(nil)

	data := make([]byte, nbytes)
	xs.host.RNG().Bytes(data)
	samples := make([]RTTSample, 0, rounds)
	for i := 0; i < rounds; i++ {
		sample, err := xs.RoundTripDetailed(data)
		if err != nil {
			return BreakdownReport{}, err
		}
		samples = append(samples, sample)
	}
	return foldBreakdown("xdma", rounds, nbytes, rec, samples), nil
}

// foldBreakdown computes the attribution from recorded spans. The
// hardware share mirrors what the RTTSample math reads from the FPGA
// counters: on the VirtIO path the queue-engine spans (minus the
// response-generation spans deducted per the paper's §IV-B), on the
// vendor path the DMA-engine channel-run spans.
func foldBreakdown(driver string, rounds, payload int, rec *telemetry.Recorder, samples []RTTSample) BreakdownReport {
	spans := rec.Spans()
	var total, hw, rg sim.Duration
	for _, s := range spans {
		d := s.Duration()
		switch {
		case s.Layer == telemetry.LayerApp:
			total += d
		case s.Layer == telemetry.LayerVirtIODevice && s.Name == "respgen":
			rg += d
		case s.Layer == telemetry.LayerVirtIODevice && driver == "virtio-net":
			hw += d
		case s.Layer == telemetry.LayerDMAEngine && driver == "xdma":
			hw += d
		}
	}
	var layers []LayerBreakdown
	for _, st := range telemetry.Attribution(spans) {
		layers = append(layers, LayerBreakdown{Layer: st.Layer, Time: toStd(st.Total), Spans: st.Spans})
	}
	return BreakdownReport{
		Driver:       driver,
		Rounds:       rounds,
		PayloadBytes: payload,
		Total:        toStd(total),
		Hardware:     toStd(hw),
		RespGen:      toStd(rg),
		Software:     toStd(total - hw - rg),
		Layers:       layers,
		Samples:      samples,
		OpenSpans:    len(rec.OpenSpans()),
	}
}
