package fvassert

import "testing"

// TestFailfMatchesEnabled holds in both build modes: with the
// fvinvariants tag Failf must panic, without it Failf must be inert.
func TestFailfMatchesEnabled(t *testing.T) {
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		Failf("want %d", 1)
		return
	}()
	if panicked != Enabled {
		t.Fatalf("Failf panicked=%v with Enabled=%v", panicked, Enabled)
	}
}
