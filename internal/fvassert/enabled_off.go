//go:build !fvinvariants

package fvassert

// Enabled reports that runtime invariant checking is compiled out.
const Enabled = false
