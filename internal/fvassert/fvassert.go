// Package fvassert is the runtime arm of the fvlint invariant suite.
// Built normally, Enabled is a compile-time false and every assertion
// site folds away to nothing. Built with `-tags fvinvariants` (as
// `make flake` does), the ring-ordering and kick-flush rules the
// static analyzers enforce at the source level are also checked
// against live execution: double-published descriptor heads,
// completions for chains that were never posted, and processes
// parking with a batched doorbell still unflushed all panic at the
// violation site instead of surfacing later as a hung simulation.
//
// Assertion sites follow the pattern
//
//	if fvassert.Enabled && bad {
//		fvassert.Failf("...", ...)
//	}
//
// so the disabled build pays neither branch nor allocation.
package fvassert

import "fmt"

// Failf panics with an fvinvariant-prefixed message when assertions are
// enabled; it is a no-op otherwise (callers gate on Enabled anyway so
// argument construction is also skipped).
func Failf(format string, args ...any) {
	if !Enabled {
		return
	}
	panic("fvinvariant: " + fmt.Sprintf(format, args...))
}
