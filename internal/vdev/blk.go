package vdev

import (
	"fpgavirtio/internal/fpga"
	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/virtio"
)

// mAddr converts a byte offset into a card-memory address.
func mAddr(off int) mem.Addr { return mem.Addr(off) }

// BlkQueueReq is the single request queue of the block device.
const BlkQueueReq = 0

// BlkOptions parameterizes a block-device instance (the storage-
// accelerator use case from the paper's introduction).
type BlkOptions struct {
	Link pcie.LinkConfig
	// CapacitySectors is the device size in 512-byte sectors.
	CapacitySectors uint64
}

// BlkDevice is the VirtIO block personality backed by card memory
// (standing in for board DRAM behind the DMA engine).
type BlkDevice struct {
	ctrl    *Controller
	opt     BlkOptions
	storage *fpga.BRAM
	reads   int
	writes  int
}

// NewBlk attaches a block device to the root complex.
func NewBlk(s *sim.Sim, rc *pcie.RootComplex, name string, opt BlkOptions) *BlkDevice {
	if opt.CapacitySectors == 0 {
		opt.CapacitySectors = 2048 // 1 MiB
	}
	d := &BlkDevice{
		opt:     opt,
		storage: fpga.NewBRAM(name+".dram", int(opt.CapacitySectors)*virtio.BlkSectorSize),
	}
	d.ctrl = NewController(s, rc, name, d, Options{Link: opt.Link})
	return d
}

// Controller returns the underlying VirtIO controller.
func (d *BlkDevice) Controller() *Controller { return d.ctrl }

// Storage exposes the backing card memory (tests seed it directly).
func (d *BlkDevice) Storage() *fpga.BRAM { return d.storage }

// Stats reports completed read and write requests.
func (d *BlkDevice) Stats() (reads, writes int) { return d.reads, d.writes }

// Type implements Personality.
func (d *BlkDevice) Type() virtio.DeviceType { return virtio.DeviceBlock }

// DeviceFeatures implements Personality.
func (d *BlkDevice) DeviceFeatures() virtio.Feature { return 0 }

// NumQueues implements Personality.
func (d *BlkDevice) NumQueues() int { return 1 }

// QueueDir implements Personality.
func (d *BlkDevice) QueueDir(q int) Dir { return DriverToDevice }

// ConfigBytes implements Personality: capacity in sectors.
func (d *BlkDevice) ConfigBytes() []byte {
	b := make([]byte, virtio.BlkCfgLen)
	c := d.opt.CapacitySectors
	for i := 0; i < 8; i++ {
		b[virtio.BlkCfgCapacity+i] = byte(c >> (8 * i))
	}
	return b
}

// HandleDriverChain implements Personality: parse the request header,
// perform the sector operation against card memory, and return the
// device-writable bytes ([data +] status).
func (d *BlkDevice) HandleDriverChain(p *sim.Proc, q int, data []byte, writable int) []byte {
	hdr, err := virtio.DecodeBlkReqHdr(data)
	if err != nil {
		return []byte{virtio.BlkStatusIOErr}
	}
	payload := data[virtio.BlkReqHdrSize:]
	clk := d.ctrl.Clock()
	switch hdr.Type {
	case virtio.BlkTIn:
		// Read: the request length is the chain's writable capacity
		// minus the trailing status byte (virtio-blk §5.2.6).
		n := writable - 1
		off := int(hdr.Sector) * virtio.BlkSectorSize
		if n <= 0 || n%virtio.BlkSectorSize != 0 || off+n > d.storage.Size() {
			return []byte{virtio.BlkStatusIOErr}
		}
		p.Sleep(clk.Cycles(clk.CyclesFor(n, 16)))
		out := d.storage.Read(mAddr(off), n)
		d.reads++
		return append(out, virtio.BlkStatusOK)
	case virtio.BlkTOut:
		off := int(hdr.Sector) * virtio.BlkSectorSize
		if off+len(payload) > d.storage.Size() || len(payload)%virtio.BlkSectorSize != 0 {
			return []byte{virtio.BlkStatusIOErr}
		}
		p.Sleep(clk.Cycles(clk.CyclesFor(len(payload), 16)))
		d.storage.Write(mAddr(off), payload)
		d.writes++
		return []byte{virtio.BlkStatusOK}
	case virtio.BlkTFlush:
		return []byte{virtio.BlkStatusOK}
	default:
		return []byte{virtio.BlkStatusUnsupp}
	}
}
