package vdev_test

import (
	"bytes"
	"testing"

	"fpgavirtio/internal/drivers/virtioblk"
	"fpgavirtio/internal/drivers/virtionet"
	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/netstack"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/vdev"
	"fpgavirtio/internal/virtio"
)

// virtioblkProbe keeps the two-device test terse.
var virtioblkProbe = virtioblk.Probe

// Failure-injection tests: malformed or hostile inputs must fail
// loudly (model panics standing in for bus errors) or cleanly (error
// returns), never corrupt state silently.

func TestDriverRejectedFeatures(t *testing.T) {
	// A device that clears FEATURES_OK models feature rejection; the
	// transport must report it. We emulate by probing a console and
	// asking for a feature it cannot offer combined with direct status
	// manipulation through the BAR.
	s, h := quietHost(31)
	dev := vdev.NewConsole(s, h.RC, "vcon", vdev.ConsoleOptions{})
	s.Go("app", func(p *sim.Proc) {
		defer s.Stop()
		infos := h.RC.Enumerate(p)
		bar := infos[0].BAR[0]
		// Drive the status machine by hand: set FEATURES_OK, then
		// verify reading it back reflects the device's acceptance.
		h.RC.MMIOWrite(p, bar+uint64(virtio.CommonDeviceStatus), 1, virtio.StatusAcknowledge|virtio.StatusDriver|virtio.StatusFeaturesOK)
		p.Sleep(sim.Us(2))
		st := h.RC.MMIORead(p, bar+uint64(virtio.CommonDeviceStatus), 1)
		if st&virtio.StatusFeaturesOK == 0 {
			t.Error("device cleared FEATURES_OK for acceptable features")
		}
		// Reset mid-negotiation drops everything.
		h.RC.MMIOWrite(p, bar+uint64(virtio.CommonDeviceStatus), 1, 0)
		p.Sleep(sim.Us(2))
		if dev.Controller().Status() != 0 {
			t.Errorf("status after reset = %#x", dev.Controller().Status())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNotifyOutOfRangeQueueIgnored(t *testing.T) {
	s, h := quietHost(32)
	dev := vdev.NewConsole(s, h.RC, "vcon", vdev.ConsoleOptions{})
	s.Go("app", func(p *sim.Proc) {
		defer s.Stop()
		infos := h.RC.Enumerate(p)
		bar := infos[0].BAR[0]
		// Doorbell for queue 37 (notify window offset 37*4): must be
		// dropped, not crash or wake anything.
		h.RC.MMIOWrite(p, bar+0x1000+37*4, 2, 37)
		p.Sleep(sim.Us(5))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if dev.Controller().NotifyCount() != 0 {
		// Out-of-range notifies are not counted as queue doorbells.
		t.Errorf("notify count = %d", dev.Controller().NotifyCount())
	}
}

func TestResetDuringTrafficRecovers(t *testing.T) {
	netTestbed(t, nil, nil,
		func(p *sim.Proc, h *hostos.Host, st *netstack.Stack, dev *vdev.NetDevice, drv *virtionet.Device) {
			sock, _ := st.Bind(4100)
			payload := []byte("before")
			if err := sock.SendTo(p, netstack.IP(10, 0, 0, 2), 9000, payload); err != nil {
				t.Error(err)
				return
			}
			got, _, _, _ := sock.RecvFrom(p)
			if !bytes.Equal(got, payload) {
				t.Error("pre-reset echo broken")
				return
			}
			// Full reset and re-bring-up through the driver's transport.
			drv.Transport().Reset(p)
			if dev.Controller().Status() != 0 {
				t.Error("device not reset")
			}
		})
}

func TestQueueSizeNegotiationBounds(t *testing.T) {
	s, h := quietHost(33)
	vdev.NewConsole(s, h.RC, "vcon", vdev.ConsoleOptions{})
	s.Go("app", func(p *sim.Proc) {
		defer s.Stop()
		infos := h.RC.Enumerate(p)
		bar := infos[0].BAR[0]
		sel := func(q uint16) {
			h.RC.MMIOWrite(p, bar+uint64(virtio.CommonQueueSelect), 2, uint64(q))
		}
		size := func() uint64 {
			return h.RC.MMIORead(p, bar+uint64(virtio.CommonQueueSize), 2)
		}
		sel(0)
		if got := size(); got != 256 {
			t.Errorf("default size = %d", got)
		}
		// Non-power-of-two size writes are rejected.
		h.RC.MMIOWrite(p, bar+uint64(virtio.CommonQueueSize), 2, 100)
		p.Sleep(sim.Us(2))
		if got := size(); got != 256 {
			t.Errorf("invalid size accepted: %d", got)
		}
		// Larger-than-max writes are rejected.
		h.RC.MMIOWrite(p, bar+uint64(virtio.CommonQueueSize), 2, 1024)
		p.Sleep(sim.Us(2))
		if got := size(); got != 256 {
			t.Errorf("oversize accepted: %d", got)
		}
		// Valid shrink is accepted.
		h.RC.MMIOWrite(p, bar+uint64(virtio.CommonQueueSize), 2, 64)
		p.Sleep(sim.Us(2))
		if got := size(); got != 64 {
			t.Errorf("valid size rejected: %d", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestTwoDevicesOneRootComplex drives a network device and a block
// device attached to the same host simultaneously: enumeration must
// assign disjoint BARs, both drivers must bind, and interleaved traffic
// on both functions must not interfere.
func TestTwoDevicesOneRootComplex(t *testing.T) {
	s, h := quietHost(40)
	netDev := vdev.NewNet(s, h.RC, "vnet0", vdev.NetOptions{
		MAC: netstack.MAC{2, 0, 0, 0, 0, 9}, OfferCsum: true,
	})
	blkDev := vdev.NewBlk(s, h.RC, "vblk0", vdev.BlkOptions{CapacitySectors: 64})
	st := netstack.New(h, netstack.DefaultCosts())
	run2 := func(fn func(p *sim.Proc)) {
		done := false
		s.Go("app", func(p *sim.Proc) {
			defer s.Stop()
			fn(p)
			done = true
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if !done {
			t.Fatal("app did not finish")
		}
	}
	run2(func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		if len(infos) != 2 {
			t.Fatalf("enumerated %d devices, want 2", len(infos))
		}
		// BAR windows must not overlap.
		if infos[0].BAR[0] == infos[1].BAR[0] {
			t.Fatal("BAR collision between functions")
		}
		var netInfo, blkInfo int
		if infos[0].DeviceID == virtio.DeviceNet.PCIDeviceID() {
			netInfo, blkInfo = 0, 1
		} else {
			netInfo, blkInfo = 1, 0
		}
		ndrv, err := virtionet.Probe(p, h, st, infos[netInfo], virtionet.DefaultOptions("eth0"))
		if err != nil {
			t.Fatalf("net probe: %v", err)
		}
		st.AddInterface(ndrv, netstack.IP(10, 0, 0, 1))
		st.AddRoute(netstack.IP(10, 0, 0, 0), netstack.IP(255, 255, 255, 0), "eth0")
		st.AddARP(netstack.IP(10, 0, 0, 2), netstack.MAC{2, 0, 0, 0, 0, 9})

		bdrv, err := virtioblkProbe(p, h, infos[blkInfo])
		if err != nil {
			t.Fatalf("blk probe: %v", err)
		}

		sock, _ := st.Bind(6100)
		sector := bytes.Repeat([]byte{0xcd}, 512)
		for i := 0; i < 10; i++ {
			// Interleave: one echo, one sector write+read.
			if err := sock.SendTo(p, netstack.IP(10, 0, 0, 2), 9000, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			if err := bdrv.WriteSector(p, uint64(i%64), sector); err != nil {
				t.Fatal(err)
			}
			echo, _, _, err := sock.RecvFrom(p)
			if err != nil || echo[0] != byte(i) {
				t.Fatalf("echo %d: %v %v", i, echo, err)
			}
			back, err := bdrv.ReadSector(p, uint64(i%64))
			if err != nil || !bytes.Equal(back, sector) {
				t.Fatalf("sector %d mismatch: %v", i, err)
			}
		}
	})
	if tx, rx := netDev.Stats(); tx != 10 || rx != 10 {
		t.Errorf("net frames tx=%d rx=%d", tx, rx)
	}
	if r, w := blkDev.Stats(); r != 10 || w != 10 {
		t.Errorf("blk ops r=%d w=%d", r, w)
	}
}
