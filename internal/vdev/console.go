package vdev

import (
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/virtio"
)

// Console queue indices (receiveq, transmitq of port 0).
const (
	ConsoleQueueRX = 0
	ConsoleQueueTX = 1
)

// ByteHandler is console user logic: it consumes bytes written by the
// host and may return bytes to deliver back (the prior work [14]
// implemented exactly this console device).
type ByteHandler interface {
	HandleBytes(p *sim.Proc, data []byte) []byte
}

// EchoBytes is console user logic that reflects its input.
type EchoBytes struct{}

// HandleBytes implements ByteHandler.
func (EchoBytes) HandleBytes(p *sim.Proc, data []byte) []byte { return data }

// ConsoleOptions parameterizes a console-device instance.
type ConsoleOptions struct {
	Link    pcie.LinkConfig
	Handler ByteHandler
}

// ConsoleDevice is the VirtIO console personality.
type ConsoleDevice struct {
	ctrl *Controller
	opt  ConsoleOptions

	outbox [][]byte
	outC   *sim.Cond
}

// NewConsole attaches a console device to the root complex.
func NewConsole(s *sim.Sim, rc *pcie.RootComplex, name string, opt ConsoleOptions) *ConsoleDevice {
	if opt.Handler == nil {
		opt.Handler = EchoBytes{}
	}
	d := &ConsoleDevice{opt: opt, outC: sim.NewCond(s, name+".out")}
	d.ctrl = NewController(s, rc, name, d, Options{Link: opt.Link})
	s.Go(name+".userlogic", d.userLoop)
	return d
}

// Controller returns the underlying VirtIO controller.
func (d *ConsoleDevice) Controller() *Controller { return d.ctrl }

// Type implements Personality.
func (d *ConsoleDevice) Type() virtio.DeviceType { return virtio.DeviceConsole }

// DeviceFeatures implements Personality.
func (d *ConsoleDevice) DeviceFeatures() virtio.Feature { return 0 }

// NumQueues implements Personality.
func (d *ConsoleDevice) NumQueues() int { return 2 }

// QueueDir implements Personality.
func (d *ConsoleDevice) QueueDir(q int) Dir {
	if q == ConsoleQueueRX {
		return DeviceToDriver
	}
	return DriverToDevice
}

// ConfigBytes implements Personality: cols/rows/max_ports (unused).
func (d *ConsoleDevice) ConfigBytes() []byte { return make([]byte, 8) }

// HandleDriverChain implements Personality for the console TX queue.
func (d *ConsoleDevice) HandleDriverChain(p *sim.Proc, q int, data []byte, writable int) []byte {
	if q != ConsoleQueueTX {
		return nil
	}
	out := d.opt.Handler.HandleBytes(p, append([]byte{}, data...))
	if len(out) > 0 {
		d.outbox = append(d.outbox, out)
		d.outC.Broadcast()
	}
	return nil
}

func (d *ConsoleDevice) userLoop(p *sim.Proc) {
	for {
		for len(d.outbox) == 0 {
			d.outC.Wait(p)
		}
		data := d.outbox[0]
		d.outbox = d.outbox[1:]
		if err := d.ctrl.Deliver(p, ConsoleQueueRX, data); err != nil {
			panic("vdev: console: " + err.Error())
		}
	}
}
