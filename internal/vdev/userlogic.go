package vdev

import (
	"fpgavirtio/internal/fpga"
	"fpgavirtio/internal/netstack"
	"fpgavirtio/internal/sim"
)

// EchoHandler is the paper's test user logic: for every received UDP
// frame it generates a same-size UDP response (swapped addresses and
// ports, recomputed checksums), charging the fabric for header rewrite
// and checksum recomputation at line rate. The response buffer is
// handler-owned scratch, reused on the next HandleFrame call — the
// FrameHandler contract.
type EchoHandler struct {
	clk  *fpga.Clock
	resp []byte   // reused response frame
	out  [][]byte // reused one-element response list
}

// NewEchoHandler returns echo user logic on the given fabric clock.
func NewEchoHandler(clk *fpga.Clock) *EchoHandler { return &EchoHandler{clk: clk} }

// HandleFrame implements FrameHandler.
func (e *EchoHandler) HandleFrame(p *sim.Proc, frame []byte) [][]byte {
	resp, err := netstack.BuildEchoResponseInto(frame, e.resp)
	if err != nil {
		// Non-UDP frames (e.g. stray ARP) are dropped silently, as the
		// paper's echo design only answers the test flow.
		return nil
	}
	e.resp = resp
	// Parse/buffer/rewrite pipeline plus one checksum pass over the
	// frame at 16 B/cycle — the response-generation time the paper
	// deducts from the VirtIO measurements.
	cycles := 150 + e.clk.CyclesFor(len(resp), 16)
	p.Sleep(e.clk.Cycles(cycles))
	e.out = append(e.out[:0], resp)
	return e.out
}

// CountingHandler wraps a FrameHandler and counts invocations; used by
// tests and the SmartNIC example.
type CountingHandler struct {
	Inner  FrameHandler
	Frames int
}

// HandleFrame implements FrameHandler.
func (c *CountingHandler) HandleFrame(p *sim.Proc, frame []byte) [][]byte {
	c.Frames++
	if c.Inner == nil {
		return nil
	}
	return c.Inner.HandleFrame(p, frame)
}

// SinkHandler drops every frame (a pure receiver).
type SinkHandler struct{}

// HandleFrame implements FrameHandler.
func (SinkHandler) HandleFrame(p *sim.Proc, frame []byte) [][]byte { return nil }
