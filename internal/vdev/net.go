package vdev

import (
	"fmt"

	"fpgavirtio/internal/fpga"
	"fpgavirtio/internal/netstack"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
	"fpgavirtio/internal/virtio"
)

// Net queue indices (virtio-net: receiveq1, transmitq1, then the
// control queue when negotiated).
const (
	NetQueueRX   = 0
	NetQueueTX   = 1
	NetQueueCtrl = 2
)

// FrameHandler is the user-logic hook of the network device: it
// receives each frame the host transmitted and returns zero or more
// response frames to send back — the paper's echo logic returns one
// same-size UDP reply per packet. It runs in the user-logic fabric
// process; cycle costs inside are the implementation's responsibility.
// The frame argument and the returned frames are scratch valid only
// until the next HandleFrame call, so implementations may reuse their
// response buffers and must copy the input if they retain it.
type FrameHandler interface {
	HandleFrame(p *sim.Proc, frame []byte) [][]byte
}

// NetOptions parameterizes a network-device instance.
type NetOptions struct {
	Link pcie.LinkConfig
	MAC  netstack.MAC
	MTU  uint16
	// OfferCsum exposes VIRTIO_NET_F_CSUM/GUEST_CSUM (TX/RX checksum
	// offload); the driver decides whether to accept.
	OfferCsum bool
	// OfferCtrlVQ exposes the control virtqueue.
	OfferCtrlVQ bool
	// OfferEventIdx exposes VIRTIO_F_RING_EVENT_IDX.
	OfferEventIdx bool
	// OfferPacked exposes VIRTIO_F_RING_PACKED.
	OfferPacked bool
	// QueuePairs is the number of RX/TX queue pairs the device exposes
	// (default 1). More than one pair offers VIRTIO_NET_F_MQ and lays
	// the queues out as receiveq1, transmitq1, receiveq2, transmitq2,
	// ..., controlq per the spec.
	QueuePairs int
	// IRQCoalescePkts/IRQCoalesceTimer configure the controller's
	// per-queue interrupt coalescing under batch load (see Options).
	IRQCoalescePkts  int
	IRQCoalesceTimer sim.Duration
	Handler          FrameHandler
}

// txFrame is one transmitted frame queued for user logic, tagged with
// the queue pair it arrived on so the echo reply returns on the same
// pair (receive-side steering).
type txFrame struct {
	pair  int
	frame []byte
}

// NetDevice is the VirtIO network-device personality plus its user
// logic plumbing: the paper's test case (§III-A).
type NetDevice struct {
	ctrl *Controller
	opt  NetOptions

	frames    []txFrame
	frameHead int      // index of the next frame to pop
	framePool [][]byte // recycled frame buffers (TX engine -> user loop)
	sendBuf   []byte   // reused header+frame staging for SendOn
	frameC    *sim.Cond
	respGen   *fpga.PerfCounter
	promisc   bool
	curPairs  int
	rxFrames  int
	txFrames  int
}

// NewNet attaches a network device to the root complex.
func NewNet(s *sim.Sim, rc *pcie.RootComplex, name string, opt NetOptions) *NetDevice {
	if opt.MTU == 0 {
		opt.MTU = 1500
	}
	if opt.QueuePairs == 0 {
		opt.QueuePairs = 1
	}
	d := &NetDevice{opt: opt, curPairs: opt.QueuePairs, frameC: sim.NewCond(s, name+".frames")}
	d.ctrl = NewController(s, rc, name, d, Options{
		Link:             opt.Link,
		OfferEventIdx:    opt.OfferEventIdx,
		OfferPacked:      opt.OfferPacked,
		IRQCoalescePkts:  opt.IRQCoalescePkts,
		IRQCoalesceTimer: opt.IRQCoalesceTimer,
	})
	if d.opt.Handler == nil {
		// Default user logic: the paper's same-size UDP echo.
		d.opt.Handler = NewEchoHandler(d.ctrl.Clock())
	}
	d.respGen = fpga.NewPerfCounter(d.ctrl.Clock(), name+".respgen")
	s.Go(name+".userlogic", d.userLoop)
	return d
}

// Controller returns the underlying VirtIO controller.
func (d *NetDevice) Controller() *Controller { return d.ctrl }

// RespGenCounter returns the response-generation hardware counter,
// whose samples the experiment deducts per the paper's methodology.
func (d *NetDevice) RespGenCounter() *fpga.PerfCounter { return d.respGen }

// Stats reports frames seen in each direction.
func (d *NetDevice) Stats() (tx, rx int) { return d.txFrames, d.rxFrames }

// Type implements Personality.
func (d *NetDevice) Type() virtio.DeviceType { return virtio.DeviceNet }

// DeviceFeatures implements Personality.
func (d *NetDevice) DeviceFeatures() virtio.Feature {
	f := virtio.NetFMAC | virtio.NetFMTU | virtio.NetFStatus
	if d.opt.OfferCsum {
		f |= virtio.NetFCsum | virtio.NetFGuestCsum
	}
	if d.opt.OfferCtrlVQ {
		f |= virtio.NetFCtrlVQ
	}
	if d.opt.QueuePairs > 1 {
		f |= virtio.NetFMQ
	}
	return f
}

// NumQueues implements Personality.
func (d *NetDevice) NumQueues() int {
	n := 2 * d.opt.QueuePairs
	if d.opt.OfferCtrlVQ {
		n++
	}
	return n
}

// ctrlQueue is the control-queue index (after the last transmit queue).
func (d *NetDevice) ctrlQueue() int { return virtio.NetCtrlQueue(d.opt.QueuePairs) }

// QueueDir implements Personality.
func (d *NetDevice) QueueDir(q int) Dir {
	if d.opt.OfferCtrlVQ && q == d.ctrlQueue() {
		return DriverToDevice
	}
	if q%2 == 0 {
		return DeviceToDriver // receiveqN
	}
	return DriverToDevice // transmitqN
}

// ConfigBytes implements Personality: the virtio-net config window
// (MAC, status, max queue pairs, MTU).
func (d *NetDevice) ConfigBytes() []byte {
	b := make([]byte, virtio.NetCfgLen)
	copy(b[virtio.NetCfgMAC:], d.opt.MAC[:])
	b[virtio.NetCfgStatus] = virtio.NetStatusLinkUp
	b[virtio.NetCfgMaxVQP] = byte(d.opt.QueuePairs)
	b[virtio.NetCfgMaxVQP+1] = byte(d.opt.QueuePairs >> 8)
	b[virtio.NetCfgMTU] = byte(d.opt.MTU)
	b[virtio.NetCfgMTU+1] = byte(d.opt.MTU >> 8)
	return b
}

// HandleDriverChain implements Personality for the TX and control
// queues.
func (d *NetDevice) HandleDriverChain(p *sim.Proc, q int, data []byte, writable int) []byte {
	if d.opt.OfferCtrlVQ && q == d.ctrlQueue() {
		return d.handleCtrl(p, data)
	}
	if q%2 == 1 && q < 2*d.opt.QueuePairs {
		d.handleTx(p, q/2, data)
		return nil
	}
	panic(fmt.Sprintf("vdev: net: unexpected driver chain on queue %d", q))
}

// handleTx processes one transmitted packet: strip the virtio-net
// header, perform checksum offload if requested, queue the frame for
// user logic.
func (d *NetDevice) handleTx(p *sim.Proc, pair int, data []byte) {
	hdr, err := virtio.DecodeNetHdr(data)
	if err != nil {
		panic("vdev: net: " + err.Error())
	}
	// The chain data is queue-owned scratch, so the frame is copied into
	// a pooled buffer that the user loop recycles after handling.
	need := len(data) - virtio.NetHdrSize
	var frame []byte
	if n := len(d.framePool); n > 0 && cap(d.framePool[n-1]) >= need {
		frame = d.framePool[n-1][:need]
		d.framePool[n-1] = nil
		d.framePool = d.framePool[:n-1]
	} else {
		frame = make([]byte, need)
	}
	copy(frame, data[virtio.NetHdrSize:])
	if hdr.Flags&virtio.NetHdrFNeedsCsum != 0 {
		// Checksum datapath runs at line rate over the L4 region.
		clk := d.ctrl.Clock()
		n := len(frame) - int(hdr.CsumStart)
		if n > 0 {
			p.Sleep(clk.Cycles(clk.CyclesFor(n, 16) * csumPerBeatCycles))
		}
		if err := netstack.FillUDPChecksum(frame); err != nil {
			panic("vdev: net: csum offload: " + err.Error())
		}
	}
	d.txFrames++
	d.frames = append(d.frames, txFrame{pair: pair, frame: frame})
	d.frameC.Broadcast()
}

// handleCtrl executes a control-queue command and returns the ack byte.
func (d *NetDevice) handleCtrl(p *sim.Proc, data []byte) []byte {
	if len(data) < 2 {
		return []byte{virtio.NetCtrlAckErr}
	}
	class, cmd := data[0], data[1]
	p.Sleep(d.ctrl.Clock().Cycles(configAccessCycles))
	if class == virtio.NetCtrlRx && cmd == virtio.NetCtrlRxPromisc {
		if len(data) >= 3 {
			d.promisc = data[2] != 0
			return []byte{virtio.NetCtrlAckOK}
		}
	}
	if class == virtio.NetCtrlMQ && cmd == virtio.NetCtrlMQPairs {
		if len(data) >= 4 && d.ctrl.Negotiated().Has(virtio.NetFMQ) {
			pairs := int(data[2]) | int(data[3])<<8
			if pairs >= virtio.NetMQPairsMin && pairs <= d.opt.QueuePairs {
				d.curPairs = pairs
				return []byte{virtio.NetCtrlAckOK}
			}
		}
	}
	return []byte{virtio.NetCtrlAckErr}
}

// ActiveQueuePairs reports the pair count the driver activated through
// VIRTIO_NET_CTRL_MQ_VQ_PAIRS_SET (all offered pairs until then).
func (d *NetDevice) ActiveQueuePairs() int { return d.curPairs }

// Promiscuous reports the control-queue promiscuous setting.
func (d *NetDevice) Promiscuous() bool { return d.promisc }

// userLoop is the user-logic process: it pops frames the TX engine
// queued, invokes the handler (response generation, measured
// separately per the paper's Fig. 4 methodology), and delivers
// responses into the RX queue.
func (d *NetDevice) userLoop(p *sim.Proc) {
	for {
		for len(d.frames) == d.frameHead {
			d.frameC.Wait(p)
		}
		f := d.frames[d.frameHead]
		d.frames[d.frameHead] = txFrame{}
		d.frameHead++
		if d.frameHead == len(d.frames) {
			d.frames = d.frames[:0]
			d.frameHead = 0
		}

		// Span and counter bracket the same instants: respgen time is
		// deducted from hardware in both attribution schemes.
		d.respGen.Begin(p.Now())
		sp := p.Sim().BeginSpan(telemetry.LayerVirtIODevice, "respgen")
		resps := d.opt.Handler.HandleFrame(p, f.frame)
		d.respGen.End(p.Now())
		sp.End()

		for _, resp := range resps {
			if err := d.SendOn(p, f.pair, resp); err != nil {
				panic("vdev: net: " + err.Error())
			}
		}
		d.framePool = append(d.framePool, f.frame[:0])
	}
}

// Send delivers one frame to the host through the first receive queue,
// prefixed with a virtio-net header. When the driver negotiated
// GUEST_CSUM the device marks the frame's checksum as already validated.
func (d *NetDevice) Send(p *sim.Proc, frame []byte) error {
	return d.SendOn(p, 0, frame)
}

// SendOn delivers one frame through the receive queue of the given
// queue pair — the device's receive-side steering.
func (d *NetDevice) SendOn(p *sim.Proc, pair int, frame []byte) error {
	if pair < 0 || pair >= d.curPairs {
		return fmt.Errorf("vdev: net: queue pair %d not active (%d pairs)", pair, d.curPairs)
	}
	hdr := virtio.NetHdr{NumBuffers: 1}
	if d.ctrl.Negotiated().Has(virtio.NetFGuestCsum) {
		hdr.Flags = virtio.NetHdrFDataValid
	}
	n := virtio.NetHdrSize + len(frame)
	if cap(d.sendBuf) < n {
		d.sendBuf = make([]byte, n)
	}
	buf := d.sendBuf[:n]
	hdr.EncodeInto(buf)
	copy(buf[virtio.NetHdrSize:], frame)
	d.rxFrames++
	return d.ctrl.Deliver(p, virtio.NetRXQueue(pair), buf)
}
