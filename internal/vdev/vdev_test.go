package vdev_test

import (
	"bytes"
	"testing"

	"fpgavirtio/internal/drivers/virtioblk"
	"fpgavirtio/internal/drivers/virtioconsole"
	"fpgavirtio/internal/drivers/virtionet"
	"fpgavirtio/internal/drivers/virtiopci"
	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/netstack"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/vdev"
	"fpgavirtio/internal/virtio"
)

func quietHost(seed uint64) (*sim.Sim, *hostos.Host) {
	s := sim.New()
	cfg := hostos.DefaultConfig()
	cfg.JitterSigma = 0
	cfg.PreemptMeanGap = 0
	cfg.WakeTailProb = 0
	return s, hostos.New(s, 8<<20, cfg, seed)
}

var testMAC = netstack.MAC{0x02, 0xfb, 0x0a, 0x00, 0x00, 0x01}

// netTestbed brings up host + VirtIO net FPGA + driver + stack and runs
// fn as the application process.
func netTestbed(t *testing.T, devOpts func(*vdev.NetOptions), drvOpts func(*virtionet.Options),
	fn func(p *sim.Proc, h *hostos.Host, st *netstack.Stack, dev *vdev.NetDevice, drv *virtionet.Device)) {
	t.Helper()
	s, h := quietHost(7)
	opt := vdev.NetOptions{
		MAC:         testMAC,
		OfferCsum:   true,
		OfferCtrlVQ: true,
		Link:        pcie.DefaultGen2x2(),
	}
	if devOpts != nil {
		devOpts(&opt)
	}
	dev := vdev.NewNet(s, h.RC, "vnet0", opt)
	st := netstack.New(h, netstack.DefaultCosts())
	failed := false
	s.Go("app", func(p *sim.Proc) {
		defer s.Stop()
		infos := h.RC.Enumerate(p)
		if len(infos) != 1 {
			t.Errorf("enumerated %d devices", len(infos))
			failed = true
			return
		}
		dopt := virtionet.DefaultOptions("eth-fpga")
		if drvOpts != nil {
			drvOpts(&dopt)
		}
		drv, err := virtionet.Probe(p, h, st, infos[0], dopt)
		if err != nil {
			t.Error(err)
			failed = true
			return
		}
		st.AddInterface(drv, netstack.IP(10, 0, 0, 1))
		st.AddRoute(netstack.IP(10, 0, 0, 0), netstack.IP(255, 255, 255, 0), "eth-fpga")
		st.AddARP(netstack.IP(10, 0, 0, 2), testMAC)
		fn(p, h, st, dev, drv)
	})
	if err := s.Run(); err != nil && !failed {
		t.Fatal(err)
	}
}

// echoClock is a lazy echo handler bound to the device clock after
// construction (NewEchoHandler(nil) placeholder is replaced).
func TestNetEchoRoundTrip(t *testing.T) {
	var echoed []byte
	netTestbed(t,
		func(o *vdev.NetOptions) {},
		nil,
		func(p *sim.Proc, h *hostos.Host, st *netstack.Stack, dev *vdev.NetDevice, drv *virtionet.Device) {
			sock, err := st.Bind(4000)
			if err != nil {
				t.Error(err)
				return
			}
			payload := []byte("virtio-over-pcie-to-fpga")
			if err := sock.SendTo(p, netstack.IP(10, 0, 0, 2), 9000, payload); err != nil {
				t.Error(err)
				return
			}
			got, from, fromPort, err := sock.RecvFrom(p)
			if err != nil {
				t.Error(err)
				return
			}
			echoed = got
			if from != netstack.IP(10, 0, 0, 2) || fromPort != 9000 {
				t.Errorf("reply from %v:%d", from, fromPort)
			}
			if !bytes.Equal(got, payload) {
				t.Errorf("echo = %q, want %q", got, payload)
			}
			if tx, rx := dev.Stats(); tx != 1 || rx != 1 {
				t.Errorf("device stats tx=%d rx=%d", tx, rx)
			}
			if drv.TxPackets != 1 || drv.RxPackets != 1 {
				t.Errorf("driver stats tx=%d rx=%d", drv.TxPackets, drv.RxPackets)
			}
		})
	if echoed == nil {
		t.Fatal("no echo received")
	}
}

func TestNetManyPacketsAllSizes(t *testing.T) {
	netTestbed(t, nil, nil,
		func(p *sim.Proc, h *hostos.Host, st *netstack.Stack, dev *vdev.NetDevice, drv *virtionet.Device) {
			sock, _ := st.Bind(4001)
			rng := sim.NewRNG(11)
			for i, size := range []int{1, 18, 64, 128, 256, 512, 1024, 1400} {
				payload := make([]byte, size)
				rng.Bytes(payload)
				if err := sock.SendTo(p, netstack.IP(10, 0, 0, 2), 9000, payload); err != nil {
					t.Errorf("send %d: %v", i, err)
					return
				}
				got, _, _, _ := sock.RecvFrom(p)
				if !bytes.Equal(got, payload) {
					t.Errorf("size %d: echo mismatch", size)
					return
				}
			}
			if tx, _ := dev.Stats(); tx != 8 {
				t.Errorf("device saw %d frames", tx)
			}
		})
}

func TestNetFeatureNegotiationCsum(t *testing.T) {
	netTestbed(t, nil, nil,
		func(p *sim.Proc, h *hostos.Host, st *netstack.Stack, dev *vdev.NetDevice, drv *virtionet.Device) {
			f := dev.Controller().Negotiated()
			if !f.Has(virtio.FVersion1 | virtio.NetFCsum | virtio.NetFGuestCsum | virtio.NetFMAC) {
				t.Errorf("negotiated = %v", f)
			}
			off := drv.Offloads()
			if !off.TxCsum || !off.RxCsum {
				t.Errorf("offloads = %+v", off)
			}
			if drv.MAC() != testMAC {
				t.Errorf("driver MAC = %v", drv.MAC())
			}
			if drv.MTU() != 1500 {
				t.Errorf("MTU = %d", drv.MTU())
			}
		})
}

func TestNetCsumDeclined(t *testing.T) {
	netTestbed(t,
		func(o *vdev.NetOptions) { o.OfferCsum = false },
		nil,
		func(p *sim.Proc, h *hostos.Host, st *netstack.Stack, dev *vdev.NetDevice, drv *virtionet.Device) {
			if drv.Offloads().TxCsum {
				t.Error("TxCsum negotiated despite device not offering")
			}
			// Traffic still works: software checksums.
			sock, _ := st.Bind(4002)
			payload := []byte("software checksummed")
			if err := sock.SendTo(p, netstack.IP(10, 0, 0, 2), 9000, payload); err != nil {
				t.Error(err)
				return
			}
			got, _, _, _ := sock.RecvFrom(p)
			if !bytes.Equal(got, payload) {
				t.Error("echo mismatch without offload")
			}
		})
}

func TestNetCtrlQueuePromiscuous(t *testing.T) {
	netTestbed(t, nil, nil,
		func(p *sim.Proc, h *hostos.Host, st *netstack.Stack, dev *vdev.NetDevice, drv *virtionet.Device) {
			if dev.Promiscuous() {
				t.Error("promisc set before command")
			}
			if err := drv.SetPromiscuous(p, true); err != nil {
				t.Errorf("ctrl command: %v", err)
				return
			}
			if !dev.Promiscuous() {
				t.Error("promisc not set on device")
			}
			if err := drv.SetPromiscuous(p, false); err != nil {
				t.Error(err)
			}
			if dev.Promiscuous() {
				t.Error("promisc not cleared")
			}
		})
}

func TestNetSingleRxInterruptPerPacket(t *testing.T) {
	netTestbed(t, nil, nil,
		func(p *sim.Proc, h *hostos.Host, st *netstack.Stack, dev *vdev.NetDevice, drv *virtionet.Device) {
			sock, _ := st.Bind(4003)
			const n = 20
			for i := 0; i < n; i++ {
				if err := sock.SendTo(p, netstack.IP(10, 0, 0, 2), 9000, []byte("ping")); err != nil {
					t.Error(err)
					return
				}
				sock.RecvFrom(p)
			}
			// TX interrupts are suppressed, so interrupts ~= RX packets.
			// (A few extra are possible from ctrl/bring-up.)
			irqs := dev.Controller().EP().Stats().Interrupts
			if irqs < n || irqs > n+3 {
				t.Errorf("interrupts = %d for %d round trips", irqs, n)
			}
		})
}

func TestNetHardwareCountersRecord(t *testing.T) {
	netTestbed(t, nil, nil,
		func(p *sim.Proc, h *hostos.Host, st *netstack.Stack, dev *vdev.NetDevice, drv *virtionet.Device) {
			sock, _ := st.Bind(4004)
			sock.SendTo(p, netstack.IP(10, 0, 0, 2), 9000, make([]byte, 256))
			sock.RecvFrom(p)
			tx, okTx := dev.Controller().QueueCounter(vdev.NetQueueTX).TakeLast()
			rx, okRx := dev.Controller().QueueCounter(vdev.NetQueueRX).TakeLast()
			rg, okRg := dev.RespGenCounter().TakeLast()
			if !okTx || !okRx || !okRg {
				t.Fatalf("missing counter samples tx=%v rx=%v rg=%v", okTx, okRx, okRg)
			}
			for _, d := range []sim.Duration{tx, rx, rg} {
				if d <= 0 || d%sim.Ns(8) != 0 {
					t.Errorf("sample %v not positive/8ns-quantized", d)
				}
			}
			// The device-side ring walk involves several bus round trips:
			// hardware time must dominate the response generation.
			if tx < sim.Us(1) || rx < sim.Us(1) {
				t.Errorf("hw times implausibly small: tx=%v rx=%v", tx, rx)
			}
		})
}

func TestBypassInterface(t *testing.T) {
	netTestbed(t, nil, nil,
		func(p *sim.Proc, h *hostos.Host, st *netstack.Stack, dev *vdev.NetDevice, drv *virtionet.Device) {
			// User logic moves data to/from host memory with no driver
			// involvement (paper §III-A).
			src := h.Alloc.Alloc(4096, 64)
			dst := h.Alloc.Alloc(4096, 64)
			want := make([]byte, 4096)
			sim.NewRNG(3).Bytes(want)
			h.Mem.Write(src, want)
			done := false
			p.Sim().Go("fabric", func(fp *sim.Proc) {
				data := dev.Controller().BypassRead(fp, src, len(want))
				dev.Controller().BypassWrite(fp, dst, data)
				done = true
			})
			// Give the fabric time to finish, then check.
			p.Sleep(sim.Ms(1))
			if !done {
				t.Error("bypass transfer did not finish")
				return
			}
			if !bytes.Equal(h.Mem.Read(dst, len(want)), want) {
				t.Error("bypass data mismatch")
			}
		})
}

func TestControllerResetMidOperation(t *testing.T) {
	netTestbed(t, nil, nil,
		func(p *sim.Proc, h *hostos.Host, st *netstack.Stack, dev *vdev.NetDevice, drv *virtionet.Device) {
			sock, _ := st.Bind(4005)
			sock.SendTo(p, netstack.IP(10, 0, 0, 2), 9000, []byte("before reset"))
			sock.RecvFrom(p)
			// Reset through the transport: device must drop to status 0.
			drv.Transport().Reset(p)
			if dev.Controller().Status() != 0 {
				t.Errorf("status after reset = %#x", dev.Controller().Status())
			}
			if dev.Controller().Negotiated() != 0 {
				t.Error("features survived reset")
			}
		})
}

func TestConsoleEchoRoundTrip(t *testing.T) {
	s, h := quietHost(8)
	vdev.NewConsole(s, h.RC, "vcon0", vdev.ConsoleOptions{Link: pcie.DefaultGen2x2()})
	s.Go("app", func(p *sim.Proc) {
		defer s.Stop()
		infos := h.RC.Enumerate(p)
		con, err := virtioconsole.Probe(p, h, infos[0])
		if err != nil {
			t.Error(err)
			return
		}
		for _, msg := range []string{"hello", "fpga console", "third message"} {
			if err := con.Write(p, []byte(msg)); err != nil {
				t.Error(err)
				return
			}
			got, err := con.Read(p)
			if err != nil {
				t.Error(err)
				return
			}
			if string(got) != msg {
				t.Errorf("console echo = %q, want %q", got, msg)
				return
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBlkReadWriteFlush(t *testing.T) {
	s, h := quietHost(9)
	bdev := vdev.NewBlk(s, h.RC, "vblk0", vdev.BlkOptions{Link: pcie.DefaultGen2x2(), CapacitySectors: 128})
	s.Go("app", func(p *sim.Proc) {
		defer s.Stop()
		infos := h.RC.Enumerate(p)
		blk, err := virtioblk.Probe(p, h, infos[0])
		if err != nil {
			t.Error(err)
			return
		}
		if blk.CapacitySectors() != 128 {
			t.Errorf("capacity = %d", blk.CapacitySectors())
		}
		sector := make([]byte, virtio.BlkSectorSize)
		sim.NewRNG(12).Bytes(sector)
		if err := blk.WriteSector(p, 5, sector); err != nil {
			t.Error(err)
			return
		}
		if err := blk.Flush(p); err != nil {
			t.Error(err)
			return
		}
		got, err := blk.ReadSector(p, 5)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, sector) {
			t.Error("sector data mismatch")
		}
		// Out-of-range accesses fail cleanly.
		if _, err := blk.ReadSector(p, 500); err == nil {
			t.Error("out-of-range read succeeded")
		}
		if reads, writes := bdev.Stats(); reads != 1 || writes != 1 {
			t.Errorf("device stats r=%d w=%d", reads, writes)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTransportProbeRejectsNonVirtio(t *testing.T) {
	s, h := quietHost(10)
	cs := pcie.NewConfigSpace(0x10ee, 0x7024, 0, 0, 0)
	cs.SetBARSize(0, 4096)
	ep := h.RC.Attach("xdma", cs, pcie.DefaultGen2x2())
	ep.SetBarHandlers(0, pcie.BarHandlers{})
	s.Go("app", func(p *sim.Proc) {
		defer s.Stop()
		infos := h.RC.Enumerate(p)
		if _, err := virtiopci.Probe(p, h, infos[0]); err == nil {
			t.Error("probe of non-virtio device succeeded")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
