// Package vdev implements the paper's primary hardware contribution:
// a VirtIO-compliant controller on the FPGA, sitting between the XDMA
// PCIe machinery and user logic (paper Fig. 2). The controller
//
//   - presents VirtIO vendor/device IDs and the VirtIO PCI capability
//     chain at enumeration time,
//   - implements the common/notify/ISR/device configuration structures
//     in a BAR register block,
//   - runs the virtqueue engines: on a doorbell it walks the rings in
//     host memory through the DMA engine, moves payload data, publishes
//     used entries and raises MSI-X — the work that shifts the latency
//     breakdown toward hardware in the paper's Figure 4,
//   - exposes RX/TX queues with virtqueue semantics to user logic, and
//     a host-bypass DMA interface (paper §III-A).
//
// Device personalities (net, console, block) supply the device type,
// feature bits, config window and per-queue semantics.
package vdev

import (
	"fmt"

	"fpgavirtio/internal/faults"
	"fpgavirtio/internal/fpga"
	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
	"fpgavirtio/internal/virtio"
	"fpgavirtio/internal/xdmaip"
)

// Dir is a virtqueue's data direction.
type Dir int

// Queue directions.
const (
	// DriverToDevice queues carry buffers the driver fills (net TX,
	// console TX, blk requests); the device consumes them on notify.
	DriverToDevice Dir = iota
	// DeviceToDriver queues carry buffers the driver pre-posts and the
	// device fills (net RX, console RX).
	DeviceToDriver
)

// Personality supplies the device-type-specific behaviour on top of
// the generic controller — per the paper (§IV-B), only the minimum
// queue count and the device-specific configuration structure change
// across device types.
type Personality interface {
	Type() virtio.DeviceType
	DeviceFeatures() virtio.Feature
	NumQueues() int
	QueueDir(q int) Dir
	// ConfigBytes renders the device-specific configuration window.
	ConfigBytes() []byte
	// HandleDriverChain processes the device-readable payload of one
	// chain from a DriverToDevice queue, in the queue engine's fabric
	// process. writable is the total capacity of the chain's device-
	// writable segments; the returned bytes (possibly nil, at most
	// writable long) are scattered into them.
	HandleDriverChain(p *sim.Proc, q int, data []byte, writable int) []byte
}

// BAR0 window layout of the controller.
const (
	commonOffset = 0x0000
	notifyOffset = 0x1000
	isrOffset    = 0x2000
	deviceOffset = 0x3000
	barSize      = 0x4000

	notifyMultiplier = 4
)

// Fabric cycle costs of the controller FSMs.
const (
	notifyDecodeCycles = 6 // doorbell write to engine dispatch
	chainSetupCycles   = 8 // per-chain engine bookkeeping
	usedPublishCycles  = 4 // used-entry formatting
	configAccessCycles = 2 // register file access
	csumPerBeatCycles  = 1 // checksum datapath, 16B/cycle at line rate
)

// Options parameterizes the controller instance.
type Options struct {
	Link pcie.LinkConfig
	// QueueSizeMax is the queue size the device reports (default 256).
	QueueSizeMax uint16
	// OfferEventIdx exposes VIRTIO_F_RING_EVENT_IDX: index-threshold
	// based interrupt and doorbell suppression instead of the boolean
	// flags (spec §2.7.7).
	OfferEventIdx bool
	// OfferPacked exposes VIRTIO_F_RING_PACKED: the single-ring
	// descriptor format that lets the device discover a chain with one
	// bus read (spec §2.8).
	OfferPacked bool
	// IRQCoalescePkts holds each queue's interrupt until that many
	// completions have accumulated (or the coalesce timer expires) —
	// the NIC-style mitigation for batch load. 0 or 1 disables
	// coalescing and keeps the per-completion interrupt decision.
	IRQCoalescePkts int
	// IRQCoalesceTimer bounds how long a held completion may wait for
	// the packet threshold (default 15 us when coalescing is on).
	IRQCoalesceTimer sim.Duration
}

// queue is the controller-side state of one virtqueue.
type queue struct {
	idx     int
	dir     Dir
	sizeMax uint16
	size    uint16
	enabled bool
	msixVec uint16
	desc    uint64
	driver  uint64
	device  uint64

	dq     virtio.DeviceRing
	kicked bool
	cond   *sim.Cond
	hw     *fpga.PerfCounter

	// Interrupt-coalescing state: completions held since the last
	// interrupt, and whether a flush timer is pending.
	coalesced  int
	flushArmed bool

	// Precomputed span names so the engine hot path does not format.
	serviceSpan string
	deliverSpan string

	// rdBuf is the queue's gather scratch for ReadChainInto; the engine
	// services one chain at a time, so a single buffer per queue
	// suffices and steady-state servicing does not allocate.
	rdBuf []byte
}

// Controller is the FPGA-side VirtIO endpoint.
type Controller struct {
	sim  *sim.Sim
	clk  *fpga.Clock
	ep   *pcie.Endpoint
	port *xdmaip.Port
	pers Personality

	deviceFeatures virtio.Feature
	driverFeatures virtio.Feature
	status         byte
	statusCond     *sim.Cond
	isr            byte

	featureSel       uint32
	driverFeatureSel uint32
	queueSel         uint16
	msixConfig       uint16

	queues      []*queue
	deviceCfg   []byte
	cfgGen      byte
	notifyCount int
	opt         Options
	met         ctrlMetrics
}

// ctrlMetrics caches the controller's telemetry instruments.
type ctrlMetrics struct {
	notifies      *telemetry.Counter
	chains        *telemetry.Counter
	irqRaised     *telemetry.Counter
	irqSuppressed *telemetry.Counter
	irqCoalesced  *telemetry.Counter
}

// NewController attaches a VirtIO controller with the given personality
// to the root complex. Engines start parked and come alive when the
// driver sets DRIVER_OK.
func NewController(s *sim.Sim, rc *pcie.RootComplex, name string, pers Personality, opt Options) *Controller {
	if opt.QueueSizeMax == 0 {
		opt.QueueSizeMax = 256
	}
	if opt.Link.Lanes == 0 {
		opt.Link = pcie.DefaultGen2x2() // the paper's testbed link
	}
	if opt.IRQCoalescePkts > 1 && opt.IRQCoalesceTimer == 0 {
		opt.IRQCoalesceTimer = 15 * sim.Microsecond
	}
	clk := fpga.Default125MHz()

	classCode := uint32(0x020000) // network controller
	switch pers.Type() {
	case virtio.DeviceBlock:
		classCode = 0x010000
	case virtio.DeviceConsole:
		classCode = 0x078000
	}
	cs := pcie.NewConfigSpace(virtio.PCIVendorID, pers.Type().PCIDeviceID(), classCode,
		virtio.PCIVendorID, uint16(pers.Type()))
	cs.SetBARSize(0, barSize)

	nq := pers.NumQueues()
	vectors := 1 + nq // config vector + one per queue
	cs.AddCapability(pcie.CapIDMSIX, []byte{byte(vectors - 1), 0x00, 0, 0, 0, 0, 0, 0x80, 0, 0})
	deviceCfg := pers.ConfigBytes()
	for _, c := range []virtio.PCICap{
		{CfgType: virtio.CfgTypeCommon, Bar: 0, Offset: commonOffset, Length: 0x38},
		{CfgType: virtio.CfgTypeNotify, Bar: 0, Offset: notifyOffset, Length: uint32(nq * notifyMultiplier), NotifyOffMultiplier: notifyMultiplier},
		{CfgType: virtio.CfgTypeISR, Bar: 0, Offset: isrOffset, Length: 1},
		{CfgType: virtio.CfgTypeDevice, Bar: 0, Offset: deviceOffset, Length: uint32(len(deviceCfg))},
	} {
		cs.AddCapability(pcie.CapIDVendor, c.Encode())
	}

	ep := rc.Attach(name, cs, opt.Link)
	ep.ConfigureMSIX(vectors)

	feats := virtio.FVersion1 | virtio.FRingIndirectDesc | pers.DeviceFeatures()
	if opt.OfferEventIdx {
		feats |= virtio.FRingEventIdx
	}
	if opt.OfferPacked {
		feats |= virtio.FRingPacked
	}
	reg := rc.Metrics()
	c := &Controller{
		sim:            s,
		clk:            clk,
		ep:             ep,
		port:           xdmaip.NewPort(s, ep, clk),
		pers:           pers,
		deviceFeatures: feats,
		statusCond:     sim.NewCond(s, name+".status"),
		deviceCfg:      deviceCfg,
		opt:            opt,
		met: ctrlMetrics{
			notifies:      reg.Counter(telemetry.MetricVdevNotifies),
			chains:        reg.Counter(telemetry.MetricVdevChainsServiced),
			irqRaised:     reg.Counter(telemetry.MetricVdevIRQsRaised),
			irqSuppressed: reg.Counter(telemetry.MetricVdevIRQsSuppressed),
			irqCoalesced:  reg.Counter(telemetry.MetricVdevIRQsCoalesced),
		},
	}
	for i := 0; i < nq; i++ {
		q := &queue{
			idx:         i,
			dir:         pers.QueueDir(i),
			sizeMax:     opt.QueueSizeMax,
			size:        opt.QueueSizeMax,
			msixVec:     uint16(i + 1),
			cond:        sim.NewCond(s, fmt.Sprintf("%s.q%d", name, i)),
			hw:          fpga.NewPerfCounter(clk, fmt.Sprintf("%s.q%d.hw", name, i)),
			serviceSpan: fmt.Sprintf("q%d.service", i),
			deliverSpan: fmt.Sprintf("q%d.deliver", i),
		}
		c.queues = append(c.queues, q)
		if q.dir == DriverToDevice {
			qq := q
			s.Go(fmt.Sprintf("%s.q%d.engine", name, i), func(p *sim.Proc) { c.engineLoop(p, qq) })
		}
	}

	ep.SetBarHandlers(0, pcie.BarHandlers{Read: c.barRead, Write: c.barWrite})
	return c
}

// EP returns the controller's PCIe endpoint.
func (c *Controller) EP() *pcie.Endpoint { return c.ep }

// Clock returns the fabric clock.
func (c *Controller) Clock() *fpga.Clock { return c.clk }

// Negotiated returns the features the driver accepted.
func (c *Controller) Negotiated() virtio.Feature { return c.driverFeatures }

// Status returns the current device status byte.
func (c *Controller) Status() byte { return c.status }

// QueueCounter returns the hardware perf counter of queue q.
func (c *Controller) QueueCounter(q int) *fpga.PerfCounter { return c.queues[q].hw }

// NotifyCount reports how many doorbell writes the device has received.
func (c *Controller) NotifyCount() int { return c.notifyCount }

// dma adapts the XDMA card port to the virtio.DMA interface, including
// the allocation-free ReadInto capability the ring engines detect.
type dma struct{ port *xdmaip.Port }

func (d dma) Read(p *sim.Proc, a mem.Addr, n int) []byte   { return d.port.HostRead(p, a, n) }
func (d dma) ReadInto(p *sim.Proc, a mem.Addr, dst []byte) { d.port.HostReadInto(p, a, dst) }
func (d dma) Write(p *sim.Proc, a mem.Addr, data []byte)   { d.port.HostWrite(p, a, data) }

var _ virtio.DMAReaderInto = dma{}

// ---- BAR register block -------------------------------------------------

func (c *Controller) barRead(off uint64, size int) uint64 {
	switch {
	case off < notifyOffset:
		return c.commonRead(off, size)
	case off >= isrOffset && off < deviceOffset:
		v := uint64(c.isr)
		c.isr = 0 // ISR reads clear
		return v
	case off >= deviceOffset:
		return c.deviceCfgRead(off-deviceOffset, size)
	}
	return 0
}

func (c *Controller) barWrite(off uint64, size int, v uint64) {
	switch {
	case off < notifyOffset:
		c.commonWrite(off, size, v)
	case off >= notifyOffset && off < isrOffset:
		q := int(off-notifyOffset) / notifyMultiplier
		c.notify(q)
	}
}

// selq returns the selected queue, or nil when queue_select is out of
// range — per spec the driver then reads queue_size == 0.
func (c *Controller) selq() *queue {
	if int(c.queueSel) >= len(c.queues) {
		return nil
	}
	return c.queues[c.queueSel]
}

func (c *Controller) commonRead(off uint64, size int) uint64 {
	switch off {
	case virtio.CommonDeviceFeatureSel:
		return uint64(c.featureSel)
	case virtio.CommonDeviceFeature:
		return uint64(uint32(uint64(c.deviceFeatures) >> (32 * c.featureSel)))
	case virtio.CommonDriverFeatureSel:
		return uint64(c.driverFeatureSel)
	case virtio.CommonDriverFeature:
		return uint64(uint32(uint64(c.driverFeatures) >> (32 * c.driverFeatureSel)))
	case virtio.CommonMSIXConfig:
		return uint64(c.msixConfig)
	case virtio.CommonNumQueues:
		return uint64(len(c.queues))
	case virtio.CommonDeviceStatus:
		return uint64(c.status)
	case virtio.CommonConfigGeneration:
		return uint64(c.cfgGen)
	case virtio.CommonQueueSelect:
		return uint64(c.queueSel)
	}
	q := c.selq()
	if q == nil {
		return 0 // out-of-range queue_select: queue_size reads 0
	}
	switch off {
	case virtio.CommonQueueSize:
		return uint64(q.size)
	case virtio.CommonQueueMSIXVector:
		return uint64(q.msixVec)
	case virtio.CommonQueueEnable:
		if q.enabled {
			return 1
		}
		return 0
	case virtio.CommonQueueNotifyOff:
		return uint64(c.queueSel)
	case virtio.CommonQueueDesc:
		return c.read64(q.desc, size, off, virtio.CommonQueueDesc)
	case virtio.CommonQueueDesc + 4:
		return uint64(uint32(q.desc >> 32))
	case virtio.CommonQueueDriver:
		return c.read64(q.driver, size, off, virtio.CommonQueueDriver)
	case virtio.CommonQueueDriver + 4:
		return uint64(uint32(q.driver >> 32))
	case virtio.CommonQueueDevice:
		return c.read64(q.device, size, off, virtio.CommonQueueDevice)
	case virtio.CommonQueueDevice + 4:
		return uint64(uint32(q.device >> 32))
	}
	return 0
}

func (c *Controller) read64(v uint64, size int, off, base uint64) uint64 {
	if size == 8 {
		return v
	}
	return uint64(uint32(v))
}

func write64(cur uint64, size int, lowHalf bool, v uint64) uint64 {
	switch {
	case size == 8:
		return v
	case lowHalf:
		return cur&^0xffffffff | v&0xffffffff
	default:
		return cur&0xffffffff | (v&0xffffffff)<<32
	}
}

func (c *Controller) commonWrite(off uint64, size int, v uint64) {
	q := c.selq()
	if q == nil && off >= virtio.CommonQueueSize {
		return // writes to queue registers of a nonexistent queue
	}
	switch off {
	case virtio.CommonDeviceFeatureSel:
		c.featureSel = uint32(v)
	case virtio.CommonDriverFeatureSel:
		c.driverFeatureSel = uint32(v)
	case virtio.CommonDriverFeature:
		shift := 32 * c.driverFeatureSel
		mask := uint64(0xffffffff) << shift
		c.driverFeatures = virtio.Feature(uint64(c.driverFeatures)&^mask | (v&0xffffffff)<<shift)
	case virtio.CommonMSIXConfig:
		c.msixConfig = uint16(v)
	case virtio.CommonDeviceStatus:
		c.writeStatus(byte(v))
	case virtio.CommonQueueSelect:
		c.queueSel = uint16(v)
	case virtio.CommonQueueSize:
		if s := uint16(v); s > 0 && s <= q.sizeMax && s&(s-1) == 0 {
			q.size = s
		}
	case virtio.CommonQueueMSIXVector:
		q.msixVec = uint16(v)
	case virtio.CommonQueueEnable:
		if v == 1 && !q.enabled {
			q.enabled = true
			if c.driverFeatures.Has(virtio.FRingPacked) {
				q.dq = virtio.NewPackedDeviceQueue(dma{c.port}, virtio.PackedLayout{
					QueueSize:   int(q.size),
					Ring:        mem.Addr(q.desc),
					DriverEvent: mem.Addr(q.driver),
					DeviceEvent: mem.Addr(q.device),
				})
			} else {
				sq := virtio.NewDeviceQueue(dma{c.port}, virtio.RingLayout{
					QueueSize: int(q.size),
					Desc:      mem.Addr(q.desc),
					Avail:     mem.Addr(q.driver),
					Used:      mem.Addr(q.device),
				})
				if c.driverFeatures.Has(virtio.FRingEventIdx) {
					sq.EnableEventIdx()
				}
				q.dq = sq
			}
			q.cond.Broadcast()
		}
	case virtio.CommonQueueDesc:
		q.desc = write64(q.desc, size, true, v)
	case virtio.CommonQueueDesc + 4:
		q.desc = write64(q.desc, 4, false, v)
	case virtio.CommonQueueDriver:
		q.driver = write64(q.driver, size, true, v)
	case virtio.CommonQueueDriver + 4:
		q.driver = write64(q.driver, 4, false, v)
	case virtio.CommonQueueDevice:
		q.device = write64(q.device, size, true, v)
	case virtio.CommonQueueDevice + 4:
		q.device = write64(q.device, 4, false, v)
	}
}

func (c *Controller) writeStatus(v byte) {
	if v == 0 {
		c.reset()
		return
	}
	c.status = v
	c.statusCond.Broadcast()
	if v&virtio.StatusDriverOK != 0 {
		for _, q := range c.queues {
			q.cond.Broadcast()
		}
	}
}

func (c *Controller) reset() {
	c.status = 0
	c.driverFeatures = 0
	c.isr = 0
	for _, q := range c.queues {
		q.enabled = false
		q.dq = nil
		q.kicked = false
		q.coalesced = 0
		q.desc, q.driver, q.device = 0, 0, 0
		q.size = q.sizeMax
	}
}

func (c *Controller) deviceCfgRead(off uint64, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		idx := int(off) + i
		if idx < len(c.deviceCfg) {
			v |= uint64(c.deviceCfg[idx]) << (8 * i)
		}
	}
	return v
}

// notify is the doorbell: wake the queue's engine (or the personality
// process waiting to deliver into a DeviceToDriver queue).
func (c *Controller) notify(qi int) {
	if qi < 0 || qi >= len(c.queues) {
		return
	}
	q := c.queues[qi]
	c.notifyCount++
	c.met.notifies.Inc()
	if q.dir == DriverToDevice && c.status&virtio.StatusDriverOK != 0 &&
		c.status&virtio.StatusNeedsReset == 0 && c.ep.Faults().Fire(faults.NeedsReset) {
		// Device-initiated failure: instead of servicing the doorbell,
		// the controller latches DEVICE_NEEDS_RESET and interrupts the
		// driver through the configuration vector. The doorbell is
		// swallowed — the driver's reset path requeues the buffers.
		c.enterNeedsReset()
		return
	}
	q.kicked = true
	q.cond.Broadcast()
}

// enterNeedsReset moves the device into the DEVICE_NEEDS_RESET state
// (virtio 1.2 §2.1): engines stop picking up work until the driver
// performs a full reset and re-initialization.
func (c *Controller) enterNeedsReset() {
	c.status |= virtio.StatusNeedsReset
	c.isr |= virtio.ISRConfig
	c.statusCond.Broadcast()
	c.ep.RaiseMSIX(int(c.msixConfig))
}

// ---- queue engines ------------------------------------------------------

func (c *Controller) ready(q *queue) bool {
	return q.enabled && c.status&virtio.StatusDriverOK != 0 &&
		c.status&virtio.StatusNeedsReset == 0
}

// waitReady parks the fabric process until the queue is live.
func (c *Controller) waitReady(p *sim.Proc, q *queue) {
	for !c.ready(q) {
		q.cond.Wait(p)
	}
}

// interrupt raises the queue's MSI-X vector and latches the ISR bit.
func (c *Controller) interrupt(q *queue) {
	c.isr |= virtio.ISRQueue
	c.met.irqRaised.Inc()
	c.ep.RaiseMSIX(int(q.msixVec))
}

// maybeInterrupt implements the spec's race-free ordering: the used
// entry is already published, so the device re-reads the driver's
// suppression state NOW (avail flags, or used_event in EVENT_IDX mode)
// and interrupts unless it says to hold off. Reading before the
// used-index write would race the driver's re-enable-then-recheck
// sequence in NAPI and lose completions.
func (c *Controller) maybeInterrupt(p *sim.Proc, q *queue, dq virtio.DeviceRing) {
	if c.opt.IRQCoalescePkts > 1 {
		q.coalesced++
		if q.coalesced < c.opt.IRQCoalescePkts {
			c.met.irqCoalesced.Inc()
			c.armFlush(q)
			return
		}
		n := q.coalesced
		q.coalesced = 0
		// The whole coalesced span counts: an event-index threshold
		// crossed by any held completion must still interrupt.
		if dq.ShouldInterruptSince(p, n) {
			c.interrupt(q)
		} else {
			c.met.irqSuppressed.Inc()
		}
		return
	}
	if dq.ShouldInterrupt(p) {
		c.interrupt(q)
	} else {
		c.met.irqSuppressed.Inc()
	}
}

// armFlush schedules the coalesce-timer flush for a queue holding
// completions, so the last packets of a burst are never stranded past
// the configured latency bound.
func (c *Controller) armFlush(q *queue) {
	if q.flushArmed {
		return
	}
	q.flushArmed = true
	c.sim.GoAfter(c.opt.IRQCoalesceTimer, fmt.Sprintf("%s.q%d.coalesce", c.ep.Name(), q.idx),
		func(p *sim.Proc) {
			q.flushArmed = false
			c.flushCoalesced(p, q)
		})
}

// flushCoalesced raises the interrupt for any completions a queue is
// still holding back, honouring the driver's suppression state.
func (c *Controller) flushCoalesced(p *sim.Proc, q *queue) {
	if q.coalesced == 0 || q.dq == nil {
		return
	}
	n := q.coalesced
	q.coalesced = 0
	if q.dq.ShouldInterruptSince(p, n) {
		c.interrupt(q)
	} else {
		c.met.irqSuppressed.Inc()
	}
}

// engineLoop services a DriverToDevice queue: doorbell -> fetch chain
// -> gather data -> personality -> scatter response -> used -> IRQ.
func (c *Controller) engineLoop(p *sim.Proc, q *queue) {
	for {
		c.waitReady(p, q)
		// A fault-induced device reset can tear down and rebuild the
		// ring while this process is parked or blocked mid-DMA: capture
		// the ring once per wakeup so q.dq going nil (or being swapped
		// for a rebuilt ring) cannot crash the engine. The old ring's
		// host memory is never reused, so stale accesses are inert.
		dq := q.dq
		// Evaluate the ring state before the kicked flag: a doorbell can
		// land while the availability fetch is in flight, and the flag
		// is what keeps that wakeup from being lost.
		if !dq.HasPending(p) && !q.kicked {
			// Going idle: publish the doorbell hint (avail_event or the
			// packed event structure), then re-check for work added
			// while we published.
			dq.PublishIdleHint(p)
			if dq.HasPending(p) || q.kicked {
				continue
			}
			q.cond.Wait(p)
			continue
		}
		q.kicked = false
		// The hardware counter spans notification pickup to ring-idle —
		// "the time taken by the hardware to perform the DMA operation
		// once a notification is received" (paper §IV-B). The telemetry
		// span brackets the identical interval so span-derived hardware
		// attribution agrees with the counter-based RTTSample.
		q.hw.Begin(p.Now())
		sp := c.sim.BeginSpan(telemetry.LayerVirtIODevice, q.serviceSpan)
		p.Sleep(c.clk.Cycles(notifyDecodeCycles))
		for c.ready(q) && dq.HasPending(p) {
			c.serviceChain(p, q, dq)
		}
		// The ring drained: flush any coalesced completions now rather
		// than waiting out the timer.
		c.flushCoalesced(p, q)
		q.hw.End(p.Now())
		sp.End()
	}
}

// serviceChain processes exactly one pending chain on a DriverToDevice
// queue.
func (c *Controller) serviceChain(p *sim.Proc, q *queue, dq virtio.DeviceRing) {
	c.met.chains.Inc()
	p.Sleep(c.clk.Cycles(chainSetupCycles))
	chain, tok, err := dq.NextChain(p)
	if err != nil {
		panic(fmt.Sprintf("vdev: %s q%d: %v", c.ep.Name(), q.idx, err))
	}
	data := dq.ReadChainInto(p, chain, q.rdBuf)
	q.rdBuf = data
	writable := 0
	for _, d := range chain {
		if d.Flags&virtio.DescFWrite != 0 {
			writable += int(d.Len)
		}
	}
	resp := c.pers.HandleDriverChain(p, q.idx, data, writable)
	written := 0
	if len(resp) > 0 {
		written = dq.WriteChain(p, chain, resp)
	}
	p.Sleep(c.clk.Cycles(usedPublishCycles))
	dq.Complete(p, tok, written)
	c.maybeInterrupt(p, q, dq)
}

// Deliver pushes data into the next available buffer of a
// DeviceToDriver queue (the controller's RX path): wait for a posted
// buffer, scatter, publish used, interrupt. It runs in the calling
// fabric process and is charged to the queue's hardware counter.
func (c *Controller) Deliver(p *sim.Proc, qi int, data []byte) error {
	q := c.queues[qi]
	if q.dir != DeviceToDriver {
		return fmt.Errorf("vdev: queue %d is not device-to-driver", qi)
	}
	c.waitReady(p, q)
	// Capture the ring per wakeup for the same reset-safety reason as
	// engineLoop: a mid-wait device reset swaps q.dq.
	dq := q.dq
	for !dq.HasPending(p) {
		if q.kicked {
			// A doorbell raced the availability fetch: re-read instead
			// of parking.
			q.kicked = false
			continue
		}
		dq.PublishIdleHint(p)
		if dq.HasPending(p) || q.kicked {
			q.kicked = false
			continue
		}
		q.cond.Wait(p)
		c.waitReady(p, q)
		dq = q.dq
	}
	q.kicked = false
	q.hw.Begin(p.Now())
	sp := c.sim.BeginSpan(telemetry.LayerVirtIODevice, q.deliverSpan)
	p.Sleep(c.clk.Cycles(chainSetupCycles))
	chain, tok, err := dq.NextChain(p)
	if err != nil {
		q.hw.End(p.Now())
		sp.End()
		return err
	}
	written := dq.WriteChain(p, chain, data)
	if written < len(data) {
		q.hw.End(p.Now())
		sp.End()
		return fmt.Errorf("vdev: queue %d buffer too small: %d < %d", qi, written, len(data))
	}
	p.Sleep(c.clk.Cycles(usedPublishCycles))
	dq.Complete(p, tok, written)
	c.maybeInterrupt(p, q, dq)
	q.hw.End(p.Now())
	sp.End()
	return nil
}

// ---- host-bypass interface (paper §III-A) -------------------------------

// BypassRead lets user logic fetch host memory directly, without any
// VirtIO driver involvement.
func (c *Controller) BypassRead(p *sim.Proc, addr mem.Addr, n int) []byte {
	return c.port.HostRead(p, addr, n)
}

// BypassWrite lets user logic push data into host memory directly.
func (c *Controller) BypassWrite(p *sim.Proc, addr mem.Addr, data []byte) {
	c.port.HostWrite(p, addr, data)
}
