package faults

import (
	"strings"
	"testing"

	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"needsreset:every=150:count=3",
		"irqdrop:p=0.002",
		"tlpdrop:p=0.01:count=5",
		"engineerr:every=90:after=10:count=4",
		"needsreset:every=120:count=4,engineerr:every=90:count=4,irqdrop:every=150:count=6",
		"cplpoison:p=0.5:every=7:after=2:count=9",
	}
	for _, in := range cases {
		p, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		out := p.String()
		p2, err := Parse(out)
		if err != nil {
			t.Fatalf("Parse(String(%q)) = Parse(%q): %v", in, out, err)
		}
		if out2 := p2.String(); out2 != out {
			t.Errorf("String not fixed-point: %q -> %q -> %q", in, out, out2)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	for _, in := range []string{"", "  ", "\t"} {
		p, err := Parse(in)
		if err != nil || p != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", in, p, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogusclass:every=3",           // unknown class
		"needsreset",                   // no p/every
		"needsreset:after=5",           // after alone does not arm
		"irqdrop:p=0",                  // p out of range
		"irqdrop:p=1.5",                // p out of range
		"irqdrop:p=x",                  // p not a number
		"irqdrop:every=0",              // every must be positive
		"irqdrop:every=-2",             // negative
		"irqdrop:every",                // missing =value
		"irqdrop:every=",               // empty value
		"irqdrop:weird=3",              // unknown option
		"irqdrop:p=0.1,irqdrop:p=0.2",  // duplicate class
		"irqdrop:p=0.1,,tlpdrop:p=0.1", // empty rule
		",",                            // only separators
	}
	for _, in := range cases {
		if p, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %v, want error", in, p)
		}
	}
}

func TestParseAllClasses(t *testing.T) {
	names := make([]string, len(Classes))
	for i, c := range Classes {
		names[i] = string(c) + ":every=10"
	}
	p, err := Parse(strings.Join(names, ","))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != len(Classes) {
		t.Fatalf("parsed %d rules, want %d", len(p.Rules), len(Classes))
	}
}

func newTestInjector(t *testing.T, plan string, seed uint64) *Injector {
	t.Helper()
	p, err := Parse(plan)
	if err != nil {
		t.Fatal(err)
	}
	return NewInjector(p, sim.NewRNG(seed).Fork("faults"), telemetry.NewRegistry())
}

func TestNilInjector(t *testing.T) {
	var inj *Injector
	if inj.Fire(NeedsReset) {
		t.Error("nil injector fired")
	}
	if inj.Total() != 0 || inj.Injected(IRQDrop) != 0 {
		t.Error("nil injector has counts")
	}
	if inj.Enabled(TLPDrop) || inj.Summary() != nil || inj.Armed() != nil || inj.Plan() != nil {
		t.Error("nil injector reports armed state")
	}
	if NewInjector(nil, sim.NewRNG(1), telemetry.NewRegistry()) != nil {
		t.Error("NewInjector(nil plan) != nil")
	}
}

func TestFireEvery(t *testing.T) {
	inj := newTestInjector(t, "irqdrop:every=3", 1)
	var fired []int
	for i := 1; i <= 10; i++ {
		if inj.Fire(IRQDrop) {
			fired = append(fired, i)
		}
	}
	want := []int{3, 6, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
	if inj.Total() != 3 || inj.Injected(IRQDrop) != 3 {
		t.Errorf("Total=%d Injected=%d, want 3", inj.Total(), inj.Injected(IRQDrop))
	}
}

func TestFireAfterAndCount(t *testing.T) {
	inj := newTestInjector(t, "engineerr:every=2:after=5:count=2", 1)
	var fired []int
	for i := 1; i <= 20; i++ {
		if inj.Fire(EngineErr) {
			fired = append(fired, i)
		}
	}
	// Opportunities 1..5 are skipped; the per-class counter then runs
	// 1,2,3,... so fires land on absolute opportunities 7 and 9, capped
	// at count=2.
	want := []int{7, 9}
	if len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
}

func TestFireUnarmedClass(t *testing.T) {
	inj := newTestInjector(t, "irqdrop:every=1", 1)
	if inj.Fire(TLPDrop) {
		t.Error("unarmed class fired")
	}
	if !inj.Enabled(IRQDrop) || inj.Enabled(TLPDrop) {
		t.Error("Enabled wrong")
	}
}

func TestFireProbDeterministic(t *testing.T) {
	run := func() []int {
		inj := newTestInjector(t, "tlpdrop:p=0.25", 42)
		var fired []int
		for i := 1; i <= 400; i++ {
			if inj.Fire(TLPDrop) {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at fire %d: %d vs %d", i, a[i], b[i])
		}
	}
	if len(a) == 0 || len(a) == 400 {
		t.Fatalf("p=0.25 over 400 opportunities fired %d times", len(a))
	}
}

func TestCadenceConsumesNoRandomness(t *testing.T) {
	// Two injectors sharing one RNG: if the cadence rule consumed
	// randomness, the probability stream of the second would shift.
	rng := sim.NewRNG(7).Fork("faults")
	reg := telemetry.NewRegistry()
	plan, err := Parse("irqdrop:every=2")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(plan, rng, reg)
	before := rng.Float64()
	_ = before
	for i := 0; i < 100; i++ {
		inj.Fire(IRQDrop)
	}
	after := rng.Float64()
	rng2 := sim.NewRNG(7).Fork("faults")
	rng2.Float64()
	if want := rng2.Float64(); after != want {
		t.Errorf("cadence rule consumed RNG: next draw %v, want %v", after, want)
	}
}

func TestSummaryAndArmed(t *testing.T) {
	inj := newTestInjector(t, "needsreset:every=2:count=1,irqdrop:every=3", 1)
	for i := 0; i < 6; i++ {
		inj.Fire(NeedsReset)
		inj.Fire(IRQDrop)
	}
	sum := inj.Summary()
	if sum["needsreset"] != 1 || sum["irqdrop"] != 2 {
		t.Errorf("summary = %v", sum)
	}
	armed := inj.Armed()
	if len(armed) != 2 || armed[0] != IRQDrop || armed[1] != NeedsReset {
		t.Errorf("armed = %v", armed)
	}
	if got := inj.Plan().String(); got != "needsreset:every=2:count=1,irqdrop:every=3" {
		t.Errorf("plan = %q", got)
	}
}

// FuzzFaultPlanParse checks that Parse never panics and that every
// accepted plan round-trips through String to an equal canonical form.
func FuzzFaultPlanParse(f *testing.F) {
	seeds := []string{
		"",
		"needsreset:every=150:count=3",
		"irqdrop:p=0.002",
		"tlpdrop:p=0.01:count=5,stall:every=1000",
		"cplpoison:p=0.5:every=7:after=2:count=9",
		"engineerr:every=90,dmarderr:p=0.001,dmawrerr:p=0.001",
		"cpltimeout:every=33:after=4",
		"irqspurious:p=1",
		"needsreset:every=0",
		"bogus:p=0.5",
		"irqdrop:p=",
		"irqdrop:p=NaN",
		"irqdrop:p=1e309",
		",,,",
		"needsreset:every=150:count=3,needsreset:p=0.1",
		strings.Repeat("irqdrop:p=0.1,", 40),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		if p == nil {
			if strings.TrimSpace(s) != "" {
				t.Fatalf("Parse(%q) = nil plan without error", s)
			}
			return
		}
		out := p.String()
		p2, err := Parse(out)
		if err != nil {
			t.Fatalf("Parse(%q) accepted but String %q rejected: %v", s, out, err)
		}
		if out2 := p2.String(); out2 != out {
			t.Fatalf("String not canonical: %q -> %q -> %q", s, out, out2)
		}
		// An accepted plan must arm cleanly.
		inj := NewInjector(p, sim.NewRNG(1).Fork("faults"), telemetry.NewRegistry())
		if inj == nil {
			t.Fatalf("NewInjector returned nil for accepted plan %q", s)
		}
		for _, r := range p.Rules {
			if !inj.Enabled(r.Class) {
				t.Fatalf("class %q parsed but not armed", r.Class)
			}
			inj.Fire(r.Class)
		}
	})
}
