// Package faults implements deterministic fault injection for the
// simulated host-FPGA stack. A FaultPlan names a set of fault classes
// and, per class, either a probability per opportunity or a
// deterministic cadence (fire every Nth opportunity). An Injector
// evaluates the plan against a dedicated fork of the session RNG, so a
// seeded faulted run replays byte-identically, and a run with no plan
// consumes no randomness at all — the zero-fault path stays
// byte-identical to the fault-free build.
//
// Every layer that can fail polls the injector at its "opportunity"
// points (a TLP delivery, an MMIO completion, an interrupt raise, a
// doorbell, a DMA engine run). The injector is carried on the PCIe
// root complex, mirroring the telemetry registry: sessions install it
// once and every endpoint/driver reaches it through its bus handle.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// Class identifies one injectable fault kind. The string value is the
// spelling used in plan syntax and in the fault.<class>.injected
// metric name.
type Class string

const (
	// TLPDrop silently drops a downstream posted write at delivery:
	// the link transmitted it, the device never saw it. Models a
	// surprise-removed or flaky endpoint eating doorbells and
	// configuration writes.
	TLPDrop Class = "tlpdrop"
	// CplPoison poisons a read completion: the read returns all-ones
	// (PCIe poisoned/UR semantics) instead of register data.
	CplPoison Class = "cplpoison"
	// CplTimeout models a completion timeout: the read's request TLP
	// vanishes and the root complex synthesizes an all-ones
	// completion after the completion-timeout interval.
	CplTimeout Class = "cpltimeout"
	// DMAReadErr corrupts the first byte of a device-initiated DMA
	// read completion (device reading host memory).
	DMAReadErr Class = "dmarderr"
	// DMAWriteErr drops one chunk of a device-initiated DMA write
	// (device writing host memory).
	DMAWriteErr Class = "dmawrerr"
	// IRQDrop swallows an MSI-X interrupt: counted, never delivered.
	IRQDrop Class = "irqdrop"
	// IRQSpurious delivers an MSI-X interrupt twice.
	IRQSpurious Class = "irqspurious"
	// Stall opens a device stall window: for its duration every MMIO
	// read of the device completes all-ones and every MMIO write is
	// dropped.
	Stall Class = "stall"
	// NeedsReset makes the virtio device set DEVICE_NEEDS_RESET and
	// raise a configuration-change interrupt instead of servicing a
	// doorbell.
	NeedsReset Class = "needsreset"
	// EngineErr makes an XDMA engine abort a run with the descriptor
	// error status bit set instead of moving data.
	EngineErr Class = "engineerr"
)

// Classes lists every fault class in canonical order.
var Classes = []Class{
	TLPDrop, CplPoison, CplTimeout, DMAReadErr, DMAWriteErr,
	IRQDrop, IRQSpurious, Stall, NeedsReset, EngineErr,
}

func validClass(c Class) bool {
	for _, k := range Classes {
		if k == c {
			return true
		}
	}
	return false
}

// Rule arms one fault class. A rule fires on an opportunity when the
// opportunity index (counted per class, 1-based, after skipping the
// first After opportunities) is a multiple of Every, or — when Prob is
// set — with probability Prob drawn from the injector RNG. Count
// bounds the total number of fires (0 = unlimited).
type Rule struct {
	Class Class
	Prob  float64 // probability per opportunity (0 = cadence only)
	Every int     // deterministic cadence (0 = probability only)
	After int     // opportunities to skip before arming
	Count int     // maximum fires, 0 = unlimited
}

// Plan is a parsed fault plan: one rule per class.
type Plan struct {
	Rules []Rule
}

// Parse parses the textual plan format: comma-separated rules, each
//
//	class[:p=<prob>][:every=<n>][:after=<n>][:count=<n>]
//
// e.g. "needsreset:every=150:count=3,irqdrop:p=0.002". Each rule must
// set p or every (or both); a class may appear at most once. An empty
// string parses to nil (no plan).
func Parse(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	p := &Plan{}
	seen := map[Class]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("faults: empty rule in plan %q", s)
		}
		fields := strings.Split(part, ":")
		r := Rule{Class: Class(fields[0])}
		if !validClass(r.Class) {
			return nil, fmt.Errorf("faults: unknown fault class %q (have %s)", fields[0], classList())
		}
		if seen[r.Class] {
			return nil, fmt.Errorf("faults: class %q appears twice", r.Class)
		}
		seen[r.Class] = true
		for _, opt := range fields[1:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok || v == "" {
				return nil, fmt.Errorf("faults: malformed option %q in rule %q", opt, part)
			}
			switch k {
			case "p":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || math.IsNaN(f) || f <= 0 || f > 1 {
					return nil, fmt.Errorf("faults: p=%q must be a probability in (0,1]", v)
				}
				r.Prob = f
			case "every", "after", "count":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 || (k == "every" && n == 0) {
					return nil, fmt.Errorf("faults: %s=%q must be a non-negative integer", k, v)
				}
				switch k {
				case "every":
					r.Every = n
				case "after":
					r.After = n
				case "count":
					r.Count = n
				}
			default:
				return nil, fmt.Errorf("faults: unknown option %q in rule %q", k, part)
			}
		}
		if r.Prob == 0 && r.Every == 0 {
			return nil, fmt.Errorf("faults: rule %q needs p= or every=", part)
		}
		p.Rules = append(p.Rules, r)
	}
	return p, nil
}

func classList() string {
	names := make([]string, len(Classes))
	for i, c := range Classes {
		names[i] = string(c)
	}
	return strings.Join(names, "|")
}

// String renders the plan back into the Parse format (rules in input
// order). Parse(p.String()) round-trips.
func (p *Plan) String() string {
	if p == nil || len(p.Rules) == 0 {
		return ""
	}
	var b strings.Builder
	for i, r := range p.Rules {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(r.Class))
		if r.Prob > 0 {
			fmt.Fprintf(&b, ":p=%s", strconv.FormatFloat(r.Prob, 'g', -1, 64))
		}
		if r.Every > 0 {
			fmt.Fprintf(&b, ":every=%d", r.Every)
		}
		if r.After > 0 {
			fmt.Fprintf(&b, ":after=%d", r.After)
		}
		if r.Count > 0 {
			fmt.Fprintf(&b, ":count=%d", r.Count)
		}
	}
	return b.String()
}

// ruleState tracks one armed class at run time.
type ruleState struct {
	rule    Rule
	opps    int64 // opportunities seen past After
	skipped int64 // opportunities still inside After
	fired   int64
	counter *telemetry.Counter
}

// Injector evaluates a plan. A nil *Injector is the zero-fault path:
// every method is nil-safe and Fire reports false without consuming
// randomness, allocating, or touching metrics — hot paths call it
// unconditionally.
type Injector struct {
	plan  *Plan
	rng   *sim.RNG
	armed map[Class]*ruleState
	total *telemetry.Counter
}

// NewInjector arms plan against rng, registering the per-class
// fault.<class>.injected counters and the fault.injected.total counter
// in reg. A nil or empty plan returns nil (the zero-fault injector).
func NewInjector(plan *Plan, rng *sim.RNG, reg *telemetry.Registry) *Injector {
	if plan == nil || len(plan.Rules) == 0 {
		return nil
	}
	inj := &Injector{
		plan:  plan,
		rng:   rng,
		armed: make(map[Class]*ruleState, len(plan.Rules)),
		total: reg.Counter(telemetry.MetricFaultsInjected),
	}
	for _, r := range plan.Rules {
		inj.armed[r.Class] = &ruleState{
			rule:    r,
			counter: reg.Counter(telemetry.MetricFaultInjected(string(r.Class))),
		}
	}
	return inj
}

// Plan returns the armed plan (nil on the zero-fault injector).
func (inj *Injector) Plan() *Plan {
	if inj == nil {
		return nil
	}
	return inj.plan
}

// Enabled reports whether a rule is armed for class. Nil-safe.
func (inj *Injector) Enabled(c Class) bool {
	if inj == nil {
		return false
	}
	_, ok := inj.armed[c]
	return ok
}

// Fire records one opportunity for class and reports whether the fault
// fires. Nil-safe: a nil injector always reports false and has no side
// effects. Randomness is consumed only by probability rules, so
// cadence-only plans are trivially schedule-independent.
func (inj *Injector) Fire(c Class) bool {
	if inj == nil {
		return false
	}
	st := inj.armed[c]
	if st == nil {
		return false
	}
	if st.skipped < int64(st.rule.After) {
		st.skipped++
		return false
	}
	st.opps++
	if st.rule.Count > 0 && st.fired >= int64(st.rule.Count) {
		return false
	}
	fire := st.rule.Every > 0 && st.opps%int64(st.rule.Every) == 0
	if !fire && st.rule.Prob > 0 {
		fire = inj.rng.Bool(st.rule.Prob)
	}
	if !fire {
		return false
	}
	st.fired++
	st.counter.Inc()
	inj.total.Inc()
	return true
}

// Total reports the number of faults injected so far. Nil-safe.
// Sessions expose it so experiments can flag samples whose measurement
// overlapped an injection.
func (inj *Injector) Total() int64 {
	if inj == nil {
		return 0
	}
	return inj.total.Value()
}

// Injected reports the fire count for one class. Nil-safe.
func (inj *Injector) Injected(c Class) int64 {
	if inj == nil {
		return 0
	}
	st := inj.armed[c]
	if st == nil {
		return 0
	}
	return st.fired
}

// Summary returns the per-class fire counts for every armed class,
// keyed by class name. Nil-safe (returns nil).
func (inj *Injector) Summary() map[string]int64 {
	if inj == nil {
		return nil
	}
	out := make(map[string]int64, len(inj.armed))
	for c, st := range inj.armed {
		out[string(c)] = st.fired
	}
	return out
}

// Armed lists the armed classes in canonical order. Nil-safe.
func (inj *Injector) Armed() []Class {
	if inj == nil {
		return nil
	}
	out := make([]Class, 0, len(inj.armed))
	for c := range inj.armed {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
