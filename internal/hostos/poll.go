package hostos

import (
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// Busy-poll cost model. Poll-mode datapaths replace the interrupt
// pipeline (MSI-X message, IRQ entry, softirq, scheduler wake) with a
// loop that re-reads a completion indicator from its spinning context.
// The loop still costs CPU: every iteration charges SpinCost through
// CPUWork — the same jitter/preemption noise process as every other
// software segment — so poll-mode latency distributions stay seeded
// and replayable, and the simulation cannot livelock (time advances on
// every empty iteration). Every SpinBudget empty iterations the loop
// yields the processor (sched_yield/cpu_relax batch), charging
// YieldCost and giving the caller a hook to run slow-path checks such
// as watchdog-less fault detection.

// PollPolicy configures the spin budget and per-iteration costs of a
// busy-poll loop.
type PollPolicy struct {
	// SpinCost is the CPU time of one poll iteration: an uncached
	// status read (ring idx / writeback word) plus loop overhead.
	SpinCost sim.Duration
	// SpinBudget is the number of empty iterations between yields.
	SpinBudget int
	// YieldCost is the cost of one yield slot (sched_yield latency).
	YieldCost sim.Duration
}

// DefaultPollPolicy is the calibrated spin policy: ~80 ns per poll of
// a remote cache line, a yield every 64 empty spins costing ~700 ns.
func DefaultPollPolicy() PollPolicy {
	return PollPolicy{
		SpinCost:   sim.Ns(80),
		SpinBudget: 64,
		YieldCost:  sim.Ns(700),
	}
}

// withDefaults fills zero fields from DefaultPollPolicy.
func (pp PollPolicy) withDefaults() PollPolicy {
	def := DefaultPollPolicy()
	if pp.SpinCost <= 0 {
		pp.SpinCost = def.SpinCost
	}
	if pp.SpinBudget <= 0 {
		pp.SpinBudget = def.SpinBudget
	}
	if pp.YieldCost <= 0 {
		pp.YieldCost = def.YieldCost
	}
	return pp
}

// Spinner executes busy-poll loops under a PollPolicy, charging their
// CPU cost and accounting them in the poll.* instruments. One Spinner
// serves a whole driver: Spin allocates nothing, so it is safe on the
// steady-state packet path.
type Spinner struct {
	host *Host
	pol  PollPolicy

	spins  *telemetry.Counter
	wasted *telemetry.Counter
	yields *telemetry.Counter
	burnNs *telemetry.Counter
}

// NewSpinner builds a Spinner on this host's cost model and registry.
// Zero policy fields take their defaults.
func (h *Host) NewSpinner(pol PollPolicy) *Spinner {
	return &Spinner{
		host:   h,
		pol:    pol.withDefaults(),
		spins:  h.metrics.Counter(telemetry.MetricPollSpins),
		wasted: h.metrics.Counter(telemetry.MetricPollWasted),
		yields: h.metrics.Counter(telemetry.MetricPollYields),
		burnNs: h.metrics.Counter(telemetry.MetricPollBurnNs),
	}
}

// Policy returns the effective (default-filled) policy.
func (sp *Spinner) Policy() PollPolicy { return sp.pol }

// Spin busy-waits until ready reports true, charging SpinCost per
// iteration and YieldCost (plus the optional onYield hook, for slow-
// path checks like fault detection) every SpinBudget empty iterations.
// It returns the number of empty (wasted) iterations. The first check
// is free: a completion that is already visible costs nothing extra,
// matching an interrupt-mode driver that finds work already done.
func (sp *Spinner) Spin(p *sim.Proc, ready func(p *sim.Proc) bool, onYield func(p *sim.Proc)) int {
	empty := 0
	for !ready(p) {
		empty++
		sp.spins.Inc()
		sp.wasted.Inc()
		sp.burnNs.Add(int64(sp.pol.SpinCost / sim.Nanosecond))
		sp.host.CPUWork(p, sp.pol.SpinCost)
		if empty%sp.pol.SpinBudget == 0 {
			sp.yields.Inc()
			sp.burnNs.Add(int64(sp.pol.YieldCost / sim.Nanosecond))
			sp.host.CPUWork(p, sp.pol.YieldCost)
			if onYield != nil {
				onYield(p)
			}
		}
	}
	sp.spins.Inc()
	return empty
}
