package hostos

import (
	"math"
	"testing"

	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
)

// quiet returns a config with all stochastic noise disabled, so tests
// can assert exact costs.
func quiet() Config {
	c := DefaultConfig()
	c.JitterSigma = 0
	c.PreemptMeanGap = 0
	c.WakeTailProb = 0
	return c
}

func newHost(t *testing.T, cfg Config, seed uint64) (*sim.Sim, *Host) {
	t.Helper()
	s := sim.New()
	return s, New(s, 1<<20, cfg, seed)
}

func TestCPUWorkExactWhenQuiet(t *testing.T) {
	s, h := newHost(t, quiet(), 1)
	var took sim.Duration
	s.Go("p", func(p *sim.Proc) {
		t0 := p.Now()
		h.CPUWork(p, sim.Us(3))
		took = p.Now().Sub(t0)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if took != sim.Us(3) {
		t.Fatalf("took %v, want 3us", took)
	}
}

func TestCPUWorkJitterClamped(t *testing.T) {
	cfg := quiet()
	cfg.JitterSigma = 0.3
	s, h := newHost(t, cfg, 2)
	base := sim.Us(10)
	var samples []sim.Duration
	s.Go("p", func(p *sim.Proc) {
		for i := 0; i < 2000; i++ {
			t0 := p.Now()
			h.CPUWork(p, base)
			samples = append(samples, p.Now().Sub(t0))
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, d := range samples {
		if d < base/2 || d > 8*base {
			t.Fatalf("sample %v escaped clamp", d)
		}
		sum += float64(d)
	}
	mean := sum / float64(len(samples))
	// Lognormal with sigma 0.3: mean factor ~ exp(0.045) ~ 1.046.
	if mean < float64(base)*0.95 || mean > float64(base)*1.2 {
		t.Fatalf("mean %v not near base %v", sim.Duration(mean), base)
	}
}

func TestPreemptionHazard(t *testing.T) {
	cfg := quiet()
	cfg.PreemptMeanGap = sim.Ms(1)
	cfg.PreemptBase = sim.Us(50)
	cfg.PreemptExpMean = sim.Us(1)
	s, h := newHost(t, cfg, 3)
	seg := sim.Us(10) // hazard per segment ~1%
	n := 20000
	hits := 0
	s.Go("p", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			t0 := p.Now()
			h.CPUWork(p, seg)
			if p.Now().Sub(t0) > sim.Us(40) {
				hits++
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	rate := float64(hits) / float64(n)
	want := 1 - math.Exp(-10.0/1000)
	if rate < want/2 || rate > want*2 {
		t.Fatalf("preemption rate %v, want ~%v", rate, want)
	}
}

func TestClockGettime(t *testing.T) {
	s, h := newHost(t, quiet(), 4)
	var r1, r2 sim.Time
	s.Go("p", func(p *sim.Proc) {
		p.Sleep(sim.Duration(1500)) // 1.5ns into the run
		r1 = h.ClockGettime(p)
		r2 = h.ClockGettime(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if r1%sim.Time(sim.Ns(1)) != 0 {
		t.Fatalf("reading %v not 1ns-quantized", r1)
	}
	if r2.Sub(r1) != quiet().ClockReadCost {
		t.Fatalf("successive readings %v apart, want %v", r2.Sub(r1), quiet().ClockReadCost)
	}
}

func TestCopyCostLinear(t *testing.T) {
	_, h := newHost(t, quiet(), 5)
	c0 := h.CopyCost(0)
	c1k := h.CopyCost(1024)
	c2k := h.CopyCost(2048)
	if c0 != quiet().CopyBase {
		t.Fatalf("zero-byte copy = %v", c0)
	}
	if c2k-c1k != c1k-c0 {
		t.Fatalf("copy cost not linear: %v %v %v", c0, c1k, c2k)
	}
}

func TestIRQDispatch(t *testing.T) {
	s, h := newHost(t, quiet(), 6)
	cs := pcie.NewConfigSpace(1, 2, 0, 0, 0)
	cs.SetBARSize(0, 4096)
	ep := h.RC.Attach("dev", cs, pcie.DefaultGen2x2())
	ep.SetBarHandlers(0, pcie.BarHandlers{})
	ep.ConfigureMSIX(2)
	var handled sim.Time
	h.RegisterIRQ(ep, 1, func(p *sim.Proc) { handled = p.Now() })
	var raised sim.Time
	s.Go("enum", func(p *sim.Proc) { h.RC.Enumerate(p) })
	s.GoAfter(sim.Us(10), "dev", func(p *sim.Proc) {
		raised = p.Now()
		ep.RaiseMSIX(1)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if handled == 0 {
		t.Fatal("ISR never ran")
	}
	// MSI wire (28B ser + 200ns prop) + APIC 300ns + IRQEntry 900ns.
	want := raised.Add(sim.Ns(28+200+300) + quiet().IRQEntry)
	if handled != want {
		t.Fatalf("ISR at %v, want %v", handled, want)
	}
}

func TestUnhandledIRQPanics(t *testing.T) {
	s, h := newHost(t, quiet(), 7)
	cs := pcie.NewConfigSpace(1, 2, 0, 0, 0)
	cs.SetBARSize(0, 4096)
	ep := h.RC.Attach("dev", cs, pcie.DefaultGen2x2())
	ep.SetBarHandlers(0, pcie.BarHandlers{})
	ep.ConfigureMSIX(1)
	s.Go("enum", func(p *sim.Proc) { h.RC.Enumerate(p) })
	s.GoAfter(sim.Us(10), "dev", func(p *sim.Proc) { ep.RaiseMSIX(0) })
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unhandled IRQ")
		}
	}()
	_ = s.Run()
}

func TestWaitQueueWakeLatency(t *testing.T) {
	s, h := newHost(t, quiet(), 8)
	wq := h.NewWaitQueue("test")
	var woke sim.Time
	s.Go("sleeper", func(p *sim.Proc) {
		wq.Wait(p)
		woke = p.Now()
	})
	var wakeAt sim.Time
	s.GoAfter(sim.Us(5), "waker", func(p *sim.Proc) {
		wakeAt = p.Now()
		wq.Wake()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := woke.Sub(wakeAt); got != quiet().WakeLatency {
		t.Fatalf("wake latency %v, want %v", got, quiet().WakeLatency)
	}
	if wq.Waiters() != 0 {
		t.Fatal("waiter not removed")
	}
}

func TestWaitQueueMultipleWaiters(t *testing.T) {
	s, h := newHost(t, quiet(), 9)
	wq := h.NewWaitQueue("multi")
	woken := 0
	for i := 0; i < 3; i++ {
		s.Go("w", func(p *sim.Proc) {
			wq.Wait(p)
			woken++
		})
	}
	s.GoAfter(sim.Us(1), "waker", func(p *sim.Proc) { wq.Wake() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

type echoDev struct {
	h      *Host
	stored []byte
}

func (d *echoDev) Write(p *sim.Proc, data []byte) (int, error) {
	d.h.Copy(p, len(data))
	d.stored = append([]byte{}, data...)
	return len(data), nil
}

func (d *echoDev) Read(p *sim.Proc, buf []byte) (int, error) {
	d.h.Copy(p, len(buf))
	return copy(buf, d.stored), nil
}

func TestCharDevFileOps(t *testing.T) {
	s, h := newHost(t, quiet(), 10)
	dev := &echoDev{h: h}
	h.RegisterCharDev("/dev/echo0", dev)
	if _, err := h.Open("/dev/missing"); err == nil {
		t.Fatal("open of missing device succeeded")
	}
	f, err := h.Open("/dev/echo0")
	if err != nil {
		t.Fatal(err)
	}
	var rtt sim.Duration
	var got []byte
	s.Go("app", func(p *sim.Proc) {
		t0 := p.Now()
		if _, err := f.Write(p, []byte("hello")); err != nil {
			t.Error(err)
		}
		buf := make([]byte, 5)
		if _, err := f.Read(p, buf); err != nil {
			t.Error(err)
		}
		got = buf
		rtt = p.Now().Sub(t0)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("read %q", got)
	}
	cfg := quiet()
	want := 2*(cfg.SyscallEntry+cfg.SyscallExit) + 2*h.CopyCost(5)
	if rtt != want {
		t.Fatalf("rtt = %v, want %v", rtt, want)
	}
}

func TestDuplicateCharDevPanics(t *testing.T) {
	_, h := newHost(t, quiet(), 11)
	h.RegisterCharDev("/dev/x", &echoDev{h: h})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	h.RegisterCharDev("/dev/x", &echoDev{h: h})
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []sim.Duration {
		s, h := newHost(t, DefaultConfig(), 42)
		var out []sim.Duration
		s.Go("p", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				t0 := p.Now()
				h.CPUWork(p, sim.Us(2))
				out = append(out, p.Now().Sub(t0))
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
