// Package hostos models the host operating system the drivers run in:
// system-call entry/exit, user/kernel copies, interrupt dispatch, wait
// queues with scheduler wake latency, a monotonic clock with 1 ns
// resolution, and the background noise (timer ticks, preemptions) that
// produces the latency tails the paper measures.
//
// The model is cost-based: driver and application code runs as sim
// processes and charges CPU time through this package, with seeded
// stochastic jitter so that 50,000-packet experiments produce stable,
// reproducible distributions.
package hostos

import (
	"fmt"
	"math"

	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// Config holds the host platform cost model. Defaults (DefaultConfig)
// are calibrated to a Fedora 37-era desktop like the paper's testbed.
type Config struct {
	// SyscallEntry/SyscallExit price crossing the user/kernel boundary.
	SyscallEntry sim.Duration
	SyscallExit  sim.Duration
	// CopyPerByte prices copy_to_user/copy_from_user and other kernel
	// memcpy work, per byte.
	CopyPerByte sim.Duration
	// CopyBase is the fixed overhead of starting any copy.
	CopyBase sim.Duration
	// IRQEntry is vector dispatch to ISR-entry time once the APIC has
	// accepted the message.
	IRQEntry sim.Duration
	// SoftIRQLatency is ISR-exit to softirq/NAPI-poll start.
	SoftIRQLatency sim.Duration
	// WakeLatency is wake-up to woken-task-running (scheduler+context
	// switch) for a blocked thread.
	WakeLatency sim.Duration
	// ClockReadCost is the cost of clock_gettime(CLOCK_MONOTONIC).
	ClockReadCost sim.Duration
	// ClockResolution quantizes clock readings (1 ns on the testbed).
	ClockResolution sim.Duration

	// JitterSigma is the lognormal sigma applied to every charged CPU
	// segment (cache/TLB/frequency variation).
	JitterSigma float64
	// WakeTailProb is the probability a wakeup hits a busy runqueue /
	// deep C-state and pays WakeTailBase + Exp(WakeTailMean), capped at
	// WakeTailCap. Blocking paths with more wakeups per operation (the
	// XDMA driver's two interrupts per round trip) accumulate more of
	// this tail — the paper's 95/99% gap.
	WakeTailProb float64
	WakeTailBase sim.Duration
	WakeTailMean sim.Duration
	WakeTailCap  sim.Duration
	// PreemptMeanGap is the mean CPU time between background
	// preemptions (the hazard rate of being descheduled).
	PreemptMeanGap sim.Duration
	// PreemptBase + Exp(PreemptExpMean) is the cost of one preemption.
	PreemptBase    sim.Duration
	PreemptExpMean sim.Duration
}

// ServerConfig models a throughput-tuned server distribution: full
// speculative-execution mitigations (pricier syscalls and IRQ entry)
// but a quieter machine (fewer background tasks, longer preemption
// gaps) than the desktop profile.
func ServerConfig() Config {
	c := DefaultConfig()
	c.SyscallEntry += sim.Ns(250)
	c.SyscallExit += sim.Ns(200)
	c.IRQEntry += sim.Ns(300)
	c.JitterSigma = 0.12
	c.WakeTailProb = 0.03
	c.PreemptMeanGap = sim.Ms(12)
	return c
}

// RTConfig models a PREEMPT_RT-style kernel: threaded IRQs make
// interrupt entry and wakeups slightly slower on average, but the
// heavy scheduling tails are largely gone — the configuration the
// paper's "highly optimized applications" recommendation targets.
func RTConfig() Config {
	c := DefaultConfig()
	c.IRQEntry += sim.Ns(400)
	c.WakeLatency += sim.Ns(400)
	c.JitterSigma = 0.08
	c.WakeTailProb = 0.004
	c.WakeTailMean = sim.Us(4)
	c.WakeTailCap = sim.Us(10)
	c.PreemptMeanGap = sim.Ms(40)
	c.PreemptExpMean = sim.Us(4)
	c.PreemptBase = sim.Us(3)
	return c
}

// DefaultConfig returns the calibrated host cost model.
func DefaultConfig() Config {
	return Config{
		SyscallEntry:    sim.Ns(450),
		SyscallExit:     sim.Ns(350),
		CopyPerByte:     sim.Picosecond * 120, // ~8 GB/s effective
		CopyBase:        sim.Ns(40),
		IRQEntry:        sim.Ns(900),
		SoftIRQLatency:  sim.Ns(500),
		WakeLatency:     sim.Ns(1600),
		ClockReadCost:   sim.Ns(25),
		ClockResolution: sim.Ns(1),
		JitterSigma:     0.18,
		WakeTailProb:    0.055,
		WakeTailBase:    sim.Us(4),
		WakeTailMean:    sim.Us(13),
		WakeTailCap:     sim.Us(42),
		PreemptMeanGap:  sim.Ms(6),
		PreemptBase:     sim.Us(8),
		PreemptExpMean:  sim.Us(14),
	}
}

// Host is the operating-system instance: it owns host memory, the PCIe
// root complex, interrupt routing and the noise model.
type Host struct {
	Sim   *sim.Sim
	Mem   *mem.Memory
	Alloc *mem.Allocator
	RC    *pcie.RootComplex

	cfg Config
	rng *sim.RNG
	met hostMetrics

	metrics     *telemetry.Registry
	irqHandlers map[irqKey]*irqAction
	chardevs    map[string]CharDev
}

// irqAction is the dispatch record built once at RegisterIRQ time: the
// composed ISR process name and the span-wrapped handler closure, so
// per-interrupt delivery does not format strings or allocate closures.
type irqAction struct {
	name string
	fn   func(p *sim.Proc)
}

// hostMetrics caches the OS-noise instruments so hot paths skip the
// registry lookup.
type hostMetrics struct {
	syscalls    *telemetry.Counter
	preemptions *telemetry.Counter
	preemptNs   *telemetry.Counter
	jitterNs    *telemetry.Counter
	wakeups     *telemetry.Counter
	wakeTails   *telemetry.Counter
	irqs        *telemetry.Counter
	wakeLatNs   *telemetry.HDRHistogram
}

type irqKey struct {
	ep     *pcie.Endpoint
	vector int
}

// New builds a host with the given memory size and cost model, wiring
// itself up as the root complex's interrupt sink.
func New(s *sim.Sim, memBytes int, cfg Config, seed uint64) *Host {
	m := mem.New(memBytes)
	h := &Host{
		Sim: s,
		Mem: m,
		// Low memory is reserved so address 0 never looks like a valid
		// DMA target; allocations start at 64 KiB.
		Alloc:       mem.NewAllocator(m, 0x10000, memBytes-0x10000),
		cfg:         cfg,
		rng:         sim.NewRNG(seed).Fork("hostos"),
		irqHandlers: make(map[irqKey]*irqAction),
		chardevs:    make(map[string]CharDev),
	}
	h.metrics = telemetry.NewRegistry()
	h.met = hostMetrics{
		syscalls:    h.metrics.Counter(telemetry.MetricHostSyscalls),
		preemptions: h.metrics.Counter(telemetry.MetricHostPreemptions),
		preemptNs:   h.metrics.Counter(telemetry.MetricHostPreemptNs),
		jitterNs:    h.metrics.Counter(telemetry.MetricHostJitterNs),
		wakeups:     h.metrics.Counter(telemetry.MetricHostWakeups),
		wakeTails:   h.metrics.Counter(telemetry.MetricHostWakeTailHits),
		irqs:        h.metrics.Counter(telemetry.MetricHostIRQsDelivered),
		// HDR (log-bucketed): wake latency is exactly the kind of
		// long-tailed distribution fixed bounds misrepresent — the
		// waketail path stretches wakes well past any preset bound,
		// and the HDR layout resolves those to ~1.6% instead of
		// lumping them into +Inf.
		wakeLatNs: h.metrics.HDR(telemetry.MetricHostWakeLatencyNs),
	}
	h.RC = pcie.NewRootComplex(s, m, pcie.DefaultCosts())
	h.RC.SetMetrics(h.metrics)
	h.RC.SetIRQSink(h.deliverIRQ)
	return h
}

// Metrics returns the host's telemetry registry. Every layer booted
// on this host (PCIe endpoints, drivers, device models, the network
// stack) registers its instruments here.
func (h *Host) Metrics() *telemetry.Registry { return h.metrics }

// Config returns the host cost model.
func (h *Host) Config() Config { return h.cfg }

// RNG returns the host noise generator (for deriving workload streams).
func (h *Host) RNG() *sim.RNG { return h.rng }

// CPUWork charges d of CPU time to p, with multiplicative jitter and a
// preemption hazard proportional to d. This is the single place all
// software latency variance comes from, so both driver stacks are
// subject to exactly the same noise process — the paper's variance
// difference then emerges purely from how much software work each
// stack performs.
func (h *Host) CPUWork(p *sim.Proc, d sim.Duration) {
	if d <= 0 {
		return
	}
	jittered := h.rng.Jitter(d, h.cfg.JitterSigma)
	h.met.jitterNs.Add(int64((jittered - d) / sim.Nanosecond))
	p.Sleep(jittered)
	if h.cfg.PreemptMeanGap > 0 {
		pHit := 1 - math.Exp(-float64(d)/float64(h.cfg.PreemptMeanGap))
		if h.rng.Bool(pHit) {
			cost := h.cfg.PreemptBase + sim.NsF(h.rng.Exp(h.cfg.PreemptExpMean.Nanoseconds()))
			h.met.preemptions.Inc()
			h.met.preemptNs.Add(int64(cost / sim.Nanosecond))
			p.Sleep(cost)
		}
	}
}

// SyscallEnter charges the user-to-kernel transition.
func (h *Host) SyscallEnter(p *sim.Proc) {
	h.met.syscalls.Inc()
	sp := h.Sim.BeginSpan(telemetry.LayerSyscall, "enter")
	h.CPUWork(p, h.cfg.SyscallEntry)
	sp.End()
}

// SyscallExit charges the kernel-to-user return.
func (h *Host) SyscallExit(p *sim.Proc) {
	sp := h.Sim.BeginSpan(telemetry.LayerSyscall, "exit")
	h.CPUWork(p, h.cfg.SyscallExit)
	sp.End()
}

// Nanosleep models clock_nanosleep: syscall entry, a timer sleep of at
// least d, the scheduler wake-up to get the task running again, and the
// return to user space. Used by the streaming benchmark's offered-rate
// pacing.
func (h *Host) Nanosleep(p *sim.Proc, d sim.Duration) {
	h.SyscallEnter(p)
	if d > 0 {
		p.Sleep(d)
		h.CPUWork(p, h.cfg.WakeLatency)
	}
	h.SyscallExit(p)
}

// CopyCost prices a kernel/user copy of n bytes.
func (h *Host) CopyCost(n int) sim.Duration {
	return h.cfg.CopyBase + sim.Duration(n)*h.cfg.CopyPerByte
}

// Copy charges a kernel/user copy of n bytes to p.
func (h *Host) Copy(p *sim.Proc, n int) { h.CPUWork(p, h.CopyCost(n)) }

// ClockGettime models clock_gettime(CLOCK_MONOTONIC): it charges the
// vDSO read cost and returns the time quantized to the clock resolution.
func (h *Host) ClockGettime(p *sim.Proc) sim.Time {
	p.Sleep(h.cfg.ClockReadCost)
	return p.Now().Quantize(h.cfg.ClockResolution)
}

// RegisterIRQ binds an interrupt handler to (endpoint, vector), as
// request_irq does. The handler runs in its own interrupt-context
// process after the platform's dispatch latency.
func (h *Host) RegisterIRQ(ep *pcie.Endpoint, vector int, handler func(p *sim.Proc)) {
	act := &irqAction{name: fmt.Sprintf("isr:%s:%d", ep.Name(), vector)}
	act.fn = func(p *sim.Proc) {
		// IRQ-layer span: handler entry to return, including any NAPI
		// poll the handler runs in its interrupt-context process.
		sp := h.Sim.BeginSpan(telemetry.LayerIRQ, act.name)
		handler(p)
		sp.End()
	}
	h.irqHandlers[irqKey{ep, vector}] = act
}

func (h *Host) deliverIRQ(ep *pcie.Endpoint, vector int) {
	act, ok := h.irqHandlers[irqKey{ep, vector}]
	if !ok {
		panic(fmt.Sprintf("hostos: unhandled IRQ %s vector %d", ep.Name(), vector))
	}
	h.met.irqs.Inc()
	h.Sim.GoAfter(h.cfg.IRQEntry, act.name, act.fn)
}

// WaitQueue is a kernel wait queue: sleepers pay the scheduler wake
// latency when awakened. Waiters park directly on the scheduler
// (sim.Proc.Park) and Wake schedules each task's resume after its own
// jittered wake latency, like a per-task runqueue placement — with no
// per-wait trigger or closure allocation.
type WaitQueue struct {
	host     *Host
	name     string
	parkName string
	wakeName string
	waiters  []*sim.Proc
}

// NewWaitQueue returns an empty wait queue.
func (h *Host) NewWaitQueue(name string) *WaitQueue {
	return &WaitQueue{
		host:     h,
		name:     name,
		parkName: "wq:" + name,
		wakeName: "wake:" + name,
	}
}

// Wait blocks p until a Wake call releases it; the woken process
// resumes only after the scheduler wake latency (jittered).
func (wq *WaitQueue) Wait(p *sim.Proc) {
	wq.waiters = append(wq.waiters, p)
	p.Park(wq.parkName)
}

// Wake releases all current waiters; each becomes runnable after the
// jittered wake latency.
func (wq *WaitQueue) Wake() {
	h := wq.host
	for i, p := range wq.waiters {
		d := h.rng.Jitter(h.cfg.WakeLatency, h.cfg.JitterSigma)
		if h.cfg.WakeTailProb > 0 && h.rng.Bool(h.cfg.WakeTailProb) {
			extra := h.cfg.WakeTailBase + sim.NsF(h.rng.Exp(h.cfg.WakeTailMean.Nanoseconds()))
			if extra > h.cfg.WakeTailCap {
				extra = h.cfg.WakeTailCap
			}
			d += extra
			h.met.wakeTails.Inc()
		}
		h.met.wakeups.Inc()
		h.met.wakeLatNs.Observe(int64(d.Nanoseconds()))
		h.Sim.ResumeAfter(d, wq.wakeName, p)
		wq.waiters[i] = nil
	}
	wq.waiters = wq.waiters[:0]
}

// Waiters reports the number of blocked tasks.
func (wq *WaitQueue) Waiters() int { return len(wq.waiters) }

// CharDev is the file-operations surface a character-device driver
// registers (the XDMA driver's /dev/xdma0_h2c_0-style nodes).
type CharDev interface {
	// Write moves len(data) bytes from the user buffer to the device,
	// blocking until the driver considers the operation complete.
	Write(p *sim.Proc, data []byte) (int, error)
	// Read fills buf from the device, blocking per driver semantics.
	Read(p *sim.Proc, buf []byte) (int, error)
}

// RegisterCharDev publishes a character device under a /dev-style name.
func (h *Host) RegisterCharDev(name string, dev CharDev) {
	if _, exists := h.chardevs[name]; exists {
		panic("hostos: duplicate chardev " + name)
	}
	h.chardevs[name] = dev
}

// File is an open character-device handle. Its methods price the
// system-call boundary around the driver's file operations.
type File struct {
	host *Host
	dev  CharDev
	name string
}

// Open opens a registered character device.
func (h *Host) Open(name string) (*File, error) {
	dev, ok := h.chardevs[name]
	if !ok {
		return nil, fmt.Errorf("hostos: no such device %q", name)
	}
	return &File{host: h, dev: dev, name: name}, nil
}

// Write is the write(2) path: syscall entry, driver file op, exit.
func (f *File) Write(p *sim.Proc, data []byte) (int, error) {
	f.host.SyscallEnter(p)
	n, err := f.dev.Write(p, data)
	f.host.SyscallExit(p)
	return n, err
}

// Read is the read(2) path.
func (f *File) Read(p *sim.Proc, buf []byte) (int, error) {
	f.host.SyscallEnter(p)
	n, err := f.dev.Read(p, buf)
	f.host.SyscallExit(p)
	return n, err
}
