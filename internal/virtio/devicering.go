package virtio

import (
	"fmt"

	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/sim"
)

// DMA is the device's costed path to host memory. The FPGA-side VirtIO
// controller supplies an implementation backed by the XDMA engine's
// card port, so every ring access below takes real bus time — this is
// the extra hardware work that makes the VirtIO breakdown hardware-
// heavy in the paper's Figure 4.
type DMA interface {
	Read(p *sim.Proc, a mem.Addr, n int) []byte
	Write(p *sim.Proc, a mem.Addr, data []byte)
}

// DMAReaderInto is the optional allocation-free read capability: DMA
// implementations that can land bytes directly in a caller-supplied
// buffer implement it, and the device queues detect it once at
// construction. Implementations without it (test doubles) fall back to
// Read plus a copy.
type DMAReaderInto interface {
	ReadInto(p *sim.Proc, a mem.Addr, dst []byte)
}

// DeviceQueue is the device-side (FPGA) view of one virtqueue. All
// accesses go through DMA and block the calling fabric process.
//
// Each queue owns scratch buffers reused across per-packet operations,
// so methods must be called from one fabric process at a time (the
// controller's engine discipline), and slices returned by FetchChain /
// NextChain / ReadChain are valid only until the next call of the same
// kind on this queue.
//
//fvlint:hotpath
type DeviceQueue struct {
	dma DMA
	rd  DMAReaderInto // non-nil when dma supports ReadInto
	lay RingLayout

	lastAvail uint16 // next avail slot to consume
	usedIdx   uint16 // next used idx to publish
	eventIdx  bool   // VIRTIO_F_RING_EVENT_IDX negotiated

	u16Scratch  [2]byte             // bus reads of 16-bit ring fields
	idxScratch  [2]byte             // used-index publication
	flagScratch [2]byte             // flags / avail-event publication
	descScratch [descEntrySize]byte // one descriptor-table entry
	elemScratch [usedEntrySize]byte // one used-ring element
	chainBuf    []Desc              // FetchChain result storage
	indBuf      []byte              // raw indirect-table staging
}

// NewDeviceQueue returns the device-side handle for a ring whose
// addresses the driver transferred during queue setup.
func NewDeviceQueue(dma DMA, lay RingLayout) *DeviceQueue {
	rd, _ := dma.(DMAReaderInto)
	return &DeviceQueue{dma: dma, rd: rd, lay: lay}
}

// readInto fetches len(dst) bytes over the bus without allocating when
// the DMA path supports it.
func (q *DeviceQueue) readInto(p *sim.Proc, a mem.Addr, dst []byte) {
	if q.rd != nil {
		q.rd.ReadInto(p, a, dst)
		return
	}
	copy(dst, q.dma.Read(p, a, len(dst)))
}

// readU16 fetches one 16-bit ring field.
func (q *DeviceQueue) readU16(p *sim.Proc, a mem.Addr) uint16 {
	q.readInto(p, a, q.u16Scratch[:])
	return u16le(q.u16Scratch[:])
}

// growBytes returns b resized to n bytes, reallocating only when the
// capacity is insufficient.
func growBytes(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// Layout returns the ring layout the queue operates on.
func (q *DeviceQueue) Layout() RingLayout { return q.lay }

func u16le(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
func u32le(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func u64le(b []byte) uint64 { return uint64(u32le(b)) | uint64(u32le(b[4:]))<<32 }

// FetchAvailIdx reads the driver's published avail index.
func (q *DeviceQueue) FetchAvailIdx(p *sim.Proc) uint16 {
	return q.readU16(p, q.lay.Avail+2)
}

// Pending reports (via one DMA read) how many chains the driver has
// exposed that the device has not yet consumed.
func (q *DeviceQueue) Pending(p *sim.Proc) int {
	return int(q.FetchAvailIdx(p) - q.lastAvail)
}

// NextAvailHead consumes the next avail-ring slot, returning the chain
// head. Callers must ensure a chain is pending (Pending > 0).
func (q *DeviceQueue) NextAvailHead(p *sim.Proc) uint16 {
	slot := q.lay.Avail + availHeaderLen + mem.Addr(q.lastAvail%uint16(q.lay.QueueSize))*2
	head := q.readU16(p, slot)
	q.lastAvail++
	return head
}

// FetchChain walks the descriptor chain starting at head, fetching each
// descriptor-table entry over the bus. An indirect descriptor resolves
// with a single read of the whole indirect table — the bus-efficiency
// win VIRTIO_F_RING_INDIRECT_DESC exists for. The returned slice is
// queue-owned scratch, valid until the next FetchChain on this queue.
func (q *DeviceQueue) FetchChain(p *sim.Proc, head uint16) ([]Desc, error) {
	out := q.chainBuf[:0]
	idx := head
	for {
		if int(idx) >= q.lay.QueueSize {
			return nil, fmt.Errorf("virtio: descriptor index %d outside queue of %d", idx, q.lay.QueueSize)
		}
		if len(out) > q.lay.QueueSize {
			return nil, fmt.Errorf("virtio: descriptor chain longer than queue (loop?)")
		}
		q.readInto(p, q.lay.Desc+mem.Addr(idx)*descEntrySize, q.descScratch[:])
		d := decodeDesc(q.descScratch[:])
		if d.Flags&DescFIndirect != 0 {
			if len(out) != 0 || d.Flags&DescFNext != 0 {
				return nil, fmt.Errorf("virtio: indirect descriptor must be the sole ring entry")
			}
			return q.fetchIndirect(p, d)
		}
		out = append(out, d)
		q.chainBuf = out
		if d.Flags&DescFNext == 0 {
			return out, nil
		}
		idx = d.Next
	}
}

func decodeDesc(raw []byte) Desc {
	return Desc{
		Addr:  mem.Addr(u64le(raw)),
		Len:   u32le(raw[8:]),
		Flags: u16le(raw[12:]),
		Next:  u16le(raw[14:]),
	}
}

// fetchIndirect reads the whole indirect table in one bus transfer and
// decodes the chain it contains.
func (q *DeviceQueue) fetchIndirect(p *sim.Proc, ind Desc) ([]Desc, error) {
	n := int(ind.Len)
	if n <= 0 || n%descEntrySize != 0 {
		return nil, fmt.Errorf("virtio: indirect table length %d not a descriptor multiple", n)
	}
	count := n / descEntrySize
	// Bound the table before fetching it: the spec caps an indirect
	// chain at the queue size, and an unchecked 32-bit length would let
	// a corrupt descriptor demand a gigabyte bus read.
	if count > q.lay.QueueSize {
		return nil, fmt.Errorf("virtio: indirect table of %d entries exceeds queue size %d", count, q.lay.QueueSize)
	}
	q.indBuf = growBytes(q.indBuf, n)
	q.readInto(p, ind.Addr, q.indBuf)
	raw := q.indBuf
	out := q.chainBuf[:0]
	idx := 0
	for {
		if idx < 0 || idx >= count || len(out) > count {
			return nil, fmt.Errorf("virtio: indirect chain escapes its table")
		}
		d := decodeDesc(raw[idx*descEntrySize:])
		if d.Flags&DescFIndirect != 0 {
			return nil, fmt.Errorf("virtio: nested indirect descriptor")
		}
		out = append(out, d)
		q.chainBuf = out
		if d.Flags&DescFNext == 0 {
			return out, nil
		}
		idx = int(d.Next)
	}
}

// ReadChain gathers the contents of all device-readable segments into a
// fresh buffer.
func (q *DeviceQueue) ReadChain(p *sim.Proc, chain []Desc) []byte {
	return q.ReadChainInto(p, chain, nil)
}

// ReadChainInto gathers the device-readable segments into buf (reusing
// its capacity, reallocating only on growth) and returns the gathered
// bytes. This is the allocation-free form the controller's per-packet
// engine uses with a per-queue scratch buffer.
func (q *DeviceQueue) ReadChainInto(p *sim.Proc, chain []Desc, buf []byte) []byte {
	out := buf[:0]
	for _, d := range chain {
		if d.Flags&DescFWrite == 0 {
			out = appendRead(p, q, out, d)
		}
	}
	return out
}

// appendRead grows out by d.Len bytes and fills them from host memory.
func appendRead(p *sim.Proc, q *DeviceQueue, out []byte, d Desc) []byte {
	n, need := len(out), int(d.Len)
	if cap(out)-n < need {
		grown := make([]byte, n, n+need)
		copy(grown, out)
		out = grown
	}
	out = out[:n+need]
	q.readInto(p, d.Addr, out[n:])
	return out
}

// WriteChain scatters data into the device-writable segments of chain
// and returns the number of bytes written (for the used entry).
func (q *DeviceQueue) WriteChain(p *sim.Proc, chain []Desc, data []byte) int {
	written := 0
	for _, d := range chain {
		if d.Flags&DescFWrite == 0 {
			continue
		}
		if len(data) == 0 {
			break
		}
		n := int(d.Len)
		if n > len(data) {
			n = len(data)
		}
		q.dma.Write(p, d.Addr, data[:n])
		data = data[n:]
		written += n
	}
	return written
}

// PushUsed publishes a completed chain: write the used element, then
// the incremented used index (two posted writes, ordered by the bus).
func (q *DeviceQueue) PushUsed(p *sim.Proc, head uint16, written int) {
	slot := q.lay.Used + usedHeaderLen + mem.Addr(q.usedIdx%uint16(q.lay.QueueSize))*usedEntrySize
	elem := q.elemScratch[:]
	putU32 := func(b []byte, v uint32) {
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	putU32(elem, uint32(head))
	putU32(elem[4:], uint32(written))
	q.dma.Write(p, slot, elem)
	q.usedIdx++
	q.idxScratch[0], q.idxScratch[1] = byte(q.usedIdx), byte(q.usedIdx>>8)
	q.dma.Write(p, q.lay.Used+2, q.idxScratch[:])
}

// InterruptSuppressed reads the driver's avail flags and reports
// whether VRING_AVAIL_F_NO_INTERRUPT is set.
func (q *DeviceQueue) InterruptSuppressed(p *sim.Proc) bool {
	return q.readU16(p, q.lay.Avail)&AvailFNoInterrupt != 0
}

// SetNoNotify publishes UsedFNoNotify, telling the driver doorbells may
// be skipped while the device is actively polling.
func (q *DeviceQueue) SetNoNotify(p *sim.Proc, on bool) {
	v := uint16(0)
	if on {
		v = UsedFNoNotify
	}
	q.flagScratch[0], q.flagScratch[1] = byte(v), byte(v>>8)
	q.dma.Write(p, q.lay.Used, q.flagScratch[:])
}
