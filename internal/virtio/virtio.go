// Package virtio implements the VirtIO 1.2 machinery both sides of the
// experiment share: device and feature constants, the split virtqueue
// memory layout, driver-side ring operations (the front-end running on
// the host CPU against its own memory), and device-side ring operations
// (the FPGA controller reaching the same structures through costed DMA).
package virtio

import "fmt"

// PCIVendorID is the VirtIO PCI vendor ID.
const PCIVendorID = 0x1af4

// PCIDeviceIDBase is the modern (non-transitional) PCI device ID base:
// the PCI device ID is PCIDeviceIDBase + DeviceType.
const PCIDeviceIDBase = 0x1040

// DeviceType identifies a VirtIO device class.
type DeviceType uint16

// Device types from the specification.
const (
	DeviceNet     DeviceType = 1
	DeviceBlock   DeviceType = 2
	DeviceConsole DeviceType = 3
)

// String names the device type.
func (t DeviceType) String() string {
	switch t {
	case DeviceNet:
		return "net"
	case DeviceBlock:
		return "block"
	case DeviceConsole:
		return "console"
	default:
		return fmt.Sprintf("device-type-%d", uint16(t))
	}
}

// PCIDeviceID returns the modern PCI device ID for the type.
func (t DeviceType) PCIDeviceID() uint16 { return PCIDeviceIDBase + uint16(t) }

// Device status bits (driver writes these during bring-up).
const (
	StatusAcknowledge = 1
	StatusDriver      = 2
	StatusDriverOK    = 4
	StatusFeaturesOK  = 8
	StatusNeedsReset  = 64
	StatusFailed      = 128
)

// Feature is a 64-bit feature bitmap.
type Feature uint64

// Device-independent feature bits.
const (
	FRingIndirectDesc Feature = 1 << 28
	FRingEventIdx     Feature = 1 << 29
	FVersion1         Feature = 1 << 32
)

// Network device feature bits.
const (
	NetFCsum      Feature = 1 << 0
	NetFGuestCsum Feature = 1 << 1
	NetFMTU       Feature = 1 << 3
	NetFMAC       Feature = 1 << 5
	NetFStatus    Feature = 1 << 16
	NetFCtrlVQ    Feature = 1 << 17
	NetFMQ        Feature = 1 << 22
)

// Has reports whether f contains all bits of want.
func (f Feature) Has(want Feature) bool { return f&want == want }

// String lists the known set bits.
func (f Feature) String() string {
	names := []struct {
		bit  Feature
		name string
	}{
		{NetFCsum, "CSUM"}, {NetFGuestCsum, "GUEST_CSUM"}, {NetFMTU, "MTU"},
		{NetFMAC, "MAC"}, {NetFStatus, "STATUS"}, {NetFCtrlVQ, "CTRL_VQ"},
		{NetFMQ, "MQ"},
		{FRingIndirectDesc, "RING_INDIRECT"}, {FRingEventIdx, "EVENT_IDX"},
		{FVersion1, "VERSION_1"},
	}
	out := ""
	for _, n := range names {
		if f.Has(n.bit) {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		out = "none"
	}
	return out
}

// Configuration structure types carried in VirtIO PCI vendor capabilities.
const (
	CfgTypeCommon = 1
	CfgTypeNotify = 2
	CfgTypeISR    = 3
	CfgTypeDevice = 4
	CfgTypePCI    = 5
)

// Common configuration structure register offsets (within the common
// window of the device BAR), per VirtIO 1.2 §4.1.4.3.
const (
	CommonDeviceFeatureSel = 0x00
	CommonDeviceFeature    = 0x04
	CommonDriverFeatureSel = 0x08
	CommonDriverFeature    = 0x0c
	CommonMSIXConfig       = 0x10
	CommonNumQueues        = 0x12
	CommonDeviceStatus     = 0x14
	CommonConfigGeneration = 0x15
	CommonQueueSelect      = 0x16
	CommonQueueSize        = 0x18
	CommonQueueMSIXVector  = 0x1a
	CommonQueueEnable      = 0x1c
	CommonQueueNotifyOff   = 0x1e
	CommonQueueDesc        = 0x20
	CommonQueueDriver      = 0x28
	CommonQueueDevice      = 0x30
)

// ISR status bits.
const (
	ISRQueue  = 1 << 0
	ISRConfig = 1 << 1
)

// Descriptor flags.
const (
	DescFNext     = 1
	DescFWrite    = 2
	DescFIndirect = 4
)

// Avail/used ring flags.
const (
	AvailFNoInterrupt = 1
	UsedFNoNotify     = 1
)

// PCICap is the virtio_pci_cap structure carried in a PCI vendor
// capability: it tells the driver where in which BAR a configuration
// structure lives. Body layout (after the generic 2-byte cap header):
// cap_len, cfg_type, bar, id, padding[2], offset le32, length le32.
type PCICap struct {
	CfgType byte
	Bar     byte
	ID      byte
	Offset  uint32
	Length  uint32
	// NotifyOffMultiplier is appended for CfgTypeNotify capabilities.
	NotifyOffMultiplier uint32
}

// Encode renders the capability body bytes (the part following the
// capability ID and next pointer).
func (c PCICap) Encode() []byte {
	capLen := byte(16)
	if c.CfgType == CfgTypeNotify {
		capLen = 20
	}
	b := []byte{
		capLen, c.CfgType, c.Bar, c.ID, 0, 0,
		byte(c.Offset), byte(c.Offset >> 8), byte(c.Offset >> 16), byte(c.Offset >> 24),
		byte(c.Length), byte(c.Length >> 8), byte(c.Length >> 16), byte(c.Length >> 24),
	}
	if c.CfgType == CfgTypeNotify {
		m := c.NotifyOffMultiplier
		b = append(b, byte(m), byte(m>>8), byte(m>>16), byte(m>>24))
	}
	return b
}

// DecodePCICap parses a capability body produced by Encode (or read
// from config space starting at the cap_len byte).
func DecodePCICap(b []byte) (PCICap, error) {
	if len(b) < 14 {
		return PCICap{}, fmt.Errorf("virtio: pci cap body too short: %d bytes", len(b))
	}
	u32 := func(o int) uint32 {
		return uint32(b[o]) | uint32(b[o+1])<<8 | uint32(b[o+2])<<16 | uint32(b[o+3])<<24
	}
	c := PCICap{CfgType: b[1], Bar: b[2], ID: b[3], Offset: u32(6), Length: u32(10)}
	if c.CfgType == CfgTypeNotify {
		if len(b) < 18 {
			return PCICap{}, fmt.Errorf("virtio: notify cap body too short")
		}
		c.NotifyOffMultiplier = u32(14)
	}
	return c, nil
}
