package virtio

import (
	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/sim"
)

// This file implements VIRTIO_F_RING_EVENT_IDX (spec §2.7.7/§2.7.8):
// instead of boolean suppression flags, each side publishes an index
// threshold — used_event in the avail ring's tail ("interrupt me when
// used passes this") and avail_event in the used ring's tail ("kick me
// when avail passes this") — allowing fine-grained batching of both
// interrupts and doorbells.

// NeedEvent is the spec's vring_need_event: whether crossing from old
// to new passed the event threshold (all arithmetic mod 2^16).
func NeedEvent(event, new, old uint16) bool {
	return uint16(new-event-1) < uint16(new-old)
}

// usedEventAddr is where the driver publishes its interrupt threshold.
func (l RingLayout) usedEventAddr() mem.Addr {
	return l.Avail + availHeaderLen + mem.Addr(2*l.QueueSize)
}

// availEventAddr is where the device publishes its doorbell threshold.
func (l RingLayout) availEventAddr() mem.Addr {
	return l.Used + usedHeaderLen + mem.Addr(usedEntrySize*l.QueueSize)
}

// ---- driver side ----------------------------------------------------------

// EnableEventIdx switches the queue to event-index suppression; call
// once, after the feature is negotiated and before traffic starts.
func (q *DriverQueue) EnableEventIdx() {
	q.eventIdx = true
	// Arm immediately: interrupt on the first used entry.
	q.mem.PutU16(q.lay.usedEventAddr(), q.lastUsedSeen)
}

// EventIdx reports whether event-index mode is enabled.
func (q *DriverQueue) EventIdx() bool { return q.eventIdx }

// NeedKick reports whether the device asked for a doorbell covering
// the avail entries added since the last KickDone. Without EVENT_IDX
// it falls back to the used-flags hint.
func (q *DriverQueue) NeedKick() bool {
	if !q.eventIdx {
		return !q.DeviceNoNotify()
	}
	event := q.mem.U16(q.lay.availEventAddr())
	return NeedEvent(event, q.availShadow, q.lastKicked)
}

// KickDone records that the driver has notified (or decided not to)
// up to the current avail index.
func (q *DriverQueue) KickDone() { q.lastKicked = q.availShadow }

// armUsedEvent publishes the driver's interrupt threshold.
func (q *DriverQueue) armUsedEvent(idx uint16) {
	q.mem.PutU16(q.lay.usedEventAddr(), idx)
}

// ---- device side ----------------------------------------------------------

// EnableEventIdx switches the device-side queue to event-index mode.
func (q *DeviceQueue) EnableEventIdx() { q.eventIdx = true }

// EventIdx reports whether event-index mode is enabled.
func (q *DeviceQueue) EventIdx() bool { return q.eventIdx }

// ShouldInterruptAt decides, after publishing used entries up to newIdx
// (from oldIdx), whether to raise an interrupt. In event-index mode it
// reads the driver's used_event threshold; otherwise the avail flags.
// Both reads are costed bus accesses and happen after the used-index
// write, preserving the race-free ordering.
func (q *DeviceQueue) ShouldInterruptAt(p *sim.Proc, oldIdx, newIdx uint16) bool {
	if q.eventIdx {
		event := q.readU16(p, q.lay.usedEventAddr())
		return NeedEvent(event, newIdx, oldIdx)
	}
	return !q.InterruptSuppressed(p)
}

// PublishAvailEvent writes the device's doorbell threshold: "kick me
// when avail moves past idx".
func (q *DeviceQueue) PublishAvailEvent(p *sim.Proc, idx uint16) {
	q.flagScratch[0], q.flagScratch[1] = byte(idx), byte(idx>>8)
	q.dma.Write(p, q.lay.availEventAddr(), q.flagScratch[:])
}

// UsedIdx reports the device's next used index (entries published so far).
func (q *DeviceQueue) UsedIdx() uint16 { return q.usedIdx }
