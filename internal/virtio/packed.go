package virtio

import (
	"fmt"

	"fpgavirtio/internal/fvassert"
	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/sim"
)

// This file implements the packed virtqueue format (VirtIO 1.2 §2.8):
// a single ring of read-write descriptors replaces the split format's
// three areas. Availability is signalled in-band through per-descriptor
// AVAIL/USED bits interpreted against free-running wrap counters, so
// the device discovers work and its parameters with a single bus read
// per descriptor — no separate avail-ring lookup.

// Packed descriptor flag bits (in addition to NEXT/WRITE/INDIRECT).
const (
	PackedDescFAvail = 1 << 7
	PackedDescFUsed  = 1 << 15
)

// Event-suppression structure flag values (§2.8.10).
const (
	PackedEventFlagEnable  = 0
	PackedEventFlagDisable = 1
)

// PackedLayout records where a packed virtqueue's areas live: the
// descriptor ring and the two 4-byte event suppression structures.
type PackedLayout struct {
	QueueSize   int
	Ring        mem.Addr // 16 bytes per descriptor
	DriverEvent mem.Addr // written by driver, read by device
	DeviceEvent mem.Addr // written by device, read by driver
}

// AllocPackedRing carves the packed ring areas out of host memory.
func AllocPackedRing(al *mem.Allocator, queueSize int) PackedLayout {
	if queueSize <= 0 || queueSize&(queueSize-1) != 0 {
		panic(fmt.Sprintf("virtio: queue size %d must be a power of two", queueSize))
	}
	return PackedLayout{
		QueueSize:   queueSize,
		Ring:        al.Alloc(descEntrySize*queueSize, 16),
		DriverEvent: al.Alloc(4, 4),
		DeviceEvent: al.Alloc(4, 4),
	}
}

func (l PackedLayout) slotAddr(i int) mem.Addr {
	return l.Ring + mem.Addr(i)*descEntrySize
}

// packedChain records one outstanding chain, keyed by buffer ID.
type packedChain struct {
	token any
	n     int
}

// PackedDriverQueue is the driver-side packed virtqueue.
type PackedDriverQueue struct {
	mem *mem.Memory
	lay PackedLayout

	nextIdx  int  // next slot to fill
	wrap     bool // driver avail wrap counter (starts true)
	usedIdx  int  // next slot to poll for completion
	usedWrap bool // driver used wrap counter (starts true)
	numFree  int

	chains map[uint16]packedChain

	kickArmed bool // a doorbell is owed for chains added since KickDone
}

// NewPackedDriverQueue initializes the ring (all descriptors unavailable)
// and the event suppression structures (notifications enabled).
func NewPackedDriverQueue(m *mem.Memory, lay PackedLayout) *PackedDriverQueue {
	q := &PackedDriverQueue{
		mem:      m,
		lay:      lay,
		wrap:     true,
		usedWrap: true,
		numFree:  lay.QueueSize,
		chains:   make(map[uint16]packedChain),
	}
	for i := 0; i < lay.QueueSize; i++ {
		m.Fill(lay.slotAddr(i), descEntrySize, 0)
	}
	m.PutU32(lay.DriverEvent, PackedEventFlagEnable)
	m.PutU32(lay.DeviceEvent, PackedEventFlagEnable)
	return q
}

// Layout returns the ring layout.
func (q *PackedDriverQueue) Layout() PackedLayout { return q.lay }

// NumFree implements DriverRing.
func (q *PackedDriverQueue) NumFree() int { return q.numFree }

// availBits returns the AVAIL/USED bit pattern marking a descriptor
// available under wrap counter w: AVAIL == w, USED == !w.
func availBits(w bool) uint16 {
	if w {
		return PackedDescFAvail
	}
	return PackedDescFUsed
}

// usedBits returns the pattern marking a descriptor used under wrap
// counter w: AVAIL == USED == w.
func usedBits(w bool) uint16 {
	if w {
		return PackedDescFAvail | PackedDescFUsed
	}
	return 0
}

// Add implements DriverRing: write the chain's descriptors into
// consecutive slots (the head's flags last, as the visibility barrier),
// with the buffer ID carried in the final descriptor.
func (q *PackedDriverQueue) Add(segs []BufSeg, token any) (uint16, error) {
	if len(segs) == 0 {
		return 0, fmt.Errorf("virtio: empty buffer chain")
	}
	if len(segs) > q.numFree {
		return 0, fmt.Errorf("virtio: packed ring full (%d free, need %d)", q.numFree, len(segs))
	}
	id := uint16(q.nextIdx) // head slot doubles as the buffer ID
	idx, wrap := q.nextIdx, q.wrap
	var headAddr mem.Addr
	var headFlags uint16
	for i, s := range segs {
		a := q.lay.slotAddr(idx)
		flags := availBits(wrap)
		if s.DeviceWritten {
			flags |= DescFWrite
		}
		if i != len(segs)-1 {
			flags |= DescFNext
		}
		q.mem.PutU64(a, uint64(s.Addr))
		q.mem.PutU32(a+8, uint32(s.Len))
		q.mem.PutU16(a+12, id)
		if i == 0 {
			// Defer the head's flags: the device must not observe the
			// chain until every descriptor is in place.
			headAddr, headFlags = a+14, flags
		} else {
			q.mem.PutU16(a+14, flags)
		}
		idx++
		if idx == q.lay.QueueSize {
			idx = 0
			wrap = !wrap
		}
	}
	q.mem.PutU16(headAddr, headFlags)
	q.nextIdx, q.wrap = idx, wrap
	q.numFree -= len(segs)
	if fvassert.Enabled {
		if _, busy := q.chains[id]; busy {
			fvassert.Failf("packed ring re-published buffer id %d while in flight", id)
		}
	}
	q.chains[id] = packedChain{token: token, n: len(segs)}
	q.kickArmed = true
	return id, nil
}

// peekUsed reads the descriptor at the poll position and reports
// whether the device has marked it used.
func (q *PackedDriverQueue) peekUsed() (uint16, uint32, bool) {
	a := q.lay.slotAddr(q.usedIdx)
	flags := q.mem.U16(a + 14)
	if flags&(PackedDescFAvail|PackedDescFUsed) != usedBits(q.usedWrap) {
		return 0, 0, false
	}
	return q.mem.U16(a + 12), q.mem.U32(a + 8), true
}

// HasUsed implements DriverRing.
func (q *PackedDriverQueue) HasUsed() bool {
	_, _, ok := q.peekUsed()
	return ok
}

// GetUsed implements DriverRing: harvest one completion and reclaim its
// slots.
func (q *PackedDriverQueue) GetUsed() (Used, bool) {
	id, written, ok := q.peekUsed()
	if !ok {
		return Used{}, false
	}
	ch, known := q.chains[id]
	if !known {
		panic(fmt.Sprintf("virtio: packed completion for unknown buffer id %d", id))
	}
	delete(q.chains, id)
	q.usedIdx += ch.n
	if q.usedIdx >= q.lay.QueueSize {
		q.usedIdx -= q.lay.QueueSize
		q.usedWrap = !q.usedWrap
	}
	q.numFree += ch.n
	return Used{Token: ch.token, Written: int(written)}, true
}

// SetNoInterrupt implements DriverRing via the driver event structure.
func (q *PackedDriverQueue) SetNoInterrupt(on bool) {
	v := uint32(PackedEventFlagEnable)
	if on {
		v = PackedEventFlagDisable
	}
	q.mem.PutU32(q.lay.DriverEvent, v)
}

// NeedKick implements DriverRing: honour the device event structure.
func (q *PackedDriverQueue) NeedKick() bool {
	if !q.kickArmed {
		return false
	}
	return q.mem.U32(q.lay.DeviceEvent) == PackedEventFlagEnable
}

// KickDone implements DriverRing.
func (q *PackedDriverQueue) KickDone() { q.kickArmed = false }

// ---- device side ----------------------------------------------------------

// PackedDeviceQueue is the device-side packed virtqueue; all accesses
// go through costed DMA. Like DeviceQueue it owns per-queue scratch,
// so methods run from one fabric process at a time and returned slices
// are valid only until the next call of the same kind.
//
//fvlint:hotpath
type PackedDeviceQueue struct {
	dma DMA
	rd  DMAReaderInto // non-nil when dma supports ReadInto
	lay PackedLayout

	idx      int  // next slot to poll for available descriptors
	wrap     bool // device avail wrap counter
	usedIdx  int  // next slot to write completions into
	usedWrap bool // device used wrap counter

	// pending caches the head descriptor the last HasPending read, so
	// NextChain does not pay for it twice.
	pending    Desc
	pendingID  uint16
	hasPending bool

	descScratch  [descEntrySize]byte // one descriptor slot read
	complScratch [descEntrySize]byte // one used-descriptor write
	eventScratch [4]byte             // event-suppression accesses
	chainBuf     []Desc              // NextChain result storage
}

// NewPackedDeviceQueue returns the device-side handle.
func NewPackedDeviceQueue(dma DMA, lay PackedLayout) *PackedDeviceQueue {
	rd, _ := dma.(DMAReaderInto)
	return &PackedDeviceQueue{dma: dma, rd: rd, lay: lay, wrap: true, usedWrap: true}
}

// Layout returns the ring layout.
func (q *PackedDeviceQueue) Layout() PackedLayout { return q.lay }

// readInto fetches len(dst) bytes over the bus without allocating when
// the DMA path supports it.
func (q *PackedDeviceQueue) readInto(p *sim.Proc, a mem.Addr, dst []byte) {
	if q.rd != nil {
		q.rd.ReadInto(p, a, dst)
		return
	}
	copy(dst, q.dma.Read(p, a, len(dst)))
}

// readSlot fetches one descriptor (16 bytes, one bus read). The packed
// layout differs from the split one: the buffer ID sits at offset 12
// and the flags at offset 14 (there is no next field — chains are
// positional).
func (q *PackedDeviceQueue) readSlot(p *sim.Proc, i int) (Desc, uint16) {
	raw := q.descScratch[:]
	q.readInto(p, q.lay.slotAddr(i), raw)
	d := Desc{
		Addr:  mem.Addr(u64le(raw)),
		Len:   u32le(raw[8:]),
		Flags: u16le(raw[14:]),
	}
	return d, u16le(raw[12:])
}

// isAvail reports whether flags mark the descriptor available under the
// device's wrap counter.
func (q *PackedDeviceQueue) isAvail(flags uint16) bool {
	return flags&(PackedDescFAvail|PackedDescFUsed) == availBits(q.wrap)
}

// HasPending implements DeviceRing: read the next slot and check its
// availability bits — the packed format's single-read work discovery.
func (q *PackedDeviceQueue) HasPending(p *sim.Proc) bool {
	d, id := q.readSlot(p, q.idx)
	if !q.isAvail(d.Flags) {
		q.hasPending = false
		return false
	}
	q.pending, q.pendingID, q.hasPending = d, id, true
	return true
}

// NextChain implements DeviceRing: consume the pending chain. The head
// was already fetched by HasPending; only chained descriptors cost
// further reads.
func (q *PackedDeviceQueue) NextChain(p *sim.Proc) ([]Desc, ChainToken, error) {
	head := q.pending
	id := q.pendingID
	if !q.hasPending {
		d, did := q.readSlot(p, q.idx)
		if !q.isAvail(d.Flags) {
			return nil, ChainToken{}, fmt.Errorf("virtio: packed NextChain with nothing pending")
		}
		head, id = d, did
	}
	q.hasPending = false
	chain := append(q.chainBuf[:0], head)
	q.chainBuf = chain
	q.advance()
	for chain[len(chain)-1].Flags&DescFNext != 0 {
		if len(chain) > q.lay.QueueSize {
			return nil, ChainToken{}, fmt.Errorf("virtio: packed chain longer than queue")
		}
		d, did := q.readSlot(p, q.idx)
		if !q.isAvailOrPrevWrap(d.Flags) {
			return nil, ChainToken{}, fmt.Errorf("virtio: packed chain truncated at slot %d", q.idx)
		}
		id = did
		chain = append(chain, d)
		q.chainBuf = chain
		q.advance()
	}
	return chain, ChainToken{Head: id, Len: len(chain)}, nil
}

// isAvailOrPrevWrap accepts chained descriptors that were written under
// the wrap counter value in force at their slot — which flips when the
// chain crosses the ring boundary (advance() has already updated
// q.wrap, so a plain isAvail check suffices).
func (q *PackedDeviceQueue) isAvailOrPrevWrap(flags uint16) bool {
	return q.isAvail(flags)
}

// advance moves the poll position one slot, flipping the wrap counter
// at the ring boundary.
func (q *PackedDeviceQueue) advance() {
	q.idx++
	if q.idx == q.lay.QueueSize {
		q.idx = 0
		q.wrap = !q.wrap
	}
}

// ReadChain implements DeviceRing.
func (q *PackedDeviceQueue) ReadChain(p *sim.Proc, chain []Desc) []byte {
	return q.ReadChainInto(p, chain, nil)
}

// ReadChainInto implements DeviceRing: gather into buf's capacity.
func (q *PackedDeviceQueue) ReadChainInto(p *sim.Proc, chain []Desc, buf []byte) []byte {
	out := buf[:0]
	for _, d := range chain {
		if d.Flags&DescFWrite == 0 {
			n, need := len(out), int(d.Len)
			if cap(out)-n < need {
				grown := make([]byte, n, n+need)
				copy(grown, out)
				out = grown
			}
			out = out[:n+need]
			q.readInto(p, d.Addr, out[n:])
		}
	}
	return out
}

// WriteChain implements DeviceRing.
func (q *PackedDeviceQueue) WriteChain(p *sim.Proc, chain []Desc, data []byte) int {
	written := 0
	for _, d := range chain {
		if d.Flags&DescFWrite == 0 {
			continue
		}
		if len(data) == 0 {
			break
		}
		n := int(d.Len)
		if n > len(data) {
			n = len(data)
		}
		q.dma.Write(p, d.Addr, data[:n])
		data = data[n:]
		written += n
	}
	return written
}

// Complete implements DeviceRing: write one used descriptor carrying
// the buffer ID and written length (a single posted write), then skip
// the chain's remaining slots.
func (q *PackedDeviceQueue) Complete(p *sim.Proc, tok ChainToken, written int) {
	a := q.lay.slotAddr(q.usedIdx)
	buf := q.complScratch[:]
	for i := range buf {
		buf[i] = 0
	}
	put32 := func(o int, v uint32) {
		buf[o], buf[o+1], buf[o+2], buf[o+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	put32(8, uint32(written))
	buf[12], buf[13] = byte(tok.Head), byte(tok.Head>>8)
	fl := usedBits(q.usedWrap)
	buf[14], buf[15] = byte(fl), byte(fl>>8)
	q.dma.Write(p, a, buf)
	q.usedIdx += tok.Len
	if q.usedIdx >= q.lay.QueueSize {
		q.usedIdx -= q.lay.QueueSize
		q.usedWrap = !q.usedWrap
	}
}

// ShouldInterrupt implements DeviceRing via the driver event structure.
func (q *PackedDeviceQueue) ShouldInterrupt(p *sim.Proc) bool {
	q.readInto(p, q.lay.DriverEvent, q.eventScratch[:])
	return u32le(q.eventScratch[:]) == PackedEventFlagEnable
}

// ShouldInterruptSince implements DeviceRing: the packed driver-event
// flag is a level, not an index threshold, so batch size is irrelevant.
func (q *PackedDeviceQueue) ShouldInterruptSince(p *sim.Proc, n int) bool {
	return q.ShouldInterrupt(p)
}

// PublishIdleHint implements DeviceRing: (re-)enable doorbells in the
// device event structure before the engine parks.
func (q *PackedDeviceQueue) PublishIdleHint(p *sim.Proc) {
	q.eventScratch = [4]byte{PackedEventFlagEnable, 0, 0, 0}
	q.dma.Write(p, q.lay.DeviceEvent, q.eventScratch[:])
}

var (
	_ DeviceRing = (*PackedDeviceQueue)(nil)
	_ DriverRing = (*PackedDriverQueue)(nil)
)
