package virtio

import "fmt"

// Block request types.
const (
	BlkTIn    = 0 // read from device
	BlkTOut   = 1 // write to device
	BlkTFlush = 4
)

// Block request status byte values.
const (
	BlkStatusOK     = 0
	BlkStatusIOErr  = 1
	BlkStatusUnsupp = 2
)

// BlkSectorSize is the fixed 512-byte sector of the virtio-blk protocol.
const BlkSectorSize = 512

// BlkReqHdrSize is the size of struct virtio_blk_req's header.
const BlkReqHdrSize = 16

// BlkReqHdr is the request header the driver places in the first
// (device-readable) descriptor of every block request.
type BlkReqHdr struct {
	Type   uint32
	Sector uint64
}

// Encode renders the 16-byte wire format (type, reserved, sector).
func (h BlkReqHdr) Encode() []byte {
	b := make([]byte, BlkReqHdrSize)
	putU32 := func(o int, v uint32) {
		b[o], b[o+1], b[o+2], b[o+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	putU32(0, h.Type)
	putU32(8, uint32(h.Sector))
	putU32(12, uint32(h.Sector>>32))
	return b
}

// DecodeBlkReqHdr parses the 16-byte wire format.
func DecodeBlkReqHdr(b []byte) (BlkReqHdr, error) {
	if len(b) < BlkReqHdrSize {
		return BlkReqHdr{}, fmt.Errorf("virtio: blk req hdr too short: %d bytes", len(b))
	}
	u32 := func(o int) uint32 {
		return uint32(b[o]) | uint32(b[o+1])<<8 | uint32(b[o+2])<<16 | uint32(b[o+3])<<24
	}
	return BlkReqHdr{Type: u32(0), Sector: uint64(u32(8)) | uint64(u32(12))<<32}, nil
}

// Block device-specific configuration layout.
const (
	BlkCfgCapacity = 0x00 // u64, in 512-byte sectors
	BlkCfgLen      = 0x08
)
