package virtio

import (
	"bytes"
	"testing"
	"testing/quick"

	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/sim"
)

func TestNeedEventBasics(t *testing.T) {
	cases := []struct {
		event, new, old uint16
		want            bool
	}{
		{0, 1, 0, true},    // armed at 0, crossed to 1
		{1, 1, 0, false},   // threshold not yet passed
		{5, 6, 5, true},    // armed exactly at old
		{5, 10, 6, false},  // event passed before old: already notified
		{7, 10, 6, true},   // event within [old, new)
		{10, 10, 6, false}, // event at new: not yet crossed
		{9, 10, 6, true},   // event at new-1: crossing reached it
	}
	for _, c := range cases {
		if got := NeedEvent(c.event, c.new, c.old); got != c.want {
			t.Errorf("NeedEvent(%d,%d,%d) = %v, want %v", c.event, c.new, c.old, got, c.want)
		}
	}
	// Spec semantics spot checks.
	if !NeedEvent(3, 4, 3) {
		t.Error("event at old must fire when crossing one step")
	}
	if NeedEvent(2, 4, 3) {
		t.Error("event already passed before old must not fire")
	}
	if !NeedEvent(3, 5, 3) {
		t.Error("event inside (old,new] must fire")
	}
}

func TestNeedEventWrapAround(t *testing.T) {
	// Indices are free-running mod 2^16.
	if !NeedEvent(0xfffe, 0x0001, 0xfffd) {
		t.Error("wrap-around crossing must fire")
	}
	if NeedEvent(0x0005, 0x0001, 0xfffd) {
		t.Error("event beyond new must not fire across wrap")
	}
}

func TestNeedEventProperty(t *testing.T) {
	// Equivalent definition: fire iff event lies in [old, new) in
	// mod-2^16 arithmetic — armed no earlier than the last crossing and
	// strictly before the new index.
	f := func(event, new, old uint16) bool {
		inWindow := uint16(event-old) < uint16(new-old)
		return NeedEvent(event, new, old) == inWindow
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventIdxDriverSuppression(t *testing.T) {
	m := mem.New(1 << 20)
	al := mem.NewAllocator(m, 0x1000, 1<<16)
	lay := AllocRing(al, 8)
	dq := NewDriverQueue(m, lay)
	dq.EnableEventIdx()
	if !dq.EventIdx() {
		t.Fatal("event idx not enabled")
	}
	s := sim.New()
	dev := NewDeviceQueue(&hostDMA{m: m, cost: sim.Ns(10)}, lay)
	dev.EnableEventIdx()

	// Post a buffer, device completes it: armed at 0 -> interrupt.
	buf := al.Alloc(64, 4)
	dq.Add([]BufSeg{{Addr: buf, Len: 64}}, 1)
	var first, second, third bool
	s.Go("dev", func(p *sim.Proc) {
		head := dev.NextAvailHead(p)
		ch, _ := dev.FetchChain(p, head)
		_ = ch
		dev.PushUsed(p, head, 0)
		first = dev.ShouldInterruptAt(p, dev.UsedIdx()-1, dev.UsedIdx())

		// Driver suppresses (NAPI running): threshold behind.
		dq.SetNoInterrupt(true)
		dq.Add([]BufSeg{{Addr: buf, Len: 64}}, 2)
		head = dev.NextAvailHead(p)
		dev.PushUsed(p, head, 0)
		second = dev.ShouldInterruptAt(p, dev.UsedIdx()-1, dev.UsedIdx())

		// Driver harvests and re-arms: next completion interrupts again.
		for {
			if _, ok := dq.GetUsed(); !ok {
				break
			}
		}
		dq.SetNoInterrupt(false)
		dq.Add([]BufSeg{{Addr: buf, Len: 64}}, 3)
		head = dev.NextAvailHead(p)
		dev.PushUsed(p, head, 0)
		third = dev.ShouldInterruptAt(p, dev.UsedIdx()-1, dev.UsedIdx())
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !first {
		t.Error("first completion should interrupt (armed at 0)")
	}
	if second {
		t.Error("suppressed completion interrupted")
	}
	if !third {
		t.Error("re-armed completion should interrupt")
	}
}

func TestEventIdxKickSuppression(t *testing.T) {
	m := mem.New(1 << 20)
	al := mem.NewAllocator(m, 0x1000, 1<<16)
	lay := AllocRing(al, 8)
	dq := NewDriverQueue(m, lay)
	dq.EnableEventIdx()
	s := sim.New()
	dev := NewDeviceQueue(&hostDMA{m: m, cost: sim.Ns(10)}, lay)
	dev.EnableEventIdx()

	buf := al.Alloc(64, 4)
	// Initially avail_event is 0: first add must kick.
	dq.Add([]BufSeg{{Addr: buf, Len: 64}}, 1)
	if !dq.NeedKick() {
		t.Fatal("first add must need a kick")
	}
	dq.KickDone()
	// Device has not updated avail_event: further adds need no kick
	// (the device is presumed busy polling).
	dq.Add([]BufSeg{{Addr: buf, Len: 64}}, 2)
	if dq.NeedKick() {
		t.Fatal("second add should be covered by the first doorbell")
	}
	dq.KickDone()
	// Device consumes both and goes idle, publishing its threshold.
	s.Go("dev", func(p *sim.Proc) {
		dev.NextAvailHead(p)
		dev.NextAvailHead(p)
		dev.PublishAvailEvent(p, 2)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// The next add crosses the device's threshold: kick needed again.
	dq.Add([]BufSeg{{Addr: buf, Len: 64}}, 3)
	if !dq.NeedKick() {
		t.Fatal("add after device idle must need a kick")
	}
}

func TestEventIdxRingLayoutTailAddresses(t *testing.T) {
	m := mem.New(1 << 20)
	al := mem.NewAllocator(m, 0, 1<<16)
	lay := AllocRing(al, 16)
	// used_event sits right after the avail ring entries; avail_event
	// right after the used ring entries — inside the allocated areas.
	ue := lay.usedEventAddr()
	ae := lay.availEventAddr()
	if ue != lay.Avail+4+2*16 {
		t.Errorf("used_event at %#x", uint64(ue))
	}
	if ae != lay.Used+4+8*16 {
		t.Errorf("avail_event at %#x", uint64(ae))
	}
	// Writing them must not overlap other ring state.
	m.PutU16(ue, 0xaaaa)
	m.PutU16(ae, 0xbbbb)
	if m.U16(lay.Avail+4+2*15) == 0xaaaa || m.U16(lay.Used+4+8*15) == 0xbbbb {
		t.Error("event words overlap ring entries")
	}
}

func TestIndirectDescriptorRoundTrip(t *testing.T) {
	m := mem.New(1 << 20)
	al := mem.NewAllocator(m, 0x1000, 1<<16)
	lay := AllocRing(al, 8)
	dq := NewDriverQueue(m, lay)
	s := sim.New()
	dma := &hostDMA{m: m, cost: sim.Ns(100)}
	dev := NewDeviceQueue(dma, lay)

	hdrBuf := al.Alloc(16, 4)
	dataBuf := al.Alloc(64, 4)
	statusBuf := al.Alloc(1, 1)
	table := al.Alloc(3*16, 16)
	m.Write(hdrBuf, []byte("hdr-hdr-hdr-hdr-"))
	m.Write(dataBuf, bytes.Repeat([]byte{0x42}, 64))

	if _, err := dq.AddIndirect([]BufSeg{
		{Addr: hdrBuf, Len: 16},
		{Addr: dataBuf, Len: 64},
		{Addr: statusBuf, Len: 1, DeviceWritten: true},
	}, "ind", table); err != nil {
		t.Fatal(err)
	}
	// Only one ring descriptor consumed.
	if dq.NumFree() != 7 {
		t.Fatalf("numFree = %d, want 7", dq.NumFree())
	}

	var got []byte
	readsBefore := 0
	s.Go("dev", func(p *sim.Proc) {
		head := dev.NextAvailHead(p)
		readsBefore = dma.reads
		chain, err := dev.FetchChain(p, head)
		if err != nil {
			t.Error(err)
			return
		}
		// The whole 3-segment chain resolved in exactly 2 reads:
		// the ring descriptor and the indirect table.
		if dma.reads-readsBefore != 2 {
			t.Errorf("chain fetch took %d reads, want 2", dma.reads-readsBefore)
		}
		if len(chain) != 3 {
			t.Errorf("chain len = %d", len(chain))
			return
		}
		got = dev.ReadChain(p, chain)
		dev.WriteChain(p, chain, []byte{0})
		dev.PushUsed(p, head, 1)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 80 || got[16] != 0x42 {
		t.Fatalf("device read %d bytes", len(got))
	}
	u, ok := dq.GetUsed()
	if !ok || u.Token != "ind" || u.Written != 1 {
		t.Fatalf("used = %+v, %v", u, ok)
	}
	// Ring slot reclaimed.
	if dq.NumFree() != 8 {
		t.Fatalf("numFree after reclaim = %d", dq.NumFree())
	}
}

func TestIndirectMalformedRejected(t *testing.T) {
	m := mem.New(1 << 20)
	al := mem.NewAllocator(m, 0x1000, 1<<16)
	lay := AllocRing(al, 8)
	s := sim.New()
	dev := NewDeviceQueue(&hostDMA{m: m, cost: 0}, lay)

	// Craft an indirect descriptor with a bad table length.
	m.PutU64(lay.Desc, 0x8000)
	m.PutU32(lay.Desc+8, 17) // not a multiple of 16
	m.PutU16(lay.Desc+12, DescFIndirect)
	var errBadLen, errNested error
	s.Go("dev", func(p *sim.Proc) {
		_, errBadLen = dev.FetchChain(p, 0)
		// Nested indirect: table entry itself flagged indirect.
		m.PutU32(lay.Desc+8, 16)
		m.PutU64(0x8000, 0x9000)
		m.PutU32(0x8000+8, 16)
		m.PutU16(0x8000+12, DescFIndirect)
		_, errNested = dev.FetchChain(p, 0)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if errBadLen == nil {
		t.Error("bad table length accepted")
	}
	if errNested == nil {
		t.Error("nested indirect accepted")
	}
}

func TestAddIndirectRingFull(t *testing.T) {
	m := mem.New(1 << 20)
	al := mem.NewAllocator(m, 0x1000, 1<<16)
	lay := AllocRing(al, 2)
	dq := NewDriverQueue(m, lay)
	table := al.Alloc(16, 16)
	buf := al.Alloc(8, 4)
	for i := 0; i < 2; i++ {
		if _, err := dq.AddIndirect([]BufSeg{{Addr: buf, Len: 8}}, i, table); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dq.AddIndirect([]BufSeg{{Addr: buf, Len: 8}}, 9, table); err == nil {
		t.Fatal("overfull ring accepted indirect chain")
	}
	if _, err := dq.AddIndirect(nil, nil, table); err == nil {
		t.Fatal("empty indirect chain accepted")
	}
}
