package virtio

import (
	"testing"

	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/sim"
)

// fuzzDMA reads device-visible memory the way the bus would: accesses
// beyond the end of host memory complete as unsupported requests and
// read back zeros instead of faulting the device.
type fuzzDMA struct{ m *mem.Memory }

func (d fuzzDMA) Read(p *sim.Proc, a mem.Addr, n int) []byte {
	out := make([]byte, n)
	size := uint64(d.m.Size())
	for i := range out {
		if off := uint64(a) + uint64(i); off >= uint64(a) && off < size {
			out[i] = d.m.U8(mem.Addr(off))
		}
	}
	return out
}

func (d fuzzDMA) Write(p *sim.Proc, a mem.Addr, data []byte) {
	size := uint64(d.m.Size())
	for i, b := range data {
		if off := uint64(a) + uint64(i); off >= uint64(a) && off < size {
			d.m.Write(mem.Addr(off), []byte{b})
		}
	}
}

const fuzzQueueSize = 8

// fuzzDesc builds one 16-byte descriptor-table entry.
func fuzzDesc(addr uint64, length uint32, flags, next uint16) []byte {
	b := make([]byte, descEntrySize)
	for i := 0; i < 8; i++ {
		b[i] = byte(addr >> (8 * i))
	}
	b[8], b[9], b[10], b[11] = byte(length), byte(length>>8), byte(length>>16), byte(length>>24)
	b[12], b[13] = byte(flags), byte(flags>>8)
	b[14], b[15] = byte(next), byte(next>>8)
	return b
}

// FuzzSplitRingDescriptorChains feeds arbitrary descriptor tables to the
// device-side chain walker. Malformed input — looping chains,
// out-of-range indices, bogus indirect tables — must produce an error;
// it must never hang, panic, or return a chain longer than the queue.
func FuzzSplitRingDescriptorChains(f *testing.F) {
	cat := func(parts ...[]byte) []byte {
		var out []byte
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}

	// Seed corpus: one healthy chain plus the malformations the walker
	// must reject. Run by plain `go test` even without -fuzz.
	f.Add(uint16(0), cat( // valid two-descriptor chain
		fuzzDesc(0x4000, 64, DescFNext, 1),
		fuzzDesc(0x5000, 64, DescFWrite, 0)))
	f.Add(uint16(0), fuzzDesc(0x4000, 64, DescFNext, 0)) // self-loop
	f.Add(uint16(0), cat(                                // two-step loop
		fuzzDesc(0x4000, 64, DescFNext, 1),
		fuzzDesc(0x5000, 64, DescFNext, 0)))
	f.Add(uint16(0), fuzzDesc(0x4000, 64, DescFNext, 200))             // next outside the queue
	f.Add(uint16(200), fuzzDesc(0x4000, 64, 0, 0))                     // head outside the queue
	f.Add(uint16(0), fuzzDesc(0x2000, 32, DescFIndirect, 0))           // indirect, 2-entry table
	f.Add(uint16(0), fuzzDesc(0x2000, 17, DescFIndirect, 0))           // indirect length not a multiple
	f.Add(uint16(0), fuzzDesc(0x2000, 0, DescFIndirect, 0))            // indirect empty table
	f.Add(uint16(0), fuzzDesc(0x2000, 0xFFFFFFF0, DescFIndirect, 0))   // indirect table far beyond the queue
	f.Add(uint16(0), fuzzDesc(0x2000, 32, DescFIndirect|DescFNext, 0)) // indirect with chaining
	f.Add(uint16(0), fuzzDesc(1<<40, 64, 0, 0))                        // buffer beyond host memory
	f.Add(uint16(7), []byte{})                                         // empty table, tail head

	f.Fuzz(func(t *testing.T, head uint16, table []byte) {
		m := mem.New(1 << 16)
		al := mem.NewAllocator(m, 0x1000, 0x8000)
		lay := AllocRing(al, fuzzQueueSize)

		// Lay the fuzzed bytes over the descriptor table (truncated to
		// its size) and over a region an indirect descriptor at 0x2000
		// could point into, so seeds above resolve to fuzzed content too.
		desc := table
		if len(desc) > fuzzQueueSize*descEntrySize {
			desc = desc[:fuzzQueueSize*descEntrySize]
		}
		m.Write(lay.Desc, desc)
		ind := table
		if len(ind) > 0x1000 {
			ind = ind[:0x1000]
		}
		m.Write(0x2000, ind)

		dq := NewDeviceQueue(fuzzDMA{m: m}, lay)
		s := sim.New()
		s.Go("device", func(p *sim.Proc) {
			defer s.Stop()
			chain, err := dq.FetchChain(p, head)
			if err != nil {
				return
			}
			if len(chain) == 0 {
				t.Errorf("FetchChain(%d) returned an empty chain without error", head)
			}
			if len(chain) > fuzzQueueSize {
				t.Errorf("FetchChain(%d) returned %d descriptors from a queue of %d",
					head, len(chain), fuzzQueueSize)
			}
			// A structurally valid chain must also survive the data
			// paths without faulting. Skip chains whose claimed segment
			// lengths are absurd — the DMA model would faithfully
			// allocate them, which is the bus's problem, not the walker's.
			total := 0
			for _, d := range chain {
				total += int(d.Len)
			}
			if total <= 1<<20 {
				dq.ReadChain(p, chain)
			}
		})
		if err := s.Run(); err != nil {
			t.Fatalf("sim error: %v", err)
		}
	})
}
