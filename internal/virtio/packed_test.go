package virtio

import (
	"bytes"
	"testing"
	"testing/quick"

	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/sim"
)

func newPacked(t *testing.T, qsz int) (*mem.Memory, *mem.Allocator, *PackedDriverQueue, *PackedDeviceQueue, *hostDMA) {
	t.Helper()
	m := mem.New(1 << 20)
	al := mem.NewAllocator(m, 0x1000, 1<<18)
	lay := AllocPackedRing(al, qsz)
	dq := NewPackedDriverQueue(m, lay)
	dma := &hostDMA{m: m, cost: sim.Ns(100)}
	dev := NewPackedDeviceQueue(dma, lay)
	return m, al, dq, dev, dma
}

func TestPackedSingleRoundTrip(t *testing.T) {
	m, al, dq, dev, dma := newPacked(t, 8)
	s := sim.New()
	out := al.Alloc(64, 4)
	in := al.Alloc(64, 4)
	m.Write(out, bytes.Repeat([]byte{0x5a}, 64))

	if _, err := dq.Add([]BufSeg{
		{Addr: out, Len: 64},
		{Addr: in, Len: 64, DeviceWritten: true},
	}, "tok"); err != nil {
		t.Fatal(err)
	}
	if dq.NumFree() != 6 {
		t.Fatalf("numFree = %d", dq.NumFree())
	}
	if !dq.NeedKick() {
		t.Fatal("first add must need a kick")
	}

	var gotData []byte
	s.Go("dev", func(p *sim.Proc) {
		if !dev.HasPending(p) {
			t.Error("device sees nothing pending")
			return
		}
		readsBefore := dma.reads
		chain, tok, err := dev.NextChain(p)
		if err != nil {
			t.Error(err)
			return
		}
		// Head was cached by HasPending: only the second descriptor
		// cost a read.
		if dma.reads-readsBefore != 1 {
			t.Errorf("NextChain cost %d reads, want 1", dma.reads-readsBefore)
		}
		if len(chain) != 2 || tok.Len != 2 {
			t.Errorf("chain = %d descs, tok %+v", len(chain), tok)
			return
		}
		gotData = dev.ReadChain(p, chain)
		dev.WriteChain(p, chain, []byte("reply"))
		dev.Complete(p, tok, 5)
		if !dev.ShouldInterrupt(p) {
			t.Error("interrupt not requested with notifications enabled")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(gotData) != 64 || gotData[0] != 0x5a {
		t.Fatalf("device read %d bytes", len(gotData))
	}
	u, ok := dq.GetUsed()
	if !ok || u.Token != "tok" || u.Written != 5 {
		t.Fatalf("used = %+v, %v", u, ok)
	}
	if string(m.Read(in, 5)) != "reply" {
		t.Fatal("reply data missing")
	}
	if dq.NumFree() != 8 {
		t.Fatalf("slots not reclaimed: %d", dq.NumFree())
	}
}

func TestPackedWrapAroundManyChains(t *testing.T) {
	// A size-8 ring with 3-descriptor chains forces wrap-counter flips
	// at misaligned boundaries repeatedly.
	m, al, dq, dev, _ := newPacked(t, 8)
	s := sim.New()
	bufs := make([]mem.Addr, 3)
	for i := range bufs {
		bufs[i] = al.Alloc(32, 4)
	}
	const rounds = 50
	received := 0
	s.Go("dev", func(p *sim.Proc) {
		for received < rounds {
			if !dev.HasPending(p) {
				p.Sleep(sim.Us(1))
				continue
			}
			chain, tok, err := dev.NextChain(p)
			if err != nil {
				t.Error(err)
				return
			}
			if len(chain) != 3 {
				t.Errorf("round %d: chain len %d", received, len(chain))
				return
			}
			data := dev.ReadChain(p, chain)
			dev.WriteChain(p, chain, data) // echo into writable seg
			dev.Complete(p, tok, len(data))
			received++
		}
	})
	s.Go("drv", func(p *sim.Proc) {
		for i := 0; i < rounds; i++ {
			payload := []byte{byte(i), byte(i + 1)}
			m.Write(bufs[0], payload)
			if _, err := dq.Add([]BufSeg{
				{Addr: bufs[0], Len: 2},
				{Addr: bufs[1], Len: 2},
				{Addr: bufs[2], Len: 4, DeviceWritten: true},
			}, i); err != nil {
				t.Error(err)
				return
			}
			for !dq.HasUsed() {
				p.Sleep(sim.Us(1))
			}
			u, _ := dq.GetUsed()
			if u.Token != i {
				t.Errorf("round %d: token %v", i, u.Token)
				return
			}
			if got := m.Read(bufs[2], 2); got[0] != byte(i) {
				t.Errorf("round %d: echo %v", i, got)
				return
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if received != rounds {
		t.Fatalf("device processed %d/%d", received, rounds)
	}
}

func TestPackedRingFull(t *testing.T) {
	_, al, dq, _, _ := newPacked(t, 4)
	buf := al.Alloc(8, 4)
	for i := 0; i < 2; i++ {
		if _, err := dq.Add([]BufSeg{{Addr: buf, Len: 8}, {Addr: buf, Len: 8}}, i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dq.Add([]BufSeg{{Addr: buf, Len: 8}}, 9); err == nil {
		t.Fatal("overfull packed ring accepted")
	}
	if _, err := dq.Add(nil, nil); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestPackedSuppressionFlags(t *testing.T) {
	m, al, dq, dev, _ := newPacked(t, 8)
	s := sim.New()
	buf := al.Alloc(8, 4)
	_ = m
	dq.SetNoInterrupt(true)
	var suppressed, reenabled bool
	s.Go("dev", func(p *sim.Proc) {
		suppressed = !dev.ShouldInterrupt(p)
		dq.SetNoInterrupt(false)
		reenabled = dev.ShouldInterrupt(p)
		// Device publishes its idle hint; driver then owes a kick for
		// the next add.
		dev.PublishIdleHint(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !suppressed || !reenabled {
		t.Fatalf("suppressed=%v reenabled=%v", suppressed, reenabled)
	}
	if _, err := dq.Add([]BufSeg{{Addr: buf, Len: 8}}, nil); err != nil {
		t.Fatal(err)
	}
	if !dq.NeedKick() {
		t.Fatal("kick owed after idle hint")
	}
	dq.KickDone()
	if dq.NeedKick() {
		t.Fatal("kick not cleared")
	}
}

func TestPackedHeadFlagsWrittenLast(t *testing.T) {
	// The head descriptor's flags are the visibility barrier: before Add
	// returns the head slot must carry the avail pattern, and chained
	// slots must already be fully populated.
	m, al, dq, _, _ := newPacked(t, 8)
	a := al.Alloc(8, 4)
	b := al.Alloc(8, 4)
	if _, err := dq.Add([]BufSeg{{Addr: a, Len: 8}, {Addr: b, Len: 8, DeviceWritten: true}}, nil); err != nil {
		t.Fatal(err)
	}
	lay := dq.Layout()
	head := m.U16(lay.slotAddr(0) + 14)
	second := m.U16(lay.slotAddr(1) + 14)
	if head&(PackedDescFAvail|PackedDescFUsed) != PackedDescFAvail {
		t.Fatalf("head flags %#x not avail", head)
	}
	if head&DescFNext == 0 {
		t.Fatal("head missing NEXT")
	}
	if second&DescFWrite == 0 {
		t.Fatal("second missing WRITE")
	}
}

func TestPackedDeterministicProperty(t *testing.T) {
	// Random chain lengths over many rounds: every payload must round
	// trip unchanged and slot accounting must return to full-free.
	f := func(seed uint32, roundsRaw uint8) bool {
		rounds := int(roundsRaw)%30 + 5
		m, al, dq, dev, _ := newPacked(t, 16)
		s := sim.New()
		rng := sim.NewRNG(uint64(seed))
		outBuf := al.Alloc(256, 4)
		inBuf := al.Alloc(256, 4)
		ok := true
		s.Go("pair", func(p *sim.Proc) {
			for i := 0; i < rounds; i++ {
				n := rng.Intn(200) + 1
				payload := make([]byte, n)
				rng.Bytes(payload)
				m.Write(outBuf, payload)
				segs := []BufSeg{{Addr: outBuf, Len: n}}
				// Sometimes split the readable part in two.
				if n > 2 && rng.Bool(0.5) {
					half := n / 2
					segs = []BufSeg{
						{Addr: outBuf, Len: half},
						{Addr: outBuf + mem.Addr(half), Len: n - half},
					}
				}
				segs = append(segs, BufSeg{Addr: inBuf, Len: n, DeviceWritten: true})
				if _, err := dq.Add(segs, i); err != nil {
					ok = false
					return
				}
				if !dev.HasPending(p) {
					ok = false
					return
				}
				chain, tok, err := dev.NextChain(p)
				if err != nil {
					ok = false
					return
				}
				data := dev.ReadChain(p, chain)
				if !bytes.Equal(data, payload) {
					ok = false
					return
				}
				dev.WriteChain(p, chain, data)
				dev.Complete(p, tok, len(data))
				u, got := dq.GetUsed()
				if !got || u.Token != i {
					ok = false
					return
				}
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		return ok && dq.NumFree() == 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
