package virtio

import "fpgavirtio/internal/sim"

// FRingPacked is the packed-virtqueue feature bit (VirtIO 1.2 §2.8).
const FRingPacked Feature = 1 << 34

// ChainToken identifies one in-flight chain on a device ring so its
// completion can be published later: the split ring needs the head
// descriptor index, the packed ring the buffer ID and slot count.
type ChainToken struct {
	Head uint16
	Len  int
}

// DeviceRing is the device-side interface over both virtqueue formats.
// All methods run in a fabric process and cost bus time through the
// ring's DMA path.
type DeviceRing interface {
	// HasPending reports, via one bus read, whether the driver has
	// exposed at least one chain the device has not consumed.
	HasPending(p *sim.Proc) bool
	// NextChain consumes the next pending chain (HasPending must have
	// reported true) and returns its descriptors. The slice is
	// ring-owned scratch, valid until the next NextChain call.
	NextChain(p *sim.Proc) ([]Desc, ChainToken, error)
	// ReadChain gathers all device-readable segment contents into a
	// fresh buffer.
	ReadChain(p *sim.Proc, chain []Desc) []byte
	// ReadChainInto gathers the device-readable segment contents into
	// buf, reusing its capacity, and returns the gathered bytes — the
	// allocation-free form used on the per-packet path.
	ReadChainInto(p *sim.Proc, chain []Desc, buf []byte) []byte
	// WriteChain scatters data into device-writable segments.
	WriteChain(p *sim.Proc, chain []Desc, data []byte) int
	// Complete publishes the chain's completion.
	Complete(p *sim.Proc, tok ChainToken, written int)
	// ShouldInterrupt decides, after Complete, whether to raise the
	// queue's interrupt (reads the driver's suppression state fresh).
	ShouldInterrupt(p *sim.Proc) bool
	// ShouldInterruptSince is ShouldInterrupt for a batch: it considers
	// the n most recent completions rather than only the last one, so an
	// event-index threshold crossed mid-batch still raises the
	// interrupt. Interrupt coalescing must use this when flushing.
	ShouldInterruptSince(p *sim.Proc, n int) bool
	// PublishIdleHint tells the driver how to wake the device when it
	// is about to go idle (avail_event / event suppression write);
	// a no-op where the format has nothing to publish.
	PublishIdleHint(p *sim.Proc)
}

// DriverRing is the driver-side interface over both virtqueue formats.
// Methods touch host memory directly; CPU cost is the caller's.
type DriverRing interface {
	Add(segs []BufSeg, token any) (uint16, error)
	GetUsed() (Used, bool)
	HasUsed() bool
	NumFree() int
	SetNoInterrupt(on bool)
	// NeedKick reports whether the device asked for a doorbell for the
	// chains added since KickDone.
	NeedKick() bool
	KickDone()
}

// ---- split-ring adapters (DeviceQueue -> DeviceRing) ---------------------

// HasPending implements DeviceRing for the split format.
func (q *DeviceQueue) HasPending(p *sim.Proc) bool { return q.Pending(p) > 0 }

// NextChain implements DeviceRing for the split format: one read for
// the avail-ring slot plus one per descriptor (or one for a whole
// indirect table).
func (q *DeviceQueue) NextChain(p *sim.Proc) ([]Desc, ChainToken, error) {
	head := q.NextAvailHead(p)
	chain, err := q.FetchChain(p, head)
	return chain, ChainToken{Head: head, Len: len(chain)}, err
}

// Complete implements DeviceRing for the split format.
func (q *DeviceQueue) Complete(p *sim.Proc, tok ChainToken, written int) {
	q.PushUsed(p, tok.Head, written)
}

// ShouldInterrupt implements the DeviceRing decision using the queue's
// internal used-index bookkeeping.
func (q *DeviceQueue) ShouldInterrupt(p *sim.Proc) bool {
	return q.ShouldInterruptAt(p, q.usedIdx-1, q.usedIdx)
}

// ShouldInterruptSince implements DeviceRing for the split format: the
// event threshold is checked against the whole [usedIdx-n, usedIdx)
// span of a coalesced batch.
func (q *DeviceQueue) ShouldInterruptSince(p *sim.Proc, n int) bool {
	if n < 1 {
		n = 1
	}
	return q.ShouldInterruptAt(p, q.usedIdx-uint16(n), q.usedIdx)
}

// PublishIdleHint implements DeviceRing: in event-index mode the device
// publishes its doorbell threshold; the flags mode needs nothing.
func (q *DeviceQueue) PublishIdleHint(p *sim.Proc) {
	if q.eventIdx {
		q.PublishAvailEvent(p, q.lastAvail)
	}
}

var (
	_ DeviceRing = (*DeviceQueue)(nil)
	_ DriverRing = (*DriverQueue)(nil)
)
