package virtio

import (
	"fmt"

	"fpgavirtio/internal/fvassert"
	"fpgavirtio/internal/mem"
)

// Split-ring element sizes.
const (
	descEntrySize  = 16
	usedEntrySize  = 8
	availHeaderLen = 4 // flags + idx
	usedHeaderLen  = 4
)

// RingLayout records where one virtqueue's three areas live in host
// memory. The driver allocates them at device bring-up and hands the
// addresses to the device exactly once — the information-exchange
// design difference the paper highlights in §IV-A.
type RingLayout struct {
	QueueSize int
	Desc      mem.Addr // descriptor table: 16 bytes per entry
	Avail     mem.Addr // avail (driver) area: 4 + 2*qsz (+2 with EVENT_IDX)
	Used      mem.Addr // used (device) area: 4 + 8*qsz (+2 with EVENT_IDX)
}

// AllocRing carves a ring's three areas out of host memory with the
// spec-mandated alignments (16/2/4).
func AllocRing(al *mem.Allocator, queueSize int) RingLayout {
	if queueSize <= 0 || queueSize&(queueSize-1) != 0 {
		panic(fmt.Sprintf("virtio: queue size %d must be a power of two", queueSize))
	}
	return RingLayout{
		QueueSize: queueSize,
		Desc:      al.Alloc(descEntrySize*queueSize, 16),
		Avail:     al.Alloc(availHeaderLen+2*queueSize+2, 2),
		Used:      al.Alloc(usedHeaderLen+usedEntrySize*queueSize+2, 4),
	}
}

// Desc is one descriptor-table entry.
type Desc struct {
	Addr  mem.Addr
	Len   uint32
	Flags uint16
	Next  uint16
}

// BufSeg is one segment of a buffer chain the driver exposes.
type BufSeg struct {
	Addr          mem.Addr
	Len           int
	DeviceWritten bool // true for buffers the device fills (VRING_DESC_F_WRITE)
}

// DriverQueue is the front-end (host CPU) view of a virtqueue. Its
// operations touch host memory directly — the CPU-time cost of ring
// maintenance is charged by the driver models, not here.
type DriverQueue struct {
	mem *mem.Memory
	lay RingLayout

	freeHead uint16
	numFree  int
	tokens   []any    // per-head opaque driver token
	chainLen []uint16 // per-head chain length for free-list reclaim

	availShadow  uint16 // next avail idx to publish
	lastUsedSeen uint16

	eventIdx   bool   // VIRTIO_F_RING_EVENT_IDX negotiated
	lastKicked uint16 // avail idx covered by the last doorbell

	// inflight tracks published-but-unharvested chain heads; only
	// consulted under the fvinvariants build tag (fvassert.Enabled).
	inflight []bool
}

// NewDriverQueue initializes the ring areas (descriptor free list,
// zeroed indices) and returns the driver-side handle.
func NewDriverQueue(m *mem.Memory, lay RingLayout) *DriverQueue {
	q := &DriverQueue{
		mem:      m,
		lay:      lay,
		numFree:  lay.QueueSize,
		tokens:   make([]any, lay.QueueSize),
		chainLen: make([]uint16, lay.QueueSize),
		inflight: make([]bool, lay.QueueSize),
	}
	for i := 0; i < lay.QueueSize; i++ {
		next := uint16(i + 1)
		m.PutU64(q.descAddr(uint16(i)), 0)
		m.PutU32(q.descAddr(uint16(i))+8, 0)
		m.PutU16(q.descAddr(uint16(i))+12, 0)
		m.PutU16(q.descAddr(uint16(i))+14, next)
	}
	m.PutU16(lay.Avail, 0)   // flags
	m.PutU16(lay.Avail+2, 0) // idx
	m.PutU16(lay.Used, 0)
	m.PutU16(lay.Used+2, 0)
	return q
}

// Layout returns the queue's memory layout.
func (q *DriverQueue) Layout() RingLayout { return q.lay }

// NumFree reports how many descriptors are unallocated.
func (q *DriverQueue) NumFree() int { return q.numFree }

func (q *DriverQueue) descAddr(i uint16) mem.Addr {
	return q.lay.Desc + mem.Addr(i)*descEntrySize
}

// Add exposes a buffer chain to the device and returns the chain head.
// It fails when the ring lacks free descriptors. The chain is published
// in the avail ring immediately (the kick/notify decision is the
// transport's).
func (q *DriverQueue) Add(segs []BufSeg, token any) (uint16, error) {
	if len(segs) == 0 {
		return 0, fmt.Errorf("virtio: empty buffer chain")
	}
	if len(segs) > q.numFree {
		return 0, fmt.Errorf("virtio: ring full (%d free, need %d)", q.numFree, len(segs))
	}
	head := q.freeHead
	idx := head
	for i, s := range segs {
		a := q.descAddr(idx)
		next := q.mem.U16(a + 14) // free-list successor
		flags := uint16(0)
		if s.DeviceWritten {
			flags |= DescFWrite
		}
		if i != len(segs)-1 {
			flags |= DescFNext
		}
		q.mem.PutU64(a, uint64(s.Addr))
		q.mem.PutU32(a+8, uint32(s.Len))
		q.mem.PutU16(a+12, flags)
		if i != len(segs)-1 {
			q.mem.PutU16(a+14, next)
		}
		idx = next
	}
	q.freeHead = idx
	q.numFree -= len(segs)
	q.tokens[head] = token
	q.chainLen[head] = uint16(len(segs))
	if fvassert.Enabled {
		if q.inflight[head] {
			fvassert.Failf("split ring re-published head %d while in flight", head)
		}
		q.inflight[head] = true
	}

	// Publish: ring[avail_idx % qsz] = head, then bump idx.
	slot := q.lay.Avail + availHeaderLen + mem.Addr(q.availShadow%uint16(q.lay.QueueSize))*2
	q.mem.PutU16(slot, head)
	q.availShadow++
	q.mem.PutU16(q.lay.Avail+2, q.availShadow)
	return head, nil
}

// AddIndirect exposes a buffer chain through a single indirect
// descriptor (VIRTIO_F_RING_INDIRECT_DESC): the per-segment descriptors
// are written into a driver-owned table at tableAddr and the ring
// consumes only one slot, so the device fetches the whole chain with
// one bus read. tableAddr must have room for 16*len(segs) bytes.
func (q *DriverQueue) AddIndirect(segs []BufSeg, token any, tableAddr mem.Addr) (uint16, error) {
	if len(segs) == 0 {
		return 0, fmt.Errorf("virtio: empty buffer chain")
	}
	if q.numFree < 1 {
		return 0, fmt.Errorf("virtio: ring full")
	}
	for i, s := range segs {
		a := tableAddr + mem.Addr(i)*descEntrySize
		flags := uint16(0)
		if s.DeviceWritten {
			flags |= DescFWrite
		}
		next := uint16(0)
		if i != len(segs)-1 {
			flags |= DescFNext
			next = uint16(i + 1)
		}
		q.mem.PutU64(a, uint64(s.Addr))
		q.mem.PutU32(a+8, uint32(s.Len))
		q.mem.PutU16(a+12, flags)
		q.mem.PutU16(a+14, next)
	}
	head := q.freeHead
	a := q.descAddr(head)
	nextFree := q.mem.U16(a + 14)
	q.mem.PutU64(a, uint64(tableAddr))
	q.mem.PutU32(a+8, uint32(len(segs)*descEntrySize))
	q.mem.PutU16(a+12, DescFIndirect)
	q.freeHead = nextFree
	q.numFree--
	q.tokens[head] = token
	q.chainLen[head] = 1
	if fvassert.Enabled {
		if q.inflight[head] {
			fvassert.Failf("split ring re-published indirect head %d while in flight", head)
		}
		q.inflight[head] = true
	}

	slot := q.lay.Avail + availHeaderLen + mem.Addr(q.availShadow%uint16(q.lay.QueueSize))*2
	q.mem.PutU16(slot, head)
	q.availShadow++
	q.mem.PutU16(q.lay.Avail+2, q.availShadow)
	return head, nil
}

// Used is one harvested completion.
type Used struct {
	Token   any
	Written int // bytes the device wrote into device-writable segments
}

// GetUsed harvests one completion from the used ring, reclaiming its
// descriptors. ok is false when the ring has nothing new.
func (q *DriverQueue) GetUsed() (Used, bool) {
	usedIdx := q.mem.U16(q.lay.Used + 2)
	if q.lastUsedSeen == usedIdx {
		return Used{}, false
	}
	slot := q.lay.Used + usedHeaderLen + mem.Addr(q.lastUsedSeen%uint16(q.lay.QueueSize))*usedEntrySize
	head := uint16(q.mem.U32(slot))
	written := int(q.mem.U32(slot + 4))
	q.lastUsedSeen++
	if fvassert.Enabled {
		if int(head) >= q.lay.QueueSize || !q.inflight[head] {
			fvassert.Failf("split ring completion for head %d that is not in flight", head)
		}
		q.inflight[head] = false
	}

	// Reclaim the chain onto the free list.
	n := q.chainLen[head]
	tail := head
	for i := uint16(1); i < n; i++ {
		tail = q.mem.U16(q.descAddr(tail) + 14)
	}
	q.mem.PutU16(q.descAddr(tail)+14, q.freeHead)
	q.freeHead = head
	q.numFree += int(n)

	tok := q.tokens[head]
	q.tokens[head] = nil
	return Used{Token: tok, Written: written}, true
}

// HasUsed reports whether unharvested completions exist.
func (q *DriverQueue) HasUsed() bool {
	return q.lastUsedSeen != q.mem.U16(q.lay.Used+2)
}

// SetNoInterrupt toggles completion-interrupt suppression (the NAPI
// poll-mode optimisation). Without EVENT_IDX it publishes
// VRING_AVAIL_F_NO_INTERRUPT; with EVENT_IDX it moves the used_event
// threshold (set it behind to suppress, to last-seen to re-arm).
func (q *DriverQueue) SetNoInterrupt(on bool) {
	if q.eventIdx {
		if on {
			q.armUsedEvent(q.lastUsedSeen - 1)
		} else {
			q.armUsedEvent(q.lastUsedSeen)
		}
		return
	}
	v := uint16(0)
	if on {
		v = AvailFNoInterrupt
	}
	q.mem.PutU16(q.lay.Avail, v)
}

// DeviceNoNotify reports whether the device has set UsedFNoNotify,
// telling the driver it may skip doorbell writes.
func (q *DriverQueue) DeviceNoNotify() bool {
	return q.mem.U16(q.lay.Used)&UsedFNoNotify != 0
}

// AvailIdx returns the published avail index (driver shadow).
func (q *DriverQueue) AvailIdx() uint16 { return q.availShadow }
