package virtio

import (
	"bytes"
	"testing"
	"testing/quick"

	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/sim"
)

func TestDeviceTypeIDs(t *testing.T) {
	if DeviceNet.PCIDeviceID() != 0x1041 {
		t.Fatalf("net PCI ID = %#x", DeviceNet.PCIDeviceID())
	}
	if DeviceBlock.PCIDeviceID() != 0x1042 || DeviceConsole.PCIDeviceID() != 0x1043 {
		t.Fatal("block/console PCI IDs wrong")
	}
	if DeviceNet.String() != "net" || DeviceType(99).String() != "device-type-99" {
		t.Fatal("DeviceType.String wrong")
	}
}

func TestFeatureHasAndString(t *testing.T) {
	f := FVersion1 | NetFMAC | NetFCsum
	if !f.Has(FVersion1) || !f.Has(NetFMAC|NetFCsum) {
		t.Fatal("Has failed")
	}
	if f.Has(NetFCtrlVQ) {
		t.Fatal("Has reported absent bit")
	}
	s := f.String()
	for _, want := range []string{"VERSION_1", "MAC", "CSUM"} {
		if !containsStr(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if Feature(0).String() != "none" {
		t.Fatal("zero feature string")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestPCICapRoundTrip(t *testing.T) {
	caps := []PCICap{
		{CfgType: CfgTypeCommon, Bar: 2, Offset: 0x0, Length: 0x38},
		{CfgType: CfgTypeNotify, Bar: 2, Offset: 0x1000, Length: 0x20, NotifyOffMultiplier: 4},
		{CfgType: CfgTypeDevice, Bar: 2, ID: 1, Offset: 0x2000, Length: 0x100},
	}
	for _, c := range caps {
		got, err := DecodePCICap(c.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if got != c {
			t.Fatalf("round trip: got %+v, want %+v", got, c)
		}
	}
	if _, err := DecodePCICap([]byte{1, 2}); err == nil {
		t.Fatal("short cap accepted")
	}
}

func TestPCICapProperty(t *testing.T) {
	f := func(cfgType uint8, bar uint8, id uint8, off, ln uint32) bool {
		ct := byte(cfgType%4 + 1)
		c := PCICap{CfgType: ct, Bar: bar % 6, ID: id, Offset: off, Length: ln}
		if ct == CfgTypeNotify {
			c.NotifyOffMultiplier = uint32(bar)
		}
		got, err := DecodePCICap(c.Encode())
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNetHdrRoundTrip(t *testing.T) {
	h := NetHdr{Flags: NetHdrFNeedsCsum, HdrLen: 14, CsumStart: 34, CsumOffset: 6, NumBuffers: 1}
	got, err := DecodeNetHdr(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("got %+v, want %+v", got, h)
	}
	if _, err := DecodeNetHdr(make([]byte, 11)); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestNetHdrProperty(t *testing.T) {
	f := func(fl, gso uint8, hl, gs, cs, co, nb uint16) bool {
		h := NetHdr{Flags: fl, GSOType: gso, HdrLen: hl, GSOSize: gs, CsumStart: cs, CsumOffset: co, NumBuffers: nb}
		got, err := DecodeNetHdr(h.Encode())
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlkReqHdrRoundTrip(t *testing.T) {
	h := BlkReqHdr{Type: BlkTOut, Sector: 0x123456789a}
	got, err := DecodeBlkReqHdr(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("got %+v, want %+v", got, h)
	}
	if _, err := DecodeBlkReqHdr(nil); err == nil {
		t.Fatal("nil header accepted")
	}
}

func newRing(t *testing.T, qsz int) (*mem.Memory, *DriverQueue) {
	t.Helper()
	m := mem.New(1 << 20)
	al := mem.NewAllocator(m, 0x1000, 1<<16)
	lay := AllocRing(al, qsz)
	return m, NewDriverQueue(m, lay)
}

func TestAllocRingAlignment(t *testing.T) {
	m := mem.New(1 << 20)
	al := mem.NewAllocator(m, 1, 1<<16) // deliberately misaligned start
	lay := AllocRing(al, 256)
	if lay.Desc%16 != 0 || lay.Avail%2 != 0 || lay.Used%4 != 0 {
		t.Fatalf("misaligned layout %+v", lay)
	}
	_ = m
}

func TestAllocRingRejectsNonPowerOfTwo(t *testing.T) {
	m := mem.New(1 << 20)
	al := mem.NewAllocator(m, 0, 1<<16)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	AllocRing(al, 6)
}

func TestDriverQueueAddPublishes(t *testing.T) {
	m, q := newRing(t, 8)
	head, err := q.Add([]BufSeg{
		{Addr: 0x8000, Len: 64},
		{Addr: 0x9000, Len: 128, DeviceWritten: true},
	}, "tok")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumFree() != 6 {
		t.Fatalf("numFree = %d, want 6", q.NumFree())
	}
	if q.AvailIdx() != 1 {
		t.Fatalf("avail idx = %d", q.AvailIdx())
	}
	lay := q.Layout()
	if got := m.U16(lay.Avail + 2); got != 1 {
		t.Fatalf("published idx = %d", got)
	}
	if got := m.U16(lay.Avail + 4); got != head {
		t.Fatalf("ring slot = %d, want %d", got, head)
	}
	// Descriptor 0: out segment with NEXT flag.
	d0 := lay.Desc + mem.Addr(head)*16
	if m.U64(d0) != 0x8000 || m.U32(d0+8) != 64 || m.U16(d0+12) != DescFNext {
		t.Fatal("descriptor 0 malformed")
	}
	next := m.U16(d0 + 14)
	d1 := lay.Desc + mem.Addr(next)*16
	if m.U64(d1) != 0x9000 || m.U16(d1+12) != DescFWrite {
		t.Fatal("descriptor 1 malformed")
	}
}

func TestDriverQueueFullAndEmptyErrors(t *testing.T) {
	_, q := newRing(t, 2)
	if _, err := q.Add(nil, nil); err == nil {
		t.Fatal("empty chain accepted")
	}
	if _, err := q.Add([]BufSeg{{Addr: 0, Len: 1}, {Addr: 0, Len: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Add([]BufSeg{{Addr: 0, Len: 1}}, nil); err == nil {
		t.Fatal("overfull ring accepted")
	}
}

func TestDriverQueueUsedHarvestAndReclaim(t *testing.T) {
	m, q := newRing(t, 4)
	h1, _ := q.Add([]BufSeg{{Addr: 0x100, Len: 10}}, "a")
	h2, _ := q.Add([]BufSeg{{Addr: 0x200, Len: 20}, {Addr: 0x300, Len: 30, DeviceWritten: true}}, "b")
	lay := q.Layout()
	// Device publishes h2 then h1 (out of order completion).
	pushUsed := func(i int, head uint16, written uint32) {
		slot := lay.Used + 4 + mem.Addr(i%4)*8
		m.PutU32(slot, uint32(head))
		m.PutU32(slot+4, written)
		m.PutU16(lay.Used+2, uint16(i+1))
	}
	pushUsed(0, h2, 30)
	pushUsed(1, h1, 0)
	u1, ok := q.GetUsed()
	if !ok || u1.Token != "b" || u1.Written != 30 {
		t.Fatalf("first used = %+v, %v", u1, ok)
	}
	u2, ok := q.GetUsed()
	if !ok || u2.Token != "a" {
		t.Fatalf("second used = %+v", u2)
	}
	if _, ok := q.GetUsed(); ok {
		t.Fatal("spurious third completion")
	}
	if q.NumFree() != 4 {
		t.Fatalf("numFree = %d after reclaim, want 4", q.NumFree())
	}
	// Ring must be reusable after reclaim.
	for i := 0; i < 4; i++ {
		if _, err := q.Add([]BufSeg{{Addr: 0x400, Len: 1}}, i); err != nil {
			t.Fatalf("re-add %d: %v", i, err)
		}
	}
}

func TestDriverQueueFlags(t *testing.T) {
	m, q := newRing(t, 4)
	q.SetNoInterrupt(true)
	if m.U16(q.Layout().Avail) != AvailFNoInterrupt {
		t.Fatal("no-interrupt flag not published")
	}
	q.SetNoInterrupt(false)
	if m.U16(q.Layout().Avail) != 0 {
		t.Fatal("no-interrupt flag not cleared")
	}
	if q.DeviceNoNotify() {
		t.Fatal("spurious no-notify")
	}
	m.PutU16(q.Layout().Used, UsedFNoNotify)
	if !q.DeviceNoNotify() {
		t.Fatal("no-notify flag not seen")
	}
}

// hostDMA implements DMA directly against host memory with a fixed
// per-access latency, for exercising DeviceQueue without a full PCIe
// stack.
type hostDMA struct {
	m     *mem.Memory
	cost  sim.Duration
	reads int
}

func (d *hostDMA) Read(p *sim.Proc, a mem.Addr, n int) []byte {
	d.reads++
	p.Sleep(d.cost)
	return d.m.Read(a, n)
}

func (d *hostDMA) Write(p *sim.Proc, a mem.Addr, data []byte) {
	p.Sleep(d.cost)
	d.m.Write(a, data)
}

func TestDeviceQueueEndToEnd(t *testing.T) {
	m, q := newRing(t, 8)
	s := sim.New()
	dma := &hostDMA{m: m, cost: sim.Ns(500)}
	dq := NewDeviceQueue(dma, q.Layout())

	payload := []byte("ping-payload")
	m.Write(0x8000, payload)
	if _, err := q.Add([]BufSeg{
		{Addr: 0x8000, Len: len(payload)},
		{Addr: 0x9000, Len: 64, DeviceWritten: true},
	}, "rt"); err != nil {
		t.Fatal(err)
	}

	var devGot []byte
	s.Go("device", func(p *sim.Proc) {
		if n := dq.Pending(p); n != 1 {
			t.Errorf("pending = %d", n)
			return
		}
		head := dq.NextAvailHead(p)
		chain, err := dq.FetchChain(p, head)
		if err != nil {
			t.Error(err)
			return
		}
		if len(chain) != 2 {
			t.Errorf("chain len = %d", len(chain))
			return
		}
		devGot = dq.ReadChain(p, chain)
		// Echo back into the writable segment.
		resp := append([]byte("echo:"), devGot...)
		written := dq.WriteChain(p, chain, resp)
		dq.PushUsed(p, head, written)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(devGot, payload) {
		t.Fatalf("device read %q", devGot)
	}
	u, ok := q.GetUsed()
	if !ok || u.Token != "rt" {
		t.Fatalf("used = %+v, %v", u, ok)
	}
	want := append([]byte("echo:"), payload...)
	if u.Written != len(want) {
		t.Fatalf("written = %d, want %d", u.Written, len(want))
	}
	if !bytes.Equal(m.Read(0x9000, len(want)), want) {
		t.Fatal("echo payload mismatch")
	}
	if dma.reads == 0 {
		t.Fatal("device made no DMA reads")
	}
}

func TestDeviceQueueManyRoundTripsProperty(t *testing.T) {
	f := func(seed uint32, count uint8) bool {
		n := int(count)%32 + 1
		m, q := newRing(t, 64)
		s := sim.New()
		dq := NewDeviceQueue(&hostDMA{m: m, cost: sim.Ns(100)}, q.Layout())
		rng := sim.NewRNG(uint64(seed))
		bufBase := mem.Addr(0x10000)
		var sent [][]byte
		for i := 0; i < n; i++ {
			pl := make([]byte, rng.Intn(256)+1)
			rng.Bytes(pl)
			a := bufBase + mem.Addr(i)*0x400
			m.Write(a, pl)
			sent = append(sent, pl)
			if _, err := q.Add([]BufSeg{{Addr: a, Len: len(pl)}}, i); err != nil {
				return false
			}
		}
		got := make([][]byte, 0, n)
		s.Go("device", func(p *sim.Proc) {
			for dq.Pending(p) > 0 {
				head := dq.NextAvailHead(p)
				chain, err := dq.FetchChain(p, head)
				if err != nil {
					return
				}
				got = append(got, dq.ReadChain(p, chain))
				dq.PushUsed(p, head, 0)
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i], sent[i]) {
				return false
			}
		}
		// All completions harvestable in order.
		for i := 0; i < n; i++ {
			u, ok := q.GetUsed()
			if !ok || u.Token != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDeviceQueueSuppressionFlags(t *testing.T) {
	m, q := newRing(t, 4)
	s := sim.New()
	dq := NewDeviceQueue(&hostDMA{m: m, cost: sim.Ns(10)}, q.Layout())
	q.SetNoInterrupt(true)
	var suppressed, cleared bool
	s.Go("device", func(p *sim.Proc) {
		suppressed = dq.InterruptSuppressed(p)
		dq.SetNoNotify(p, true)
		q.SetNoInterrupt(false)
		cleared = !dq.InterruptSuppressed(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !suppressed || !cleared {
		t.Fatalf("suppressed=%v cleared=%v", suppressed, cleared)
	}
	if !q.DeviceNoNotify() {
		t.Fatal("driver does not see device no-notify")
	}
}

func TestFetchChainLoopDetected(t *testing.T) {
	m, q := newRing(t, 4)
	lay := q.Layout()
	// Craft a self-looping descriptor.
	m.PutU64(lay.Desc, 0x100)
	m.PutU32(lay.Desc+8, 4)
	m.PutU16(lay.Desc+12, DescFNext)
	m.PutU16(lay.Desc+14, 0) // points to itself
	s := sim.New()
	dq := NewDeviceQueue(&hostDMA{m: m, cost: 0}, lay)
	var err error
	s.Go("device", func(p *sim.Proc) {
		_, err = dq.FetchChain(p, 0)
	})
	if e := s.Run(); e != nil {
		t.Fatal(e)
	}
	if err == nil {
		t.Fatal("descriptor loop not detected")
	}
}
