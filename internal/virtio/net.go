package virtio

import "fmt"

// NetHdrSize is the size of struct virtio_net_hdr (with num_buffers,
// as used by modern devices).
const NetHdrSize = 12

// NetHdr flag and GSO constants (subset the experiments use).
const (
	NetHdrFNeedsCsum = 1 // checksum offload requested for this packet
	NetHdrFDataValid = 2 // device validated the checksum on receive
	NetHdrGSONone    = 0
)

// NetHdr is the per-packet header prepended to every frame on the
// network device's TX and RX queues.
type NetHdr struct {
	Flags      byte
	GSOType    byte
	HdrLen     uint16
	GSOSize    uint16
	CsumStart  uint16
	CsumOffset uint16
	NumBuffers uint16
}

// Encode renders the 12-byte wire format.
func (h NetHdr) Encode() []byte {
	b := make([]byte, NetHdrSize)
	h.EncodeInto(b)
	return b
}

// EncodeInto renders the wire format into b[:NetHdrSize], which must
// have room — the allocation-free form for per-packet paths.
func (h NetHdr) EncodeInto(b []byte) {
	b[0] = h.Flags
	b[1] = h.GSOType
	put := func(o int, v uint16) { b[o] = byte(v); b[o+1] = byte(v >> 8) }
	put(2, h.HdrLen)
	put(4, h.GSOSize)
	put(6, h.CsumStart)
	put(8, h.CsumOffset)
	put(10, h.NumBuffers)
}

// DecodeNetHdr parses the 12-byte wire format.
func DecodeNetHdr(b []byte) (NetHdr, error) {
	if len(b) < NetHdrSize {
		return NetHdr{}, fmt.Errorf("virtio: net hdr too short: %d bytes", len(b))
	}
	get := func(o int) uint16 { return uint16(b[o]) | uint16(b[o+1])<<8 }
	return NetHdr{
		Flags:      b[0],
		GSOType:    b[1],
		HdrLen:     get(2),
		GSOSize:    get(4),
		CsumStart:  get(6),
		CsumOffset: get(8),
		NumBuffers: get(10),
	}, nil
}

// Net device-specific configuration layout (device config window).
const (
	NetCfgMAC    = 0x00 // 6 bytes
	NetCfgStatus = 0x06 // u16; bit 0 = link up
	NetCfgMaxVQP = 0x08 // u16 max_virtqueue_pairs
	NetCfgMTU    = 0x0a // u16
	NetCfgLen    = 0x0c
)

// NetStatusLinkUp is the link-up bit in the net config status field.
const NetStatusLinkUp = 1

// Control-queue classes/commands (subset).
const (
	NetCtrlRx        = 0 // class
	NetCtrlRxPromisc = 0 // command: promiscuous on/off
	NetCtrlMQ        = 4 // class: multiqueue
	NetCtrlMQPairs   = 0 // command: VQ_PAIRS_SET (u16 active pair count)
	NetCtrlAckOK     = 0
	NetCtrlAckErr    = 1
)

// MQ pair-count limits of VIRTIO_NET_CTRL_MQ_VQ_PAIRS_SET (spec §5.1.6.5.5).
const (
	NetMQPairsMin = 1
	NetMQPairsMax = 0x8000
)

// NetRXQueue and NetTXQueue map a queue-pair index to the virtio-net
// queue numbering (receiveq1, transmitq1, receiveq2, transmitq2, ...).
func NetRXQueue(pair int) int { return 2 * pair }

// NetTXQueue is the transmit queue of the given pair.
func NetTXQueue(pair int) int { return 2*pair + 1 }

// NetCtrlQueue is the control-queue index for a device with the given
// number of queue pairs (it follows the last transmit queue).
func NetCtrlQueue(pairs int) int { return 2 * pairs }
