//fvlint:hotpath
package sim

import (
	"fmt"
	"math"
	"sort"

	"fpgavirtio/internal/mem"
)

// event is one scheduled callback. Events are recycled through a
// free-list (see alloc/release): the steady-state per-packet path
// schedules thousands of events per simulated round trip, and heap
// allocating each one dominated the profile. An event either carries a
// closure (fn) or resumes a process directly (proc) — the latter avoids
// allocating a wrapper closure for the extremely common "wake this
// process" case.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among equal timestamps
	name string
	fn   func()
	proc *Proc  // when non-nil, the event resumes this process
	pgen uint32 // proc spawn generation captured at schedule time
	dead bool
	gen  uint32 // recycle generation, guards stale EventIDs
}

// eventLess is the queue's total order: time, then schedule sequence.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// maxTime is the dispatch limit of Run and Step: no deadline.
const maxTime = Time(math.MaxInt64)

// EventID identifies a scheduled event so it can be cancelled. The
// generation snapshot makes Cancel safe against event recycling: an ID
// held past the event's execution refers to a retired generation and
// cancels nothing.
type EventID struct {
	s   *Sim
	e   *event
	gen uint32
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (id EventID) Cancel() {
	if id.e != nil && id.e.gen == id.gen && !id.e.dead {
		id.e.dead = true
		id.s.stats.Cancelled++
		id.s.live--
	}
}

// Tracer receives a record for every event executed when tracing is
// enabled. It exists for debugging and for latency-attribution tools.
type Tracer interface {
	Event(at Time, name string)
}

// QueueStats are the event loop's introspection counters, accumulated
// over the Sim's whole life. They are plain integers bumped on the hot
// path (no instrument indirection); sessions publish them into the
// telemetry registry as sim.events.* / sim.queue.* after each run.
// All four are implementation-independent — the calendar queue and the
// simrefqueue reference shim report identical values for the same
// schedule, which the replay fingerprint golden relies on.
type QueueStats struct {
	Scheduled int64 // events ever pushed (At/After/ResumeAfter/Go)
	Fired     int64 // live events popped and executed
	Cancelled int64 // events killed by EventID.Cancel before firing
	DepthMax  int64 // high-water mark of live queued events
}

// Sim is a discrete-event scheduler. It is not safe for concurrent use;
// all model code runs under a strict control hand-off: exactly one
// goroutine — the scheduler or a single process — is runnable at any
// instant. Distinct Sim instances are fully independent and may run on
// concurrent goroutines — the parallel sweep engine relies on this
// isolation.
type Sim struct {
	now      Time
	q        equeue
	seq      uint64
	live     int64 // queued, not-cancelled events
	stopped  bool
	deadline Time // dispatch limit (RunUntil); maxTime under Run/Step
	// chained enables the run-to-completion fast path: inside Run and
	// RunUntil, a parking process drains the event queue from its own
	// goroutine — callbacks run inline, consecutive wakes of the same
	// process coalesce to straight-line execution, and a wake of
	// another process is a direct goroutine-to-goroutine hand-off that
	// skips the scheduler round trip entirely. Under Step (and before
	// Run is entered) it is false and every event returns control to
	// the scheduler goroutine, which is what gives Step its one-event
	// granularity.
	chained  bool
	yield    chan struct{} // control returns to the scheduler goroutine
	trap     any           // panic forwarded from a process goroutine
	tracer   Tracer
	spans    SpanSink
	flight   FlightSink
	procs    int     // live (not yet finished) processes
	parked   []*Proc // processes currently suspended (unordered)
	free     []*event
	procPool []*Proc // finished processes whose goroutines idle for reuse
	stats    QueueStats
	arena    *mem.Arena         // backs interned trace/park name strings
	names    map[nameKey]string // (label, sub) -> interned "label+sub"
}

type nameKey struct{ label, sub string }

// New returns an empty simulation positioned at time zero.
func New() *Sim {
	s := &Sim{
		yield: make(chan struct{}),
		arena: mem.NewArena(0),
		names: make(map[nameKey]string),
	}
	s.q.init()
	return s
}

// Now reports the current simulation time.
func (s *Sim) Now() Time { return s.now }

// SetTracer installs t as the execution tracer (nil disables tracing).
func (s *Sim) SetTracer(t Tracer) { s.tracer = t }

// Traced reports whether an execution tracer is installed. Hot paths
// use it to skip composing event-name strings that only a tracer reads.
func (s *Sim) Traced() bool { return s.tracer != nil }

// Stats returns the event loop's lifetime counters.
func (s *Sim) Stats() QueueStats { return s.stats }

// internName returns the interned concatenation label+sub. Composed
// names (a proc wake's "wake:app", a trigger's park reason) have tiny
// cardinality but used to be rebuilt — one heap allocation each — on
// every traced event. The intern table builds each unique composition
// once, in the Sim's arena, and the steady state is a map hit with
// zero allocations even with a tracer installed.
func (s *Sim) internName(label, sub string) string {
	k := nameKey{label, sub}
	if n, ok := s.names[k]; ok {
		return n
	}
	n := s.arena.String(label, sub)
	s.names[k] = n
	return n
}

func (s *Sim) alloc() *event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	return &event{}
}

func (s *Sim) release(e *event) {
	e.name = ""
	e.fn = nil
	e.proc = nil
	e.dead = false
	e.gen++
	s.free = append(s.free, e)
}

// enqueue pushes e and maintains the introspection counters.
func (s *Sim) enqueue(e *event) {
	s.stats.Scheduled++
	s.live++
	if s.live > s.stats.DepthMax {
		s.stats.DepthMax = s.live
	}
	s.q.push(e, s.now)
}

// At schedules fn to run at absolute time at. Scheduling in the past
// panics: it would violate causality.
func (s *Sim) At(at Time, name string, fn func()) EventID {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", name, at, s.now))
	}
	e := s.alloc()
	e.at, e.seq, e.name, e.fn = at, s.seq, name, fn
	s.seq++
	s.enqueue(e)
	return EventID{s, e, e.gen}
}

// After schedules fn to run d from now. Negative d panics.
func (s *Sim) After(d Duration, name string, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, name))
	}
	return s.At(s.now.Add(d), name, fn)
}

// atProc schedules a resume of p at absolute time at without allocating
// a wrapper closure. label names the event kind ("wake", "start", ...);
// the tracer composes label:procname lazily (and interned), so untraced
// runs never build the string.
func (s *Sim) atProc(at Time, label string, p *Proc) EventID {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", label, at, s.now))
	}
	e := s.alloc()
	e.at, e.seq, e.name, e.proc, e.pgen = at, s.seq, label, p, p.gen
	s.seq++
	s.enqueue(e)
	return EventID{s, e, e.gen}
}

// ResumeAfter schedules p to be resumed d from now. It is the
// allocation-free dual of Proc.Park: higher layers (wait queues,
// completion paths) park a process and arrange its wake-up through
// ResumeAfter instead of allocating a closure per wake. Exactly one
// resume must be outstanding per parked process.
func (s *Sim) ResumeAfter(d Duration, label string, p *Proc) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %v", d, label))
	}
	return s.atProc(s.now.Add(d), label, p)
}

// popLive removes and returns the next live event with at <= limit,
// releasing cancelled events along the way. Returns nil when nothing
// runnable remains within limit.
func (s *Sim) popLive(limit Time) *event {
	for {
		e := s.q.pop(s.now, limit)
		if e == nil {
			return nil
		}
		if e.dead {
			s.release(e)
			continue
		}
		s.live--
		s.stats.Fired++
		return e
	}
}

// take advances the clock to e, traces it, and executes it if it is a
// callback. For a process event it returns the process to hand control
// to (after the stale-generation check); for callbacks it returns nil.
// e is released before execution, so the callback may immediately
// recycle it.
func (s *Sim) take(e *event) *Proc {
	s.now = e.at
	if s.tracer != nil {
		if e.proc != nil {
			s.tracer.Event(e.at, s.internName(e.name+":", e.proc.name))
		} else {
			s.tracer.Event(e.at, e.name)
		}
	}
	fn, p, pgen := e.fn, e.proc, e.pgen
	s.release(e)
	if p == nil {
		fn()
		return nil
	}
	if p.gen != pgen {
		panic(fmt.Sprintf("sim: stale resume of recycled process %q", p.name))
	}
	return p
}

// Step executes the next pending event, advancing time to it.
// It reports whether an event was executed. Step always returns after
// exactly one event: the chained fast path stays off, so a resumed
// process yields control back to the scheduler as soon as it parks.
func (s *Sim) Step() bool {
	s.deadline = maxTime
	e := s.popLive(maxTime)
	if e == nil {
		return false
	}
	if p := s.take(e); p != nil {
		p.resume <- struct{}{}
		<-s.yield
		s.repanic()
	}
	return true
}

// repanic re-throws a panic forwarded from a process goroutine (see
// Proc.runBody) so that model panics always surface to the caller of
// Run/RunUntil/Step regardless of which goroutine was dispatching when
// they fired. The simulation is unusable afterwards.
func (s *Sim) repanic() {
	if r := s.trap; r != nil {
		s.trap = nil
		panic(r)
	}
}

// runLoop is the scheduler side of the chained dispatch regime: it
// pops and fires events until the queue drains (within deadline) or
// Stop is called. Firing a process event hands control to that
// process's goroutine; from there processes chain through the queue
// themselves (see Proc.chainNext) and control only returns here — one
// receive on s.yield — when nothing more is runnable from a process
// context. Callback-only stretches run inline in this loop with no
// hand-offs at all.
func (s *Sim) runLoop() {
	for !s.stopped {
		e := s.popLive(s.deadline)
		if e == nil {
			return
		}
		if p := s.take(e); p != nil {
			p.resume <- struct{}{}
			<-s.yield
		}
	}
}

// Run executes events until the queue drains or Stop is called.
// It returns an error if processes remain parked with no pending events
// (a deadlock in the modeled system).
func (s *Sim) Run() error {
	s.stopped = false
	s.deadline = maxTime
	s.chained = true
	s.runLoop()
	s.chained = false
	s.repanic()
	if !s.stopped && len(s.parked) > 0 {
		return fmt.Errorf("sim: deadlock at %v: %d process(es) parked: %v", s.now, len(s.parked), s.parkedNames())
	}
	return nil
}

// RunUntil executes events with timestamps <= deadline. Events beyond
// the deadline remain queued; time is advanced to deadline if nothing
// ran at it.
func (s *Sim) RunUntil(deadline Time) {
	s.stopped = false
	s.deadline = deadline
	s.chained = true
	s.runLoop()
	s.chained = false
	s.repanic()
	if s.now < deadline {
		// A Stop may have left same-timestamp events in the fast lane;
		// migrate them before the clock jumps so queue invariants hold.
		s.q.flushCurr()
		s.now = deadline
	}
}

// Stop halts Run after the current event completes.
func (s *Sim) Stop() { s.stopped = true }

// Pending reports the number of live queued events.
func (s *Sim) Pending() int { return int(s.live) }

func (s *Sim) parkedNames() []string {
	var names []string
	for _, p := range s.parked {
		names = append(names, p.name+": "+p.why)
	}
	// The deadlock error this feeds must read identically on every run
	// of the same seed; parking order must not leak into it.
	sort.Strings(names)
	return names
}
