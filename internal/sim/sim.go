package sim

import (
	"container/heap"
	"fmt"
)

// event is one scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among equal timestamps
	name string
	fn   func()
	idx  int // heap index
	dead bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ e *event }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (id EventID) Cancel() {
	if id.e != nil {
		id.e.dead = true
	}
}

// Tracer receives a record for every event executed when tracing is
// enabled. It exists for debugging and for latency-attribution tools.
type Tracer interface {
	Event(at Time, name string)
}

// Sim is a discrete-event scheduler. It is not safe for concurrent use;
// all model code runs on the scheduler's goroutine (processes created
// with Go run with strict hand-off, one at a time).
type Sim struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	tracer  Tracer
	spans   SpanSink
	procs   int // live (not yet finished) processes
	parked  map[*Proc]string
}

// New returns an empty simulation positioned at time zero.
func New() *Sim {
	return &Sim{parked: make(map[*Proc]string)}
}

// Now reports the current simulation time.
func (s *Sim) Now() Time { return s.now }

// SetTracer installs t as the execution tracer (nil disables tracing).
func (s *Sim) SetTracer(t Tracer) { s.tracer = t }

// At schedules fn to run at absolute time at. Scheduling in the past
// panics: it would violate causality.
func (s *Sim) At(at Time, name string, fn func()) EventID {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", name, at, s.now))
	}
	e := &event{at: at, seq: s.seq, name: name, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return EventID{e}
}

// After schedules fn to run d from now. Negative d panics.
func (s *Sim) After(d Duration, name string, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, name))
	}
	return s.At(s.now.Add(d), name, fn)
}

// Step executes the next pending event, advancing time to it.
// It reports whether an event was executed.
func (s *Sim) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.dead {
			continue
		}
		s.now = e.at
		if s.tracer != nil {
			s.tracer.Event(e.at, e.name)
		}
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
// It returns an error if processes remain parked with no pending events
// (a deadlock in the modeled system).
func (s *Sim) Run() error {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
	if !s.stopped && len(s.parked) > 0 {
		return fmt.Errorf("sim: deadlock at %v: %d process(es) parked: %v", s.now, len(s.parked), s.parkedNames())
	}
	return nil
}

// RunUntil executes events with timestamps <= deadline. Events beyond
// the deadline remain queued; time is left at the last executed event
// (or advanced to deadline if nothing ran at it).
func (s *Sim) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped && len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Stop halts Run after the current event completes.
func (s *Sim) Stop() { s.stopped = true }

// Pending reports the number of live queued events.
func (s *Sim) Pending() int {
	n := 0
	for _, e := range s.queue {
		if !e.dead {
			n++
		}
	}
	return n
}

func (s *Sim) parkedNames() []string {
	var names []string
	for _, why := range s.parked {
		names = append(names, why)
	}
	return names
}
