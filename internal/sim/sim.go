package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// event is one scheduled callback. Events are recycled through a
// free-list (see alloc/release): the steady-state per-packet path
// schedules thousands of events per simulated round trip, and heap
// allocating each one dominated the profile. An event either carries a
// closure (fn) or resumes a process directly (proc) — the latter avoids
// allocating a wrapper closure for the extremely common "wake this
// process" case.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among equal timestamps
	name string
	fn   func()
	proc *Proc  // when non-nil, the event resumes this process
	pgen uint32 // proc spawn generation captured at schedule time
	idx  int    // heap index
	dead bool
	gen  uint32 // recycle generation, guards stale EventIDs
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// EventID identifies a scheduled event so it can be cancelled. The
// generation snapshot makes Cancel safe against event recycling: an ID
// held past the event's execution refers to a retired generation and
// cancels nothing.
type EventID struct {
	e   *event
	gen uint32
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (id EventID) Cancel() {
	if id.e != nil && id.e.gen == id.gen {
		id.e.dead = true
	}
}

// Tracer receives a record for every event executed when tracing is
// enabled. It exists for debugging and for latency-attribution tools.
type Tracer interface {
	Event(at Time, name string)
}

// Sim is a discrete-event scheduler. It is not safe for concurrent use;
// all model code runs on the scheduler's goroutine (processes created
// with Go run with strict hand-off, one at a time). Distinct Sim
// instances are fully independent and may run on concurrent goroutines
// — the parallel sweep engine relies on this isolation.
type Sim struct {
	now      Time
	queue    eventHeap
	seq      uint64
	stopped  bool
	tracer   Tracer
	spans    SpanSink
	flight   FlightSink
	procs    int // live (not yet finished) processes
	parked   map[*Proc]string
	free     []*event // recycled events
	procPool []*Proc  // finished processes whose goroutines idle for reuse
}

// New returns an empty simulation positioned at time zero.
func New() *Sim {
	return &Sim{parked: make(map[*Proc]string)}
}

// Now reports the current simulation time.
func (s *Sim) Now() Time { return s.now }

// SetTracer installs t as the execution tracer (nil disables tracing).
func (s *Sim) SetTracer(t Tracer) { s.tracer = t }

// Traced reports whether an execution tracer is installed. Hot paths
// use it to skip composing event-name strings that only a tracer reads.
func (s *Sim) Traced() bool { return s.tracer != nil }

func (s *Sim) alloc() *event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	return &event{}
}

func (s *Sim) release(e *event) {
	e.name = ""
	e.fn = nil
	e.proc = nil
	e.dead = false
	e.gen++
	s.free = append(s.free, e)
}

// At schedules fn to run at absolute time at. Scheduling in the past
// panics: it would violate causality.
func (s *Sim) At(at Time, name string, fn func()) EventID {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", name, at, s.now))
	}
	e := s.alloc()
	e.at, e.seq, e.name, e.fn = at, s.seq, name, fn
	s.seq++
	heap.Push(&s.queue, e)
	return EventID{e, e.gen}
}

// After schedules fn to run d from now. Negative d panics.
func (s *Sim) After(d Duration, name string, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, name))
	}
	return s.At(s.now.Add(d), name, fn)
}

// atProc schedules a resume of p at absolute time at without allocating
// a wrapper closure. label names the event kind ("wake", "start", ...);
// the tracer composes label:procname lazily, so untraced runs never
// build the string.
func (s *Sim) atProc(at Time, label string, p *Proc) EventID {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", label, at, s.now))
	}
	e := s.alloc()
	e.at, e.seq, e.name, e.proc, e.pgen = at, s.seq, label, p, p.gen
	s.seq++
	heap.Push(&s.queue, e)
	return EventID{e, e.gen}
}

// ResumeAfter schedules p to be resumed d from now. It is the
// allocation-free dual of Proc.Park: higher layers (wait queues,
// completion paths) park a process and arrange its wake-up through
// ResumeAfter instead of allocating a closure per wake. Exactly one
// resume must be outstanding per parked process.
func (s *Sim) ResumeAfter(d Duration, label string, p *Proc) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, label))
	}
	return s.atProc(s.now.Add(d), label, p)
}

// Step executes the next pending event, advancing time to it.
// It reports whether an event was executed.
func (s *Sim) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.dead {
			s.release(e)
			continue
		}
		s.now = e.at
		if s.tracer != nil {
			if e.proc != nil {
				s.tracer.Event(e.at, e.name+":"+e.proc.name)
			} else {
				s.tracer.Event(e.at, e.name)
			}
		}
		fn, p, pgen := e.fn, e.proc, e.pgen
		s.release(e)
		if p != nil {
			if p.gen != pgen {
				panic(fmt.Sprintf("sim: stale resume of recycled process %q", p.name))
			}
			p.run()
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
// It returns an error if processes remain parked with no pending events
// (a deadlock in the modeled system).
func (s *Sim) Run() error {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
	if !s.stopped && len(s.parked) > 0 {
		return fmt.Errorf("sim: deadlock at %v: %d process(es) parked: %v", s.now, len(s.parked), s.parkedNames())
	}
	return nil
}

// RunUntil executes events with timestamps <= deadline. Events beyond
// the deadline remain queued; time is left at the last executed event
// (or advanced to deadline if nothing ran at it).
func (s *Sim) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped && len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Stop halts Run after the current event completes.
func (s *Sim) Stop() { s.stopped = true }

// Pending reports the number of live queued events.
func (s *Sim) Pending() int {
	n := 0
	for _, e := range s.queue {
		if !e.dead {
			n++
		}
	}
	return n
}

func (s *Sim) parkedNames() []string {
	var names []string
	for p, why := range s.parked {
		names = append(names, p.name+": "+why)
	}
	// The deadlock error this feeds must read identically on every run
	// of the same seed; map order must not leak into it.
	sort.Strings(names)
	return names
}
