//go:build !simrefqueue

//fvlint:hotpath
package sim

import "sort"

// calendarWindow is the width of the near tier. Events scheduled within
// this horizon land in the sorted near bucket; everything further out
// (watchdog timers, coalesce deadlines armed milliseconds ahead) parks
// in the far heap until the simulation clock approaches. The value is a
// little over one full round trip of the modeled testbed (~32 us), so
// the entire per-packet event population of both driver stacks lives in
// the near tier and the far tier is touched a handful of times per run.
const calendarWindow = Time(32 * Microsecond)

// equeue is the simulator's calendar event queue. It replaces the
// original container/heap implementation (still available behind the
// `simrefqueue` build tag as a byte-identity reference) with three
// tiers shaped around the dominant "schedule at now+Δ, fire soon"
// pattern of the packet hot path:
//
//	curr — a FIFO of events scheduled at exactly the current time.
//	       Since seq grows monotonically and the clock never moves
//	       backwards, append order IS (at, seq) order: O(1) push, O(1)
//	       pop, no comparisons. This is the fast lane for the Δ=0
//	       schedules (process starts, trigger fires, cond signals).
//	near — events with now < at <= horizon, kept sorted DESCENDING by
//	       (at, seq) so the soonest event is at the tail: pop is a
//	       slice shrink with no sift, and a same-timestamp burst
//	       drains as consecutive tail pops with no per-event fix-ups.
//	       Inserts binary-search, but the common "fires next" case is
//	       a pure append.
//	far  — a plain binary min-heap for at > horizon. Only long timers
//	       land here, so its log(n) cost is off the per-packet path.
//
// Ordering invariants (the replay-determinism argument):
//
//	(1) every event in curr has at == now, and curr is in seq order;
//	(2) every near event with at == now was scheduled while now < at,
//	    so its seq is smaller than any curr event's — near@now drains
//	    before curr;
//	(3) near holds only at <= horizon, far only at > horizon, and
//	    horizon only moves at refill time when near and curr are both
//	    empty — so near strictly precedes far;
//	(4) time never advances while curr or near@now is non-empty.
//
// Together these give exactly the (at, seq) total order of the
// reference heap, which the property tests in queue_test.go and the
// replay fingerprint golden verify.
type equeue struct {
	curr     []*event
	currHead int
	near     []*event // sorted descending by (at, seq); minimum at the tail
	far      []*event // binary min-heap by (at, seq)
	horizon  Time
}

func (q *equeue) init() { q.horizon = calendarWindow }

// push enqueues e, routing it to the tier its timestamp selects.
func (q *equeue) push(e *event, now Time) {
	if e.at == now {
		q.curr = append(q.curr, e)
		return
	}
	if e.at > q.horizon {
		q.farPush(e)
		return
	}
	n := len(q.near)
	if n == 0 || eventLess(e, q.near[n-1]) {
		// Soonest event so far: the dominant hot-path case.
		q.near = append(q.near, e)
		return
	}
	k := sort.Search(n, func(i int) bool { return eventLess(q.near[i], e) })
	q.near = append(q.near, nil)
	copy(q.near[k+1:], q.near[k:])
	q.near[k] = e
}

// pop removes and returns the (at, seq)-minimal event if its timestamp
// is <= limit, or nil. now must be the caller's current clock; events
// at exactly now drain from the near tail first (smaller seq), then the
// curr FIFO, before time is allowed to advance.
func (q *equeue) pop(now, limit Time) *event {
	if limit < now {
		return nil
	}
	for {
		n := len(q.near)
		if n > 0 && q.near[n-1].at == now {
			e := q.near[n-1]
			q.near[n-1] = nil
			q.near = q.near[:n-1]
			return e
		}
		if q.currHead < len(q.curr) {
			e := q.curr[q.currHead]
			q.curr[q.currHead] = nil
			q.currHead++
			if q.currHead == len(q.curr) {
				q.curr = q.curr[:0]
				q.currHead = 0
			}
			return e
		}
		if n > 0 {
			e := q.near[n-1]
			if e.at > limit {
				return nil
			}
			q.near[n-1] = nil
			q.near = q.near[:n-1]
			return e
		}
		if len(q.far) == 0 || q.far[0].at > limit {
			return nil
		}
		q.refill()
	}
}

// refill advances the horizon to cover the far tier's minimum and
// migrates everything inside the new window into near. Only reached
// with curr and near empty, so invariant (3) is preserved.
func (q *equeue) refill() {
	q.horizon = q.far[0].at + calendarWindow
	for len(q.far) > 0 && q.far[0].at <= q.horizon {
		q.near = append(q.near, q.farPop())
	}
	// farPop yields ascending (at, seq); near wants descending.
	for i, j := 0, len(q.near)-1; i < j; i, j = i+1, j-1 {
		q.near[i], q.near[j] = q.near[j], q.near[i]
	}
}

// flushCurr migrates any leftover curr events into near. RunUntil calls
// it before force-advancing the clock past a Stop'd simulation so that
// invariant (1) — curr events are at the current time — survives the
// jump.
func (q *equeue) flushCurr() {
	for q.currHead < len(q.curr) {
		e := q.curr[q.currHead]
		q.curr[q.currHead] = nil
		q.currHead++
		n := len(q.near)
		k := sort.Search(n, func(i int) bool { return eventLess(q.near[i], e) })
		q.near = append(q.near, nil)
		copy(q.near[k+1:], q.near[k:])
		q.near[k] = e
	}
	q.curr = q.curr[:0]
	q.currHead = 0
}

func (q *equeue) farPush(e *event) {
	q.far = append(q.far, e)
	i := len(q.far) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(q.far[i], q.far[parent]) {
			break
		}
		q.far[i], q.far[parent] = q.far[parent], q.far[i]
		i = parent
	}
}

func (q *equeue) farPop() *event {
	h := q.far
	e := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	q.far = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && eventLess(h[l], h[min]) {
			min = l
		}
		if r < n && eventLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return e
}
