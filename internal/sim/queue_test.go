//go:build !simrefqueue

package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// modelHeap is an in-test reference implementation of the event queue's
// total order: a straight container/heap over (at, seq). The property
// tests below drive the calendar queue and this model with identical
// randomized schedules and demand identical pop sequences.
type modelHeap []*event

func (h modelHeap) Len() int           { return len(h) }
func (h modelHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }
func (h modelHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *modelHeap) Push(x any)        { *h = append(*h, x.(*event)) }
func (h *modelHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// queueHarness mirrors how Sim drives the queue: time only advances to
// the timestamp of the event just popped, and pushes happen at the
// current time.
type queueHarness struct {
	q     equeue
	model modelHeap
	now   Time
	seq   uint64
}

func (h *queueHarness) push(at Time, dead bool) {
	e := &event{at: at, seq: h.seq, dead: dead}
	m := &event{at: at, seq: h.seq, dead: dead}
	h.seq++
	h.q.push(e, h.now)
	heap.Push(&h.model, m)
}

// popBoth pops one event from each implementation and checks they agree
// on (at, seq, dead); reports false when both are empty.
func (h *queueHarness) popBoth(t *testing.T, limit Time) bool {
	t.Helper()
	got := h.q.pop(h.now, limit)
	var want *event
	if len(h.model) > 0 && h.model[0].at <= limit && limit >= h.now {
		want = heap.Pop(&h.model).(*event)
	}
	if (got == nil) != (want == nil) {
		t.Fatalf("pop mismatch at now=%v limit=%v: calendar=%v model=%v", h.now, limit, got, want)
	}
	if got == nil {
		return false
	}
	if got.at != want.at || got.seq != want.seq || got.dead != want.dead {
		t.Fatalf("pop order diverged: calendar (at=%v seq=%d) model (at=%v seq=%d)",
			got.at, got.seq, want.at, want.seq)
	}
	h.now = got.at
	return true
}

// TestQueuePropertyVsHeap drives randomized seeded schedules — bursts
// at the current timestamp, near-future wakes, far timers beyond the
// calendar window, and cancellations — through the calendar queue and
// the reference heap, asserting identical (at, seq) pop order
// throughout. This is the determinism contract the replay goldens rest
// on, exercised directly at the queue layer.
func TestQueuePropertyVsHeap(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := &queueHarness{}
		h.q.init()
		for step := 0; step < 2000; step++ {
			switch r := rng.Intn(10); {
			case r < 3: // same-timestamp burst (the curr fast lane)
				for i := 0; i < rng.Intn(4)+1; i++ {
					h.push(h.now, rng.Intn(8) == 0)
				}
			case r < 7: // near-future wake within the calendar window
				h.push(h.now+Time(rng.Int63n(int64(calendarWindow))), rng.Intn(8) == 0)
			case r < 8: // far timer beyond the window
				h.push(h.now+calendarWindow+Time(rng.Int63n(int64(100*Millisecond))), false)
			default: // drain a few
				for i := 0; i < rng.Intn(6)+1; i++ {
					if !h.popBoth(t, maxTime) {
						break
					}
				}
			}
		}
		for h.popBoth(t, maxTime) {
		}
		if len(h.model) != 0 {
			t.Fatalf("seed %d: model has %d leftovers after calendar drained", seed, len(h.model))
		}
	}
}

// TestQueueLimitPops checks the deadline-bounded pop used by RunUntil:
// pops stop exactly at the limit, events beyond it stay queued, and a
// limit in the past yields nothing.
func TestQueueLimitPops(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := &queueHarness{}
	h.q.init()
	for i := 0; i < 500; i++ {
		h.push(Time(rng.Int63n(int64(200*Microsecond))), false)
	}
	if e := h.q.pop(h.now, -1); e != nil {
		t.Fatalf("pop with limit before now returned %v", e)
	}
	limit := Time(100 * Microsecond)
	for h.popBoth(t, limit) {
		if h.now > limit {
			t.Fatalf("popped event at %v past limit %v", h.now, limit)
		}
	}
	// Everything left must be beyond the limit, in both implementations.
	for h.popBoth(t, maxTime) {
		if h.now <= limit {
			t.Fatalf("event at %v <= limit %v survived the bounded drain", h.now, limit)
		}
	}
}

// TestQueueFlushCurr pins the RunUntil force-advance corner: events
// parked in the curr fast lane are migrated into the sorted tier before
// the clock jumps, so later pops still come out in (at, seq) order.
func TestQueueFlushCurr(t *testing.T) {
	h := &queueHarness{}
	h.q.init()
	h.push(0, false)  // seq 0 at now — lands in curr
	h.push(10, false) // seq 1 — lands in near
	h.push(0, false)  // seq 2 at now — lands in curr
	h.q.flushCurr()
	h.now = 5 // simulate RunUntil jumping the clock with curr events left
	// Model: drain everything in (at, seq) order from 5's perspective;
	// the at=0 events are in the past but must still come out first.
	order := []struct {
		at  Time
		seq uint64
	}{{0, 0}, {0, 2}, {10, 1}}
	for i, want := range order {
		e := h.q.pop(h.now, maxTime)
		if e == nil || e.at != want.at || e.seq != want.seq {
			t.Fatalf("pop %d = %+v, want at=%v seq=%d", i, e, want.at, want.seq)
		}
	}
}
