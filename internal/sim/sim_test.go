package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDurationUnits(t *testing.T) {
	if Ns(1) != 1000 {
		t.Fatalf("Ns(1) = %d, want 1000", Ns(1))
	}
	if Us(1) != 1000*Ns(1) {
		t.Fatalf("Us(1) = %d", Us(1))
	}
	if Ms(1) != 1000*Us(1) {
		t.Fatalf("Ms(1) = %d", Ms(1))
	}
	if got := NsF(1.5); got != 1500 {
		t.Fatalf("NsF(1.5) = %d, want 1500", got)
	}
	if got := UsF(0.25); got != Ns(250) {
		t.Fatalf("UsF(0.25) = %v, want 250ns", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ps"},
		{Ns(8), "8ns"},
		{Us(3), "3us"},
		{Ms(2), "2ms"},
		{-Ns(8), "-8ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeQuantize(t *testing.T) {
	step := Ns(8)
	for _, tc := range []struct{ in, want Time }{
		{0, 0},
		{Time(Ns(7)), 0},
		{Time(Ns(8)), Time(Ns(8))},
		{Time(Ns(15)), Time(Ns(8))},
		{Time(Ns(16)), Time(Ns(16))},
	} {
		if got := tc.in.Quantize(step); got != tc.want {
			t.Errorf("Quantize(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestQuantizeProperty(t *testing.T) {
	f := func(raw uint32) bool {
		tm := Time(raw)
		q := tm.Quantize(Ns(8))
		return q <= tm && tm-q < Time(Ns(8)) && q%Time(Ns(8)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []string
	s.After(Ns(20), "c", func() { order = append(order, "c") })
	s.After(Ns(10), "a", func() { order = append(order, "a") })
	s.After(Ns(10), "b", func() { order = append(order, "b") }) // same time: FIFO
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != Time(Ns(20)) {
		t.Fatalf("final time %v, want 20ns", s.Now())
	}
}

func TestEventCancel(t *testing.T) {
	s := New()
	ran := false
	id := s.After(Ns(5), "x", func() { ran = true })
	id.Cancel()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled event ran")
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", s.Pending())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.After(Ns(10), "adv", func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(Time(Ns(5)), "past", func() {})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []int
	for i := 1; i <= 5; i++ {
		n := i
		s.After(Ns(int64(10*i)), "e", func() { fired = append(fired, n) })
	}
	s.RunUntil(Time(Ns(30)))
	if len(fired) != 3 {
		t.Fatalf("fired %v, want first 3", fired)
	}
	if s.Now() != Time(Ns(30)) {
		t.Fatalf("now = %v, want 30ns", s.Now())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 5 {
		t.Fatalf("after Run fired %v, want all 5", fired)
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 0; i < 10; i++ {
		s.After(Ns(int64(i+1)), "e", func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestProcSleep(t *testing.T) {
	s := New()
	var marks []Time
	s.Go("p", func(p *Proc) {
		marks = append(marks, p.Now())
		p.Sleep(Us(1))
		marks = append(marks, p.Now())
		p.Sleep(Us(2))
		marks = append(marks, p.Now())
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, Time(Us(1)), Time(Us(3))}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestProcInterleaving(t *testing.T) {
	s := New()
	var order []string
	s.Go("a", func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(Ns(10))
		order = append(order, "a1")
		p.Sleep(Ns(20))
		order = append(order, "a2")
	})
	s.Go("b", func(p *Proc) {
		order = append(order, "b0")
		p.Sleep(Ns(15))
		order = append(order, "b1")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b0", "a1", "b1", "a2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCondSignalBroadcast(t *testing.T) {
	s := New()
	c := NewCond(s, "c")
	var got []string
	for _, n := range []string{"w1", "w2", "w3"} {
		name := n
		s.Go(name, func(p *Proc) {
			c.Wait(p)
			got = append(got, name)
		})
	}
	s.After(Us(1), "sig", func() { c.Signal() })
	s.After(Us(2), "bcast", func() { c.Broadcast() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w1", "w2", "w3"} // FIFO
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestTriggerBeforeAndAfterFire(t *testing.T) {
	s := New()
	tr := NewTrigger(s, "done")
	var at1, at2 Time
	s.Go("early", func(p *Proc) {
		tr.Wait(p)
		at1 = p.Now()
	})
	s.After(Us(5), "fire", func() { tr.Fire() })
	s.GoAfter(Us(10), "late", func(p *Proc) {
		tr.Wait(p) // already fired: returns immediately
		at2 = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at1 != Time(Us(5)) {
		t.Fatalf("early woke at %v, want 5us", at1)
	}
	if at2 != Time(Us(10)) {
		t.Fatalf("late woke at %v, want 10us", at2)
	}
	if !tr.Fired() {
		t.Fatal("trigger not marked fired")
	}
}

func TestTriggerDoubleFirePanics(t *testing.T) {
	s := New()
	tr := NewTrigger(s, "x")
	tr.Fire()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double fire")
		}
	}()
	tr.Fire()
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	c := NewCond(s, "never")
	s.Go("stuck", func(p *Proc) { c.Wait(p) })
	if err := s.Run(); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if b.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(7)
	f1 := r.Fork("alpha")
	r2 := NewRNG(7)
	_ = r2.Fork("alpha")
	f3 := NewRNG(7).Fork("beta")
	// Streams from distinct tags should differ.
	eq := 0
	for i := 0; i < 100; i++ {
		if f1.Uint64() == f3.Uint64() {
			eq++
		}
	}
	if eq > 2 {
		t.Fatalf("forked streams correlated: %d/100 equal", eq)
	}
}

func TestRNGUniformMoments(t *testing.T) {
	r := NewRNG(1)
	n := 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	varr := sq/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
	if math.Abs(varr-1.0/12) > 0.01 {
		t.Fatalf("var = %v, want ~1/12", varr)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(2)
	n := 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	varr := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(varr-1) > 0.05 {
		t.Fatalf("normal var = %v, want ~1", varr)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(3)
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(18)
	}
	mean := sum / float64(n)
	if math.Abs(mean-18) > 0.5 {
		t.Fatalf("exp mean = %v, want ~18", mean)
	}
}

func TestJitterMedianAndClamp(t *testing.T) {
	r := NewRNG(4)
	base := Us(10)
	n := 50001
	vals := make([]Duration, n)
	for i := range vals {
		v := r.Jitter(base, 0.3)
		if v < base/2 || v > 8*base {
			t.Fatalf("jitter out of clamp: %v", v)
		}
		vals[i] = v
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	med := vals[n/2]
	if med < base*9/10 || med > base*11/10 {
		t.Fatalf("jitter median = %v, want ~%v", med, base)
	}
}

func TestRNGIntnBytes(t *testing.T) {
	r := NewRNG(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d values", len(seen))
	}
	b := make([]byte, 37)
	r.Bytes(b)
	allZero := true
	for _, x := range b {
		if x != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("Bytes produced all zeros")
	}
}

func TestRecordingTracer(t *testing.T) {
	s := New()
	tr := &RecordingTracer{}
	s.SetTracer(tr)
	s.After(Ns(1), "one", func() {})
	s.After(Ns(2), "two", func() {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2 || tr.Records[0].Name != "one" || tr.Records[1].Name != "two" {
		t.Fatalf("trace = %+v", tr.Records)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			s.After(Ns(1), "rec", rec)
		}
	}
	s.After(Ns(1), "rec", rec)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if s.Now() != Time(Ns(100)) {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestManyProcsDeterministic(t *testing.T) {
	run := func() []string {
		s := New()
		r := NewRNG(99)
		var order []string
		for i := 0; i < 50; i++ {
			name := string(rune('A' + i%26))
			d := Duration(r.Intn(1000)) * Nanosecond
			nm := name
			s.GoAfter(d, nm, func(p *Proc) {
				p.Sleep(Duration(r.Intn(100)) * Nanosecond)
				order = append(order, nm)
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lens %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a, b)
		}
	}
}
