//go:build simrefqueue

package sim

import "container/heap"

// This file is the build-time reference shim for the event queue: the
// original container/heap implementation, selected with
//
//	go test -tags simrefqueue ./...
//
// A run under this tag must be byte-identical to a default-build run —
// same traces, same samples, same metric snapshots (the replay
// fingerprint golden in the root package asserts exactly that). It
// exists so the calendar queue in queue.go can always be cross-checked
// against a dead-simple total order.
type equeue struct{ h refHeap }

func (q *equeue) init() {}

func (q *equeue) push(e *event, now Time) { heap.Push(&q.h, e) }

func (q *equeue) pop(now, limit Time) *event {
	if len(q.h) == 0 || q.h[0].at > limit {
		return nil
	}
	return heap.Pop(&q.h).(*event)
}

func (q *equeue) flushCurr() {}

type refHeap []*event

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(*event)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
