//fvlint:hotpath
package sim

import "fmt"

// Proc is a simulated sequential process (a software thread, a hardware
// finite-state machine, ...). A Proc runs on its own goroutine but with
// strict hand-off: exactly one goroutine — either the scheduler or one
// process — is ever runnable, so execution is fully deterministic.
//
// Inside the process function, the Proc methods Sleep, Wait and Park
// block in *simulated* time by yielding back to the scheduler.
//
// Under Run/RunUntil the hand-off is *chained*: a parking or finishing
// process drains the event queue from its own goroutine (see chainNext)
// instead of bouncing through the scheduler goroutine. Callback events
// execute inline, a wake of the same process coalesces into
// straight-line execution with zero channel operations, and a wake of a
// different process is one direct channel rendezvous instead of two
// plus a Go-scheduler round trip. The event execution order is exactly
// the (at, seq) order either way — only which OS-level goroutine drives
// the dispatch changes, which no simulated observable depends on.
//
// Finished processes are pooled: the goroutine and its hand-off channel
// are reused by the next Go/GoAfter, so per-operation process spawns
// (one per ping, one per interrupt) do not allocate in steady state.
// The spawn generation counter catches the one hazard pooling
// introduces — a stale wake event resuming a recycled process — by
// panicking instead of silently corrupting the schedule.
type Proc struct {
	sim     *Sim
	name    string
	resume  chan struct{}
	fn      func(p *Proc)
	gen     uint32 // spawn generation; bumped when returned to the pool
	why     string // park reason, read by deadlock detection
	parkIdx int    // index in sim.parked while parked
}

// Go spawns a process that starts executing at the current simulation
// time (after already-queued events at this timestamp).
func (s *Sim) Go(name string, fn func(p *Proc)) *Proc {
	return s.GoAfter(0, name, fn)
}

// GoAfter spawns a process that starts after delay d.
func (s *Sim) GoAfter(d Duration, name string, fn func(p *Proc)) *Proc {
	var p *Proc
	if n := len(s.procPool); n > 0 {
		p = s.procPool[n-1]
		s.procPool[n-1] = nil
		s.procPool = s.procPool[:n-1]
		p.name = name
	} else {
		p = &Proc{
			sim:    s,
			name:   name,
			resume: make(chan struct{}),
		}
		go p.loop()
	}
	p.fn = fn
	s.procs++
	s.ResumeAfter(d, "start", p)
	return p
}

// loop is the pooled process goroutine: it runs one body per spawn and
// then blocks on resume until the scheduler hands it a new body.
func (p *Proc) loop() {
	for {
		<-p.resume
		if !p.runBody() {
			// The body (or dispatch chained from it) panicked and the
			// panic was forwarded to the scheduler goroutine; this
			// goroutine's state is gone, so it dies here.
			return
		}
	}
}

// runBody executes one spawned body to completion, then chains through
// the event queue (see chainNext). Model panics — a bus error, an
// unhandled IRQ, a stale resume — must surface from Run/Step on the
// scheduler goroutine no matter which goroutine dispatch happened to be
// running on, so a panic here is captured, parked in sim.trap, and
// control is handed back for the scheduler to re-throw; runBody then
// reports false and the goroutine exits.
func (p *Proc) runBody() (ok bool) {
	s := p.sim
	defer func() {
		if r := recover(); r != nil {
			s.trap = r
			s.stopped = true
			s.yield <- struct{}{}
		}
	}()
	for {
		fn := p.fn
		p.fn = nil
		fn(p)
		s.procs--
		p.gen++
		s.procPool = append(s.procPool, p)
		// Snapshot the dispatch regime while control is still held:
		// once chainNext hands control away on a channel, the scheduler
		// may exit Run and rewrite s.chained concurrently.
		chained := s.chained
		if chained && p.chainNext() {
			// The finished process chained straight into an event
			// that resumes this same goroutine: a callback it ran
			// inline respawned it (LIFO pool reuse) and the start
			// event fired. Run the fresh body without a hand-off.
			continue
		}
		if !chained {
			s.yield <- struct{}{}
		}
		return true
	}
}

// chainNext continues the dispatch loop from this process's goroutine
// after it parks or finishes. It pops and fires events until one of:
//
//   - the next event resumes this very process (the coalesced self-wake
//     fast path): report true, the caller keeps running with zero
//     channel operations;
//   - the next event resumes another process: hand control to it with a
//     single channel send and report false;
//   - nothing runnable remains (or Stop was called): return control to
//     the scheduler goroutine and report false.
//
// Callback events execute inline in the loop. After the first send on
// any channel, this goroutine touches no Sim state — every mutation is
// ordered by the strict hand-off's happens-before edges.
func (p *Proc) chainNext() bool {
	s := p.sim
	for !s.stopped {
		e := s.popLive(s.deadline)
		if e == nil {
			break
		}
		q := s.take(e)
		if q == nil {
			continue
		}
		if q == p {
			return true
		}
		q.resume <- struct{}{}
		return false
	}
	s.yield <- struct{}{}
	return false
}

// park suspends the process until some event resumes it. why should be
// a precomputed string: it is only read if the simulation deadlocks.
// The process registers itself in the parked set *before* giving up
// control, so deadlock detection can never miss it.
func (p *Proc) park(why string) {
	s := p.sim
	p.why = why
	p.parkIdx = len(s.parked)
	s.parked = append(s.parked, p)
	woke := false
	if s.chained {
		woke = p.chainNext()
	} else {
		s.yield <- struct{}{}
	}
	if !woke {
		<-p.resume
	}
	// Swap-remove from the parked set; runs with control held either
	// way (self-wake kept it, resume receive regained it).
	n := len(s.parked) - 1
	last := s.parked[n]
	s.parked[p.parkIdx] = last
	last.parkIdx = p.parkIdx
	s.parked[n] = nil
	s.parked = s.parked[:n]
}

// Park suspends the process until an event resumes it; pair it with
// Sim.ResumeAfter. Exactly one resume must be scheduled per Park — the
// strict hand-off model has no spurious wakeups. why is reported when
// deadlock detection trips.
func (p *Proc) Park(why string) { p.park(why) }

// Name reports the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Sim returns the scheduler this process runs under.
func (p *Proc) Sim() *Sim { return p.sim }

// Now reports the current simulation time.
func (p *Proc) Now() Time { return p.sim.now }

// Sleep suspends the process for d of simulated time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s: negative sleep %v", p.name, d))
	}
	if d == 0 {
		return
	}
	p.sim.atProc(p.sim.now.Add(d), "wake", p)
	p.park("sleeping")
}

// Trigger is a one-shot event: processes that Wait before Fire are
// suspended until it fires; waits after it has fired return immediately.
// It models completions (a DMA finishing, an interrupt being serviced).
// A fired trigger can be re-armed with Reset, so long-lived operations
// reuse one trigger instead of allocating per completion.
type Trigger struct {
	sim      *Sim
	name     string
	parkName string
	fired    bool
	waiters  []*Proc
}

// NewTrigger returns an unfired trigger bound to s.
func NewTrigger(s *Sim, name string) *Trigger {
	return &Trigger{sim: s, name: name, parkName: s.internName("trigger:", name)}
}

// Fired reports whether the trigger has fired.
func (t *Trigger) Fired() bool { return t.fired }

// Wait suspends p until the trigger fires. If it already fired, Wait
// returns immediately without yielding.
func (t *Trigger) Wait(p *Proc) {
	if t.fired {
		return
	}
	t.waiters = append(t.waiters, p)
	p.park(t.parkName)
}

// Fire marks the trigger fired and wakes all waiters in FIFO order.
// Firing twice panics: a completion happens once.
func (t *Trigger) Fire() {
	if t.fired {
		panic("sim: trigger " + t.name + " fired twice")
	}
	t.fired = true
	for i, p := range t.waiters {
		t.sim.atProc(t.sim.now, "fire", p)
		t.waiters[i] = nil
	}
	t.waiters = t.waiters[:0]
}

// Reset re-arms a fired trigger for reuse. Resetting with waiters still
// parked panics: they would wait for a completion that already passed.
func (t *Trigger) Reset() {
	if len(t.waiters) != 0 {
		panic("sim: trigger " + t.name + " reset with parked waiters")
	}
	t.fired = false
}

// Cond is a condition variable for processes. The zero value is unusable;
// create with NewCond.
type Cond struct {
	sim      *Sim
	name     string
	parkName string
	waiters  []*Proc
}

// NewCond returns a condition variable bound to s.
func NewCond(s *Sim, name string) *Cond {
	return &Cond{sim: s, name: name, parkName: s.internName("wait:", name)}
}

// Wait suspends p until Broadcast or Signal. Spurious wakeups do not
// occur, but callers that wait on shared state should still re-check
// their predicate in a loop, as several waiters may be released at once.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park(c.parkName)
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	n := copy(c.waiters, c.waiters[1:])
	c.waiters[n] = nil
	c.waiters = c.waiters[:n]
	c.sim.atProc(c.sim.now, "signal", p)
}

// Broadcast wakes all waiting processes in FIFO order.
func (c *Cond) Broadcast() {
	for i, p := range c.waiters {
		c.sim.atProc(c.sim.now, "broadcast", p)
		c.waiters[i] = nil
	}
	c.waiters = c.waiters[:0]
}

// Waiters reports how many processes are blocked on c.
func (c *Cond) Waiters() int { return len(c.waiters) }
