package sim

import "fmt"

// Proc is a simulated sequential process (a software thread, a hardware
// finite-state machine, ...). A Proc runs on its own goroutine but with
// strict hand-off: exactly one goroutine — either the scheduler or one
// process — is ever runnable, so execution is fully deterministic.
//
// Inside the process function, the Proc methods Sleep, Wait and Park
// block in *simulated* time by yielding back to the scheduler.
type Proc struct {
	sim    *Sim
	name   string
	resume chan struct{}
	yield  chan struct{}
	done   bool
}

// Go spawns a process that starts executing at the current simulation
// time (after already-queued events at this timestamp).
func (s *Sim) Go(name string, fn func(p *Proc)) *Proc {
	return s.GoAfter(0, name, fn)
}

// GoAfter spawns a process that starts after delay d.
func (s *Sim) GoAfter(d Duration, name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		sim:    s,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	s.procs++
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		s.procs--
		p.yield <- struct{}{}
	}()
	s.After(d, "start:"+name, func() { p.run() })
	return p
}

// run transfers control to the process until it parks or finishes.
// Must be called from the scheduler goroutine (inside an event).
func (p *Proc) run() {
	p.resume <- struct{}{}
	<-p.yield
}

// park suspends the process; control returns to the scheduler. The
// process stays suspended until some event calls run again.
func (p *Proc) park(why string) {
	p.sim.parked[p] = p.name + ": " + why
	p.yield <- struct{}{}
	<-p.resume
	delete(p.sim.parked, p)
}

// Name reports the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Sim returns the scheduler this process runs under.
func (p *Proc) Sim() *Sim { return p.sim }

// Now reports the current simulation time.
func (p *Proc) Now() Time { return p.sim.now }

// Sleep suspends the process for d of simulated time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s: negative sleep %v", p.name, d))
	}
	if d == 0 {
		return
	}
	p.sim.After(d, "wake:"+p.name, func() { p.run() })
	p.park("sleeping")
}

// Trigger is a one-shot event: processes that Wait before Fire are
// suspended until it fires; waits after it has fired return immediately.
// It models completions (a DMA finishing, an interrupt being serviced).
type Trigger struct {
	sim     *Sim
	name    string
	fired   bool
	waiters []*Proc
}

// NewTrigger returns an unfired trigger bound to s.
func NewTrigger(s *Sim, name string) *Trigger {
	return &Trigger{sim: s, name: name}
}

// Fired reports whether the trigger has fired.
func (t *Trigger) Fired() bool { return t.fired }

// Wait suspends p until the trigger fires. If it already fired, Wait
// returns immediately without yielding.
func (t *Trigger) Wait(p *Proc) {
	if t.fired {
		return
	}
	t.waiters = append(t.waiters, p)
	p.park("trigger:" + t.name)
}

// Fire marks the trigger fired and wakes all waiters in FIFO order.
// Firing twice panics: a completion happens once.
func (t *Trigger) Fire() {
	if t.fired {
		panic("sim: trigger " + t.name + " fired twice")
	}
	t.fired = true
	for _, p := range t.waiters {
		q := p
		t.sim.After(0, "fire:"+t.name, func() { q.run() })
	}
	t.waiters = nil
}

// Cond is a condition variable for processes. The zero value is unusable;
// create with NewCond.
type Cond struct {
	sim     *Sim
	name    string
	waiters []*Proc
}

// NewCond returns a condition variable bound to s.
func NewCond(s *Sim, name string) *Cond {
	return &Cond{sim: s, name: name}
}

// Wait suspends p until Broadcast or Signal. Spurious wakeups do not
// occur, but callers that wait on shared state should still re-check
// their predicate in a loop, as several waiters may be released at once.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park("wait:" + c.name)
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.sim.After(0, "signal:"+c.name, func() { p.run() })
}

// Broadcast wakes all waiting processes in FIFO order.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, p := range ws {
		q := p
		c.sim.After(0, "broadcast:"+c.name, func() { q.run() })
	}
}

// Waiters reports how many processes are blocked on c.
func (c *Cond) Waiters() int { return len(c.waiters) }
