package sim

import "testing"

func TestRecordingTracerDropped(t *testing.T) {
	s := New()
	tr := &RecordingTracer{Max: 2}
	s.SetTracer(tr)
	for i := 0; i < 5; i++ {
		s.After(Duration(i+1)*Nanosecond, "ev", func() {})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2 {
		t.Fatalf("records = %d, want 2 (capped)", len(tr.Records))
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3", tr.Dropped())
	}
}

type sinkLog struct {
	begins []string
	ends   []uint64
	next   uint64
}

func (l *sinkLog) SpanBegin(at Time, layer, name string, attrs ...string) uint64 {
	l.next++
	l.begins = append(l.begins, layer+"/"+name)
	return l.next
}
func (l *sinkLog) SpanEnd(at Time, id uint64) { l.ends = append(l.ends, id) }

func TestBeginSpanWithAndWithoutSink(t *testing.T) {
	s := New()
	// No sink: zero SpanRef, End is a safe no-op.
	s.BeginSpan("driver", "noop").End()

	l := &sinkLog{}
	s.SetSpanSink(l)
	ref := s.BeginSpan("driver", "xmit", "q", "0")
	ref.End()
	s.SetSpanSink(nil)
	// End after the sink is removed must not panic or reach the sink.
	ref.End()

	if len(l.begins) != 1 || l.begins[0] != "driver/xmit" {
		t.Fatalf("begins = %v", l.begins)
	}
	if len(l.ends) != 1 || l.ends[0] != 1 {
		t.Fatalf("ends = %v", l.ends)
	}
}
