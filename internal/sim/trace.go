package sim

import (
	"fmt"
	"io"
)

// RecordingTracer stores every executed event; useful in tests that
// assert ordering, and for offline latency attribution.
type RecordingTracer struct {
	Records []TraceRecord
	Max     int // 0 = unlimited
}

// TraceRecord is a single executed event.
type TraceRecord struct {
	At   Time
	Name string
}

// Event implements Tracer.
func (t *RecordingTracer) Event(at Time, name string) {
	if t.Max > 0 && len(t.Records) >= t.Max {
		return
	}
	t.Records = append(t.Records, TraceRecord{at, name})
}

// WriterTracer streams events to an io.Writer as they execute.
type WriterTracer struct{ W io.Writer }

// Event implements Tracer.
func (t WriterTracer) Event(at Time, name string) {
	fmt.Fprintf(t.W, "%12.3fus  %s\n", at.Microseconds(), name)
}
