package sim

import (
	"fmt"
	"io"
)

// RecordingTracer stores every executed event; useful in tests that
// assert ordering, and for offline latency attribution. When Max is
// set and reached, further events are counted as dropped instead of
// silently vanishing — callers should check Dropped before treating
// the record slice as complete.
type RecordingTracer struct {
	Records []TraceRecord
	Max     int // 0 = unlimited

	dropped int
}

// TraceRecord is a single executed event.
type TraceRecord struct {
	At   Time
	Name string
}

// Event implements Tracer.
func (t *RecordingTracer) Event(at Time, name string) {
	if t.Max > 0 && len(t.Records) >= t.Max {
		t.dropped++
		return
	}
	t.Records = append(t.Records, TraceRecord{at, name})
}

// Dropped reports how many events were discarded because the Max cap
// was reached. A non-zero value means Records is an incomplete trace.
func (t *RecordingTracer) Dropped() int { return t.dropped }

// WriterTracer streams events to an io.Writer as they execute.
type WriterTracer struct{ W io.Writer }

// Event implements Tracer.
func (t WriterTracer) Event(at Time, name string) {
	fmt.Fprintf(t.W, "%12.3fus  %s\n", at.Microseconds(), name)
}

// SpanSink receives begin/end notifications for layer-attributed
// spans. Unlike Tracer, which sees every scheduled event by name, a
// SpanSink sees intervals: model code brackets meaningful work
// (a syscall, an ISR, a DMA engine run) with BeginSpan/End so a
// breakdown falls out of a fold over spans rather than string parsing.
//
// SpanBegin returns an opaque id that the matching SpanEnd presents.
// Implementations must tolerate SpanEnd for unknown ids (a sink
// installed mid-interval sees unmatched ends).
type SpanSink interface {
	SpanBegin(at Time, layer, name string, attrs ...string) uint64
	SpanEnd(at Time, id uint64)
}

// SetSpanSink installs ss as the span sink (nil disables span
// tracing). Span emission is a pure recording hook: it never schedules
// events and cannot perturb simulation timing.
func (s *Sim) SetSpanSink(ss SpanSink) { s.spans = ss }

// TracingSpans reports whether a span sink is installed; call sites
// that would allocate to build span attributes should check it first.
func (s *Sim) TracingSpans() bool { return s.spans != nil }

// SpanRef is a handle to an in-flight span. The zero value (returned
// when no sink is installed) is valid and End on it is a no-op.
type SpanRef struct {
	s  *Sim
	id uint64
}

// BeginSpan opens a span at the current simulation time. attrs are
// alternating key/value pairs.
func (s *Sim) BeginSpan(layer, name string, attrs ...string) SpanRef {
	if s.spans == nil {
		return SpanRef{}
	}
	return SpanRef{s: s, id: s.spans.SpanBegin(s.now, layer, name, attrs...)}
}

// End closes the span at the current simulation time. Safe to call on
// the zero SpanRef or after the sink was removed.
func (r SpanRef) End() {
	if r.s != nil && r.s.spans != nil {
		r.s.spans.SpanEnd(r.s.now, r.id)
	}
}
