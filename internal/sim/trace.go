package sim

import (
	"fmt"
	"io"
)

// RecordingTracer stores every executed event; useful in tests that
// assert ordering, and for offline latency attribution. When Max is
// set and reached, further events are counted as dropped instead of
// silently vanishing — callers should check Dropped before treating
// the record slice as complete.
type RecordingTracer struct {
	Records []TraceRecord
	Max     int // 0 = unlimited

	dropped int
}

// TraceRecord is a single executed event.
type TraceRecord struct {
	At   Time
	Name string
}

// Event implements Tracer.
func (t *RecordingTracer) Event(at Time, name string) {
	if t.Max > 0 && len(t.Records) >= t.Max {
		t.dropped++
		return
	}
	t.Records = append(t.Records, TraceRecord{at, name})
}

// Dropped reports how many events were discarded because the Max cap
// was reached. A non-zero value means Records is an incomplete trace.
func (t *RecordingTracer) Dropped() int { return t.dropped }

// WriterTracer streams events to an io.Writer as they execute.
type WriterTracer struct{ W io.Writer }

// Event implements Tracer.
func (t WriterTracer) Event(at Time, name string) {
	fmt.Fprintf(t.W, "%12.3fus  %s\n", at.Microseconds(), name)
}

// SpanSink receives begin/end notifications for layer-attributed
// spans. Unlike Tracer, which sees every scheduled event by name, a
// SpanSink sees intervals: model code brackets meaningful work
// (a syscall, an ISR, a DMA engine run) with BeginSpan/End so a
// breakdown falls out of a fold over spans rather than string parsing.
//
// SpanBegin returns an opaque id that the matching SpanEnd presents.
// Implementations must tolerate SpanEnd for unknown ids (a sink
// installed mid-interval sees unmatched ends).
type SpanSink interface {
	SpanBegin(at Time, layer, name string, attrs ...string) uint64
	SpanEnd(at Time, id uint64)
}

// SetSpanSink installs ss as the span sink (nil disables span
// tracing). Span emission is a pure recording hook: it never schedules
// events and cannot perturb simulation timing.
func (s *Sim) SetSpanSink(ss SpanSink) { s.spans = ss }

// TracingSpans reports whether a span sink is installed; call sites
// that would allocate to build span attributes should check it first.
func (s *Sim) TracingSpans() bool { return s.spans != nil }

// FlightSink is the always-on sibling of SpanSink: a bounded,
// allocation-free recorder of recent spans (a flight recorder).
// Unlike SpanSink — whose installation flips TracingSpans() and lets
// hot paths take allocating verbose branches — a FlightSink stays
// installed for a session's whole life, so every method MUST be
// allocation-free in steady state. BeginSpan/End feed both sinks;
// FlightClosed additionally receives the closed wire-layer spans the
// fast TLP path composes without strings.
type FlightSink interface {
	FlightBegin(at Time, layer, name string) uint64
	FlightEnd(at Time, id uint64)
	// FlightClosed records an already-closed span. dir is an optional
	// direction qualifier ("down"/"up" for wire spans), "" otherwise.
	FlightClosed(at Time, layer, dir, name string, start, end Time)
}

// SetFlightSink installs fs as the flight sink (nil disables flight
// recording). Like span emission, flight recording is a pure hook: it
// never schedules events and cannot perturb simulation timing.
func (s *Sim) SetFlightSink(fs FlightSink) { s.flight = fs }

// FlightRecording reports whether a flight sink is installed.
func (s *Sim) FlightRecording() bool { return s.flight != nil }

// FlightClosed forwards an already-closed span to the flight sink, if
// one is installed. Hot paths that know a span's endpoints up front
// (the wire layer prices queue+serialization+flight when the TLP is
// queued) use it to feed the flight recorder without the allocating
// name composition the verbose span path performs.
func (s *Sim) FlightClosed(layer, dir, name string, start, end Time) {
	if s.flight != nil {
		s.flight.FlightClosed(s.now, layer, dir, name, start, end)
	}
}

// SpanRef is a handle to an in-flight span. The zero value (returned
// when no sink is installed) is valid and End on it is a no-op.
type SpanRef struct {
	s   *Sim
	id  uint64
	fid uint64
}

// BeginSpan opens a span at the current simulation time. attrs are
// alternating key/value pairs. The span is emitted to the span sink
// and the flight sink independently; either may be absent.
func (s *Sim) BeginSpan(layer, name string, attrs ...string) SpanRef {
	var r SpanRef
	if s.spans != nil {
		r.s = s
		r.id = s.spans.SpanBegin(s.now, layer, name, attrs...)
	}
	if s.flight != nil {
		r.s = s
		r.fid = s.flight.FlightBegin(s.now, layer, name)
	}
	return r
}

// End closes the span at the current simulation time. Safe to call on
// the zero SpanRef or after the sink was removed.
func (r SpanRef) End() {
	if r.s == nil {
		return
	}
	if r.s.spans != nil && r.id != 0 {
		r.s.spans.SpanEnd(r.s.now, r.id)
	}
	if r.s.flight != nil && r.fid != 0 {
		r.s.flight.FlightEnd(r.s.now, r.fid)
	}
}
