package sim

import "math"

// RNG is a deterministic xoshiro256** pseudo-random generator. Each
// stochastic model component owns its own RNG (seeded from a master
// seed plus a component tag) so that adding a component never perturbs
// the random stream seen by the others.
type RNG struct {
	s [4]uint64
}

// splitmix64 expands a seed into well-distributed state words.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Fork derives an independent generator from r and a tag. Forks with
// distinct tags produce decorrelated streams.
func (r *RNG) Fork(tag string) *RNG {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(tag); i++ {
		h ^= uint64(tag[i])
		h *= 1099511628211
	}
	return NewRNG(r.Uint64() ^ h)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Normal returns a standard normal variate (Box–Muller, polar form
// avoided to keep consumption deterministic at two uniforms per call).
func (r *RNG) Normal() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns exp(N(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Normal())
}

// Exp returns an exponential variate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Jitter scales d by a lognormal factor with median 1 and the given
// sigma (in log space), clamped to [0.5x, 8x] so a single sample cannot
// dominate an experiment unrealistically.
func (r *RNG) Jitter(d Duration, sigma float64) Duration {
	f := r.LogNormal(0, sigma)
	if f < 0.5 {
		f = 0.5
	}
	if f > 8 {
		f = 8
	}
	return Duration(float64(d) * f)
}

// Bytes fills b with random bytes.
func (r *RNG) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}
