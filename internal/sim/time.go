// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time advances in integer picoseconds so that both the host clock
// (1 ns resolution in the paper's testbed) and the 125 MHz FPGA fabric
// clock (8 ns period) are exactly representable. All scheduling is
// totally ordered by (time, sequence number), so a simulation run is a
// pure function of its inputs and RNG seeds.
package sim

import "fmt"

// Time is an absolute simulation timestamp in picoseconds.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common duration units.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000 * Picosecond
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Ns returns a Duration of n nanoseconds.
func Ns(n int64) Duration { return Duration(n) * Nanosecond }

// Us returns a Duration of n microseconds.
func Us(n int64) Duration { return Duration(n) * Microsecond }

// Ms returns a Duration of n milliseconds.
func Ms(n int64) Duration { return Duration(n) * Millisecond }

// NsF converts a floating-point nanosecond count to a Duration,
// rounding to the nearest picosecond.
func NsF(ns float64) Duration { return Duration(ns*1000 + 0.5) }

// UsF converts a floating-point microsecond count to a Duration.
func UsF(us float64) Duration { return NsF(us * 1000) }

// Nanoseconds reports d as a floating-point number of nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Microseconds reports d as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// String formats a Duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%.3gns", d.Nanoseconds())
	case d < Millisecond:
		return fmt.Sprintf("%.4gus", d.Microseconds())
	default:
		return fmt.Sprintf("%.6gms", float64(d)/float64(Millisecond))
	}
}

// Nanoseconds reports t as a floating-point nanosecond timestamp.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a floating-point microsecond timestamp.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Add offsets a timestamp by a duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Quantize rounds t down to a multiple of step (e.g. an 8 ns hardware
// counter tick). step must be positive.
func (t Time) Quantize(step Duration) Time {
	if step <= 0 {
		panic("sim: Quantize step must be positive")
	}
	return t - t%Time(step)
}

// String formats the timestamp in microseconds.
func (t Time) String() string { return fmt.Sprintf("t=%.3fus", t.Microseconds()) }
