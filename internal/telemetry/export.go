package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteMetricsJSON dumps a metric snapshot as a JSON array.
func WriteMetricsJSON(w io.Writer, snaps []MetricSnapshot) error {
	if snaps == nil {
		snaps = []MetricSnapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snaps)
}

// WriteMetricsCSV dumps a metric snapshot as CSV. Histograms flatten
// to one row per bucket plus a summary row.
func WriteMetricsCSV(w io.Writer, snaps []MetricSnapshot) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "type", "value", "count", "sum", "le"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, s := range snaps {
		switch s.Type {
		case "histogram", "hdrhistogram":
			if err := cw.Write([]string{s.Name, s.Type, "", strconv.FormatInt(s.Count, 10), f(s.Sum), ""}); err != nil {
				return err
			}
			for _, b := range s.Buckets {
				le := "inf"
				if !math.IsInf(b.UpperBound, 1) {
					le = f(b.UpperBound)
				}
				if err := cw.Write([]string{s.Name, "bucket", "", strconv.FormatInt(b.Count, 10), "", le}); err != nil {
					return err
				}
			}
		default:
			if err := cw.Write([]string{s.Name, s.Type, f(s.Value), "", "", ""}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// BenchSchema identifies the bench-artifact JSON layout. Bump on
// incompatible changes so downstream readers can dispatch.
const BenchSchema = "fvbench/v1"

// BenchPoint is one (driver, payload) measurement in a bench
// artifact: the percentile table of the total-latency series plus the
// decomposed means, all in nanoseconds.
type BenchPoint struct {
	Driver string `json:"driver"`
	// Datapath tags how completions were discovered: "poll" for the
	// busy-poll variants, "" (omitted) for the interrupt-driven default
	// — keeping pre-poll artifacts byte-identical.
	Datapath   string `json:"datapath,omitempty"`
	Payload    int    `json:"payload_bytes"`
	Count      int    `json:"count"`
	MeanNs     int64  `json:"mean_ns"`
	StdNs      int64  `json:"std_ns"`
	MinNs      int64  `json:"min_ns"`
	P25Ns      int64  `json:"p25_ns"`
	P50Ns      int64  `json:"p50_ns"`
	P75Ns      int64  `json:"p75_ns"`
	P95Ns      int64  `json:"p95_ns"`
	P99Ns      int64  `json:"p99_ns"`
	P999Ns     int64  `json:"p999_ns"`
	MaxNs      int64  `json:"max_ns"`
	SWMeanNs   int64  `json:"sw_mean_ns"`
	HWMeanNs   int64  `json:"hw_mean_ns"`
	RGMeanNs   int64  `json:"rg_mean_ns"`
	Interrupts int    `json:"interrupts"`
	// Faulted counts round trips excluded from the percentile series
	// because a fault was injected while they were in flight. Zero (and
	// omitted from JSON) on fault-free runs, so the artifact stays
	// byte-identical to pre-fault-injection builds.
	Faulted int `json:"faulted,omitempty"`
}

// FaultSummary is the run-level fault-injection record of a bench
// artifact: the armed plan and the aggregated injection/recovery
// counters summed over every session the run opened.
type FaultSummary struct {
	// Plan is the canonical plan string the run was armed with.
	Plan string `json:"plan"`
	// Injected maps fault class -> total injections across the run.
	Injected map[string]int64 `json:"injected"`
	// Total is the sum of Injected.
	Total int64 `json:"total"`
	// Recovery maps recovery.* metric name -> total count across the
	// run (driver resets, watchdog interventions, requeues, retries).
	Recovery map[string]int64 `json:"recovery,omitempty"`
	// FaultedSamples is the number of round trips flagged and excluded
	// across all points.
	FaultedSamples int `json:"faulted_samples"`
}

// ThroughputPoint is one (driver, payload, configuration) streaming
// measurement in a bench artifact: rates, queue behaviour, and the
// signalling totals of the run.
type ThroughputPoint struct {
	Driver string `json:"driver"`
	// Datapath is "poll" for busy-poll runs, "" for interrupt mode.
	Datapath string `json:"datapath,omitempty"`
	Payload  int    `json:"payload_bytes"`
	Packets  int    `json:"packets"`
	Window   int    `json:"window"`
	// Suppressed marks the kick-suppression arm of a comparison pair
	// (event-index doorbells plus batched TX kicks).
	Suppressed bool    `json:"suppressed"`
	ElapsedNs  int64   `json:"elapsed_ns"`
	PPS        float64 `json:"pps"`
	GoodputBps float64 `json:"goodput_bps"`
	// OccupancyMax/OccupancyMean describe the in-flight request window
	// the stream actually sustained.
	OccupancyMax  int     `json:"occupancy_max"`
	OccupancyMean float64 `json:"occupancy_mean"`
	Drops         int     `json:"drops"`
	Backpressure  int     `json:"backpressure"`
	Doorbells     int     `json:"doorbells"`
	Interrupts    int     `json:"interrupts"`
}

// TailLayer is one layer's share of a tail sample's critical path.
type TailLayer struct {
	Layer string `json:"layer"`
	Ns    int64  `json:"ns"`
	// Share is Ns over the sample's critical-path total, in [0, 1].
	Share float64 `json:"share"`
}

// TailSample is the full critical-path attribution of one tail-ranked
// round trip: where every nanosecond of that specific packet's RTT
// went, layer by layer.
type TailSample struct {
	// Rank names the tail position: "p99", "p99.9", or "max".
	Rank string `json:"rank"`
	// Index is the 0-based series loop index of the replayed round
	// trip — the same index a deterministic re-run reproduces it at.
	Index int `json:"index"`
	// RTTNs is the round trip's measured latency from the percentile
	// series.
	RTTNs int64 `json:"rtt_ns"`
	// SumNs is the critical-path partition total. It must match RTTNs
	// to within the sim's nanosecond counter quantum.
	SumNs  int64       `json:"sum_ns"`
	Layers []TailLayer `json:"layers"`
}

// TailPoint groups the attributed tail samples of one (driver,
// payload) latency point.
type TailPoint struct {
	Driver  string       `json:"driver"`
	Payload int          `json:"payload_bytes"`
	Samples []TailSample `json:"samples"`
}

// tailQuantumNs is the tolerance (in ns) allowed between a tail
// sample's measured RTT and its critical-path sum: the sessions
// quantize clock reads to sim.Nanosecond, so replayed span windows can
// differ from counter deltas by at most a few quanta of rounding.
const tailQuantumNs = 8

// BenchArtifact is the machine-readable record of one fvbench run.
// Latency experiments fill Points; the throughput mode fills Throughput
// (and, via its window=1 arm, may fill Points too). Both extensions
// stay within the fvbench/v1 schema: readers that only know Points
// still parse throughput artifacts.
type BenchArtifact struct {
	Schema     string            `json:"schema"`
	Experiment string            `json:"experiment"`
	Seed       uint64            `json:"seed"`
	Packets    int               `json:"packets"`
	Link       string            `json:"link"`
	Mode       string            `json:"mode,omitempty"`
	Points     []BenchPoint      `json:"points,omitempty"`
	Throughput []ThroughputPoint `json:"throughput,omitempty"`
	// Faults summarizes fault injection and driver recovery when the
	// run was armed with a plan; nil (and absent from JSON) otherwise.
	Faults *FaultSummary `json:"faults,omitempty"`
	// TailAttribution carries the per-point critical-path decomposition
	// of the tail samples (p99, p99.9, max) when the run performed the
	// tail-replay pass; empty otherwise.
	TailAttribution []TailPoint      `json:"tail_attribution,omitempty"`
	Metrics         []MetricSnapshot `json:"metrics,omitempty"`
}

// WriteBenchJSON validates the artifact and writes it as indented JSON.
func WriteBenchJSON(w io.Writer, a *BenchArtifact) error {
	if err := a.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// WriteBenchCSV writes the artifact's points as CSV.
func WriteBenchCSV(w io.Writer, a *BenchArtifact) error {
	if err := a.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"driver", "datapath", "payload_bytes", "count", "mean_ns", "std_ns", "min_ns",
		"p25_ns", "p50_ns", "p75_ns", "p95_ns", "p99_ns", "p999_ns", "max_ns",
		"sw_mean_ns", "hw_mean_ns", "rg_mean_ns", "interrupts", "faulted",
	}); err != nil {
		return err
	}
	d := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, p := range a.Points {
		if err := cw.Write([]string{
			p.Driver, datapathCSV(p.Datapath), strconv.Itoa(p.Payload), strconv.Itoa(p.Count),
			d(p.MeanNs), d(p.StdNs), d(p.MinNs),
			d(p.P25Ns), d(p.P50Ns), d(p.P75Ns), d(p.P95Ns), d(p.P99Ns), d(p.P999Ns), d(p.MaxNs),
			d(p.SWMeanNs), d(p.HWMeanNs), d(p.RGMeanNs), strconv.Itoa(p.Interrupts),
			strconv.Itoa(p.Faulted),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteThroughputCSV writes the artifact's throughput points as CSV.
func WriteThroughputCSV(w io.Writer, a *BenchArtifact) error {
	if err := a.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"driver", "datapath", "payload_bytes", "packets", "window", "suppressed",
		"elapsed_ns", "pps", "goodput_bps", "occupancy_max", "occupancy_mean",
		"drops", "backpressure", "doorbells", "interrupts",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, p := range a.Throughput {
		if err := cw.Write([]string{
			p.Driver, datapathCSV(p.Datapath), strconv.Itoa(p.Payload), strconv.Itoa(p.Packets),
			strconv.Itoa(p.Window), strconv.FormatBool(p.Suppressed),
			strconv.FormatInt(p.ElapsedNs, 10), f(p.PPS), f(p.GoodputBps),
			strconv.Itoa(p.OccupancyMax), f(p.OccupancyMean),
			strconv.Itoa(p.Drops), strconv.Itoa(p.Backpressure),
			strconv.Itoa(p.Doorbells), strconv.Itoa(p.Interrupts),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// datapathCSV spells the datapath axis in CSV rows, where an empty
// cell would be ambiguous.
func datapathCSV(d string) string {
	if d == "" {
		return "irq"
	}
	return d
}

// validDatapath checks the datapath tag of a point.
func validDatapath(d string) bool { return d == "" || d == "poll" }

// Validate checks structural invariants of the artifact.
func (a *BenchArtifact) Validate() error {
	if a.Schema != BenchSchema {
		return fmt.Errorf("bench artifact: schema %q, want %q", a.Schema, BenchSchema)
	}
	if a.Experiment == "" {
		return fmt.Errorf("bench artifact: empty experiment name")
	}
	if len(a.Points) == 0 && len(a.Throughput) == 0 {
		return fmt.Errorf("bench artifact: no points")
	}
	for i, p := range a.Throughput {
		if p.Driver == "" {
			return fmt.Errorf("bench artifact: throughput point %d: empty driver", i)
		}
		if !validDatapath(p.Datapath) {
			return fmt.Errorf("bench artifact: throughput point %d: unknown datapath %q", i, p.Datapath)
		}
		if p.Payload <= 0 {
			return fmt.Errorf("bench artifact: throughput point %d: payload %d", i, p.Payload)
		}
		if p.Packets <= 0 {
			return fmt.Errorf("bench artifact: throughput point %d: packets %d", i, p.Packets)
		}
		if p.Window <= 0 {
			return fmt.Errorf("bench artifact: throughput point %d: window %d", i, p.Window)
		}
		if p.ElapsedNs <= 0 || p.PPS <= 0 || p.GoodputBps <= 0 {
			return fmt.Errorf("bench artifact: throughput point %d: non-positive rate", i)
		}
		// Pipelined paths (double-buffered XDMA batches) can hold up to
		// two windows in flight, so the cap is 2*Window, not Window.
		if p.OccupancyMax < 1 || p.OccupancyMax > 2*p.Window ||
			p.OccupancyMean <= 0 || p.OccupancyMean > float64(p.OccupancyMax) {
			return fmt.Errorf("bench artifact: throughput point %d: occupancy out of range", i)
		}
		if p.Drops < 0 || p.Backpressure < 0 || p.Doorbells < 0 || p.Interrupts < 0 {
			return fmt.Errorf("bench artifact: throughput point %d: negative counter", i)
		}
	}
	for i, p := range a.Points {
		if p.Driver == "" {
			return fmt.Errorf("bench artifact: point %d: empty driver", i)
		}
		if !validDatapath(p.Datapath) {
			return fmt.Errorf("bench artifact: point %d: unknown datapath %q", i, p.Datapath)
		}
		if p.Payload <= 0 {
			return fmt.Errorf("bench artifact: point %d: payload %d", i, p.Payload)
		}
		if p.Count <= 0 {
			return fmt.Errorf("bench artifact: point %d: count %d", i, p.Count)
		}
		if p.MeanNs <= 0 || p.MinNs <= 0 || p.MaxNs <= 0 {
			return fmt.Errorf("bench artifact: point %d: non-positive latency", i)
		}
		if p.MinNs > p.P50Ns || p.P50Ns > p.P95Ns || p.P95Ns > p.P99Ns ||
			p.P99Ns > p.P999Ns || p.P999Ns > p.MaxNs {
			return fmt.Errorf("bench artifact: point %d: percentiles not monotone", i)
		}
		if p.SWMeanNs < 0 || p.HWMeanNs < 0 || p.RGMeanNs < 0 {
			return fmt.Errorf("bench artifact: point %d: negative breakdown component", i)
		}
		if p.Faulted < 0 {
			return fmt.Errorf("bench artifact: point %d: negative faulted count", i)
		}
		if p.Faulted > 0 && a.Faults == nil {
			return fmt.Errorf("bench artifact: point %d: faulted samples without a fault summary", i)
		}
	}
	if f := a.Faults; f != nil {
		if f.Plan == "" {
			return fmt.Errorf("bench artifact: fault summary without a plan")
		}
		var sum int64
		for class, n := range f.Injected {
			if n < 0 {
				return fmt.Errorf("bench artifact: fault class %q: negative injection count", class)
			}
			sum += n
		}
		if f.Total != sum {
			return fmt.Errorf("bench artifact: fault total %d != per-class sum %d", f.Total, sum)
		}
		for name, n := range f.Recovery {
			if n < 0 {
				return fmt.Errorf("bench artifact: recovery counter %q negative", name)
			}
		}
		faulted := 0
		for _, p := range a.Points {
			faulted += p.Faulted
		}
		if f.FaultedSamples != faulted {
			return fmt.Errorf("bench artifact: fault summary reports %d faulted samples, points carry %d",
				f.FaultedSamples, faulted)
		}
	}
	for i, tp := range a.TailAttribution {
		if tp.Driver == "" {
			return fmt.Errorf("bench artifact: tail point %d: empty driver", i)
		}
		if tp.Payload <= 0 {
			return fmt.Errorf("bench artifact: tail point %d: payload %d", i, tp.Payload)
		}
		if len(tp.Samples) == 0 {
			return fmt.Errorf("bench artifact: tail point %d: no samples", i)
		}
		for j, ts := range tp.Samples {
			switch ts.Rank {
			case "p99", "p99.9", "max":
			default:
				return fmt.Errorf("bench artifact: tail point %d sample %d: unknown rank %q", i, j, ts.Rank)
			}
			if ts.Index < 0 {
				return fmt.Errorf("bench artifact: tail point %d sample %d: negative index", i, j)
			}
			if ts.RTTNs <= 0 || ts.SumNs <= 0 {
				return fmt.Errorf("bench artifact: tail point %d sample %d: non-positive latency", i, j)
			}
			if len(ts.Layers) == 0 {
				return fmt.Errorf("bench artifact: tail point %d sample %d: no layers", i, j)
			}
			var sum int64
			for _, l := range ts.Layers {
				if l.Layer == "" {
					return fmt.Errorf("bench artifact: tail point %d sample %d: empty layer", i, j)
				}
				if l.Ns < 0 {
					return fmt.Errorf("bench artifact: tail point %d sample %d: layer %q negative", i, j, l.Layer)
				}
				sum += l.Ns
			}
			// The critical path partitions the app window exactly, so
			// the layer sum must reproduce SumNs with no slack at all.
			if sum != ts.SumNs {
				return fmt.Errorf("bench artifact: tail point %d sample %d: layers sum %d != sum_ns %d",
					i, j, sum, ts.SumNs)
			}
			// SumNs vs the measured RTT may differ by clock quantization
			// only.
			if d := ts.SumNs - ts.RTTNs; d > tailQuantumNs || d < -tailQuantumNs {
				return fmt.Errorf("bench artifact: tail point %d sample %d: sum_ns %d vs rtt_ns %d exceeds %dns quantum",
					i, j, ts.SumNs, ts.RTTNs, tailQuantumNs)
			}
		}
	}
	return nil
}

// ValidateBenchJSON parses data and checks it against the artifact
// schema. Used by the CI smoke run on fvbench -json output.
func ValidateBenchJSON(data []byte) error {
	var a BenchArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return fmt.Errorf("bench artifact: %w", err)
	}
	return a.Validate()
}
