package telemetry

import (
	"go/ast"
	"go/parser"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// nameShape is the canonical metric-name grammar: at least two
// dot-separated lower-case segments (letters, digits, underscore,
// dash), owning layer first.
var nameShape = regexp.MustCompile(`^[a-z][a-z0-9_-]*(\.[a-z0-9_-]+)+$`)

// TestMetricNameShape parses names.go and checks every Metric* constant
// against the grammar the file's header documents. Parsing the source
// (rather than listing the constants here) means a new constant is
// covered the moment it is added.
func TestMetricNameShape(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "names.go", nil, 0)
	if err != nil {
		t.Fatalf("parse names.go: %v", err)
	}
	checked := 0
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			for i, name := range vs.Names {
				if !strings.HasPrefix(name.Name, "Metric") {
					t.Errorf("constant %s in names.go lacks the Metric prefix", name.Name)
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					t.Errorf("constant %s is not a string literal", name.Name)
					continue
				}
				val, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Errorf("constant %s: unquote %s: %v", name.Name, lit.Value, err)
					continue
				}
				if !nameShape.MatchString(val) {
					t.Errorf("constant %s = %q does not match %s", name.Name, val, nameShape)
				}
				checked++
			}
		}
	}
	if checked < 30 {
		t.Fatalf("only %d Metric constants checked; names.go parse is likely broken", checked)
	}
}

// TestMetricNameUniqueness rejects two constants mapping to the same
// wire name — a silent aliasing bug replay baselines would not catch.
func TestMetricNameUniqueness(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "names.go", nil, 0)
	if err != nil {
		t.Fatalf("parse names.go: %v", err)
	}
	seen := map[string]string{}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			for i, name := range vs.Names {
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok {
					continue
				}
				val, _ := strconv.Unquote(lit.Value)
				if prev, dup := seen[val]; dup {
					t.Errorf("constants %s and %s share the value %q", prev, name.Name, val)
				}
				seen[val] = name.Name
			}
		}
	}
}

// TestMetricHelperGoldens freezes the per-instance family helpers the
// same way the constant table is frozen: replay baselines embed these
// exact strings.
func TestMetricHelperGoldens(t *testing.T) {
	cases := []struct{ got, want string }{
		{MetricPCIeDownTLP("MWr"), "pcie.down.tlp.MWr"},
		{MetricPCIeUpTLP("CplD"), "pcie.up.tlp.CplD"},
		{MetricXDMATransfers("h2c"), "driver.xdma.h2c.transfers"},
		{MetricXDMABytes("c2h"), "driver.xdma.c2h.bytes"},
		{MetricXDMAIRQs("h2c"), "driver.xdma.h2c.irqs"},
		{MetricDMAEngineRuns("h2c0"), "dma-engine.h2c0.runs"},
		{MetricDMAEngineDescriptors("c2h0"), "dma-engine.c2h0.descriptors"},
		{MetricDMAEngineBytes("h2c0"), "dma-engine.h2c0.bytes"},
		{MetricFaultInjected("irqdrop"), "fault.irqdrop.injected"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("helper produced %q, want %q", c.got, c.want)
		}
	}
}
