package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// TestWritePrometheus pins the exposition format: counters and gauges
// as single samples, histograms as cumulative buckets with the
// mandatory +Inf close, HDR snapshots (sparse, no +Inf of their own)
// closed with the total count.
func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricStreamPackets).Add(7)
	reg.Gauge(MetricStreamWindow).Set(16)
	h := reg.HDR(MetricHostWakeLatencyNs)
	h.Observe(10)
	h.Observe(10)
	h.Observe(5000)

	var b bytes.Buffer
	if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE stream_packets counter\nstream_packets 7\n",
		"# TYPE stream_window gauge\nstream_window 16\n",
		"# TYPE hostos_wake_latency_ns histogram\n",
		`hostos_wake_latency_ns_bucket{le="10"} 2`,
		`hostos_wake_latency_ns_bucket{le="+Inf"} 3`,
		"hostos_wake_latency_ns_sum 5020\n",
		"hostos_wake_latency_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Buckets must be cumulative: the 5000-ish bucket includes the two
	// earlier observations.
	var last string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "hostos_wake_latency_ns_bucket") {
			last = line
		}
	}
	if !strings.HasSuffix(last, " 3") {
		t.Errorf("final bucket %q not cumulative", last)
	}
}

// TestWritePrometheusDeterministic: two registries built in different
// insertion orders produce byte-identical expositions — the exporters
// never leak map iteration order.
func TestWritePrometheusDeterministic(t *testing.T) {
	build := func(reverse bool) string {
		reg := NewRegistry()
		names := []string{MetricStreamPackets, MetricStreamDrops, MetricVirtioDoorbells,
			MetricRecorderDumps, MetricPCIeMSIXRaised}
		if reverse {
			for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
				names[i], names[j] = names[j], names[i]
			}
		}
		for i, n := range names {
			reg.Counter(n).Add(int64(i%2) + 1)
		}
		reg.HDR(MetricTailRTTTotalNs).Observe(4242)
		var b bytes.Buffer
		if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		return b.String()
	}
	a := build(false)
	for i := 0; i < 10; i++ {
		if b := build(false); b != a {
			t.Fatalf("same registry, different exposition:\n%s\nvs\n%s", a, b)
		}
	}
	// Insertion order must not matter for ordering (values differ by
	// construction above, so compare the emitted name sequence).
	lines := func(s string) []string {
		var out []string
		for _, l := range strings.Split(s, "\n") {
			if strings.HasPrefix(l, "# TYPE ") {
				out = append(out, l)
			}
		}
		return out
	}
	la, lb := lines(a), lines(build(true))
	if strings.Join(la, "|") != strings.Join(lb, "|") {
		t.Errorf("emission order depends on insertion order:\n%v\nvs\n%v", la, lb)
	}
}
