package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"fpgavirtio/internal/sim"
)

func ps(ns int64) sim.Time { return sim.Time(ns) * sim.Time(sim.Nanosecond) }

func TestRecorderPairing(t *testing.T) {
	r := NewRecorder(0)
	id1 := r.SpanBegin(ps(10), LayerDriver, "xmit")
	id2 := r.SpanBegin(ps(12), LayerPCIe, "mmio")
	r.SpanEnd(ps(14), id2)
	r.SpanEnd(ps(20), id1)

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Sorted by start time: the driver span begun first comes first
	// even though it closed last.
	if spans[0].Name != "xmit" || spans[1].Name != "mmio" {
		t.Fatalf("span order = %q, %q; want xmit, mmio", spans[0].Name, spans[1].Name)
	}
	if d := spans[0].Duration(); d != 10*sim.Nanosecond {
		t.Errorf("xmit duration = %v, want 10ns", d)
	}
	if d := spans[1].Duration(); d != 2*sim.Nanosecond {
		t.Errorf("mmio duration = %v, want 2ns", d)
	}
	if n := len(r.OpenSpans()); n != 0 {
		t.Errorf("open spans = %d, want 0", n)
	}
}

func TestRecorderUnclosedDetection(t *testing.T) {
	r := NewRecorder(0)
	r.SpanBegin(ps(5), LayerIRQ, "leaked")
	id := r.SpanBegin(ps(6), LayerApp, "done")
	r.SpanEnd(ps(9), id)

	open := r.OpenSpans()
	if len(open) != 1 || open[0].Name != "leaked" {
		t.Fatalf("open spans = %+v, want one 'leaked'", open)
	}
	if len(r.Spans()) != 1 {
		t.Fatalf("closed spans = %d, want 1", len(r.Spans()))
	}
	// An end for an id the recorder never saw must be ignored.
	r.SpanEnd(ps(10), 9999)
	if len(r.Spans()) != 1 {
		t.Fatalf("spurious end created a span")
	}
}

func TestRecorderDropCap(t *testing.T) {
	r := NewRecorder(2)
	a := r.SpanBegin(ps(1), LayerApp, "a")
	b := r.SpanBegin(ps(2), LayerApp, "b")
	c := r.SpanBegin(ps(3), LayerApp, "c") // over cap: dropped
	r.SpanEnd(ps(4), a)
	r.SpanEnd(ps(5), b)
	r.SpanEnd(ps(6), c)
	r.Add(LayerApp, "d", ps(7), ps(8)) // still at cap: dropped

	if got := r.Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}
	if got := len(r.Spans()); got != 2 {
		t.Fatalf("closed spans = %d, want 2", got)
	}
	r.Reset()
	if r.Dropped() != 0 || len(r.Spans()) != 0 || len(r.OpenSpans()) != 0 {
		t.Fatalf("Reset did not clear state")
	}
}

func TestRecorderAdd(t *testing.T) {
	r := NewRecorder(0)
	r.Add(LayerApp, "window", ps(100), ps(250), "payload", "64")
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].Duration() != 150*sim.Nanosecond {
		t.Errorf("duration = %v, want 150ns", spans[0].Duration())
	}
	if len(spans[0].Attrs) != 2 || spans[0].Attrs[1] != "64" {
		t.Errorf("attrs = %v", spans[0].Attrs)
	}
}

func TestAttribution(t *testing.T) {
	spans := []Span{
		{Layer: LayerWire, Start: ps(0), End: ps(5)},
		{Layer: LayerDriver, Start: ps(0), End: ps(10)},
		{Layer: LayerWire, Start: ps(3), End: ps(9)}, // overlaps: double-counts
		{Layer: "custom", Start: ps(0), End: ps(1)},
	}
	stats := Attribution(spans)
	if len(stats) != 3 {
		t.Fatalf("got %d layers, want 3", len(stats))
	}
	// Canonical order: driver before wire, unknown layers last.
	if stats[0].Layer != LayerDriver || stats[1].Layer != LayerWire || stats[2].Layer != "custom" {
		t.Fatalf("layer order = %s, %s, %s", stats[0].Layer, stats[1].Layer, stats[2].Layer)
	}
	if stats[1].Total != 11*sim.Nanosecond || stats[1].Spans != 2 {
		t.Errorf("wire = %v over %d spans, want 11ns over 2", stats[1].Total, stats[1].Spans)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := (*Registry)(nil).Histogram("t", []float64{10, 20, 40})
	// Upper bounds are inclusive: 10 lands in the first bucket,
	// 10.5 in the second, 40 in the third, 40.1 overflows.
	for _, v := range []float64{-1, 10, 10.5, 20, 40, 40.1, 1e9} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1, 2}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d, want 7", h.Count())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c2 := r.Counter("x")
	if c1 != c2 {
		t.Fatalf("same name returned different counters")
	}
	c1.Inc()
	c1.Add(4)
	if c2.Value() != 5 {
		t.Fatalf("shared counter value = %d, want 5", c2.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("cross-kind registration did not panic")
		}
	}()
	r.Gauge("x")
}

func TestNilRegistryDiscards(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(3)
	r.Histogram("c", []float64{1}).Observe(2)
	if snaps := r.Snapshot(); snaps != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", snaps)
	}
}

func TestSnapshotSortedAndSerializable(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Add(7)
	r.Gauge("a.gauge").Set(1.5)
	r.Histogram("m.hist", []float64{1, 2}).Observe(3) // overflow bucket

	snaps := r.Snapshot()
	names := []string{snaps[0].Name, snaps[1].Name, snaps[2].Name}
	if names[0] != "a.gauge" || names[1] != "m.hist" || names[2] != "z.count" {
		t.Fatalf("snapshot order = %v", names)
	}
	// The +Inf overflow bound must serialize as "inf", not break
	// encoding/json.
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, snaps); err != nil {
		t.Fatalf("WriteMetricsJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"le": "inf"`) {
		t.Errorf("overflow bucket not serialized as inf:\n%s", buf.String())
	}
	var back []MetricSnapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err == nil {
		// "inf" is a string; round-tripping into float64 is expected to
		// fail — the assertion is only that marshalling succeeded.
		_ = back
	}

	buf.Reset()
	if err := WriteMetricsCSV(&buf, snaps); err != nil {
		t.Fatalf("WriteMetricsCSV: %v", err)
	}
	if !strings.Contains(buf.String(), "m.hist,bucket") || !strings.Contains(buf.String(), ",inf") {
		t.Errorf("CSV missing histogram bucket rows:\n%s", buf.String())
	}
}

func TestChromeTraceStructure(t *testing.T) {
	spans := []Span{
		{ID: 1, Layer: LayerApp, Name: "ping", Start: ps(0), End: ps(100)},
		{ID: 2, Layer: LayerDriver, Name: "xmit", Start: ps(5), End: ps(20)},
		{ID: 3, Layer: LayerDriver, Name: "napi", Start: ps(10), End: ps(30)}, // overlaps xmit
		{ID: 4, Layer: LayerWire, Name: "tlp", Start: ps(6), End: ps(9), Attrs: []string{"bytes", "64"}},
	}
	instants := []Instant{{Name: "irq", At: int64(ps(15))}}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans, instants); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Unit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.Unit)
	}

	var completes, instantsSeen, metas int
	pidName := make(map[float64]string)
	tidsByPid := make(map[float64]map[float64]bool)
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			completes++
			pid := ev["pid"].(float64)
			if tidsByPid[pid] == nil {
				tidsByPid[pid] = make(map[float64]bool)
			}
			tidsByPid[pid][ev["tid"].(float64)] = true
		case "i":
			instantsSeen++
			if ev["pid"].(float64) != 0 {
				t.Errorf("instant pid = %v, want 0", ev["pid"])
			}
		case "M":
			metas++
			if ev["name"] == "process_name" {
				args := ev["args"].(map[string]any)
				pidName[ev["pid"].(float64)] = args["name"].(string)
			}
		}
	}
	if completes != 4 || instantsSeen != 1 {
		t.Fatalf("events: %d complete, %d instants; want 4, 1", completes, instantsSeen)
	}
	// Layers rank app(1) < driver(2) < wire(3); sim-events at pid 0.
	want := map[float64]string{0: "sim-events", 1: "app", 2: "driver", 3: "wire"}
	for pid, name := range want {
		if pidName[pid] != name {
			t.Errorf("pid %v = %q, want %q", pid, pidName[pid], name)
		}
	}
	// The two overlapping driver spans must land on distinct tids.
	if len(tidsByPid[2]) != 2 {
		t.Errorf("driver tids = %v, want 2 lanes for overlapping spans", tidsByPid[2])
	}
	// Attrs render into the event name.
	if !strings.Contains(buf.String(), "tlp [bytes=64]") {
		t.Errorf("span attrs not rendered in name")
	}
	// Timestamps are microseconds: the app span is 100ns = 0.1us.
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" && ev["name"] == "ping" {
			if dur := ev["dur"].(float64); math.Abs(dur-0.1) > 1e-9 {
				t.Errorf("ping dur = %v us, want 0.1", dur)
			}
		}
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, nil); err != nil {
		t.Fatalf("WriteChromeTrace(empty): %v", err)
	}
	if strings.Contains(buf.String(), `"traceEvents":null`) {
		t.Fatalf("empty trace serialized traceEvents as null")
	}
}

func validArtifact() *BenchArtifact {
	return &BenchArtifact{
		Schema:     BenchSchema,
		Experiment: "fig3",
		Seed:       1,
		Packets:    100,
		Link:       "Gen2 x2",
		Points: []BenchPoint{{
			Driver: "virtio", Payload: 64, Count: 100,
			MeanNs: 29000, StdNs: 400, MinNs: 28000,
			P25Ns: 28500, P50Ns: 28900, P75Ns: 29200,
			P95Ns: 29800, P99Ns: 30500, P999Ns: 31000, MaxNs: 31500,
			SWMeanNs: 9000, HWMeanNs: 19000, RGMeanNs: 1000, Interrupts: 100,
		}},
	}
}

func TestBenchArtifactValidate(t *testing.T) {
	if err := validArtifact().Validate(); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}
	bad := func(mut func(*BenchArtifact)) error {
		a := validArtifact()
		mut(a)
		return a.Validate()
	}
	cases := []struct {
		name string
		mut  func(*BenchArtifact)
	}{
		{"wrong schema", func(a *BenchArtifact) { a.Schema = "fvbench/v0" }},
		{"no experiment", func(a *BenchArtifact) { a.Experiment = "" }},
		{"no points", func(a *BenchArtifact) { a.Points = nil }},
		{"empty driver", func(a *BenchArtifact) { a.Points[0].Driver = "" }},
		{"zero count", func(a *BenchArtifact) { a.Points[0].Count = 0 }},
		{"non-monotone", func(a *BenchArtifact) { a.Points[0].P99Ns = a.Points[0].P50Ns - 1 }},
		{"negative breakdown", func(a *BenchArtifact) { a.Points[0].HWMeanNs = -1 }},
	}
	for _, tc := range cases {
		if bad(tc.mut) == nil {
			t.Errorf("%s: Validate accepted a broken artifact", tc.name)
		}
	}
}

func TestBenchJSONRoundTrip(t *testing.T) {
	a := validArtifact()
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, a); err != nil {
		t.Fatalf("WriteBenchJSON: %v", err)
	}
	if err := ValidateBenchJSON(buf.Bytes()); err != nil {
		t.Fatalf("ValidateBenchJSON rejected own output: %v", err)
	}
	if err := ValidateBenchJSON([]byte(`{"schema":"nope"}`)); err == nil {
		t.Fatalf("ValidateBenchJSON accepted a bad schema")
	}
	if err := ValidateBenchJSON([]byte(`not json`)); err == nil {
		t.Fatalf("ValidateBenchJSON accepted malformed JSON")
	}

	buf.Reset()
	if err := WriteBenchCSV(&buf, a); err != nil {
		t.Fatalf("WriteBenchCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d, want header + 1 point", len(lines))
	}
	if !strings.HasPrefix(lines[1], "virtio,irq,64,100,29000,") {
		t.Errorf("CSV row = %q", lines[1])
	}
}
