package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Registry holds named instruments. Instrument lookup is synchronized
// (boot code on different processes may register concurrently under
// the race detector); instrument updates themselves follow the
// simulator's strict hand-off discipline and need no locking.
//
// Lookups are get-or-create: asking twice for the same name returns
// the same instrument, so layers can share counters without plumbing.
// Registering one name as two different instrument kinds panics.
type Registry struct {
	mu         sync.Mutex //fvlint:lockrank metrics
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	hdrs       map[string]*HDRHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		hdrs:       make(map[string]*HDRHistogram),
	}
}

// Counter is a monotonically growing (or signed-accumulating) count.
type Counter struct {
	name string
	v    int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add accumulates delta (negative deltas are allowed: the jitter
// instrument records signed nanoseconds around the nominal cost).
func (c *Counter) Add(delta int64) { c.v += delta }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v }

// Name reports the registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is a point-in-time value.
type Gauge struct {
	name string
	v    float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add accumulates delta.
func (g *Gauge) Add(delta float64) { g.v += delta }

// Value reads the current value.
func (g *Gauge) Value() float64 { return g.v }

// Name reports the registered name.
func (g *Gauge) Name() string { return g.name }

// Histogram counts observations into fixed buckets. bounds are
// strictly increasing upper bounds; an observation v lands in the
// first bucket with v <= bound, or the implicit +Inf overflow bucket.
type Histogram struct {
	name   string
	bounds []float64
	counts []int64 // len(bounds)+1; last is overflow
	sum    float64
	count  int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.sum += v
	h.count++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count reports total observations; Sum their total.
func (h *Histogram) Count() int64 { return h.count }

// Sum reports the running total of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Bounds returns the configured upper bounds (not including +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns per-bucket (non-cumulative) counts including
// the trailing overflow bucket.
func (h *Histogram) BucketCounts() []int64 { return append([]int64(nil), h.counts...) }

// Name reports the registered name.
func (h *Histogram) Name() string { return h.name }

// Counter returns the counter registered under name, creating it on
// first use. Safe to call on a nil registry: updates then go to a
// discarded instrument, so instrumented code never nil-checks.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{name: name}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFree(name, "counter")
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil-registry safe like Counter.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{name: name}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFree(name, "gauge")
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use. Later calls ignore
// bounds. Bounds must be strictly increasing. Nil-registry safe.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not strictly increasing", name))
		}
	}
	mk := func() *Histogram {
		return &Histogram{
			name:   name,
			bounds: append([]float64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
	}
	if r == nil {
		return mk()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.checkFree(name, "histogram")
	h := mk()
	r.histograms[name] = h
	return h
}

// HDR returns the HDR histogram registered under name, creating it on
// first use. Nil-registry safe like Counter.
func (r *Registry) HDR(name string) *HDRHistogram {
	if r == nil {
		return NewHDRHistogram(name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hdrs[name]; ok {
		return h
	}
	r.checkFree(name, "hdrhistogram")
	h := NewHDRHistogram(name)
	r.hdrs[name] = h
	return h
}

// checkFree panics if name is already taken by a different kind.
// Caller holds r.mu.
func (r *Registry) checkFree(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("telemetry: %q already registered as counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("telemetry: %q already registered as gauge", name))
	}
	if _, ok := r.histograms[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("telemetry: %q already registered as histogram", name))
	}
	if _, ok := r.hdrs[name]; ok && kind != "hdrhistogram" {
		panic(fmt.Sprintf("telemetry: %q already registered as hdrhistogram", name))
	}
}

// BucketSnapshot is one histogram bucket in a snapshot.
type BucketSnapshot struct {
	// UpperBound is the inclusive upper bound; +Inf for the overflow
	// bucket (serialized as the string "inf" in JSON/CSV exporters).
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// MarshalJSON encodes the +Inf overflow bound as the string "inf"
// (encoding/json rejects non-finite floats).
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.UpperBound, 1) {
		return []byte(fmt.Sprintf(`{"le":"inf","count":%d}`, b.Count)), nil
	}
	return []byte(fmt.Sprintf(`{"le":%g,"count":%d}`, b.UpperBound, b.Count)), nil
}

// MetricSnapshot is a point-in-time reading of one instrument.
type MetricSnapshot struct {
	Name    string           `json:"name"`
	Type    string           `json:"type"` // "counter" | "gauge" | "histogram" | "hdrhistogram"
	Value   float64          `json:"value,omitempty"`
	Count   int64            `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot reads every instrument, sorted by name for deterministic
// output. Nil-registry safe (returns nil).
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []MetricSnapshot
	for name, c := range r.counters {
		out = append(out, MetricSnapshot{Name: name, Type: "counter", Value: float64(c.v)})
	}
	for name, g := range r.gauges {
		out = append(out, MetricSnapshot{Name: name, Type: "gauge", Value: g.v})
	}
	for name, h := range r.histograms {
		s := MetricSnapshot{Name: name, Type: "histogram", Count: h.count, Sum: h.sum}
		for i, b := range h.bounds {
			s.Buckets = append(s.Buckets, BucketSnapshot{UpperBound: b, Count: h.counts[i]})
		}
		s.Buckets = append(s.Buckets, BucketSnapshot{UpperBound: math.Inf(1), Count: h.counts[len(h.bounds)]})
		out = append(out, s)
	}
	for name, h := range r.hdrs {
		// Only the non-empty log buckets are exported: a full HDR table
		// is 4096 entries, nearly all zero for any one instrument.
		out = append(out, MetricSnapshot{
			Name: name, Type: "hdrhistogram",
			Count: h.count, Sum: h.sum, Buckets: h.Buckets(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
