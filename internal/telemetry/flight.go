package telemetry

import (
	"sort"

	"fpgavirtio/internal/sim"
)

// Flight recorder: an always-on, allocation-free ring of the most
// recent spans in a session. Unlike the Recorder (installed only
// around explicitly traced operations, and gating the verbose
// per-TLP branches via sim.TracingSpans), the flight recorder rides
// the separate sim.FlightSink channel so it can stay enabled for the
// entire run without perturbing the 0-alloc hot path. When something
// noteworthy happens — a fault-recovery fires, a new worst-case RTT
// lands — Snapshot freezes the ring into a preallocated dump slot,
// giving a post-mortem trace of the packets leading up to the event
// without anyone having asked for tracing in advance.

// Default sizing: the ring holds the last few round trips' worth of
// spans (a virtio ping closes ~15 spans; XDMA fewer), and a handful
// of dump slots covers the distinct trigger reasons in one run.
const (
	DefaultFlightSpans = 2048
	DefaultFlightDumps = 8

	// flightOpenSlots bounds concurrently-open spans tracked by the
	// recorder. The sim's strict hand-off discipline keeps real nesting
	// depth in single digits; 64 leaves generous headroom.
	flightOpenSlots = 64
)

// FlightSpan is one interval captured by the flight recorder. Dir is
// set for wire-level records (TLP direction) and empty elsewhere.
// Open marks spans still in progress when a dump was taken; their End
// is the dump instant.
type FlightSpan struct {
	Layer string   `json:"layer"`
	Dir   string   `json:"dir,omitempty"`
	Name  string   `json:"name"`
	Start sim.Time `json:"start_ps"`
	End   sim.Time `json:"end_ps"`
	Open  bool     `json:"open,omitempty"`
}

// Duration is the span's extent.
func (s FlightSpan) Duration() sim.Duration { return s.End.Sub(s.Start) }

// FlightDump is one frozen snapshot of the ring.
type FlightDump struct {
	// Reason names the trigger ("fault:needsreset", "worst-rtt", ...).
	Reason string `json:"reason"`
	// At is the sim time the snapshot was taken.
	At sim.Time `json:"at_ps"`
	// Seq orders dumps within a run (1-based; later overwrites of the
	// same reason keep the slot but bump the Seq).
	Seq int64 `json:"seq"`
	// Spans are the captured intervals in chronological order.
	Spans []FlightSpan `json:"spans"`
}

type flightOpen struct {
	id    uint64
	layer string
	name  string
	start sim.Time
}

type flightSlot struct {
	used   bool
	reason string
	at     sim.Time
	seq    int64
	spans  []FlightSpan // preallocated to ring+open capacity
}

// FlightRecorder implements sim.FlightSink with a fixed-size span
// ring, a fixed open-span side table, and preallocated dump slots.
// After construction no method allocates, so a session can leave it
// installed for a 50k-packet sweep without moving the alloc budget.
//
// Dump slots are keyed by reason: a second snapshot with the same
// reason overwrites the earlier one (keeping the freshest context for
// that trigger), and snapshots beyond the slot count are counted as
// dropped rather than evicting a different reason.
type FlightRecorder struct {
	ring []FlightSpan
	head int // next write position
	n    int // filled entries, <= len(ring)

	open   [flightOpenSlots]flightOpen
	nextID uint64

	slots   []flightSlot
	dumpSeq int64

	captured     *Counter
	dropped      *Counter
	dumps        *Counter
	dumpsDropped *Counter
}

// NewFlightRecorder returns a recorder with spanCap ring entries and
// dumpSlots snapshot slots (defaults apply for values <= 0),
// registering its recorder.* counters in reg (which may be nil).
func NewFlightRecorder(spanCap, dumpSlots int, reg *Registry) *FlightRecorder {
	if spanCap <= 0 {
		spanCap = DefaultFlightSpans
	}
	if dumpSlots <= 0 {
		dumpSlots = DefaultFlightDumps
	}
	fr := &FlightRecorder{
		ring:         make([]FlightSpan, spanCap),
		slots:        make([]flightSlot, dumpSlots),
		captured:     reg.Counter(MetricRecorderSpansCaptured),
		dropped:      reg.Counter(MetricRecorderSpansDropped),
		dumps:        reg.Counter(MetricRecorderDumps),
		dumpsDropped: reg.Counter(MetricRecorderDumpsDropped),
	}
	for i := range fr.slots {
		fr.slots[i].spans = make([]FlightSpan, 0, spanCap+flightOpenSlots)
	}
	return fr
}

// FlightBegin implements sim.FlightSink: it opens a span in the side
// table and returns its id. When the table is full the span is
// counted as dropped and its eventual FlightEnd is a no-op.
func (fr *FlightRecorder) FlightBegin(at sim.Time, layer, name string) uint64 {
	fr.nextID++
	id := fr.nextID
	for i := range fr.open {
		if fr.open[i].id == 0 {
			fr.open[i] = flightOpen{id: id, layer: layer, name: name, start: at}
			return id
		}
	}
	fr.dropped.Inc()
	return id
}

// FlightEnd implements sim.FlightSink: it closes the span opened
// under id and pushes it into the ring. Unknown ids (dropped opens,
// or spans begun before the recorder was installed) are ignored.
func (fr *FlightRecorder) FlightEnd(at sim.Time, id uint64) {
	if id == 0 {
		return
	}
	for i := range fr.open {
		if fr.open[i].id == id {
			o := &fr.open[i]
			fr.push(FlightSpan{Layer: o.layer, Name: o.name, Start: o.start, End: at})
			o.id = 0
			return
		}
	}
}

// FlightClosed implements sim.FlightSink: it records an interval whose
// endpoints are already known — the wire layer uses it to log each TLP
// without paying the open-table round trip.
func (fr *FlightRecorder) FlightClosed(at sim.Time, layer, dir, name string, start, end sim.Time) {
	fr.push(FlightSpan{Layer: layer, Dir: dir, Name: name, Start: start, End: end})
}

func (fr *FlightRecorder) push(sp FlightSpan) {
	fr.ring[fr.head] = sp
	fr.head++
	if fr.head == len(fr.ring) {
		fr.head = 0
	}
	if fr.n < len(fr.ring) {
		fr.n++
	}
	fr.captured.Inc()
}

// Snapshot freezes the current ring (plus still-open spans, marked
// Open with End=at) into a dump slot and reports whether a slot was
// available. A reason seen before reuses its slot — the dump always
// reflects the latest occurrence. Allocation-free.
func (fr *FlightRecorder) Snapshot(reason string, at sim.Time) bool {
	slot := -1
	for i := range fr.slots {
		if fr.slots[i].used && fr.slots[i].reason == reason {
			slot = i
			break
		}
	}
	if slot < 0 {
		for i := range fr.slots {
			if !fr.slots[i].used {
				slot = i
				break
			}
		}
	}
	if slot < 0 {
		fr.dumpsDropped.Inc()
		return false
	}
	s := &fr.slots[slot]
	s.used = true
	s.reason = reason
	s.at = at
	fr.dumpSeq++
	s.seq = fr.dumpSeq
	s.spans = s.spans[:0]
	// Chronological ring copy: oldest entry is at head when the ring
	// has wrapped, at 0 otherwise.
	if fr.n == len(fr.ring) {
		s.spans = append(s.spans, fr.ring[fr.head:]...)
		s.spans = append(s.spans, fr.ring[:fr.head]...)
	} else {
		s.spans = append(s.spans, fr.ring[:fr.n]...)
	}
	for i := range fr.open {
		if fr.open[i].id != 0 {
			o := &fr.open[i]
			s.spans = append(s.spans, FlightSpan{
				Layer: o.layer, Name: o.name, Start: o.start, End: at, Open: true,
			})
		}
	}
	fr.dumps.Inc()
	return true
}

// Dumps returns copies of the taken snapshots ordered by Seq. Cold
// path: allocates.
func (fr *FlightRecorder) Dumps() []FlightDump {
	var out []FlightDump
	for i := range fr.slots {
		s := &fr.slots[i]
		if !s.used {
			continue
		}
		out = append(out, FlightDump{
			Reason: s.reason,
			At:     s.at,
			Seq:    s.seq,
			Spans:  append([]FlightSpan(nil), s.spans...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Captured reports the total spans pushed into the ring over the
// recorder's lifetime (not just those currently resident).
func (fr *FlightRecorder) Captured() int64 { return fr.captured.Value() }

// Len reports the spans currently resident in the ring.
func (fr *FlightRecorder) Len() int { return fr.n }

// DumpSpans converts a dump's flight spans to telemetry Spans so the
// Chrome exporter can render them (IDs are synthesized 1..n in
// chronological order; open spans get an "open=true" attr).
func DumpSpans(d FlightDump) []Span {
	out := make([]Span, 0, len(d.Spans))
	for i, fs := range d.Spans {
		name := fs.Name
		if fs.Dir != "" {
			name = fs.Dir + ":" + fs.Name
		}
		sp := Span{
			ID:    uint64(i + 1),
			Layer: fs.Layer,
			Name:  name,
			Start: fs.Start,
			End:   fs.End,
		}
		if fs.Open {
			sp.Attrs = []string{"open", "true"}
		}
		out = append(out, sp)
	}
	return out
}
