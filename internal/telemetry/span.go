// Package telemetry is the structured observability layer of the
// testbed: layer-attributed spans recorded from a sim.SpanSink, a
// metrics registry (counters, gauges, fixed-bucket histograms), and
// exporters for Chrome trace-event JSON, metric snapshots, and bench
// artifacts.
//
// The span model exists so the paper's software/hardware attribution
// (§IV-B, Figs. 4-5) is a fold over recorded intervals instead of
// hand-maintained arithmetic: every layer of the simulated testbed
// brackets its work with sim.BeginSpan under one of the Layer* names
// below, and a Recorder collects the begin/end pairs.
package telemetry

import (
	"sort"

	"fpgavirtio/internal/sim"
)

// Canonical layer names. Every span carries exactly one; exporters
// group by layer (one Perfetto process per layer) and attribution
// sums durations per layer.
const (
	LayerApp          = "app"           // userspace test program between clock reads
	LayerSyscall      = "syscall"       // kernel entry/exit cost
	LayerDriver       = "driver"        // virtio-net / xdma driver bodies
	LayerIRQ          = "irq"           // interrupt delivery and handler execution
	LayerPCIe         = "pcie"          // transaction-layer operations (MMIO, DMA, MSI-X)
	LayerDMAEngine    = "dma-engine"    // XDMA engine runs and card-side DMA ports
	LayerVirtIODevice = "virtio-device" // controller queue engines + user logic
	LayerWire         = "wire"          // per-TLP link occupancy + flight
)

// CanonicalLayers lists the known layers in display order.
var CanonicalLayers = []string{
	LayerApp, LayerSyscall, LayerDriver, LayerIRQ,
	LayerPCIe, LayerDMAEngine, LayerVirtIODevice, LayerWire,
}

// LayerRank orders layers for display: canonical layers first in the
// order above, unknown layers after.
func LayerRank(layer string) int {
	for i, l := range CanonicalLayers {
		if l == layer {
			return i
		}
	}
	return len(CanonicalLayers)
}

// Span is one closed interval of attributed work.
type Span struct {
	ID    uint64
	Layer string
	Name  string
	Start sim.Time
	End   sim.Time
	// Attrs are alternating key/value pairs.
	Attrs []string
}

// Duration is the span's extent.
func (s Span) Duration() sim.Duration { return s.End.Sub(s.Start) }

// Recorder implements sim.SpanSink by collecting spans in memory.
// Closed spans accumulate in completion order; unmatched begins stay
// open and are reported separately so truncated traces are visible.
type Recorder struct {
	// Max caps the total number of spans tracked (open + closed);
	// 0 = unlimited. Spans begun past the cap are counted as dropped.
	Max int

	spans   []Span
	open    map[uint64]Span
	next    uint64
	dropped int
}

// NewRecorder returns a Recorder capped at max spans (0 = unlimited).
func NewRecorder(max int) *Recorder {
	return &Recorder{Max: max, open: make(map[uint64]Span)}
}

// SpanBegin implements sim.SpanSink.
func (r *Recorder) SpanBegin(at sim.Time, layer, name string, attrs ...string) uint64 {
	r.next++
	id := r.next
	if r.Max > 0 && len(r.spans)+len(r.open) >= r.Max {
		r.dropped++
		return id
	}
	if r.open == nil {
		r.open = make(map[uint64]Span)
	}
	r.open[id] = Span{ID: id, Layer: layer, Name: name, Start: at, Attrs: attrs}
	return id
}

// SpanEnd implements sim.SpanSink. Ends for unknown ids (dropped or
// begun before the recorder was installed) are ignored.
func (r *Recorder) SpanEnd(at sim.Time, id uint64) {
	sp, ok := r.open[id]
	if !ok {
		return
	}
	delete(r.open, id)
	sp.End = at
	r.spans = append(r.spans, sp)
}

// Add records an already-closed span directly, bypassing the
// begin/end pairing. Sessions use it for intervals whose endpoints
// are known values (e.g. the app-level window between two clock
// reads) rather than "now" at the call site.
func (r *Recorder) Add(layer, name string, start, end sim.Time, attrs ...string) {
	if r.Max > 0 && len(r.spans)+len(r.open) >= r.Max {
		r.dropped++
		return
	}
	r.next++
	r.spans = append(r.spans, Span{ID: r.next, Layer: layer, Name: name, Start: start, End: end, Attrs: attrs})
}

// Spans returns the closed spans sorted by (Start, ID).
func (r *Recorder) Spans() []Span {
	out := append([]Span(nil), r.spans...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// OpenSpans returns spans that were begun but never ended, sorted by
// (Start, ID). A non-empty result means the recording window closed
// mid-interval (or a layer leaked a span).
func (r *Recorder) OpenSpans() []Span {
	out := make([]Span, 0, len(r.open))
	for _, sp := range r.open {
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Dropped reports how many spans were discarded due to the Max cap.
func (r *Recorder) Dropped() int { return r.dropped }

// Reset discards all recorded state but keeps the cap.
func (r *Recorder) Reset() {
	r.spans = nil
	r.open = make(map[uint64]Span)
	r.dropped = 0
}

// LayerStat is the per-layer result of an attribution fold.
type LayerStat struct {
	Layer string
	Total sim.Duration // sum of span durations (overlaps double-count)
	Spans int
}

// Attribution folds closed spans into per-layer totals, ordered by
// LayerRank then name. Durations are straight sums: concurrent spans
// in one layer double-count, matching how the paper sums independent
// hardware counters.
func Attribution(spans []Span) []LayerStat {
	byLayer := make(map[string]*LayerStat)
	for _, sp := range spans {
		st := byLayer[sp.Layer]
		if st == nil {
			st = &LayerStat{Layer: sp.Layer}
			byLayer[sp.Layer] = st
		}
		st.Total += sp.Duration()
		st.Spans++
	}
	out := make([]LayerStat, 0, len(byLayer))
	for _, st := range byLayer {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := LayerRank(out[i].Layer), LayerRank(out[j].Layer)
		if ri != rj {
			return ri < rj
		}
		return out[i].Layer < out[j].Layer
	})
	return out
}
