package telemetry

import (
	"fmt"
	"sort"

	"fpgavirtio/internal/sim"
)

// Critical-path analysis: turn one round trip's span tree into a
// partition of the application window, attributing every picosecond of
// the RTT to exactly one layer. Attribution() sums occupancy — nested
// spans double-count, so its totals exceed the RTT and answer "how
// busy was each layer". The critical path instead answers the tail
// question "what was the packet WAITING on": at every instant inside
// the app span it charges the innermost span active at that instant,
// and instants covered by no span fall back to the root (the
// application itself, spinning between syscalls). The segments
// partition the root window exactly, so per-layer totals sum to the
// measured RTT with no tolerance beyond the counters' own quantum.

// CritSegment is one maximal interval of the partition: the innermost
// span active over [Start, End) and the layer the interval is charged
// to.
type CritSegment struct {
	Layer string
	Name  string
	Start sim.Time
	End   sim.Time
}

// Duration is the segment's extent.
func (s CritSegment) Duration() sim.Duration { return s.End.Sub(s.Start) }

// CritStat is the per-layer fold of the partition.
type CritStat struct {
	Layer    string
	Total    sim.Duration
	Segments int
	// Share is Total over the root span's duration, in [0, 1]; shares
	// sum to 1 because the segments partition the root window.
	Share float64
}

// CriticalPath is the analyzed blocking chain of one round trip.
type CriticalPath struct {
	// Root is the application span whose window was partitioned.
	Root     Span
	Segments []CritSegment
	Layers   []CritStat
}

// Total is the partitioned window's extent — the measured RTT when the
// root span brackets the caller's clock reads.
func (cp *CriticalPath) Total() sim.Duration { return cp.Root.Duration() }

// AnalyzeCriticalPath analyzes the round trip whose app-layer span
// closed last in spans — the natural choice for a capture that ends
// right after the packet of interest. Errors when no app span exists.
func AnalyzeCriticalPath(spans []Span) (*CriticalPath, error) {
	var root Span
	found := false
	for _, s := range spans {
		if s.Layer != LayerApp {
			continue
		}
		if !found || s.Start > root.Start || (s.Start == root.Start && s.ID > root.ID) {
			root = s
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("telemetry: critical path needs an %q span, none recorded", LayerApp)
	}
	return AnalyzeCriticalPathAt(spans, root), nil
}

// AnalyzeCriticalPathAt partitions root's window by the innermost
// active span. Spans outside the window are ignored; spans straddling
// it are clipped. Deterministic: ties between equally-nested spans
// break toward the later start, then the higher span ID.
func AnalyzeCriticalPathAt(spans []Span, root Span) *CriticalPath {
	cp := &CriticalPath{Root: root}
	if root.End <= root.Start {
		return cp
	}

	// Clip candidates to the root window.
	type cand struct {
		sp    Span
		start sim.Time
		end   sim.Time
		depth int
	}
	var cands []cand
	for _, s := range spans {
		if s.ID == root.ID && s.Layer == root.Layer && s.Start == root.Start && s.End == root.End {
			continue
		}
		start, end := s.Start, s.End
		if start < root.Start {
			start = root.Start
		}
		if end > root.End {
			end = root.End
		}
		if end <= start {
			continue
		}
		cands = append(cands, cand{sp: s, start: start, end: end})
	}

	// Nesting depth: how many other candidates contain this one. Equal
	// intervals contain each other symmetrically; the start/ID
	// tie-break below keeps the choice deterministic.
	for i := range cands {
		for j := range cands {
			if i == j {
				continue
			}
			if cands[j].start <= cands[i].start && cands[j].end >= cands[i].end {
				cands[i].depth++
			}
		}
	}

	// Elementary intervals between the sorted unique boundaries.
	bounds := make([]sim.Time, 0, 2*len(cands)+2)
	bounds = append(bounds, root.Start, root.End)
	for _, c := range cands {
		bounds = append(bounds, c.start, c.end)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:1]
	for _, b := range bounds[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}

	for k := 0; k+1 < len(uniq); k++ {
		a, b := uniq[k], uniq[k+1]
		layer, name := root.Layer, root.Name
		best := -1
		for i := range cands {
			if cands[i].start > a || cands[i].end < b {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			// Innermost wins: strictly more nested, else the later
			// start, else the higher span ID. All three deterministic.
			c, w := &cands[i], &cands[best]
			if c.depth != w.depth {
				if c.depth > w.depth {
					best = i
				}
				continue
			}
			if c.sp.Start != w.sp.Start {
				if c.sp.Start > w.sp.Start {
					best = i
				}
				continue
			}
			if c.sp.ID > w.sp.ID {
				best = i
			}
		}
		if best >= 0 {
			layer, name = cands[best].sp.Layer, cands[best].sp.Name
		}
		n := len(cp.Segments)
		if n > 0 && cp.Segments[n-1].End == a &&
			cp.Segments[n-1].Layer == layer && cp.Segments[n-1].Name == name {
			cp.Segments[n-1].End = b
			continue
		}
		cp.Segments = append(cp.Segments, CritSegment{Layer: layer, Name: name, Start: a, End: b})
	}

	// Per-layer fold; shares are exact because segments partition the
	// window.
	byLayer := map[string]*CritStat{}
	for _, seg := range cp.Segments {
		st := byLayer[seg.Layer]
		if st == nil {
			st = &CritStat{Layer: seg.Layer}
			byLayer[seg.Layer] = st
		}
		st.Total += seg.Duration()
		st.Segments++
	}
	total := root.Duration()
	for _, st := range byLayer {
		st.Share = float64(st.Total) / float64(total)
		cp.Layers = append(cp.Layers, *st)
	}
	sort.Slice(cp.Layers, func(i, j int) bool {
		ri, rj := LayerRank(cp.Layers[i].Layer), LayerRank(cp.Layers[j].Layer)
		if ri != rj {
			return ri < rj
		}
		return cp.Layers[i].Layer < cp.Layers[j].Layer
	})
	return cp
}
