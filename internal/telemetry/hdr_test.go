package telemetry

import (
	"math"
	"testing"
)

// TestHDRIndexBounds: every value maps to a bucket whose bound range
// actually contains it, across the exact region, octave boundaries and
// large magnitudes.
func TestHDRIndexBounds(t *testing.T) {
	cases := []int64{0, 1, 5, 63, 64, 65, 127, 128, 129, 1000, 4095, 4096,
		1 << 20, (1 << 20) + 7, 1<<40 + 12345, math.MaxInt64 / 2}
	for _, v := range cases {
		i := hdrIndex(v)
		ub := hdrUpperBound(i)
		if v > ub {
			t.Errorf("value %d maps to bucket %d with upper bound %d < value", v, i, ub)
		}
		if i > 0 {
			if lb := hdrUpperBound(i - 1); v <= lb {
				t.Errorf("value %d maps to bucket %d but fits bucket %d (bound %d)", v, i, i-1, lb)
			}
		}
		// Bounded relative error: the bucket width is at most 1/64 of
		// the value's magnitude.
		if v >= hdrSubBuckets {
			width := ub - hdrUpperBound(i-1)
			if float64(width) > float64(v)/float64(hdrSubBuckets)+1 {
				t.Errorf("value %d: bucket width %d exceeds 1/%d relative error", v, width, hdrSubBuckets)
			}
		}
	}
}

// TestHDRExactBelow64: the first octave records values exactly.
func TestHDRExactBelow64(t *testing.T) {
	h := NewHDRHistogram("test")
	for v := int64(0); v < hdrSubBuckets; v++ {
		h.Observe(v)
	}
	for q, want := range map[float64]int64{50: 31, 100: 63} {
		if got := h.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %d, want %d", q, got, want)
		}
	}
}

// TestHDRQuantileAgainstSorted: quantile estimates stay within the
// documented 1/64 relative error of the true nearest-rank percentile
// for a deterministic long-tailed sample.
func TestHDRQuantileAgainstSorted(t *testing.T) {
	h := NewHDRHistogram("test")
	var vals []int64
	x := int64(1)
	for i := 0; i < 5000; i++ {
		// LCG spread over several orders of magnitude.
		x = (x*6364136223846793005 + 1442695040888963407) & math.MaxInt64
		v := 100 + x%1000000
		vals = append(vals, v)
		h.Observe(v)
	}
	sorted := append([]int64(nil), vals...)
	for i := 1; i < len(sorted); i++ { // insertion sort: no deps, fine at 5k
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for _, q := range []float64{50, 95, 99, 99.9, 100} {
		rank := int(math.Ceil(q / 100 * float64(len(sorted)) * (1 - 1e-12)))
		want := sorted[rank-1]
		got := h.Quantile(q)
		if relErr := math.Abs(float64(got-want)) / float64(want); relErr > 1.0/hdrSubBuckets {
			t.Errorf("Quantile(%v) = %d, true %d: relative error %.4f > 1/%d", q, got, want, relErr, hdrSubBuckets)
		}
	}
	if got := h.Quantile(100); got != h.Max() {
		t.Errorf("Quantile(100) = %d, want exact max %d", got, h.Max())
	}
}

// TestHDRObserveNoAlloc: the hot-path contract the always-on recorder
// relies on.
func TestHDRObserveNoAlloc(t *testing.T) {
	h := NewHDRHistogram("test")
	if avg := testing.AllocsPerRun(1000, func() { h.Observe(123456) }); avg != 0 {
		t.Errorf("Observe allocates %.1f per call, want 0", avg)
	}
}

// TestHDRMerge: merged counts, extremes and quantiles match observing
// the union.
func TestHDRMerge(t *testing.T) {
	a, b, u := NewHDRHistogram("a"), NewHDRHistogram("b"), NewHDRHistogram("u")
	for v := int64(1); v <= 100; v++ {
		a.Observe(v * 10)
		u.Observe(v * 10)
	}
	for v := int64(1); v <= 50; v++ {
		b.Observe(v * 1000)
		u.Observe(v * 1000)
	}
	a.Merge(b)
	if a.Count() != u.Count() || a.Sum() != u.Sum() || a.Min() != u.Min() || a.Max() != u.Max() {
		t.Fatalf("merge: count/sum/min/max = %d/%v/%d/%d, want %d/%v/%d/%d",
			a.Count(), a.Sum(), a.Min(), a.Max(), u.Count(), u.Sum(), u.Min(), u.Max())
	}
	for _, q := range []float64{25, 50, 90, 99, 100} {
		if a.Quantile(q) != u.Quantile(q) {
			t.Errorf("Quantile(%v): merged %d != union %d", q, a.Quantile(q), u.Quantile(q))
		}
	}
	// Nil and empty merges are no-ops.
	before := a.Count()
	a.Merge(nil)
	a.Merge(NewHDRHistogram("empty"))
	if a.Count() != before {
		t.Errorf("no-op merges changed count")
	}
}

// TestHDREmpty: an untouched histogram reads as zeros.
func TestHDREmpty(t *testing.T) {
	h := NewHDRHistogram("test")
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(99) != 0 {
		t.Errorf("empty histogram leaks state: count=%d min=%d max=%d q99=%d",
			h.Count(), h.Min(), h.Max(), h.Quantile(99))
	}
	if got := h.Buckets(); got != nil {
		t.Errorf("empty histogram has %d buckets, want none", len(got))
	}
}

// TestHDRNegativeClamp: negative observations clamp to zero rather
// than corrupting the bucket table.
func TestHDRNegativeClamp(t *testing.T) {
	h := NewHDRHistogram("test")
	h.Observe(-5)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("negative observe: count=%d min=%d max=%d, want 1/0/0", h.Count(), h.Min(), h.Max())
	}
}
