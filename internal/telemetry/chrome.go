package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: the JSON Object Format understood by
// Perfetto and chrome://tracing. Each layer becomes one process
// (pid), named via "process_name" metadata; spans are "X" complete
// events; flat trace events ride along as "i" instants under a
// dedicated pid 0 "sim-events" process. Timestamps are microseconds.

// Instant is a zero-duration marker exported alongside spans (the
// legacy flat tracer's events).
type Instant struct {
	Name string
	At   int64 // picoseconds, same base as sim.Time
}

type chromeComplete struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

type chromeInstant struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	S    string  `json:"s"`
	Ts   float64 `json:"ts"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Args map[string]any `json:"args"`
}

const instantPid = 0 // pseudo-process holding flat events

// psToUs converts picoseconds to microseconds.
func psToUs(ps int64) float64 { return float64(ps) / 1e6 }

// ChromeTraceEvents renders spans (and optional instants) into the
// ordered traceEvents list. Layers are assigned pids in LayerRank
// order starting at 1; within a layer, overlapping spans are spread
// across tids greedily so nothing stacks incorrectly in the viewer.
func ChromeTraceEvents(spans []Span, instants []Instant) []any {
	sorted := append([]Span(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].ID < sorted[j].ID
	})

	// Stable pid assignment: every layer present, ranked.
	layerSet := make(map[string]bool)
	for _, sp := range sorted {
		layerSet[sp.Layer] = true
	}
	layers := make([]string, 0, len(layerSet))
	for l := range layerSet {
		layers = append(layers, l)
	}
	sort.Slice(layers, func(i, j int) bool {
		ri, rj := LayerRank(layers[i]), LayerRank(layers[j])
		if ri != rj {
			return ri < rj
		}
		return layers[i] < layers[j]
	})
	pidOf := make(map[string]int, len(layers))
	for i, l := range layers {
		pidOf[l] = i + 1
	}

	evs := make([]any, 0, 3*len(layers)+len(sorted)+len(instants))
	for i, l := range layers {
		evs = append(evs,
			chromeMeta{Name: "process_name", Ph: "M", Pid: pidOf[l], Args: map[string]any{"name": l}},
			chromeMeta{Name: "process_sort_index", Ph: "M", Pid: pidOf[l], Args: map[string]any{"sort_index": i}},
		)
	}
	if len(instants) > 0 {
		evs = append(evs, chromeMeta{Name: "process_name", Ph: "M", Pid: instantPid,
			Args: map[string]any{"name": "sim-events"}})
	}

	// Greedy per-layer tid packing: reuse the lowest tid whose last
	// span ended at or before this span's start.
	type lane struct{ busyUntil int64 }
	lanes := make(map[string][]lane)
	for _, sp := range sorted {
		tid := -1
		ls := lanes[sp.Layer]
		for i := range ls {
			if ls[i].busyUntil <= int64(sp.Start) {
				tid = i
				break
			}
		}
		if tid < 0 {
			ls = append(ls, lane{})
			tid = len(ls) - 1
		}
		ls[tid].busyUntil = int64(sp.End)
		lanes[sp.Layer] = ls
		name := sp.Name
		if len(sp.Attrs) >= 2 {
			name = fmt.Sprintf("%s [%s=%s]", sp.Name, sp.Attrs[0], sp.Attrs[1])
		}
		evs = append(evs, chromeComplete{
			Name: name,
			Cat:  sp.Layer,
			Ph:   "X",
			Ts:   psToUs(int64(sp.Start)),
			Dur:  psToUs(int64(sp.End) - int64(sp.Start)),
			Pid:  pidOf[sp.Layer],
			Tid:  tid + 1,
		})
	}

	for _, in := range instants {
		evs = append(evs, chromeInstant{
			Name: in.Name, Ph: "i", S: "t",
			Ts: psToUs(in.At), Pid: instantPid, Tid: 1,
		})
	}
	return evs
}

// WriteChromeTrace writes the Chrome trace-event JSON object for the
// given spans and instants.
func WriteChromeTrace(w io.Writer, spans []Span, instants []Instant) error {
	doc := struct {
		TraceEvents     []any  `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}{
		TraceEvents:     ChromeTraceEvents(spans, instants),
		DisplayTimeUnit: "ns",
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
