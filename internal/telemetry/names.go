package telemetry

// Canonical metric names. Every Registry instrument in the tree must be
// created through one of these constants (or one of the Metric* helpers
// below for per-instance families) so that dashboards, replay baselines
// and experiment scripts can rely on a single spelling. Names follow a
// `layer.subsystem.metric` shape: dot-separated lower-case segments with
// the owning layer first. The `fvlint` metricname analyzer enforces use
// of this file at lint time; TestMetricNameShape enforces the shape.
//
// The string values are frozen: replay baselines assert byte-identical
// metric dumps, so renaming a constant's value is a breaking change.
const (
	// Application-level streaming benchmark (stream.go).
	MetricStreamPackets       = "stream.packets"
	MetricStreamBackpressure  = "stream.backpressure"
	MetricStreamDrops         = "stream.drops"
	MetricStreamWindow        = "stream.window"
	MetricStreamPPS           = "stream.pps"
	MetricStreamGoodputBps    = "stream.goodput_bps"
	MetricStreamOccupancyMax  = "stream.occupancy.max"
	MetricStreamOccupancyMean = "stream.occupancy.mean"
	MetricStreamDoorbells     = "stream.doorbells"
	MetricStreamInterrupts    = "stream.interrupts"

	// Host OS model (internal/hostos).
	MetricHostSyscalls      = "hostos.syscalls"
	MetricHostPreemptions   = "hostos.preemptions"
	MetricHostPreemptNs     = "hostos.preempt.ns"
	MetricHostJitterNs      = "hostos.jitter.injected.ns"
	MetricHostWakeups       = "hostos.wakeups"
	MetricHostWakeTailHits  = "hostos.waketail.hits"
	MetricHostIRQsDelivered = "hostos.irqs.delivered"
	MetricHostWakeLatencyNs = "hostos.wake.latency.ns"

	// PCIe link and root complex (internal/pcie).
	MetricPCIeDownBytes  = "pcie.down.bytes"
	MetricPCIeUpBytes    = "pcie.up.bytes"
	MetricPCIeMSIXRaised = "pcie.msix.raised"
	MetricPCIeCplErrors  = "pcie.completion.errors"

	// Fault injection and driver recovery (internal/faults plus the
	// recovery paths in both driver stacks).
	MetricFaultsInjected        = "fault.injected.total"
	MetricRecoveryVirtioResets  = "recovery.virtio.resets"
	MetricRecoveryVirtioWatchd  = "recovery.virtio.watchdog"
	MetricRecoveryVirtioRequeue = "recovery.virtio.requeued"
	MetricRecoveryMMIORetries   = "recovery.mmio.retries"
	MetricRecoveryXDMAResets    = "recovery.xdma.resets"
	MetricRecoveryXDMAWatchdog  = "recovery.xdma.watchdog"
	MetricRecoveryXDMAResubmits = "recovery.xdma.resubmits"

	// In-sim network stack (internal/netstack).
	MetricNetstackTxPackets = "netstack.tx.packets"
	MetricNetstackRxPackets = "netstack.rx.packets"
	MetricNetstackRxDropped = "netstack.rx.dropped"
	MetricNetstackARPHits   = "netstack.arp.hits"
	MetricNetstackARPMisses = "netstack.arp.misses"
	MetricNetstackCsumBytes = "netstack.csum.sw.bytes"

	// VirtIO transport driver (internal/drivers/virtiopci).
	MetricVirtioDoorbells      = "driver.virtio.doorbells"
	MetricVirtioKicksElided    = "driver.virtio.kicks.elided"
	MetricVirtioDescsPosted    = "driver.virtio.desc.posted"
	MetricVirtioDescsCompleted = "driver.virtio.desc.completed"

	// virtio-net driver (internal/drivers/virtionet).
	MetricVirtionetTxPackets = "driver.virtionet.tx.packets"
	MetricVirtionetRxPackets = "driver.virtionet.rx.packets"
	MetricVirtionetRxIRQs    = "driver.virtionet.rx.irqs"

	// virtio-console driver (internal/drivers/virtioconsole).
	MetricVirtioconsoleTxBytes = "driver.virtioconsole.tx.bytes"
	MetricVirtioconsoleRxBytes = "driver.virtioconsole.rx.bytes"

	// virtio-blk driver (internal/drivers/virtioblk).
	MetricVirtioblkRequests = "driver.virtioblk.requests"

	// XDMA memory port (internal/xdmaip).
	MetricDMAPortReads      = "dma-engine.port.reads"
	MetricDMAPortWrites     = "dma-engine.port.writes"
	MetricDMAPortReadBytes  = "dma-engine.port.read.bytes"
	MetricDMAPortWriteBytes = "dma-engine.port.write.bytes"

	// VirtIO device model (internal/vdev).
	MetricVdevNotifies       = "virtio-device.notifies"
	MetricVdevChainsServiced = "virtio-device.chains.serviced"
	MetricVdevIRQsRaised     = "virtio-device.interrupts.raised"
	MetricVdevIRQsSuppressed = "virtio-device.interrupts.suppressed"
	MetricVdevIRQsCoalesced  = "virtio-device.interrupts.coalesced"

	// Tail-latency attribution: per-sample RTT decomposition recorded
	// into HDR histograms by both session types (netsession.go,
	// xdmasession.go), so percentile estimates stay trustworthy at
	// sweep scale without retaining every sample.
	MetricTailRTTTotalNs = "tail.rtt.total.ns"
	MetricTailRTTSWNs    = "tail.rtt.sw.ns"
	MetricTailRTTHWNs    = "tail.rtt.hw.ns"
	MetricTailRTTRGNs    = "tail.rtt.rg.ns"

	// Busy-poll datapaths (internal/hostos poll.go): spin-loop
	// accounting for the poll-mode drivers. wasted counts empty
	// iterations (a proxy for burned cycles with no work to show),
	// cpu.burn.ns is the modeled CPU time the spin loops consumed —
	// the currency of the latency-vs-CPU trade study.
	MetricPollSpins  = "poll.spins"
	MetricPollWasted = "poll.wasted"
	MetricPollYields = "poll.yields"
	MetricPollBurnNs = "poll.cpu.burn.ns"

	// Flight recorder (internal/telemetry/flight.go): the always-on
	// bounded span ring each session installs at boot and the
	// post-mortem dumps it takes on fault recoveries and new
	// worst-case samples.
	MetricRecorderSpansCaptured = "recorder.spans.captured"
	MetricRecorderSpansDropped  = "recorder.spans.dropped"
	MetricRecorderDumps         = "recorder.dumps"
	MetricRecorderDumpsDropped  = "recorder.dumps.dropped"

	// Event-loop introspection (internal/sim): scheduler load mirrored
	// from sim.QueueStats after each run, so event counts and queue
	// pressure show up next to the driver metrics in `fvbench -metrics`
	// and on the Prometheus endpoint. depth.max is the high-water mark
	// of live queued events over the session's life.
	MetricSimEventsScheduled = "sim.events.scheduled"
	MetricSimEventsFired     = "sim.events.fired"
	MetricSimEventsCancelled = "sim.events.cancelled"
	MetricSimQueueDepthMax   = "sim.queue.depth.max"
)

// Per-instance metric families. The helpers keep the dynamic part (a
// TLP kind, a channel direction, an engine name) out of the frozen
// constant table while still funnelling every name through this file.

// MetricPCIeDownTLP names the per-kind downstream TLP counter.
func MetricPCIeDownTLP(kind string) string { return "pcie.down.tlp." + kind }

// MetricPCIeUpTLP names the per-kind upstream TLP counter.
func MetricPCIeUpTLP(kind string) string { return "pcie.up.tlp." + kind }

// MetricXDMATransfers names the per-direction XDMA transfer counter.
func MetricXDMATransfers(dir string) string { return "driver.xdma." + dir + ".transfers" }

// MetricXDMABytes names the per-direction XDMA byte counter.
func MetricXDMABytes(dir string) string { return "driver.xdma." + dir + ".bytes" }

// MetricXDMAIRQs names the per-direction XDMA interrupt counter.
func MetricXDMAIRQs(dir string) string { return "driver.xdma." + dir + ".irqs" }

// MetricDMAEngineRuns names a DMA engine's run counter.
func MetricDMAEngineRuns(name string) string { return "dma-engine." + name + ".runs" }

// MetricDMAEngineDescriptors names a DMA engine's descriptor counter.
func MetricDMAEngineDescriptors(name string) string { return "dma-engine." + name + ".descriptors" }

// MetricDMAEngineBytes names a DMA engine's payload byte counter.
func MetricDMAEngineBytes(name string) string { return "dma-engine." + name + ".bytes" }

// MetricFaultInjected names the per-class fault injection counter.
func MetricFaultInjected(class string) string { return "fault." + class + ".injected" }
