package telemetry

import (
	"bytes"
	"testing"
)

// TestMetricsCSVGolden pins the exporter's byte-exact output for a
// registry built in deliberately scrambled insertion order: emission is
// sorted by name (never map iteration order), so the golden holds on
// every run and Go release.
func TestMetricsCSVGolden(t *testing.T) {
	const golden = `name,type,value,count,sum,le
driver.virtio.doorbells,counter,2,,,
recorder.dumps,counter,1,,,
stream.window,gauge,8,,,
tail.rtt.total.ns,hdrhistogram,,2,133,
tail.rtt.total.ns,bucket,,1,,5
tail.rtt.total.ns,bucket,,1,,129
`
	for round := 0; round < 5; round++ {
		reg := NewRegistry()
		if round%2 == 0 { // vary insertion order round to round
			reg.Counter(MetricRecorderDumps).Add(1)
			reg.Gauge(MetricStreamWindow).Set(8)
			reg.Counter(MetricVirtioDoorbells).Add(2)
		} else {
			reg.Counter(MetricVirtioDoorbells).Add(2)
			reg.Counter(MetricRecorderDumps).Add(1)
			reg.Gauge(MetricStreamWindow).Set(8)
		}
		h := reg.HDR(MetricTailRTTTotalNs)
		h.Observe(5)   // exact bucket, bound 5
		h.Observe(128) // log bucket, inclusive bound 129
		var b bytes.Buffer
		if err := WriteMetricsCSV(&b, reg.Snapshot()); err != nil {
			t.Fatalf("WriteMetricsCSV: %v", err)
		}
		if b.String() != golden {
			t.Fatalf("round %d: CSV diverges from golden:\n got:\n%s\nwant:\n%s", round, b.String(), golden)
		}
	}
}
