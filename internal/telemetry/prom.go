package telemetry

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for metric snapshots, so
// `fvbench -serve` can stream live run state to curl or an actual
// scraper without any dependency. Canonical dotted metric names map to
// Prometheus conventions by replacing '.' and '-' with '_'
// ("driver.virtio.doorbells" -> "driver_virtio_doorbells").

// promName sanitizes a canonical metric name for the exposition
// format.
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '.', '-':
			return '_'
		}
		return r
	}, name)
}

// promFloat renders a float the way Prometheus expects (+Inf for the
// overflow bound).
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the snapshots in Prometheus text exposition
// format. Counters and gauges become single samples; histograms (both
// fixed-bucket and HDR) become cumulative `_bucket{le=...}` series
// with the standard `_sum` and `_count` children. Snapshot order is
// preserved (Registry.Snapshot already sorts by name).
func WritePrometheus(w io.Writer, snaps []MetricSnapshot) error {
	for _, s := range snaps {
		name := promName(s.Name)
		switch s.Type {
		case "counter":
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", name, name, promFloat(s.Value)); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(s.Value)); err != nil {
				return err
			}
		case "histogram", "hdrhistogram":
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			var cum int64
			sawInf := false
			for _, b := range s.Buckets {
				cum += b.Count
				if math.IsInf(b.UpperBound, 1) {
					sawInf = true
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(b.UpperBound), cum); err != nil {
					return err
				}
			}
			// HDR snapshots carry only their non-empty finite buckets;
			// close the series with the mandatory +Inf bucket.
			if !sawInf {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(s.Sum), name, s.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
