package telemetry

import (
	"testing"
)

// TestFlightRingWrap: a full ring evicts oldest-first and the snapshot
// comes out in chronological order across the wrap point.
func TestFlightRingWrap(t *testing.T) {
	reg := NewRegistry()
	fr := NewFlightRecorder(4, 2, reg)
	for i := int64(0); i < 6; i++ {
		fr.FlightClosed(ps(i), LayerWire, "down", "MWr", ps(i), ps(i+1))
	}
	if fr.Len() != 4 {
		t.Fatalf("ring holds %d spans, want 4", fr.Len())
	}
	if fr.Captured() != 6 {
		t.Fatalf("captured = %d, want 6", fr.Captured())
	}
	if !fr.Snapshot("test", ps(10)) {
		t.Fatal("snapshot refused with free slots")
	}
	dumps := fr.Dumps()
	if len(dumps) != 1 || len(dumps[0].Spans) != 4 {
		t.Fatalf("got %d dumps / %d spans, want 1 / 4", len(dumps), len(dumps[0].Spans))
	}
	for i, sp := range dumps[0].Spans {
		if want := ps(int64(i) + 2); sp.Start != want {
			t.Errorf("span %d starts at %v, want %v (chronological across the wrap)", i, sp.Start, want)
		}
	}
}

// TestFlightOpenSpans: begun-but-unfinished spans appear in a dump
// marked Open with End at the dump instant, and close normally
// afterwards.
func TestFlightOpenSpans(t *testing.T) {
	reg := NewRegistry()
	fr := NewFlightRecorder(16, 2, reg)
	id := fr.FlightBegin(ps(5), LayerDriver, "xmit")
	if !fr.Snapshot("mid", ps(9)) {
		t.Fatal("snapshot refused")
	}
	d := fr.Dumps()[0]
	if len(d.Spans) != 1 {
		t.Fatalf("dump has %d spans, want 1 open span", len(d.Spans))
	}
	if !d.Spans[0].Open || d.Spans[0].End != ps(9) {
		t.Errorf("open span = %+v, want Open=true End=9ns", d.Spans[0])
	}
	// The span still closes into the ring afterwards.
	fr.FlightEnd(ps(12), id)
	if fr.Len() != 1 {
		t.Fatalf("ring holds %d spans after close, want 1", fr.Len())
	}
}

// TestFlightOpenTableOverflow: more concurrently-open spans than side
// table slots count as dropped, and the overflow id's FlightEnd is a
// harmless no-op.
func TestFlightOpenTableOverflow(t *testing.T) {
	reg := NewRegistry()
	fr := NewFlightRecorder(16, 2, reg)
	ids := make([]uint64, 0, flightOpenSlots+1)
	for i := 0; i <= flightOpenSlots; i++ {
		ids = append(ids, fr.FlightBegin(ps(int64(i)), LayerDriver, "deep"))
	}
	if got := reg.Counter(MetricRecorderSpansDropped).Value(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	fr.FlightEnd(ps(100), ids[len(ids)-1]) // dropped open: no-op
	if fr.Len() != 0 {
		t.Fatalf("ring holds %d spans, want 0 (overflow span was dropped)", fr.Len())
	}
	fr.FlightEnd(ps(100), ids[0]) // tracked open still closes
	if fr.Len() != 1 {
		t.Fatalf("ring holds %d spans, want 1", fr.Len())
	}
}

// TestFlightSameReasonOverwrite: a repeated trigger reuses its slot and
// keeps the freshest context.
func TestFlightSameReasonOverwrite(t *testing.T) {
	reg := NewRegistry()
	fr := NewFlightRecorder(8, 2, reg)
	fr.FlightClosed(ps(1), LayerWire, "down", "MWr", ps(1), ps(2))
	fr.Snapshot("fault:needsreset", ps(2))
	fr.FlightClosed(ps(3), LayerWire, "up", "CplD", ps(3), ps(4))
	fr.Snapshot("fault:needsreset", ps(4))

	dumps := fr.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps, want 1 (same reason overwrites)", len(dumps))
	}
	if dumps[0].Seq != 2 || dumps[0].At != ps(4) {
		t.Errorf("dump seq/at = %d/%v, want 2/4ns (the later occurrence)", dumps[0].Seq, dumps[0].At)
	}
	if len(dumps[0].Spans) != 2 {
		t.Errorf("dump has %d spans, want 2", len(dumps[0].Spans))
	}
	if got := reg.Counter(MetricRecorderDumps).Value(); got != 2 {
		t.Errorf("recorder.dumps = %d, want 2 (both snapshots counted)", got)
	}
}

// TestFlightDumpSlotExhaustion: distinct reasons beyond the slot count
// are refused and counted, never evicting another reason's dump.
func TestFlightDumpSlotExhaustion(t *testing.T) {
	reg := NewRegistry()
	fr := NewFlightRecorder(8, 2, reg)
	if !fr.Snapshot("a", ps(1)) || !fr.Snapshot("b", ps(2)) {
		t.Fatal("first two snapshots refused")
	}
	if fr.Snapshot("c", ps(3)) {
		t.Fatal("third distinct reason took a slot; want refusal")
	}
	if got := reg.Counter(MetricRecorderDumpsDropped).Value(); got != 1 {
		t.Fatalf("recorder.dumps.dropped = %d, want 1", got)
	}
	dumps := fr.Dumps()
	if len(dumps) != 2 || dumps[0].Reason != "a" || dumps[1].Reason != "b" {
		t.Fatalf("dumps = %+v, want reasons a, b intact", dumps)
	}
	// The established reasons still refresh.
	if !fr.Snapshot("a", ps(5)) {
		t.Fatal("existing reason refused after exhaustion")
	}
}

// TestFlightDumpSpans: the Chrome-export conversion prefixes wire
// direction and tags open spans.
func TestFlightDumpSpans(t *testing.T) {
	d := FlightDump{Spans: []FlightSpan{
		{Layer: LayerWire, Dir: "down", Name: "MWr", Start: ps(0), End: ps(2)},
		{Layer: LayerDriver, Name: "xmit", Start: ps(1), End: ps(5), Open: true},
	}}
	spans := DumpSpans(d)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "down:MWr" || spans[0].ID != 1 {
		t.Errorf("wire span = %+v, want name down:MWr id 1", spans[0])
	}
	if spans[1].Name != "xmit" || len(spans[1].Attrs) != 2 || spans[1].Attrs[0] != "open" {
		t.Errorf("open span = %+v, want open attr", spans[1])
	}
}
