package telemetry

import (
	"strings"
	"testing"

	"fpgavirtio/internal/sim"
)

// span builds a test span with picosecond endpoints given in ns.
func span(id uint64, layer, name string, startNs, endNs int64) Span {
	return Span{ID: id, Layer: layer, Name: name, Start: ps(startNs), End: ps(endNs)}
}

// renderSegments flattens a critical path for golden comparison:
// "layer:name@start-end" in ns, space-separated.
func renderSegments(cp *CriticalPath) string {
	var parts []string
	for _, seg := range cp.Segments {
		parts = append(parts, strings.Join([]string{
			seg.Layer, ":", seg.Name, "@",
			sim.Duration(seg.Start).String(), "-", sim.Duration(seg.End).String(),
		}, ""))
	}
	return strings.Join(parts, " ")
}

// TestCriticalPathNested is the canonical shape: a driver span inside
// the app window, a pcie span inside the driver. The innermost span
// wins each instant; uncovered time falls back to the app layer.
func TestCriticalPathNested(t *testing.T) {
	spans := []Span{
		span(1, LayerApp, "ping", 0, 100),
		span(2, LayerDriver, "xmit", 10, 40),
		span(3, LayerPCIe, "mmio", 20, 30),
	}
	cp, err := AnalyzeCriticalPath(spans)
	if err != nil {
		t.Fatalf("AnalyzeCriticalPath: %v", err)
	}
	want := "app:ping@0ps-10ns driver:xmit@10ns-20ns pcie:mmio@20ns-30ns driver:xmit@30ns-40ns app:ping@40ns-100ns"
	if got := renderSegments(cp); got != want {
		t.Errorf("segments:\n got %s\nwant %s", got, want)
	}
	wantLayers := map[string]sim.Duration{
		LayerApp:    70 * sim.Nanosecond,
		LayerDriver: 20 * sim.Nanosecond,
		LayerPCIe:   10 * sim.Nanosecond,
	}
	if len(cp.Layers) != len(wantLayers) {
		t.Fatalf("got %d layers, want %d", len(cp.Layers), len(wantLayers))
	}
	for _, st := range cp.Layers {
		if st.Total != wantLayers[st.Layer] {
			t.Errorf("layer %s total = %v, want %v", st.Layer, st.Total, wantLayers[st.Layer])
		}
	}
}

// TestCriticalPathPartitionExact: layer totals and shares sum to the
// root duration with no residue, the tentpole's core invariant.
func TestCriticalPathPartitionExact(t *testing.T) {
	spans := []Span{
		span(1, LayerApp, "ping", 0, 1000),
		span(2, LayerSyscall, "enter", 3, 17),
		span(3, LayerDriver, "xmit", 17, 120),
		span(4, LayerPCIe, "mmio", 40, 77),
		span(5, LayerWire, "down:MWr", 77, 99),
		span(6, LayerVirtIODevice, "dma", 120, 800),
		span(7, LayerIRQ, "isr", 800, 890),
		span(8, LayerDriver, "napi", 890, 997),
	}
	cp, err := AnalyzeCriticalPath(spans)
	if err != nil {
		t.Fatalf("AnalyzeCriticalPath: %v", err)
	}
	var total sim.Duration
	var share float64
	for _, st := range cp.Layers {
		total += st.Total
		share += st.Share
	}
	if total != cp.Total() {
		t.Errorf("layer totals sum to %v, want root duration %v", total, cp.Total())
	}
	if share < 0.999999 || share > 1.000001 {
		t.Errorf("shares sum to %v, want 1", share)
	}
	var segTotal sim.Duration
	for _, seg := range cp.Segments {
		segTotal += seg.Duration()
	}
	if segTotal != cp.Total() {
		t.Errorf("segment durations sum to %v, want %v", segTotal, cp.Total())
	}
}

// TestCriticalPathOverlap: two spans overlap without nesting; in the
// shared region the later-started span is the innermost.
func TestCriticalPathOverlap(t *testing.T) {
	spans := []Span{
		span(1, LayerApp, "ping", 0, 100),
		span(2, LayerDriver, "xmit", 10, 60),
		span(3, LayerVirtIODevice, "dma", 40, 90),
	}
	cp, err := AnalyzeCriticalPath(spans)
	if err != nil {
		t.Fatalf("AnalyzeCriticalPath: %v", err)
	}
	want := "app:ping@0ps-10ns driver:xmit@10ns-40ns virtio-device:dma@40ns-90ns app:ping@90ns-100ns"
	if got := renderSegments(cp); got != want {
		t.Errorf("segments:\n got %s\nwant %s", got, want)
	}
}

// TestCriticalPathClipping: spans straddling the root window only
// contribute their overlap; spans fully outside are ignored.
func TestCriticalPathClipping(t *testing.T) {
	root := span(1, LayerApp, "ping", 100, 200)
	spans := []Span{
		root,
		span(2, LayerDriver, "early", 50, 120), // clipped to [100,120]
		span(3, LayerDriver, "late", 180, 250), // clipped to [180,200]
		span(4, LayerVirtIODevice, "outside", 10, 90), // ignored
	}
	cp := AnalyzeCriticalPathAt(spans, root)
	want := "driver:early@100ns-120ns app:ping@120ns-180ns driver:late@180ns-200ns"
	if got := renderSegments(cp); got != want {
		t.Errorf("segments:\n got %s\nwant %s", got, want)
	}
}

// TestCriticalPathNoApp: a capture without an app span cannot be
// attributed.
func TestCriticalPathNoApp(t *testing.T) {
	if _, err := AnalyzeCriticalPath([]Span{span(1, LayerDriver, "xmit", 0, 10)}); err == nil {
		t.Fatal("expected an error for a capture without an app span")
	}
	if _, err := AnalyzeCriticalPath(nil); err == nil {
		t.Fatal("expected an error for an empty capture")
	}
}

// TestCriticalPathPicksLastApp: with several app spans (a multi-packet
// capture) the analyzer attributes the last round trip.
func TestCriticalPathPicksLastApp(t *testing.T) {
	spans := []Span{
		span(1, LayerApp, "ping", 0, 50),
		span(2, LayerApp, "ping", 60, 90),
		span(3, LayerDriver, "xmit", 70, 80),
	}
	cp, err := AnalyzeCriticalPath(spans)
	if err != nil {
		t.Fatalf("AnalyzeCriticalPath: %v", err)
	}
	if cp.Root.ID != 2 {
		t.Fatalf("root span ID = %d, want 2 (the later app span)", cp.Root.ID)
	}
	want := "app:ping@60ns-70ns driver:xmit@70ns-80ns app:ping@80ns-90ns"
	if got := renderSegments(cp); got != want {
		t.Errorf("segments:\n got %s\nwant %s", got, want)
	}
}

// TestCriticalPathEmptyRoot: a zero-length root yields an empty
// partition rather than dividing by zero.
func TestCriticalPathEmptyRoot(t *testing.T) {
	root := span(1, LayerApp, "ping", 50, 50)
	cp := AnalyzeCriticalPathAt([]Span{root}, root)
	if len(cp.Segments) != 0 || len(cp.Layers) != 0 {
		t.Errorf("zero-length root produced %d segments, %d layers", len(cp.Segments), len(cp.Layers))
	}
}

// TestCriticalPathMergesAdjacent: consecutive elementary intervals won
// by the same span fold into one segment.
func TestCriticalPathMergesAdjacent(t *testing.T) {
	spans := []Span{
		span(1, LayerApp, "ping", 0, 100),
		span(2, LayerDriver, "xmit", 10, 90),
		// Two back-to-back inner spans split the driver interval's
		// boundary set but leave one driver segment on each side.
		span(3, LayerPCIe, "a", 20, 30),
		span(4, LayerPCIe, "a", 30, 40),
	}
	cp, err := AnalyzeCriticalPath(spans)
	if err != nil {
		t.Fatalf("AnalyzeCriticalPath: %v", err)
	}
	// The two pcie:a spans merge (same layer and name, adjacent).
	want := "app:ping@0ps-10ns driver:xmit@10ns-20ns pcie:a@20ns-40ns driver:xmit@40ns-90ns app:ping@90ns-100ns"
	if got := renderSegments(cp); got != want {
		t.Errorf("segments:\n got %s\nwant %s", got, want)
	}
}
