package telemetry

import (
	"math"
	"math/bits"
)

// HDR histogram: log-bucketed latency recording with bounded relative
// error, replacing fixed-bucket histograms for per-layer latency. A
// fixed bucket table is only trustworthy near the bounds someone chose
// when the instrument was registered; at sweep scale the tails land in
// the +Inf overflow bucket and percentile estimates degrade to "bigger
// than the last bound". The HDR layout instead covers the full int64
// range with hdrSubBuckets linear sub-buckets per power of two, so
// every recorded value — median or p99.99 — is resolved to within
// 1/hdrSubBuckets (~1.6%) of its magnitude, with O(1) allocation-free
// Observe.
const (
	hdrSubBits    = 6
	hdrSubBuckets = 1 << hdrSubBits  // 64 linear sub-buckets per octave
	hdrBucketLen  = 64 << hdrSubBits // covers all of int64
)

// HDRHistogram counts non-negative int64 observations (nanoseconds, by
// convention) into log-spaced buckets with a bounded relative error of
// 1/64. The counts array is fixed at construction: Observe never
// allocates, so the instrument is safe on 0-alloc hot paths.
type HDRHistogram struct {
	name   string
	counts [hdrBucketLen]int64
	count  int64
	sum    float64
	min    int64
	max    int64
}

// NewHDRHistogram returns an unregistered HDR histogram. Most callers
// want Registry.HDR instead.
func NewHDRHistogram(name string) *HDRHistogram {
	return &HDRHistogram{name: name, min: -1}
}

// hdrIndex maps a non-negative value to its bucket index. Values below
// hdrSubBuckets are recorded exactly (bucket width 1); above that, the
// top hdrSubBits bits below the leading bit select a linear sub-bucket
// within the value's octave.
func hdrIndex(v int64) int {
	u := uint64(v)
	if u < hdrSubBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 1 - hdrSubBits
	return ((exp + 1) << hdrSubBits) | int((u>>uint(exp))&(hdrSubBuckets-1))
}

// hdrUpperBound reports the largest value mapping to bucket index i —
// the inclusive upper bound exporters publish.
func hdrUpperBound(i int) int64 {
	octave := i >> hdrSubBits
	sub := int64(i & (hdrSubBuckets - 1))
	if octave == 0 {
		return sub
	}
	width := int64(1) << uint(octave-1)
	lower := (hdrSubBuckets + sub) * width
	return lower + width - 1
}

// Observe records one value. Negative values clamp to zero. Never
// allocates.
func (h *HDRHistogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[hdrIndex(v)]++
	h.count++
	h.sum += float64(v)
	if h.min < 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports total observations; Sum their running total.
func (h *HDRHistogram) Count() int64 { return h.count }

// Sum reports the running total of observed values.
func (h *HDRHistogram) Sum() float64 { return h.sum }

// Min and Max report the exact extremes observed (0 when empty).
func (h *HDRHistogram) Min() int64 {
	if h.min < 0 {
		return 0
	}
	return h.min
}

// Max reports the exact maximum observed.
func (h *HDRHistogram) Max() int64 { return h.max }

// Name reports the registered name.
func (h *HDRHistogram) Name() string { return h.name }

// Quantile estimates the q-th percentile (q in (0, 100]) by
// nearest-rank over the bucket counts, returning the bucket's upper
// bound clamped to the exact observed extremes — so Quantile(100)
// equals Max exactly, and every estimate is within 1/64 relative error
// of the true sample percentile.
func (h *HDRHistogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	// Same nearest-rank arithmetic (and float-epsilon guard) as
	// perf.Series.Percentile, so series and histogram views agree.
	rank := int64(math.Ceil(q/100*float64(h.count) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i]
		if seen >= rank {
			v := hdrUpperBound(i)
			if v > h.max {
				v = h.max
			}
			if h.min >= 0 && v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Merge folds other's counts into h (for aggregating per-session
// instruments into a run-level view).
func (h *HDRHistogram) Merge(other *HDRHistogram) {
	if other == nil || other.count == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.count += other.count
	h.sum += other.sum
	if h.min < 0 || (other.min >= 0 && other.min < h.min) {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Buckets returns the non-empty buckets in ascending bound order as
// snapshot buckets (non-cumulative counts, inclusive upper bounds).
func (h *HDRHistogram) Buckets() []BucketSnapshot {
	var out []BucketSnapshot
	for i := range h.counts {
		if h.counts[i] != 0 {
			out = append(out, BucketSnapshot{UpperBound: float64(hdrUpperBound(i)), Count: h.counts[i]})
		}
	}
	return out
}
