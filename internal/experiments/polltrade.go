package experiments

import (
	"fmt"

	"fpgavirtio/internal/perf"
	"fpgavirtio/internal/telemetry"
)

// ---- E13: poll-mode latency-vs-CPU trade study -------------------------------

// PollTradeStudy is the four-way (stack × datapath) comparison: both
// driver stacks measured interrupt-driven and busy-polling over the
// same payload grid, with the CPU price of polling quantified from the
// poll.* counters. This is the trade the kernel's NAPI-busy-poll and
// DPDK-style userspace drivers argue about: latency bought with a
// burning core.
type PollTradeStudy struct {
	Params Params
	Rows   []PollTradeRow
	// Points holds all four arms' latency points per payload, in
	// (virtio-irq, virtio-poll, xdma-irq, xdma-poll) order — the
	// artifact's flat view of the grid.
	Points []*PointResult
}

// PollTradeRow is one payload's four-way comparison plus the poll
// arms' CPU accounting.
type PollTradeRow struct {
	Payload                                  int
	VirtIOIRQ, VirtIOPoll, XDMAIRQ, XDMAPoll perf.Summary
	// Interrupt totals of the interrupt arms (the poll arms are zero by
	// construction — asserted, not assumed).
	VirtIOIRQs, XDMAIRQs int
	// SpinsPerPkt and BurnNsPerPkt are the poll arms' spin-loop
	// iterations and modeled CPU burn per round trip, from the poll.*
	// counters.
	VirtIOSpinsPerPkt, XDMASpinsPerPkt   float64
	VirtIOBurnNsPerPkt, XDMABurnNsPerPkt float64
}

// metricValue reads one counter out of a point's metric snapshot.
func metricValue(pt *PointResult, name string) float64 {
	for _, m := range pt.Metrics {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

// RunPollTrade measures the full four-way grid across the payload
// sweep.
func RunPollTrade(p Params) (*PollTradeStudy, error) {
	p = p.withDefaults()
	res := &PollTradeStudy{Params: p}
	irqP, pollP := p, p
	irqP.PollMode = false
	pollP.PollMode = true
	for _, payload := range p.Payloads {
		vIRQ, err := MeasureVirtIO(irqP, payload, nil)
		if err != nil {
			return nil, fmt.Errorf("virtio irq %dB: %w", payload, err)
		}
		vPoll, err := MeasureVirtIO(pollP, payload, nil)
		if err != nil {
			return nil, fmt.Errorf("virtio poll %dB: %w", payload, err)
		}
		xIRQ, err := MeasureXDMA(irqP, payload, nil)
		if err != nil {
			return nil, fmt.Errorf("xdma irq %dB: %w", payload, err)
		}
		xPoll, err := MeasureXDMA(pollP, payload, nil)
		if err != nil {
			return nil, fmt.Errorf("xdma poll %dB: %w", payload, err)
		}
		for _, pt := range []*PointResult{vPoll, xPoll} {
			if pt.Interrupts != 0 {
				return nil, fmt.Errorf("%s poll %dB: %d interrupts on a poll-mode run", pt.Driver, payload, pt.Interrupts)
			}
		}
		n := float64(p.Packets)
		res.Rows = append(res.Rows, PollTradeRow{
			Payload:            payload,
			VirtIOIRQ:          vIRQ.Total.Summarize(),
			VirtIOPoll:         vPoll.Total.Summarize(),
			XDMAIRQ:            xIRQ.Total.Summarize(),
			XDMAPoll:           xPoll.Total.Summarize(),
			VirtIOIRQs:         vIRQ.Interrupts,
			XDMAIRQs:           xIRQ.Interrupts,
			VirtIOSpinsPerPkt:  metricValue(vPoll, telemetry.MetricPollSpins) / n,
			XDMASpinsPerPkt:    metricValue(xPoll, telemetry.MetricPollSpins) / n,
			VirtIOBurnNsPerPkt: metricValue(vPoll, telemetry.MetricPollBurnNs) / n,
			XDMABurnNsPerPkt:   metricValue(xPoll, telemetry.MetricPollBurnNs) / n,
		})
		res.Points = append(res.Points, vIRQ, vPoll, xIRQ, xPoll)
	}
	return res, nil
}

// BuildPollTradeArtifact renders the study as a fvbench/v1 artifact:
// all four arms appear as points, distinguished by the driver and
// datapath fields.
func BuildPollTradeArtifact(r *PollTradeStudy) *telemetry.BenchArtifact {
	a := &telemetry.BenchArtifact{
		Schema:     telemetry.BenchSchema,
		Experiment: "polltrade",
		Mode:       "polltrade",
		Seed:       r.Params.Seed,
		Packets:    r.Params.Packets,
		Link:       r.Params.Link.String(),
	}
	for _, pt := range r.Points {
		a.Points = append(a.Points, BuildPoint(pt))
	}
	return a
}

// Render prints the four-way table plus the CPU price of polling.
func (r *PollTradeStudy) Render() string {
	t := perf.Table{
		Title: fmt.Sprintf("E13 — Poll vs interrupt datapaths, both stacks (us, %d packets/arm)",
			r.Params.Packets),
		Headers: []string{"payload", "arm", "mean", "p50", "p99", "p99.9",
			"irqs/pkt", "spins/pkt", "burn ns/pkt"},
	}
	for _, row := range r.Rows {
		perPkt := func(n int) string { return fmt.Sprintf("%.2f", float64(n)/float64(r.Params.Packets)) }
		add := func(arm string, s perf.Summary, irqs, spins, burn string) {
			t.AddRow(fmt.Sprint(row.Payload), arm, perf.Us(s.Mean), perf.Us(s.P50),
				perf.Us(s.P99), perf.Us(s.P999), irqs, spins, burn)
		}
		add("virtio irq", row.VirtIOIRQ, perPkt(row.VirtIOIRQs), "-", "-")
		add("virtio poll", row.VirtIOPoll, "0.00",
			fmt.Sprintf("%.1f", row.VirtIOSpinsPerPkt), fmt.Sprintf("%.0f", row.VirtIOBurnNsPerPkt))
		add("xdma irq", row.XDMAIRQ, perPkt(row.XDMAIRQs), "-", "-")
		add("xdma poll", row.XDMAPoll, "0.00",
			fmt.Sprintf("%.1f", row.XDMASpinsPerPkt), fmt.Sprintf("%.0f", row.XDMABurnNsPerPkt))
	}
	return t.String()
}
