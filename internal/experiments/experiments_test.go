package experiments

import (
	"strings"
	"testing"

	"fpgavirtio/internal/sim"
)

// testParams keeps runs fast while leaving enough samples for stable
// percentiles at the tested levels.
func testParams() Params {
	return Params{Seed: 7, Packets: 400, Payloads: []int{64, 256, 1024}}
}

// sweepOnce caches the sweep across shape tests (it is deterministic).
var cachedSweep *Sweep

func getSweep(t *testing.T) *Sweep {
	t.Helper()
	if cachedSweep == nil {
		sw, err := RunSweep(testParams())
		if err != nil {
			t.Fatal(err)
		}
		cachedSweep = sw
	}
	return cachedSweep
}

// TestShapeVirtIONeverSlower asserts the paper's headline: replacing
// the vendor driver with VirtIO in no case reduces performance.
func TestShapeVirtIONeverSlower(t *testing.T) {
	sw := getSweep(t)
	for i := range sw.VirtIO {
		v, x := sw.VirtIO[i], sw.XDMA[i]
		if v.Total.Mean() > x.Total.Mean() {
			t.Errorf("payload %d: VirtIO mean %v > XDMA mean %v", v.Payload, v.Total.Mean(), x.Total.Mean())
		}
	}
}

// TestShapeVirtIOLowerVariance asserts the reduced-variance claim.
func TestShapeVirtIOLowerVariance(t *testing.T) {
	sw := getSweep(t)
	for i := range sw.VirtIO {
		v, x := sw.VirtIO[i], sw.XDMA[i]
		if v.Total.Std() >= x.Total.Std() {
			t.Errorf("payload %d: VirtIO std %v >= XDMA std %v", v.Payload, v.Total.Std(), x.Total.Std())
		}
	}
}

// TestShapeTailLatencies asserts Table I's structure: VirtIO wins at
// 95% and 99%, while 99.9% shows no significant difference.
func TestShapeTailLatencies(t *testing.T) {
	tbl := RunTable1(getSweep(t))
	for _, r := range tbl.Rows {
		if r.V95 >= r.X95 {
			t.Errorf("payload %d: p95 VirtIO %v >= XDMA %v", r.Payload, r.V95, r.X95)
		}
		if r.V99 >= r.X99 {
			t.Errorf("payload %d: p99 VirtIO %v >= XDMA %v", r.Payload, r.V99, r.X99)
		}
		ratio := float64(r.V999) / float64(r.X999)
		if ratio < 0.55 || ratio > 1.5 {
			t.Errorf("payload %d: p99.9 differs significantly: VirtIO %v vs XDMA %v", r.Payload, r.V999, r.X999)
		}
	}
}

// TestShapeBreakdowns asserts Figures 4 and 5: hardware dominates the
// VirtIO decomposition, software dominates the XDMA one, and the
// VirtIO software share is nearly constant across payloads.
func TestShapeBreakdowns(t *testing.T) {
	sw := getSweep(t)
	fig4 := RunFig4(sw)
	fig5 := RunFig5(sw)
	var swMin, swMax sim.Duration
	for i, r := range fig4.Rows {
		if r.HWMean <= r.SWMean {
			t.Errorf("VirtIO payload %d: hw %v <= sw %v", r.Payload, r.HWMean, r.SWMean)
		}
		if i == 0 || r.SWMean < swMin {
			swMin = r.SWMean
		}
		if r.SWMean > swMax {
			swMax = r.SWMean
		}
	}
	if float64(swMax)/float64(swMin) > 1.25 {
		t.Errorf("VirtIO software share not flat: %v..%v", swMin, swMax)
	}
	for _, r := range fig5.Rows {
		if r.SWMean <= r.HWMean {
			t.Errorf("XDMA payload %d: sw %v <= hw %v", r.Payload, r.SWMean, r.HWMean)
		}
	}
}

// TestShapeHardwareGrowsWithPayload asserts both engines' hardware
// time increases with transfer size.
func TestShapeHardwareGrowsWithPayload(t *testing.T) {
	sw := getSweep(t)
	for _, pts := range [][]*PointResult{sw.VirtIO, sw.XDMA} {
		for i := 1; i < len(pts); i++ {
			if pts[i].HW.Mean() <= pts[i-1].HW.Mean() {
				t.Errorf("%s: hw mean not increasing: %v (%dB) -> %v (%dB)",
					pts[i].Driver, pts[i-1].HW.Mean(), pts[i-1].Payload, pts[i].HW.Mean(), pts[i].Payload)
			}
		}
	}
}

// TestShapeHardwareVarianceMinimal asserts the Fig. 4 observation that
// the hardware share has minimal variance relative to software.
func TestShapeHardwareVarianceMinimal(t *testing.T) {
	sw := getSweep(t)
	for _, pt := range sw.VirtIO {
		if pt.HW.Std() > pt.SW.Std()/4 {
			t.Errorf("payload %d: hw std %v not minimal vs sw std %v", pt.Payload, pt.HW.Std(), pt.SW.Std())
		}
	}
}

func TestRendersContainExpectedStructure(t *testing.T) {
	sw := getSweep(t)
	all := RenderAll(sw)
	for _, want := range []string{
		"Fig. 3", "Fig. 4", "Fig. 5", "Table I",
		"virtio/64/total", "xdma/1024/total",
		"95% VirtIO", "99.9% XDMA",
	} {
		if !strings.Contains(all, want) {
			t.Errorf("RenderAll missing %q", want)
		}
	}
	rows := RunTable1(sw).Rows
	if len(rows) != len(testParams().Payloads) {
		t.Fatalf("table rows = %d", len(rows))
	}
}

func TestDeterministicSweep(t *testing.T) {
	p := Params{Seed: 9, Packets: 50, Payloads: []int{128}}
	a, err := MeasureVirtIO(p, 128, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureVirtIO(p, 128, nil)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Total.Samples(), b.Total.Samples()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, sa[i], sb[i])
		}
	}
	c, err := MeasureVirtIO(Params{Seed: 10, Packets: 50, Payloads: []int{128}}, 128, nil)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i, s := range c.Total.Samples() {
		if s == sa[i] {
			same++
		}
	}
	if same == len(sa) {
		t.Fatal("different seeds produced identical latency vectors")
	}
}

func TestOffloadAblation(t *testing.T) {
	r, err := RunOffload(Params{Seed: 3, Packets: 250}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if r.WithOffload.Mean >= r.WithoutOffload.Mean {
		t.Errorf("offloaded mean %v >= software-csum mean %v", r.WithOffload.Mean, r.WithoutOffload.Mean)
	}
	if r.SWMeanWith >= r.SWMeanWithout {
		t.Errorf("offloaded sw %v >= software-csum sw %v", r.SWMeanWith, r.SWMeanWithout)
	}
	if !strings.Contains(r.Render(), "CSUM offloaded") {
		t.Error("render missing row")
	}
}

func TestIRQAblationShape(t *testing.T) {
	r, err := RunIRQAblation(Params{Seed: 4, Packets: 250}, 256)
	if err != nil {
		t.Fatal(err)
	}
	// The realistic XDMA setup pays an extra interrupt + wake per round
	// trip, so it must be slower than the paper's favourable setup.
	if r.XDMAWithC2HWait.Mean <= r.XDMABackToBack.Mean {
		t.Errorf("realistic XDMA %v <= favourable %v", r.XDMAWithC2HWait.Mean, r.XDMABackToBack.Mean)
	}
	// Per-packet TX interrupts roughly double the device's interrupt
	// traffic (the latency impact is contention, which the model does
	// not price; the bus cost is what we assert).
	ratio := float64(r.IRQsPerPacketTx) / float64(r.IRQsSuppressedTx)
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("TX-IRQ arm interrupt ratio = %.2f, want ~2", ratio)
	}
	if float64(r.VirtIOTxIRQs.Mean) < float64(r.VirtIOSuppressedTx.Mean)*0.95 {
		t.Errorf("TX-IRQ VirtIO %v unexpectedly faster than suppressed %v", r.VirtIOTxIRQs.Mean, r.VirtIOSuppressedTx.Mean)
	}
	if !strings.Contains(r.Render(), "realistic") {
		t.Error("render missing arm")
	}
}

func TestBypassFasterThanDriverPath(t *testing.T) {
	r, err := RunBypass(Params{Seed: 5, Packets: 200, Payloads: []int{256, 1024}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.BypassMean >= row.DriverMean {
			t.Errorf("%d B: bypass %v >= driver %v", row.Bytes, row.BypassMean, row.DriverMean)
		}
	}
}

func TestPortabilityGrid(t *testing.T) {
	r, err := RunPortability(Params{Seed: 6, Packets: 500})
	if err != nil {
		t.Fatal(err)
	}
	if r.NetGen3Mean >= r.NetGen2Mean {
		t.Errorf("Gen3 %v >= Gen2 %v", r.NetGen3Mean, r.NetGen2Mean)
	}
	for name, d := range map[string]sim.Duration{
		"console": r.ConsoleMean, "blk read": r.BlkReadMean, "blk write": r.BlkWriteMean,
	} {
		if d <= 0 || d > sim.Ms(1) {
			t.Errorf("%s mean %v implausible", name, d)
		}
	}
}

func TestEventIdxExperiment(t *testing.T) {
	r, err := RunEventIdx(Params{Seed: 8, Packets: 640}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if r.EvIdxDoorbells >= r.FlagsDoorbells {
		t.Errorf("EVENT_IDX doorbells %d >= flags %d", r.EvIdxDoorbells, r.FlagsDoorbells)
	}
	if r.EvIdxIRQs > r.FlagsIRQs {
		t.Errorf("EVENT_IDX irqs %d > flags %d", r.EvIdxIRQs, r.FlagsIRQs)
	}
	if !strings.Contains(r.Render(), "EVENT_IDX") {
		t.Error("render missing mode")
	}
}

func TestOSProfiles(t *testing.T) {
	r, err := RunOSProfiles(Params{Seed: 11, Packets: 400}, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byProfile := map[string]OSProfileRow{}
	for _, row := range r.Rows {
		byProfile[row.Profile.String()] = row
		// VirtIO stays ahead of XDMA on every OS.
		if row.VirtIO.Mean >= row.XDMA.Mean {
			t.Errorf("%s: VirtIO mean %v >= XDMA %v", row.Profile, row.VirtIO.Mean, row.XDMA.Mean)
		}
	}
	// PREEMPT_RT slashes the 99.9% tail relative to the desktop.
	rt, desk := byProfile["preempt-rt"], byProfile["desktop"]
	if rt.VirtIO.P999 >= desk.VirtIO.P999 {
		t.Errorf("RT p99.9 %v >= desktop %v", rt.VirtIO.P999, desk.VirtIO.P999)
	}
	if !strings.Contains(r.Render(), "preempt-rt") {
		t.Error("render missing profile")
	}
}

func TestThroughputPipeliningWins(t *testing.T) {
	r, err := RunThroughput(Params{Seed: 12, Packets: 2048, Payloads: []int{64, 1024}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.VirtIOPktsPerS <= row.XDMAPktsPerS {
			t.Errorf("%d B: VirtIO %.0f pkt/s not above XDMA %.0f", row.Payload, row.VirtIOPktsPerS, row.XDMAPktsPerS)
		}
	}
	// Pipelining helps more at small payloads (fixed costs dominate).
	if len(r.Rows) == 2 {
		s0 := r.Rows[0].VirtIOPktsPerS / r.Rows[0].XDMAPktsPerS
		s1 := r.Rows[1].VirtIOPktsPerS / r.Rows[1].XDMAPktsPerS
		if s0 <= s1 {
			t.Errorf("speedup at 64B (%.2f) not above 1024B (%.2f)", s0, s1)
		}
	}
}

func TestRingFormatPackedFaster(t *testing.T) {
	r, err := RunRingFormat(Params{Seed: 13, Packets: 300}, 256)
	if err != nil {
		t.Fatal(err)
	}
	if r.PackedHW >= r.SplitHW {
		t.Errorf("packed hw %v not below split hw %v", r.PackedHW, r.SplitHW)
	}
	if r.Packed.Mean >= r.Split.Mean {
		t.Errorf("packed total %v not below split %v", r.Packed.Mean, r.Split.Mean)
	}
	if !strings.Contains(r.Render(), "packed") {
		t.Error("render missing row")
	}
}
