package experiments

// DefaultChaosPlan is the soak gate's fault plan (`make chaos`,
// TestChaosSoak). It is tuned so a modest sweep deterministically
// exercises every recovery class at least once:
//
//   - needsreset: the virtio device refuses doorbells with
//     DEVICE_NEEDS_RESET, forcing the full reset → re-negotiation →
//     ring rebuild → requeue path.
//   - engineerr: an XDMA engine aborts with the descriptor-error
//     status bit, forcing a channel reset and bounded resubmission.
//   - irqdrop: MSI-X completions vanish, forcing the lost-interrupt
//     watchdogs on both stacks to rescue stalled waiters.
//   - cplpoison: MMIO reads complete all-ones, forcing the poisoned-
//     read retry path.
//
// The classes left out (tlpdrop, stall, cpltimeout, dmarderr,
// dmawrerr) have targeted unit tests instead: they model damage the
// sweep's application loop either cannot distinguish from the above or
// cannot absorb at boot time.
const DefaultChaosPlan = "needsreset:every=120:count=4," +
	"engineerr:every=90:count=4," +
	"irqdrop:every=150:count=6," +
	"cplpoison:every=400:count=4"
