package experiments

import "testing"

// The Figure 4/5 and Table I shape must hold across seeds, not just at
// the one seed the other tests share: at every payload VirtIO's p95
// and p99 round-trip latency stay at or below XDMA's, while p99.9 —
// where the paper reports no significant difference — stays within a
// bounded ratio. Three seeds at a reduced packet count keep the run
// fast while still exercising independent random streams.
func TestShapeTailsAcrossSeeds(t *testing.T) {
	seeds := []uint64{11, 23, 101}
	for _, seed := range seeds {
		sw, err := RunSweep(Params{Seed: seed, Packets: 300, Payloads: []int{64, 512, 1458}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range sw.VirtIO {
			v, x := sw.VirtIO[i], sw.XDMA[i]
			v95, x95 := v.Total.Percentile(95), x.Total.Percentile(95)
			if v95 > x95 {
				t.Errorf("seed %d payload %d: VirtIO p95 %v > XDMA %v", seed, v.Payload, v95, x95)
			}
			v99, x99 := v.Total.Percentile(99), x.Total.Percentile(99)
			if v99 > x99 {
				t.Errorf("seed %d payload %d: VirtIO p99 %v > XDMA %v", seed, v.Payload, v99, x99)
			}
			v999, x999 := v.Total.Percentile(99.9), x.Total.Percentile(99.9)
			if ratio := float64(v999) / float64(x999); ratio < 0.5 || ratio > 1.5 {
				t.Errorf("seed %d payload %d: p99.9 not comparable: VirtIO %v vs XDMA %v (ratio %.2f)",
					seed, v.Payload, v999, x999, ratio)
			}
			// The variance claim (Fig. 3's tighter VirtIO spread) must
			// also survive the seed change.
			if v.Total.Std() >= x.Total.Std() {
				t.Errorf("seed %d payload %d: VirtIO std %v >= XDMA std %v",
					seed, v.Payload, v.Total.Std(), x.Total.Std())
			}
		}
	}
}
