package experiments

import (
	"reflect"
	"testing"

	"fpgavirtio/internal/telemetry"
)

// chaosParams is the soak grid: small enough for CI, large enough that
// DefaultChaosPlan fires every class in every session.
func chaosParams() Params {
	return Params{Seed: 1, Packets: 1500, Payloads: []int{64, 256}, Faults: DefaultChaosPlan}
}

// TestChaosSoak is the `make chaos` gate: the full sweep must complete
// under the default fault plan with at least one recovery of each class
// — a virtio device reset, an XDMA channel reset, and a lost-interrupt
// watchdog intervention — and with faulted samples flagged out of the
// percentile series.
func TestChaosSoak(t *testing.T) {
	sw, err := RunSweepParallel(chaosParams(), 4)
	if err != nil {
		t.Fatalf("chaos sweep failed: %v", err)
	}
	for _, pts := range [][]*PointResult{sw.VirtIO, sw.XDMA} {
		for _, pt := range pts {
			if pt == nil {
				t.Fatal("chaos sweep returned a nil point")
			}
			clean := pt.Total.Summarize().Count
			if clean+pt.Faulted != sw.Params.Packets {
				t.Errorf("%s/%dB: %d clean + %d faulted != %d packets",
					pt.Driver, pt.Payload, clean, pt.Faulted, sw.Params.Packets)
			}
			if clean == 0 {
				t.Errorf("%s/%dB: every sample flagged faulted", pt.Driver, pt.Payload)
			}
		}
	}

	fs := BuildFaultSummary(sw)
	if fs == nil {
		t.Fatal("faulted sweep produced no fault summary")
	}
	if fs.Plan != DefaultChaosPlan {
		t.Errorf("summary plan = %q, want %q", fs.Plan, DefaultChaosPlan)
	}
	for _, class := range []string{"needsreset", "engineerr", "irqdrop", "cplpoison"} {
		if fs.Injected[class] == 0 {
			t.Errorf("class %s never injected", class)
		}
	}
	// One recovery of each class, per the soak gate's acceptance bar.
	for _, name := range []string{
		telemetry.MetricRecoveryVirtioResets,
		telemetry.MetricRecoveryVirtioRequeue,
		telemetry.MetricRecoveryXDMAResets,
	} {
		if fs.Recovery[name] == 0 {
			t.Errorf("recovery counter %s is zero", name)
		}
	}
	if fs.Recovery[telemetry.MetricRecoveryVirtioWatchd]+
		fs.Recovery[telemetry.MetricRecoveryXDMAWatchdog] == 0 {
		t.Error("no lost-interrupt watchdog intervention on either stack")
	}

	art := BuildArtifact("all", sw)
	if err := art.Validate(); err != nil {
		t.Errorf("chaos artifact invalid: %v", err)
	}
	if art.Faults == nil || art.Faults.FaultedSamples != fs.FaultedSamples {
		t.Errorf("artifact fault summary = %+v, want %d faulted samples", art.Faults, fs.FaultedSamples)
	}

	// Flight recorder: every injected fault class must have produced a
	// post-mortem dump in at least one session, and every session must
	// have captured a worst-RTT dump with a non-empty span ring.
	reasons := make(map[string]bool)
	for _, pts := range [][]*PointResult{sw.VirtIO, sw.XDMA} {
		for _, pt := range pts {
			sawWorst := false
			for _, d := range pt.FlightDumps {
				reasons[d.Reason] = true
				if len(d.Spans) == 0 {
					t.Errorf("%s/%dB: dump %q has an empty span ring", pt.Driver, pt.Payload, d.Reason)
				}
				if d.Reason == "worst-rtt" {
					sawWorst = true
				}
			}
			if !sawWorst {
				t.Errorf("%s/%dB: no worst-rtt flight dump", pt.Driver, pt.Payload)
			}
		}
	}
	for _, class := range []string{"needsreset", "engineerr", "irqdrop", "cplpoison"} {
		if !reasons["fault:"+class] {
			t.Errorf("no flight dump for injected class %s", class)
		}
	}
}

// TestChaosPollModeSoak runs the same soak with every session on the
// busy-poll datapath. With MSI-X out of the picture, fault detection
// has no interrupt watchdog to lean on: the virtio driver notices
// DEVICE_NEEDS_RESET by reading the status byte from its spin loop's
// yield points, and the XDMA driver triages a wedged transfer from its
// writeback poll loop. Every fault class the plan can land in poll mode
// must still recover. (irqdrop is the exception by construction — with
// no queue interrupts raised there may be nothing to drop — so the
// soak asserts only the counters poll mode can reach.)
func TestChaosPollModeSoak(t *testing.T) {
	p := chaosParams()
	p.PollMode = true
	sw, err := RunSweepParallel(p, 4)
	if err != nil {
		t.Fatalf("poll-mode chaos sweep failed: %v", err)
	}
	for _, pts := range [][]*PointResult{sw.VirtIO, sw.XDMA} {
		for _, pt := range pts {
			if pt == nil {
				t.Fatal("chaos sweep returned a nil point")
			}
			if pt.Datapath != "poll" {
				t.Errorf("%s/%dB: datapath = %q, want poll", pt.Driver, pt.Payload, pt.Datapath)
			}
			clean := pt.Total.Summarize().Count
			if clean+pt.Faulted != sw.Params.Packets {
				t.Errorf("%s/%dB: %d clean + %d faulted != %d packets",
					pt.Driver, pt.Payload, clean, pt.Faulted, sw.Params.Packets)
			}
			if clean == 0 {
				t.Errorf("%s/%dB: every sample flagged faulted", pt.Driver, pt.Payload)
			}
		}
	}

	fs := BuildFaultSummary(sw)
	if fs == nil {
		t.Fatal("faulted sweep produced no fault summary")
	}
	// The classes that do not depend on an interrupt being in flight
	// must still land under poll mode.
	for _, class := range []string{"needsreset", "engineerr", "cplpoison"} {
		if fs.Injected[class] == 0 {
			t.Errorf("class %s never injected in poll mode", class)
		}
	}
	// Recovery without interrupts: device resets on both stacks, requeue
	// of in-flight virtio buffers, and the spin-loop triage counters
	// that replace the interrupt watchdogs.
	for _, name := range []string{
		telemetry.MetricRecoveryVirtioResets,
		telemetry.MetricRecoveryVirtioRequeue,
		telemetry.MetricRecoveryXDMAResets,
	} {
		if fs.Recovery[name] == 0 {
			t.Errorf("recovery counter %s is zero in poll mode", name)
		}
	}
	if fs.Recovery[telemetry.MetricRecoveryVirtioWatchd]+
		fs.Recovery[telemetry.MetricRecoveryXDMAWatchdog] == 0 {
		t.Error("no spin-loop fault triage on either stack (watchdog counters zero)")
	}

	art := BuildArtifact("all", sw)
	if err := art.Validate(); err != nil {
		t.Errorf("poll-mode chaos artifact invalid: %v", err)
	}
}

// TestChaosParallelDeterminism pins the fault-injection determinism
// contract to the parallel engine: a faulted sweep's artifact and every
// point's metric snapshot are byte-identical at any worker count.
func TestChaosParallelDeterminism(t *testing.T) {
	p := Params{Seed: 5, Packets: 600, Payloads: []int{64}, Faults: DefaultChaosPlan}
	var ref *Sweep
	for _, workers := range []int{1, 2, 8} {
		sw, err := RunSweepParallel(p, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = sw
			if BuildFaultSummary(sw).Total == 0 {
				t.Fatal("determinism run injected no faults")
			}
			continue
		}
		if !reflect.DeepEqual(BuildArtifact("all", ref), BuildArtifact("all", sw)) {
			t.Errorf("workers=%d: artifact differs from serial run", workers)
		}
		for i := range ref.VirtIO {
			if !reflect.DeepEqual(ref.VirtIO[i].Metrics, sw.VirtIO[i].Metrics) {
				t.Errorf("workers=%d: virtio/%dB metrics differ", workers, ref.VirtIO[i].Payload)
			}
			if !reflect.DeepEqual(ref.XDMA[i].Metrics, sw.XDMA[i].Metrics) {
				t.Errorf("workers=%d: xdma/%dB metrics differ", workers, ref.XDMA[i].Payload)
			}
		}
	}
}
