package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"fpgavirtio/internal/telemetry"
)

// The parallel engine's contract: any worker count produces the same
// Sweep — same samples, same metric snapshots, same serialized
// artifact — as the serial path. These tests run the full grid both
// ways and require byte identity, which is what lets `fvbench
// -parallel=N` stand in for the serial run everywhere.

func sweepParams() Params {
	return Params{Seed: 42, Packets: 40, Payloads: []int{64, 256, 1024}}
}

func requireSamePoints(t *testing.T, label string, a, b []*PointResult) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d points", label, len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Total.Samples(), b[i].Total.Samples()) {
			t.Errorf("%s[%d]: total series diverged", label, i)
		}
		if !reflect.DeepEqual(a[i].SW.Samples(), b[i].SW.Samples()) ||
			!reflect.DeepEqual(a[i].HW.Samples(), b[i].HW.Samples()) ||
			!reflect.DeepEqual(a[i].RG.Samples(), b[i].RG.Samples()) {
			t.Errorf("%s[%d]: breakdown series diverged", label, i)
		}
		if a[i].Interrupts != b[i].Interrupts {
			t.Errorf("%s[%d]: interrupts %d vs %d", label, i, a[i].Interrupts, b[i].Interrupts)
		}
		if !reflect.DeepEqual(a[i].Metrics, b[i].Metrics) {
			t.Errorf("%s[%d]: metric snapshots diverged", label, i)
		}
	}
}

func TestParallelSweepMatchesSerial(t *testing.T) {
	p := sweepParams()
	serial, err := RunSweepParallel(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweepParallel(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	requireSamePoints(t, "virtio", serial.VirtIO, parallel.VirtIO)
	requireSamePoints(t, "xdma", serial.XDMA, parallel.XDMA)
}

func TestParallelSweepArtifactBytesIdentical(t *testing.T) {
	p := sweepParams()
	render := func(workers int) []byte {
		sw, err := RunSweepParallel(p, workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := telemetry.WriteBenchJSON(&buf, BuildArtifact("all", sw)); err != nil {
			t.Fatal(err)
		}
		if err := telemetry.ValidateBenchJSON(buf.Bytes()); err != nil {
			t.Fatalf("workers=%d artifact failed validation: %v", workers, err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	for _, workers := range []int{2, 8} {
		if got := render(workers); !bytes.Equal(serial, got) {
			t.Fatalf("JSON artifact at %d workers differs from serial (%d vs %d bytes)",
				workers, len(serial), len(got))
		}
	}
	// The rendered figures derive from the same samples, so they must
	// agree too.
	sw1, _ := RunSweepParallel(p, 1)
	sw8, _ := RunSweepParallel(p, 8)
	if RenderAll(sw1) != RenderAll(sw8) {
		t.Fatal("rendered figure text differs between serial and parallel sweeps")
	}
}

// TestPollSweepParallelArtifactBytesIdentical extends the byte-identity
// contract to the poll-mode datapath: a poll sweep — including the
// tail-attribution replay, which must re-open its capture sessions in
// poll mode — serializes identically at any worker count.
func TestPollSweepParallelArtifactBytesIdentical(t *testing.T) {
	p := Params{Seed: 42, Packets: 40, Payloads: []int{64, 256}, PollMode: true}
	render := func(workers int) []byte {
		sw, err := RunSweepParallel(p, workers)
		if err != nil {
			t.Fatal(err)
		}
		if err := AttributeTails(sw); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := telemetry.WriteBenchJSON(&buf, BuildArtifact("all", sw)); err != nil {
			t.Fatal(err)
		}
		if err := telemetry.ValidateBenchJSON(buf.Bytes()); err != nil {
			t.Fatalf("workers=%d poll artifact failed validation: %v", workers, err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	if !bytes.Contains(serial, []byte(`"datapath": "poll"`)) {
		t.Fatal("poll sweep artifact is missing datapath tags")
	}
	for _, workers := range []int{2, 8} {
		if got := render(workers); !bytes.Equal(serial, got) {
			t.Fatalf("poll JSON artifact at %d workers differs from serial (%d vs %d bytes)",
				workers, len(serial), len(got))
		}
	}
}

func TestParallelSweepWorkerCountEdgeCases(t *testing.T) {
	p := Params{Seed: 7, Packets: 10, Payloads: []int{64}}
	// More workers than cells, and zero/negative counts, must not
	// deadlock or drop cells.
	for _, workers := range []int{-1, 0, 1, 2, 64} {
		sw, err := RunSweepParallel(p, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(sw.VirtIO) != 1 || len(sw.XDMA) != 1 || sw.VirtIO[0] == nil || sw.XDMA[0] == nil {
			t.Fatalf("workers=%d: incomplete sweep", workers)
		}
		if sw.VirtIO[0].Total.Count() != p.Packets {
			t.Fatalf("workers=%d: %d samples, want %d", workers, sw.VirtIO[0].Total.Count(), p.Packets)
		}
	}
}
