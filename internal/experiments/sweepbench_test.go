package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func validSweepBench() *SweepBench {
	return &SweepBench{
		Schema:            SweepBenchSchema,
		Seed:              1,
		Packets:           2000,
		Payloads:          []int{64, 256, 1024},
		Workers:           8,
		Cells:             6,
		NumCPU:            8,
		GoMaxProcs:        8,
		GoVersion:         "go1.x",
		SerialNs:          6e9,
		ParallelNs:        2e9,
		SerialNsPerPacket: 500,
		Speedup:           3,
	}
}

func TestSweepBenchValidate(t *testing.T) {
	if err := validSweepBench().Validate(); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}
	mutations := map[string]func(*SweepBench){
		"schema":    func(b *SweepBench) { b.Schema = "fvsweepbench/v0" },
		"packets":   func(b *SweepBench) { b.Packets = 0 },
		"payloads":  func(b *SweepBench) { b.Payloads = nil },
		"payload<0": func(b *SweepBench) { b.Payloads[1] = -1 },
		"workers":   func(b *SweepBench) { b.Workers = 0 },
		"cells":     func(b *SweepBench) { b.Cells = 5 },
		"numcpu":    func(b *SweepBench) { b.NumCPU = 0 },
		"serial":    func(b *SweepBench) { b.SerialNs = 0 },
		"parallel":  func(b *SweepBench) { b.ParallelNs = -1 },
		"perpkt":    func(b *SweepBench) { b.SerialNsPerPacket = 0 },
		"speedup":   func(b *SweepBench) { b.Speedup = 0 },
	}
	for name, mutate := range mutations {
		b := validSweepBench()
		mutate(b)
		if err := b.Validate(); err == nil {
			t.Errorf("%s: corrupt artifact passed validation", name)
		}
	}
}

func TestSweepBenchRoundTrip(t *testing.T) {
	b := validSweepBench()
	var buf bytes.Buffer
	if err := WriteSweepBench(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSweepBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SerialNsPerPacket != b.SerialNsPerPacket || got.Speedup != b.Speedup {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	// Unknown fields mark a schema drift and must be rejected, not
	// silently dropped.
	if _, err := ReadSweepBench(strings.NewReader(`{"schema":"fvsweepbench/v1","bogus":1}`)); err == nil {
		t.Fatal("artifact with unknown field passed")
	}
}

func TestCompareSweepBench(t *testing.T) {
	base := validSweepBench()

	within := validSweepBench()
	within.SerialNsPerPacket = 560 // +12%, inside the 15% budget
	if err := CompareSweepBench(base, within, 0.15, 3); err != nil {
		t.Fatalf("within-budget run rejected: %v", err)
	}

	regressed := validSweepBench()
	regressed.SerialNsPerPacket = 600 // +20%
	if err := CompareSweepBench(base, regressed, 0.15, 3); err == nil {
		t.Fatal("20% per-packet regression passed a 15% gate")
	}

	// Speedup gate applies only on hosts with the cores to show one.
	slow := validSweepBench()
	slow.Speedup = 1.1
	slow.NumCPU = 8
	if err := CompareSweepBench(base, slow, 0.15, 3); err == nil {
		t.Fatal("1.1x speedup on an 8-CPU host passed a 3x floor")
	}
	slow.NumCPU = 1
	slow.GoMaxProcs = 1
	if err := CompareSweepBench(base, slow, 0.15, 3); err != nil {
		t.Fatalf("single-CPU host penalized for speedup: %v", err)
	}
	slow.NumCPU = 8
	slow.GoMaxProcs = 8
	if err := CompareSweepBench(base, slow, 0.15, 0); err != nil {
		t.Fatalf("disabled speedup gate still fired: %v", err)
	}
}

// TestSpeedupGateSkipTable pins the >=4-CPU gating predicate and its
// audit trail: every combination of host width, worker count, and
// floor either enforces the speedup gate (skip reason empty, slow runs
// rejected) or skips it with a reason that records num_cpu — the
// silent-skip failure mode this table exists to prevent.
func TestSpeedupGateSkipTable(t *testing.T) {
	cases := []struct {
		name       string
		numCPU     int
		workers    int
		minSpeedup float64
		speedup    float64
		wantSkip   string // required substring of the skip reason; "" = gate enforced
		wantErr    bool   // CompareSweepBench verdict for this speedup
	}{
		{"slow run on wide host fails", 8, 8, 3, 1.1, "", true},
		{"fast run on wide host passes", 8, 8, 3, 3.4, "", false},
		{"exactly 4 CPUs still enforces", 4, 8, 3, 1.1, "", true},
		{"3 CPUs skip, num_cpu recorded", 3, 8, 3, 1.1, "num_cpu=3", false},
		{"single CPU skips, num_cpu recorded", 1, 8, 3, 1.0, "num_cpu=1", false},
		{"serial-only run skips", 8, 1, 3, 1.0, "workers=1", false},
		{"disabled floor skips", 8, 8, 0, 1.0, "disabled", false},
	}
	base := validSweepBench()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := validSweepBench()
			cur.NumCPU = tc.numCPU
			cur.GoMaxProcs = tc.numCPU
			cur.Workers = tc.workers
			cur.Speedup = tc.speedup
			skip := SpeedupGateSkip(cur, tc.minSpeedup)
			if tc.wantSkip == "" {
				if skip != "" {
					t.Fatalf("gate skipped unexpectedly: %q", skip)
				}
			} else {
				if !strings.Contains(skip, tc.wantSkip) {
					t.Fatalf("skip reason %q missing %q", skip, tc.wantSkip)
				}
				if !strings.Contains(skip, "num_cpu=") {
					t.Fatalf("skip reason %q does not record num_cpu", skip)
				}
			}
			err := CompareSweepBench(base, cur, 0.15, tc.minSpeedup)
			if tc.wantErr && err == nil {
				t.Fatal("slow run passed an enforced speedup gate")
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("gate fired when it should not: %v", err)
			}
		})
	}
}

func TestMeasureSweepBenchSmall(t *testing.T) {
	b, err := MeasureSweepBench(Params{Seed: 3, Packets: 20, Payloads: []int{64, 256}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("measured artifact invalid: %v", err)
	}
	if b.Cells != 4 || b.Packets != 20 {
		t.Fatalf("artifact grid mismatch: %+v", b)
	}
	// A fresh measurement of the same grid must pass its own gate.
	if err := CompareSweepBench(b, b, 0.15, 0); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
}

// BenchmarkSweepGrid times one small Fig-3 grid per iteration, serial
// vs parallel, with allocation accounting. `make bench` runs these with
// -benchmem; `make benchcmp` gates the wall-clock equivalent through
// cmd/fvsweepbench.
func BenchmarkSweepGrid(b *testing.B) {
	p := Params{Seed: 1, Packets: 100, Payloads: []int{64, 256, 1024}}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunSweepParallel(p, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunSweepParallel(p, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestImprovementDelta(t *testing.T) {
	base := validSweepBench() // 500 ns/packet

	faster := validSweepBench()
	faster.SerialNsPerPacket = 250
	got := ImprovementDelta(base, faster)
	if !strings.Contains(got, "improvement") || !strings.Contains(got, "2.00x faster") {
		t.Fatalf("2x win not reported as improvement: %q", got)
	}

	slower := validSweepBench()
	slower.SerialNsPerPacket = 550
	got = ImprovementDelta(base, slower)
	if !strings.Contains(got, "growth within budget") || !strings.Contains(got, "+10.0%") {
		t.Fatalf("+10%% growth not reported: %q", got)
	}

	if got = ImprovementDelta(base, validSweepBench()); !strings.Contains(got, "unchanged") {
		t.Fatalf("identical cost not reported as unchanged: %q", got)
	}
}
