package experiments

import (
	"testing"

	"fpgavirtio/internal/telemetry"
)

// TestAttributeTails checks the tentpole invariant end to end: every
// tail-ranked sample's critical path partitions its replayed RTT
// exactly, the partition agrees with the measured RTT to within the
// counter quantum, and the artifact block validates.
func TestAttributeTails(t *testing.T) {
	p := Params{Seed: 1, Packets: 400, Payloads: []int{64, 256}}
	sw, err := RunSweep(p)
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if err := AttributeTails(sw); err != nil {
		t.Fatalf("AttributeTails: %v", err)
	}

	points := append(append([]*PointResult{}, sw.VirtIO...), sw.XDMA...)
	for _, pt := range points {
		if len(pt.Tail) != 3 {
			t.Fatalf("%s/%dB: %d tail samples, want 3", pt.Driver, pt.Payload, len(pt.Tail))
		}
		wantRanks := []string{"p99", "p99.9", "max"}
		for i, ts := range pt.Tail {
			if ts.Rank != wantRanks[i] {
				t.Errorf("%s/%dB sample %d: rank %q, want %q", pt.Driver, pt.Payload, i, ts.Rank, wantRanks[i])
			}
			var sum int64
			for _, l := range ts.Layers {
				if l.Ns < 0 {
					t.Errorf("%s/%dB %s: layer %s negative (%d ns)", pt.Driver, pt.Payload, ts.Rank, l.Layer, l.Ns)
				}
				sum += l.Ns
			}
			if sum != ts.SumNs {
				t.Errorf("%s/%dB %s: layers sum %d != SumNs %d", pt.Driver, pt.Payload, ts.Rank, sum, ts.SumNs)
			}
			if d := ts.SumNs - ts.RTTNs; d > 8 || d < -8 {
				t.Errorf("%s/%dB %s: SumNs %d vs RTTNs %d exceeds 8ns quantum",
					pt.Driver, pt.Payload, ts.Rank, ts.SumNs, ts.RTTNs)
			}
			// A round trip's critical path must involve more than the
			// app layer: the wait for the device shows up as driver /
			// irq / wire / device time.
			if len(ts.Layers) < 2 {
				t.Errorf("%s/%dB %s: only %d layers on the critical path", pt.Driver, pt.Payload, ts.Rank, len(ts.Layers))
			}
		}
		// The max-rank sample must reproduce the series maximum.
		maxNs := int64(0)
		for _, v := range pt.cleanNs {
			if v > maxNs {
				maxNs = v
			}
		}
		if got := pt.Tail[2].RTTNs; got != maxNs {
			t.Errorf("%s/%dB: max tail RTT %d != series max %d", pt.Driver, pt.Payload, got, maxNs)
		}
	}

	// The artifact block must round-trip through the validator.
	a := BuildArtifact("latency", sw)
	if len(a.TailAttribution) != 4 {
		t.Fatalf("artifact has %d tail points, want 4", len(a.TailAttribution))
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("artifact validation: %v", err)
	}
}

// TestAttributeTailsDeterministic: the replay pass is pure, so running
// it twice yields identical attributions.
func TestAttributeTailsDeterministic(t *testing.T) {
	p := Params{Seed: 7, Packets: 200, Payloads: []int{128}}
	run := func() []telemetry.TailSample {
		sw, err := RunSweep(p)
		if err != nil {
			t.Fatalf("RunSweep: %v", err)
		}
		if err := AttributeTails(sw); err != nil {
			t.Fatalf("AttributeTails: %v", err)
		}
		return append(append([]telemetry.TailSample{}, sw.VirtIO[0].Tail...), sw.XDMA[0].Tail...)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("tail sample counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Rank != b[i].Rank || a[i].Index != b[i].Index || a[i].RTTNs != b[i].RTTNs || a[i].SumNs != b[i].SumNs {
			t.Errorf("sample %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if len(a[i].Layers) != len(b[i].Layers) {
			t.Errorf("sample %d layer counts differ", i)
			continue
		}
		for j := range a[i].Layers {
			if a[i].Layers[j] != b[i].Layers[j] {
				t.Errorf("sample %d layer %d differs: %+v vs %+v", i, j, a[i].Layers[j], b[i].Layers[j])
			}
		}
	}
}
