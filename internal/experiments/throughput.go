package experiments

import (
	"fmt"

	fpgavirtio "fpgavirtio"
	"fpgavirtio/internal/perf"
	"fpgavirtio/internal/telemetry"
)

// ThroughputParams controls the fvbench -mode=throughput experiment.
type ThroughputParams struct {
	Params
	// Window is the number of requests each stream keeps in flight
	// (default 16). Window 1 degenerates to the latency experiment.
	Window int
	// QueuePairs is the virtio-net multi-queue width (default 1).
	QueuePairs int
	// RatePPS is the offered rate; 0 streams closed-loop.
	RatePPS float64
}

func (tp ThroughputParams) withDefaults() ThroughputParams {
	tp.Params = tp.Params.withDefaults()
	if tp.Window == 0 {
		tp.Window = 16
	}
	if tp.QueuePairs == 0 {
		tp.QueuePairs = 1
	}
	return tp
}

// ThroughputArm is one streaming measurement: a driver under one
// notification configuration at one payload size.
type ThroughputArm struct {
	Driver     string
	Datapath   string // "poll" or "" (interrupt mode)
	Suppressed bool
	Payload    int
	Result     fpgavirtio.StreamResult
}

// ThroughputMode holds the full -mode=throughput grid: per payload, the
// VirtIO stream with and without kick suppression plus the XDMA
// descriptor-list stream, and the window=1 degenerate runs that
// reproduce the paper's latency shape through the same engine.
type ThroughputMode struct {
	Params  ThroughputParams
	Arms    []ThroughputArm
	Latency []*PointResult
}

// suppressionFor sizes the batching knobs of the suppressed arm to the
// window: kicks defer across the whole window (capped at the driver's
// sweet spot) and interrupts coalesce over half of it.
func suppressionFor(window int) (kickBatch, coalesce int) {
	kickBatch = window
	if kickBatch > 16 {
		kickBatch = 16
	}
	coalesce = window / 2
	if coalesce > 8 {
		coalesce = 8
	}
	if coalesce < 1 {
		coalesce = 1
	}
	return kickBatch, coalesce
}

// streamVirtIO opens a fresh VirtIO session and runs one stream.
func streamVirtIO(cfg fpgavirtio.NetConfig, sc fpgavirtio.StreamConfig) (fpgavirtio.StreamResult, error) {
	ns, err := fpgavirtio.OpenNet(cfg)
	if err != nil {
		return fpgavirtio.StreamResult{}, err
	}
	return ns.Stream(sc)
}

// streamXDMA opens a fresh vendor session and runs one stream.
func streamXDMA(cfg fpgavirtio.XDMAConfig, sc fpgavirtio.StreamConfig) (fpgavirtio.StreamResult, error) {
	xs, err := fpgavirtio.OpenXDMA(cfg)
	if err != nil {
		return fpgavirtio.StreamResult{}, err
	}
	return xs.Stream(sc)
}

// latencyPoint converts a window=1 stream (whose RTT samples come from
// the exact latency-mode sequence) into the sweep's point shape.
func latencyPoint(driver, datapath string, payload int, res fpgavirtio.StreamResult) *PointResult {
	pt := &PointResult{
		Driver:   driver,
		Datapath: datapath,
		Payload:  payload,
		Total:    perf.NewSeries(fmt.Sprintf("%s/%d/total", driver, payload)),
		SW:       perf.NewSeries("sw"),
		HW:       perf.NewSeries("hw"),
		RG:       perf.NewSeries("rg"),
	}
	for _, s := range res.RTT {
		pt.Total.Add(toSim(s.Total))
		pt.SW.Add(toSim(s.Software))
		pt.HW.Add(toSim(s.Hardware))
		pt.RG.Add(toSim(s.RespGen))
	}
	pt.Interrupts = res.Interrupts
	return pt
}

// RunThroughputMode measures the whole grid. Per payload it runs four
// streams: the VirtIO suppressed arm (EVENT_IDX doorbells, batched TX
// kicks, coalesced completion interrupts), the VirtIO per-packet-kick
// arm, the XDMA descriptor-list arm, and — sharing the same engine —
// the window=1 VirtIO and XDMA runs whose per-packet samples reproduce
// the paper's latency distributions.
func RunThroughputMode(tp ThroughputParams) (*ThroughputMode, error) {
	tp = tp.withDefaults()
	m := &ThroughputMode{Params: tp}
	kickBatch, coalesce := suppressionFor(tp.Window)
	base := fpgavirtio.Config{Seed: tp.Seed, Link: tp.Link, PollMode: tp.PollMode}
	dp := datapathName(tp.PollMode)
	for _, payload := range tp.Payloads {
		sc := fpgavirtio.StreamConfig{
			Packets:     tp.Packets,
			PayloadSize: payload,
			Window:      tp.Window,
			RatePPS:     tp.RatePPS,
		}

		// The suppressed arm's notification-thrift knobs depend on the
		// datapath: in interrupt mode it is EVENT_IDX doorbells, batched
		// TX kicks and coalesced completion interrupts; in poll mode
		// EVENT_IDX is off the table (no thresholds are armed) and
		// interrupts do not exist, so only TX-kick batching remains.
		suppCfg := fpgavirtio.NetConfig{
			Config:      base,
			QueuePairs:  tp.QueuePairs,
			TxKickBatch: kickBatch,
		}
		if !tp.PollMode {
			suppCfg.UseEventIdx = true
			suppCfg.IRQCoalescePkts = coalesce
		}
		supp, err := streamVirtIO(suppCfg, sc)
		if err != nil {
			return nil, fmt.Errorf("virtio suppressed %dB: %w", payload, err)
		}
		m.Arms = append(m.Arms, ThroughputArm{Driver: "virtio", Datapath: dp, Suppressed: true, Payload: payload, Result: supp})

		unsupp, err := streamVirtIO(fpgavirtio.NetConfig{
			Config:     base,
			QueuePairs: tp.QueuePairs,
			ForceKicks: true,
		}, sc)
		if err != nil {
			return nil, fmt.Errorf("virtio unsuppressed %dB: %w", payload, err)
		}
		m.Arms = append(m.Arms, ThroughputArm{Driver: "virtio", Datapath: dp, Payload: payload, Result: unsupp})

		// The XDMA stream moves payload+headers bytes so the link carries
		// the same traffic as the VirtIO test (the sweep's pairing rule).
		xsc := sc
		xsc.PayloadSize = payload + HeaderOverhead
		xres, err := streamXDMA(fpgavirtio.XDMAConfig{Config: base}, xsc)
		if err != nil {
			return nil, fmt.Errorf("xdma %dB: %w", payload, err)
		}
		xres.PayloadBytes = payload // report the VirtIO-equivalent size
		m.Arms = append(m.Arms, ThroughputArm{Driver: "xdma", Datapath: dp, Payload: payload, Result: xres})

		// Degenerate window=1 runs through the same stream engine: their
		// RTT samples are the paper's latency experiment.
		one := fpgavirtio.StreamConfig{Packets: tp.Packets, PayloadSize: payload, Window: 1}
		vlat, err := streamVirtIO(fpgavirtio.NetConfig{Config: base}, one)
		if err != nil {
			return nil, fmt.Errorf("virtio window=1 %dB: %w", payload, err)
		}
		m.Latency = append(m.Latency, latencyPoint("virtio", dp, payload, vlat))
		xone := one
		xone.PayloadSize = payload + HeaderOverhead
		xlat, err := streamXDMA(fpgavirtio.XDMAConfig{Config: base}, xone)
		if err != nil {
			return nil, fmt.Errorf("xdma window=1 %dB: %w", payload, err)
		}
		m.Latency = append(m.Latency, latencyPoint("xdma", dp, payload, xlat))
	}
	return m, nil
}

// BuildThroughputArtifact renders the run as the fvbench/v1-compatible
// bench artifact: the streaming grid in Throughput, the window=1
// degenerate runs in Points (so latency-only readers still work).
func BuildThroughputArtifact(m *ThroughputMode) *telemetry.BenchArtifact {
	a := &telemetry.BenchArtifact{
		Schema:     telemetry.BenchSchema,
		Experiment: "throughput",
		Mode:       "throughput",
		Seed:       m.Params.Seed,
		Packets:    m.Params.Packets,
		Link:       m.Params.Link.String(),
	}
	for _, pt := range m.Latency {
		a.Points = append(a.Points, BuildPoint(pt))
	}
	for _, arm := range m.Arms {
		r := arm.Result
		a.Throughput = append(a.Throughput, telemetry.ThroughputPoint{
			Driver:        arm.Driver,
			Datapath:      arm.Datapath,
			Payload:       arm.Payload,
			Packets:       r.Packets,
			Window:        r.Window,
			Suppressed:    arm.Suppressed,
			ElapsedNs:     r.Elapsed.Nanoseconds(),
			PPS:           r.PPS,
			GoodputBps:    r.GoodputBps,
			OccupancyMax:  r.OccupancyMax,
			OccupancyMean: r.OccupancyMean,
			Drops:         r.Drops,
			Backpressure:  r.Backpressure,
			Doorbells:     r.Doorbells,
			Interrupts:    r.Interrupts,
		})
	}
	return a
}

// Render prints the streaming grid plus the window=1 latency summary.
func (m *ThroughputMode) Render() string {
	kickBatch, coalesce := suppressionFor(m.Params.Window)
	t := perf.Table{
		Title: fmt.Sprintf("Throughput mode — window %d, %d queue pair(s), %d packets/arm",
			m.Params.Window, m.Params.QueuePairs, m.Params.Packets),
		Headers: []string{"payload", "arm", "kPPS", "goodput Mb/s", "occ mean/max",
			"doorbells/pkt", "irqs/pkt", "backpr", "drops"},
	}
	for _, arm := range m.Arms {
		r := arm.Result
		name := arm.Driver
		switch {
		case arm.Driver == "virtio" && arm.Suppressed:
			name = fmt.Sprintf("virtio suppressed (evidx,kick/%d,coal %d)", kickBatch, coalesce)
		case arm.Driver == "virtio":
			name = "virtio per-packet kicks"
		case arm.Driver == "xdma":
			name = "xdma descriptor lists"
		}
		per := func(n int) string { return fmt.Sprintf("%.2f", float64(n)/float64(r.Packets)) }
		t.AddRow(fmt.Sprint(arm.Payload), name,
			fmt.Sprintf("%.1f", r.PPS/1000),
			fmt.Sprintf("%.2f", r.GoodputBps/1e6),
			fmt.Sprintf("%.1f/%d", r.OccupancyMean, r.OccupancyMax),
			per(r.Doorbells), per(r.Interrupts),
			fmt.Sprint(r.Backpressure), fmt.Sprint(r.Drops))
	}
	lat := perf.Table{
		Title:   "Window=1 degenerate case (us) — same engine, latency-mode sequence",
		Headers: []string{"series", "n", "mean", "p50", "p95", "p99", "p99.9", "max"},
	}
	for _, pt := range m.Latency {
		s := pt.Total.Summarize()
		lat.AddRow(s.Name, fmt.Sprint(s.Count), perf.Us(s.Mean), perf.Us(s.P50),
			perf.Us(s.P95), perf.Us(s.P99), perf.Us(s.P999), perf.Us(s.Max))
	}
	return t.String() + "\n" + lat.String()
}
