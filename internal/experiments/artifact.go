package experiments

import (
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// nsOf converts a simulated duration to whole nanoseconds for the
// artifact's integer fields.
func nsOf(d sim.Duration) int64 { return int64(d / sim.Nanosecond) }

// BuildPoint renders one measurement as a bench-artifact point.
func BuildPoint(pt *PointResult) telemetry.BenchPoint {
	s := pt.Total.Summarize()
	return telemetry.BenchPoint{
		Driver:     pt.Driver,
		Payload:    pt.Payload,
		Count:      s.Count,
		MeanNs:     nsOf(s.Mean),
		StdNs:      nsOf(s.Std),
		MinNs:      nsOf(s.Min),
		P25Ns:      nsOf(s.P25),
		P50Ns:      nsOf(s.P50),
		P75Ns:      nsOf(s.P75),
		P95Ns:      nsOf(s.P95),
		P99Ns:      nsOf(s.P99),
		P999Ns:     nsOf(s.P999),
		MaxNs:      nsOf(s.Max),
		SWMeanNs:   nsOf(pt.SW.Mean()),
		HWMeanNs:   nsOf(pt.HW.Mean()),
		RGMeanNs:   nsOf(pt.RG.Mean()),
		Interrupts: pt.Interrupts,
	}
}

// BuildArtifact renders a sweep as the machine-readable bench artifact
// fvbench -json / -csv emit, interleaving VirtIO and XDMA points per
// payload as the paper's figures pair them.
func BuildArtifact(experiment string, sw *Sweep) *telemetry.BenchArtifact {
	a := &telemetry.BenchArtifact{
		Schema:     telemetry.BenchSchema,
		Experiment: experiment,
		Seed:       sw.Params.Seed,
		Packets:    sw.Params.Packets,
		Link:       sw.Params.Link.String(),
	}
	for i := range sw.VirtIO {
		a.Points = append(a.Points, BuildPoint(sw.VirtIO[i]))
		if i < len(sw.XDMA) {
			a.Points = append(a.Points, BuildPoint(sw.XDMA[i]))
		}
	}
	return a
}
