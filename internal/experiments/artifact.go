package experiments

import (
	"fmt"
	"sort"
	"strings"

	"fpgavirtio/internal/faults"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// nsOf converts a simulated duration to whole nanoseconds for the
// artifact's integer fields.
func nsOf(d sim.Duration) int64 { return int64(d / sim.Nanosecond) }

// BuildPoint renders one measurement as a bench-artifact point.
func BuildPoint(pt *PointResult) telemetry.BenchPoint {
	s := pt.Total.Summarize()
	return telemetry.BenchPoint{
		Driver:     pt.Driver,
		Datapath:   pt.Datapath,
		Payload:    pt.Payload,
		Count:      s.Count,
		MeanNs:     nsOf(s.Mean),
		StdNs:      nsOf(s.Std),
		MinNs:      nsOf(s.Min),
		P25Ns:      nsOf(s.P25),
		P50Ns:      nsOf(s.P50),
		P75Ns:      nsOf(s.P75),
		P95Ns:      nsOf(s.P95),
		P99Ns:      nsOf(s.P99),
		P999Ns:     nsOf(s.P999),
		MaxNs:      nsOf(s.Max),
		SWMeanNs:   nsOf(pt.SW.Mean()),
		HWMeanNs:   nsOf(pt.HW.Mean()),
		RGMeanNs:   nsOf(pt.RG.Mean()),
		Interrupts: pt.Interrupts,
		Faulted:    pt.Faulted,
	}
}

// BuildArtifact renders a sweep as the machine-readable bench artifact
// fvbench -json / -csv emit, interleaving VirtIO and XDMA points per
// payload as the paper's figures pair them.
func BuildArtifact(experiment string, sw *Sweep) *telemetry.BenchArtifact {
	a := &telemetry.BenchArtifact{
		Schema:     telemetry.BenchSchema,
		Experiment: experiment,
		Seed:       sw.Params.Seed,
		Packets:    sw.Params.Packets,
		Link:       sw.Params.Link.String(),
	}
	for i := range sw.VirtIO {
		a.Points = append(a.Points, BuildPoint(sw.VirtIO[i]))
		if i < len(sw.XDMA) {
			a.Points = append(a.Points, BuildPoint(sw.XDMA[i]))
		}
	}
	// Tail attribution mirrors the point interleaving; points the
	// replay pass never visited (or that had no clean samples)
	// contribute nothing, keeping attribution-free artifacts
	// byte-identical to earlier builds.
	for i := range sw.VirtIO {
		for _, pt := range [2]*PointResult{sw.VirtIO[i], xdmaAt(sw, i)} {
			if pt != nil && len(pt.Tail) > 0 {
				a.TailAttribution = append(a.TailAttribution, telemetry.TailPoint{
					Driver: pt.Driver, Payload: pt.Payload, Samples: pt.Tail,
				})
			}
		}
	}
	a.Faults = BuildFaultSummary(sw)
	return a
}

// xdmaAt returns the i-th XDMA point, nil when the sweep has fewer.
func xdmaAt(sw *Sweep, i int) *PointResult {
	if i < len(sw.XDMA) {
		return sw.XDMA[i]
	}
	return nil
}

// BuildFaultSummary aggregates the sweep's fault-injection and recovery
// counters across every point's metric snapshot. Returns nil when the
// sweep ran without a fault plan, keeping fault-free artifacts
// byte-identical to pre-injection builds.
func BuildFaultSummary(sw *Sweep) *telemetry.FaultSummary {
	if sw.Params.Faults == "" {
		return nil
	}
	planStr := sw.Params.Faults
	if plan, err := faults.Parse(sw.Params.Faults); err == nil {
		planStr = plan.String() // canonical spelling
	}
	fs := &telemetry.FaultSummary{
		Plan:     planStr,
		Injected: map[string]int64{},
		Recovery: map[string]int64{},
	}
	points := append(append([]*PointResult{}, sw.VirtIO...), sw.XDMA...)
	for _, pt := range points {
		if pt == nil {
			continue
		}
		fs.FaultedSamples += pt.Faulted
		for _, m := range pt.Metrics {
			switch {
			case m.Name == telemetry.MetricFaultsInjected:
				fs.Total += int64(m.Value)
			case strings.HasPrefix(m.Name, "fault.") && strings.HasSuffix(m.Name, ".injected"):
				class := strings.TrimSuffix(strings.TrimPrefix(m.Name, "fault."), ".injected")
				fs.Injected[class] += int64(m.Value)
			case strings.HasPrefix(m.Name, "recovery."):
				fs.Recovery[m.Name] += int64(m.Value)
			}
		}
	}
	if len(fs.Recovery) == 0 {
		fs.Recovery = nil
	}
	return fs
}

// RenderFaultReport renders the sweep's fault-injection and recovery
// summary as text (empty when the sweep ran without a fault plan).
func RenderFaultReport(sw *Sweep) string {
	fs := BuildFaultSummary(sw)
	if fs == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fault injection — plan %q\n", fs.Plan)
	fmt.Fprintf(&b, "  injected: %d total, %d samples flagged and excluded from percentiles\n",
		fs.Total, fs.FaultedSamples)
	classes := make([]string, 0, len(fs.Injected))
	for c := range fs.Injected {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Fprintf(&b, "    fault.%s.injected  %d\n", c, fs.Injected[c])
	}
	recs := make([]string, 0, len(fs.Recovery))
	for name := range fs.Recovery {
		recs = append(recs, name)
	}
	sort.Strings(recs)
	if len(recs) > 0 {
		fmt.Fprintf(&b, "  recovery:\n")
		for _, name := range recs {
			fmt.Fprintf(&b, "    %-28s %d\n", name, fs.Recovery[name])
		}
	}
	return b.String()
}
