package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// SweepBenchSchema identifies the sweep-benchmark artifact layout
// (BENCH_sweep.json). Bump on any incompatible change.
const SweepBenchSchema = "fvsweepbench/v1"

// SweepBench is the machine-readable record of one sweep benchmark:
// the same Fig-3 measurement grid timed end to end, serially and
// through the parallel engine. It is the committed baseline `make
// benchcmp` gates regressions against.
type SweepBench struct {
	Schema   string `json:"schema"`
	Seed     uint64 `json:"seed"`
	Packets  int    `json:"packets"`
	Payloads []int  `json:"payloads"`
	Workers  int    `json:"workers"` // worker count of the parallel arm
	Cells    int    `json:"cells"`   // grid cells (drivers x payloads)

	// Host context the wall-clock numbers were taken under. Speedup is
	// bounded by NumCPU: a single-core host records ~1.0x regardless of
	// engine quality, so gates must read these fields before judging.
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_max_procs"`
	GoVersion  string `json:"go_version"`

	SerialNs   int64 `json:"serial_ns"`   // wall clock, workers=1
	ParallelNs int64 `json:"parallel_ns"` // wall clock, workers=Workers

	// Per-round-trip host cost in the serial run — the portable
	// per-packet efficiency number the regression gate compares.
	SerialNsPerPacket float64 `json:"serial_ns_per_packet"`
	// Speedup is SerialNs/ParallelNs.
	Speedup float64 `json:"speedup"`
}

// MeasureSweepBench runs the sweep grid twice — serial, then with
// workers in parallel — and records both wall-clock times. Results of
// the two arms are verified identical (the engine's determinism
// contract) before timings are trusted.
func MeasureSweepBench(p Params, workers int) (*SweepBench, error) {
	p = p.withDefaults()
	t0 := time.Now()
	serial, err := RunSweepParallel(p, 1)
	if err != nil {
		return nil, fmt.Errorf("serial arm: %w", err)
	}
	serialNs := time.Since(t0).Nanoseconds()

	t0 = time.Now()
	parallel, err := RunSweepParallel(p, workers)
	if err != nil {
		return nil, fmt.Errorf("parallel arm: %w", err)
	}
	parallelNs := time.Since(t0).Nanoseconds()

	if err := sweepsEqual(serial, parallel); err != nil {
		return nil, fmt.Errorf("parallel sweep diverged from serial: %w", err)
	}

	cells := 2 * len(p.Payloads)
	totalPackets := p.Packets * cells
	b := &SweepBench{
		Schema:            SweepBenchSchema,
		Seed:              p.Seed,
		Packets:           p.Packets,
		Payloads:          p.Payloads,
		Workers:           workers,
		Cells:             cells,
		NumCPU:            runtime.NumCPU(),
		GoMaxProcs:        runtime.GOMAXPROCS(0),
		GoVersion:         runtime.Version(),
		SerialNs:          serialNs,
		ParallelNs:        parallelNs,
		SerialNsPerPacket: float64(serialNs) / float64(totalPackets),
		Speedup:           float64(serialNs) / float64(parallelNs),
	}
	return b, nil
}

// sweepsEqual compares the sample series of two sweeps.
func sweepsEqual(a, b *Sweep) error {
	cmp := func(label string, x, y []*PointResult) error {
		if len(x) != len(y) {
			return fmt.Errorf("%s: %d vs %d points", label, len(x), len(y))
		}
		for i := range x {
			xs, ys := x[i].Total.Samples(), y[i].Total.Samples()
			if len(xs) != len(ys) {
				return fmt.Errorf("%s[%d]: %d vs %d samples", label, i, len(xs), len(ys))
			}
			for j := range xs {
				if xs[j] != ys[j] {
					return fmt.Errorf("%s[%d]: sample %d: %v vs %v", label, i, j, xs[j], ys[j])
				}
			}
		}
		return nil
	}
	if err := cmp("virtio", a.VirtIO, b.VirtIO); err != nil {
		return err
	}
	return cmp("xdma", a.XDMA, b.XDMA)
}

// Validate checks artifact well-formedness, mirroring the fvbench/v1
// validation discipline: a BENCH_sweep.json that loads but fails here
// is rejected by both the emitter and the comparison gate.
func (b *SweepBench) Validate() error {
	switch {
	case b.Schema != SweepBenchSchema:
		return fmt.Errorf("sweep bench: schema %q, want %q", b.Schema, SweepBenchSchema)
	case b.Packets <= 0:
		return fmt.Errorf("sweep bench: packets %d", b.Packets)
	case len(b.Payloads) == 0:
		return fmt.Errorf("sweep bench: no payloads")
	case b.Workers < 1:
		return fmt.Errorf("sweep bench: workers %d", b.Workers)
	case b.Cells != 2*len(b.Payloads):
		return fmt.Errorf("sweep bench: %d cells for %d payloads", b.Cells, len(b.Payloads))
	case b.NumCPU < 1 || b.GoMaxProcs < 1:
		return fmt.Errorf("sweep bench: host context missing (num_cpu=%d, go_max_procs=%d)", b.NumCPU, b.GoMaxProcs)
	case b.SerialNs <= 0 || b.ParallelNs <= 0:
		return fmt.Errorf("sweep bench: non-positive wall clock (serial=%d, parallel=%d)", b.SerialNs, b.ParallelNs)
	case b.SerialNsPerPacket <= 0:
		return fmt.Errorf("sweep bench: non-positive per-packet cost")
	case b.Speedup <= 0:
		return fmt.Errorf("sweep bench: non-positive speedup")
	}
	for _, size := range b.Payloads {
		if size <= 0 {
			return fmt.Errorf("sweep bench: payload %d", size)
		}
	}
	return nil
}

// WriteSweepBench writes the artifact as indented JSON, validated
// first so a passing emit guarantees a loadable, well-formed file.
func WriteSweepBench(w io.Writer, b *SweepBench) error {
	if err := b.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadSweepBench loads and validates an artifact.
func ReadSweepBench(r io.Reader) (*SweepBench, error) {
	var b SweepBench
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("sweep bench: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// CompareSweepBench gates cur against the committed baseline: the
// serial per-packet host cost may grow by at most tolerance (e.g. 0.15
// for the 15%% budget), and when the current host has the cores to show
// it (NumCPU >= 4 and more than one worker), the parallel engine must
// hold minSpeedup. Wall-clock totals are NOT compared directly — they
// scale with packet counts and machines; the per-packet ratio is the
// stable signal.
func CompareSweepBench(base, cur *SweepBench, tolerance, minSpeedup float64) error {
	if err := base.Validate(); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	if err := cur.Validate(); err != nil {
		return fmt.Errorf("current: %w", err)
	}
	limit := base.SerialNsPerPacket * (1 + tolerance)
	if cur.SerialNsPerPacket > limit {
		return fmt.Errorf("serial per-packet cost regressed %.1f%%: %.0f ns vs baseline %.0f ns (budget %.0f%%)",
			100*(cur.SerialNsPerPacket/base.SerialNsPerPacket-1),
			cur.SerialNsPerPacket, base.SerialNsPerPacket, 100*tolerance)
	}
	if SpeedupGateSkip(cur, minSpeedup) == "" && cur.Speedup < minSpeedup {
		return fmt.Errorf("parallel speedup %.2fx below the %.1fx floor on a %d-CPU host",
			cur.Speedup, minSpeedup, cur.NumCPU)
	}
	return nil
}

// ImprovementDelta renders the signed serial per-packet cost change of
// cur against base as an auditable one-liner: benchcmp logs must show
// the magnitude of an improvement (so a re-baseline after a perf win is
// reviewable) just as loudly as they fail a regression. The sign
// convention follows cost: negative percentages are faster.
func ImprovementDelta(base, cur *SweepBench) string {
	d := cur.SerialNsPerPacket - base.SerialNsPerPacket
	pct := 100 * (cur.SerialNsPerPacket/base.SerialNsPerPacket - 1)
	switch {
	case d < 0:
		return fmt.Sprintf("improvement: serial per-packet cost %.0f ns vs baseline %.0f ns (%.1f%%, %.2fx faster)",
			cur.SerialNsPerPacket, base.SerialNsPerPacket, pct, base.SerialNsPerPacket/cur.SerialNsPerPacket)
	case d > 0:
		return fmt.Sprintf("growth within budget: serial per-packet cost %.0f ns vs baseline %.0f ns (+%.1f%%)",
			cur.SerialNsPerPacket, base.SerialNsPerPacket, pct)
	default:
		return fmt.Sprintf("unchanged: serial per-packet cost %.0f ns matches baseline", cur.SerialNsPerPacket)
	}
}

// SpeedupGateSkip reports why the parallel-speedup floor does NOT
// apply to cur — empty string when the gate is enforced. The reason
// always records the host context (num_cpu) so a benchcmp log that
// skipped the gate is auditable: "passed" and "never judged" must not
// read the same.
func SpeedupGateSkip(cur *SweepBench, minSpeedup float64) string {
	switch {
	case minSpeedup <= 1:
		return fmt.Sprintf("speedup gate disabled (minspeedup=%g, num_cpu=%d)", minSpeedup, cur.NumCPU)
	case cur.Workers <= 1:
		return fmt.Sprintf("speedup gate skipped: serial-only run (workers=%d, num_cpu=%d)", cur.Workers, cur.NumCPU)
	case cur.NumCPU < 4:
		return fmt.Sprintf("speedup gate skipped: num_cpu=%d is below the 4-CPU floor (%.2fx recorded, not judged)",
			cur.NumCPU, cur.Speedup)
	}
	return ""
}
