// Package experiments regenerates every table and figure of the
// paper's evaluation section, plus the extension studies listed in
// DESIGN.md. Each experiment returns structured results and renders
// paper-style text output.
//
// Methodology notes carried over from the paper (§III-B, §IV):
//
//   - Each point is measured over Params.Packets round trips (the
//     paper uses 50,000 per payload size).
//   - Payload sizes are the UDP payload of the VirtIO test; the XDMA
//     test's buffer is enlarged by the protocol headers (Ethernet +
//     IPv4 + UDP + virtio_net_hdr = 54 bytes) so both tests move the
//     same number of bytes over the PCIe link.
//   - VirtIO hardware time is the controller's TX+RX queue-engine
//     counters; the user logic's response-generation time is deducted
//     separately. XDMA hardware time is the H2C+C2H engine counters.
//   - The XDMA test is the paper's favourable back-to-back setup (no
//     data-ready wait); the realistic variant is the IRQ ablation.
package experiments

import (
	"fmt"
	"strings"
	"time"

	fpgavirtio "fpgavirtio"
	"fpgavirtio/internal/netstack"
	"fpgavirtio/internal/perf"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
	"fpgavirtio/internal/virtio"
)

// HeaderOverhead is the per-packet framing the VirtIO path carries on
// the link beyond the UDP payload.
const HeaderOverhead = netstack.HeaderOverhead + virtio.NetHdrSize

// DefaultPayloads is the paper's sweep: 64 B to 1 KB.
var DefaultPayloads = []int{64, 128, 256, 512, 1024}

// Params controls an experiment run.
type Params struct {
	Seed     uint64
	Packets  int   // round trips per point (paper: 50,000)
	Payloads []int // UDP payload sizes
	Link     fpgavirtio.Link
	// Faults is a fault-injection plan (faults.Parse syntax) armed in
	// every session the run opens. Empty means no injection — the
	// zero-fault path, byte-identical to a build without the faults
	// package. Samples whose round trip overlapped an injection are
	// counted in PointResult.Faulted and excluded from the latency
	// series, so percentiles describe only clean round trips.
	Faults string
	// PollMode runs every session on its busy-poll datapath (no MSI-X,
	// spin-costed completion discovery) instead of the interrupt one.
	// Points measured this way carry datapath="poll" in artifacts.
	PollMode bool
}

// withDefaults fills unset fields.
func (p Params) withDefaults() Params {
	if p.Packets == 0 {
		p.Packets = 50000
	}
	if len(p.Payloads) == 0 {
		p.Payloads = DefaultPayloads
	}
	return p
}

// PointResult is one (driver, payload) measurement: the total series
// plus the decomposed means.
type PointResult struct {
	Driver  string
	Payload int
	// Datapath is "poll" for busy-poll measurements, "" for the default
	// interrupt-driven path — mirrored into the artifact point.
	Datapath string
	Total    *perf.Series
	SW       *perf.Series
	HW       *perf.Series
	RG       *perf.Series
	// Interrupts is the device's total MSI-X count over the run.
	Interrupts int
	// Faulted counts round trips excluded from the series because a
	// fault was injected while they were in flight (always 0 without a
	// fault plan).
	Faulted int
	// Metrics is the session's telemetry snapshot after the run.
	Metrics []telemetry.MetricSnapshot
	// Tail holds the critical-path attribution of this point's tail
	// samples (p99, p99.9, max), filled by AttributeTails.
	Tail []telemetry.TailSample
	// FlightDumps are the session's flight-recorder snapshots: one per
	// fault class that fired, plus the worst-RTT trigger.
	FlightDumps []telemetry.FlightDump

	// cleanLoops/cleanNs record, per clean (fault-excluded) sample in
	// completion order, the raw series loop index and the measured RTT
	// in nanoseconds. perf.Series sorts its samples in place the first
	// time a percentile is read, so this pair — not the series — is the
	// map from a tail rank back to the loop index AttributeTails must
	// replay.
	cleanLoops []int
	cleanNs    []int64
}

func toSim(d time.Duration) sim.Duration { return sim.Duration(d.Nanoseconds()) * sim.Nanosecond }

// datapathName is the artifact spelling of the datapath axis: "poll"
// for busy-poll sessions, "" (omitted from JSON) for interrupt mode.
func datapathName(poll bool) string {
	if poll {
		return "poll"
	}
	return ""
}

// MeasureVirtIO runs the paper's VirtIO test for one payload size:
// UDP echo through the socket API and the virtio-net driver.
func MeasureVirtIO(p Params, payload int, mutate func(*fpgavirtio.NetConfig)) (*PointResult, error) {
	p = p.withDefaults()
	cfg := fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: p.Seed, Link: p.Link, Faults: p.Faults, PollMode: p.PollMode}}
	if mutate != nil {
		mutate(&cfg)
	}
	ns, err := fpgavirtio.OpenNet(cfg)
	if err != nil {
		return nil, err
	}
	res := &PointResult{
		Driver:   "virtio",
		Payload:  payload,
		Datapath: datapathName(cfg.PollMode),
		Total:    perf.NewSeriesCap(fmt.Sprintf("virtio/%d/total", payload), p.Packets),
		SW:       perf.NewSeriesCap("sw", p.Packets),
		HW:       perf.NewSeriesCap("hw", p.Packets),
		RG:       perf.NewSeriesCap("rg", p.Packets),
	}
	buf := make([]byte, payload)
	// A sample that overlapped an injection measured the recovery path,
	// not the steady state — flag it and keep it out of the percentile
	// series. Faults injected between round trips advance the count too;
	// charging them to the next sample errs on the side of exclusion.
	faultMark := ns.FaultEvents()
	err = ns.PingSeries(buf, p.Packets, func(i int, s fpgavirtio.RTTSample) {
		if now := ns.FaultEvents(); now != faultMark {
			faultMark = now
			res.Faulted++
			return
		}
		res.Total.Add(toSim(s.Total))
		res.SW.Add(toSim(s.Software))
		res.HW.Add(toSim(s.Hardware))
		res.RG.Add(toSim(s.RespGen))
		res.cleanLoops = append(res.cleanLoops, i)
		res.cleanNs = append(res.cleanNs, s.Total.Nanoseconds())
	})
	if err != nil {
		return nil, fmt.Errorf("virtio: %w", err)
	}
	res.Interrupts = ns.BusStats().Interrupts
	res.Metrics = ns.Registry().Snapshot()
	res.FlightDumps = ns.FlightDumps()
	return res, nil
}

// MeasureXDMA runs the paper's vendor test for one (VirtIO-equivalent)
// payload size: write()+read() through the reference driver, moving
// payload+headers bytes so the link carries the same traffic.
func MeasureXDMA(p Params, payload int, mutate func(*fpgavirtio.XDMAConfig)) (*PointResult, error) {
	p = p.withDefaults()
	cfg := fpgavirtio.XDMAConfig{Config: fpgavirtio.Config{Seed: p.Seed, Link: p.Link, Faults: p.Faults, PollMode: p.PollMode}}
	if mutate != nil {
		mutate(&cfg)
	}
	xs, err := fpgavirtio.OpenXDMA(cfg)
	if err != nil {
		return nil, err
	}
	res := &PointResult{
		Driver:   "xdma",
		Payload:  payload,
		Datapath: datapathName(cfg.PollMode),
		Total:    perf.NewSeriesCap(fmt.Sprintf("xdma/%d/total", payload), p.Packets),
		SW:       perf.NewSeriesCap("sw", p.Packets),
		HW:       perf.NewSeriesCap("hw", p.Packets),
		RG:       perf.NewSeriesCap("rg", p.Packets),
	}
	buf := make([]byte, payload+HeaderOverhead)
	faultMark := xs.FaultEvents()
	err = xs.RoundTripSeries(buf, p.Packets, func(i int, s fpgavirtio.RTTSample) {
		if now := xs.FaultEvents(); now != faultMark {
			faultMark = now
			res.Faulted++
			return
		}
		res.Total.Add(toSim(s.Total))
		res.SW.Add(toSim(s.Software))
		res.HW.Add(toSim(s.Hardware))
		res.RG.Add(0)
		res.cleanLoops = append(res.cleanLoops, i)
		res.cleanNs = append(res.cleanNs, s.Total.Nanoseconds())
	})
	if err != nil {
		return nil, fmt.Errorf("xdma: %w", err)
	}
	res.Interrupts = xs.BusStats().Interrupts
	res.Metrics = xs.Registry().Snapshot()
	res.FlightDumps = xs.FlightDumps()
	return res, nil
}

// Sweep runs both drivers across all payloads.
type Sweep struct {
	Params Params
	VirtIO []*PointResult
	XDMA   []*PointResult
}

// RunSweep measures the full grid the paper's figures share.
func RunSweep(p Params) (*Sweep, error) {
	p = p.withDefaults()
	sw := &Sweep{Params: p}
	for _, size := range p.Payloads {
		v, err := MeasureVirtIO(p, size, nil)
		if err != nil {
			return nil, err
		}
		x, err := MeasureXDMA(p, size, nil)
		if err != nil {
			return nil, err
		}
		sw.VirtIO = append(sw.VirtIO, v)
		sw.XDMA = append(sw.XDMA, x)
	}
	return sw, nil
}

// ---- Fig. 3: round-trip latency distribution ----------------------------

// Fig3 reproduces the latency-distribution comparison.
type Fig3 struct {
	Rows []perf.Summary // one per (payload, driver), VirtIO first
}

// RunFig3 derives the figure from a sweep.
func RunFig3(sw *Sweep) *Fig3 {
	f := &Fig3{}
	for i := range sw.VirtIO {
		f.Rows = append(f.Rows, sw.VirtIO[i].Total.Summarize(), sw.XDMA[i].Total.Summarize())
	}
	return f
}

// Render prints the distribution table plus per-point histograms.
func (f *Fig3) Render(histograms bool) string {
	t := perf.Table{
		Title:   "Fig. 3 — Round-trip latency distribution (us), VirtIO vs XDMA",
		Headers: []string{"series", "n", "mean", "std", "min", "p25", "p50", "p75", "p95", "p99", "p99.9", "max"},
	}
	for _, s := range f.Rows {
		t.AddRow(s.Name, fmt.Sprint(s.Count), perf.Us(s.Mean), perf.Us(s.Std), perf.Us(s.Min),
			perf.Us(s.P25), perf.Us(s.P50), perf.Us(s.P75), perf.Us(s.P95), perf.Us(s.P99),
			perf.Us(s.P999), perf.Us(s.Max))
	}
	return t.String()
}

// ---- Fig. 4 / Fig. 5: latency breakdowns --------------------------------

// BreakdownFig is the software/hardware decomposition of one driver
// (Fig. 4 for VirtIO, Fig. 5 for XDMA).
type BreakdownFig struct {
	Driver string
	Rows   []BreakdownRow
}

// BreakdownRow is one payload's bars.
type BreakdownRow struct {
	Payload             int
	SWMean, SWStd       sim.Duration
	HWMean, HWStd       sim.Duration
	RGMean              sim.Duration
	TotalMean, TotalStd sim.Duration
}

// RunFig4 derives the VirtIO breakdown from a sweep.
func RunFig4(sw *Sweep) *BreakdownFig { return breakdown("virtio (Fig. 4)", sw.VirtIO) }

// RunFig5 derives the XDMA breakdown from a sweep.
func RunFig5(sw *Sweep) *BreakdownFig { return breakdown("xdma (Fig. 5)", sw.XDMA) }

func breakdown(name string, pts []*PointResult) *BreakdownFig {
	f := &BreakdownFig{Driver: name}
	for _, pt := range pts {
		f.Rows = append(f.Rows, BreakdownRow{
			Payload:   pt.Payload,
			SWMean:    pt.SW.Mean(),
			SWStd:     pt.SW.Std(),
			HWMean:    pt.HW.Mean(),
			HWStd:     pt.HW.Std(),
			RGMean:    pt.RG.Mean(),
			TotalMean: pt.Total.Mean(),
			TotalStd:  pt.Total.Std(),
		})
	}
	return f
}

// Render prints the mean ± stddev bars the figures plot.
func (f *BreakdownFig) Render() string {
	t := perf.Table{
		Title:   fmt.Sprintf("Latency breakdown — %s (us, mean +/- std)", f.Driver),
		Headers: []string{"payload", "software", "hardware", "respgen", "total"},
	}
	for _, r := range f.Rows {
		t.AddRow(fmt.Sprint(r.Payload),
			fmt.Sprintf("%s +/- %s", perf.Us(r.SWMean), perf.Us(r.SWStd)),
			fmt.Sprintf("%s +/- %s", perf.Us(r.HWMean), perf.Us(r.HWStd)),
			perf.Us(r.RGMean),
			fmt.Sprintf("%s +/- %s", perf.Us(r.TotalMean), perf.Us(r.TotalStd)))
	}
	return t.String()
}

// ---- Table I: tail latencies ---------------------------------------------

// Table1 reproduces the tail-latency table.
type Table1 struct {
	Rows []Table1Row
}

// Table1Row is one payload's tails for both drivers, in microseconds.
type Table1Row struct {
	Payload                        int
	V95, X95, V99, X99, V999, X999 sim.Duration
}

// RunTable1 derives Table I from a sweep.
func RunTable1(sw *Sweep) *Table1 {
	t := &Table1{}
	for i := range sw.VirtIO {
		v, x := sw.VirtIO[i].Total, sw.XDMA[i].Total
		t.Rows = append(t.Rows, Table1Row{
			Payload: sw.VirtIO[i].Payload,
			V95:     v.Percentile(95), X95: x.Percentile(95),
			V99: v.Percentile(99), X99: x.Percentile(99),
			V999: v.Percentile(99.9), X999: x.Percentile(99.9),
		})
	}
	return t
}

// Render prints the paper's Table I layout.
func (t *Table1) Render() string {
	tab := perf.Table{
		Title: "Table I — Tail latencies for data movement with VirtIO and XDMA (us)",
		Headers: []string{"Payload(B)",
			"95% VirtIO", "95% XDMA", "99% VirtIO", "99% XDMA", "99.9% VirtIO", "99.9% XDMA"},
	}
	for _, r := range t.Rows {
		tab.AddRow(fmt.Sprint(r.Payload),
			perf.Us(r.V95), perf.Us(r.X95),
			perf.Us(r.V99), perf.Us(r.X99),
			perf.Us(r.V999), perf.Us(r.X999))
	}
	return tab.String()
}

// RenderAll renders the four paper artifacts from one sweep.
func RenderAll(sw *Sweep) string {
	var b strings.Builder
	b.WriteString(RunFig3(sw).Render(false))
	b.WriteString("\n")
	b.WriteString(RunFig4(sw).Render())
	b.WriteString("\n")
	b.WriteString(RunFig5(sw).Render())
	b.WriteString("\n")
	b.WriteString(RunTable1(sw).Render())
	return b.String()
}
