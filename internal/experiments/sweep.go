package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// The parallel sweep engine.
//
// A sweep's measurement grid is embarrassingly parallel: every
// (driver, payload) cell boots its own simulation from Params.Seed and
// shares no state with any other cell. RunSweepParallel exploits that
// by fanning cells to a small worker pool while keeping the output
// bit-for-bit identical to RunSweep:
//
//   - Isolation: each cell calls MeasureVirtIO / MeasureXDMA, which
//     open a fresh session — a private sim.Sim (event heap, RNG, proc
//     pool), hostos.Host, and telemetry.Registry. Telemetry Counters
//     and Gauges are deliberately unsynchronized (single-simulation
//     discipline), so the engine's correctness depends on this
//     registry-per-worker invariant: no instrument, registry, or sim
//     object may cross a cell boundary. `make flake` runs the
//     determinism test under -race to enforce it.
//   - Determinism: a cell's result is a pure function of (Params,
//     driver, payload). Workers claim cells from an atomic counter —
//     claiming ORDER varies run to run, but results land in a slice
//     indexed by cell, so the merged Sweep (and every artifact,
//     golden file, and metric snapshot derived from it) is identical
//     at any worker count.

// sweepCell is one unit of parallel work: a single driver at a single
// payload size.
type sweepCell struct {
	virtio  bool
	payload int
	idx     int // payload index in Params.Payloads
}

// SweepProgress reports one completed sweep cell to a live observer.
type SweepProgress struct {
	Driver  string // "virtio" or "xdma"
	Payload int
	Done    int // cells completed so far, including this one
	Total   int // total cells in the sweep
	// Point is the completed cell's result. The observer may read it
	// (e.g. snapshot its metrics) but must not mutate it.
	Point *PointResult
}

// RunSweepParallel measures the same grid as RunSweep with up to
// workers cells in flight at once. workers <= 1 delegates to RunSweep
// (the exact serial code path); any other count produces byte-identical
// results in a fraction of the wall-clock time.
func RunSweepParallel(p Params, workers int) (*Sweep, error) {
	return RunSweepParallelWithProgress(p, workers, nil)
}

// RunSweepParallelWithProgress is RunSweepParallel with a completion
// callback, the hook behind fvbench's live exposition endpoint.
// progress (optional) fires once per finished cell — from worker
// goroutines, possibly concurrently, so the observer synchronizes its
// own state. Results remain byte-identical to RunSweep at any worker
// count; only the callback ordering varies.
func RunSweepParallelWithProgress(p Params, workers int, progress func(SweepProgress)) (*Sweep, error) {
	p = p.withDefaults()
	if workers <= 1 && progress == nil {
		return RunSweep(p)
	}
	cells := make([]sweepCell, 0, 2*len(p.Payloads))
	for i, size := range p.Payloads {
		// VirtIO before XDMA within a payload, mirroring RunSweep's
		// serial order — relevant only for error reporting, since
		// results merge by index.
		cells = append(cells,
			sweepCell{virtio: true, payload: size, idx: i},
			sweepCell{virtio: false, payload: size, idx: i})
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	sw := &Sweep{
		Params: p,
		VirtIO: make([]*PointResult, len(p.Payloads)),
		XDMA:   make([]*PointResult, len(p.Payloads)),
	}
	var mu sync.Mutex
	done := 0
	report := func(c sweepCell, pt *PointResult) {
		if progress == nil || pt == nil {
			return
		}
		mu.Lock()
		done++
		d := done
		mu.Unlock()
		driver := "xdma"
		if c.virtio {
			driver = "virtio"
		}
		progress(SweepProgress{Driver: driver, Payload: c.payload, Done: d, Total: len(cells), Point: pt})
	}
	errs := make([]error, len(cells))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				c := cells[i]
				if c.virtio {
					sw.VirtIO[c.idx], errs[i] = MeasureVirtIO(p, c.payload, nil)
					report(c, sw.VirtIO[c.idx])
				} else {
					sw.XDMA[c.idx], errs[i] = MeasureXDMA(p, c.payload, nil)
					report(c, sw.XDMA[c.idx])
				}
			}
		}()
	}
	wg.Wait()

	// First error in cell order, so failures report deterministically
	// no matter which worker hit them.
	for i, err := range errs {
		if err != nil {
			driver := "xdma"
			if cells[i].virtio {
				driver = "virtio"
			}
			return nil, fmt.Errorf("sweep cell %s/%dB: %w", driver, cells[i].payload, err)
		}
	}
	return sw, nil
}
