package experiments

import (
	"fmt"

	fpgavirtio "fpgavirtio"
	"fpgavirtio/internal/perf"
	"fpgavirtio/internal/sim"
)

// ---- E5: checksum-offload ablation ---------------------------------------

// OffloadResult compares VirtIO with and without NET_F_CSUM/GUEST_CSUM.
type OffloadResult struct {
	Payload        int
	WithOffload    perf.Summary
	WithoutOffload perf.Summary
	SWMeanWith     sim.Duration
	SWMeanWithout  sim.Duration
}

// RunOffload measures the checksum-offload ablation at one payload.
func RunOffload(p Params, payload int) (*OffloadResult, error) {
	p = p.withDefaults()
	on, err := MeasureVirtIO(p, payload, nil)
	if err != nil {
		return nil, err
	}
	off, err := MeasureVirtIO(p, payload, func(c *fpgavirtio.NetConfig) { c.DisableCsumOffload = true })
	if err != nil {
		return nil, err
	}
	return &OffloadResult{
		Payload:        payload,
		WithOffload:    on.Total.Summarize(),
		WithoutOffload: off.Total.Summarize(),
		SWMeanWith:     on.SW.Mean(),
		SWMeanWithout:  off.SW.Mean(),
	}, nil
}

// Render prints the ablation comparison.
func (r *OffloadResult) Render() string {
	t := perf.Table{
		Title:   fmt.Sprintf("E5 — Checksum offload ablation, %d B UDP payload (us)", r.Payload),
		Headers: []string{"config", "total mean", "total p95", "sw mean"},
	}
	t.AddRow("CSUM offloaded", perf.Us(r.WithOffload.Mean), perf.Us(r.WithOffload.P95), perf.Us(r.SWMeanWith))
	t.AddRow("software csum", perf.Us(r.WithoutOffload.Mean), perf.Us(r.WithoutOffload.P95), perf.Us(r.SWMeanWithout))
	return t.String()
}

// ---- E6: notification/interrupt ablation ----------------------------------

// IRQAblation compares signalling strategies: the paper's favourable
// XDMA setup vs the realistic data-ready-interrupt one, and VirtIO with
// suppressed vs per-packet TX interrupts.
type IRQAblation struct {
	Payload            int
	Packets            int
	XDMABackToBack     perf.Summary
	XDMAWithC2HWait    perf.Summary
	VirtIOSuppressedTx perf.Summary
	VirtIOTxIRQs       perf.Summary
	// Interrupt totals over the run for the VirtIO arms: suppressing TX
	// completions halves the device's interrupt traffic.
	IRQsSuppressedTx int
	IRQsPerPacketTx  int
}

// RunIRQAblation measures all four arms at one payload.
func RunIRQAblation(p Params, payload int) (*IRQAblation, error) {
	p = p.withDefaults()
	xFav, err := MeasureXDMA(p, payload, nil)
	if err != nil {
		return nil, err
	}
	xReal, err := MeasureXDMA(p, payload, func(c *fpgavirtio.XDMAConfig) { c.WaitC2HReady = true })
	if err != nil {
		return nil, err
	}
	vSupp, err := MeasureVirtIO(p, payload, nil)
	if err != nil {
		return nil, err
	}
	vIRQ, err := MeasureVirtIO(p, payload, func(c *fpgavirtio.NetConfig) { c.TxInterrupts = true })
	if err != nil {
		return nil, err
	}
	return &IRQAblation{
		Payload:            payload,
		Packets:            p.Packets,
		XDMABackToBack:     xFav.Total.Summarize(),
		XDMAWithC2HWait:    xReal.Total.Summarize(),
		VirtIOSuppressedTx: vSupp.Total.Summarize(),
		VirtIOTxIRQs:       vIRQ.Total.Summarize(),
		IRQsSuppressedTx:   vSupp.Interrupts,
		IRQsPerPacketTx:    vIRQ.Interrupts,
	}, nil
}

// Render prints the four arms.
func (r *IRQAblation) Render() string {
	t := perf.Table{
		Title:   fmt.Sprintf("E6 — Interrupt/notification ablation, %d B payload (us)", r.Payload),
		Headers: []string{"config", "mean", "p95", "p99"},
	}
	t.Headers = append(t.Headers, "irqs/pkt")
	add := func(name string, s perf.Summary, irqs string) {
		t.AddRow(name, perf.Us(s.Mean), perf.Us(s.P95), perf.Us(s.P99), irqs)
	}
	perPkt := func(n int) string { return fmt.Sprintf("%.2f", float64(n)/float64(r.Packets)) }
	add("XDMA back-to-back (paper setup)", r.XDMABackToBack, "2.00")
	add("XDMA + C2H data-ready IRQ (realistic)", r.XDMAWithC2HWait, "3.00")
	add("VirtIO, TX IRQs suppressed (default)", r.VirtIOSuppressedTx, perPkt(r.IRQsSuppressedTx))
	add("VirtIO, per-packet TX IRQs", r.VirtIOTxIRQs, perPkt(r.IRQsPerPacketTx))
	return t.String()
}

// ---- E7: host-bypass interface ---------------------------------------------

// BypassResult compares user-logic-initiated transfers against the
// driver path (paper §III-A's additional interface).
type BypassResult struct {
	Rows []BypassRow
}

// BypassRow is one transfer size's comparison.
type BypassRow struct {
	Bytes      int
	BypassMean sim.Duration
	DriverMean sim.Duration
}

// RunBypass measures bypass copies vs driver round trips across sizes.
func RunBypass(p Params) (*BypassResult, error) {
	p = p.withDefaults()
	iters := p.Packets / 10
	if iters < 10 {
		iters = 10
	}
	if iters > 2000 {
		iters = 2000
	}
	res := &BypassResult{}
	for _, n := range p.Payloads {
		ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: p.Seed, Link: p.Link}})
		if err != nil {
			return nil, err
		}
		by := perf.NewSeries("bypass")
		dr := perf.NewSeries("driver")
		buf := make([]byte, n)
		for i := 0; i < iters; i++ {
			d, err := ns.BypassCopy(n)
			if err != nil {
				return nil, err
			}
			by.Add(toSim(d))
			s, err := ns.PingDetailed(buf)
			if err != nil {
				return nil, err
			}
			dr.Add(toSim(s.Total))
		}
		res.Rows = append(res.Rows, BypassRow{Bytes: n, BypassMean: by.Mean(), DriverMean: dr.Mean()})
	}
	return res, nil
}

// Render prints the comparison.
func (r *BypassResult) Render() string {
	t := perf.Table{
		Title:   "E7 — Host-bypass interface vs driver path (us, mean)",
		Headers: []string{"bytes", "bypass copy", "driver echo RTT", "ratio"},
	}
	for _, row := range r.Rows {
		ratio := float64(row.DriverMean) / float64(row.BypassMean)
		t.AddRow(fmt.Sprint(row.Bytes), perf.Us(row.BypassMean), perf.Us(row.DriverMean),
			fmt.Sprintf("%.1fx", ratio))
	}
	return t.String()
}

// ---- E8: device-type and link portability ----------------------------------

// PortabilityResult exercises the same controller under different
// device personalities and link generations.
type PortabilityResult struct {
	NetGen2Mean  sim.Duration
	NetGen3Mean  sim.Duration
	ConsoleMean  sim.Duration
	BlkReadMean  sim.Duration
	BlkWriteMean sim.Duration
	Iterations   int
}

// RunPortability measures the portability grid.
func RunPortability(p Params) (*PortabilityResult, error) {
	p = p.withDefaults()
	iters := p.Packets / 25
	if iters < 10 {
		iters = 10
	}
	if iters > 2000 {
		iters = 2000
	}
	res := &PortabilityResult{Iterations: iters}

	measureNet := func(link fpgavirtio.Link) (sim.Duration, error) {
		ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: p.Seed, Link: link}})
		if err != nil {
			return 0, err
		}
		s := perf.NewSeries("net")
		buf := make([]byte, 256)
		for i := 0; i < iters; i++ {
			r, err := ns.PingDetailed(buf)
			if err != nil {
				return 0, err
			}
			s.Add(toSim(r.Total))
		}
		return s.Mean(), nil
	}
	var err error
	if res.NetGen2Mean, err = measureNet(fpgavirtio.Gen2x2); err != nil {
		return nil, err
	}
	if res.NetGen3Mean, err = measureNet(fpgavirtio.Gen3x4); err != nil {
		return nil, err
	}

	cs, err := fpgavirtio.OpenConsole(fpgavirtio.Config{Seed: p.Seed, Link: p.Link})
	if err != nil {
		return nil, err
	}
	con := perf.NewSeries("console")
	msg := make([]byte, 256)
	for i := 0; i < iters; i++ {
		_, rtt, err := cs.WriteRead(msg)
		if err != nil {
			return nil, err
		}
		con.Add(toSim(rtt))
	}
	res.ConsoleMean = con.Mean()

	bs, err := fpgavirtio.OpenBlk(fpgavirtio.BlkConfig{Config: fpgavirtio.Config{Seed: p.Seed, Link: p.Link}})
	if err != nil {
		return nil, err
	}
	rd := perf.NewSeries("blkrd")
	wr := perf.NewSeries("blkwr")
	sector := make([]byte, 512)
	for i := 0; i < iters; i++ {
		d, err := bs.WriteSector(uint64(i%1024), sector)
		if err != nil {
			return nil, err
		}
		wr.Add(toSim(d))
		_, d, err = bs.ReadSector(uint64(i % 1024))
		if err != nil {
			return nil, err
		}
		rd.Add(toSim(d))
	}
	res.BlkReadMean = rd.Mean()
	res.BlkWriteMean = wr.Mean()
	return res, nil
}

// Render prints the portability grid.
func (r *PortabilityResult) Render() string {
	t := perf.Table{
		Title:   fmt.Sprintf("E8 — Device-type & link portability (us, mean over %d ops)", r.Iterations),
		Headers: []string{"configuration", "mean latency"},
	}
	t.AddRow("net echo, Gen2 x2 (256 B)", perf.Us(r.NetGen2Mean))
	t.AddRow("net echo, Gen3 x4 (256 B)", perf.Us(r.NetGen3Mean))
	t.AddRow("console echo (256 B)", perf.Us(r.ConsoleMean))
	t.AddRow("blk read (512 B sector)", perf.Us(r.BlkReadMean))
	t.AddRow("blk write (512 B sector)", perf.Us(r.BlkWriteMean))
	return t.String()
}

// ---- E9: EVENT_IDX suppression under bursty load ---------------------------

// EventIdxResult compares flag-based and event-index-based notification
// suppression under a send-burst-then-drain workload.
type EventIdxResult struct {
	Burst, Packets                 int
	FlagsDoorbells, EvIdxDoorbells int
	FlagsIRQs, EvIdxIRQs           int
	FlagsElapsed, EvIdxElapsed     sim.Duration
}

// RunEventIdx measures both modes over repeated bursts.
func RunEventIdx(p Params, burst int) (*EventIdxResult, error) {
	p = p.withDefaults()
	rounds := p.Packets / burst
	if rounds < 1 {
		rounds = 1
	}
	if rounds > 200 {
		rounds = 200
	}
	measure := func(eventIdx bool) (db, irqs int, elapsed sim.Duration, err error) {
		ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
			Config:      fpgavirtio.Config{Seed: p.Seed, Link: p.Link},
			UseEventIdx: eventIdx,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		for i := 0; i < rounds; i++ {
			r, err := ns.Burst(burst, 128)
			if err != nil {
				return 0, 0, 0, err
			}
			db += r.Doorbells
			irqs += r.Interrupts
			elapsed += toSim(r.Elapsed)
		}
		return db, irqs, elapsed / sim.Duration(rounds), nil
	}
	res := &EventIdxResult{Burst: burst, Packets: rounds * burst}
	var err error
	if res.FlagsDoorbells, res.FlagsIRQs, res.FlagsElapsed, err = measure(false); err != nil {
		return nil, err
	}
	if res.EvIdxDoorbells, res.EvIdxIRQs, res.EvIdxElapsed, err = measure(true); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the comparison.
func (r *EventIdxResult) Render() string {
	t := perf.Table{
		Title: fmt.Sprintf("E9 — EVENT_IDX vs flags suppression, bursts of %d (over %d pkts)",
			r.Burst, r.Packets),
		Headers: []string{"mode", "doorbells/pkt", "irqs/pkt", "burst time (us)"},
	}
	per := func(n int) string { return fmt.Sprintf("%.2f", float64(n)/float64(r.Packets)) }
	t.AddRow("flags (default)", per(r.FlagsDoorbells), per(r.FlagsIRQs), perf.Us(r.FlagsElapsed))
	t.AddRow("EVENT_IDX", per(r.EvIdxDoorbells), per(r.EvIdxIRQs), perf.Us(r.EvIdxElapsed))
	return t.String()
}

// ---- E10: host OS portability ----------------------------------------------

// OSProfileResult measures both drivers' means and tails under the
// three host profiles — the "different operating systems" axis of the
// paper's conclusion.
type OSProfileResult struct {
	Payload int
	Rows    []OSProfileRow
}

// OSProfileRow is one profile's comparison.
type OSProfileRow struct {
	Profile      fpgavirtio.HostProfile
	VirtIO, XDMA perf.Summary
}

// RunOSProfiles measures the grid at one payload.
func RunOSProfiles(p Params, payload int) (*OSProfileResult, error) {
	p = p.withDefaults()
	res := &OSProfileResult{Payload: payload}
	for _, prof := range []fpgavirtio.HostProfile{fpgavirtio.DesktopHost, fpgavirtio.ServerHost, fpgavirtio.RTHost} {
		prof := prof
		v, err := MeasureVirtIO(p, payload, func(c *fpgavirtio.NetConfig) { c.Host = prof })
		if err != nil {
			return nil, err
		}
		x, err := MeasureXDMA(p, payload, func(c *fpgavirtio.XDMAConfig) { c.Host = prof })
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, OSProfileRow{
			Profile: prof,
			VirtIO:  v.Total.Summarize(),
			XDMA:    x.Total.Summarize(),
		})
	}
	return res, nil
}

// Render prints the per-profile comparison.
func (r *OSProfileResult) Render() string {
	t := perf.Table{
		Title: fmt.Sprintf("E10 — Host OS profiles, %d B payload (us)", r.Payload),
		Headers: []string{"host profile",
			"VirtIO mean", "VirtIO p95", "VirtIO p99.9",
			"XDMA mean", "XDMA p95", "XDMA p99.9"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Profile.String(),
			perf.Us(row.VirtIO.Mean), perf.Us(row.VirtIO.P95), perf.Us(row.VirtIO.P999),
			perf.Us(row.XDMA.Mean), perf.Us(row.XDMA.P95), perf.Us(row.XDMA.P999))
	}
	return t.String()
}

// ---- E11: pipelined throughput ----------------------------------------------

// ThroughputResult compares sustained round-trip throughput: the VirtIO
// rings pipeline many packets in flight, while the character-device
// semantics serialize one transfer at a time — a dimension the paper's
// ping-pong latency tests cannot show.
type ThroughputResult struct {
	Rows []ThroughputRow
}

// ThroughputRow is one payload's comparison. Rates are packets per
// second of simulated time (each packet crosses the link twice).
type ThroughputRow struct {
	Payload        int
	VirtIOPktsPerS float64
	XDMAPktsPerS   float64
}

// RunThroughput measures both paths under sustained load.
func RunThroughput(p Params) (*ThroughputResult, error) {
	p = p.withDefaults()
	burst := 64
	rounds := p.Packets / burst / 4
	if rounds < 2 {
		rounds = 2
	}
	if rounds > 100 {
		rounds = 100
	}
	res := &ThroughputResult{}
	for _, payload := range p.Payloads {
		ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: p.Seed, Link: p.Link}})
		if err != nil {
			return nil, err
		}
		var vElapsed sim.Duration
		for i := 0; i < rounds; i++ {
			r, err := ns.Burst(burst, payload)
			if err != nil {
				return nil, err
			}
			vElapsed += toSim(r.Elapsed)
		}
		vRate := float64(rounds*burst) / (float64(vElapsed) / float64(sim.Second))

		xs, err := fpgavirtio.OpenXDMA(fpgavirtio.XDMAConfig{Config: fpgavirtio.Config{Seed: p.Seed, Link: p.Link}})
		if err != nil {
			return nil, err
		}
		var xElapsed sim.Duration
		buf := make([]byte, payload+HeaderOverhead)
		n := rounds * burst / 4 // XDMA round trips are serial; sample fewer
		if n < 16 {
			n = 16
		}
		for i := 0; i < n; i++ {
			d, err := xs.RoundTrip(buf)
			if err != nil {
				return nil, err
			}
			xElapsed += toSim(d)
		}
		xRate := float64(n) / (float64(xElapsed) / float64(sim.Second))
		res.Rows = append(res.Rows, ThroughputRow{Payload: payload, VirtIOPktsPerS: vRate, XDMAPktsPerS: xRate})
	}
	return res, nil
}

// Render prints the throughput comparison.
func (r *ThroughputResult) Render() string {
	t := perf.Table{
		Title:   "E11 — Sustained round-trip throughput (kilo-packets/s)",
		Headers: []string{"payload", "VirtIO (pipelined)", "XDMA (serial)", "speedup"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprint(row.Payload),
			fmt.Sprintf("%.1f", row.VirtIOPktsPerS/1000),
			fmt.Sprintf("%.1f", row.XDMAPktsPerS/1000),
			fmt.Sprintf("%.1fx", row.VirtIOPktsPerS/row.XDMAPktsPerS))
	}
	return t.String()
}

// ---- E12: split vs packed virtqueue format ----------------------------------

// RingFormatResult compares the split and packed virtqueue formats on
// the same device — a future-work direction for the paper's controller:
// the packed format's in-band availability bits cut the device's
// per-chain bus reads, directly shrinking the hardware share of Fig. 4.
type RingFormatResult struct {
	Payload           int
	Split, Packed     perf.Summary
	SplitHW, PackedHW sim.Duration
}

// RunRingFormat measures both formats at one payload.
func RunRingFormat(p Params, payload int) (*RingFormatResult, error) {
	p = p.withDefaults()
	split, err := MeasureVirtIO(p, payload, nil)
	if err != nil {
		return nil, err
	}
	packed, err := MeasureVirtIO(p, payload, func(c *fpgavirtio.NetConfig) { c.UsePackedRing = true })
	if err != nil {
		return nil, err
	}
	return &RingFormatResult{
		Payload:  payload,
		Split:    split.Total.Summarize(),
		Packed:   packed.Total.Summarize(),
		SplitHW:  split.HW.Mean(),
		PackedHW: packed.HW.Mean(),
	}, nil
}

// Render prints the format comparison.
func (r *RingFormatResult) Render() string {
	t := perf.Table{
		Title:   fmt.Sprintf("E12 — Split vs packed virtqueue, %d B payload (us)", r.Payload),
		Headers: []string{"format", "total mean", "total p95", "hw mean"},
	}
	t.AddRow("split (paper's device)", perf.Us(r.Split.Mean), perf.Us(r.Split.P95), perf.Us(r.SplitHW))
	t.AddRow("packed (VIRTIO_F_RING_PACKED)", perf.Us(r.Packed.Mean), perf.Us(r.Packed.P95), perf.Us(r.PackedHW))
	return t.String()
}
