package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	fpgavirtio "fpgavirtio"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// Tail-latency attribution: the two-pass replay behind the artifact's
// tail_attribution block.
//
// Pass one is the normal measurement sweep, which keeps (loop index,
// RTT) for every clean sample. Pass two exploits determinism: sessions
// are pure functions of their seed, so re-opening a session with the
// same config and re-running the series reproduces round trip i
// exactly — this time with the span recorder switched on around just
// the tail-ranked indices. The critical-path analyzer then partitions
// each replayed RTT by layer. This costs one extra session per
// measured point but keeps span recording (and its allocations)
// entirely out of the timed pass, which is what the bench-regression
// gate measures.

// tailRanks are the tail positions the replay attributes, in the order
// they appear in the artifact.
var tailRanks = []struct {
	name string
	q    float64 // percentile; <0 means the maximum
}{
	{"p99", 99},
	{"p99.9", 99.9},
	{"max", -1},
}

// AttributeTails replays every point's tail samples and fills
// PointResult.Tail across the sweep. Call it after the measurement
// pass and outside any timed section.
func AttributeTails(sw *Sweep) error {
	p := sw.Params.withDefaults()
	for _, pt := range sw.VirtIO {
		err := attributePoint(pt, func(targets []int) ([]fpgavirtio.CapturedPath, error) {
			cfg := fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: p.Seed, Link: p.Link, Faults: p.Faults, PollMode: p.PollMode}}
			ns, err := fpgavirtio.OpenNet(cfg)
			if err != nil {
				return nil, err
			}
			return ns.CaptureCriticalPaths(make([]byte, pt.Payload), targets)
		})
		if err != nil {
			return err
		}
	}
	for _, pt := range sw.XDMA {
		err := attributePoint(pt, func(targets []int) ([]fpgavirtio.CapturedPath, error) {
			cfg := fpgavirtio.XDMAConfig{Config: fpgavirtio.Config{Seed: p.Seed, Link: p.Link, Faults: p.Faults, PollMode: p.PollMode}}
			xs, err := fpgavirtio.OpenXDMA(cfg)
			if err != nil {
				return nil, err
			}
			return xs.CaptureCriticalPaths(make([]byte, pt.Payload+HeaderOverhead), targets)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// RenderTailReport renders the sweep's tail attribution as text: one
// line per tail-ranked sample showing where its nanoseconds went.
// Empty when AttributeTails has not run.
func RenderTailReport(sw *Sweep) string {
	var b strings.Builder
	points := append(append([]*PointResult{}, sw.VirtIO...), sw.XDMA...)
	for _, pt := range points {
		if pt == nil || len(pt.Tail) == 0 {
			continue
		}
		if b.Len() == 0 {
			b.WriteString("Tail attribution — critical path per tail sample\n")
		}
		for _, ts := range pt.Tail {
			fmt.Fprintf(&b, "  %-6s %5dB  %-5s %9.3fus:", pt.Driver, pt.Payload, ts.Rank,
				float64(ts.RTTNs)/1000)
			for _, l := range ts.Layers {
				fmt.Fprintf(&b, "  %s %.1f%%", l.Layer, 100*l.Share)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// attributePoint finds the point's tail-ranked samples, replays them
// via capture, and converts each critical path into a TailSample.
func attributePoint(pt *PointResult, capture func([]int) ([]fpgavirtio.CapturedPath, error)) error {
	if pt == nil || len(pt.cleanNs) == 0 {
		return nil
	}
	n := len(pt.cleanNs)
	// Sort clean-sample indices by RTT (ties by loop order, so the
	// chosen sample is deterministic).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if pt.cleanNs[order[a]] != pt.cleanNs[order[b]] {
			return pt.cleanNs[order[a]] < pt.cleanNs[order[b]]
		}
		return order[a] < order[b]
	})
	// Same nearest-rank arithmetic (and float-epsilon guard) as
	// perf.Series.Percentile, so the replayed sample is the one the
	// artifact's percentile row reports.
	pick := func(q float64) int {
		if q < 0 {
			return order[n-1]
		}
		rank := int(math.Ceil(q/100*float64(n) - 1e-9))
		if rank < 1 {
			rank = 1
		}
		if rank > n {
			rank = n
		}
		return order[rank-1]
	}

	clean := make([]int, len(tailRanks))
	targets := make([]int, 0, len(tailRanks))
	for i, r := range tailRanks {
		clean[i] = pick(r.q)
		targets = append(targets, pt.cleanLoops[clean[i]])
	}
	paths, err := capture(targets)
	if err != nil {
		return fmt.Errorf("tail replay %s/%dB: %w", pt.Driver, pt.Payload, err)
	}
	byLoop := make(map[int]fpgavirtio.CapturedPath, len(paths))
	for _, cp := range paths {
		byLoop[cp.Index] = cp
	}

	pt.Tail = pt.Tail[:0]
	for i, r := range tailRanks {
		loop := pt.cleanLoops[clean[i]]
		cp, ok := byLoop[loop]
		if !ok || cp.Path == nil {
			return fmt.Errorf("tail replay %s/%dB: no capture for index %d", pt.Driver, pt.Payload, loop)
		}
		ts := telemetry.TailSample{
			Rank:  r.name,
			Index: loop,
			RTTNs: pt.cleanNs[clean[i]],
		}
		// Per-layer ns via telescoping cumulative rounding: each
		// boundary is truncated to whole ns and layers take the
		// differences, so the layer values sum to the truncated total
		// EXACTLY (a per-layer truncation could drift by one ns per
		// layer and fail the artifact validator).
		var accPs, prevNs int64
		for _, st := range cp.Path.Layers {
			accPs += int64(st.Total)
			curNs := accPs / int64(sim.Nanosecond)
			ts.Layers = append(ts.Layers, telemetry.TailLayer{
				Layer: st.Layer,
				Ns:    curNs - prevNs,
				Share: st.Share,
			})
			prevNs = curNs
		}
		ts.SumNs = prevNs
		pt.Tail = append(pt.Tail, ts)
	}
	return nil
}
