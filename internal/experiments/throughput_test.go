package experiments

import (
	"bytes"
	"strings"
	"testing"

	"fpgavirtio/internal/telemetry"
)

func smallThroughput(t *testing.T) *ThroughputMode {
	t.Helper()
	m, err := RunThroughputMode(ThroughputParams{
		Params: Params{Seed: 7, Packets: 300, Payloads: []int{64, 256}},
		Window: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// cachedThroughput shares one grid run across the tests below — the
// run is deterministic, so re-running it per test only costs time.
var cachedThroughput *ThroughputMode

func getThroughput(t *testing.T) *ThroughputMode {
	t.Helper()
	if cachedThroughput == nil {
		cachedThroughput = smallThroughput(t)
	}
	return cachedThroughput
}

// The acceptance inequality at the library level: for every payload,
// the suppressed VirtIO arm must match or beat the per-packet-kick arm
// on PPS while issuing strictly fewer doorbells.
func TestThroughputSuppressionBeatsForceKicks(t *testing.T) {
	m := getThroughput(t)
	byPayload := map[int]map[bool]ThroughputArm{}
	for _, a := range m.Arms {
		if a.Driver != "virtio" {
			continue
		}
		if byPayload[a.Payload] == nil {
			byPayload[a.Payload] = map[bool]ThroughputArm{}
		}
		byPayload[a.Payload][a.Suppressed] = a
	}
	if len(byPayload) != 2 {
		t.Fatalf("got virtio arms for %d payloads, want 2", len(byPayload))
	}
	for payload, arms := range byPayload {
		sup, ok1 := arms[true]
		uns, ok2 := arms[false]
		if !ok1 || !ok2 {
			t.Fatalf("payload %d: missing a virtio arm (suppressed=%v unsuppressed=%v)", payload, ok1, ok2)
		}
		if sup.Result.PPS < uns.Result.PPS {
			t.Errorf("payload %d: suppressed %.0f PPS < unsuppressed %.0f", payload, sup.Result.PPS, uns.Result.PPS)
		}
		if sup.Result.Doorbells >= uns.Result.Doorbells {
			t.Errorf("payload %d: suppression left doorbells at %d >= %d", payload, sup.Result.Doorbells, uns.Result.Doorbells)
		}
	}
}

// The grid's artifact must pass the exporter's own schema validation
// and carry both the throughput arms and the window=1 latency points.
func TestThroughputArtifactValidates(t *testing.T) {
	m := getThroughput(t)
	a := BuildThroughputArtifact(m)
	if err := a.Validate(); err != nil {
		t.Fatalf("artifact failed validation: %v", err)
	}
	if a.Mode != "throughput" {
		t.Errorf("artifact mode = %q, want throughput", a.Mode)
	}
	// 2 payloads x (virtio suppressed + virtio kicks + xdma) arms.
	if len(a.Throughput) != 6 {
		t.Errorf("artifact has %d throughput points, want 6", len(a.Throughput))
	}
	// 2 payloads x (virtio + xdma) window=1 latency points.
	if len(a.Points) != 4 {
		t.Errorf("artifact has %d latency points, want 4", len(a.Points))
	}
	for _, p := range a.Throughput {
		if p.Suppressed && p.Driver == "virtio" && p.Window != 16 {
			t.Errorf("suppressed arm window = %d, want 16", p.Window)
		}
	}

	// Round-trip the artifact through the JSON writer and the validating
	// reader, then the CSV writer — the full fvbench export path.
	var jsonBuf bytes.Buffer
	if err := telemetry.WriteBenchJSON(&jsonBuf, a); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateBenchJSON(jsonBuf.Bytes()); err != nil {
		t.Fatalf("written artifact failed re-validation: %v", err)
	}
	var csvBuf bytes.Buffer
	if err := telemetry.WriteThroughputCSV(&csvBuf, a); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 1+len(a.Throughput) {
		t.Errorf("CSV has %d lines, want header + %d rows", len(lines), len(a.Throughput))
	}
	if !strings.HasPrefix(lines[0], "driver,datapath,payload_bytes,") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

// The window=1 degenerate case must produce per-packet latency samples
// with the latency mode's statistical shape: nonzero percentiles and
// the VirtIO <= XDMA mean ordering.
func TestThroughputWindowOneLatencyShape(t *testing.T) {
	m := getThroughput(t)
	if len(m.Latency) != 4 {
		t.Fatalf("got %d latency points, want 4", len(m.Latency))
	}
	byDriver := map[string][]*PointResult{}
	for _, pt := range m.Latency {
		if pt.Total.Count() == 0 {
			t.Fatalf("%s/%d: no samples", pt.Driver, pt.Payload)
		}
		if pt.Total.Percentile(99) <= 0 {
			t.Errorf("%s/%d: p99 = %v", pt.Driver, pt.Payload, pt.Total.Percentile(99))
		}
		byDriver[pt.Driver] = append(byDriver[pt.Driver], pt)
	}
	for i, v := range byDriver["virtio"] {
		x := byDriver["xdma"][i]
		if v.Total.Mean() > x.Total.Mean() {
			t.Errorf("payload %d: window=1 VirtIO mean %v > XDMA %v", v.Payload, v.Total.Mean(), x.Total.Mean())
		}
	}
}

func TestThroughputRenderMentionsArms(t *testing.T) {
	out := getThroughput(t).Render()
	for _, want := range []string{"virtio", "xdma", "pps", "window"} {
		if !strings.Contains(strings.ToLower(out), want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}
