package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-module call graph the interprocedural
// analyzers (detsafe, and the cross-function modes of kickflush and
// lockorder) run on. Nodes are functions; edges are call sites. Static
// calls resolve directly through the type checker; interface method
// calls fan out conservatively to every module method whose receiver
// type implements the interface; calls the resolver cannot see through
// (func values, method values, reflection) land on a single shared
// "unknown callee" node so the analyses stay sound about what they do
// not know.
//
// All construction and traversal orders are deterministic: nodes sort
// by key, call sites keep source order, and breadth-first reachability
// processes roots and edges in those orders. Diagnostics derived from
// the graph therefore print identically run to run — itself a checked
// property (TestCallGraphDeterministic).

// FuncNode is one function in the module call graph. External
// (non-module) callees get a node with a nil Decl so denylist checks
// can match them by Key; the shared unknown node has a nil Obj too.
type FuncNode struct {
	// Key is the stable human-readable identity used for sorting,
	// printing and witness paths: "pkg/path.Func" for package-level
	// functions, "(pkg/path.Recv).Method" for methods, "time.Now" for
	// stdlib callees, "<unknown>" for the unresolved-callee node.
	Key string
	// Obj is the type-checker object; nil only for the unknown node.
	Obj *types.Func
	// Pkg is the defining module package; nil for external callees.
	Pkg *Package
	// Decl is the function's syntax; nil for external and unknown.
	Decl *ast.FuncDecl
	// Calls lists outgoing call sites in source order. Interface
	// dispatch contributes one site per candidate implementation.
	Calls []*CallSite
	// Callers lists incoming sites; order follows graph construction
	// (caller key, then source order) and is deterministic.
	Callers []*CallSite
	// Root marks detsafe roots; set by the analyzer, not the builder.
	Root bool
}

// External reports whether the node is a callee outside the module
// (standard library) rather than a module function or the unknown node.
func (n *FuncNode) External() bool { return n.Decl == nil && n.Obj != nil }

// CallSite is one resolved edge: caller reaches callee at Pos.
type CallSite struct {
	Caller *FuncNode
	Callee *FuncNode
	// Pos is the position of the call expression (CallExpr.Pos), the
	// same position Linearize attaches to call ops, so flow walks can
	// join graph edges by position.
	Pos token.Pos
	// Iface is non-nil when the edge models interface dispatch; it
	// names the interface method the call was written against.
	Iface *types.Func
}

// CallGraph is the module-wide function graph.
type CallGraph struct {
	Pkgs []*Package
	Fset *token.FileSet
	// Unknown is the shared conservative node for unresolvable callees.
	Unknown *FuncNode

	nodes map[*types.Func]*FuncNode
	// sites indexes call sites by call-expression position. Interface
	// dispatch and pathological nestings can put several sites at one
	// position, hence the slice.
	sites map[token.Pos][]*CallSite
	// fileToPkg maps source filenames to their module package path, for
	// scope-filtering module diagnostics.
	fileToPkg map[string]string

	sorted []*FuncNode // module function nodes, sorted by Key
}

// funcKey renders the stable identity of a function object.
func funcKey(obj *types.Func) string {
	sig, _ := obj.Type().(*types.Signature)
	pkgPath := ""
	if obj.Pkg() != nil {
		pkgPath = obj.Pkg().Path()
	}
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		name := types.TypeString(recv, func(p *types.Package) string { return "" })
		return fmt.Sprintf("(%s.%s).%s", pkgPath, name, obj.Name())
	}
	if pkgPath == "" {
		return obj.Name()
	}
	return pkgPath + "." + obj.Name()
}

// BuildCallGraph constructs the call graph over the given type-checked
// packages. All packages must share one token.FileSet (one Loader).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Pkgs:      pkgs,
		nodes:     make(map[*types.Func]*FuncNode),
		sites:     make(map[token.Pos][]*CallSite),
		fileToPkg: make(map[string]string),
	}
	if len(pkgs) > 0 {
		g.Fset = pkgs[0].Fset
	}
	g.Unknown = &FuncNode{Key: "<unknown>"}

	// Pass 1: a node per declared function, plus the file→package map.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			g.fileToPkg[pkg.Fset.Position(f.Pos()).Filename] = pkg.Path
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				g.nodes[obj] = &FuncNode{Key: funcKey(obj), Obj: obj, Pkg: pkg, Decl: fd}
			}
		}
	}

	// Pass 2: resolve every call expression in every declared body.
	for _, n := range g.moduleNodesUnsorted() {
		if n.Decl.Body == nil {
			continue
		}
		caller := n
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			g.addEdges(caller, call)
			return true
		})
	}

	// Callers fill in deterministically: iterate module nodes sorted by
	// key, sites in source order.
	for _, n := range g.Functions() {
		for _, cs := range n.Calls {
			cs.Callee.Callers = append(cs.Callee.Callers, cs)
		}
	}
	return g
}

func (g *CallGraph) moduleNodesUnsorted() []*FuncNode {
	out := make([]*FuncNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		if n.Decl != nil {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Functions returns every module function node, sorted by Key.
func (g *CallGraph) Functions() []*FuncNode {
	if g.sorted == nil {
		g.sorted = g.moduleNodesUnsorted()
	}
	return g.sorted
}

// NodeOf returns the graph node of a declared module function.
func (g *CallGraph) NodeOf(obj *types.Func) *FuncNode { return g.nodes[obj] }

// SitesAt returns the call sites whose call expression starts at pos.
func (g *CallGraph) SitesAt(pos token.Pos) []*CallSite { return g.sites[pos] }

// PkgPathOf maps a diagnostic position to its module package path
// (empty for files outside the loaded set, e.g. fixtures).
func (g *CallGraph) PkgPathOf(pos token.Position) string { return g.fileToPkg[pos.Filename] }

// addEdges resolves one call expression into zero or more edges.
func (g *CallGraph) addEdges(caller *FuncNode, call *ast.CallExpr) {
	info := caller.Pkg.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			g.link(caller, obj, call, nil)
			return
		case *types.TypeName, *types.Builtin, nil:
			return // conversion or builtin: no call edge
		default:
			// Func value in a variable: splice only through the unknown
			// node. Local closures are handled by Linearize in the flow
			// analyses; for reachability they are part of this body.
			g.linkUnknown(caller, call)
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			callee, _ := sel.Obj().(*types.Func)
			if callee == nil {
				g.linkUnknown(caller, call) // func-typed field
				return
			}
			if isInterfaceMethod(callee) {
				g.linkInterface(caller, callee, call)
				return
			}
			g.link(caller, callee, call, nil)
			return
		}
		// Qualified identifier: pkg.Fn, or a conversion like sim.Duration(x).
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			g.link(caller, obj, call, nil)
		case *types.TypeName, *types.Builtin, nil:
		default:
			g.linkUnknown(caller, call)
		}
		return
	case *ast.FuncLit:
		return // immediately-invoked literal: body is part of this decl
	default:
		// Conversions to named function types arrive as *ast.ArrayType
		// etc.; anything callable and opaque is unknown.
		if _, ok := info.Types[call.Fun]; ok && info.Types[call.Fun].IsType() {
			return
		}
		g.linkUnknown(caller, call)
	}
}

func isInterfaceMethod(obj *types.Func) bool {
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// link adds one edge from caller to the node of obj, creating an
// external node when obj is declared outside the module.
func (g *CallGraph) link(caller *FuncNode, obj *types.Func, call *ast.CallExpr, iface *types.Func) {
	callee, ok := g.nodes[obj]
	if !ok {
		callee = &FuncNode{Key: funcKey(obj), Obj: obj}
		g.nodes[obj] = callee
	}
	cs := &CallSite{Caller: caller, Callee: callee, Pos: call.Pos(), Iface: iface}
	caller.Calls = append(caller.Calls, cs)
	g.sites[call.Pos()] = append(g.sites[call.Pos()], cs)
}

func (g *CallGraph) linkUnknown(caller *FuncNode, call *ast.CallExpr) {
	cs := &CallSite{Caller: caller, Callee: g.Unknown, Pos: call.Pos()}
	caller.Calls = append(caller.Calls, cs)
	g.sites[call.Pos()] = append(g.sites[call.Pos()], cs)
}

// linkInterface fans an interface method call out to every module
// method that could satisfy the dispatch: same name, receiver type
// (value or pointer) implementing the interface. The interface method
// itself is linked too, so denylists can match calls written against
// stdlib interfaces, and so an implementation-free interface still
// records that something opaque was called.
func (g *CallGraph) linkInterface(caller *FuncNode, ifaceMethod *types.Func, call *ast.CallExpr) {
	sig := ifaceMethod.Type().(*types.Signature)
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	g.link(caller, ifaceMethod, call, nil)
	if iface == nil {
		return
	}
	var impls []*types.Func
	for _, pkg := range g.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			var recv types.Type = named
			if !types.Implements(recv, iface) {
				recv = types.NewPointer(named)
				if !types.Implements(recv, iface) {
					continue
				}
			}
			m, _, _ := types.LookupFieldOrMethod(recv, true, ifaceMethod.Pkg(), ifaceMethod.Name())
			if fn, ok := m.(*types.Func); ok {
				if _, declared := g.nodes[fn]; declared {
					impls = append(impls, fn)
				}
			}
		}
	}
	sort.Slice(impls, func(i, j int) bool { return funcKey(impls[i]) < funcKey(impls[j]) })
	for _, fn := range impls {
		g.link(caller, fn, call, ifaceMethod)
	}
}

// Reachable computes the functions reachable from roots by following
// call edges breadth-first. The returned map gives, for every reached
// node, the call site it was first reached through (nil for roots
// themselves) — enough to reconstruct a shortest witness path.
func (g *CallGraph) Reachable(roots []*FuncNode) map[*FuncNode]*CallSite {
	sortedRoots := append([]*FuncNode(nil), roots...)
	sort.Slice(sortedRoots, func(i, j int) bool { return sortedRoots[i].Key < sortedRoots[j].Key })
	reached := make(map[*FuncNode]*CallSite)
	var queue []*FuncNode
	for _, r := range sortedRoots {
		if _, ok := reached[r]; !ok {
			reached[r] = nil
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, cs := range n.Calls {
			if _, ok := reached[cs.Callee]; ok {
				continue
			}
			reached[cs.Callee] = cs
			if cs.Callee.Decl != nil {
				queue = append(queue, cs.Callee)
			}
		}
	}
	return reached
}

// WitnessPath reconstructs the root→target call chain recorded by
// Reachable as printable lines ("Key (file:line)" per hop).
func (g *CallGraph) WitnessPath(reached map[*FuncNode]*CallSite, target *FuncNode) []string {
	var hops []*FuncNode
	var sites []*CallSite
	for n := target; ; {
		hops = append(hops, n)
		cs, ok := reached[n]
		if !ok || cs == nil {
			break
		}
		sites = append(sites, cs)
		n = cs.Caller
		if len(hops) > 64 { // cycle guard; cannot happen with BFS parents
			break
		}
	}
	out := make([]string, 0, len(hops))
	for i := len(hops) - 1; i >= 0; i-- {
		n := hops[i]
		if i == len(hops)-1 {
			out = append(out, n.Key)
			continue
		}
		cs := sites[i]
		pos := g.Fset.Position(cs.Pos)
		out = append(out, fmt.Sprintf("→ %s (called at %s:%d)", n.Key, pos.Filename, pos.Line))
	}
	return out
}

// Dump renders the graph deterministically for -graph and the
// construction-determinism test: one line per module function, callee
// keys in source order, interface fan-out edges marked.
func (g *CallGraph) Dump() string {
	var b strings.Builder
	for _, n := range g.Functions() {
		fmt.Fprintf(&b, "%s\n", n.Key)
		for _, cs := range n.Calls {
			marker := ""
			if cs.Iface != nil {
				marker = fmt.Sprintf(" [via %s]", funcKey(cs.Iface))
			}
			pos := g.Fset.Position(cs.Pos)
			fmt.Fprintf(&b, "  → %s%s (%s:%d)\n", cs.Callee.Key, marker, pos.Filename, pos.Line)
		}
	}
	return b.String()
}
