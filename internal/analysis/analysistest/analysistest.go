// Package analysistest runs one analyzer over a fixture package and
// compares its diagnostics against `// want "substr"` expectations in
// the fixture source — the same contract as golang.org/x/tools'
// analysistest, reimplemented on the project's stdlib-only framework.
//
// Expectation syntax, attached to the offending line:
//
//	doBad() // want "part of the diagnostic message"
//	doBad2() // want "first" "second"
//
// Every diagnostic must be matched by a want on its line and every
// want must match a diagnostic; `//fvlint:ignore` directives are
// honoured first, so a fixture line carrying a justified directive and
// no want proves suppression works.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"fpgavirtio/internal/analysis"
)

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads the fixture package in dir (relative to the calling test's
// package directory, conventionally "testdata/<name>") and checks the
// analyzer's diagnostics against the fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	root, modPath, err := analysis.FindModule(abs)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader := analysis.NewLoader(modPath, root)
	// The fixture belongs to the module for import resolution but gets
	// a synthetic path so package-scope rules do not skip it.
	pkg, err := loader.LoadDir(abs, "fvlint.fixture/"+filepath.Base(abs))
	if err != nil {
		t.Fatalf("analysistest: loading fixture %s: %v", dir, err)
	}
	// Fixtures always run the analyzer: the copy drops package scoping.
	unscoped := &analysis.Analyzer{
		Name:      a.Name,
		Doc:       a.Doc,
		Run:       a.Run,
		RunModule: a.RunModule,
	}
	var diags []analysis.Diagnostic
	if a.RunModule != nil {
		// Module analyzers see the fixture as a one-package module: its
		// call graph is still enough to exercise every interprocedural
		// shape (helpers, interface dispatch, multi-hop chains).
		graph := analysis.BuildCallGraph([]*analysis.Package{pkg})
		diags = analysis.RunModuleAnalyzers(graph, []*analysis.Analyzer{unscoped})
	} else {
		diags = analysis.RunAnalyzers(pkg, []*analysis.Analyzer{unscoped})
	}

	wants := collectWants(t, pkg)
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		key := posKey(d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.used && strings.Contains(d.Message, w.substr) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: expected diagnostic containing %q, got none", key, w.substr)
			}
		}
	}
}

type want struct {
	substr string
	used   bool
}

func posKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", filepath.Base(file), line)
}

func collectWants(t *testing.T, pkg *analysis.Package) map[string][]*want {
	t.Helper()
	out := make(map[string][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				key := posKey(pos.Filename, pos.Line)
				for _, m := range ms {
					out[key] = append(out[key], &want{substr: strings.ReplaceAll(m[1], `\"`, `"`)})
				}
			}
		}
	}
	return out
}
