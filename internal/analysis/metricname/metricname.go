// Package metricname keeps the telemetry namespace canonical: every
// Registry instrument (Counter / Gauge / Histogram / HDR) must be named
// by a constant from internal/telemetry/names.go or built by one of its
// Metric* helper functions — including the tail.* and recorder.*
// families the tail-attribution work added — every span must open under
// one of the
// telemetry Layer* constants, and a span opened in a function must
// have its End reachable before every return (or be closed by a
// defer). Ad-hoc name literals drift from the replay baselines and
// dashboards; a leaked span corrupts per-layer latency attribution for
// the rest of the run.
package metricname

import (
	"go/ast"
	"go/types"
	"strings"

	"fpgavirtio/internal/analysis"
)

const telemetryPkg = "fpgavirtio/internal/telemetry"

// Analyzer is the metricname rule.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "registry instruments must be named via internal/telemetry constants " +
		"or Metric* helpers; spans must use telemetry Layer* constants and reach End on all paths",
	Skip: []string{
		// telemetry owns the name table; its own tests exercise ad-hoc
		// names on purpose. sim defines the raw span plumbing.
		telemetryPkg,
		"fpgavirtio/internal/sim",
		// The analysis framework's own packages mention instrument
		// method names in classifier tables, not as real calls.
		"fpgavirtio/internal/analysis",
	},
	Run: run,
}

var instrumentMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true, "HDR": true}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkNames(pass, fd.Body)
			checkSpanEnds(pass, fd.Body)
		}
	}
}

// checkNames validates instrument-name and span-layer arguments.
func checkNames(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch {
		case instrumentMethods[sel.Sel.Name] && len(call.Args) >= 1:
			arg := call.Args[0]
			if !isStringExpr(pass, arg) {
				return true // e.g. histogram rendering h.Histogram(bins, width)
			}
			if !isTelemetryConst(pass, arg) && !isMetricHelperCall(pass, arg) {
				pass.Reportf(arg.Pos(),
					"metric name must be a telemetry constant or Metric* helper from %s, not an ad-hoc expression", telemetryPkg)
			}
		case sel.Sel.Name == "BeginSpan" && len(call.Args) >= 2:
			if !isLayerConst(pass, call.Args[0]) {
				pass.Reportf(call.Args[0].Pos(),
					"span layer must be one of the telemetry Layer* constants")
			}
		}
		return true
	})
}

func isStringExpr(pass *analysis.Pass, e ast.Expr) bool {
	if pass.Info == nil {
		return true
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return true
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// telemetryObj resolves e to the object it names, if that object is
// declared in the telemetry package.
func telemetryObj(pass *analysis.Pass, e ast.Expr) types.Object {
	if pass.Info == nil {
		return nil
	}
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != telemetryPkg {
		return nil
	}
	return obj
}

func isTelemetryConst(pass *analysis.Pass, e ast.Expr) bool {
	obj := telemetryObj(pass, e)
	if obj == nil {
		return false
	}
	_, ok := obj.(*types.Const)
	return ok
}

func isLayerConst(pass *analysis.Pass, e ast.Expr) bool {
	obj := telemetryObj(pass, e)
	if obj == nil {
		return false
	}
	_, isConst := obj.(*types.Const)
	return isConst && strings.HasPrefix(obj.Name(), "Layer")
}

func isMetricHelperCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := telemetryObj(pass, call.Fun)
	if obj == nil {
		return false
	}
	_, isFunc := obj.(*types.Func)
	return isFunc && strings.HasPrefix(obj.Name(), "Metric")
}

// checkSpanEnds walks the body in source order tracking spans opened by
// `sp := x.BeginSpan(...)`. A span is closed by sp.End() or a defer
// that (transitively, for deferred closures) calls sp.End(). Any
// return reached while a span is open leaks it.
func checkSpanEnds(pass *analysis.Pass, body *ast.BlockStmt) {
	open := map[*ast.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure is its own frame: spans opened there must close
			// there. checkSpanEnds is called per FuncDecl only; closures
			// get a nested walk and are excluded from the outer one.
			checkSpanEnds(pass, n.Body)
			return false
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Obj == nil || i >= len(n.Rhs) {
					continue
				}
				if call, ok := n.Rhs[i].(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "BeginSpan" {
						open[id.Obj] = true
					}
				}
			}
		case *ast.DeferStmt:
			closeEnds(open, n.Call)
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok {
						closeEnds(open, c)
					}
					return true
				})
			}
			return false
		case *ast.CallExpr:
			closeEnds(open, n)
		case *ast.ReturnStmt:
			for obj := range open {
				if open[obj] {
					pass.Reportf(n.Pos(),
						"return may leak span %q: End() not called on this path (and no defer closes it)", obj.Name)
					open[obj] = false // one report per span per function
				}
			}
		}
		return true
	})
}

// closeEnds marks tracked spans closed when call is sp.End().
func closeEnds(open map[*ast.Object]bool, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return
	}
	if id, ok := sel.X.(*ast.Ident); ok && id.Obj != nil {
		if _, tracked := open[id.Obj]; tracked {
			open[id.Obj] = false
		}
	}
}
