package metricname_test

import (
	"testing"

	"fpgavirtio/internal/analysis/analysistest"
	"fpgavirtio/internal/analysis/metricname"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, metricname.Analyzer, "testdata/names")
}
