// Package fixture exercises the metricname analyzer: ad-hoc metric
// name literals, non-canonical span layers, and leaked spans.
package fixture

import (
	"fpgavirtio/internal/telemetry"
)

// Span mimes sim.SpanRef.
type Span struct{}

func (Span) End() {}

// Tracer mimes the simulator's span surface.
type Tracer struct{}

func (Tracer) BeginSpan(layer, name string) Span { return Span{} }

// Plot has a non-string Histogram method, like the benchmark
// reporter's renderer: not a registry instrument, not flagged.
type Plot struct{}

func (Plot) Histogram(bins, width int) string { return "" }

func goodConstName(reg *telemetry.Registry) {
	reg.Counter(telemetry.MetricStreamPackets).Add(1)
	reg.Gauge(telemetry.MetricStreamWindow).Set(3)
}

func goodHelperName(reg *telemetry.Registry) {
	reg.Counter(telemetry.MetricXDMATransfers("h2c")).Add(1)
}

func goodHDRName(reg *telemetry.Registry) {
	// The tail.* and recorder.* families ride the same rule as every
	// other instrument, including the HDR get-or-create path.
	reg.HDR(telemetry.MetricTailRTTTotalNs).Observe(1)
	reg.Counter(telemetry.MetricRecorderDumps).Add(1)
}

func badLiteralName(reg *telemetry.Registry) {
	reg.Counter("stream.packets").Add(1) // want "metric name must be a telemetry constant or Metric"
}

func badHDRLiteralName(reg *telemetry.Registry) {
	reg.HDR("tail.rtt.total.ns").Observe(1) // want "metric name must be a telemetry constant or Metric"
}

func badRecorderLiteralName(reg *telemetry.Registry) {
	reg.Counter("recorder.dumps").Add(1) // want "metric name must be a telemetry constant or Metric"
}

func badBuiltName(reg *telemetry.Registry, dir string) {
	reg.Counter("driver.xdma." + dir + ".bytes").Add(1) // want "metric name must be a telemetry constant or Metric"
}

func notAnInstrument(p Plot) string {
	return p.Histogram(16, 50)
}

func goodLayer(tr Tracer) {
	sp := tr.BeginSpan(telemetry.LayerDriver, "xmit")
	sp.End()
}

func badLayer(tr Tracer) {
	sp := tr.BeginSpan("driver", "xmit") // want "span layer must be one of the telemetry Layer"
	sp.End()
}

func badLeak(tr Tracer, fail bool) error {
	sp := tr.BeginSpan(telemetry.LayerDriver, "xmit")
	if fail {
		return errFailed // want "return may leak span \"sp\""
	}
	sp.End()
	return nil
}

func goodDeferClose(tr Tracer) error {
	sp := tr.BeginSpan(telemetry.LayerDriver, "xmit")
	defer sp.End()
	if sp == (Span{}) {
		return errFailed
	}
	return nil
}

func goodDeferClosure(tr Tracer) error {
	sp := tr.BeginSpan(telemetry.LayerDriver, "xmit")
	defer func() { sp.End() }()
	return nil
}

func suppressedName(reg *telemetry.Registry) {
	//fvlint:ignore metricname fixture demonstrates justified suppression
	reg.Counter("adhoc.name").Add(1)
}

type fixtureErr string

func (e fixtureErr) Error() string { return string(e) }

var errFailed = fixtureErr("failed")
