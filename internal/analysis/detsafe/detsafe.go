// Package detsafe makes byte-identical deterministic replay — the
// invariant every replay test, artifact golden and the parallel sweep
// engine rest on — a statically checked property. Functions reachable
// from the simulation/artifact/metrics-export surface must not:
//
//   - read the wall clock (time.Now / time.Since / time.Until): the
//     sim clock (sim.Time) is the only clock simulated code may see;
//   - draw from unseeded math/rand package-level state: randomness
//     must come from the seeded, replayable sim RNG (or an explicit
//     rand.New(rand.NewSource(seed)));
//   - observe goroutine identity (runtime.NumGoroutine /
//     runtime.Stack): scheduling is not part of the replayed state;
//   - iterate a map in emission order — the exact PR 6 exporter bug
//     class. A `range` over a map whose body writes ordered output
//     (fmt.Fprint*, Write/WriteString/Encode, or a helper that
//     transitively does) is flagged, as is a map range that collects
//     into a slice with no subsequent sort in the same function.
//     The collect-keys-then-sort idiom stays silent.
//
// Roots of the checked surface are found by shape — experiment
// entrypoints (`Run*` in internal/experiments), telemetry exporters
// (`Write*`/`Export*`/`ChromeTraceEvents` in internal/telemetry), and
// session methods (receiver type ending in "Session") — and by the
// explicit `//fvlint:detsafe-root` annotation on any function
// declaration. Reachability is computed over the module call graph,
// so a wall-clock read three helpers deep is still found; fvlint -why
// prints the root→function call path that witnesses each finding.
// False positives carry `//fvlint:ignore detsafe <reason>` like any
// other rule.
package detsafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fpgavirtio/internal/analysis"
)

// Analyzer is the detsafe rule.
var Analyzer = &analysis.Analyzer{
	Name: "detsafe",
	Doc: "code reachable from the sim/artifact/export surface must not read wall " +
		"clocks, unseeded math/rand, goroutine identity, or emit map-ordered output",
	RunModule: runModule,
}

// rootDirective marks a function as a detsafe root explicitly.
const rootDirective = "//fvlint:detsafe-root"

// wallClockFuncs are denied external callees that read host time.
var wallClockFuncs = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
	"time.Until": true,
}

// goroutineFuncs observe scheduler state that replay does not pin.
var goroutineFuncs = map[string]bool{
	"runtime.NumGoroutine": true,
	"runtime.Stack":        true,
}

// randConstructors are the math/rand entry points that build an
// explicitly seeded generator; everything else package-level draws
// from the shared unseeded source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// emitMethods are ordered-output method names: writing them inside a
// map range leaks iteration order into the output stream.
var emitMethods = map[string]bool{"Write": true, "WriteString": true, "Encode": true}

func runModule(mp *analysis.ModulePass) {
	g := mp.Graph

	// Per-function emission/sort summaries, to a fixpoint, so a helper
	// that prints (or sorts) is recognized behind any number of calls.
	sums := computeSummaries(g)

	roots := findRoots(g)
	if len(roots) == 0 {
		return
	}
	reached := g.Reachable(roots)

	for _, n := range g.Functions() {
		if _, ok := reached[n]; !ok {
			continue
		}
		checkCalls(mp, g, reached, n)
		checkMapRanges(mp, g, reached, sums, n)
	}
}

// findRoots collects the deterministic-surface entry points.
func findRoots(g *analysis.CallGraph) []*analysis.FuncNode {
	var roots []*analysis.FuncNode
	for _, n := range g.Functions() {
		if isRoot(n) {
			n.Root = true
			roots = append(roots, n)
		}
	}
	return roots
}

func isRoot(n *analysis.FuncNode) bool {
	if hasRootDirective(n.Decl) {
		return true
	}
	name := n.Decl.Name.Name
	if !ast.IsExported(name) {
		return false
	}
	if recv := receiverTypeName(n.Obj); recv != "" {
		// Session methods are the app-facing measurement surface.
		return strings.HasSuffix(recv, "Session")
	}
	switch {
	case strings.HasSuffix(n.Pkg.Path, "internal/experiments"):
		return strings.HasPrefix(name, "Run")
	case strings.HasSuffix(n.Pkg.Path, "internal/telemetry"):
		return strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Export") ||
			name == "ChromeTraceEvents"
	}
	return false
}

func hasRootDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, rootDirective) {
			return true
		}
	}
	return false
}

func receiverTypeName(obj *types.Func) string {
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// checkCalls flags denied external callees reached from n's body.
func checkCalls(mp *analysis.ModulePass, g *analysis.CallGraph, reached map[*analysis.FuncNode]*analysis.CallSite, n *analysis.FuncNode) {
	for _, cs := range n.Calls {
		callee := cs.Callee
		if !callee.External() {
			continue
		}
		var what string
		switch {
		case wallClockFuncs[callee.Key]:
			what = "reads the wall clock"
		case goroutineFuncs[callee.Key]:
			what = "observes goroutine/scheduler state"
		case isUnseededRand(callee.Obj):
			what = "draws from unseeded math/rand global state"
		default:
			continue
		}
		witness := append(g.WitnessPath(reached, n), fmt.Sprintf("→ calls %s", callee.Key))
		mp.ReportWitness(cs.Pos, witness,
			"%s %s: not allowed on the deterministic-replay surface; thread the sim clock/seeded RNG instead",
			callee.Key, what)
	}
}

// isUnseededRand reports whether obj is a math/rand (or v2)
// package-level function drawing from the shared source. Methods on an
// explicitly constructed *rand.Rand are fine.
func isUnseededRand(obj *types.Func) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // method on a seeded *rand.Rand / Source
	}
	return !randConstructors[obj.Name()]
}

// emitSummary records whether a function transitively writes ordered
// output or performs a sort.
type emitSummary struct {
	emits bool
	sorts bool
}

func computeSummaries(g *analysis.CallGraph) map[*analysis.FuncNode]*emitSummary {
	sums := make(map[*analysis.FuncNode]*emitSummary)
	for _, n := range g.Functions() {
		sums[n] = &emitSummary{}
	}
	g.Fixpoint(func(n *analysis.FuncNode) bool {
		s := sums[n]
		next := emitSummary{}
		if n.Decl.Body != nil {
			ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isDirectSink(n.Pkg, call) {
					next.emits = true
				}
				for _, cs := range g.SitesAt(call.Pos()) {
					if isSortCallee(cs.Callee) {
						next.sorts = true
					}
					if cal := sums[cs.Callee]; cal != nil {
						if cal.emits {
							next.emits = true
						}
						if cal.sorts {
							next.sorts = true
						}
					}
				}
				return true
			})
		}
		if next != *s {
			*s = next
			return true
		}
		return false
	})
	return sums
}

// isDirectSink reports whether call writes ordered output right here:
// an fmt print/fprint or an ordered-output method (Write/WriteString/
// Encode) on anything.
func isDirectSink(pkg *analysis.Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		name := obj.Name()
		return strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print")
	}
	if _, isMethod := pkg.Info.Selections[sel]; isMethod {
		return emitMethods[sel.Sel.Name]
	}
	return false
}

// isSortCallee reports whether the callee is a stdlib sorting routine.
func isSortCallee(n *analysis.FuncNode) bool {
	if !n.External() || n.Obj.Pkg() == nil {
		return false
	}
	p := n.Obj.Pkg().Path()
	if p != "sort" && p != "slices" {
		return false
	}
	return strings.Contains(n.Obj.Name(), "Sort") || p == "sort" // sort.Strings, sort.Ints, sort.Slice...
}

// checkMapRanges flags map iteration whose order can leak into
// artifacts, metrics emission, or any ordered output.
func checkMapRanges(mp *analysis.ModulePass, g *analysis.CallGraph, reached map[*analysis.FuncNode]*analysis.CallSite, sums map[*analysis.FuncNode]*emitSummary, n *analysis.FuncNode) {
	if n.Decl.Body == nil {
		return
	}
	pkg := n.Pkg
	sortPositions := collectSortPositions(g, n)
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		rs, ok := node.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pkg.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if sink := findSink(g, pkg, sums, rs.Body); sink != "" {
			witness := append(g.WitnessPath(reached, n), "→ ranges over a map, emitting per iteration")
			mp.ReportWitness(rs.For, witness,
				"map iteration order flows into ordered output (%s) — the PR 6 exporter bug class; collect keys, sort, then emit",
				sink)
			return true
		}
		if bodyAppends(rs.Body) && !sortAfter(sortPositions, rs.Body.End()) {
			witness := append(g.WitnessPath(reached, n), "→ ranges over a map into a slice, never sorted")
			mp.ReportWitness(rs.For, witness,
				"map iteration collects into a slice with no subsequent sort in this function; sort before the result reaches an artifact or output")
		}
		return true
	})
}

// findSink returns a description of the first ordered-output write in
// body ("" when none): a direct fmt/Write/Encode call or a call to a
// module function that transitively emits.
func findSink(g *analysis.CallGraph, pkg *analysis.Package, sums map[*analysis.FuncNode]*emitSummary, body *ast.BlockStmt) string {
	found := ""
	ast.Inspect(body, func(node ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isDirectSink(pkg, call) {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				found = sel.Sel.Name
			} else {
				found = "write"
			}
			return false
		}
		for _, cs := range g.SitesAt(call.Pos()) {
			if cal := sums[cs.Callee]; cal != nil && cal.emits {
				found = "call to " + cs.Callee.Key + ", which emits"
				return false
			}
		}
		return true
	})
	return found
}

// bodyAppends reports whether body grows a slice via append.
func bodyAppends(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// collectSortPositions gathers the positions of every sorting call
// (stdlib sort/slices or a module helper that transitively sorts) in
// the function body.
func collectSortPositions(g *analysis.CallGraph, n *analysis.FuncNode) []token.Pos {
	var out []token.Pos
	for _, cs := range n.Calls {
		if isSortCallee(cs.Callee) {
			out = append(out, cs.Pos)
		}
	}
	return out
}

// sortAfter reports whether any sort call sits after end.
func sortAfter(sorts []token.Pos, end token.Pos) bool {
	for _, p := range sorts {
		if p >= end {
			return true
		}
	}
	return false
}
