// Package fixture exercises the detsafe analyzer: wall clocks,
// unseeded randomness, goroutine identity and map-ordered emission on
// the deterministic-replay surface. Roots are marked with the
// //fvlint:detsafe-root directive or recognized by shape (Session
// methods); functions not reachable from any root are never flagged.
package fixture

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"time"
)

//fvlint:detsafe-root
func RunClock() int64 {
	return helperClock()
}

// helperClock hides the wall-clock read one call deep.
func helperClock() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

//fvlint:detsafe-root
func RunDice() int {
	return helperRand()
}

// helperRand draws from the shared unseeded source.
func helperRand() int {
	return rand.Intn(6) // want "draws from unseeded math/rand global state"
}

// helperSeeded builds an explicit generator: replayable, not flagged.
func helperSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

//fvlint:detsafe-root
func RunSeeded(seed int64) int {
	return helperSeeded(seed)
}

//fvlint:detsafe-root
func RunGoroutines() int {
	return runtime.NumGoroutine() // want "observes goroutine/scheduler state"
}

// unreachableClock reads the clock but no root reaches it: silent.
func unreachableClock() int64 {
	return time.Now().UnixNano()
}

//fvlint:detsafe-root
func RunEmit(w io.Writer, m map[string]int) {
	for k, v := range m { // want "map iteration order flows into ordered output"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// emitLine writes ordered output; its emit summary propagates up.
func emitLine(w io.Writer, k string, v int) {
	fmt.Fprintf(w, "%s=%d\n", k, v)
}

//fvlint:detsafe-root
func RunEmitViaHelper(w io.Writer, m map[string]int) {
	for k, v := range m { // want "map iteration order flows into ordered output"
		emitLine(w, k, v)
	}
}

//fvlint:detsafe-root
func RunCollect(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration collects into a slice with no subsequent sort"
		keys = append(keys, k)
	}
	return keys
}

// RunSortedCollect is the canonical clean idiom: collect keys, sort,
// then emit in sorted order.
//
//fvlint:detsafe-root
func RunSortedCollect(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// BenchSession methods are roots by shape: the receiver type name ends
// in "Session".
type BenchSession struct{}

func (BenchSession) Report() int64 {
	return stampNow()
}

func stampNow() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

//fvlint:detsafe-root
func RunSuppressed() int64 {
	//fvlint:ignore detsafe fixture demonstrates justified suppression
	return time.Now().UnixNano()
}
