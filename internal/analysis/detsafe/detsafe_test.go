package detsafe_test

import (
	"testing"

	"fpgavirtio/internal/analysis/analysistest"
	"fpgavirtio/internal/analysis/detsafe"
)

func TestDetsafe(t *testing.T) {
	analysistest.Run(t, detsafe.Analyzer, "testdata/det")
}
