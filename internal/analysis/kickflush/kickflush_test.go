package kickflush_test

import (
	"testing"

	"fpgavirtio/internal/analysis/analysistest"
	"fpgavirtio/internal/analysis/kickflush"
)

func TestKickFlush(t *testing.T) {
	analysistest.Run(t, kickflush.Analyzer, "testdata/kick")
}
