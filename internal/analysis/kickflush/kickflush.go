// Package kickflush generalizes the PR 2 deferred-kick deadlock fix
// into a rule: after queueing transmit work (SendTo / Xmit / AddChain),
// a function must not reach a blocking operation — a wait-queue,
// trigger or condition Wait, a blocking receive, a channel operation,
// or a select without default — before a doorbell flush (FlushTx /
// Kick / KickIfNeeded). Under a batched-doorbell policy (TxKickBatch)
// the queued packet may still be invisible to the device, so blocking
// on its completion deadlocks the session.
//
// The check is interprocedural: every function gets a summary —
// may it block before flushing? does it flush? does it leave an
// enqueue pending at return? — propagated to a fixpoint over the
// module call graph, so a blocking helper hidden one or more calls
// deep is seen from the frame that still owes the doorbell. Within
// each body the check linearizes ops in source order, doubling loop
// bodies so an enqueue late in a loop is seen by a blocking call early
// in the next iteration. Local closures are spliced into their call
// sites; goroutine bodies are checked independently. Diagnostics on
// hidden blockers carry the call-path witness fvlint -why prints.
package kickflush

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"fpgavirtio/internal/analysis"
)

// Analyzer is the kickflush rule.
var Analyzer = &analysis.Analyzer{
	Name: "kickflush",
	Doc: "no blocking operation may be reachable after queueing transmit work " +
		"until a doorbell flush (FlushTx/Kick/KickIfNeeded) has run, " +
		"including blocks hidden inside callees",
	Skip: []string{
		// The simulator defines the blocking primitives themselves.
		"fpgavirtio/internal/sim",
	},
	RunModule: runModule,
}

// enqueueMethods queue transmit work that a batched doorbell may leave
// invisible to the device.
var enqueueMethods = map[string]bool{"SendTo": true, "Xmit": true, "AddChain": true}

// flushMethods guarantee any owed doorbell was delivered (or its
// elision re-decided against current device hints).
var flushMethods = map[string]bool{"FlushTx": true, "Kick": true, "KickIfNeeded": true}

// blockMethods block until another process makes progress.
var blockMethods = map[string]bool{"Wait": true, "RecvFrom": true}

func classify(call *ast.CallExpr) (string, bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		switch {
		case enqueueMethods[name]:
			return "enqueue:" + name, false
		case flushMethods[name]:
			return "flush:" + name, false
		case blockMethods[name]:
			return name, true
		}
	}
	// Everything else is a potential module call: the walk resolves it
	// against the call graph by position and joins callee summaries.
	return "call", false
}

// summary is the interprocedural fact set of one function.
type summary struct {
	// blocksBeforeFlush: on the linearized path, a blocking op is
	// reachable before any doorbell flush — so calling this function
	// with an unflushed enqueue pending can deadlock.
	blocksBeforeFlush bool
	blockDetail       string
	blockPos          token.Pos
	// blockSite is the call site hiding the block when it lives in a
	// callee; nil when this function blocks directly.
	blockSite *analysis.CallSite
	// flushes: the function delivers a doorbell flush on the linearized
	// path, clearing any pending enqueue of its caller.
	flushes bool
	// pending names the enqueue method the function leaves unflushed at
	// return ("" when none), so callers inherit the owed doorbell.
	pending     string
	pendingSite *analysis.CallSite
}

var flowCfg = analysis.FlowConfig{
	ClassifyCall: classify,
	DoubleLoops:  true,
	ChanOpsBlock: true,
}

func runModule(mp *analysis.ModulePass) {
	g := mp.Graph
	sums := make(map[*analysis.FuncNode]*summary)
	ops := make(map[*analysis.FuncNode][]analysis.Op)
	for _, n := range g.Functions() {
		sums[n] = &summary{}
		// Skip packages (the simulator kernel) contribute no summaries:
		// their channel operations are cooperative-scheduler handoffs
		// that always complete once the scheduler runs, not waits on
		// device progress. The genuinely blocking primitives they export
		// (Wait, RecvFrom) are matched by name at the call site instead.
		if n.Decl.Body != nil && mp.Analyzer.AppliesTo(n.Pkg.Path) {
			ops[n] = analysis.Linearize(n.Decl.Body, flowCfg)
		}
	}
	g.Fixpoint(func(n *analysis.FuncNode) bool {
		next := summarize(g, ops[n], sums)
		if *sums[n] != next {
			*sums[n] = next
			return true
		}
		return false
	})

	for _, n := range g.Functions() {
		if ops[n] == nil {
			continue
		}
		check(mp, g, sums, ops[n])
		// Goroutine bodies and callback literals run outside this frame;
		// check each one as its own sequence. Var-bound closures were
		// already spliced into their call sites.
		bound := varBoundFuncLits(n.Decl.Body)
		for _, fl := range analysis.FuncLits(n.Decl.Body) {
			if !bound[fl] {
				check(mp, g, sums, analysis.Linearize(fl.Body, flowCfg))
			}
		}
	}
}

// summarize recomputes one function's summary from its ops and the
// current summaries of its callees.
func summarize(g *analysis.CallGraph, ops []analysis.Op, sums map[*analysis.FuncNode]*summary) summary {
	var s summary
	flushed := false
	pending := ""
	var pendingSite *analysis.CallSite
	for _, op := range ops {
		if op.Deferred {
			continue
		}
		switch {
		case op.Kind == analysis.OpCall && strings.HasPrefix(op.Detail, "enqueue:"):
			pending = strings.TrimPrefix(op.Detail, "enqueue:")
			pendingSite = nil
		case op.Kind == analysis.OpCall && strings.HasPrefix(op.Detail, "flush:"):
			s.flushes = true
			flushed = true
			pending = ""
		case op.Kind == analysis.OpBlock:
			if !flushed && !s.blocksBeforeFlush {
				s.blocksBeforeFlush = true
				s.blockDetail = op.Detail
				s.blockPos = op.Pos
			}
		case op.Kind == analysis.OpCall && op.Detail == "call":
			for _, cs := range g.SitesAt(op.Pos) {
				cal := sums[cs.Callee]
				if cal == nil {
					continue // external or unknown callee: no facts
				}
				if cal.blocksBeforeFlush && !flushed && !s.blocksBeforeFlush {
					s.blocksBeforeFlush = true
					s.blockDetail = cal.blockDetail
					s.blockPos = cal.blockPos
					s.blockSite = cs
				}
				if cal.flushes {
					s.flushes = true
					flushed = true
					pending = ""
				}
				if cal.pending != "" {
					pending = cal.pending
					pendingSite = cs
				}
			}
		}
	}
	s.pending = pending
	s.pendingSite = pendingSite
	return s
}

// check walks one linearized op sequence reporting blocks reached with
// an unflushed enqueue pending — directly or inside a callee.
func check(mp *analysis.ModulePass, g *analysis.CallGraph, sums map[*analysis.FuncNode]*summary, ops []analysis.Op) {
	pending := ""
	for _, op := range ops {
		if op.Deferred {
			continue // runs at exit, after any in-body flush decision
		}
		switch {
		case op.Kind == analysis.OpCall && strings.HasPrefix(op.Detail, "enqueue:"):
			pending = strings.TrimPrefix(op.Detail, "enqueue:")
		case op.Kind == analysis.OpCall && strings.HasPrefix(op.Detail, "flush:"):
			pending = ""
		case op.Kind == analysis.OpBlock:
			if pending != "" {
				mp.Reportf(op.Pos,
					"blocking on %s while a batched doorbell may be pending after %s; flush (FlushTx/Kick/KickIfNeeded) before blocking",
					op.Detail, pending)
				pending = ""
			}
		case op.Kind == analysis.OpCall && op.Detail == "call":
			for _, cs := range g.SitesAt(op.Pos) {
				cal := sums[cs.Callee]
				if cal == nil {
					continue
				}
				if cal.blocksBeforeFlush && pending != "" {
					mp.ReportWitness(op.Pos, blockWitness(g, sums, cs),
						"call to %s blocks on %s while a batched doorbell may be pending after %s; flush (FlushTx/Kick/KickIfNeeded) before calling",
						cs.Callee.Key, cal.blockDetail, pending)
					pending = ""
					continue
				}
				if cal.flushes {
					pending = ""
				}
				if cal.pending != "" {
					pending = cal.pending
				}
			}
		}
	}
}

// blockWitness renders the call chain from a flagged call site down to
// the blocking operation it hides.
func blockWitness(g *analysis.CallGraph, sums map[*analysis.FuncNode]*summary, cs *analysis.CallSite) []string {
	out := []string{cs.Caller.Key}
	seen := map[*analysis.FuncNode]bool{cs.Caller: true}
	for {
		n := cs.Callee
		pos := g.Fset.Position(cs.Pos)
		out = append(out, fmt.Sprintf("→ %s (called at %s:%d)", n.Key, pos.Filename, pos.Line))
		if seen[n] {
			break
		}
		seen[n] = true
		s := sums[n]
		if s == nil || s.blockSite == nil {
			if s != nil && s.blockPos.IsValid() {
				bp := g.Fset.Position(s.blockPos)
				out = append(out, fmt.Sprintf("→ blocks on %s at %s:%d", s.blockDetail, bp.Filename, bp.Line))
			}
			break
		}
		cs = s.blockSite
	}
	return out
}

// varBoundFuncLits finds closures bound to a local variable by a
// single-assignment; Linearize splices those at their call sites.
func varBoundFuncLits(body *ast.BlockStmt) map[*ast.FuncLit]bool {
	out := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Obj != nil {
				if fl, ok := as.Rhs[0].(*ast.FuncLit); ok {
					out[fl] = true
				}
			}
		}
		return true
	})
	return out
}
