// Package kickflush generalizes the PR 2 deferred-kick deadlock fix
// into a rule: after queueing transmit work (SendTo / Xmit / AddChain),
// a function must not reach a blocking operation — a wait-queue,
// trigger or condition Wait, a blocking receive, a channel operation,
// or a select without default — before a doorbell flush (FlushTx /
// Kick / KickIfNeeded). Under a batched-doorbell policy (TxKickBatch)
// the queued packet may still be invisible to the device, so blocking
// on its completion deadlocks the session.
//
// The check linearizes each function body in source order, doubling
// loop bodies so an enqueue late in a loop is seen by a blocking call
// early in the next iteration. Local closures are spliced into their
// call sites; goroutine bodies are checked independently.
package kickflush

import (
	"go/ast"

	"fpgavirtio/internal/analysis"
)

// Analyzer is the kickflush rule.
var Analyzer = &analysis.Analyzer{
	Name: "kickflush",
	Doc: "no blocking operation may be reachable after queueing transmit work " +
		"until a doorbell flush (FlushTx/Kick/KickIfNeeded) has run",
	Skip: []string{
		// The simulator defines the blocking primitives themselves.
		"fpgavirtio/internal/sim",
	},
	Run: run,
}

// enqueueMethods queue transmit work that a batched doorbell may leave
// invisible to the device.
var enqueueMethods = map[string]bool{"SendTo": true, "Xmit": true, "AddChain": true}

// flushMethods guarantee any owed doorbell was delivered (or its
// elision re-decided against current device hints).
var flushMethods = map[string]bool{"FlushTx": true, "Kick": true, "KickIfNeeded": true}

// blockMethods block until another process makes progress.
var blockMethods = map[string]bool{"Wait": true, "RecvFrom": true}

func classify(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	switch {
	case enqueueMethods[name]:
		return "enqueue:" + name, false
	case flushMethods[name]:
		return "flush:" + name, false
	case blockMethods[name]:
		return name, true
	}
	return "", false
}

func run(pass *analysis.Pass) {
	cfg := analysis.FlowConfig{
		ClassifyCall: classify,
		DoubleLoops:  true,
		ChanOpsBlock: true,
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			check(pass, analysis.Linearize(fd.Body, cfg))
			// Goroutine bodies and callback literals run outside this
			// frame; check each one as its own sequence. Var-bound
			// closures were already spliced into their call sites.
			bound := varBoundFuncLits(fd.Body)
			for _, fl := range analysis.FuncLits(fd.Body) {
				if !bound[fl] {
					check(pass, analysis.Linearize(fl.Body, cfg))
				}
			}
		}
	}
}

func check(pass *analysis.Pass, ops []analysis.Op) {
	pending := ""
	for _, op := range ops {
		if op.Deferred {
			continue // runs at exit, after any in-body flush decision
		}
		switch {
		case op.Kind == analysis.OpCall && len(op.Detail) > 8 && op.Detail[:8] == "enqueue:":
			pending = op.Detail[8:]
		case op.Kind == analysis.OpCall && len(op.Detail) > 6 && op.Detail[:6] == "flush:":
			pending = ""
		case op.Kind == analysis.OpBlock:
			if pending != "" {
				pass.Reportf(op.Pos,
					"blocking on %s while a batched doorbell may be pending after %s; flush (FlushTx/Kick/KickIfNeeded) before blocking",
					op.Detail, pending)
				pending = ""
			}
		}
	}
}

// varBoundFuncLits finds closures bound to a local variable by a
// single-assignment; Linearize splices those at their call sites.
func varBoundFuncLits(body *ast.BlockStmt) map[*ast.FuncLit]bool {
	out := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Obj != nil {
				if fl, ok := as.Rhs[0].(*ast.FuncLit); ok {
					out[fl] = true
				}
			}
		}
		return true
	})
	return out
}
