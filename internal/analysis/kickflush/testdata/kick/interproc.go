// Interprocedural shapes: blocks, flushes and pending enqueues hidden
// behind helper calls, seen through the call-graph summaries.
package fixture

// waitReply hides the blocking receive one call deep.
func waitReply(p *Proc, s Socket) []byte {
	return s.RecvFrom(p)
}

// waitIndirect hides it two calls deep.
func waitIndirect(p *Proc, s Socket) []byte {
	return waitReply(p, s)
}

// queueFrame leaves an enqueue pending at return: its caller inherits
// the owed doorbell.
func queueFrame(p *Proc, d Driver, b []byte) {
	d.SendTo(p, b)
}

// flushAll delivers the doorbell; callers' pending enqueues clear.
func flushAll(p *Proc, d Driver) {
	d.FlushTx(p)
}

// badHelperHidesBlock is the PR 2 deadlock with the block moved into a
// helper: the summary makes the hidden RecvFrom visible here.
func badHelperHidesBlock(p *Proc, d Driver, s Socket, b []byte) []byte {
	d.SendTo(p, b)
	return waitReply(p, s) // want "call to fvlint.fixture/kick.waitReply blocks on RecvFrom while a batched doorbell may be pending after SendTo"
}

// badTwoHopBlock pushes the block two frames down; the fixpoint still
// surfaces it at the outermost call that owes the doorbell.
func badTwoHopBlock(p *Proc, d Driver, s Socket, b []byte) []byte {
	d.Xmit(p, b)
	return waitIndirect(p, s) // want "call to fvlint.fixture/kick.waitIndirect blocks on RecvFrom while a batched doorbell may be pending after Xmit"
}

// badInheritedPending enqueues inside a helper, then blocks directly:
// the pending doorbell is inherited from the callee's summary.
func badInheritedPending(p *Proc, d Driver, s Socket, b []byte) []byte {
	queueFrame(p, d, b)
	return s.RecvFrom(p) // want "blocking on RecvFrom while a batched doorbell may be pending after SendTo"
}

// goodHelperFlushes: the helper's flush clears the caller's pending
// enqueue before the blocking receive.
func goodHelperFlushes(p *Proc, d Driver, s Socket, b []byte) []byte {
	d.SendTo(p, b)
	flushAll(p, d)
	return s.RecvFrom(p)
}

// goodFlushedBeforeHelper flushes before calling the blocking helper.
func goodFlushedBeforeHelper(p *Proc, d Driver, s Socket, b []byte) []byte {
	d.SendTo(p, b)
	d.Kick(p)
	return waitReply(p, s)
}
