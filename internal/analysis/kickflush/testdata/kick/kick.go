// Package fixture exercises the kickflush analyzer: blocking while a
// batched doorbell may still be unflushed. badPing reproduces the exact
// pre-fix shape of the PR 2 deferred-kick deadlock: SendTo under
// TxKickBatch queues the frame without ringing the doorbell, then
// RecvFrom parks the process waiting for a reply the device will never
// generate.
package fixture

// Proc stands in for a simulator process handle.
type Proc struct{}

// Driver mimes the transmit surface of the virtio-net driver.
type Driver struct{}

func (Driver) SendTo(p *Proc, b []byte)   {}
func (Driver) Xmit(p *Proc, b []byte)     {}
func (Driver) AddChain(p *Proc, b []byte) {}
func (Driver) FlushTx(p *Proc)            {}
func (Driver) Kick(p *Proc)               {}
func (Driver) KickIfNeeded(p *Proc)       {}

// Socket mimes the blocking datagram receive.
type Socket struct{}

func (Socket) RecvFrom(p *Proc) []byte { return nil }

// WaitQueue mimes a simulator wait queue.
type WaitQueue struct{}

func (WaitQueue) Wait(p *Proc) {}

// badPing is the pre-fix PR 2 deadlock shape: enqueue, then block on
// the reply without flushing the batched doorbell.
func badPing(p *Proc, d Driver, s Socket, b []byte) []byte {
	d.SendTo(p, b)
	return s.RecvFrom(p) // want "blocking on RecvFrom while a batched doorbell may be pending after SendTo"
}

// goodPing flushes between enqueue and the blocking receive — the
// shape the PR 2 fix left behind.
func goodPing(p *Proc, d Driver, s Socket, b []byte) []byte {
	d.SendTo(p, b)
	d.FlushTx(p)
	return s.RecvFrom(p)
}

// goodCtrl kicks unconditionally before waiting, like ctrlCommand.
func goodCtrl(p *Proc, d Driver, w WaitQueue, b []byte) {
	d.AddChain(p, b)
	d.Kick(p)
	w.Wait(p)
}

// badChanAfterXmit blocks on a channel receive with work queued.
func badChanAfterXmit(p *Proc, d Driver, done chan struct{}, b []byte) {
	d.Xmit(p, b)
	<-done // want "blocking on <-chan while a batched doorbell may be pending after Xmit"
}

// badSelectAfterAdd reaches a select without default.
func badSelectAfterAdd(p *Proc, d Driver, done chan struct{}, b []byte) {
	d.AddChain(p, b)
	select { // want "blocking on select while a batched doorbell may be pending after AddChain"
	case <-done:
	}
}

// goodSelectDefault polls without blocking; not flagged.
func goodSelectDefault(p *Proc, d Driver, done chan struct{}, b []byte) {
	d.AddChain(p, b)
	select {
	case <-done:
	default:
	}
	d.KickIfNeeded(p)
}

// badLoopBackEdge waits at the top of a loop whose previous iteration
// queued without flushing: the back edge makes the wait reachable with
// a pending doorbell.
func badLoopBackEdge(p *Proc, d Driver, w WaitQueue, b []byte) {
	for i := 0; i < 4; i++ {
		w.Wait(p) // want "blocking on Wait while a batched doorbell may be pending after AddChain"
		d.AddChain(p, b)
	}
	d.FlushTx(p)
}

// goodLoopFlushes flushes inside the loop body before the next wait.
func goodLoopFlushes(p *Proc, d Driver, w WaitQueue, b []byte) {
	for i := 0; i < 4; i++ {
		w.Wait(p)
		d.AddChain(p, b)
		d.KickIfNeeded(p)
	}
}

// suppressed carries a justified directive.
func suppressed(p *Proc, d Driver, s Socket, b []byte) []byte {
	d.SendTo(p, b)
	//fvlint:ignore kickflush fixture demonstrates justified suppression
	return s.RecvFrom(p)
}
