// Package analysis is the project's static-analysis framework: a
// self-contained reimplementation of the golang.org/x/tools go/analysis
// API shape (Analyzer, Pass, Diagnostic) built only on the standard
// library's go/ast, go/parser and go/types, so the lint suite carries
// no external dependencies.
//
// The suite turns the VirtIO driver/device contract the paper relies on
// — descriptor bodies published before the avail index or packed head
// flags, doorbells flushed before blocking waits, canonical telemetry
// names, a fixed mutex hierarchy — into compile-time project law.
// cmd/fvlint runs every analyzer over the module; analysistest-style
// fixtures under each analyzer's testdata pin the flagged and clean
// shapes.
//
// False positives are suppressed with an auditable directive on the
// flagged line or the line above it:
//
//	//fvlint:ignore <analyzer> <reason>
//
// A directive without a reason does not suppress anything: the point is
// that every exception is reviewable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name is the rule name used in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Packages restricts the analyzer to packages whose import path
	// equals an entry or sits below it. Empty means every package.
	Packages []string
	// Skip lists import-path prefixes the analyzer never runs on even
	// when Packages matches (e.g. the package defining the checked API,
	// whose own tests legitimately violate the call-site rule).
	Skip []string
	// Run reports diagnostics for one package via pass.Reportf. Nil for
	// module analyzers, which implement RunModule instead.
	Run func(pass *Pass)
	// RunModule, when set, makes this a whole-module analyzer: it runs
	// once over the call graph of every loaded package rather than
	// per-package. Packages/Skip still scope its diagnostics: findings
	// positioned in out-of-scope packages are dropped.
	RunModule func(mp *ModulePass)
}

// AppliesTo reports whether the analyzer runs on the given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	match := func(prefix string) bool {
		return pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")
	}
	for _, s := range a.Skip {
		if match(s) {
			return false
		}
	}
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if match(p) {
			return true
		}
	}
	return false
}

// Pass carries one analyzer run over one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the import path of the package under analysis.
	PkgPath string

	diags []Diagnostic
}

// Diagnostic is one reported finding, after directive filtering.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks findings matched by an //fvlint:ignore
	// directive; Reason carries the directive's justification.
	Suppressed bool
	Reason     string
	// Witness, when non-empty, is the call path that makes the finding
	// reachable (root first, one "→ callee" line per hop). fvlint -why
	// prints it under the diagnostic so cross-function findings are
	// auditable without re-deriving the chain by hand.
	Witness []string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-tolerant shorthand for Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object (nil when unknown).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// ModulePass carries one whole-module analyzer run over the call
// graph. Diagnostics are scope-filtered against the analyzer's
// Packages/Skip lists by the position they are reported at.
type ModulePass struct {
	Analyzer *Analyzer
	Graph    *CallGraph
	Fset     *token.FileSet

	diags []Diagnostic
}

// Reportf records a module diagnostic at pos.
func (mp *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	mp.report(pos, nil, format, args...)
}

// ReportWitness records a module diagnostic carrying the call path
// that makes it reachable.
func (mp *ModulePass) ReportWitness(pos token.Pos, witness []string, format string, args ...any) {
	mp.report(pos, witness, format, args...)
}

func (mp *ModulePass) report(pos token.Pos, witness []string, format string, args ...any) {
	p := mp.Fset.Position(pos)
	if path := mp.Graph.PkgPathOf(p); path != "" && !mp.Analyzer.AppliesTo(path) {
		return
	}
	mp.diags = append(mp.diags, Diagnostic{
		Pos:      p,
		Analyzer: mp.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Witness:  witness,
	})
}

// RunModuleAnalyzers executes every module analyzer once over the call
// graph and returns directive-filtered diagnostics sorted by position.
// Ignore directives from every loaded package apply, so cross-function
// findings are suppressed where they are reported, exactly like
// per-package ones.
func RunModuleAnalyzers(graph *CallGraph, analyzers []*Analyzer) []Diagnostic {
	var dirs []*ignoreDirective
	for _, pkg := range graph.Pkgs {
		dirs = append(dirs, parseDirectives(pkg.Fset, pkg.Files)...)
	}
	var all []Diagnostic
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{Analyzer: a, Graph: graph, Fset: graph.Fset}
		a.RunModule(mp)
		all = append(all, applyDirectives(mp.diags, dirs)...)
	}
	sortDiagnostics(all)
	return all
}

// DirectiveInfo is one //fvlint:ignore occurrence, as listed by the
// fvlint -suppressions audit. Parsing is shared with suppression
// matching itself, so the audit sees exactly the directives that can
// suppress — not prose or string literals that merely mention the
// marker.
type DirectiveInfo struct {
	File   string
	Line   int
	Rule   string
	Reason string
}

// ListDirectives lists every ignore directive in the files, in source
// order.
func ListDirectives(fset *token.FileSet, files []*ast.File) []DirectiveInfo {
	var out []DirectiveInfo
	for _, d := range parseDirectives(fset, files) {
		out = append(out, DirectiveInfo{File: d.file, Line: d.line, Rule: d.rule, Reason: d.reason})
	}
	return out
}

// ignoreDirective is one parsed //fvlint:ignore comment.
type ignoreDirective struct {
	file   string
	line   int
	rule   string
	reason string
	used   bool
}

const directivePrefix = "//fvlint:ignore"

// parseDirectives collects every ignore directive in the package.
func parseDirectives(fset *token.FileSet, files []*ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix))
				rule, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				out = append(out, &ignoreDirective{
					file:   pos.Filename,
					line:   pos.Line,
					rule:   rule,
					reason: strings.TrimSpace(reason),
				})
			}
		}
	}
	return out
}

// applyDirectives marks diagnostics suppressed when an ignore directive
// for the same rule sits on the same line or the line directly above.
// Directives with an empty reason never suppress: exceptions must be
// justified to count.
func applyDirectives(diags []Diagnostic, dirs []*ignoreDirective) []Diagnostic {
	for i := range diags {
		d := &diags[i]
		for _, dir := range dirs {
			if dir.rule != d.Analyzer || dir.reason == "" || dir.file != d.Pos.Filename {
				continue
			}
			if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
				d.Suppressed = true
				d.Reason = dir.reason
				dir.used = true
				break
			}
		}
	}
	return diags
}

// RunAnalyzers executes every applicable analyzer over a loaded package
// and returns directive-filtered diagnostics sorted by position. The
// boolean order reports whether any diagnostic is unsuppressed.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	dirs := parseDirectives(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		if a.Run == nil || !a.AppliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			PkgPath:  pkg.Path,
		}
		a.Run(pass)
		all = append(all, applyDirectives(pass.diags, dirs)...)
	}
	sortDiagnostics(all)
	return all
}

// SortDiagnostics orders findings by (file, line, column, analyzer) —
// the canonical print order. cmd/fvlint uses it to merge per-package
// and module diagnostics into one stable stream.
func SortDiagnostics(all []Diagnostic) { sortDiagnostics(all) }

// sortDiagnostics orders findings by (file, line, column, analyzer) —
// the canonical print order every fvlint mode emits.
func sortDiagnostics(all []Diagnostic) {
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
}
