// Interprocedural shapes: acquisitions and blocking operations hidden
// behind helper calls, seen through the call-graph summaries.
package fixture

// lockRing acquires the ring rank on behalf of its caller.
func lockRing(r *Ring) {
	r.mu.Lock()
	r.mu.Unlock()
}

// lockRingDeep hides the acquisition two frames down.
func lockRingDeep(r *Ring) {
	lockRing(r)
}

// parkHelper blocks on behalf of its caller.
func parkHelper(w WaitQueue, p *Proc) {
	w.Wait(p)
}

// badHelperInversion: metrics is held while the helper takes ring —
// a one-hop inversion of the session→ring→metrics order.
func badHelperInversion(r *Ring, m *Metrics) {
	m.mu.Lock()
	lockRing(r) // want "call to fvlint.fixture/locks.lockRing acquires \"ring\" while holding \"metrics\""
	m.mu.Unlock()
}

// badTwoHopInversion: the inversion survives another call hop.
func badTwoHopInversion(r *Ring, m *Metrics) {
	m.mu.Lock()
	lockRingDeep(r) // want "call to fvlint.fixture/locks.lockRingDeep acquires \"ring\" while holding \"metrics\""
	m.mu.Unlock()
}

// badHelperBlocksWhileHeld: the helper parks while session is held.
func badHelperBlocksWhileHeld(s *Session, w WaitQueue, p *Proc) {
	s.mu.Lock()
	parkHelper(w, p) // want "call to fvlint.fixture/locks.parkHelper blocks (Wait) while holding lock(s) session"
	s.mu.Unlock()
}

// goodHelperOrder: ring under session is the correct nesting; the
// helper's acquisition summary matches the hierarchy.
func goodHelperOrder(s *Session, r *Ring) {
	s.mu.Lock()
	lockRing(r)
	s.mu.Unlock()
}

// goodHelperAfterRelease: nothing is held when the helper parks.
func goodHelperAfterRelease(r *Ring, w WaitQueue, p *Proc) {
	r.mu.Lock()
	r.mu.Unlock()
	parkHelper(w, p)
}
