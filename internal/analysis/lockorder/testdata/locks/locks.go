// Package fixture exercises the lockorder analyzer: out-of-order
// acquisition against the session→ring→metrics hierarchy and locks
// held across blocking operations.
package fixture

import "sync"

// Proc stands in for a simulator process handle.
type Proc struct{}

// WaitQueue mimes a simulator wait queue.
type WaitQueue struct{}

func (WaitQueue) Wait(p *Proc) {}

// Session owns the outermost lock.
type Session struct {
	mu sync.Mutex //fvlint:lockrank session
}

// Ring nests under Session.
type Ring struct {
	mu sync.Mutex //fvlint:lockrank ring
}

// Metrics is the innermost rank.
type Metrics struct {
	mu sync.Mutex //fvlint:lockrank metrics
}

// Plain is outside the hierarchy; never checked.
type Plain struct {
	mu sync.Mutex
}

func goodNesting(s *Session, r *Ring, m *Metrics) {
	s.mu.Lock()
	r.mu.Lock()
	m.mu.Lock()
	m.mu.Unlock()
	r.mu.Unlock()
	s.mu.Unlock()
}

func badInverted(r *Ring, m *Metrics) {
	m.mu.Lock()
	r.mu.Lock() // want "acquiring \"ring\" while holding \"metrics\" violates the session→ring→metrics lock order"
	r.mu.Unlock()
	m.mu.Unlock()
}

func badSessionUnderRing(s *Session, r *Ring) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s.mu.Lock() // want "acquiring \"session\" while holding \"ring\""
	s.mu.Unlock()
}

func badBlockWhileHeld(r *Ring, w WaitQueue, p *Proc) {
	r.mu.Lock()
	w.Wait(p) // want "blocking operation (Wait) while holding lock(s) ring"
	r.mu.Unlock()
}

func badChanWhileDeferHeld(s *Session, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-ch // want "blocking operation (<-chan) while holding lock(s) session"
}

func goodReleaseBeforeBlock(r *Ring, w WaitQueue, p *Proc) {
	r.mu.Lock()
	r.mu.Unlock()
	w.Wait(p)
}

func goodPlainIgnored(pl *Plain, w WaitQueue, p *Proc) {
	pl.mu.Lock()
	w.Wait(p)
	pl.mu.Unlock()
}

func suppressed(r *Ring, m *Metrics) {
	m.mu.Lock()
	//fvlint:ignore lockorder fixture demonstrates justified suppression
	r.mu.Lock()
	r.mu.Unlock()
	m.mu.Unlock()
}

// Unranked carries a bogus rank name.
type Unranked struct {
	//fvlint:lockrank spindle
	mu sync.Mutex // want "unknown lock rank \"spindle"
}
