package lockorder_test

import (
	"testing"

	"fpgavirtio/internal/analysis/analysistest"
	"fpgavirtio/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "testdata/locks")
}
