// Package lockorder enforces the mutex hierarchy declared by
// `//fvlint:lockrank <name>` field annotations. The hierarchy is
// session → ring → metrics: a lower-ranked mutex may not be acquired
// while a higher-ranked one is held (ranks grow down the hierarchy),
// and no annotated mutex may be held across a blocking operation — a
// simulator Wait, a blocking receive, a channel operation, or a select
// without default — because the process that would release the waited
// condition may need the same lock.
//
// The check is interprocedural: every function gets a summary of the
// ranks it (transitively) acquires and whether it may (transitively)
// block, propagated to a fixpoint over the module call graph. A
// two-hop inversion — f locks "ring", calls g, g locks "session" — or
// a helper that parks while the caller holds a ranked lock is reported
// at the call site in f, with the call-path witness fvlint -why
// prints.
//
// Annotating is opt-in per field:
//
//	type Registry struct {
//		mu sync.Mutex //fvlint:lockrank metrics
//		...
//	}
//
// Unannotated mutexes are outside the hierarchy and ignored.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fpgavirtio/internal/analysis"
)

// Analyzer is the lockorder rule.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "locks annotated //fvlint:lockrank must be acquired in session→ring→metrics " +
		"order and never held across a blocking operation, including acquisitions " +
		"and blocks hidden inside callees",
	RunModule: runModule,
}

// hierarchy lists lock ranks outermost first. Acquisition must follow
// this order; index = rank.
var hierarchy = []string{"session", "ring", "metrics"}

func rankOf(name string) int {
	for i, h := range hierarchy {
		if h == name {
			return i
		}
	}
	return -1
}

const rankDirective = "//fvlint:lockrank"

// blockMethods are simulator calls that park the process.
var blockMethods = map[string]bool{"Wait": true, "RecvFrom": true}

// summary is the interprocedural fact set of one function: the ranks
// it may acquire (directly or via callees) and whether it may block.
type summary struct {
	// acquires maps rank name -> the op (site or lock position) that
	// first acquires it; presence is what matters for the join.
	acquires    map[string]acquireInfo
	mayBlock    bool
	blockDetail string
	blockPos    token.Pos
	blockSite   *analysis.CallSite
}

type acquireInfo struct {
	pos  token.Pos
	site *analysis.CallSite // non-nil when acquired inside a callee
}

func (s *summary) equal(o *summary) bool {
	if s.mayBlock != o.mayBlock || len(s.acquires) != len(o.acquires) {
		return false
	}
	for r := range s.acquires {
		if _, ok := o.acquires[r]; !ok {
			return false
		}
	}
	return true
}

func runModule(mp *analysis.ModulePass) {
	g := mp.Graph
	ranks := collectRanks(mp)
	if len(ranks) == 0 {
		return
	}
	cfg := flowConfig(g, ranks)

	ops := make(map[*analysis.FuncNode][]analysis.Op)
	sums := make(map[*analysis.FuncNode]*summary)
	for _, n := range g.Functions() {
		sums[n] = &summary{acquires: map[string]acquireInfo{}}
		if n.Decl.Body != nil {
			ops[n] = analysis.Linearize(n.Decl.Body, cfg)
		}
	}
	g.Fixpoint(func(n *analysis.FuncNode) bool {
		next := summarize(g, ops[n], sums)
		if !sums[n].equal(next) {
			sums[n] = next
			return true
		}
		return false
	})

	for _, n := range g.Functions() {
		if n.Decl.Body == nil {
			continue
		}
		check(mp, g, sums, ops[n])
		for _, fl := range analysis.FuncLits(n.Decl.Body) {
			check(mp, g, sums, analysis.Linearize(fl.Body, cfg))
		}
	}
}

// flowConfig classifies Lock/Unlock on ranked mutexes, known blocking
// methods, and tags every other call for callee-summary joins.
func flowConfig(g *analysis.CallGraph, ranks map[types.Object]string) analysis.FlowConfig {
	return analysis.FlowConfig{
		ClassifyCall: func(call *ast.CallExpr) (string, bool) {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return "call", false
			}
			switch sel.Sel.Name {
			case "Lock", "Unlock":
				if inner, ok := sel.X.(*ast.SelectorExpr); ok {
					if s := selectionOf(g, inner); s != nil {
						if rank, ok := ranks[s.Obj()]; ok {
							if sel.Sel.Name == "Lock" {
								return "lock:" + rank, false
							}
							return "unlock:" + rank, false
						}
					}
				}
			default:
				if blockMethods[sel.Sel.Name] {
					return sel.Sel.Name, true
				}
			}
			return "call", false
		},
		ChanOpsBlock: true,
	}
}

// selectionOf finds the types.Selection of a selector expression in
// whichever loaded package recorded it (the expression belongs to
// exactly one package's Info).
func selectionOf(g *analysis.CallGraph, sel *ast.SelectorExpr) *types.Selection {
	for _, pkg := range g.Pkgs {
		if s, ok := pkg.Info.Selections[sel]; ok {
			return s
		}
	}
	return nil
}

// summarize recomputes one function's summary from its ops and its
// callees' current summaries.
func summarize(g *analysis.CallGraph, ops []analysis.Op, sums map[*analysis.FuncNode]*summary) *summary {
	s := &summary{acquires: map[string]acquireInfo{}}
	for _, op := range ops {
		if op.Deferred {
			continue
		}
		switch {
		case op.Kind == analysis.OpCall && strings.HasPrefix(op.Detail, "lock:"):
			rank := strings.TrimPrefix(op.Detail, "lock:")
			if _, ok := s.acquires[rank]; !ok {
				s.acquires[rank] = acquireInfo{pos: op.Pos}
			}
		case op.Kind == analysis.OpBlock:
			if !s.mayBlock {
				s.mayBlock = true
				s.blockDetail = op.Detail
				s.blockPos = op.Pos
			}
		case op.Kind == analysis.OpCall && op.Detail == "call":
			for _, cs := range g.SitesAt(op.Pos) {
				cal := sums[cs.Callee]
				if cal == nil {
					continue
				}
				for rank := range cal.acquires {
					if _, ok := s.acquires[rank]; !ok {
						s.acquires[rank] = acquireInfo{pos: op.Pos, site: cs}
					}
				}
				if cal.mayBlock && !s.mayBlock {
					s.mayBlock = true
					s.blockDetail = cal.blockDetail
					s.blockPos = cal.blockPos
					s.blockSite = cs
				}
			}
		}
	}
	return s
}

// check walks one linearized op sequence tracking the held-rank set,
// reporting order inversions and blocking-while-held — whether the
// acquisition or block happens directly or inside a callee.
func check(mp *analysis.ModulePass, g *analysis.CallGraph, sums map[*analysis.FuncNode]*summary, ops []analysis.Op) {
	held := map[string]bool{} // rank name -> held
	heldList := func() string {
		var hs []string
		for _, h := range hierarchy {
			if held[h] {
				hs = append(hs, h)
			}
		}
		return strings.Join(hs, ", ")
	}
	anyHeld := func() bool {
		for _, h := range hierarchy {
			if held[h] {
				return true
			}
		}
		return false
	}
	for _, op := range ops {
		if op.Deferred {
			continue // a deferred Unlock releases at exit: the lock stays held below
		}
		switch {
		case op.Kind == analysis.OpCall && strings.HasPrefix(op.Detail, "lock:"):
			rank := strings.TrimPrefix(op.Detail, "lock:")
			for _, h := range hierarchy {
				if held[h] && rankOf(h) > rankOf(rank) {
					mp.Reportf(op.Pos,
						"acquiring %q while holding %q violates the %s lock order",
						rank, h, strings.Join(hierarchy, "→"))
				}
			}
			held[rank] = true
		case op.Kind == analysis.OpCall && strings.HasPrefix(op.Detail, "unlock:"):
			held[strings.TrimPrefix(op.Detail, "unlock:")] = false
		case op.Kind == analysis.OpBlock:
			if hl := heldList(); hl != "" {
				mp.Reportf(op.Pos,
					"blocking operation (%s) while holding lock(s) %s: release before blocking",
					op.Detail, hl)
				for k := range held {
					held[k] = false // one report per held set
				}
			}
		case op.Kind == analysis.OpCall && op.Detail == "call":
			if !anyHeld() {
				continue
			}
			for _, cs := range g.SitesAt(op.Pos) {
				cal := sums[cs.Callee]
				if cal == nil {
					continue
				}
				for _, rank := range hierarchy { // stable report order
					ai, ok := cal.acquires[rank]
					if !ok {
						continue
					}
					for _, h := range hierarchy {
						if held[h] && rankOf(h) > rankOf(rank) {
							mp.ReportWitness(op.Pos, acquireWitness(g, sums, cs, rank, ai),
								"call to %s acquires %q while holding %q: violates the %s lock order",
								cs.Callee.Key, rank, h, strings.Join(hierarchy, "→"))
						}
					}
				}
				if cal.mayBlock {
					if hl := heldList(); hl != "" {
						mp.ReportWitness(op.Pos, blockWitness(g, sums, cs),
							"call to %s blocks (%s) while holding lock(s) %s: release before calling",
							cs.Callee.Key, cal.blockDetail, hl)
						for k := range held {
							held[k] = false
						}
					}
				}
			}
		}
	}
}

// acquireWitness renders the call chain from a flagged call site down
// to the out-of-order Lock it hides.
func acquireWitness(g *analysis.CallGraph, sums map[*analysis.FuncNode]*summary, cs *analysis.CallSite, rank string, ai acquireInfo) []string {
	out := []string{cs.Caller.Key}
	seen := map[*analysis.FuncNode]bool{cs.Caller: true}
	for {
		n := cs.Callee
		pos := g.Fset.Position(cs.Pos)
		out = append(out, fmt.Sprintf("→ %s (called at %s:%d)", n.Key, pos.Filename, pos.Line))
		if seen[n] {
			break
		}
		seen[n] = true
		s := sums[n]
		if s == nil {
			break
		}
		inner, ok := s.acquires[rank]
		if !ok {
			break
		}
		if inner.site == nil {
			lp := g.Fset.Position(inner.pos)
			out = append(out, fmt.Sprintf("→ locks %q at %s:%d", rank, lp.Filename, lp.Line))
			break
		}
		cs = inner.site
	}
	return out
}

// blockWitness renders the call chain from a flagged call site down to
// the blocking operation it hides.
func blockWitness(g *analysis.CallGraph, sums map[*analysis.FuncNode]*summary, cs *analysis.CallSite) []string {
	out := []string{cs.Caller.Key}
	seen := map[*analysis.FuncNode]bool{cs.Caller: true}
	for {
		n := cs.Callee
		pos := g.Fset.Position(cs.Pos)
		out = append(out, fmt.Sprintf("→ %s (called at %s:%d)", n.Key, pos.Filename, pos.Line))
		if seen[n] {
			break
		}
		seen[n] = true
		s := sums[n]
		if s == nil || s.blockSite == nil {
			if s != nil && s.blockPos.IsValid() {
				bp := g.Fset.Position(s.blockPos)
				out = append(out, fmt.Sprintf("→ blocks on %s at %s:%d", s.blockDetail, bp.Filename, bp.Line))
			}
			break
		}
		cs = s.blockSite
	}
	return out
}

// collectRanks maps annotated mutex field objects to their rank names
// across every loaded package.
func collectRanks(mp *analysis.ModulePass) map[types.Object]string {
	out := map[types.Object]string{}
	for _, pkg := range mp.Graph.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					rank := fieldRank(field)
					if rank == "" {
						continue
					}
					if rankOf(rank) < 0 {
						mp.Reportf(field.Pos(), "unknown lock rank %q: hierarchy is %s", rank, strings.Join(hierarchy, "→"))
						continue
					}
					for _, name := range field.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							out[obj] = rank
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// fieldRank extracts the rank from a field's trailing or doc comment.
func fieldRank(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, rankDirective); ok {
				if fs := strings.Fields(rest); len(fs) > 0 {
					return fs[0]
				}
			}
		}
	}
	return ""
}
