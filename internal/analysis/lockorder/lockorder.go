// Package lockorder enforces the mutex hierarchy declared by
// `//fvlint:lockrank <name>` field annotations. The hierarchy is
// session → ring → metrics: a lower-ranked mutex may not be acquired
// while a higher-ranked one is held (ranks grow down the hierarchy),
// and no annotated mutex may be held across a blocking operation — a
// simulator Wait, a blocking receive, a channel operation, or a select
// without default — because the process that would release the waited
// condition may need the same lock.
//
// Annotating is opt-in per field:
//
//	type Registry struct {
//		mu sync.Mutex //fvlint:lockrank metrics
//		...
//	}
//
// Unannotated mutexes are outside the hierarchy and ignored.
package lockorder

import (
	"go/ast"
	"go/types"
	"strings"

	"fpgavirtio/internal/analysis"
)

// Analyzer is the lockorder rule.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "locks annotated //fvlint:lockrank must be acquired in session→ring→metrics " +
		"order and never held across a blocking operation",
	Run: run,
}

// hierarchy lists lock ranks outermost first. Acquisition must follow
// this order; index = rank.
var hierarchy = []string{"session", "ring", "metrics"}

func rankOf(name string) int {
	for i, h := range hierarchy {
		if h == name {
			return i
		}
	}
	return -1
}

const rankDirective = "//fvlint:lockrank"

// blockMethods are simulator calls that park the process.
var blockMethods = map[string]bool{"Wait": true, "RecvFrom": true}

func run(pass *analysis.Pass) {
	ranks := collectRanks(pass)
	if len(ranks) == 0 {
		return
	}
	cfg := analysis.FlowConfig{
		ClassifyCall: func(call *ast.CallExpr) (string, bool) {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return "", false
			}
			switch sel.Sel.Name {
			case "Lock", "Unlock":
				if inner, ok := sel.X.(*ast.SelectorExpr); ok {
					if s, ok := pass.Info.Selections[inner]; ok {
						if rank, ok := ranks[s.Obj()]; ok {
							if sel.Sel.Name == "Lock" {
								return "lock:" + rank, false
							}
							return "unlock:" + rank, false
						}
					}
				}
			default:
				if blockMethods[sel.Sel.Name] {
					return sel.Sel.Name, true
				}
			}
			return "", false
		},
		ChanOpsBlock: true,
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			check(pass, analysis.Linearize(fd.Body, cfg))
			for _, fl := range analysis.FuncLits(fd.Body) {
				check(pass, analysis.Linearize(fl.Body, cfg))
			}
		}
	}
}

// collectRanks maps annotated mutex field objects to their rank names.
func collectRanks(pass *analysis.Pass) map[types.Object]string {
	out := map[types.Object]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				rank := fieldRank(pass, field)
				if rank == "" {
					continue
				}
				if rankOf(rank) < 0 {
					pass.Reportf(field.Pos(), "unknown lock rank %q: hierarchy is %s", rank, strings.Join(hierarchy, "→"))
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						out[obj] = rank
					}
				}
			}
			return true
		})
	}
	return out
}

// fieldRank extracts the rank from a field's trailing or doc comment.
func fieldRank(pass *analysis.Pass, field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, rankDirective); ok {
				if fs := strings.Fields(rest); len(fs) > 0 {
					return fs[0]
				}
			}
		}
	}
	return ""
}

func check(pass *analysis.Pass, ops []analysis.Op) {
	held := map[string]bool{} // rank name -> held
	heldList := func() string {
		var hs []string
		for _, h := range hierarchy {
			if held[h] {
				hs = append(hs, h)
			}
		}
		return strings.Join(hs, ", ")
	}
	for _, op := range ops {
		if op.Deferred {
			continue // a deferred Unlock releases at exit: the lock stays held below
		}
		switch {
		case op.Kind == analysis.OpCall && strings.HasPrefix(op.Detail, "lock:"):
			rank := op.Detail[len("lock:"):]
			for _, h := range hierarchy {
				if held[h] && rankOf(h) > rankOf(rank) {
					pass.Reportf(op.Pos,
						"acquiring %q while holding %q violates the %s lock order",
						rank, h, strings.Join(hierarchy, "→"))
				}
			}
			held[rank] = true
		case op.Kind == analysis.OpCall && strings.HasPrefix(op.Detail, "unlock:"):
			held[op.Detail[len("unlock:"):]] = false
		case op.Kind == analysis.OpBlock:
			if hl := heldList(); hl != "" {
				pass.Reportf(op.Pos,
					"blocking operation (%s) while holding lock(s) %s: release before blocking",
					op.Detail, hl)
				for k := range held {
					held[k] = false // one report per held set
				}
			}
		}
	}
}
