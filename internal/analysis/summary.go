package analysis

// Fixpoint support for interprocedural summaries. Each analyzer owns
// its summary type (kickflush: blocks-before-flush / flushes /
// enqueue-pending; lockorder: may-block / acquired ranks; detsafe:
// emits / sorts); what they share is the propagation discipline:
// recompute every function's summary from its callees' until nothing
// changes. Summaries are monotone booleans and grow-only sets, so the
// iteration terminates, and running it over Functions() (sorted by
// key) makes the fixpoint — and every diagnostic derived from it —
// deterministic.

// Fixpoint applies update to every module function, repeatedly, until
// one full sweep reports no change. update returns true when it
// changed the summary of the node it was given. The sweep order is the
// deterministic Functions() order; rounds are capped defensively at
// the node count plus a small constant (a longest dependency chain
// cannot exceed it for monotone facts).
func (g *CallGraph) Fixpoint(update func(n *FuncNode) bool) {
	fns := g.Functions()
	maxRounds := len(fns) + 2
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, n := range fns {
			if update(n) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}
