// Package fixture exercises the ringorder analyzer: split-ring and
// packed-ring publish sequences in both correct and inverted order.
package fixture

// Mem mimics the simulator's guest-memory accessor surface.
type Mem struct{}

func (Mem) PutU16(addr int64, v uint16) {}
func (Mem) PutU32(addr int64, v uint32) {}
func (Mem) PutU64(addr int64, v uint64) {}
func (Mem) U16(addr int64) uint16       { return 0 }
func (Mem) U64(addr int64) uint64       { return 0 }

// Layout mimes virtio.Layout's region bases.
type Layout struct {
	Desc  int64
	Avail int64
	Used  int64
}

// Queue is a miniature DriverQueue.
type Queue struct {
	mem         Mem
	lay         Layout
	availShadow uint16
	freeHead    uint16
	chains      map[uint16]int
}

func (q *Queue) descAddr(i uint16) int64 { return q.lay.Desc + int64(i)*16 }

// goodPublish writes descriptor, then avail slot, then avail index.
func (q *Queue) goodPublish(head uint16) {
	a := q.descAddr(head)
	q.mem.PutU64(a, 0x1000)
	q.mem.PutU16(a+12, 0)
	q.mem.PutU16(q.lay.Avail+4, head)
	q.mem.PutU16(q.lay.Avail+2, q.availShadow)
}

// badDescAfterPublish stores descriptor flags after the index publish.
func (q *Queue) badDescAfterPublish(head uint16) {
	a := q.descAddr(head)
	q.mem.PutU64(a, 0x1000)
	q.mem.PutU16(q.lay.Avail+2, q.availShadow)
	q.mem.PutU16(a+12, 0) // want "descriptor store after avail index publish"
}

// badSlotAfterPublish stores the avail ring slot after the index.
func (q *Queue) badSlotAfterPublish(head uint16) {
	q.mem.PutU16(q.lay.Avail+2, q.availShadow)
	q.mem.PutU16(q.lay.Avail+4, head) // want "avail ring slot store after avail index publish"
}

// badUsedAfterPublish is the device-side inversion.
func (q *Queue) badUsedAfterPublish(id uint32) {
	q.mem.PutU16(q.lay.Used+2, 1)
	q.mem.PutU32(q.lay.Used+4, id) // want "used ring slot store after used index publish"
}

// goodUsedPublish writes the element before the index.
func (q *Queue) goodUsedPublish(id uint32) {
	q.mem.PutU32(q.lay.Used+4, id)
	q.mem.PutU16(q.lay.Used+2, 1)
}

// badPackedPublish stores a descriptor body after the deferred
// head-flags store that makes the chain visible.
func (q *Queue) badPackedPublish(head uint16, flags uint16) {
	a := q.descAddr(head)
	headAddr := a + 14
	q.mem.PutU64(a, 0x2000)
	q.mem.PutU16(headAddr, flags)
	q.mem.PutU64(q.descAddr(head+1), 0x3000) // want "descriptor store after packed head-flags publish"
}

// goodPackedPublish defers only the head flags.
func (q *Queue) goodPackedPublish(head uint16, flags uint16) {
	a := q.descAddr(head)
	headAddr := a + 14
	q.mem.PutU64(a, 0x2000)
	q.mem.PutU16(a+12, 1)
	q.mem.PutU16(headAddr, flags)
}

// badReadAfterRecycle reads descriptor memory after the chain head
// returned to the free list.
func (q *Queue) badReadAfterRecycle(head uint16) uint64 {
	q.freeHead = head
	return q.mem.U64(q.descAddr(head)) // want "descriptor read after slot recycle"
}

// badReadAfterDelete is the packed-ring recycle via the chains map.
func (q *Queue) badReadAfterDelete(id uint16) uint16 {
	delete(q.chains, id)
	return q.mem.U16(q.descAddr(id) + 12) // want "descriptor read after slot recycle"
}

// goodReadBeforeRecycle reads, then recycles.
func (q *Queue) goodReadBeforeRecycle(head uint16) uint64 {
	v := q.mem.U64(q.descAddr(head))
	q.freeHead = head
	return v
}

// suppressed shows a justified directive silencing a diagnostic.
func (q *Queue) suppressed(head uint16) {
	q.mem.PutU16(q.lay.Avail+2, q.availShadow)
	//fvlint:ignore ringorder fixture demonstrates justified suppression
	q.mem.PutU16(q.descAddr(head)+12, 0)
}
