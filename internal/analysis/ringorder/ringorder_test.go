package ringorder_test

import (
	"testing"

	"fpgavirtio/internal/analysis/analysistest"
	"fpgavirtio/internal/analysis/ringorder"
)

func TestRingOrder(t *testing.T) {
	analysistest.Run(t, ringorder.Analyzer, "testdata/ring")
}
