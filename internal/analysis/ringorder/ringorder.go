// Package ringorder enforces the VirtIO publish protocol inside the
// ring implementations: descriptor bodies and avail-ring slots must be
// written before the avail index (split ring §2.7.13) or the head
// descriptor's flags (packed ring §2.8.6) within a publish sequence,
// the used-ring element before the used index, and descriptor memory
// must not be read after its slot was recycled onto the free list.
//
// The check is per function and flow-insensitive: within one function
// body, a store to descriptor or ring-slot memory that follows the
// index/head-flags publish store is flagged, as is a descriptor read
// that follows the free-list recycle point (an assignment to a
// freeHead field). The simulator is single-threaded, but the publish
// order is exactly what a real device on the other side of the bus
// would race against — the analyzer keeps the model honest.
package ringorder

import (
	"go/ast"
	"go/constant"
	"go/token"

	"fpgavirtio/internal/analysis"
)

// Analyzer is the ringorder rule.
var Analyzer = &analysis.Analyzer{
	Name: "ringorder",
	Doc: "descriptor and ring-slot stores must precede the avail/used index " +
		"or packed head-flags publish store; descriptor reads must not follow slot recycle",
	Packages: []string{
		"fpgavirtio/internal/virtio",
		"fpgavirtio/internal/vdev",
	},
	Run: run,
}

// addrClass classifies a ring address expression.
type addrClass int

const (
	classNone addrClass = iota
	classDesc           // descriptor table (descAddr/slotAddr derived)
	classAvailBase
	classUsedBase
	classEvent // used_event / avail_event words: unconstrained
)

// taint records what a local variable's value addresses.
type taint struct {
	class       addrClass
	offset      int64
	offsetKnown bool
}

// Memory accessor method names, by address-argument index. Arity
// disambiguates mem.Memory (addr first) from the DMA interface
// (Proc first, addr second).
var storeMethods = map[string]bool{"PutU8": true, "PutU16": true, "PutU32": true, "PutU64": true, "Fill": true, "Write": true}
var loadMethods = map[string]bool{"U8": true, "U16": true, "U32": true, "U64": true, "Read": true}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
}

type event struct {
	pos  token.Pos
	t    taint
	lit  string // source-ish description for diagnostics
	kind string // "store", "load", "recycle"
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	taints := map[*ast.Object]taint{}
	var events []event

	classify := func(e ast.Expr) taint { return classifyExpr(pass, taints, e) }

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					t := classify(n.Rhs[i])
					if id, ok := lhs.(*ast.Ident); ok && id.Obj != nil && t.class != classNone {
						taints[id.Obj] = t
					}
					// Recycle point: the chain head returns to the free
					// list; descriptor memory behind it is dead.
					if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "freeHead" {
						events = append(events, event{pos: n.Pos(), kind: "recycle"})
					}
				}
			}
		case *ast.CallExpr:
			// delete(q.chains, id) is the packed ring's recycle point:
			// the chain's slots may be reused by the driver afterwards.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
				if sel, ok := n.Args[0].(*ast.SelectorExpr); ok && sel.Sel.Name == "chains" {
					events = append(events, event{pos: n.Pos(), kind: "recycle"})
				}
				return true
			}
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			isStore, isLoad := storeMethods[name], loadMethods[name]
			if !isStore && !isLoad {
				return true
			}
			addrIdx := 0
			switch name {
			case "Write":
				if len(n.Args) == 3 { // DMA.Write(p, addr, data)
					addrIdx = 1
				}
			case "Read":
				if len(n.Args) == 3 { // DMA.Read(p, addr, n)
					addrIdx = 1
				}
			}
			if len(n.Args) <= addrIdx {
				return true
			}
			t := classify(n.Args[addrIdx])
			if t.class == classNone || t.class == classEvent {
				return true
			}
			kind := "store"
			if isLoad {
				kind = "load"
			}
			ev := event{pos: n.Pos(), t: t, kind: kind, lit: name}
			// A store through a plain identifier holding a descriptor
			// flags address (offset 14) is the deferred head-flags
			// publish idiom of the packed ring.
			if isStore && t.class == classDesc && t.offsetKnown && t.offset == 14 {
				if _, plain := n.Args[addrIdx].(*ast.Ident); plain {
					ev.kind = "publish-packed"
				}
			}
			events = append(events, ev)
		}
		return true
	})

	// Locate publish and recycle points.
	var publishPos, recyclePos token.Pos
	publishKind := ""
	for _, ev := range events {
		switch {
		case ev.kind == "publish-packed",
			ev.kind == "store" && ev.t.class == classAvailBase && ev.t.offsetKnown && ev.t.offset == 2,
			ev.kind == "store" && ev.t.class == classUsedBase && ev.t.offsetKnown && ev.t.offset == 2:
			if publishPos == token.NoPos {
				publishPos = ev.pos
				switch {
				case ev.kind == "publish-packed":
					publishKind = "packed head-flags"
				case ev.t.class == classAvailBase:
					publishKind = "avail index"
				default:
					publishKind = "used index"
				}
			}
		case ev.kind == "recycle":
			if recyclePos == token.NoPos {
				recyclePos = ev.pos
			}
		}
	}

	for _, ev := range events {
		if publishPos != token.NoPos && ev.pos > publishPos && ev.kind == "store" {
			switch {
			case ev.t.class == classDesc:
				pass.Reportf(ev.pos, "descriptor store after %s publish: ring contents must be visible before the publish store", publishKind)
			case ev.t.class == classAvailBase && !(ev.t.offsetKnown && ev.t.offset <= 2):
				pass.Reportf(ev.pos, "avail ring slot store after %s publish", publishKind)
			case ev.t.class == classUsedBase && !(ev.t.offsetKnown && ev.t.offset <= 2):
				pass.Reportf(ev.pos, "used ring slot store after %s publish", publishKind)
			}
		}
		if recyclePos != token.NoPos && ev.pos > recyclePos && ev.kind == "load" && ev.t.class == classDesc {
			pass.Reportf(ev.pos, "descriptor read after slot recycle: the chain was returned to the free list")
		}
	}
}

// classifyExpr resolves an address expression to a taint.
func classifyExpr(pass *analysis.Pass, taints map[*ast.Object]taint, e ast.Expr) taint {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return classifyExpr(pass, taints, e.X)
	case *ast.Ident:
		if e.Obj != nil {
			if t, ok := taints[e.Obj]; ok {
				return t
			}
		}
		return taint{}
	case *ast.SelectorExpr:
		switch e.Sel.Name {
		case "Avail":
			return taint{class: classAvailBase, offsetKnown: true}
		case "Used":
			return taint{class: classUsedBase, offsetKnown: true}
		case "Desc", "Ring":
			return taint{class: classDesc, offsetKnown: true}
		case "DriverEvent", "DeviceEvent":
			return taint{class: classEvent}
		}
		return taint{}
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "descAddr", "slotAddr":
				return taint{class: classDesc, offsetKnown: true}
			case "usedEventAddr", "availEventAddr":
				return taint{class: classEvent}
			}
		}
		return taint{}
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return taint{}
		}
		lt := classifyExpr(pass, taints, e.X)
		rt := classifyExpr(pass, taints, e.Y)
		base, other := lt, e.Y
		if base.class == classNone {
			base, other = rt, e.X
		}
		if base.class == classNone {
			return taint{}
		}
		if !base.offsetKnown {
			return base
		}
		if v, ok := constValue(pass, other); ok {
			return taint{class: base.class, offset: base.offset + v, offsetKnown: true}
		}
		return taint{class: base.class}
	}
	return taint{}
}

// constValue evaluates e as an integer constant via the type checker.
func constValue(pass *analysis.Pass, e ast.Expr) (int64, bool) {
	if pass.Info == nil {
		return 0, false
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
