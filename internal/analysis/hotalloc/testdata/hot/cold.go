// cold.go has no hotpath marker: the same per-loop allocation is not
// this analyzer's business here (file granularity, not package).
package hot

func coldLoopAlloc(n int) [][]byte {
	var out [][]byte
	for i := 0; i < n; i++ {
		out = append(out, make([]byte, 64))
	}
	return out
}
