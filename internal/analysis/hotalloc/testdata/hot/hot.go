// Package hot is the hotalloc fixture: this file carries the hotpath
// marker, so per-loop byte-slice allocation is flagged.
//
//fvlint:hotpath
package hot

type ring struct {
	scratch []byte
	out     [][]byte
}

// perPacketAlloc allocates on every iteration: flagged.
func (r *ring) perPacketAlloc(frames [][]byte) {
	for _, f := range frames {
		buf := make([]byte, len(f)) // want "allocates per packet"
		copy(buf, f)
		r.out = append(r.out, buf)
	}
}

// nestedLoopAlloc is flagged through the inner loop too.
func (r *ring) nestedLoopAlloc(n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r.out = append(r.out, make([]byte, 8)) // want "allocates per packet"
		}
	}
}

// closureInLoop still runs per iteration: flagged.
func (r *ring) closureInLoop(n int) {
	for i := 0; i < n; i++ {
		fill := func() []byte { return make([]byte, 16) } // want "allocates per packet"
		r.out = append(r.out, fill())
	}
}

// amortizedGrowth is the sanctioned scratch idiom: cap-guarded, clean.
func (r *ring) amortizedGrowth(frames [][]byte) {
	for _, f := range frames {
		if cap(r.scratch) < len(f) {
			r.scratch = make([]byte, len(f))
		}
		copy(r.scratch[:len(f)], f)
	}
}

// poolHit allocates only on a pool miss, guarded by a cap check in the
// condition: clean.
func (r *ring) poolHit(frames [][]byte, pool [][]byte) {
	for _, f := range frames {
		var buf []byte
		if n := len(pool); n > 0 && cap(pool[n-1]) >= len(f) {
			buf = pool[n-1][:len(f)]
			pool = pool[:n-1]
		} else {
			buf = make([]byte, len(f))
		}
		copy(buf, f)
	}
}

// setupAlloc runs once outside any loop: clean.
func setupAlloc(n int) []byte {
	return make([]byte, n)
}

// nonByteAlloc makes a non-byte slice: outside the rule.
func nonByteAlloc(n int) {
	var out [][]uint32
	for i := 0; i < n; i++ {
		out = append(out, make([]uint32, 4))
	}
	_ = out
}

// justified carries an auditable directive: suppressed, no want.
func justified(frames [][]byte) {
	for _, f := range frames {
		//fvlint:ignore hotalloc ownership transfers to the caller per frame
		buf := make([]byte, len(f))
		copy(buf, f)
	}
}
