package hotalloc_test

import (
	"testing"

	"fpgavirtio/internal/analysis/analysistest"
	"fpgavirtio/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "testdata/hot")
}
