// Package hotalloc enforces the zero-allocation discipline of the
// per-packet hot path: in any file annotated with a `//fvlint:hotpath`
// comment, a `make([]byte, ...)` inside a loop is flagged. Loops in
// those files run per packet (descriptor walks, completion harvests,
// TLP chunking), so an allocation there is paid on every round trip
// and silently breaks the 0 allocs/packet budget alloc_test.go pins.
//
// Amortized growth of a reusable scratch buffer is the sanctioned
// idiom and is exempt: a make guarded by a `cap(...)` comparison in an
// enclosing if-condition (the `if cap(buf) < n { buf = make(...) }`
// shape) allocates only until the buffer reaches steady-state size.
// Anything else needs an auditable `//fvlint:ignore hotalloc <reason>`.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"fpgavirtio/internal/analysis"
)

// Analyzer is the hotalloc rule.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "no make([]byte, ...) inside loops of //fvlint:hotpath files " +
		"unless guarded by a cap() growth check",
	Run: run,
}

const marker = "//fvlint:hotpath"

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		if !fileIsHotpath(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walk(pass, fd.Body, false, false)
		}
	}
}

// fileIsHotpath reports whether the file carries the hotpath marker on
// any comment line.
func fileIsHotpath(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, marker) {
				return true
			}
		}
	}
	return false
}

// walk descends through stmt trees tracking whether the position is
// inside a loop and inside a cap()-guarded if body. Function literals
// inside a loop still run per iteration, so they inherit inLoop.
func walk(pass *analysis.Pass, n ast.Node, inLoop, capGuarded bool) {
	switch s := n.(type) {
	case nil:
		return
	case *ast.ForStmt:
		walkChildren(pass, s.Body, true, capGuarded)
		return
	case *ast.RangeStmt:
		walkChildren(pass, s.Body, true, capGuarded)
		return
	case *ast.IfStmt:
		guard := capGuarded || mentionsCap(s.Cond)
		if s.Init != nil {
			walk(pass, s.Init, inLoop, capGuarded)
		}
		walkChildren(pass, s.Body, inLoop, guard)
		if s.Else != nil {
			walk(pass, s.Else, inLoop, guard)
		}
		return
	case *ast.CallExpr:
		if inLoop && !capGuarded && isMakeByteSlice(pass, s) {
			pass.Reportf(s.Pos(),
				"make([]byte, ...) in a loop of a hotpath file allocates per packet; reuse a pooled or cap-guarded scratch buffer")
		}
	}
	walkChildren(pass, n, inLoop, capGuarded)
}

// walkChildren recurses into every child node of n.
func walkChildren(pass *analysis.Pass, n ast.Node, inLoop, capGuarded bool) {
	ast.Inspect(n, func(child ast.Node) bool {
		if child == nil || child == n {
			return child == n
		}
		walk(pass, child, inLoop, capGuarded)
		return false
	})
}

// mentionsCap reports whether a condition expression calls the builtin
// cap — the signature of the amortized-growth guard.
func mentionsCap(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "cap" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isMakeByteSlice reports whether call is make([]byte, ...) (or a make
// of any named type whose underlying type is a byte slice).
func isMakeByteSlice(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) < 2 {
		return false
	}
	if obj := pass.ObjectOf(id); obj != nil {
		if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
			return false // a local function shadowing make
		}
	}
	if t := pass.TypeOf(call.Args[0]); t != nil {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
	}
	// Without type info, fall back to the syntactic []byte shape.
	at, ok := call.Args[0].(*ast.ArrayType)
	if !ok || at.Len != nil {
		return false
	}
	elt, ok := at.Elt.(*ast.Ident)
	return ok && elt.Name == "byte"
}
