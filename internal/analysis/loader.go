package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path (module path + relative directory).
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module from source.
// Imports inside the module resolve by mapping the import path onto the
// module root; everything else (the standard library) goes through the
// stdlib source importer, so loading works offline and without
// pre-compiled export data.
type Loader struct {
	// ModulePath and ModuleRoot identify the module being linted.
	ModulePath string
	ModuleRoot string
	// IncludeTests adds _test.go files of the package under test (the
	// in-package test files; external _test packages are not loaded).
	IncludeTests bool
	// BuildTags are additional build tags considered satisfied (the
	// loader understands only simple `//go:build tag` / `//go:build
	// !tag` lines over these tags).
	BuildTags []string

	Fset   *token.FileSet
	std    types.ImporterFrom
	pkgs   map[string]*Package
	failed map[string]error
}

// NewLoader returns a loader rooted at the given module.
func NewLoader(modulePath, moduleRoot string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modulePath,
		ModuleRoot: moduleRoot,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       make(map[string]*Package),
		failed:     make(map[string]error),
	}
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
	}
}

// LoadDir loads the package in dir under the given import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if err, ok := l.failed[importPath]; ok {
		return nil, err
	}
	p, err := l.load(dir, importPath)
	if err != nil {
		l.failed[importPath] = err
		return nil, err
	}
	l.pkgs[importPath] = p
	return p, nil
}

// Load loads a package of the loader's module by import path.
func (l *Loader) Load(importPath string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModulePath), "/")
	return l.LoadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), importPath)
}

// keepFile applies the loader's minimal build-constraint handling: a
// file is kept unless a //go:build line references a tag this loader
// does not satisfy (only single-tag `tag` / `!tag` lines are
// understood, which covers the fvinvariants toggle).
func (l *Loader) keepFile(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			expr, ok := strings.CutPrefix(c.Text, "//go:build ")
			if !ok {
				continue
			}
			expr = strings.TrimSpace(expr)
			if neg, ok := strings.CutPrefix(expr, "!"); ok {
				return !l.hasTag(neg)
			}
			if strings.ContainsAny(expr, " &|(") {
				return true // complex constraint: keep, let types sort it out
			}
			return l.hasTag(expr)
		}
	}
	return true
}

func (l *Loader) hasTag(tag string) bool {
	for _, t := range l.BuildTags {
		if t == tag {
			return true
		}
	}
	return false
}

func (l *Loader) load(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	pkgName := ""
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !l.keepFile(f) {
			continue
		}
		// In-package test files share the package name; external test
		// packages (pkg_test) are skipped.
		if strings.HasSuffix(f.Name.Name, "_test") {
			continue
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: &moduleImporter{l: l, fromDir: dir},
		Error:    func(error) {}, // collect all, fail on the first below
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// moduleImporter resolves module-internal imports through the loader
// and delegates the rest to the stdlib source importer.
type moduleImporter struct {
	l       *Loader
	fromDir string
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, m.fromDir, 0)
}

func (m *moduleImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := m.l
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
