package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"fpgavirtio/internal/analysis"
	"fpgavirtio/internal/analysis/kickflush"
	"fpgavirtio/internal/analysis/lockorder"
)

// buildFixtureGraph loads the kickflush and lockorder fixture packages
// with a completely fresh loader (fresh FileSet, fresh type-checker
// state) and builds a two-package call graph over them. Each call
// re-does everything from scratch so map-iteration nondeterminism in
// construction, had any survived, would show up as run-to-run drift.
func buildFixtureGraph(t *testing.T) *analysis.CallGraph {
	t.Helper()
	kickDir, err := filepath.Abs("kickflush/testdata/kick")
	if err != nil {
		t.Fatal(err)
	}
	locksDir, err := filepath.Abs("lockorder/testdata/locks")
	if err != nil {
		t.Fatal(err)
	}
	root, modPath, err := analysis.FindModule(kickDir)
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(modPath, root)
	kick, err := loader.LoadDir(kickDir, "fvlint.fixture/kick")
	if err != nil {
		t.Fatal(err)
	}
	locks, err := loader.LoadDir(locksDir, "fvlint.fixture/locks")
	if err != nil {
		t.Fatal(err)
	}
	return analysis.BuildCallGraph([]*analysis.Package{kick, locks})
}

// TestCallGraphDeterministic pins the determinism contract stated in
// callgraph.go: construction and Dump ordering are byte-identical
// across independent loads.
func TestCallGraphDeterministic(t *testing.T) {
	first := buildFixtureGraph(t).Dump()
	if first == "" {
		t.Fatal("empty call-graph dump")
	}
	for i := 0; i < 3; i++ {
		if again := buildFixtureGraph(t).Dump(); again != first {
			t.Fatalf("call-graph dump drifted between identical loads:\n--- first\n%s\n--- run %d\n%s", first, i+1, again)
		}
	}
}

// TestModuleDiagnosticsStableOrder checks that the module analyzers
// emit diagnostics — and their witness paths — in the same order on
// every run over the same input.
func TestModuleDiagnosticsStableOrder(t *testing.T) {
	render := func() string {
		g := buildFixtureGraph(t)
		diags := analysis.RunModuleAnalyzers(g, []*analysis.Analyzer{kickflush.Analyzer, lockorder.Analyzer})
		var b strings.Builder
		for _, d := range diags {
			b.WriteString(d.String())
			b.WriteByte('\n')
			for _, w := range d.Witness {
				b.WriteString("    " + w + "\n")
			}
		}
		return b.String()
	}
	first := render()
	if !strings.Contains(first, "[kickflush]") || !strings.Contains(first, "[lockorder]") {
		t.Fatalf("expected findings from both module analyzers, got:\n%s", first)
	}
	for i := 0; i < 3; i++ {
		if again := render(); again != first {
			t.Fatalf("module diagnostics drifted between identical runs:\n--- first\n%s\n--- run %d\n%s", first, i+1, again)
		}
	}
}
