package analysis

import (
	"go/ast"
	"go/token"
)

// OpKind classifies one operation in a linearized function body.
type OpKind int

const (
	// OpCall is a call an analyzer's classifier mapped to a custom
	// kind; Detail carries the classifier's tag.
	OpCall OpKind = iota
	// OpBlock is a potentially unbounded blocking point: a channel
	// operation, a select without default, or a call the classifier
	// tagged as blocking.
	OpBlock
)

// Op is one linearized operation with its source position.
type Op struct {
	Kind OpKind
	// Detail is the classifier tag for OpCall ops, or a short
	// description ("<-chan", "select") for intrinsic blocking ops.
	Detail string
	Pos    token.Pos
	// Deferred marks ops inside a defer statement: they execute at
	// function exit, not at their source position.
	Deferred bool
}

// FlowConfig controls Linearize.
type FlowConfig struct {
	// ClassifyCall tags interesting calls; return "" to skip, or a tag
	// plus blocking=true to emit the call as OpBlock.
	ClassifyCall func(call *ast.CallExpr) (tag string, blocking bool)
	// DoubleLoops repeats every loop body's ops twice, so an op late in
	// a loop body is observed "before" ops early in the same body — the
	// cheap stand-in for back-edge flow.
	DoubleLoops bool
	// ChanOpsBlock emits OpBlock for channel sends/receives and
	// selects without a default clause.
	ChanOpsBlock bool
}

// Linearize flattens a function body into source-ordered ops. Branch
// arms concatenate in source order (the analysis is flow-insensitive
// across branches). Function literals bound to local variables are
// summarized and their ops spliced in at direct call sites; literals
// passed elsewhere (goroutine starts, stored callbacks) are NOT
// inlined — analyze them as separate bodies via FuncLits.
func Linearize(body *ast.BlockStmt, cfg FlowConfig) []Op {
	w := &flowWalker{cfg: cfg, closures: map[*ast.Object][]Op{}}
	w.collectClosures(body)
	return w.stmts(body.List, false)
}

// FuncLits returns every function literal in the body, outermost
// first, so analyzers can apply their per-function rule inside
// closures too.
func FuncLits(body *ast.BlockStmt) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			out = append(out, fl)
		}
		return true
	})
	return out
}

type flowWalker struct {
	cfg      FlowConfig
	closures map[*ast.Object][]Op
}

// collectClosures summarizes `name := func(){...}` bindings so later
// `name()` calls splice the closure's ops at the call site.
func (w *flowWalker) collectClosures(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Obj == nil {
			return true
		}
		fl, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		w.closures[id.Obj] = w.stmts(fl.Body.List, false)
		return true
	})
}

func (w *flowWalker) stmts(list []ast.Stmt, deferred bool) []Op {
	var out []Op
	for _, s := range list {
		out = append(out, w.stmt(s, deferred)...)
	}
	return out
}

func (w *flowWalker) stmt(s ast.Stmt, deferred bool) []Op {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return w.expr(s.X, deferred)
	case *ast.AssignStmt:
		var out []Op
		for _, e := range s.Rhs {
			out = append(out, w.expr(e, deferred)...)
		}
		return out
	case *ast.DeclStmt, *ast.EmptyStmt:
		return nil
	case *ast.ReturnStmt:
		var out []Op
		for _, e := range s.Results {
			out = append(out, w.expr(e, deferred)...)
		}
		return out
	case *ast.DeferStmt:
		return w.call(s.Call, true)
	case *ast.GoStmt:
		return nil // runs concurrently; its body is analyzed via FuncLits
	case *ast.SendStmt:
		if w.cfg.ChanOpsBlock {
			return []Op{{Kind: OpBlock, Detail: "chan send", Pos: s.Arrow, Deferred: deferred}}
		}
		return nil
	case *ast.IfStmt:
		var out []Op
		if s.Init != nil {
			out = append(out, w.stmt(s.Init, deferred)...)
		}
		out = append(out, w.expr(s.Cond, deferred)...)
		out = append(out, w.stmts(s.Body.List, deferred)...)
		if s.Else != nil {
			out = append(out, w.stmt(s.Else, deferred)...)
		}
		return out
	case *ast.BlockStmt:
		return w.stmts(s.List, deferred)
	case *ast.ForStmt:
		var out []Op
		if s.Init != nil {
			out = append(out, w.stmt(s.Init, deferred)...)
		}
		if s.Cond != nil {
			out = append(out, w.expr(s.Cond, deferred)...)
		}
		body := w.stmts(s.Body.List, deferred)
		if s.Post != nil {
			body = append(body, w.stmt(s.Post, deferred)...)
		}
		out = append(out, body...)
		if w.cfg.DoubleLoops {
			out = append(out, body...)
		}
		return out
	case *ast.RangeStmt:
		out := w.expr(s.X, deferred)
		body := w.stmts(s.Body.List, deferred)
		out = append(out, body...)
		if w.cfg.DoubleLoops {
			out = append(out, body...)
		}
		return out
	case *ast.SwitchStmt:
		var out []Op
		if s.Init != nil {
			out = append(out, w.stmt(s.Init, deferred)...)
		}
		if s.Tag != nil {
			out = append(out, w.expr(s.Tag, deferred)...)
		}
		for _, c := range s.Body.List {
			out = append(out, w.stmts(c.(*ast.CaseClause).Body, deferred)...)
		}
		return out
	case *ast.TypeSwitchStmt:
		var out []Op
		for _, c := range s.Body.List {
			out = append(out, w.stmts(c.(*ast.CaseClause).Body, deferred)...)
		}
		return out
	case *ast.SelectStmt:
		var out []Op
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
			}
			out = append(out, w.stmts(cc.Body, deferred)...)
		}
		if w.cfg.ChanOpsBlock && !hasDefault {
			out = append([]Op{{Kind: OpBlock, Detail: "select", Pos: s.Select, Deferred: deferred}}, out...)
		}
		return out
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, deferred)
	default:
		return nil
	}
}

func (w *flowWalker) expr(e ast.Expr, deferred bool) []Op {
	var out []Op
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // not executed here
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && w.cfg.ChanOpsBlock {
				out = append(out, Op{Kind: OpBlock, Detail: "<-chan", Pos: n.OpPos, Deferred: deferred})
			}
		case *ast.CallExpr:
			out = append(out, w.call(n, deferred)...)
			// Arguments were already visited by the call handler's
			// classification only for the call itself; let Inspect
			// continue into arguments for nested calls.
			return true
		}
		return true
	})
	return out
}

// call classifies one call, splicing local-closure summaries.
func (w *flowWalker) call(c *ast.CallExpr, deferred bool) []Op {
	if id, ok := c.Fun.(*ast.Ident); ok && id.Obj != nil {
		if ops, ok := w.closures[id.Obj]; ok {
			spliced := make([]Op, len(ops))
			for i, op := range ops {
				op.Pos = c.Pos() // report at the call site
				op.Deferred = op.Deferred || deferred
				spliced[i] = op
			}
			return spliced
		}
	}
	if w.cfg.ClassifyCall == nil {
		return nil
	}
	tag, blocking := w.cfg.ClassifyCall(c)
	if tag == "" {
		return nil
	}
	kind := OpCall
	if blocking {
		kind = OpBlock
	}
	return []Op{{Kind: kind, Detail: tag, Pos: c.Pos(), Deferred: deferred}}
}
