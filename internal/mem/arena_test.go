package mem

import "testing"

func TestArenaAlloc(t *testing.T) {
	a := NewArena(64)
	x := a.Alloc(16)
	if len(x) != 16 {
		t.Fatalf("len = %d, want 16", len(x))
	}
	for i := range x {
		if x[i] != 0 {
			t.Fatalf("byte %d not zeroed", i)
		}
		x[i] = byte(i)
	}
	y := a.Alloc(16)
	for i := range y {
		if y[i] != 0 {
			t.Fatalf("second alloc byte %d not zeroed", i)
		}
	}
	// Distinct allocations must not alias.
	y[0] = 0xFF
	if x[0] != 0 {
		t.Fatal("allocations alias")
	}
	if got := a.Allocated(); got != 32 {
		t.Fatalf("Allocated = %d, want 32", got)
	}
}

func TestArenaChunkGrowth(t *testing.T) {
	a := NewArena(32)
	for i := 0; i < 10; i++ {
		a.Alloc(24) // each forces a fresh chunk after the first
	}
	if a.Chunks() < 2 {
		t.Fatalf("Chunks = %d, want >= 2", a.Chunks())
	}
}

func TestArenaOversized(t *testing.T) {
	a := NewArena(32)
	b := a.Alloc(1000)
	if len(b) != 1000 {
		t.Fatalf("len = %d, want 1000", len(b))
	}
}

func TestArenaString(t *testing.T) {
	a := NewArena(0)
	s := a.String("wake:", "app")
	if s != "wake:app" {
		t.Fatalf("String = %q, want %q", s, "wake:app")
	}
	if a.String() != "" {
		t.Fatal("empty String not empty")
	}
	// Arena-backed strings must not heap-allocate beyond arena chunks:
	// steady-state String calls inside one chunk do zero allocations.
	a2 := NewArena(1 << 12)
	a2.String("warm") // fault in the first chunk
	allocs := testing.AllocsPerRun(100, func() {
		_ = a2.String("label:", "proc")
	})
	if allocs != 0 {
		t.Fatalf("String allocs/op = %v, want 0", allocs)
	}
}

func TestArenaReset(t *testing.T) {
	a := NewArena(64)
	for i := 0; i < 8; i++ {
		a.Alloc(48)
	}
	a.Reset()
	if a.Allocated() != 0 {
		t.Fatalf("Allocated after Reset = %d, want 0", a.Allocated())
	}
	// Recycled chunk memory must come back zeroed.
	b := a.Alloc(48)
	for i := range b {
		if b[i] != 0 {
			t.Fatalf("recycled byte %d not zeroed", i)
		}
	}
}
