package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(1 << 16)
	src := []byte{1, 2, 3, 4, 5}
	m.Write(100, src)
	got := m.Read(100, 5)
	if !bytes.Equal(got, src) {
		t.Fatalf("got %v, want %v", got, src)
	}
	dst := make([]byte, 3)
	m.ReadInto(101, dst)
	if !bytes.Equal(dst, []byte{2, 3, 4}) {
		t.Fatalf("ReadInto got %v", dst)
	}
}

func TestReadIsCopy(t *testing.T) {
	m := New(64)
	m.Write(0, []byte{9})
	got := m.Read(0, 1)
	got[0] = 42
	if m.U8(0) != 9 {
		t.Fatal("Read aliases internal storage")
	}
}

func TestScalarAccessorsLittleEndian(t *testing.T) {
	m := New(64)
	m.PutU16(0, 0x1234)
	if m.U8(0) != 0x34 || m.U8(1) != 0x12 {
		t.Fatal("PutU16 not little-endian")
	}
	if m.U16(0) != 0x1234 {
		t.Fatal("U16 round trip failed")
	}
	m.PutU32(8, 0xdeadbeef)
	if m.U32(8) != 0xdeadbeef {
		t.Fatal("U32 round trip failed")
	}
	if m.U8(8) != 0xef {
		t.Fatal("PutU32 not little-endian")
	}
	m.PutU64(16, 0x0123456789abcdef)
	if m.U64(16) != 0x0123456789abcdef {
		t.Fatal("U64 round trip failed")
	}
	if m.U8(16) != 0xef || m.U8(23) != 0x01 {
		t.Fatal("PutU64 not little-endian")
	}
}

func TestScalarRoundTripProperty(t *testing.T) {
	m := New(1 << 12)
	f16 := func(off uint8, v uint16) bool {
		a := Addr(off) * 2
		m.PutU16(a, v)
		return m.U16(a) == v
	}
	f32 := func(off uint8, v uint32) bool {
		a := Addr(off) * 4
		m.PutU32(a, v)
		return m.U32(a) == v
	}
	f64 := func(off uint8, v uint64) bool {
		a := Addr(off) * 8
		m.PutU64(a, v)
		return m.U64(a) == v
	}
	for _, f := range []any{f16, f32, f64} {
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	}
}

func TestFill(t *testing.T) {
	m := New(32)
	m.Fill(4, 8, 0xaa)
	for i := 0; i < 32; i++ {
		want := byte(0)
		if i >= 4 && i < 12 {
			want = 0xaa
		}
		if m.U8(Addr(i)) != want {
			t.Fatalf("byte %d = %#x, want %#x", i, m.U8(Addr(i)), want)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(16)
	cases := []func(){
		func() { m.Read(8, 9) },
		func() { m.Write(16, []byte{1}) },
		func() { m.U32(13) },
		func() { m.PutU64(9, 0) },
		func() { m.ReadInto(0, make([]byte, 17)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestAllocatorAlignment(t *testing.T) {
	m := New(1 << 16)
	al := NewAllocator(m, 16, 1<<15)
	a := al.Alloc(10, 64)
	if a%64 != 0 {
		t.Fatalf("addr %#x not 64-aligned", uint64(a))
	}
	b := al.Alloc(1, 4096)
	if b%4096 != 0 {
		t.Fatalf("addr %#x not page-aligned", uint64(b))
	}
	if b < a+10 {
		t.Fatal("allocations overlap")
	}
}

func TestAllocatorZeroesAndExhausts(t *testing.T) {
	m := New(256)
	m.Fill(0, 256, 0xff)
	al := NewAllocator(m, 0, 256)
	a := al.Alloc(16, 16)
	for i := 0; i < 16; i++ {
		if m.U8(a+Addr(i)) != 0 {
			t.Fatal("alloc did not zero region")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected exhaustion panic")
		}
	}()
	al.Alloc(1024, 1)
}

func TestAllocatorProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		m := New(1 << 20)
		al := NewAllocator(m, 0, 1<<20)
		type region struct{ a, n Addr }
		var regs []region
		for _, sz := range sizes {
			n := int(sz)%512 + 1
			align := 1 << (int(sz) % 8)
			a := al.Alloc(n, align)
			if int(a)%align != 0 {
				return false
			}
			for _, r := range regs {
				if a < r.a+r.n && r.a < a+Addr(n) {
					return false // overlap
				}
			}
			regs = append(regs, region{a, Addr(n)})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAllocatorBadAlignPanics(t *testing.T) {
	m := New(64)
	al := NewAllocator(m, 0, 64)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two alignment")
		}
	}()
	al.Alloc(4, 3)
}

func TestAllocatorRemaining(t *testing.T) {
	m := New(128)
	al := NewAllocator(m, 0, 128)
	if al.Remaining() != 128 {
		t.Fatalf("remaining = %d", al.Remaining())
	}
	al.Alloc(28, 1)
	if al.Remaining() != 100 {
		t.Fatalf("remaining = %d, want 100", al.Remaining())
	}
}
