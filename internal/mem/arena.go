package mem

import "unsafe"

// arenaChunk is the default chunk size for Arena. Small enough that an
// idle simulation carries negligible overhead, large enough that the
// per-run name-intern population of a sweep cell fits in one chunk.
const arenaChunk = 4 << 10

// Arena is a chunked bump allocator for per-run scratch with a single
// lifetime: allocations are freed all at once by Reset (or never, for
// Sim-lifetime data like interned event names). It exists because the
// sim hot path must stay at exactly 0 heap allocations per packet —
// anything with per-event or per-run lifetime is carved out of an arena
// chunk instead of going through the Go allocator.
//
// An Arena is not safe for concurrent use; like everything else in a
// simulation instance it is confined to one worker.
type Arena struct {
	buf   []byte   // active chunk; len(buf) is the bump offset
	full  [][]byte // retired chunks, recycled by Reset
	chunk int
	total int64 // bytes handed out since construction or last Reset
}

// NewArena returns an arena with the given chunk size; chunkSize <= 0
// selects the default.
func NewArena(chunkSize int) *Arena {
	if chunkSize <= 0 {
		chunkSize = arenaChunk
	}
	return &Arena{chunk: chunkSize}
}

// Alloc returns a zeroed n-byte slice carved from the arena. The slice
// aliases arena storage: it is valid until Reset, and callers must not
// append past its length. n larger than the chunk size gets a dedicated
// chunk.
func (a *Arena) Alloc(n int) []byte {
	if n < 0 {
		panic("mem: negative arena alloc")
	}
	a.total += int64(n)
	if n > a.chunk {
		b := make([]byte, n)
		a.full = append(a.full, b)
		return b
	}
	if cap(a.buf)-len(a.buf) < n {
		if a.buf != nil {
			a.full = append(a.full, a.buf)
		}
		a.buf = make([]byte, 0, a.chunk)
	}
	off := len(a.buf)
	a.buf = a.buf[:off+n]
	b := a.buf[off : off+n : off+n]
	for i := range b {
		b[i] = 0
	}
	return b
}

// String concatenates parts into a single arena-backed string. The
// bytes live in the arena, so the result costs no Go heap allocation;
// it is immutable by construction because no slice referencing the
// storage escapes. Do not Reset an arena whose strings are still
// referenced.
func (a *Arena) String(parts ...string) string {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	if n == 0 {
		return ""
	}
	b := a.Alloc(n)
	off := 0
	for _, p := range parts {
		off += copy(b[off:], p)
	}
	return unsafe.String(&b[0], n)
}

// Reset frees every allocation at once, recycling chunk storage for
// subsequent Allocs. Any slice or string previously handed out becomes
// invalid.
func (a *Arena) Reset() {
	if a.buf != nil {
		// Keep the active chunk, drop the rest: steady-state runs then
		// settle to zero make calls.
		a.buf = a.buf[:0]
	}
	for i := range a.full {
		a.full[i] = nil
	}
	a.full = a.full[:0]
	a.total = 0
}

// Allocated reports the bytes handed out since construction or Reset.
func (a *Arena) Allocated() int64 { return a.total }

// Chunks reports how many chunks the arena currently holds.
func (a *Arena) Chunks() int {
	n := len(a.full)
	if a.buf != nil {
		n++
	}
	return n
}
