// Package mem models host physical memory as seen over the PCIe bus:
// a flat little-endian byte-addressable store with a simple physically
// contiguous allocator (standing in for the kernel's DMA-coherent
// allocator that both drivers in the paper rely on).
package mem

import "fmt"

// Addr is a host physical / bus address.
type Addr uint64

// Memory is a flat physical memory. The zero value is unusable; create
// with New. Methods panic on out-of-range accesses — in the modeled
// system those are DMA bugs, and failing loudly is what a real bus
// error would do to the experiment.
type Memory struct {
	data []byte
}

// New returns a memory of the given size in bytes.
func New(size int) *Memory {
	if size <= 0 {
		panic("mem: non-positive size")
	}
	return &Memory{data: make([]byte, size)}
}

// Size reports the memory size in bytes.
func (m *Memory) Size() int { return len(m.data) }

func (m *Memory) check(a Addr, n int) {
	if n < 0 || uint64(a) > uint64(len(m.data)) || uint64(a)+uint64(n) > uint64(len(m.data)) {
		panic(fmt.Sprintf("mem: access [%#x, %#x+%d) out of range (size %#x)", uint64(a), uint64(a), n, len(m.data)))
	}
}

// Read copies n bytes starting at a into a fresh slice.
func (m *Memory) Read(a Addr, n int) []byte {
	m.check(a, n)
	out := make([]byte, n)
	copy(out, m.data[a:])
	return out
}

// ReadInto copies len(dst) bytes starting at a into dst.
func (m *Memory) ReadInto(a Addr, dst []byte) {
	m.check(a, len(dst))
	copy(dst, m.data[a:])
}

// Write copies src into memory at a.
func (m *Memory) Write(a Addr, src []byte) {
	m.check(a, len(src))
	copy(m.data[a:], src)
}

// Fill sets n bytes at a to v.
func (m *Memory) Fill(a Addr, n int, v byte) {
	m.check(a, n)
	for i := 0; i < n; i++ {
		m.data[int(a)+i] = v
	}
}

// U8 reads one byte.
func (m *Memory) U8(a Addr) byte {
	m.check(a, 1)
	return m.data[a]
}

// PutU8 writes one byte.
func (m *Memory) PutU8(a Addr, v byte) {
	m.check(a, 1)
	m.data[a] = v
}

// U16 reads a little-endian 16-bit value (VirtIO structures are LE).
func (m *Memory) U16(a Addr) uint16 {
	m.check(a, 2)
	return uint16(m.data[a]) | uint16(m.data[a+1])<<8
}

// PutU16 writes a little-endian 16-bit value.
func (m *Memory) PutU16(a Addr, v uint16) {
	m.check(a, 2)
	m.data[a] = byte(v)
	m.data[a+1] = byte(v >> 8)
}

// U32 reads a little-endian 32-bit value.
func (m *Memory) U32(a Addr) uint32 {
	m.check(a, 4)
	return uint32(m.data[a]) | uint32(m.data[a+1])<<8 | uint32(m.data[a+2])<<16 | uint32(m.data[a+3])<<24
}

// PutU32 writes a little-endian 32-bit value.
func (m *Memory) PutU32(a Addr, v uint32) {
	m.check(a, 4)
	m.data[a] = byte(v)
	m.data[a+1] = byte(v >> 8)
	m.data[a+2] = byte(v >> 16)
	m.data[a+3] = byte(v >> 24)
}

// U64 reads a little-endian 64-bit value.
func (m *Memory) U64(a Addr) uint64 {
	return uint64(m.U32(a)) | uint64(m.U32(a+4))<<32
}

// PutU64 writes a little-endian 64-bit value.
func (m *Memory) PutU64(a Addr, v uint64) {
	m.PutU32(a, uint32(v))
	m.PutU32(a+4, uint32(v>>32))
}

// Allocator hands out physically contiguous, aligned regions from a
// Memory, in the role of dma_alloc_coherent. It is a bump allocator
// with explicit Free support omitted by design: the experiments
// allocate ring and buffer memory once at device bring-up, exactly as
// the drivers under study do.
type Allocator struct {
	mem  *Memory
	next Addr
	end  Addr
}

// NewAllocator returns an allocator over m's range [start, start+size).
func NewAllocator(m *Memory, start Addr, size int) *Allocator {
	if size < 0 || uint64(start)+uint64(size) > uint64(m.Size()) {
		panic("mem: allocator range out of bounds")
	}
	return &Allocator{mem: m, next: start, end: start + Addr(size)}
}

// Alloc returns the address of a zeroed region of n bytes aligned to
// align (which must be a power of two; 0 or 1 means unaligned).
func (al *Allocator) Alloc(n int, align int) Addr {
	if n < 0 {
		panic("mem: negative alloc")
	}
	if align == 0 {
		align = 1
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d not a power of two", align))
	}
	a := (al.next + Addr(align-1)) &^ Addr(align-1)
	if uint64(a)+uint64(n) > uint64(al.end) {
		panic(fmt.Sprintf("mem: allocator exhausted (want %d bytes at %#x, end %#x)", n, uint64(a), uint64(al.end)))
	}
	al.next = a + Addr(n)
	al.mem.Fill(a, n, 0)
	return a
}

// Remaining reports how many bytes are still available (ignoring
// alignment waste of future allocations).
func (al *Allocator) Remaining() int { return int(al.end - al.next) }
