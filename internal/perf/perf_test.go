package perf

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"fpgavirtio/internal/sim"
)

func fill(vals ...int64) *Series {
	s := NewSeries("t")
	for _, v := range vals {
		s.Add(sim.Us(v))
	}
	return s
}

func TestMeanStd(t *testing.T) {
	s := fill(10, 20, 30, 40)
	if got := s.Mean(); got != sim.Us(25) {
		t.Fatalf("mean = %v", got)
	}
	// Population stddev of {10,20,30,40}us = sqrt(125)us.
	want := math.Sqrt(125) * 1000
	if got := s.Std().Nanoseconds(); math.Abs(got-want) > 1 {
		t.Fatalf("std = %vns, want %vns", got, want)
	}
	if NewSeries("e").Mean() != 0 || NewSeries("e").Std() != 0 {
		t.Fatal("empty series stats should be zero")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	s := NewSeries("p")
	for i := 1; i <= 100; i++ {
		s.Add(sim.Us(int64(i)))
	}
	cases := []struct {
		p    float64
		want int64
	}{
		{50, 50}, {95, 95}, {99, 99}, {99.9, 100}, {100, 100}, {1, 1},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != sim.Us(c.want) {
			t.Errorf("P%v = %v, want %vus", c.p, got, c.want)
		}
	}
}

func TestPercentileProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSeries("q")
		for _, v := range raw {
			s.Add(sim.Duration(v))
		}
		p50 := s.Percentile(50)
		p95 := s.Percentile(95)
		p999 := s.Percentile(99.9)
		if !(s.Min() <= p50 && p50 <= p95 && p95 <= p999 && p999 <= s.Max()) {
			return false
		}
		// The percentile must be an actual sample.
		sorted := append([]uint32{}, raw...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		found := false
		for _, v := range sorted {
			if sim.Duration(v) == p95 {
				found = true
			}
		}
		return found
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileBadInputPanics(t *testing.T) {
	s := fill(1)
	for _, p := range []float64{0, -1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) did not panic", p)
				}
			}()
			s.Percentile(p)
		}()
	}
}

func TestSummarize(t *testing.T) {
	s := NewSeries("sum")
	for i := 1; i <= 1000; i++ {
		s.Add(sim.Us(int64(i)))
	}
	sum := s.Summarize()
	if sum.Count != 1000 || sum.Min != sim.Us(1) || sum.Max != sim.Us(1000) {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.P50 != sim.Us(500) || sum.P95 != sim.Us(950) || sum.P999 != sim.Us(999) {
		t.Fatalf("percentiles = %+v", sum)
	}
}

func TestAddAfterPercentile(t *testing.T) {
	s := fill(30, 10, 20)
	if s.Percentile(50) != sim.Us(20) {
		t.Fatal("median wrong")
	}
	s.Add(sim.Us(5))
	if s.Min() != sim.Us(5) {
		t.Fatal("Add after sort not re-sorted")
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown("x")
	b.Add(sim.Us(30), sim.Us(12))
	b.Add(sim.Us(28), sim.Us(11))
	if b.Software.Count() != 2 || b.Hardware.Count() != 2 {
		t.Fatal("counts wrong")
	}
	if got := b.Software.Samples()[0]; got != sim.Us(18) {
		t.Fatalf("sw sample = %v", got)
	}
	// Hardware exceeding total clamps software to zero rather than
	// going negative.
	b.Add(sim.Us(5), sim.Us(7))
	if got := b.Software.Samples()[2]; got != 0 {
		t.Fatalf("clamped sw = %v", got)
	}
}

func TestHistogramRenders(t *testing.T) {
	s := NewSeries("h")
	rng := sim.NewRNG(1)
	for i := 0; i < 5000; i++ {
		s.Add(sim.NsF(20000 * rng.LogNormal(0, 0.3)))
	}
	out := s.Histogram(10, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("histogram lines = %d", len(lines))
	}
	if !strings.Contains(out, "#") {
		t.Fatal("histogram has no bars")
	}
	if NewSeries("e").Histogram(5, 10) != "(empty)\n" {
		t.Fatal("empty histogram")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "Demo", Headers: []string{"payload", "p95"}}
	tab.AddRow("64", "35.1")
	tab.AddRow("1024", "57.8")
	out := tab.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "payload") {
		t.Fatal("missing title/header")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[4], "1024") {
		t.Fatalf("row misrendered: %q", lines[4])
	}
}

func TestUsFormat(t *testing.T) {
	if Us(sim.NsF(35123)) != "35.1" {
		t.Fatalf("Us = %q", Us(sim.NsF(35123)))
	}
	if Us2(sim.NsF(1234)) != "1.23" {
		t.Fatalf("Us2 = %q", Us2(sim.NsF(1234)))
	}
}
