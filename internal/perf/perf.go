// Package perf provides the measurement machinery of the benchmark
// harness: latency series with exact percentiles (the paper reports
// 95/99/99.9% tails over 50,000 samples per point), mean/stddev for
// the breakdown figures, log-scale text histograms for the
// distribution figure, and table renderers that print paper-style rows.
package perf

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"fpgavirtio/internal/sim"
)

// Series is a collection of latency samples.
type Series struct {
	name    string
	samples []sim.Duration
	sorted  bool
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{name: name} }

// NewSeriesCap returns an empty named series with room for n samples,
// so a measurement loop of known length never reallocates the backing
// array mid-run.
func NewSeriesCap(name string, n int) *Series {
	return &Series{name: name, samples: make([]sim.Duration, 0, n)}
}

// Name reports the series name.
func (s *Series) Name() string { return s.name }

// Add appends one sample.
func (s *Series) Add(d sim.Duration) {
	s.samples = append(s.samples, d)
	s.sorted = false
}

// Count reports the number of samples.
func (s *Series) Count() int { return len(s.samples) }

// Samples returns the raw samples (insertion order not preserved once
// a percentile has been computed).
func (s *Series) Samples() []sim.Duration { return s.samples }

func (s *Series) ensureSorted() {
	if !s.sorted {
		sort.Slice(s.samples, func(i, j int) bool { return s.samples[i] < s.samples[j] })
		s.sorted = true
	}
}

// Mean returns the arithmetic mean (0 when empty).
func (s *Series) Mean() sim.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	var sum float64
	for _, d := range s.samples {
		sum += float64(d)
	}
	return sim.Duration(sum / float64(len(s.samples)))
}

// Std returns the population standard deviation.
func (s *Series) Std() sim.Duration {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	m := float64(s.Mean())
	var sq float64
	for _, d := range s.samples {
		diff := float64(d) - m
		sq += diff * diff
	}
	return sim.Duration(math.Sqrt(sq / float64(n)))
}

// Percentile returns the nearest-rank percentile, p in (0, 100].
func (s *Series) Percentile(p float64) sim.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("perf: percentile %v out of range", p))
	}
	s.ensureSorted()
	// The epsilon guards against float error at exact boundaries
	// (99.9% of 1000 must rank 999, not 1000).
	rank := int(math.Ceil(p/100*float64(len(s.samples)) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	return s.samples[rank-1]
}

// Min returns the smallest sample.
func (s *Series) Min() sim.Duration {
	s.ensureSorted()
	if len(s.samples) == 0 {
		return 0
	}
	return s.samples[0]
}

// Max returns the largest sample.
func (s *Series) Max() sim.Duration {
	s.ensureSorted()
	if len(s.samples) == 0 {
		return 0
	}
	return s.samples[len(s.samples)-1]
}

// Summary is the distribution snapshot used by the Fig. 3 reproduction.
type Summary struct {
	Name                               string
	Count                              int
	Mean, Std                          sim.Duration
	Min, P25, P50, P75, P95, P99, P999 sim.Duration
	Max                                sim.Duration
}

// Summarize computes the full snapshot.
func (s *Series) Summarize() Summary {
	return Summary{
		Name:  s.name,
		Count: len(s.samples),
		Mean:  s.Mean(),
		Std:   s.Std(),
		Min:   s.Min(),
		P25:   s.Percentile(25),
		P50:   s.Percentile(50),
		P75:   s.Percentile(75),
		P95:   s.Percentile(95),
		P99:   s.Percentile(99),
		P999:  s.Percentile(99.9),
		Max:   s.Max(),
	}
}

// Histogram renders a log-bucketed text histogram of the series, for
// the latency-distribution figure.
func (s *Series) Histogram(buckets int, width int) string {
	if len(s.samples) == 0 || buckets <= 0 {
		return "(empty)\n"
	}
	s.ensureSorted()
	lo := float64(s.Min())
	hi := float64(s.Max())
	if lo <= 0 {
		lo = 1
	}
	if hi <= lo {
		hi = lo * 1.0001
	}
	logLo, logHi := math.Log(lo), math.Log(hi)
	counts := make([]int, buckets)
	for _, d := range s.samples {
		v := float64(d)
		if v < lo {
			v = lo
		}
		b := int(float64(buckets) * (math.Log(v) - logLo) / (logHi - logLo))
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		edge := math.Exp(logLo + (logHi-logLo)*float64(i)/float64(buckets))
		bar := strings.Repeat("#", c*width/maxCount)
		fmt.Fprintf(&b, "%9.1fus |%-*s %d\n", edge/1e6, width, bar, c)
	}
	return b.String()
}

// Breakdown holds the paired software/hardware decomposition the paper
// plots in Figures 4 and 5: per operation, total = software + hardware
// (+ excluded response-generation time).
type Breakdown struct {
	Total    *Series
	Software *Series
	Hardware *Series
}

// NewBreakdown returns empty paired series.
func NewBreakdown(name string) *Breakdown {
	return &Breakdown{
		Total:    NewSeries(name + ".total"),
		Software: NewSeries(name + ".sw"),
		Hardware: NewSeries(name + ".hw"),
	}
}

// Add records one operation's decomposition.
func (b *Breakdown) Add(total, hardware sim.Duration) {
	b.Total.Add(total)
	b.Hardware.Add(hardware)
	sw := total - hardware
	if sw < 0 {
		sw = 0
	}
	b.Software.Add(sw)
}

// Table renders rows of labelled values with aligned columns.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with padded columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Us formats a duration as microseconds with one decimal, the unit the
// paper's tables use.
func Us(d sim.Duration) string { return fmt.Sprintf("%.1f", d.Microseconds()) }

// Us2 formats with two decimals for small quantities.
func Us2(d sim.Duration) string { return fmt.Sprintf("%.2f", d.Microseconds()) }
