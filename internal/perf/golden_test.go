package perf

import (
	"testing"

	"fpgavirtio/internal/sim"
)

// The golden tables below pin the exact nearest-rank percentile and
// population-variance arithmetic the paper's tables depend on. Each
// case lists a constructed sample series and the values every summary
// field must evaluate to — bit-exact, no tolerance. If Percentile or
// Std drift (interpolation, sample variance, off-by-one ranks), the
// Table I / Figure 3 reproductions silently change shape; these rows
// fail loudly instead.

func seriesOf(vals ...int64) *Series {
	s := NewSeries("golden")
	for _, v := range vals {
		s.Add(sim.Duration(v))
	}
	return s
}

// ramp returns 1..n as a series, where nearest-rank percentiles have
// closed-form answers: P(p) = ceil(p/100*n).
func ramp(n int) *Series {
	s := NewSeries("ramp")
	for i := 1; i <= n; i++ {
		s.Add(sim.Duration(i))
	}
	return s
}

func TestGoldenPercentiles(t *testing.T) {
	cases := []struct {
		name   string
		s      *Series
		p      float64
		expect sim.Duration
	}{
		// Nearest-rank on a 1..1000 ramp: the paper's tail levels.
		{"ramp1000 p50", ramp(1000), 50, 500},
		{"ramp1000 p95", ramp(1000), 95, 950},
		{"ramp1000 p99", ramp(1000), 99, 990},
		{"ramp1000 p99.9", ramp(1000), 99.9, 999},
		{"ramp1000 p100", ramp(1000), 100, 1000},
		// 99.9% of 1000 samples must rank 999, not round up to 1000 —
		// the float-epsilon boundary the implementation guards.
		{"ramp10 p99.9", ramp(10), 99.9, 10},
		{"ramp10 p25", ramp(10), 25, 3},
		{"ramp10 p95", ramp(10), 95, 10},
		// Tiny series: every level collapses onto a real sample.
		{"single p50", seriesOf(42), 50, 42},
		{"single p99.9", seriesOf(42), 99.9, 42},
		{"pair p50", seriesOf(10, 20), 50, 10},
		{"pair p51", seriesOf(10, 20), 51, 20},
		// Unsorted insertion order must not matter.
		{"shuffled p75", seriesOf(5, 1, 4, 2, 3), 75, 4},
		{"duplicates p50", seriesOf(7, 7, 7, 9), 50, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.Percentile(tc.p); got != tc.expect {
				t.Errorf("Percentile(%v) = %d, want %d", tc.p, got, tc.expect)
			}
		})
	}
}

func TestGoldenMeanAndVariance(t *testing.T) {
	cases := []struct {
		name      string
		s         *Series
		mean, std sim.Duration
	}{
		// Population stddev (divide by n, not n-1): {2,4,4,4,5,5,7,9}
		// is the canonical example with sd exactly 2.
		{"canonical", seriesOf(2, 4, 4, 4, 5, 5, 7, 9), 5, 2},
		{"constant", seriesOf(6, 6, 6, 6), 6, 0},
		{"pair", seriesOf(0, 10), 5, 5},
		{"single", seriesOf(3), 3, 0},
		// 1..5: mean 3, population variance 2, sd = sqrt(2) -> 1 after
		// the integer picosecond truncation.
		{"ramp5", ramp(5), 3, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.Mean(); got != tc.mean {
				t.Errorf("Mean() = %d, want %d", got, tc.mean)
			}
			if got := tc.s.Std(); got != tc.std {
				t.Errorf("Std() = %d, want %d", got, tc.std)
			}
		})
	}
}

// TestGoldenSummary pins every field of one Summarize call at once, so
// a drift in any quantile shows up as a single readable diff.
func TestGoldenSummary(t *testing.T) {
	got := ramp(100).Summarize()
	want := Summary{
		Name: "ramp", Count: 100,
		Mean: 50, Std: 28, // mean 50.5 and sd 28.86 truncate to ps ints
		Min: 1, P25: 25, P50: 50, P75: 75,
		P95: 95, P99: 99, P999: 100, Max: 100,
	}
	if got != want {
		t.Errorf("Summarize() =\n %+v\nwant\n %+v", got, want)
	}
}
