package pcie

import (
	"fmt"

	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// LinkConfig describes a PCIe link's generation and width plus the
// transaction-layer limits negotiated during training.
type LinkConfig struct {
	Gen   int // 1..4
	Lanes int // 1, 2, 4, 8, 16

	// MPS is Max_Payload_Size for MWr/CplD TLPs; MRRS is the maximum
	// read-request size. Defaults (128/512) match the XDMA defaults on
	// the paper's Artix-7 board.
	MPS  int
	MRRS int

	// Prop is the one-way flight+PHY/pipeline latency of a TLP.
	Prop sim.Duration
}

// DefaultGen2x2 is the paper testbed's link: Alinx AX7A200, two Gen2 lanes.
func DefaultGen2x2() LinkConfig {
	return LinkConfig{Gen: 2, Lanes: 2, MPS: 128, MRRS: 512, Prop: sim.Ns(200)}
}

// Gen3x4 is an alternative link used by the portability study.
func Gen3x4() LinkConfig {
	return LinkConfig{Gen: 3, Lanes: 4, MPS: 256, MRRS: 512, Prop: sim.Ns(170)}
}

// laneGBps returns the effective per-lane payload rate in bytes/ns,
// after encoding overhead (8b/10b for Gen1/2, 128b/130b afterwards).
func (c LinkConfig) laneBytesPerNs() float64 {
	switch c.Gen {
	case 1:
		return 2.5 / 10 // 2.5 GT/s, 8b/10b
	case 2:
		return 5.0 / 10
	case 3:
		return 8.0 * 128 / 130 / 8
	case 4:
		return 16.0 * 128 / 130 / 8
	default:
		panic(fmt.Sprintf("pcie: unsupported gen %d", c.Gen))
	}
}

func (c LinkConfig) validate() {
	switch c.Lanes {
	case 1, 2, 4, 8, 16:
	default:
		panic(fmt.Sprintf("pcie: unsupported lane count %d", c.Lanes))
	}
	if c.MPS <= 0 || c.MRRS <= 0 {
		panic("pcie: MPS/MRRS must be positive")
	}
	if c.Prop < 0 {
		panic("pcie: negative propagation delay")
	}
}

// BytesPerNs reports the link's aggregate effective byte rate.
func (c LinkConfig) BytesPerNs() float64 {
	return c.laneBytesPerNs() * float64(c.Lanes)
}

// String describes the link, e.g. "Gen2 x2 (1.00 B/ns)".
func (c LinkConfig) String() string {
	return fmt.Sprintf("Gen%d x%d (%.2f B/ns)", c.Gen, c.Lanes, c.BytesPerNs())
}

// direction is one simplex half of the link. TLPs serialize in FIFO
// order; busyUntil tracks when the wire frees up.
type direction struct {
	name      string
	busyUntil sim.Time
}

// Link is a point-to-point PCIe link between the root complex and one
// endpoint. It prices every TLP as serialization (occupancy of the
// sending half) plus fixed propagation.
type Link struct {
	sim  *sim.Sim
	cfg  LinkConfig
	down direction // RC -> EP
	up   direction // EP -> RC
}

// NewLink returns a link driven by s with configuration cfg.
func NewLink(s *sim.Sim, cfg LinkConfig) *Link {
	cfg.validate()
	return &Link{
		sim:  s,
		cfg:  cfg,
		down: direction{name: "down"},
		up:   direction{name: "up"},
	}
}

// Config returns the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// serTime is the wire occupancy of a TLP with the given payload size.
func (l *Link) serTime(payload int) sim.Duration {
	ns := float64(WireBytes(payload)) / l.cfg.BytesPerNs()
	return sim.NsF(ns)
}

// transmit queues one TLP on dir. It returns the time serialization
// finishes (sender-side release) and schedules deliver at arrival.
// When neither spans nor the event tracer are active, the arrival event
// carries deliver directly — no wrapper closure and no composed name —
// so a TLP costs zero heap allocations on the steady-state path.
func (l *Link) transmit(dir *direction, payload int, what string, deliver func()) sim.Time {
	now := l.sim.Now()
	start := now
	if dir.busyUntil > start {
		start = dir.busyUntil
	}
	serEnd := start.Add(l.serTime(payload))
	dir.busyUntil = serEnd
	arrive := serEnd.Add(l.cfg.Prop)
	// Flight recorder: the endpoints are already known here, so the
	// TLP is logged as a closed interval without touching the span
	// machinery (and without composing a name — dir and kind travel as
	// separate static strings). Stays on with zero allocations.
	if l.sim.FlightRecording() {
		l.sim.FlightClosed(telemetry.LayerWire, dir.name, what, now, arrive)
	}
	if l.sim.TracingSpans() || l.sim.Traced() {
		// Wire-layer span: queue + serialization + flight of this TLP.
		sp := l.sim.BeginSpan(telemetry.LayerWire, dir.name+":"+what)
		l.sim.At(arrive, "pcie:"+dir.name+":"+what, func() {
			sp.End()
			deliver()
		})
		//fvlint:ignore metricname span deliberately ends inside the scheduled arrival callback above
		return serEnd
	}
	l.sim.At(arrive, "pcie:tlp", deliver)
	return serEnd
}

// Down sends a TLP from root complex to endpoint.
func (l *Link) Down(payload int, what string, deliver func()) sim.Time {
	return l.transmit(&l.down, payload, what, deliver)
}

// Up sends a TLP from endpoint to root complex.
func (l *Link) Up(payload int, what string, deliver func()) sim.Time {
	return l.transmit(&l.up, payload, what, deliver)
}
