package pcie

import (
	"fmt"

	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// BarHandlers are the device-side register callbacks for one BAR.
// They run at TLP-arrival time in scheduler context and must not block;
// any multi-cycle reaction is scheduled by the device model itself.
type BarHandlers struct {
	Read  func(off uint64, size int) uint64
	Write func(off uint64, size int, v uint64)
}

// Endpoint is one PCIe device function attached to the root complex:
// config space, up to six 32-bit memory BARs, bus-mastered DMA, and
// MSI-X signalling. Device models (the XDMA example design, the VirtIO
// controller) are built on top of exactly this surface.
type Endpoint struct {
	sim   *sim.Sim
	name  string
	cfg   *ConfigSpace
	link  *Link
	rc    *RootComplex
	bars  [6]BarHandlers
	stats *Stats
	met   *epMetrics

	msixVectors int
	msixMasked  []bool
}

// Name reports the endpoint's name.
func (ep *Endpoint) Name() string { return ep.name }

// Config returns the endpoint's configuration space.
func (ep *Endpoint) Config() *ConfigSpace { return ep.cfg }

// Link returns the endpoint's link.
func (ep *Endpoint) Link() *Link { return ep.link }

// Stats returns the endpoint's bus-traffic counters.
func (ep *Endpoint) Stats() *Stats { return ep.stats }

// SetBarHandlers installs register callbacks for BAR i.
func (ep *Endpoint) SetBarHandlers(i int, h BarHandlers) {
	if ep.cfg.BARSize(i) == 0 {
		panic(fmt.Sprintf("pcie: %s: BAR%d has no size declared", ep.name, i))
	}
	ep.bars[i] = h
}

// ConfigureMSIX declares the number of MSI-X vectors the function
// exposes (mirrored in the MSI-X capability added by the device model).
func (ep *Endpoint) ConfigureMSIX(vectors int) {
	ep.msixVectors = vectors
	ep.msixMasked = make([]bool, vectors)
}

// MaskMSIX masks or unmasks one vector (used by interrupt-suppression
// ablations; the kernel masks vectors while servicing).
func (ep *Endpoint) MaskMSIX(vector int, masked bool) {
	ep.msixMasked[vector] = masked
}

// barRead services an inbound memory read at arrival time.
func (ep *Endpoint) barRead(bar int, off uint64, size int) uint64 {
	h := ep.bars[bar]
	if h.Read == nil {
		return 0
	}
	return h.Read(off, size)
}

// barWrite services an inbound memory write at arrival time.
func (ep *Endpoint) barWrite(bar int, off uint64, size int, v uint64) {
	h := ep.bars[bar]
	if h.Write != nil {
		h.Write(off, size, v)
	}
}

func (ep *Endpoint) requireBusMaster(op string) {
	if !ep.cfg.BusMaster() {
		panic(fmt.Sprintf("pcie: %s: %s attempted with bus mastering disabled", ep.name, op))
	}
}

// DMARead fetches n bytes from host memory at a, blocking the calling
// device process for the bus round trips: one MRd per MRRS-sized
// request, answered by MPS-sized completions.
func (ep *Endpoint) DMARead(p *sim.Proc, a mem.Addr, n int) []byte {
	ep.requireBusMaster("DMARead")
	if n == 0 {
		return nil
	}
	sp := ep.sim.BeginSpan(telemetry.LayerPCIe, "dma-read")
	out := make([]byte, 0, n)
	cfg := ep.link.Config()
	addr := a
	for _, req := range SplitPayload(n, cfg.MRRS) {
		reqAddr, reqLen := addr, req
		done := sim.NewTrigger(ep.sim, ep.name+":dmard")
		ep.countUp(TLPMemRead, 0)
		ep.link.Up(0, "MRd", func() {
			// Root-complex side: memory access latency, then stream
			// completions back down the link.
			ep.sim.After(ep.rc.costs.MemLatency, "rc:mem", func() {
				data := ep.rc.Mem.Read(reqAddr, reqLen)
				chunks := SplitPayload(reqLen, cfg.MPS)
				off := 0
				for i, c := range chunks {
					last := i == len(chunks)-1
					chunk := data[off : off+c]
					off += c
					ep.countDown(TLPCompletion, c)
					ep.link.Down(c, "CplD", func() {
						out = append(out, chunk...)
						if last {
							done.Fire()
						}
					})
				}
			})
		})
		done.Wait(p)
		addr += mem.Addr(req)
	}
	sp.End()
	return out
}

// DMAWrite pushes data into host memory at a with posted writes. The
// calling device process is blocked while its data mover occupies the
// upstream half of the link; the bytes land in host memory one
// propagation delay later.
func (ep *Endpoint) DMAWrite(p *sim.Proc, a mem.Addr, data []byte) {
	ep.requireBusMaster("DMAWrite")
	if len(data) == 0 {
		return
	}
	sp := ep.sim.BeginSpan(telemetry.LayerPCIe, "dma-write")
	cfg := ep.link.Config()
	addr := a
	off := 0
	var lastSer sim.Time
	chunks := SplitPayload(len(data), cfg.MPS)
	for i, c := range chunks {
		dst := addr
		chunk := make([]byte, c)
		copy(chunk, data[off:off+c])
		off += c
		addr += mem.Addr(c)
		ep.countUp(TLPMemWrite, c)
		last := i == len(chunks)-1
		lastSer = ep.link.Up(c, "MWr", func() {
			ep.rc.Mem.Write(dst, chunk)
			if last {
				// Posted: the span closes when the final chunk lands.
				sp.End()
			}
		})
	}
	if d := lastSer.Sub(p.Now()); d > 0 {
		p.Sleep(d)
	}
}

// RaiseMSIX signals MSI-X vector v: an upstream posted write followed by
// interrupt-controller dispatch at the root complex.
func (ep *Endpoint) RaiseMSIX(v int) {
	ep.requireBusMaster("RaiseMSIX")
	if v < 0 || v >= ep.msixVectors {
		panic(fmt.Sprintf("pcie: %s: MSI-X vector %d out of range (%d configured)", ep.name, v, ep.msixVectors))
	}
	if ep.msixMasked[v] {
		return
	}
	ep.countUp(TLPMessage, 4)
	ep.stats.Interrupts++
	if ep.met != nil {
		ep.met.interrupts.Inc()
	}
	sp := ep.sim.BeginSpan(telemetry.LayerPCIe, "msix")
	ep.link.Up(4, fmt.Sprintf("MSIX:%d", v), func() {
		ep.sim.After(ep.rc.costs.APICDelay, "rc:apic", func() {
			sp.End()
			if ep.rc.irqSink != nil {
				ep.rc.irqSink(ep, v)
			}
		})
	})
}
