package pcie

import (
	"fmt"
	"strconv"

	"fpgavirtio/internal/faults"
	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// BarHandlers are the device-side register callbacks for one BAR.
// They run at TLP-arrival time in scheduler context and must not block;
// any multi-cycle reaction is scheduled by the device model itself.
type BarHandlers struct {
	Read  func(off uint64, size int) uint64
	Write func(off uint64, size int, v uint64)
}

// Endpoint is one PCIe device function attached to the root complex:
// config space, up to six 32-bit memory BARs, bus-mastered DMA, and
// MSI-X signalling. Device models (the XDMA example design, the VirtIO
// controller) are built on top of exactly this surface.
type Endpoint struct {
	sim   *sim.Sim
	name  string
	cfg   *ConfigSpace
	link  *Link
	rc    *RootComplex
	bars  [6]BarHandlers
	stats *Stats
	met   *epMetrics

	// Fault-injection state: end of the current stall window and the
	// lazily-registered poisoned-completion counter (see faults.go).
	stallUntil sim.Time
	cplErrs    *telemetry.Counter

	msixVectors int
	msixMasked  []bool
	msixOps     []*msixOp

	readOps  []*dmaReadOp
	writeOps []*dmaWriteOp
}

// Name reports the endpoint's name.
func (ep *Endpoint) Name() string { return ep.name }

// Config returns the endpoint's configuration space.
func (ep *Endpoint) Config() *ConfigSpace { return ep.cfg }

// Link returns the endpoint's link.
func (ep *Endpoint) Link() *Link { return ep.link }

// Stats returns the endpoint's bus-traffic counters.
func (ep *Endpoint) Stats() *Stats { return ep.stats }

// SetBarHandlers installs register callbacks for BAR i.
func (ep *Endpoint) SetBarHandlers(i int, h BarHandlers) {
	if ep.cfg.BARSize(i) == 0 {
		panic(fmt.Sprintf("pcie: %s: BAR%d has no size declared", ep.name, i))
	}
	ep.bars[i] = h
}

// ConfigureMSIX declares the number of MSI-X vectors the function
// exposes (mirrored in the MSI-X capability added by the device model).
func (ep *Endpoint) ConfigureMSIX(vectors int) {
	ep.msixVectors = vectors
	ep.msixMasked = make([]bool, vectors)
	ep.msixOps = make([]*msixOp, vectors)
	for v := 0; v < vectors; v++ {
		op := &msixOp{ep: ep, vector: v, name: "MSIX:" + strconv.Itoa(v)}
		op.dispatch = func() {
			if op.ep.rc.irqSink != nil {
				op.ep.rc.irqSink(op.ep, op.vector)
			}
		}
		op.afterLink = func() {
			op.ep.sim.After(op.ep.rc.costs.APICDelay, "rc:apic", op.dispatch)
		}
		ep.msixOps[v] = op
	}
}

// MaskMSIX masks or unmasks one vector (used by interrupt-suppression
// ablations; the kernel masks vectors while servicing).
func (ep *Endpoint) MaskMSIX(vector int, masked bool) {
	ep.msixMasked[vector] = masked
}

// barRead services an inbound memory read at arrival time.
func (ep *Endpoint) barRead(bar int, off uint64, size int) uint64 {
	h := ep.bars[bar]
	if h.Read == nil {
		return 0
	}
	return h.Read(off, size)
}

// barWrite services an inbound memory write at arrival time.
func (ep *Endpoint) barWrite(bar int, off uint64, size int, v uint64) {
	h := ep.bars[bar]
	if h.Write != nil {
		h.Write(off, size, v)
	}
}

func (ep *Endpoint) requireBusMaster(op string) {
	if !ep.cfg.BusMaster() {
		panic(fmt.Sprintf("pcie: %s: %s attempted with bus mastering disabled", ep.name, op))
	}
}

// growBytes returns b resized to n bytes, reallocating only when the
// capacity is insufficient.
func growBytes(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// dmaReadOp is the pooled state machine behind DMAReadInto. The link
// serializes TLPs in FIFO order per direction, so the completions of
// one read request arrive in transfer order and a single pre-built
// arrival callback can advance an offset cursor instead of allocating
// one closure per completion chunk.
//
//fvlint:hotpath
type dmaReadOp struct {
	ep       *Endpoint
	done     *sim.Trigger
	dst      []byte
	stage    []byte   // request data captured at host-memory read time
	addr     mem.Addr // host address of the current request
	reqOff   int      // offset of the current request within dst
	reqLen   int
	chunkOff int // next completion's offset within the request
	onMRd    func()
	onMem    func()
	onCplD   func()
}

func (ep *Endpoint) getReadOp() *dmaReadOp {
	if n := len(ep.readOps); n > 0 {
		op := ep.readOps[n-1]
		ep.readOps[n-1] = nil
		ep.readOps = ep.readOps[:n-1]
		return op
	}
	op := &dmaReadOp{ep: ep, done: sim.NewTrigger(ep.sim, ep.name+":dmard")}
	op.onMRd = func() {
		// Root-complex side: memory access latency, then stream
		// completions back down the link.
		op.ep.sim.After(op.ep.rc.costs.MemLatency, "rc:mem", op.onMem)
	}
	op.onMem = func() {
		// Capture the request's bytes now — the host may overwrite the
		// region before the completions land — then stream them back as
		// MPS-sized CplDs.
		op.stage = growBytes(op.stage, op.reqLen)
		op.ep.rc.Mem.ReadInto(op.addr, op.stage[:op.reqLen])
		if op.ep.rc.faults.Fire(faults.DMAReadErr) {
			// Poisoned read completion: the device receives corrupted
			// data for this request.
			op.stage[0] ^= 0xa5
			op.ep.cplError()
		}
		mps := op.ep.link.cfg.MPS
		for off := 0; off < op.reqLen; off += mps {
			c := op.reqLen - off
			if c > mps {
				c = mps
			}
			op.ep.countDown(TLPCompletion, c)
			op.ep.link.Down(c, "CplD", op.onCplD)
		}
	}
	op.onCplD = func() {
		mps := op.ep.link.cfg.MPS
		c := op.reqLen - op.chunkOff
		if c > mps {
			c = mps
		}
		copy(op.dst[op.reqOff+op.chunkOff:], op.stage[op.chunkOff:op.chunkOff+c])
		op.chunkOff += c
		if op.chunkOff == op.reqLen {
			op.done.Fire()
		}
	}
	return op
}

// DMAReadInto fetches len(dst) bytes from host memory at a into dst,
// blocking the calling device process for the bus round trips: one MRd
// per MRRS-sized request, answered by MPS-sized completions. It is the
// allocation-free form of DMARead.
func (ep *Endpoint) DMAReadInto(p *sim.Proc, a mem.Addr, dst []byte) {
	ep.requireBusMaster("DMARead")
	n := len(dst)
	if n == 0 {
		return
	}
	sp := ep.sim.BeginSpan(telemetry.LayerPCIe, "dma-read")
	op := ep.getReadOp()
	op.dst = dst
	mrrs := ep.link.cfg.MRRS
	for off := 0; off < n; off += mrrs {
		req := n - off
		if req > mrrs {
			req = mrrs
		}
		op.addr = a + mem.Addr(off)
		op.reqOff, op.reqLen, op.chunkOff = off, req, 0
		ep.countUp(TLPMemRead, 0)
		ep.link.Up(0, "MRd", op.onMRd)
		op.done.Wait(p)
		op.done.Reset()
	}
	op.dst = nil
	ep.readOps = append(ep.readOps, op)
	sp.End()
}

// DMARead fetches n bytes from host memory at a, blocking the calling
// device process like DMAReadInto but returning a fresh buffer.
func (ep *Endpoint) DMARead(p *sim.Proc, a mem.Addr, n int) []byte {
	ep.requireBusMaster("DMARead")
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	ep.DMAReadInto(p, a, out)
	return out
}

// dmaWriteOp is the pooled state machine behind DMAWrite: the payload
// is staged into an owned buffer at issue time and landed chunk by
// chunk as the posted writes arrive, again relying on per-direction
// FIFO delivery.
//
//fvlint:hotpath
type dmaWriteOp struct {
	ep    *Endpoint
	buf   []byte
	addr  mem.Addr
	off   int // next chunk offset to land in host memory
	sp    sim.SpanRef
	onMWr func()
}

func (ep *Endpoint) getWriteOp() *dmaWriteOp {
	if n := len(ep.writeOps); n > 0 {
		op := ep.writeOps[n-1]
		ep.writeOps[n-1] = nil
		ep.writeOps = ep.writeOps[:n-1]
		return op
	}
	op := &dmaWriteOp{ep: ep}
	op.onMWr = func() {
		mps := op.ep.link.cfg.MPS
		c := len(op.buf) - op.off
		if c > mps {
			c = mps
		}
		if op.ep.rc.faults.Fire(faults.DMAWriteErr) {
			// Dropped posted write: this chunk never lands in host
			// memory, leaving stale bytes behind.
			op.ep.cplError()
		} else {
			op.ep.rc.Mem.Write(op.addr+mem.Addr(op.off), op.buf[op.off:op.off+c])
		}
		op.off += c
		if op.off == len(op.buf) {
			// Posted: the span closes when the final chunk lands, and
			// only then is the op idle enough to recycle.
			op.sp.End()
			op.sp = sim.SpanRef{}
			op.ep.writeOps = append(op.ep.writeOps, op)
		}
	}
	return op
}

// DMAWrite pushes data into host memory at a with posted writes. The
// calling device process is blocked while its data mover occupies the
// upstream half of the link; the bytes land in host memory one
// propagation delay later.
func (ep *Endpoint) DMAWrite(p *sim.Proc, a mem.Addr, data []byte) {
	ep.requireBusMaster("DMAWrite")
	if len(data) == 0 {
		return
	}
	op := ep.getWriteOp()
	//fvlint:ignore metricname span ends in the pooled op's final MWr arrival callback
	op.sp = ep.sim.BeginSpan(telemetry.LayerPCIe, "dma-write")
	op.buf = growBytes(op.buf, len(data))
	copy(op.buf, data)
	op.addr = a
	op.off = 0
	mps := ep.link.cfg.MPS
	var lastSer sim.Time
	for off := 0; off < len(data); off += mps {
		c := len(data) - off
		if c > mps {
			c = mps
		}
		ep.countUp(TLPMemWrite, c)
		lastSer = ep.link.Up(c, "MWr", op.onMWr)
	}
	if d := lastSer.Sub(p.Now()); d > 0 {
		p.Sleep(d)
	}
}

// msixOp carries the pre-built delivery chain for one MSI-X vector so
// the interrupt-per-packet path does not allocate.
type msixOp struct {
	ep        *Endpoint
	vector    int
	name      string // "MSIX:<v>"
	afterLink func()
	dispatch  func()
}

// RaiseMSIX signals MSI-X vector v: an upstream posted write followed by
// interrupt-controller dispatch at the root complex.
func (ep *Endpoint) RaiseMSIX(v int) {
	ep.requireBusMaster("RaiseMSIX")
	if v < 0 || v >= ep.msixVectors {
		panic(fmt.Sprintf("pcie: %s: MSI-X vector %d out of range (%d configured)", ep.name, v, ep.msixVectors))
	}
	if ep.msixMasked[v] {
		return
	}
	if inj := ep.Faults(); inj != nil {
		if inj.Fire(faults.IRQDrop) {
			// The MSI message TLP is lost in the fabric: the device
			// believes it interrupted the host, no handler ever runs.
			// Drivers recover through their completion watchdogs.
			return
		}
		if inj.Fire(faults.IRQSpurious) {
			ep.raiseMSIX(v) // duplicate delivery ahead of the real one
		}
	}
	ep.raiseMSIX(v)
}

// raiseMSIX performs the actual message-TLP send for vector v; the
// fault checks have already been applied.
func (ep *Endpoint) raiseMSIX(v int) {
	ep.countUp(TLPMessage, 4)
	ep.stats.Interrupts++
	if ep.met != nil {
		ep.met.interrupts.Inc()
	}
	op := ep.msixOps[v]
	if ep.sim.TracingSpans() {
		// Tracing path: allocate per-raise closures so overlapping
		// raises of the same vector each carry their own span.
		sp := ep.sim.BeginSpan(telemetry.LayerPCIe, "msix")
		ep.link.Up(4, op.name, func() {
			ep.sim.After(ep.rc.costs.APICDelay, "rc:apic", func() {
				sp.End()
				if ep.rc.irqSink != nil {
					ep.rc.irqSink(ep, v)
				}
			})
		})
		//fvlint:ignore metricname span ends in the APIC-dispatch callback above
		return
	}
	ep.link.Up(4, op.name, op.afterLink)
}
