package pcie

import (
	"fmt"

	"fpgavirtio/internal/faults"
	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// Costs collects the fixed latencies of the root-complex side of the
// interconnect. Defaults are typical of the desktop platform in the
// paper's testbed.
type Costs struct {
	// MemLatency is the DRAM access time for a device-initiated read.
	MemLatency sim.Duration
	// MMIOWriteCPU is how long an uncached store occupies the CPU
	// before it is posted toward the device.
	MMIOWriteCPU sim.Duration
	// RegReadLatency is the device-internal time to produce a register
	// read completion once the MRd arrives.
	RegReadLatency sim.Duration
	// CfgService is the device-internal service time of a config TLP.
	CfgService sim.Duration
	// APICDelay is MSI arrival to interrupt-controller dispatch.
	APICDelay sim.Duration
}

// DefaultCosts returns the calibrated platform constants.
func DefaultCosts() Costs {
	return Costs{
		MemLatency:     sim.Ns(80),
		MMIOWriteCPU:   sim.Ns(60),
		RegReadLatency: sim.Ns(32), // four fabric cycles at 125 MHz
		CfgService:     sim.Ns(100),
		APICDelay:      sim.Ns(300),
	}
}

// mmioWindowBase is where the enumerator starts assigning BARs.
const mmioWindowBase = 0xe000_0000

// RootComplex is the host side of the interconnect: it owns host
// memory (as the target of device DMA), routes host MMIO to endpoint
// BARs, and delivers MSI-X interrupts to the platform sink.
type RootComplex struct {
	sim     *sim.Sim
	Mem     *mem.Memory
	costs   Costs
	eps     []*Endpoint
	irqSink func(ep *Endpoint, vector int)
	metrics *telemetry.Registry
	faults  *faults.Injector

	nextBAR uint64
	routes  []barRoute

	mmioWriteOps []*mmioWriteOp
	mmioReadOps  []*mmioReadOp
}

type barRoute struct {
	ep   *Endpoint
	bar  int
	base uint64
	size uint64
}

// NewRootComplex returns a root complex over host memory m.
func NewRootComplex(s *sim.Sim, m *mem.Memory, costs Costs) *RootComplex {
	return &RootComplex{sim: s, Mem: m, costs: costs, nextBAR: mmioWindowBase}
}

// Costs returns the platform latency constants.
func (rc *RootComplex) Costs() Costs { return rc.costs }

// SetIRQSink installs the platform interrupt handler (the host model's
// interrupt controller).
func (rc *RootComplex) SetIRQSink(fn func(ep *Endpoint, vector int)) { rc.irqSink = fn }

// Attach connects a new endpoint with the given config space over a
// fresh link. Device models decorate the returned endpoint with BAR
// handlers before enumeration runs.
func (rc *RootComplex) Attach(name string, cfg *ConfigSpace, link LinkConfig) *Endpoint {
	ep := &Endpoint{
		sim:   rc.sim,
		name:  name,
		cfg:   cfg,
		link:  NewLink(rc.sim, link),
		rc:    rc,
		stats: NewStats(),
	}
	if rc.metrics != nil {
		ep.met = newEPMetrics(rc.metrics)
	}
	rc.eps = append(rc.eps, ep)
	return ep
}

// Endpoints lists attached endpoints in attach order.
func (rc *RootComplex) Endpoints() []*Endpoint { return rc.eps }

func (rc *RootComplex) route(addr uint64) (ep *Endpoint, bar int, off uint64) {
	for _, r := range rc.routes {
		if addr >= r.base && addr < r.base+r.size {
			return r.ep, r.bar, addr - r.base
		}
	}
	panic(fmt.Sprintf("pcie: MMIO address %#x not mapped to any BAR", addr))
}

// ConfigRead32 performs a configuration read of the given endpoint,
// blocking the calling host process for the bus round trip.
func (rc *RootComplex) ConfigRead32(p *sim.Proc, ep *Endpoint, off int) uint32 {
	var v uint32
	done := sim.NewTrigger(rc.sim, "cfgrd")
	sp := rc.sim.BeginSpan(telemetry.LayerPCIe, "cfg-read")
	ep.countDown(TLPConfigRead, 0)
	ep.link.Down(0, "CfgRd", func() {
		rc.sim.After(rc.costs.CfgService, "ep:cfg", func() {
			v = ep.cfg.Read32(off)
			ep.countUp(TLPCompletion, 4)
			ep.link.Up(4, "CplD", done.Fire)
		})
	})
	done.Wait(p)
	sp.End()
	return v
}

// ConfigWrite32 performs a configuration write, blocking the calling
// host process until the completion for the non-posted write returns.
func (rc *RootComplex) ConfigWrite32(p *sim.Proc, ep *Endpoint, off int, v uint32) {
	done := sim.NewTrigger(rc.sim, "cfgwr")
	sp := rc.sim.BeginSpan(telemetry.LayerPCIe, "cfg-write")
	ep.countDown(TLPConfigWrite, 4)
	ep.link.Down(4, "CfgWr", func() {
		rc.sim.After(rc.costs.CfgService, "ep:cfg", func() {
			ep.cfg.Write32(off, v)
			ep.countUp(TLPCompletion, 0)
			ep.link.Up(0, "Cpl", done.Fire)
		})
	})
	done.Wait(p)
	sp.End()
}

// mmioWriteOp is the pooled delivery state for one posted MMIO write:
// the arrival callback is built once per op, so doorbell writes — the
// per-packet notification primitive of both driver stacks — do not
// allocate.
type mmioWriteOp struct {
	rc      *RootComplex
	ep      *Endpoint
	bar     int
	off     uint64
	size    int
	v       uint64
	sp      sim.SpanRef
	deliver func()
}

func (rc *RootComplex) getMMIOWrite() *mmioWriteOp {
	if n := len(rc.mmioWriteOps); n > 0 {
		op := rc.mmioWriteOps[n-1]
		rc.mmioWriteOps[n-1] = nil
		rc.mmioWriteOps = rc.mmioWriteOps[:n-1]
		return op
	}
	op := &mmioWriteOp{rc: rc}
	op.deliver = func() {
		// Fault hooks run only on faulted sessions (nil-safe Fire): a
		// dropped TLP or a stall window swallows the write at device
		// ingress — the link accounting above already happened, exactly
		// like real posted-write loss.
		if op.rc.faults.Fire(faults.TLPDrop) || op.ep.stalled() {
			op.sp.End()
			op.sp = sim.SpanRef{}
			op.ep = nil
			op.rc.mmioWriteOps = append(op.rc.mmioWriteOps, op)
			return
		}
		op.ep.barWrite(op.bar, op.off, op.size, op.v)
		op.sp.End()
		op.sp = sim.SpanRef{}
		op.ep = nil
		op.rc.mmioWriteOps = append(op.rc.mmioWriteOps, op)
	}
	return op
}

// mmioReadOp is the pooled round-trip state for one non-posted MMIO
// read (MRd down, register decode, CplD up, trigger fire).
type mmioReadOp struct {
	rc    *RootComplex
	ep    *Endpoint
	bar   int
	off   uint64
	size  int
	v     uint64
	done  *sim.Trigger
	onMRd func()
	onReg func()
	fire  func()
}

func (rc *RootComplex) getMMIORead() *mmioReadOp {
	if n := len(rc.mmioReadOps); n > 0 {
		op := rc.mmioReadOps[n-1]
		rc.mmioReadOps[n-1] = nil
		rc.mmioReadOps = rc.mmioReadOps[:n-1]
		return op
	}
	op := &mmioReadOp{rc: rc, done: sim.NewTrigger(rc.sim, "mmiord")}
	op.fire = op.done.Fire
	op.onMRd = func() {
		op.rc.sim.After(op.rc.costs.RegReadLatency, "ep:reg", op.onReg)
	}
	op.onReg = func() {
		if inj := op.rc.faults; inj != nil {
			if inj.Fire(faults.Stall) {
				op.ep.beginStall()
			}
			if op.ep.stalled() || inj.Fire(faults.CplPoison) {
				// Poisoned completion: all-ones instead of register
				// data, surfaced in pcie.completion.errors so a failed
				// read is distinguishable from a register that reads 0.
				op.v = allOnes(op.size)
				op.ep.cplError()
				op.ep.countUp(TLPCompletion, op.size)
				op.ep.link.Up(op.size, "CplD", op.fire)
				return
			}
		}
		op.v = op.ep.barRead(op.bar, op.off, op.size)
		op.ep.countUp(TLPCompletion, op.size)
		op.ep.link.Up(op.size, "CplD", op.fire)
	}
	return op
}

// MMIOWrite posts a write of size bytes (1, 2, 4 or 8) to a BAR
// address. The calling host process is charged only the CPU-side cost
// of the uncached store; delivery is asynchronous (posted semantics) —
// this asymmetry versus MMIORead is exactly why VirtIO's single
// doorbell write is cheap for the driver (paper §IV-A).
func (rc *RootComplex) MMIOWrite(p *sim.Proc, addr uint64, size int, v uint64) {
	ep, bar, off := rc.route(addr)
	p.Sleep(rc.costs.MMIOWriteCPU)
	op := rc.getMMIOWrite()
	op.ep, op.bar, op.off, op.size, op.v = ep, bar, off, size, v
	// Posted write: the span covers CPU post through device-side decode
	// and ends in the pooled op's arrival callback.
	//fvlint:ignore metricname span ends in the pooled op's delivery callback
	op.sp = rc.sim.BeginSpan(telemetry.LayerPCIe, "mmio-write")
	ep.countDown(TLPMemWrite, size)
	ep.link.Down(size, "MWr", op.deliver)
}

// MMIORead performs a non-posted read of size bytes from a BAR address,
// blocking the calling host process for the full bus round trip.
func (rc *RootComplex) MMIORead(p *sim.Proc, addr uint64, size int) uint64 {
	ep, bar, off := rc.route(addr)
	op := rc.getMMIORead()
	op.ep, op.bar, op.off, op.size = ep, bar, off, size
	sp := rc.sim.BeginSpan(telemetry.LayerPCIe, "mmio-read")
	ep.countDown(TLPMemRead, 0)
	if rc.faults.Fire(faults.CplTimeout) {
		// The read request vanishes in the fabric; the completion
		// timeout expires and the host observes all-ones.
		op.v = allOnes(size)
		ep.cplError()
		rc.sim.After(cplTimeoutDelay, "pcie:cpl-timeout", op.fire)
	} else {
		ep.link.Down(0, "MRd", op.onMRd)
	}
	op.done.Wait(p)
	op.done.Reset()
	v := op.v
	op.ep = nil
	rc.mmioReadOps = append(rc.mmioReadOps, op)
	sp.End()
	return v
}

// DeviceInfo is the result of enumerating one endpoint.
type DeviceInfo struct {
	EP       *Endpoint
	VendorID uint16
	DeviceID uint16
	BAR      [6]uint64 // assigned base addresses (0 if absent)
}

// Enumerate scans all attached endpoints the way the kernel's PCI core
// does at boot: read IDs, size the BARs with the all-ones protocol,
// assign addresses from the MMIO window, then enable memory decoding
// and bus mastering.
func (rc *RootComplex) Enumerate(p *sim.Proc) []*DeviceInfo {
	var out []*DeviceInfo
	for _, ep := range rc.eps {
		idreg := rc.ConfigRead32(p, ep, CfgVendorID)
		if idreg == 0xffffffff {
			continue
		}
		info := &DeviceInfo{EP: ep, VendorID: uint16(idreg), DeviceID: uint16(idreg >> 16)}
		for i := 0; i < 6; i++ {
			reg := CfgBAR0 + 4*i
			rc.ConfigWrite32(p, ep, reg, 0xffffffff)
			mask := rc.ConfigRead32(p, ep, reg)
			if mask == 0 {
				continue
			}
			size := uint64(^(mask &^ 0xf) + 1)
			base := (rc.nextBAR + size - 1) &^ (size - 1)
			rc.nextBAR = base + size
			rc.ConfigWrite32(p, ep, reg, uint32(base))
			rc.routes = append(rc.routes, barRoute{ep: ep, bar: i, base: base, size: size})
			info.BAR[i] = base
		}
		rc.ConfigWrite32(p, ep, CfgCommand, CmdMemEnable|CmdBusMaster)
		out = append(out, info)
	}
	return out
}
