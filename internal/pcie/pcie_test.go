package pcie

import (
	"bytes"
	"testing"
	"testing/quick"

	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/sim"
)

func TestSplitPayload(t *testing.T) {
	cases := []struct {
		n, max int
		want   []int
	}{
		{0, 128, nil},
		{1, 128, []int{1}},
		{128, 128, []int{128}},
		{129, 128, []int{128, 1}},
		{1024, 128, []int{128, 128, 128, 128, 128, 128, 128, 128}},
		{300, 256, []int{256, 44}},
	}
	for _, c := range cases {
		got := SplitPayload(c.n, c.max)
		if len(got) != len(c.want) {
			t.Fatalf("SplitPayload(%d,%d) = %v, want %v", c.n, c.max, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("SplitPayload(%d,%d) = %v, want %v", c.n, c.max, got, c.want)
			}
		}
	}
}

func TestSplitPayloadProperty(t *testing.T) {
	f := func(n uint16, maxRaw uint8) bool {
		max := int(maxRaw)%512 + 1
		chunks := SplitPayload(int(n), max)
		sum := 0
		for i, c := range chunks {
			if c <= 0 || c > max {
				return false
			}
			if c < max && i != len(chunks)-1 {
				return false // only the tail chunk may be short
			}
			sum += c
		}
		return sum == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinkRates(t *testing.T) {
	g2 := DefaultGen2x2()
	if got := g2.BytesPerNs(); got != 1.0 {
		t.Fatalf("Gen2 x2 = %v B/ns, want 1.0", got)
	}
	g3 := Gen3x4()
	if got := g3.BytesPerNs(); got < 3.9 || got > 4.0 {
		t.Fatalf("Gen3 x4 = %v B/ns, want ~3.94", got)
	}
}

func TestLinkSerializationAndOrdering(t *testing.T) {
	s := sim.New()
	l := NewLink(s, LinkConfig{Gen: 2, Lanes: 2, MPS: 128, MRRS: 512, Prop: sim.Ns(200)})
	var arrivals []sim.Time
	var order []int
	// Two TLPs queued back-to-back: the second serializes after the first.
	l.Down(104, "a", func() { arrivals = append(arrivals, s.Now()); order = append(order, 1) })
	l.Down(104, "b", func() { arrivals = append(arrivals, s.Now()); order = append(order, 2) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 104+24 = 128 wire bytes at 1 B/ns => 128ns serialization each.
	want1 := sim.Time(sim.Ns(128 + 200))
	want2 := sim.Time(sim.Ns(256 + 200))
	if arrivals[0] != want1 || arrivals[1] != want2 {
		t.Fatalf("arrivals = %v, want [%v %v]", arrivals, want1, want2)
	}
	if order[0] != 1 || order[1] != 2 {
		t.Fatalf("FIFO violated: %v", order)
	}
}

func TestLinkDirectionsIndependent(t *testing.T) {
	s := sim.New()
	l := NewLink(s, DefaultGen2x2())
	var down, up sim.Time
	l.Down(1000, "d", func() { down = s.Now() })
	l.Up(0, "u", func() { up = s.Now() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// The upstream TLP must not queue behind the big downstream one.
	if up >= down {
		t.Fatalf("up arrived at %v, down at %v; directions should be independent", up, down)
	}
}

func TestConfigSpaceIDsAndCaps(t *testing.T) {
	c := NewConfigSpace(0x1af4, 0x1041, 0x020000, 0x1af4, 0x0001)
	if got := c.Read32(CfgVendorID); got != 0x10411af4 {
		t.Fatalf("ID dword = %#x", got)
	}
	off1 := c.AddCapability(CapIDMSIX, []byte{0x03, 0x00, 0, 0, 0, 0, 0, 0, 0, 0})
	off2 := c.AddCapability(CapIDVendor, []byte{16, 1, 4, 0, 0, 0})
	caps := c.Capabilities()
	if len(caps) != 2 {
		t.Fatalf("caps = %+v", caps)
	}
	if caps[0].ID != CapIDMSIX || caps[0].Offset != off1 {
		t.Fatalf("cap0 = %+v", caps[0])
	}
	if caps[1].ID != CapIDVendor || caps[1].Offset != off2 {
		t.Fatalf("cap1 = %+v", caps[1])
	}
	if c.Read32(CfgStatus&^3)>>16&StatusCapList == 0 {
		t.Fatal("capability-list status bit not set")
	}
}

func TestConfigBARSizingProtocol(t *testing.T) {
	c := NewConfigSpace(0x10ee, 0x7024, 0x058000, 0x10ee, 0x0007)
	c.SetBARSize(0, 1<<16)
	c.SetBARSize(1, 1<<20)
	// Probe BAR0.
	c.Write32(CfgBAR0, 0xffffffff)
	if got := c.Read32(CfgBAR0); got != ^uint32(1<<16-1)&0xfffffff0 {
		t.Fatalf("BAR0 size mask = %#x", got)
	}
	// Assign an address; low bits must be cleared.
	c.Write32(CfgBAR0, 0xe0001234)
	if got := c.BARAddr(0); got != 0xe0000000 {
		t.Fatalf("BAR0 addr = %#x", got)
	}
	// Unimplemented BAR reads zero, ignores writes.
	c.Write32(CfgBAR0+8, 0xffffffff)
	if got := c.Read32(CfgBAR0 + 8); got != 0 {
		t.Fatalf("BAR2 = %#x, want 0", got)
	}
}

func TestConfigCommandRegister(t *testing.T) {
	c := NewConfigSpace(1, 2, 0, 0, 0)
	if c.MemEnabled() || c.BusMaster() {
		t.Fatal("fresh device should have decoding off")
	}
	c.Write32(CfgCommand, CmdMemEnable|CmdBusMaster)
	if !c.MemEnabled() || !c.BusMaster() {
		t.Fatal("command write did not take")
	}
	// Vendor ID must be read-only.
	c.Write32(CfgVendorID, 0xdead)
	if got := c.Read32(CfgVendorID); uint16(got) != 1 {
		t.Fatalf("vendor overwritten: %#x", got)
	}
}

// testbed wires one endpoint with a small register BAR and 64KB BRAM-ish
// scratch behind BAR1.
type testDev struct {
	regs map[uint64]uint64
}

func newTestbed(t *testing.T) (*sim.Sim, *RootComplex, *Endpoint, *testDev) {
	t.Helper()
	s := sim.New()
	m := mem.New(1 << 20)
	rc := NewRootComplex(s, m, DefaultCosts())
	cfg := NewConfigSpace(0x10ee, 0x7024, 0x058000, 0x10ee, 0x0007)
	cfg.SetBARSize(0, 1<<12)
	ep := rc.Attach("dut", cfg, DefaultGen2x2())
	dev := &testDev{regs: map[uint64]uint64{}}
	ep.SetBarHandlers(0, BarHandlers{
		Read:  func(off uint64, size int) uint64 { return dev.regs[off] },
		Write: func(off uint64, size int, v uint64) { dev.regs[off] = v },
	})
	ep.ConfigureMSIX(4)
	return s, rc, ep, dev
}

func TestEnumerateAndMMIO(t *testing.T) {
	s, rc, ep, dev := newTestbed(t)
	var info *DeviceInfo
	s.Go("host", func(p *sim.Proc) {
		infos := rc.Enumerate(p)
		if len(infos) != 1 {
			t.Errorf("enumerated %d devices", len(infos))
			return
		}
		info = infos[0]
		if info.VendorID != 0x10ee || info.DeviceID != 0x7024 {
			t.Errorf("IDs = %04x:%04x", info.VendorID, info.DeviceID)
		}
		if info.BAR[0] == 0 {
			t.Error("BAR0 unassigned")
		}
		rc.MMIOWrite(p, info.BAR[0]+0x10, 4, 0xabcd)
		// A posted write then a read: the read must observe the write
		// (same direction, FIFO ordering).
		if got := rc.MMIORead(p, info.BAR[0]+0x10, 4); got != 0xabcd {
			t.Errorf("readback = %#x", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ep.Config().BusMaster() {
		t.Fatal("enumeration did not enable bus mastering")
	}
	if dev.regs[0x10] != 0xabcd {
		t.Fatal("device register not written")
	}
}

func TestMMIOReadLatency(t *testing.T) {
	s, rc, _, dev := newTestbed(t)
	dev.regs[0] = 7
	var start, end sim.Time
	s.Go("host", func(p *sim.Proc) {
		info := rc.Enumerate(p)[0]
		start = p.Now()
		_ = rc.MMIORead(p, info.BAR[0], 4)
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	rtt := end.Sub(start)
	// MRd down: 24B ser (24ns) + 200ns prop; 32ns reg; CplD up: 28B ser + 200ns.
	want := sim.Ns(24 + 200 + 32 + 28 + 200)
	if rtt != want {
		t.Fatalf("MMIO read RTT = %v, want %v", rtt, want)
	}
}

func TestMMIOWriteIsPosted(t *testing.T) {
	s, rc, _, _ := newTestbed(t)
	var cpuTime sim.Duration
	s.Go("host", func(p *sim.Proc) {
		info := rc.Enumerate(p)[0]
		t0 := p.Now()
		rc.MMIOWrite(p, info.BAR[0], 4, 1)
		cpuTime = p.Now().Sub(t0)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if cpuTime != DefaultCosts().MMIOWriteCPU {
		t.Fatalf("posted write cost = %v, want %v", cpuTime, DefaultCosts().MMIOWriteCPU)
	}
}

func TestDMAReadWriteRoundTrip(t *testing.T) {
	s, rc, ep, _ := newTestbed(t)
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	rc.Mem.Write(0x4000, payload)
	var got []byte
	s.Go("host", func(p *sim.Proc) { rc.Enumerate(p) })
	s.GoAfter(sim.Us(100), "dev", func(p *sim.Proc) {
		got = ep.DMARead(p, 0x4000, len(payload))
		ep.DMAWrite(p, 0x8000, got)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("DMA read returned wrong data")
	}
	if !bytes.Equal(rc.Mem.Read(0x8000, len(payload)), payload) {
		t.Fatal("DMA write corrupted data")
	}
}

func TestDMAReadSplitsRequests(t *testing.T) {
	s, rc, ep, _ := newTestbed(t)
	n := 1024 // MRRS=512 -> 2 MRd; MPS=128 -> 8 CplD
	rc.Mem.Fill(0, n, 0x55)
	s.Go("host", func(p *sim.Proc) { rc.Enumerate(p) })
	s.GoAfter(sim.Us(100), "dev", func(p *sim.Proc) {
		ep.DMARead(p, 0, n)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := ep.Stats().UpTLPs[TLPMemRead]; got != 2 {
		t.Fatalf("MRd count = %d, want 2", got)
	}
	if got := ep.Stats().DownTLPs[TLPCompletion]; got != 8 {
		t.Fatalf("CplD count = %d, want 8", got)
	}
	if got := ep.Stats().DownBytes; got < 1024 {
		t.Fatalf("completion bytes = %d", got)
	}
}

func TestDMAWithoutBusMasterPanics(t *testing.T) {
	s, _, ep, _ := newTestbed(t)
	panicked := false
	s.Go("dev", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		ep.DMARead(p, 0, 4)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("expected panic without bus mastering")
	}
}

func TestMSIXDelivery(t *testing.T) {
	s, rc, ep, _ := newTestbed(t)
	var gotVec = -1
	var at sim.Time
	rc.SetIRQSink(func(e *Endpoint, v int) {
		gotVec = v
		at = s.Now()
	})
	var raised sim.Time
	s.Go("host", func(p *sim.Proc) { rc.Enumerate(p) })
	s.GoAfter(sim.Us(50), "dev", func(p *sim.Proc) {
		raised = p.Now()
		ep.RaiseMSIX(2)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if gotVec != 2 {
		t.Fatalf("vector = %d, want 2", gotVec)
	}
	// 28B ser + 200ns prop + 300ns APIC.
	want := raised.Add(sim.Ns(28 + 200 + 300))
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
	if ep.Stats().Interrupts != 1 {
		t.Fatalf("interrupt count = %d", ep.Stats().Interrupts)
	}
}

func TestMSIXMasking(t *testing.T) {
	s, rc, ep, _ := newTestbed(t)
	fired := 0
	rc.SetIRQSink(func(e *Endpoint, v int) { fired++ })
	s.Go("host", func(p *sim.Proc) { rc.Enumerate(p) })
	s.GoAfter(sim.Us(50), "dev", func(p *sim.Proc) {
		ep.MaskMSIX(0, true)
		ep.RaiseMSIX(0)
		ep.MaskMSIX(0, false)
		ep.RaiseMSIX(0)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (masked raise dropped)", fired)
	}
}

func TestDMABandwidthScalesWithLink(t *testing.T) {
	run := func(link LinkConfig) sim.Duration {
		s := sim.New()
		m := mem.New(1 << 20)
		rc := NewRootComplex(s, m, DefaultCosts())
		cfg := NewConfigSpace(1, 2, 0, 0, 0)
		cfg.SetBARSize(0, 4096)
		ep := rc.Attach("d", cfg, link)
		ep.SetBarHandlers(0, BarHandlers{})
		var dur sim.Duration
		s.Go("host", func(p *sim.Proc) { rc.Enumerate(p) })
		s.GoAfter(sim.Us(10), "dev", func(p *sim.Proc) {
			t0 := p.Now()
			ep.DMARead(p, 0, 64<<10)
			dur = p.Now().Sub(t0)
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return dur
	}
	slow := run(DefaultGen2x2())
	fast := run(Gen3x4())
	// Sequential reads are latency-bound, so the speedup is less than the
	// raw 4x bandwidth ratio, but a faster link must still win clearly.
	if fast*5 >= slow*3 {
		t.Fatalf("Gen3x4 (%v) should be well under 60%% of Gen2x2 (%v)", fast, slow)
	}
}

func TestStatsCounting(t *testing.T) {
	st := NewStats()
	st.countDown(TLPMemWrite, 64)
	st.countUp(TLPCompletion, 128)
	if st.DownTLPs[TLPMemWrite] != 1 || st.DownBytes != 64 {
		t.Fatalf("down stats wrong: %+v", st)
	}
	if st.UpTLPs[TLPCompletion] != 1 || st.UpBytes != 128 {
		t.Fatalf("up stats wrong: %+v", st)
	}
}

func TestTLPKindString(t *testing.T) {
	names := map[TLPKind]string{
		TLPMemRead: "MRd", TLPMemWrite: "MWr", TLPCompletion: "CplD",
		TLPConfigRead: "CfgRd", TLPConfigWrite: "CfgWr", TLPMessage: "Msg",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
