// Package pcie models a PCI Express point-to-point interconnect at the
// transaction layer: TLP costs, per-direction serialization, config
// space with a walkable capability chain, BAR routing, bus-mastered
// DMA into host memory, and MSI-X delivery.
//
// The model is deliberately at TLP granularity — the latency gap the
// paper measures between driver stacks comes from how many bus
// transactions of which kind (posted writes, non-posted reads,
// completions) each design issues per operation, and from payload
// serialization at the Gen2 x2 line rate of the Artix-7 testbed.
package pcie

import "fmt"

// TLPKind enumerates the transaction-layer packet types the model prices.
type TLPKind int

// TLP kinds.
const (
	TLPMemRead  TLPKind = iota // MRd: non-posted, expects completion(s)
	TLPMemWrite                // MWr: posted
	TLPCompletion
	TLPConfigRead
	TLPConfigWrite
	TLPMessage // MSI/MSI-X are memory writes, but counted separately
)

// String names the TLP kind.
func (k TLPKind) String() string {
	switch k {
	case TLPMemRead:
		return "MRd"
	case TLPMemWrite:
		return "MWr"
	case TLPCompletion:
		return "CplD"
	case TLPConfigRead:
		return "CfgRd"
	case TLPConfigWrite:
		return "CfgWr"
	case TLPMessage:
		return "Msg"
	default:
		return fmt.Sprintf("TLPKind(%d)", int(k))
	}
}

// TLPOverhead is the per-TLP framing cost on the wire in bytes:
// STP/end framing (2) + sequence number (2) + 3-DW or 4-DW header
// (12–16) + LCRC (4). We use the 64-bit-address 4-DW figure.
const TLPOverhead = 24

// WireBytes reports the on-wire size of a TLP carrying n payload bytes.
func WireBytes(payload int) int { return TLPOverhead + payload }

// SplitPayload slices a transfer of n bytes into chunks of at most max
// bytes (the Max_Payload_Size for writes/completions, Max_Read_Request
// for read requests). It returns the chunk sizes in transfer order.
func SplitPayload(n, max int) []int {
	if max <= 0 {
		panic("pcie: non-positive split size")
	}
	if n < 0 {
		panic("pcie: negative payload")
	}
	if n == 0 {
		return nil
	}
	chunks := make([]int, 0, (n+max-1)/max)
	for n > 0 {
		c := n
		if c > max {
			c = max
		}
		chunks = append(chunks, c)
		n -= c
	}
	return chunks
}

// Stats counts bus traffic on one endpoint, split by direction.
type Stats struct {
	DownTLPs   map[TLPKind]int // host -> device
	UpTLPs     map[TLPKind]int // device -> host
	DownBytes  int64           // payload bytes host -> device
	UpBytes    int64           // payload bytes device -> host
	Interrupts int
}

// NewStats returns zeroed counters.
func NewStats() *Stats {
	return &Stats{DownTLPs: make(map[TLPKind]int), UpTLPs: make(map[TLPKind]int)}
}

func (s *Stats) countDown(k TLPKind, payload int) {
	s.DownTLPs[k]++
	s.DownBytes += int64(payload)
}

func (s *Stats) countUp(k TLPKind, payload int) {
	s.UpTLPs[k]++
	s.UpBytes += int64(payload)
}
