package pcie

import "fpgavirtio/internal/telemetry"

// tlpKinds lists every TLPKind for metric pre-registration.
var tlpKinds = []TLPKind{
	TLPMemRead, TLPMemWrite, TLPCompletion, TLPConfigRead, TLPConfigWrite, TLPMessage,
}

// epMetrics caches the endpoint's telemetry instruments so the
// per-TLP hot path does a slice index, not a registry lookup.
type epMetrics struct {
	down, up           []*telemetry.Counter // indexed by TLPKind
	downBytes, upBytes *telemetry.Counter
	interrupts         *telemetry.Counter
}

func newEPMetrics(reg *telemetry.Registry) *epMetrics {
	m := &epMetrics{
		down:       make([]*telemetry.Counter, len(tlpKinds)),
		up:         make([]*telemetry.Counter, len(tlpKinds)),
		downBytes:  reg.Counter(telemetry.MetricPCIeDownBytes),
		upBytes:    reg.Counter(telemetry.MetricPCIeUpBytes),
		interrupts: reg.Counter(telemetry.MetricPCIeMSIXRaised),
	}
	for _, k := range tlpKinds {
		m.down[k] = reg.Counter(telemetry.MetricPCIeDownTLP(k.String()))
		m.up[k] = reg.Counter(telemetry.MetricPCIeUpTLP(k.String()))
	}
	return m
}

// SetMetrics installs a telemetry registry on the root complex.
// Endpoints attached afterwards register TLP/byte/interrupt counters;
// a nil registry (the default for bare-pcie tests) disables metrics.
func (rc *RootComplex) SetMetrics(reg *telemetry.Registry) { rc.metrics = reg }

// Metrics returns the installed registry (nil when none). Device
// models attached to this root complex register their instruments
// here; the telemetry registry is nil-safe, so callers use the result
// unconditionally.
func (rc *RootComplex) Metrics() *telemetry.Registry { return rc.metrics }

// Metrics returns the owning root complex's registry (nil when
// metrics are disabled). Device-side models that only hold an
// Endpoint use this to register their instruments.
func (ep *Endpoint) Metrics() *telemetry.Registry {
	if ep.rc == nil {
		return nil
	}
	return ep.rc.metrics
}

// countDown records a host->device TLP in both the per-endpoint Stats
// and, when enabled, the telemetry registry.
func (ep *Endpoint) countDown(k TLPKind, payload int) {
	ep.stats.countDown(k, payload)
	if ep.met != nil {
		ep.met.down[k].Inc()
		ep.met.downBytes.Add(int64(payload))
	}
}

// countUp records a device->host TLP.
func (ep *Endpoint) countUp(k TLPKind, payload int) {
	ep.stats.countUp(k, payload)
	if ep.met != nil {
		ep.met.up[k].Inc()
		ep.met.upBytes.Add(int64(payload))
	}
}
