package pcie

import "fmt"

// This file carries the wire format under the cost model above: a
// byte-exact encoder/decoder for the TLP header variants the testbed
// exchanges (memory read/write, completion, type-0 config, message).
// Headers follow PCIe 3.0 §2.2: big-endian dwords, fmt/type in byte 0,
// the 10-bit length field counting payload dwords.

// TLP format-field values (bits 7:5 of header byte 0).
const (
	fmt3DW     = 0x0 // 3-DW header, no data
	fmt4DW     = 0x1 // 4-DW header, no data
	fmt3DWData = 0x2 // 3-DW header, with data
	fmt4DWData = 0x3 // 4-DW header, with data
)

// TLP type-field values (bits 4:0 of header byte 0).
const (
	typeMem    = 0x00
	typeCfg0   = 0x04
	typeCpl    = 0x0A
	typeMsgRC  = 0x10 // Msg, routed to root complex
	maxLenDW   = 1024 // the 10-bit length field's 0 encoding
	maxByteCnt = 4096 // the 12-bit byte-count field's 0 encoding
)

// TLPHeader is one decoded transaction-layer packet header. Fields
// beyond Kind are populated per kind: memory requests carry Addr and
// byte enables, completions carry the completer/status/byte-count
// tuple, config requests carry the target BDF and register, messages
// carry the message code.
type TLPHeader struct {
	Kind TLPKind
	// LengthDW is the data payload length in dwords; 0 for TLPs
	// without a data payload.
	LengthDW  int
	Requester uint16
	Tag       uint8

	// Memory requests.
	Addr    uint64
	FirstBE uint8
	LastBE  uint8

	// Completions.
	Completer uint16
	Status    uint8
	ByteCount int
	LowerAddr uint8

	// Config requests.
	BDF      uint16
	Register uint16

	// Messages.
	MsgCode uint8
}

func (h TLPHeader) hasData() bool {
	switch h.Kind {
	case TLPMemWrite, TLPConfigWrite:
		return true
	case TLPCompletion:
		return h.LengthDW > 0
	default:
		return false
	}
}

func (h TLPHeader) is4DW() bool {
	switch h.Kind {
	case TLPMemRead, TLPMemWrite:
		return h.Addr >= 1<<32
	case TLPMessage:
		return true
	default:
		return false
	}
}

func put16(b []byte, v uint16) { b[0], b[1] = byte(v>>8), byte(v) }
func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
func get16(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }
func get32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// EncodeTLP serializes a header and its payload into wire bytes. The
// payload length must match the header's dword count exactly (writes
// and data completions), or be empty (everything else).
func EncodeTLP(h TLPHeader, payload []byte) ([]byte, error) {
	if h.hasData() {
		if h.LengthDW < 1 || h.LengthDW > maxLenDW {
			return nil, fmt.Errorf("pcie: tlp length %d dwords out of range 1..%d", h.LengthDW, maxLenDW)
		}
		if len(payload) != h.LengthDW*4 {
			return nil, fmt.Errorf("pcie: tlp payload %d bytes, header says %d dwords", len(payload), h.LengthDW)
		}
	} else {
		if len(payload) != 0 {
			return nil, fmt.Errorf("pcie: %s tlp carries no data, got %d payload bytes", h.Kind, len(payload))
		}
		if h.Kind == TLPMemRead && (h.LengthDW < 1 || h.LengthDW > maxLenDW) {
			return nil, fmt.Errorf("pcie: read request for %d dwords out of range 1..%d", h.LengthDW, maxLenDW)
		}
	}

	headerLen := 12
	if h.is4DW() {
		headerLen = 16
	}
	b := make([]byte, headerLen, headerLen+len(payload))

	var f, typ byte
	switch h.Kind {
	case TLPMemRead:
		f, typ = fmt3DW, typeMem
	case TLPMemWrite:
		f, typ = fmt3DWData, typeMem
	case TLPCompletion:
		f, typ = fmt3DW, typeCpl
		if h.LengthDW > 0 {
			f = fmt3DWData
		}
	case TLPConfigRead:
		f, typ = fmt3DW, typeCfg0
	case TLPConfigWrite:
		f, typ = fmt3DWData, typeCfg0
	case TLPMessage:
		f, typ = fmt4DW, typeMsgRC
	default:
		return nil, fmt.Errorf("pcie: cannot encode tlp kind %v", h.Kind)
	}
	if h.is4DW() && h.Kind != TLPMessage {
		f |= 0x1 // 3-DW formats + 1 = the matching 4-DW format
	}
	b[0] = f<<5 | typ

	lenField := h.LengthDW
	if h.Kind == TLPMemRead || h.Kind == TLPConfigRead || h.hasData() {
		if lenField == maxLenDW {
			lenField = 0
		}
		b[2] = byte(lenField >> 8 & 0x3)
		b[3] = byte(lenField)
	}

	switch h.Kind {
	case TLPMemRead, TLPMemWrite:
		if h.Addr&0x3 != 0 {
			return nil, fmt.Errorf("pcie: memory tlp address %#x not dword-aligned", h.Addr)
		}
		if h.FirstBE > 0xF || h.LastBE > 0xF {
			return nil, fmt.Errorf("pcie: byte enables %#x/%#x out of range", h.FirstBE, h.LastBE)
		}
		if h.LengthDW == 1 && h.LastBE != 0 {
			return nil, fmt.Errorf("pcie: single-dword tlp must clear last-BE")
		}
		put16(b[4:], h.Requester)
		b[6] = h.Tag
		b[7] = h.LastBE<<4 | h.FirstBE
		if h.is4DW() {
			put32(b[8:], uint32(h.Addr>>32))
			put32(b[12:], uint32(h.Addr))
		} else {
			put32(b[8:], uint32(h.Addr))
		}
	case TLPCompletion:
		if h.Status > 0x7 {
			return nil, fmt.Errorf("pcie: completion status %#x out of range", h.Status)
		}
		if h.ByteCount < 1 || h.ByteCount > maxByteCnt {
			return nil, fmt.Errorf("pcie: completion byte count %d out of range 1..%d", h.ByteCount, maxByteCnt)
		}
		if h.LowerAddr > 0x7F {
			return nil, fmt.Errorf("pcie: completion lower address %#x out of range", h.LowerAddr)
		}
		bc := h.ByteCount
		if bc == maxByteCnt {
			bc = 0
		}
		put16(b[4:], h.Completer)
		b[6] = h.Status<<5 | byte(bc>>8&0xF)
		b[7] = byte(bc)
		put16(b[8:], h.Requester)
		b[10] = h.Tag
		b[11] = h.LowerAddr
	case TLPConfigRead, TLPConfigWrite:
		if h.LengthDW != 1 {
			return nil, fmt.Errorf("pcie: config tlp length must be 1 dword, got %d", h.LengthDW)
		}
		if h.Register > 0x3FF {
			return nil, fmt.Errorf("pcie: config register %#x out of range", h.Register)
		}
		put16(b[4:], h.Requester)
		b[6] = h.Tag
		b[7] = h.LastBE<<4 | h.FirstBE
		put16(b[8:], h.BDF)
		b[10] = byte(h.Register >> 6 & 0xF) // extended register number
		b[11] = byte(h.Register&0x3F) << 2
	case TLPMessage:
		put16(b[4:], h.Requester)
		b[6] = h.Tag
		b[7] = h.MsgCode
	}
	return append(b, payload...), nil
}

// DecodeTLP parses wire bytes into a header and payload, validating
// every structural invariant EncodeTLP enforces. Malformed input
// returns an error; decode never panics regardless of input.
func DecodeTLP(b []byte) (TLPHeader, []byte, error) {
	var h TLPHeader
	if len(b) < 12 {
		return h, nil, fmt.Errorf("pcie: tlp of %d bytes shorter than a 3-DW header", len(b))
	}
	f := b[0] >> 5
	typ := b[0] & 0x1F
	if f > fmt4DWData {
		return h, nil, fmt.Errorf("pcie: reserved tlp fmt %#x (prefix?)", f)
	}
	if b[1] != 0 {
		return h, nil, fmt.Errorf("pcie: reserved TC/attr byte %#x not zero", b[1])
	}
	if b[2]&^0x3 != 0 {
		return h, nil, fmt.Errorf("pcie: reserved length bits %#x not zero", b[2])
	}
	is4DW := f == fmt4DW || f == fmt4DWData
	hasData := f == fmt3DWData || f == fmt4DWData
	headerLen := 12
	if is4DW {
		headerLen = 16
	}
	if len(b) < headerLen {
		return h, nil, fmt.Errorf("pcie: tlp of %d bytes shorter than its %d-byte header", len(b), headerLen)
	}
	lenField := int(b[2]&0x3)<<8 | int(b[3])

	switch {
	case typ == typeMem && !hasData:
		h.Kind = TLPMemRead
	case typ == typeMem:
		h.Kind = TLPMemWrite
	case typ == typeCpl && !is4DW:
		h.Kind = TLPCompletion
	case typ == typeCfg0 && !is4DW:
		if hasData {
			h.Kind = TLPConfigWrite
		} else {
			h.Kind = TLPConfigRead
		}
	case typ == typeMsgRC && f == fmt4DW:
		h.Kind = TLPMessage
	default:
		return h, nil, fmt.Errorf("pcie: unknown tlp fmt/type %#02x", b[0])
	}

	if hasData || h.Kind == TLPMemRead || h.Kind == TLPConfigRead {
		h.LengthDW = lenField
		if h.LengthDW == 0 {
			h.LengthDW = maxLenDW
		}
	} else if lenField != 0 {
		return h, nil, fmt.Errorf("pcie: %s tlp with nonzero length field %d", h.Kind, lenField)
	}

	payload := b[headerLen:]
	if hasData {
		if len(payload) != h.LengthDW*4 {
			return h, nil, fmt.Errorf("pcie: %s tlp payload %d bytes, header says %d dwords",
				h.Kind, len(payload), h.LengthDW)
		}
	} else if len(payload) != 0 {
		return h, nil, fmt.Errorf("pcie: %s tlp carries no data, got %d trailing bytes", h.Kind, len(payload))
	}

	switch h.Kind {
	case TLPMemRead, TLPMemWrite:
		h.Requester = get16(b[4:])
		h.Tag = b[6]
		h.LastBE, h.FirstBE = b[7]>>4, b[7]&0xF
		if is4DW {
			h.Addr = uint64(get32(b[8:]))<<32 | uint64(get32(b[12:]))
			if h.Addr < 1<<32 {
				return h, nil, fmt.Errorf("pcie: 4-DW memory tlp with 32-bit address %#x", h.Addr)
			}
		} else {
			h.Addr = uint64(get32(b[8:]))
		}
		if h.Addr&0x3 != 0 {
			return h, nil, fmt.Errorf("pcie: memory tlp address %#x not dword-aligned", h.Addr)
		}
		if h.LengthDW == 1 && h.LastBE != 0 {
			return h, nil, fmt.Errorf("pcie: single-dword tlp must clear last-BE")
		}
	case TLPCompletion:
		h.Completer = get16(b[4:])
		h.Status = b[6] >> 5
		if b[6]&0x10 != 0 {
			return h, nil, fmt.Errorf("pcie: completion BCM bit set (PCI-X only)")
		}
		h.ByteCount = int(b[6]&0xF)<<8 | int(b[7])
		if h.ByteCount == 0 {
			h.ByteCount = maxByteCnt
		}
		h.Requester = get16(b[8:])
		h.Tag = b[10]
		if b[11]&0x80 != 0 {
			return h, nil, fmt.Errorf("pcie: reserved completion bit set")
		}
		h.LowerAddr = b[11]
	case TLPConfigRead, TLPConfigWrite:
		if lenField != 1 {
			return h, nil, fmt.Errorf("pcie: config tlp length must be 1 dword, got %d", lenField)
		}
		h.Requester = get16(b[4:])
		h.Tag = b[6]
		h.LastBE, h.FirstBE = b[7]>>4, b[7]&0xF
		if h.LastBE != 0 {
			return h, nil, fmt.Errorf("pcie: config tlp must clear last-BE")
		}
		h.BDF = get16(b[8:])
		if b[10]&^0xF != 0 || b[11]&0x3 != 0 {
			return h, nil, fmt.Errorf("pcie: reserved config-request bits set")
		}
		h.Register = uint16(b[10]&0xF)<<6 | uint16(b[11]>>2)
	case TLPMessage:
		h.Requester = get16(b[4:])
		h.Tag = b[6]
		h.MsgCode = b[7]
		if get32(b[8:]) != 0 || get32(b[12:]) != 0 {
			return h, nil, fmt.Errorf("pcie: reserved message dwords not zero")
		}
	}
	return h, payload, nil
}
