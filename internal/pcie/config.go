package pcie

import "fmt"

// Standard configuration-space register offsets (type-0 header).
const (
	CfgVendorID   = 0x00
	CfgDeviceID   = 0x02
	CfgCommand    = 0x04
	CfgStatus     = 0x06
	CfgRevision   = 0x08
	CfgClassCode  = 0x09
	CfgHeaderType = 0x0e
	CfgBAR0       = 0x10
	CfgSubsysVID  = 0x2c
	CfgSubsysID   = 0x2e
	CfgCapPtr     = 0x34
	CfgIntLine    = 0x3c
)

// Command register bits.
const (
	CmdMemEnable = 1 << 1
	CmdBusMaster = 1 << 2
)

// Status register bits.
const StatusCapList = 1 << 4

// Capability IDs.
const (
	CapIDMSIX   = 0x11
	CapIDVendor = 0x09
)

const cfgSize = 4096
const firstCapOffset = 0x40

// ConfigSpace is a byte-backed PCIe configuration space with a
// capability chain and the standard BAR sizing protocol (write all-ones,
// read back the size mask). Drivers in this repository walk it exactly
// the way the kernel does, which is how the virtio-pci transport locates
// the VirtIO configuration structures on the FPGA (paper §II-C).
type ConfigSpace struct {
	raw      [cfgSize]byte
	barSize  [6]uint32 // BAR size in bytes; 0 = unimplemented
	barProbe [6]bool   // true after an all-ones write, until next write
	nextCap  int       // next free capability offset
	lastCap  int       // offset of previous capability header (for chaining)
}

// NewConfigSpace returns a type-0 config space for the given IDs.
func NewConfigSpace(vendor, device uint16, classCode uint32, subsysVendor, subsysDevice uint16) *ConfigSpace {
	c := &ConfigSpace{nextCap: firstCapOffset}
	c.putU16(CfgVendorID, vendor)
	c.putU16(CfgDeviceID, device)
	// Class code occupies bytes 0x09-0x0b (prog IF, subclass, base class).
	c.raw[CfgRevision] = 0x01
	c.raw[CfgClassCode] = byte(classCode)
	c.raw[CfgClassCode+1] = byte(classCode >> 8)
	c.raw[CfgClassCode+2] = byte(classCode >> 16)
	c.raw[CfgHeaderType] = 0x00
	c.putU16(CfgSubsysVID, subsysVendor)
	c.putU16(CfgSubsysID, subsysDevice)
	return c
}

func (c *ConfigSpace) putU16(off int, v uint16) {
	c.raw[off] = byte(v)
	c.raw[off+1] = byte(v >> 8)
}

func (c *ConfigSpace) u16(off int) uint16 {
	return uint16(c.raw[off]) | uint16(c.raw[off+1])<<8
}

func (c *ConfigSpace) putU32(off int, v uint32) {
	c.raw[off] = byte(v)
	c.raw[off+1] = byte(v >> 8)
	c.raw[off+2] = byte(v >> 16)
	c.raw[off+3] = byte(v >> 24)
}

func (c *ConfigSpace) u32(off int) uint32 {
	return uint32(c.raw[off]) | uint32(c.raw[off+1])<<8 | uint32(c.raw[off+2])<<16 | uint32(c.raw[off+3])<<24
}

// SetBARSize declares BAR i as a 32-bit non-prefetchable memory region
// of the given size (a power of two, at least 16).
func (c *ConfigSpace) SetBARSize(i int, size uint32) {
	if i < 0 || i >= 6 {
		panic("pcie: BAR index out of range")
	}
	if size < 16 || size&(size-1) != 0 {
		panic(fmt.Sprintf("pcie: BAR size %d not a power of two >= 16", size))
	}
	c.barSize[i] = size
}

// BARSize reports the declared size of BAR i (0 if unimplemented).
func (c *ConfigSpace) BARSize(i int) uint32 { return c.barSize[i] }

// BARAddr reports the address programmed into BAR i.
func (c *ConfigSpace) BARAddr(i int) uint32 {
	return c.u32(CfgBAR0+4*i) &^ 0xf
}

// AddCapability appends a capability with the given ID and body (the
// bytes following the 2-byte [id, next] header) to the chain and
// returns its config-space offset.
func (c *ConfigSpace) AddCapability(id byte, body []byte) int {
	off := c.nextCap
	total := 2 + len(body)
	if off+total > 0x100 {
		panic("pcie: capability area overflow")
	}
	c.raw[off] = id
	c.raw[off+1] = 0 // end of chain until a successor links in
	copy(c.raw[off+2:], body)
	if c.lastCap == 0 {
		c.raw[CfgCapPtr] = byte(off)
		c.putU16(CfgStatus, c.u16(CfgStatus)|StatusCapList)
	} else {
		c.raw[c.lastCap+1] = byte(off)
	}
	c.lastCap = off
	c.nextCap = (off + total + 3) &^ 3
	return off
}

// Read32 returns the aligned 32-bit register at off, honouring a
// pending BAR size probe.
func (c *ConfigSpace) Read32(off int) uint32 {
	off &^= 3
	if off < 0 || off+4 > cfgSize {
		return 0xffffffff
	}
	if off >= CfgBAR0 && off < CfgBAR0+24 {
		i := (off - CfgBAR0) / 4
		if c.barSize[i] == 0 {
			return 0
		}
		if c.barProbe[i] {
			return ^(c.barSize[i] - 1) & 0xfffffff0
		}
	}
	return c.u32(off)
}

// Write32 stores the aligned 32-bit register at off, implementing the
// command register and the BAR sizing protocol.
func (c *ConfigSpace) Write32(off int, v uint32) {
	off &^= 3
	if off < 0 || off+4 > cfgSize {
		return
	}
	switch {
	case off == CfgCommand:
		// Only the command half is writable here; preserve status.
		c.putU16(CfgCommand, uint16(v))
	case off >= CfgBAR0 && off < CfgBAR0+24:
		i := (off - CfgBAR0) / 4
		if c.barSize[i] == 0 {
			return
		}
		if v == 0xffffffff {
			c.barProbe[i] = true
			return
		}
		c.barProbe[i] = false
		c.putU32(off, v&^(c.barSize[i]-1))
	case off >= firstCapOffset && off < 0x100:
		c.putU32(off, v) // capabilities may contain RW fields (e.g. MSI-X enable)
	default:
		// Read-only header fields: ignore writes.
	}
}

// MemEnabled reports whether memory-space decoding is on.
func (c *ConfigSpace) MemEnabled() bool { return c.u16(CfgCommand)&CmdMemEnable != 0 }

// BusMaster reports whether the function may issue DMA.
func (c *ConfigSpace) BusMaster() bool { return c.u16(CfgCommand)&CmdBusMaster != 0 }

// Capabilities walks the capability chain, returning (id, offset) pairs.
func (c *ConfigSpace) Capabilities() []CapabilityRef {
	var out []CapabilityRef
	if c.u16(CfgStatus)&StatusCapList == 0 {
		return out
	}
	seen := map[int]bool{}
	off := int(c.raw[CfgCapPtr])
	for off != 0 && !seen[off] {
		seen[off] = true
		out = append(out, CapabilityRef{ID: c.raw[off], Offset: off})
		off = int(c.raw[off+1])
	}
	return out
}

// CapabilityRef locates one capability in config space.
type CapabilityRef struct {
	ID     byte
	Offset int
}
