package pcie

import (
	"fpgavirtio/internal/faults"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// Fault-injection timing constants. Real PCIe completion timeouts are
// tens of milliseconds; the simulated values are scaled down so a
// faulted sample inflates a round trip visibly without freezing a
// 50k-packet sweep.
const (
	// cplTimeoutDelay is how long the root complex waits before
	// synthesizing the all-ones completion for a lost read request.
	cplTimeoutDelay = 10 * sim.Microsecond
	// stallWindow is the length of a device stall: MMIO reads complete
	// all-ones and MMIO writes are dropped until it elapses.
	stallWindow = 25 * sim.Microsecond
)

// SetFaults installs a fault injector on the root complex. Like
// SetMetrics it is session-scoped: every endpoint on this bus polls the
// same injector. A nil injector (the default) is the zero-fault path.
func (rc *RootComplex) SetFaults(inj *faults.Injector) { rc.faults = inj }

// Faults returns the installed injector (nil when fault injection is
// off). The injector is nil-safe, so callers use the result
// unconditionally.
func (rc *RootComplex) Faults() *faults.Injector { return rc.faults }

// Faults returns the owning root complex's injector (nil when fault
// injection is off). Device-side models that only hold an Endpoint use
// this to poll their own fault classes.
func (ep *Endpoint) Faults() *faults.Injector {
	if ep.rc == nil {
		return nil
	}
	return ep.rc.faults
}

// allOnes is the poisoned-completion value for a read of size bytes:
// PCIe fabrics complete aborted/timed-out reads with all data bits set.
func allOnes(size int) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return (uint64(1) << (8 * size)) - 1
}

// cplError counts one poisoned or timed-out completion on the
// endpoint. The counter is registered lazily so fault-free sessions
// keep today's exact metric snapshot.
func (ep *Endpoint) cplError() {
	if ep.cplErrs == nil {
		reg := ep.Metrics()
		if reg == nil {
			return
		}
		ep.cplErrs = reg.Counter(telemetry.MetricPCIeCplErrors)
	}
	ep.cplErrs.Inc()
}

// beginStall opens (or extends) the endpoint's stall window.
func (ep *Endpoint) beginStall() {
	ep.stallUntil = ep.sim.Now().Add(stallWindow)
}

// stalled reports whether the endpoint is inside a stall window.
func (ep *Endpoint) stalled() bool {
	return ep.sim.Now() < ep.stallUntil
}
