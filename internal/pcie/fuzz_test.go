package pcie

import (
	"bytes"
	"reflect"
	"testing"
)

// mustEncode builds a seed from a header the encoder accepts.
func mustEncode(t *testing.F, h TLPHeader, payload []byte) []byte {
	t.Helper()
	b, err := EncodeTLP(h, payload)
	if err != nil {
		t.Fatalf("seed encode: %v", err)
	}
	return b
}

// FuzzTLPDecode feeds arbitrary wire bytes to the TLP decoder. Invalid
// input must error without panicking; valid input must round-trip
// byte-identically through EncodeTLP (the decoder accepts exactly the
// canonical encoding).
func FuzzTLPDecode(f *testing.F) {
	// Seed corpus: every kind's canonical encoding plus malformed
	// variants. Run by plain `go test` even without -fuzz.
	f.Add(mustEncode(f, TLPHeader{Kind: TLPMemRead, LengthDW: 16, Requester: 0x0100,
		Tag: 7, Addr: 0x8000, FirstBE: 0xF, LastBE: 0xF}, nil))
	f.Add(mustEncode(f, TLPHeader{Kind: TLPMemRead, LengthDW: 1, Requester: 0x0100,
		Tag: 1, Addr: 0x1_0000_0000, FirstBE: 0xF}, nil)) // 64-bit address, 4-DW header
	f.Add(mustEncode(f, TLPHeader{Kind: TLPMemWrite, LengthDW: 2, Requester: 0x0100,
		Tag: 2, Addr: 0x9000, FirstBE: 0xF, LastBE: 0xF}, make([]byte, 8)))
	f.Add(mustEncode(f, TLPHeader{Kind: TLPCompletion, LengthDW: 1, Completer: 0x0200,
		Requester: 0x0100, Tag: 7, ByteCount: 4}, []byte{1, 2, 3, 4}))
	f.Add(mustEncode(f, TLPHeader{Kind: TLPCompletion, Completer: 0x0200,
		Requester: 0x0100, Tag: 8, Status: 1, ByteCount: 4}, nil)) // UR, no data
	f.Add(mustEncode(f, TLPHeader{Kind: TLPConfigRead, LengthDW: 1, Requester: 0x0100,
		Tag: 3, BDF: 0x0100, Register: 0x24, FirstBE: 0xF}, nil))
	f.Add(mustEncode(f, TLPHeader{Kind: TLPConfigWrite, LengthDW: 1, Requester: 0x0100,
		Tag: 4, BDF: 0x0100, Register: 0x10, FirstBE: 0xF}, []byte{0, 0, 0, 1}))
	f.Add(mustEncode(f, TLPHeader{Kind: TLPMessage, Requester: 0x0100, MsgCode: 0x20}, nil))
	f.Add([]byte{})                                               // empty
	f.Add([]byte{0x00, 0x00, 0x00})                               // truncated header
	f.Add([]byte{0xFF, 0x00, 0x00, 0x01, 0, 0, 0, 0, 0, 0, 0, 0}) // unknown fmt/type
	f.Add([]byte{0x40, 0x00, 0x03, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0}) // write claiming 1023 DW, no data
	f.Add([]byte{0x00, 0x80, 0x00, 0x01, 0, 0, 0, 0, 0, 0, 0, 1}) // reserved TC bit, unaligned addr

	f.Fuzz(func(t *testing.T, wire []byte) {
		h, payload, err := DecodeTLP(wire)
		if err != nil {
			return
		}
		// Decoded TLPs re-encode to the identical wire bytes: decode
		// accepts only the canonical form, so encode(decode(x)) == x.
		re, err := EncodeTLP(h, payload)
		if err != nil {
			t.Fatalf("decoded header failed to re-encode: %+v: %v", h, err)
		}
		if !bytes.Equal(re, wire) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x\n hdr %+v", wire, re, h)
		}
		h2, payload2, err := DecodeTLP(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(h, h2) || !bytes.Equal(payload, payload2) {
			t.Fatalf("round trip drift:\n h1 %+v\n h2 %+v", h, h2)
		}
	})
}
