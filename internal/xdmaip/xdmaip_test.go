package xdmaip

import (
	"bytes"
	"testing"
	"testing/quick"

	"fpgavirtio/internal/fpga"
	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
)

func TestDescriptorRoundTrip(t *testing.T) {
	m := mem.New(4096)
	d := Descriptor{
		Control: DescStop | DescCompleted | DescEOP,
		Len:     1024,
		Src:     0x1000,
		Dst:     0x2000,
		Next:    0x3000,
	}
	d.Encode(m, 64)
	got, err := DecodeDescriptor(m.Read(64, DescSize))
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatalf("round trip: got %+v, want %+v", got, d)
	}
}

func TestDescriptorRoundTripProperty(t *testing.T) {
	m := mem.New(4096)
	f := func(ctl uint8, ln uint16, src, dst, next uint32) bool {
		d := Descriptor{
			Control: uint32(ctl) & (DescStop | DescCompleted | DescEOP),
			Len:     uint32(ln),
			Src:     uint64(src),
			Dst:     uint64(dst),
			Next:    uint64(next),
		}
		d.Encode(m, 0)
		got, err := DecodeDescriptor(m.Read(0, DescSize))
		return err == nil && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeDescriptorErrors(t *testing.T) {
	if _, err := DecodeDescriptor(make([]byte, 31)); err == nil {
		t.Fatal("short descriptor accepted")
	}
	if _, err := DecodeDescriptor(make([]byte, 32)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// newVendorTestbed brings up a vendor XDMA device behind a root complex.
func newVendorTestbed(t *testing.T) (*sim.Sim, *pcie.RootComplex, *VendorDevice, *pcie.DeviceInfo) {
	t.Helper()
	s := sim.New()
	hostMem := mem.New(1 << 20)
	rc := pcie.NewRootComplex(s, hostMem, pcie.DefaultCosts())
	dev := NewVendor(s, rc, "xdma0", DefaultConfig())
	var info *pcie.DeviceInfo
	s.Go("enum", func(p *sim.Proc) {
		infos := rc.Enumerate(p)
		if len(infos) != 1 {
			t.Errorf("enumerated %d devices", len(infos))
			return
		}
		info = infos[0]
	})
	s.RunUntil(sim.Time(sim.Ms(1)))
	if info == nil {
		t.Fatal("enumeration did not complete")
	}
	if info.VendorID != XilinxVendorID || info.DeviceID != XDMADeviceID {
		t.Fatalf("IDs = %04x:%04x", info.VendorID, info.DeviceID)
	}
	return s, rc, dev, info
}

func TestVendorH2CAndC2HTransfer(t *testing.T) {
	s, rc, dev, info := newVendorTestbed(t)
	bar1 := info.BAR[1]
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i)
	}
	const hostBuf, hostDesc, hostBack = 0x10000, 0x20000, 0x30000
	rc.Mem.Write(hostBuf, payload)

	irqs := make(map[int]int)
	irqSeen := sim.NewCond(s, "irq")
	rc.SetIRQSink(func(ep *pcie.Endpoint, vec int) {
		irqs[vec]++
		irqSeen.Broadcast()
	})

	var done bool
	s.Go("driver", func(p *sim.Proc) {
		// Enable channel interrupts.
		rc.MMIOWrite(p, bar1+IRQBlockBase+RegIRQChanEnable, 4, 0x3)

		// H2C: host payload -> BRAM offset 0x100.
		Descriptor{Control: DescStop | DescCompleted | DescEOP, Len: uint32(len(payload)), Src: hostBuf, Dst: 0x100}.Encode(rc.Mem, hostDesc)
		rc.MMIOWrite(p, bar1+H2CSGDMABase+RegDescLo, 4, hostDesc)
		rc.MMIOWrite(p, bar1+H2CSGDMABase+RegDescHi, 4, 0)
		rc.MMIOWrite(p, bar1+H2CChannelBase+RegChanControl, 4, CtrlRun|CtrlIEDescComplete)
		for irqs[VecH2C] == 0 {
			irqSeen.Wait(p)
		}
		st := rc.MMIORead(p, bar1+H2CChannelBase+RegChanStatus+4, 4)
		if st&StatusDescComplete == 0 {
			t.Errorf("H2C status = %#x, want desc_complete", st)
		}
		rc.MMIOWrite(p, bar1+H2CChannelBase+RegChanControl, 4, 0) // stop

		// C2H: BRAM offset 0x100 -> host.
		Descriptor{Control: DescStop | DescCompleted | DescEOP, Len: uint32(len(payload)), Src: 0x100, Dst: hostBack}.Encode(rc.Mem, hostDesc)
		rc.MMIOWrite(p, bar1+C2HSGDMABase+RegDescLo, 4, hostDesc)
		rc.MMIOWrite(p, bar1+C2HSGDMABase+RegDescHi, 4, 0)
		rc.MMIOWrite(p, bar1+C2HChannelBase+RegChanControl, 4, CtrlRun|CtrlIEDescComplete)
		for irqs[VecC2H] == 0 {
			irqSeen.Wait(p)
		}
		rc.MMIOWrite(p, bar1+C2HChannelBase+RegChanControl, 4, 0)
		done = true
		s.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("driver did not finish")
	}
	if !bytes.Equal(dev.BRAM().Read(0x100, len(payload)), payload) {
		t.Fatal("H2C data mismatch in BRAM")
	}
	if !bytes.Equal(rc.Mem.Read(hostBack, len(payload)), payload) {
		t.Fatal("C2H data mismatch in host memory")
	}
	if irqs[VecH2C] != 1 || irqs[VecC2H] != 1 {
		t.Fatalf("irqs = %v", irqs)
	}
	// Each engine recorded exactly one hardware-latency sample, 8ns-quantized.
	for _, pc := range []*fpga.PerfCounter{dev.H2CCounter(), dev.C2HCounter()} {
		ss := pc.Samples()
		if len(ss) != 1 {
			t.Fatalf("%s samples = %v", pc.Name(), ss)
		}
		if ss[0] <= 0 || ss[0]%sim.Ns(8) != 0 {
			t.Fatalf("%s sample %v not quantized/positive", pc.Name(), ss[0])
		}
	}
}

func TestVendorDescriptorChain(t *testing.T) {
	s, rc, dev, info := newVendorTestbed(t)
	bar1 := info.BAR[1]
	a := []byte("first-chunk-")
	b := []byte("second-chunk")
	rc.Mem.Write(0x1000, a)
	rc.Mem.Write(0x2000, b)
	// Two chained descriptors placing the chunks adjacently in BRAM.
	Descriptor{Control: 0, Len: uint32(len(a)), Src: 0x1000, Dst: 0, Next: 0x5020}.Encode(rc.Mem, 0x5000)
	Descriptor{Control: DescStop | DescEOP, Len: uint32(len(b)), Src: 0x2000, Dst: uint64(len(a))}.Encode(rc.Mem, 0x5020)

	gotIRQ := false
	irqSeen := sim.NewCond(s, "irq")
	rc.SetIRQSink(func(ep *pcie.Endpoint, vec int) {
		if vec == VecH2C {
			gotIRQ = true
			irqSeen.Broadcast()
		}
	})
	s.Go("driver", func(p *sim.Proc) {
		rc.MMIOWrite(p, bar1+IRQBlockBase+RegIRQChanEnable, 4, 0x1)
		rc.MMIOWrite(p, bar1+H2CSGDMABase+RegDescLo, 4, 0x5000)
		rc.MMIOWrite(p, bar1+H2CSGDMABase+RegDescHi, 4, 0)
		rc.MMIOWrite(p, bar1+H2CChannelBase+RegChanControl, 4, CtrlRun|CtrlIEDescComplete)
		for !gotIRQ {
			irqSeen.Wait(p)
		}
		if n := rc.MMIORead(p, bar1+H2CChannelBase+RegChanCompleted, 4); n != 2 {
			t.Errorf("completed count = %d, want 2", n)
		}
		rc.MMIOWrite(p, bar1+H2CChannelBase+RegChanControl, 4, 0)
		s.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte{}, a...), b...)
	if !bytes.Equal(dev.BRAM().Read(0, len(want)), want) {
		t.Fatalf("chained transfer wrote %q", dev.BRAM().Read(0, len(want)))
	}
}

func TestVendorIRQDisabled(t *testing.T) {
	s, rc, _, info := newVendorTestbed(t)
	bar1 := info.BAR[1]
	rc.Mem.Write(0x1000, []byte{1, 2, 3, 4})
	fired := 0
	rc.SetIRQSink(func(ep *pcie.Endpoint, vec int) { fired++ })
	s.Go("driver", func(p *sim.Proc) {
		// Channel IRQ enable left clear: no interrupt expected.
		Descriptor{Control: DescStop, Len: 4, Src: 0x1000, Dst: 0}.Encode(rc.Mem, 0x5000)
		rc.MMIOWrite(p, bar1+H2CSGDMABase+RegDescLo, 4, 0x5000)
		rc.MMIOWrite(p, bar1+H2CChannelBase+RegChanControl, 4, CtrlRun|CtrlIEDescComplete)
		p.Sleep(sim.Us(50))
		st := rc.MMIORead(p, bar1+H2CChannelBase+RegChanStatus+4, 4)
		if st&StatusDescComplete == 0 {
			t.Errorf("engine did not complete: status %#x", st)
		}
		// Status read was read-clear: a second read shows it cleared.
		st2 := rc.MMIORead(p, bar1+H2CChannelBase+RegChanStatus+4, 4)
		if st2&StatusDescComplete != 0 {
			t.Errorf("status_rc did not clear: %#x", st2)
		}
		rc.MMIOWrite(p, bar1+H2CChannelBase+RegChanControl, 4, 0)
		s.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("unexpected interrupts: %d", fired)
	}
}

func TestVendorUserIRQ(t *testing.T) {
	s, rc, dev, info := newVendorTestbed(t)
	bar1 := info.BAR[1]
	var vecs []int
	rc.SetIRQSink(func(ep *pcie.Endpoint, vec int) { vecs = append(vecs, vec) })
	s.Go("driver", func(p *sim.Proc) {
		dev.RaiseUserIRQ(0) // disabled: dropped
		rc.MMIOWrite(p, bar1+IRQBlockBase+RegIRQUserEnable, 4, 1)
		p.Sleep(sim.Us(1))
		dev.RaiseUserIRQ(0)
		p.Sleep(sim.Us(10))
		s.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 1 || vecs[0] != VecUserBase {
		t.Fatalf("vecs = %v, want [%d]", vecs, VecUserBase)
	}
}

func TestPortHostReadWrite(t *testing.T) {
	s := sim.New()
	hostMem := mem.New(1 << 16)
	rc := pcie.NewRootComplex(s, hostMem, pcie.DefaultCosts())
	cs := pcie.NewConfigSpace(XilinxVendorID, XDMADeviceID, 0, 0, 0)
	cs.SetBARSize(0, 4096)
	ep := rc.Attach("dut", cs, pcie.DefaultGen2x2())
	ep.SetBarHandlers(0, pcie.BarHandlers{})
	port := NewPort(s, ep, fpga.Default125MHz())
	hostMem.Write(0x100, []byte("hello-port"))
	var got []byte
	s.Go("enum", func(p *sim.Proc) { rc.Enumerate(p) })
	s.GoAfter(sim.Us(50), "fabric", func(p *sim.Proc) {
		got = port.HostRead(p, 0x100, 10)
		port.HostWrite(p, 0x200, got)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello-port" {
		t.Fatalf("HostRead got %q", got)
	}
	if string(hostMem.Read(0x200, 10)) != "hello-port" {
		t.Fatal("HostWrite data mismatch")
	}
}
