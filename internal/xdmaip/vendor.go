package xdmaip

import (
	"fmt"

	"fpgavirtio/internal/faults"
	"fpgavirtio/internal/fpga"
	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// Vendor/device IDs of the modeled Xilinx function.
const (
	XilinxVendorID = 0x10ee
	XDMADeviceID   = 0x7024
)

// Config parameterizes a vendor XDMA device instance.
type Config struct {
	Link        pcie.LinkConfig
	BRAMBytes   int // card memory behind the AXI-MM interface
	UserVectors int // user interrupts in addition to the two channel vectors

	// NotifyOnH2CComplete adds the user logic the stock example design
	// lacks (paper §IV-C): raise user interrupt 0 when an H2C transfer
	// finishes, so the host can wait for data-ready before issuing its
	// C2H read — the "real use case" the paper says its favourable
	// setup underestimates.
	NotifyOnH2CComplete bool
	// UserLogicDelayCycles is the fabric time the notional user logic
	// spends on the received data before raising the data-ready
	// interrupt (default 250 cycles = 2 us at 125 MHz).
	UserLogicDelayCycles int
}

// DefaultConfig mirrors the paper's XDMA example design: the DMA engine
// writes straight into a BRAM, no user logic.
func DefaultConfig() Config {
	return Config{Link: pcie.DefaultGen2x2(), BRAMBytes: 256 << 10, UserVectors: 1}
}

// VendorDevice is the stock XDMA example design: the PCIe endpoint, the
// register file the reference driver programs, one H2C and one C2H
// SGDMA channel, and a BRAM data target.
type VendorDevice struct {
	sim  *sim.Sim
	clk  *fpga.Clock
	ep   *pcie.Endpoint
	bram *fpga.BRAM
	regs *fpga.RegFile
	cfg  Config

	h2c *channel
	c2h *channel
}

// channel is one SGDMA engine (H2C or C2H).
type channel struct {
	dev     *VendorDevice
	name    string
	h2c     bool
	base    uint64 // channel register block base
	sgdma   uint64 // SGDMA register block base
	vector  int
	irqBit  uint32
	kick    *sim.Cond
	counter *fpga.PerfCounter

	spanName  string
	runs      *telemetry.Counter
	descs     *telemetry.Counter
	dataBytes *telemetry.Counter

	// Per-engine scratch: one descriptor image, one data staging buffer
	// and one poll-writeback word image, reused across descriptors so
	// the steady-state engine run does not allocate.
	descBuf [DescSize]byte
	dataBuf []byte
	wbBuf   [WbSize]byte
}

// NewVendor attaches a vendor XDMA device to the root complex and
// starts its engines. The returned device is ready for enumeration.
func NewVendor(s *sim.Sim, rc *pcie.RootComplex, name string, cfg Config) *VendorDevice {
	if cfg.Link.Lanes == 0 {
		cfg.Link = pcie.DefaultGen2x2()
	}
	if cfg.BRAMBytes == 0 {
		cfg.BRAMBytes = 256 << 10
	}
	clk := fpga.Default125MHz()
	cs := pcie.NewConfigSpace(XilinxVendorID, XDMADeviceID, 0x058000, XilinxVendorID, 0x0007)
	cs.SetBARSize(0, 4096)  // AXI-Lite user BAR (unused by the example design)
	cs.SetBARSize(1, 65536) // DMA/config register BAR
	vectors := 2 + cfg.UserVectors
	// MSI-X capability: message control holds table size - 1.
	cs.AddCapability(pcie.CapIDMSIX, []byte{byte(vectors - 1), 0x00, 1, 0, 0, 0, 1, 0x80, 0, 0})

	ep := rc.Attach(name, cs, cfg.Link)
	ep.ConfigureMSIX(vectors)

	d := &VendorDevice{
		sim:  s,
		clk:  clk,
		ep:   ep,
		bram: fpga.NewBRAM(name+".bram", cfg.BRAMBytes),
		regs: fpga.NewRegFile(),
		cfg:  cfg,
	}
	d.h2c = d.newChannel("h2c0", true, H2CChannelBase, H2CSGDMABase, VecH2C, 1<<0)
	d.c2h = d.newChannel("c2h0", false, C2HChannelBase, C2HSGDMABase, VecC2H, 1<<1)

	d.regs.Set(H2CChannelBase+RegChanIdentifier, idH2C)
	d.regs.Set(C2HChannelBase+RegChanIdentifier, idC2H)
	d.regs.Set(ConfigBase+RegChanIdentifier, idConfig)

	ep.SetBarHandlers(0, pcie.BarHandlers{}) // no user logic in the example design
	ep.SetBarHandlers(1, pcie.BarHandlers{
		Read:  func(off uint64, size int) uint64 { return uint64(d.regs.Read(off)) },
		Write: func(off uint64, size int, v uint64) { d.regs.Write(off, uint32(v)) },
	})
	return d
}

// EP returns the device's PCIe endpoint.
func (d *VendorDevice) EP() *pcie.Endpoint { return d.ep }

// BRAM returns the card memory the engines target.
func (d *VendorDevice) BRAM() *fpga.BRAM { return d.bram }

// Clock returns the fabric clock.
func (d *VendorDevice) Clock() *fpga.Clock { return d.clk }

// H2CCounter returns the hardware performance counter of the H2C engine.
func (d *VendorDevice) H2CCounter() *fpga.PerfCounter { return d.h2c.counter }

// C2HCounter returns the hardware performance counter of the C2H engine.
func (d *VendorDevice) C2HCounter() *fpga.PerfCounter { return d.c2h.counter }

// RaiseUserIRQ asserts user interrupt i if enabled in the IRQ block.
func (d *VendorDevice) RaiseUserIRQ(i int) {
	if d.regs.Get(IRQBlockBase+RegIRQUserEnable)&(1<<uint(i)) == 0 {
		return
	}
	d.ep.RaiseMSIX(VecUserBase + i)
}

func (d *VendorDevice) newChannel(name string, h2c bool, base, sgdma uint64, vector int, irqBit uint32) *channel {
	reg := d.ep.Metrics()
	ch := &channel{
		dev:       d,
		name:      name,
		h2c:       h2c,
		base:      base,
		sgdma:     sgdma,
		vector:    vector,
		irqBit:    irqBit,
		kick:      sim.NewCond(d.sim, name+".kick"),
		counter:   fpga.NewPerfCounter(d.clk, name+".hw"),
		spanName:  name + ".run",
		runs:      reg.Counter(telemetry.MetricDMAEngineRuns(name)),
		descs:     reg.Counter(telemetry.MetricDMAEngineDescriptors(name)),
		dataBytes: reg.Counter(telemetry.MetricDMAEngineBytes(name)),
	}
	// A control-register write may start or stop the engine.
	d.regs.OnWrite(base+RegChanControl, func(v uint32) { ch.kick.Broadcast() })
	// Status reads through the read-clear mirror at +0x44 (PG195's
	// status_rc register the reference driver uses in its ISR).
	d.regs.OnRead(base+RegChanStatus+4, func() uint32 {
		v := d.regs.Get(base + RegChanStatus)
		d.regs.Set(base+RegChanStatus, v&StatusBusy)
		return v
	})
	d.sim.Go(d.ep.Name()+"."+name, ch.run)
	return ch
}

func (ch *channel) ctrl() uint32   { return ch.dev.regs.Get(ch.base + RegChanControl) }
func (ch *channel) status() uint32 { return ch.dev.regs.Get(ch.base + RegChanStatus) }
func (ch *channel) setStatus(v uint32) {
	ch.dev.regs.Set(ch.base+RegChanStatus, v)
}

// run is the engine finite-state machine: wait for a rising Run edge,
// walk the descriptor list, move data, then report and interrupt.
func (ch *channel) run(p *sim.Proc) {
	d := ch.dev
	for {
		for ch.ctrl()&CtrlRun != 0 { // require Run low first (edge semantics)
			ch.kick.Wait(p)
		}
		for ch.ctrl()&CtrlRun == 0 {
			ch.kick.Wait(p)
		}
		// Counter and span bracket the same engine-run interval so
		// span-derived hardware attribution matches the RTTSample math.
		ch.counter.Begin(p.Now())
		sp := d.sim.BeginSpan(telemetry.LayerDMAEngine, ch.spanName)
		ch.runs.Inc()
		ch.setStatus(StatusBusy)
		p.Sleep(d.clk.Cycles(engineStartCycles))
		// Fault hook: an injected engine error aborts the run before any
		// descriptor is fetched, exactly like a descriptor decode error.
		failed := d.ep.Faults().Fire(faults.EngineErr)
		if !failed {
			descAddr := mem.Addr(uint64(d.regs.Get(ch.sgdma+RegDescLo)) | uint64(d.regs.Get(ch.sgdma+RegDescHi))<<32)
			completed := uint32(0)
			for {
				p.Sleep(d.clk.Cycles(descFetchSetupCycles))
				chunkedReadInto(p, d.ep, d.clk, descAddr, ch.descBuf[:])
				desc, err := DecodeDescriptor(ch.descBuf[:])
				if err != nil {
					if d.ep.Faults() != nil {
						// A fault (e.g. a corrupted DMA read) mangled the
						// descriptor: halt with the error status instead
						// of crashing — the driver resets the channel.
						failed = true
						break
					}
					panic(fmt.Sprintf("xdmaip: %s: %v", ch.name, err))
				}
				n := int(desc.Len)
				ch.descs.Inc()
				ch.dataBytes.Add(int64(n))
				p.Sleep(d.clk.Cycles(programCycles))
				if cap(ch.dataBuf) < n {
					ch.dataBuf = make([]byte, n)
				}
				data := ch.dataBuf[:n]
				if ch.h2c {
					chunkedReadInto(p, d.ep, d.clk, mem.Addr(desc.Src), data)
					p.Sleep(d.clk.Cycles(d.clk.CyclesFor(n, AXIWidthBytes)))
					d.bram.Write(mem.Addr(desc.Dst), data)
				} else {
					d.bram.ReadInto(mem.Addr(desc.Src), data)
					p.Sleep(d.clk.Cycles(d.clk.CyclesFor(n, AXIWidthBytes)))
					chunkedWrite(p, d.ep, d.clk, mem.Addr(desc.Dst), data)
				}
				completed++
				d.regs.Set(ch.base+RegChanCompleted, completed)
				if desc.Control&DescStop != 0 {
					break
				}
				descAddr = mem.Addr(desc.Next)
			}
		}
		p.Sleep(d.clk.Cycles(writebackCycles))
		if failed {
			ch.setStatus(StatusDescStopped | StatusDescError)
		} else {
			ch.setStatus(StatusDescStopped | StatusDescComplete)
		}
		ch.counter.End(p.Now())
		sp.End()
		if ch.ctrl()&CtrlPollModeWB != 0 {
			// Poll-mode writeback: DMA-write the run's outcome to the
			// host slot the driver programmed, through the same posted
			// write path data takes. No interrupt is involved — with the
			// IE bits clear and the IRQ block disabled the conditional
			// below stays false.
			wb := uint32(WbDone)
			if failed {
				wb |= WbErr
			}
			ch.wbBuf[0] = byte(wb)
			ch.wbBuf[1] = byte(wb >> 8)
			ch.wbBuf[2] = byte(wb >> 16)
			ch.wbBuf[3] = byte(wb >> 24)
			wbAddr := mem.Addr(uint64(d.regs.Get(ch.base+RegPollWbLo)) | uint64(d.regs.Get(ch.base+RegPollWbHi))<<32)
			chunkedWrite(p, d.ep, d.clk, wbAddr, ch.wbBuf[:])
		}
		if ch.ctrl()&CtrlIEDescComplete != 0 &&
			d.regs.Get(IRQBlockBase+RegIRQChanEnable)&ch.irqBit != 0 {
			d.ep.RaiseMSIX(ch.vector)
		}
		if ch.h2c && d.cfg.NotifyOnH2CComplete && !failed {
			delay := d.cfg.UserLogicDelayCycles
			if delay == 0 {
				delay = 250
			}
			d.sim.After(d.clk.Cycles(delay), ch.name+".userirq", func() {
				d.RaiseUserIRQ(0)
			})
		}
	}
}
