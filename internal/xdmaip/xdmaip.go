// Package xdmaip models the Xilinx DMA/Bridge Subsystem for PCI
// Express (XDMA, PG195) at the level of behaviour the paper's
// experiments observe: descriptor-based H2C and C2H SGDMA channels
// programmed through a register BAR, a card-side direct port used by
// the VirtIO controller (Fig. 2: "the VirtIO controller ... controls
// the DMA engine of the XDMA IP"), interrupt generation, and hardware
// performance counters around the data movers.
//
// The register offsets follow the PG195 layout (channel blocks at
// 0x0000/0x1000, IRQ block at 0x2000, SGDMA blocks at 0x4000/0x5000)
// with the field subset the reference driver actually touches.
package xdmaip

import (
	"fmt"

	"fpgavirtio/internal/fpga"
	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// Register-map bases within the DMA BAR.
const (
	H2CChannelBase = 0x0000
	C2HChannelBase = 0x1000
	IRQBlockBase   = 0x2000
	ConfigBase     = 0x3000
	H2CSGDMABase   = 0x4000
	C2HSGDMABase   = 0x5000
)

// Channel-block register offsets (relative to the channel base).
const (
	RegChanIdentifier = 0x00
	RegChanControl    = 0x04
	RegChanStatus     = 0x40
	RegChanCompleted  = 0x48
	// RegPollWbLo/Hi hold the host address of the channel's poll-mode
	// writeback slot (PG195's pollmode_lo/hi_wb_addr): when
	// CtrlPollModeWB is set the engine DMA-writes a 4-byte status word
	// there at the end of each run instead of signalling MSI-X.
	RegPollWbLo = 0x88
	RegPollWbHi = 0x8c
)

// SGDMA-block register offsets (relative to the SGDMA base).
const (
	RegDescLo  = 0x80
	RegDescHi  = 0x84
	RegDescAdj = 0x88
)

// IRQ-block register offsets (relative to IRQBlockBase).
const (
	RegIRQChanEnable = 0x10
	RegIRQUserEnable = 0x04
)

// Control register bits.
const (
	CtrlRun            = 1 << 0
	CtrlIEDescStopped  = 1 << 1
	CtrlIEDescComplete = 1 << 2
	// CtrlPollModeWB enables poll-mode writeback (PG195 control bit
	// 26): the engine reports run completion by DMA-writing the
	// writeback word to RegPollWbLo/Hi rather than raising MSI-X.
	CtrlPollModeWB = 1 << 26
)

// Status register bits.
const (
	StatusBusy         = 1 << 0
	StatusDescStopped  = 1 << 1
	StatusDescComplete = 1 << 2
	// StatusDescError reports a descriptor-engine error (PG195 calls
	// this decode/magic-stopped); the engine halts the run without
	// moving data and the driver must reset the channel.
	StatusDescError = 1 << 19
)

// Descriptor control bits (dword 0, low byte).
const (
	DescStop      = 1 << 0
	DescCompleted = 1 << 1
	DescEOP       = 1 << 4
)

// DescMagic occupies the top half of descriptor dword 0.
const DescMagic = 0xad4b

// Poll-mode writeback word bits. The word travels through the same
// fault-injectable DMA-write path as data, so a poll-mode driver sees
// engine aborts in the error bit with no interrupt involved.
const (
	WbDone = 1 << 0 // run finished (with or without error)
	WbErr  = 1 << 1 // run halted on a descriptor error
)

// WbSize is the writeback word's size in bytes.
const WbSize = 4

// DescSize is the XDMA descriptor size in bytes.
const DescSize = 32

// MSI-X vector assignment of the model.
const (
	VecH2C      = 0
	VecC2H      = 1
	VecUserBase = 2
)

// Identifier register values (subsystem identifier | target).
const (
	idH2C    = 0x1fc00000
	idC2H    = 0x1fc10000
	idConfig = 0x1fc30000
)

// Descriptor is the in-memory XDMA transfer descriptor.
type Descriptor struct {
	Control uint32 // DescStop | DescCompleted | DescEOP
	Len     uint32
	Src     uint64 // H2C: host address; C2H: card address
	Dst     uint64 // H2C: card address; C2H: host address
	Next    uint64 // next descriptor host address (if !DescStop)
}

// Encode writes the descriptor in its 32-byte wire format at a in m.
func (d Descriptor) Encode(m *mem.Memory, a mem.Addr) {
	m.PutU32(a+0, uint32(DescMagic)<<16|d.Control&0xff)
	m.PutU32(a+4, d.Len)
	m.PutU64(a+8, d.Src)
	m.PutU64(a+16, d.Dst)
	m.PutU64(a+24, d.Next)
}

// DecodeDescriptor parses a 32-byte descriptor image.
func DecodeDescriptor(raw []byte) (Descriptor, error) {
	if len(raw) != DescSize {
		return Descriptor{}, fmt.Errorf("xdmaip: descriptor is %d bytes, want %d", len(raw), DescSize)
	}
	u32 := func(o int) uint32 {
		return uint32(raw[o]) | uint32(raw[o+1])<<8 | uint32(raw[o+2])<<16 | uint32(raw[o+3])<<24
	}
	u64 := func(o int) uint64 { return uint64(u32(o)) | uint64(u32(o+4))<<32 }
	d0 := u32(0)
	if d0>>16 != DescMagic {
		return Descriptor{}, fmt.Errorf("xdmaip: bad descriptor magic %#x", d0>>16)
	}
	return Descriptor{
		Control: d0 & 0xff,
		Len:     u32(4),
		Src:     u64(8),
		Dst:     u64(16),
		Next:    u64(24),
	}, nil
}

// Datapath constants of the modeled IP, calibrated so the measured
// hardware latencies land in the paper's ranges on the Gen2 x2 link.
// The Artix-7 engine is simple: it keeps a single read request in
// flight, so every Max_Payload_Size chunk of a host read is a full bus
// round trip plus engine think time — this is what makes hardware time
// grow nearly linearly with payload in Figures 4 and 5.
const (
	// AXIWidthBytes is the 128-bit AXI datapath at the fabric clock.
	AXIWidthBytes = 16
	// programCycles is charged per data-mover command issued by the
	// card side (the VirtIO controller programming the engine, or a
	// channel FSM dispatching one descriptor's move).
	programCycles = 64
	// chunkReadCycles is per-MPS-chunk engine overhead on reads
	// (request generation, tag tracking, completion reassembly).
	chunkReadCycles = 70
	// chunkWriteCycles is per-MPS-chunk overhead on posted writes.
	chunkWriteCycles = 56
	// engineStartCycles is the channel FSM's run-bit-to-first-fetch
	// latency in descriptor mode.
	engineStartCycles = 180
	// descFetchSetupCycles precedes each descriptor fetch.
	descFetchSetupCycles = 24
	// writebackCycles covers completed-count writeback and interrupt
	// generation at the end of a descriptor list.
	writebackCycles = 120
)

// Port is the card-side direct interface to the DMA engine data movers,
// used by the VirtIO controller in descriptor-bypass fashion: the
// controller supplies host addresses itself instead of having the
// engine walk an XDMA descriptor list.
type Port struct {
	sim *sim.Sim
	ep  *pcie.Endpoint
	clk *fpga.Clock

	reads, writes, readBytes, writeBytes *telemetry.Counter
}

// NewPort returns a direct port on the endpoint's DMA machinery.
func NewPort(s *sim.Sim, ep *pcie.Endpoint, clk *fpga.Clock) *Port {
	reg := ep.Metrics()
	return &Port{
		sim: s, ep: ep, clk: clk,
		reads:      reg.Counter(telemetry.MetricDMAPortReads),
		writes:     reg.Counter(telemetry.MetricDMAPortWrites),
		readBytes:  reg.Counter(telemetry.MetricDMAPortReadBytes),
		writeBytes: reg.Counter(telemetry.MetricDMAPortWriteBytes),
	}
}

// HostRead fetches n bytes from host memory (H2C direction), blocking
// the calling fabric process for engine programming plus one bus round
// trip per MPS-sized chunk (single outstanding request).
func (pt *Port) HostRead(p *sim.Proc, addr mem.Addr, n int) []byte {
	out := make([]byte, n)
	pt.HostReadInto(p, addr, out)
	return out
}

// HostReadInto is HostRead into a caller-supplied buffer — the
// allocation-free form the VirtIO controller's per-packet ring walks
// use. Timing and bus traffic are identical to HostRead.
func (pt *Port) HostReadInto(p *sim.Proc, addr mem.Addr, dst []byte) {
	pt.reads.Inc()
	pt.readBytes.Add(int64(len(dst)))
	sp := pt.sim.BeginSpan(telemetry.LayerDMAEngine, "port.read")
	p.Sleep(pt.clk.Cycles(programCycles))
	chunkedReadInto(p, pt.ep, pt.clk, addr, dst)
	sp.End()
}

// HostWrite pushes data to host memory (C2H direction) with per-chunk
// engine overhead on top of wire serialization.
func (pt *Port) HostWrite(p *sim.Proc, addr mem.Addr, data []byte) {
	pt.writes.Inc()
	pt.writeBytes.Add(int64(len(data)))
	sp := pt.sim.BeginSpan(telemetry.LayerDMAEngine, "port.write")
	p.Sleep(pt.clk.Cycles(programCycles))
	chunkedWrite(p, pt.ep, pt.clk, addr, data)
	sp.End()
}

// Clock returns the port's fabric clock.
func (pt *Port) Clock() *fpga.Clock { return pt.clk }

// chunkedReadInto issues one non-posted read round trip per MPS chunk,
// landing the bytes directly in dst.
func chunkedReadInto(p *sim.Proc, ep *pcie.Endpoint, clk *fpga.Clock, addr mem.Addr, dst []byte) {
	mps := ep.Link().Config().MPS
	for off := 0; off < len(dst); off += mps {
		c := len(dst) - off
		if c > mps {
			c = mps
		}
		p.Sleep(clk.Cycles(chunkReadCycles))
		ep.DMAReadInto(p, addr+mem.Addr(off), dst[off:off+c])
	}
}

// chunkedWrite issues posted writes with per-chunk engine overhead.
func chunkedWrite(p *sim.Proc, ep *pcie.Endpoint, clk *fpga.Clock, addr mem.Addr, data []byte) {
	mps := ep.Link().Config().MPS
	for off := 0; off < len(data); off += mps {
		c := len(data) - off
		if c > mps {
			c = mps
		}
		p.Sleep(clk.Cycles(chunkWriteCycles))
		ep.DMAWrite(p, addr+mem.Addr(off), data[off:off+c])
	}
}
