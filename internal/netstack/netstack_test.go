package netstack

import (
	"bytes"
	"testing"
	"testing/quick"

	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/sim"
)

func TestMACIPStrings(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Fatalf("MAC = %s", m)
	}
	if IP(10, 0, 0, 2).String() != "10.0.0.2" {
		t.Fatalf("IP = %s", IP(10, 0, 0, 2))
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 0001 f203 f4f5 f6f7 -> checksum 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b, 0); got != 0x220d {
		t.Fatalf("checksum = %#x, want 0x220d", got)
	}
}

func TestChecksumSelfVerifies(t *testing.T) {
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(append([]byte{}, data...), 0) // checksum lives at an even offset
		}
		cs := Checksum(data, 0)
		withCs := append(append([]byte{}, data...), byte(cs>>8), byte(cs))
		return Checksum(withCs, 0) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sampleDatagram(payload []byte) UDPDatagram {
	return UDPDatagram{
		SrcMAC: MAC{2, 0, 0, 0, 0, 1}, DstMAC: MAC{2, 0, 0, 0, 0, 2},
		SrcIP: IP(10, 0, 0, 1), DstIP: IP(10, 0, 0, 2),
		SrcPort: 5555, DstPort: 7777,
		Payload: payload,
	}
}

func TestFrameRoundTrip(t *testing.T) {
	d := sampleDatagram([]byte("the quick brown fox"))
	f := d.EncodeFrame(true)
	if !VerifyIPChecksum(f) || !VerifyUDPChecksum(f) {
		t.Fatal("checksums invalid after encode")
	}
	got, err := DecodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcMAC != d.SrcMAC || got.DstMAC != d.DstMAC ||
		got.SrcIP != d.SrcIP || got.DstIP != d.DstIP ||
		got.SrcPort != d.SrcPort || got.DstPort != d.DstPort ||
		!bytes.Equal(got.Payload, d.Payload) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(payload []byte, sp, dp uint16, a, b uint32) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		d := UDPDatagram{
			SrcMAC: MAC{2, 1, 1, 1, 1, 1}, DstMAC: MAC{2, 2, 2, 2, 2, 2},
			SrcIP: IPv4(a), DstIP: IPv4(b),
			SrcPort: sp, DstPort: dp,
			Payload: payload,
		}
		fr := d.EncodeFrame(true)
		if !VerifyIPChecksum(fr) || !VerifyUDPChecksum(fr) {
			return false
		}
		got, err := DecodeFrame(fr)
		if err != nil {
			return false
		}
		return got.SrcIP == d.SrcIP && got.DstIP == d.DstIP &&
			got.SrcPort == sp && got.DstPort == dp &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMinFramePadding(t *testing.T) {
	d := sampleDatagram([]byte{1})
	f := d.EncodeFrame(true)
	if len(f) != MinFrameSize {
		t.Fatalf("frame = %d bytes, want %d", len(f), MinFrameSize)
	}
	got, err := DecodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 1 {
		t.Fatalf("payload len %d despite padding", len(got.Payload))
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeFrame(make([]byte, 10)); err == nil {
		t.Fatal("short frame accepted")
	}
	d := sampleDatagram([]byte("x"))
	f := d.EncodeFrame(true)
	f[12] = 0x08
	f[13] = 0x06 // ARP
	if _, err := DecodeFrame(f); err == nil {
		t.Fatal("non-IPv4 accepted")
	}
	f = d.EncodeFrame(true)
	f[EthHdrSize+9] = 6 // TCP
	if _, err := DecodeFrame(f); err == nil {
		t.Fatal("non-UDP accepted")
	}
}

func TestZeroUDPChecksumPasses(t *testing.T) {
	d := sampleDatagram([]byte("no checksum"))
	f := d.EncodeFrame(false)
	if !VerifyUDPChecksum(f) {
		t.Fatal("zero checksum must pass per RFC 768")
	}
	// Fill it like an offloading device would, then verify again.
	if err := FillUDPChecksum(f); err != nil {
		t.Fatal(err)
	}
	udp := f[EthHdrSize+IPv4HdrSize:]
	if udp[6] == 0 && udp[7] == 0 {
		t.Fatal("FillUDPChecksum left field zero")
	}
	if !VerifyUDPChecksum(f) {
		t.Fatal("filled checksum invalid")
	}
}

func TestCorruptedChecksumDetected(t *testing.T) {
	d := sampleDatagram([]byte("payload-to-corrupt"))
	f := d.EncodeFrame(true)
	f[len(f)-1] ^= 0xff
	if VerifyUDPChecksum(f) {
		t.Fatal("corruption not detected")
	}
}

func TestBuildEchoResponse(t *testing.T) {
	d := sampleDatagram([]byte("ping"))
	req := d.EncodeFrame(true)
	resp, err := BuildEchoResponse(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(resp)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcMAC != d.DstMAC || got.DstMAC != d.SrcMAC {
		t.Fatal("MACs not swapped")
	}
	if got.SrcIP != d.DstIP || got.DstIP != d.SrcIP {
		t.Fatal("IPs not swapped")
	}
	if got.SrcPort != d.DstPort || got.DstPort != d.SrcPort {
		t.Fatal("ports not swapped")
	}
	if !bytes.Equal(got.Payload, d.Payload) {
		t.Fatal("payload altered")
	}
	if !VerifyUDPChecksum(resp) || !VerifyIPChecksum(resp) {
		t.Fatal("response checksums invalid")
	}
}

// loopNIC immediately reflects every transmitted frame back into the
// stack as an echo response, emulating a zero-latency echo device.
type loopNIC struct {
	stack    *Stack
	offloads Offloads
	sent     int
	lastPkt  TxPacket
}

func (n *loopNIC) Name() string       { return "lo-echo" }
func (n *loopNIC) MAC() MAC           { return MAC{2, 0, 0, 0, 0, 0xaa} }
func (n *loopNIC) Offloads() Offloads { return n.offloads }

func (n *loopNIC) Xmit(p *sim.Proc, pkt TxPacket) error {
	n.sent++
	n.lastPkt = pkt
	frame := append([]byte{}, pkt.Frame...)
	if pkt.NeedsCsum {
		if err := FillUDPChecksum(frame); err != nil {
			return err
		}
	}
	resp, err := BuildEchoResponse(frame)
	if err != nil {
		return err
	}
	st := n.stack
	p.Sim().GoAfter(sim.Us(2), "rx", func(rp *sim.Proc) {
		if err := st.Input(rp, RxPacket{Frame: resp, CsumValid: n.offloads.RxCsum}); err != nil {
			panic(err)
		}
	})
	return nil
}

func quietHost(t *testing.T) (*sim.Sim, *hostos.Host) {
	t.Helper()
	s := sim.New()
	cfg := hostos.DefaultConfig()
	cfg.JitterSigma = 0
	cfg.PreemptMeanGap = 0
	cfg.WakeTailProb = 0
	return s, hostos.New(s, 1<<20, cfg, 1)
}

func buildStack(t *testing.T, off Offloads) (*sim.Sim, *Stack, *loopNIC) {
	s, h := quietHost(t)
	st := New(h, DefaultCosts())
	nic := &loopNIC{stack: st, offloads: off}
	st.AddInterface(nic, IP(10, 0, 0, 1))
	st.AddRoute(IP(10, 0, 0, 0), IP(255, 255, 255, 0), "lo-echo")
	st.AddARP(IP(10, 0, 0, 2), MAC{2, 0, 0, 0, 0, 0xbb})
	return s, st, nic
}

func TestSocketSendRecvRoundTrip(t *testing.T) {
	s, st, nic := buildStack(t, Offloads{})
	sock, err := st.Bind(5000)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello fpga")
	var got []byte
	var from IPv4
	s.Go("app", func(p *sim.Proc) {
		if err := sock.SendTo(p, IP(10, 0, 0, 2), 7, payload); err != nil {
			t.Error(err)
			return
		}
		got, from, _, _ = sock.RecvFrom(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("echo payload = %q", got)
	}
	if from != IP(10, 0, 0, 2) {
		t.Fatalf("from = %v", from)
	}
	if nic.sent != 1 {
		t.Fatalf("nic sent %d frames", nic.sent)
	}
	if nic.lastPkt.NeedsCsum {
		t.Fatal("software-checksum NIC got NeedsCsum")
	}
}

func TestTxChecksumOffloadMetadata(t *testing.T) {
	s, st, nic := buildStack(t, Offloads{TxCsum: true, RxCsum: true})
	sock, _ := st.Bind(5001)
	s.Go("app", func(p *sim.Proc) {
		if err := sock.SendTo(p, IP(10, 0, 0, 2), 7, []byte("offloaded")); err != nil {
			t.Error(err)
			return
		}
		sock.RecvFrom(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !nic.lastPkt.NeedsCsum {
		t.Fatal("offload NIC did not get NeedsCsum")
	}
	if nic.lastPkt.CsumStart != EthHdrSize+IPv4HdrSize || nic.lastPkt.CsumOffset != 6 {
		t.Fatalf("csum meta = %d/%d", nic.lastPkt.CsumStart, nic.lastPkt.CsumOffset)
	}
	// With offload, the stack must have left the checksum zero.
	udp := nic.lastPkt.Frame[EthHdrSize+IPv4HdrSize:]
	if udp[6] != 0 || udp[7] != 0 {
		t.Fatal("stack computed checksum despite offload")
	}
}

func TestOffloadReducesCPUTime(t *testing.T) {
	measure := func(off Offloads) sim.Duration {
		s, st, _ := buildStack(t, off)
		sock, _ := st.Bind(5002)
		var took sim.Duration
		s.Go("app", func(p *sim.Proc) {
			payload := make([]byte, 1024)
			t0 := p.Now()
			if err := sock.SendTo(p, IP(10, 0, 0, 2), 7, payload); err != nil {
				t.Error(err)
				return
			}
			took = p.Now().Sub(t0)
			sock.RecvFrom(p)
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return took
	}
	sw := measure(Offloads{})
	hw := measure(Offloads{TxCsum: true, RxCsum: true})
	if hw >= sw {
		t.Fatalf("offloaded send (%v) not cheaper than software (%v)", hw, sw)
	}
}

func TestRouteSelection(t *testing.T) {
	s, st, _ := buildStack(t, Offloads{})
	sock, _ := st.Bind(5003)
	var errNoRoute, errNoARP error
	s.Go("app", func(p *sim.Proc) {
		errNoRoute = sock.SendTo(p, IP(192, 168, 9, 9), 7, []byte("x"))
		errNoARP = sock.SendTo(p, IP(10, 0, 0, 99), 7, []byte("x"))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if errNoRoute == nil {
		t.Fatal("send without route succeeded")
	}
	if errNoARP == nil {
		t.Fatal("send without ARP entry succeeded")
	}
}

func TestBindConflict(t *testing.T) {
	_, st, _ := buildStack(t, Offloads{})
	if _, err := st.Bind(6000); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Bind(6000); err == nil {
		t.Fatal("double bind succeeded")
	}
}

func TestInputDropsUnknownPort(t *testing.T) {
	s, st, _ := buildStack(t, Offloads{})
	d := sampleDatagram([]byte("stray"))
	d.DstPort = 9999 // not bound
	frame := d.EncodeFrame(true)
	var err error
	s.Go("rx", func(p *sim.Proc) {
		err = st.Input(p, RxPacket{Frame: frame})
	})
	if e := s.Run(); e != nil {
		t.Fatal(e)
	}
	if err == nil {
		t.Fatal("stray packet not rejected")
	}
}

func TestInputRejectsBadChecksum(t *testing.T) {
	s, st, _ := buildStack(t, Offloads{})
	sock, _ := st.Bind(7777)
	_ = sock
	d := sampleDatagram([]byte("corrupt-me"))
	frame := d.EncodeFrame(true)
	frame[EthHdrSize+IPv4HdrSize+UDPHdrSize] ^= 1 // flip a payload byte, not trailing pad
	var errSW, errHW error
	s.Go("rx", func(p *sim.Proc) {
		errSW = st.Input(p, RxPacket{Frame: frame})
		// With CsumValid set, the (corrupted) packet is trusted: the
		// device claimed it verified it.
		errHW = st.Input(p, RxPacket{Frame: frame, CsumValid: true})
	})
	if e := s.Run(); e != nil {
		t.Fatal(e)
	}
	if errSW == nil {
		t.Fatal("bad checksum accepted in software path")
	}
	if errHW != nil {
		t.Fatalf("CsumValid packet rejected: %v", errHW)
	}
}
