// Package netstack implements the slice of the host networking stack
// the paper's VirtIO test path exercises: Ethernet framing, a static
// ARP cache and routing table (the paper adds those entries by hand),
// IPv4 and UDP with real checksums, and blocking UDP sockets layered
// on the host-OS cost model.
package netstack

import (
	"fmt"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String formats the address in colon notation.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IPv4 is an IPv4 address in network byte order.
type IPv4 uint32

// IP builds an address from dotted components.
func IP(a, b, c, d byte) IPv4 {
	return IPv4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String formats the address in dotted-quad notation.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// EtherTypes.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
)

// Protocol numbers.
const ProtoUDP = 17

// Header sizes.
const (
	EthHdrSize  = 14
	IPv4HdrSize = 20
	UDPHdrSize  = 8
	// HeaderOverhead is the total framing a UDP payload carries — the
	// figure the paper uses to equalize bytes-on-the-link between the
	// VirtIO (UDP) and XDMA (raw) tests.
	HeaderOverhead = EthHdrSize + IPv4HdrSize + UDPHdrSize
	// MinFrameSize is the minimum Ethernet frame (without FCS).
	MinFrameSize = 60
)

// Checksum computes the Internet checksum (RFC 1071) over b with an
// initial partial sum.
func Checksum(b []byte, initial uint32) uint16 {
	sum := initial
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// UDPDatagram describes one UDP/IPv4/Ethernet packet.
type UDPDatagram struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     IPv4
	SrcPort, DstPort uint16
	Payload          []byte
}

// pseudoHeaderSum returns the partial checksum of the UDP pseudo header.
func pseudoHeaderSum(src, dst IPv4, udpLen int) uint32 {
	sum := uint32(src>>16) + uint32(src&0xffff)
	sum += uint32(dst>>16) + uint32(dst&0xffff)
	sum += ProtoUDP
	sum += uint32(udpLen)
	return sum
}

// EncodeFrame renders the datagram as an Ethernet frame. When
// computeUDPCsum is false the UDP checksum field is left zero (the
// sender expects hardware offload to fill it, exactly the VirtIO
// NET_F_CSUM contract).
func (d UDPDatagram) EncodeFrame(computeUDPCsum bool) []byte {
	return d.EncodeFrameInto(nil, computeUDPCsum)
}

// EncodeFrameInto renders the datagram into buf, reallocating only when
// buf's capacity is too small, and returns the encoded frame. Callers
// on the per-packet path keep the returned slice as their scratch for
// the next encode so steady-state transmission does not allocate.
func (d UDPDatagram) EncodeFrameInto(buf []byte, computeUDPCsum bool) []byte {
	udpLen := UDPHdrSize + len(d.Payload)
	totLen := IPv4HdrSize + udpLen
	n := EthHdrSize + totLen
	if n < MinFrameSize {
		n = MinFrameSize
	}
	var f []byte
	if cap(buf) < n {
		f = make([]byte, n)
	} else {
		// The encoder only writes the fields it uses; clear stale bytes
		// so identification/padding/checksum fields start zeroed exactly
		// as with a fresh allocation.
		f = buf[:n]
		for i := range f {
			f[i] = 0
		}
	}
	copy(f[0:6], d.DstMAC[:])
	copy(f[6:12], d.SrcMAC[:])
	f[12] = EtherTypeIPv4 >> 8
	f[13] = EtherTypeIPv4 & 0xff

	ip := f[EthHdrSize:]
	ip[0] = 0x45 // version 4, IHL 5
	ip[2] = byte(totLen >> 8)
	ip[3] = byte(totLen)
	ip[6] = 0x40 // don't fragment
	ip[8] = 64   // TTL
	ip[9] = ProtoUDP
	putIP := func(o int, a IPv4) {
		ip[o] = byte(a >> 24)
		ip[o+1] = byte(a >> 16)
		ip[o+2] = byte(a >> 8)
		ip[o+3] = byte(a)
	}
	putIP(12, d.SrcIP)
	putIP(16, d.DstIP)
	cs := Checksum(ip[:IPv4HdrSize], 0)
	ip[10] = byte(cs >> 8)
	ip[11] = byte(cs)

	udp := ip[IPv4HdrSize:]
	udp[0] = byte(d.SrcPort >> 8)
	udp[1] = byte(d.SrcPort)
	udp[2] = byte(d.DstPort >> 8)
	udp[3] = byte(d.DstPort)
	udp[4] = byte(udpLen >> 8)
	udp[5] = byte(udpLen)
	copy(udp[UDPHdrSize:], d.Payload)
	if computeUDPCsum {
		sum := Checksum(udp[:udpLen], pseudoHeaderSum(d.SrcIP, d.DstIP, udpLen))
		if sum == 0 {
			sum = 0xffff
		}
		udp[6] = byte(sum >> 8)
		udp[7] = byte(sum)
	}
	return f
}

// DecodeFrame parses an Ethernet frame into a UDPDatagram. It returns
// an error for anything that is not UDP-over-IPv4 or is malformed.
func DecodeFrame(f []byte) (UDPDatagram, error) {
	var d UDPDatagram
	if len(f) < EthHdrSize+IPv4HdrSize+UDPHdrSize {
		return d, fmt.Errorf("netstack: frame too short: %d bytes", len(f))
	}
	copy(d.DstMAC[:], f[0:6])
	copy(d.SrcMAC[:], f[6:12])
	if et := uint16(f[12])<<8 | uint16(f[13]); et != EtherTypeIPv4 {
		return d, fmt.Errorf("netstack: not IPv4: ethertype %#x", et)
	}
	ip := f[EthHdrSize:]
	if ip[0] != 0x45 {
		return d, fmt.Errorf("netstack: unsupported IP version/IHL %#x", ip[0])
	}
	totLen := int(ip[2])<<8 | int(ip[3])
	if totLen < IPv4HdrSize+UDPHdrSize || totLen > len(ip) {
		return d, fmt.Errorf("netstack: bad IP total length %d", totLen)
	}
	if ip[9] != ProtoUDP {
		return d, fmt.Errorf("netstack: not UDP: proto %d", ip[9])
	}
	getIP := func(o int) IPv4 {
		return IPv4(uint32(ip[o])<<24 | uint32(ip[o+1])<<16 | uint32(ip[o+2])<<8 | uint32(ip[o+3]))
	}
	d.SrcIP = getIP(12)
	d.DstIP = getIP(16)
	udp := ip[IPv4HdrSize:totLen]
	d.SrcPort = uint16(udp[0])<<8 | uint16(udp[1])
	d.DstPort = uint16(udp[2])<<8 | uint16(udp[3])
	udpLen := int(udp[4])<<8 | int(udp[5])
	if udpLen < UDPHdrSize || udpLen > len(udp) {
		return d, fmt.Errorf("netstack: bad UDP length %d", udpLen)
	}
	d.Payload = udp[UDPHdrSize:udpLen]
	return d, nil
}

// VerifyIPChecksum reports whether the IPv4 header checksum is valid.
func VerifyIPChecksum(f []byte) bool {
	if len(f) < EthHdrSize+IPv4HdrSize {
		return false
	}
	return Checksum(f[EthHdrSize:EthHdrSize+IPv4HdrSize], 0) == 0
}

// VerifyUDPChecksum reports whether the UDP checksum is valid (a zero
// checksum field means "not computed" and passes, per RFC 768).
func VerifyUDPChecksum(f []byte) bool {
	d, err := DecodeFrame(f)
	if err != nil {
		return false
	}
	udpStart := EthHdrSize + IPv4HdrSize
	udpLen := UDPHdrSize + len(d.Payload)
	udp := f[udpStart : udpStart+udpLen]
	if udp[6] == 0 && udp[7] == 0 {
		return true
	}
	return Checksum(udp, pseudoHeaderSum(d.SrcIP, d.DstIP, udpLen)) == 0
}

// FillUDPChecksum computes and stores the UDP checksum in place — the
// operation a checksum-offloading NIC performs on behalf of the host.
func FillUDPChecksum(f []byte) error {
	d, err := DecodeFrame(f)
	if err != nil {
		return err
	}
	udpStart := EthHdrSize + IPv4HdrSize
	udpLen := UDPHdrSize + len(d.Payload)
	udp := f[udpStart : udpStart+udpLen]
	udp[6], udp[7] = 0, 0
	sum := Checksum(udp, pseudoHeaderSum(d.SrcIP, d.DstIP, udpLen))
	if sum == 0 {
		sum = 0xffff
	}
	udp[6] = byte(sum >> 8)
	udp[7] = byte(sum)
	return nil
}

// BuildEchoResponse transforms a received UDP frame into its echo
// reply: swap MACs, IPs and ports, keep the payload, recompute
// checksums. This is what the paper's FPGA user logic does ("the user
// logic on the FPGA responds with a UDP packet of the same size").
func BuildEchoResponse(f []byte) ([]byte, error) {
	return BuildEchoResponseInto(f, nil)
}

// BuildEchoResponseInto is BuildEchoResponse rendering into buf's
// capacity (which must not alias f), reallocating only on growth.
func BuildEchoResponseInto(f, buf []byte) ([]byte, error) {
	d, err := DecodeFrame(f)
	if err != nil {
		return nil, err
	}
	resp := UDPDatagram{
		SrcMAC: d.DstMAC, DstMAC: d.SrcMAC,
		SrcIP: d.DstIP, DstIP: d.SrcIP,
		SrcPort: d.DstPort, DstPort: d.SrcPort,
		Payload: d.Payload,
	}
	return resp.EncodeFrameInto(buf, true), nil
}
