package netstack

import (
	"fmt"

	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// Costs prices the stack-traversal work per packet. Defaults are
// calibrated to a modern kernel's UDP fast path.
type Costs struct {
	SocketSend    sim.Duration // sock_sendmsg entry + fd lookup
	UDPLayerTx    sim.Duration // udp_sendmsg header work
	IPLayerTx     sim.Duration // ip_make_skb, header + route cache hit
	RouteLookup   sim.Duration
	NeighLookup   sim.Duration // ARP cache hit
	DevXmit       sim.Duration // dev_queue_xmit, qdisc bypass
	NetifReceive  sim.Duration // netif_receive_skb
	IPLayerRx     sim.Duration
	UDPLayerRx    sim.Duration
	SocketDeliver sim.Duration // socket lookup + queue
	CsumPerByte   sim.Duration // software checksum cost
	SkbAlloc      sim.Duration // buffer allocation per packet
}

// DefaultCosts returns the calibrated stack costs.
func DefaultCosts() Costs {
	return Costs{
		SocketSend:    sim.Ns(600),
		UDPLayerTx:    sim.Ns(300),
		IPLayerTx:     sim.Ns(350),
		RouteLookup:   sim.Ns(200),
		NeighLookup:   sim.Ns(120),
		DevXmit:       sim.Ns(350),
		NetifReceive:  sim.Ns(350),
		IPLayerRx:     sim.Ns(300),
		UDPLayerRx:    sim.Ns(280),
		SocketDeliver: sim.Ns(250),
		CsumPerByte:   sim.Picosecond * 300, // ~3.3 GB/s software csum
		SkbAlloc:      sim.Ns(180),
	}
}

// TxPacket is a frame handed to a NIC driver, with checksum-offload
// metadata (the skb->ip_summed contract).
type TxPacket struct {
	Frame []byte
	// NeedsCsum asks the device to compute the L4 checksum over
	// Frame[CsumStart:] and store it at CsumStart+CsumOffset.
	NeedsCsum  bool
	CsumStart  int
	CsumOffset int
}

// RxPacket is a frame delivered by a NIC driver to the stack.
type RxPacket struct {
	Frame []byte
	// CsumValid reports the device already verified the L4 checksum
	// (VIRTIO_NET_HDR_F_DATA_VALID), letting the stack skip it.
	CsumValid bool
}

// Offloads describes a NIC's checksum capabilities as negotiated.
type Offloads struct {
	TxCsum bool
	RxCsum bool
}

// NIC is the driver surface the stack transmits through.
type NIC interface {
	Name() string
	MAC() MAC
	Offloads() Offloads
	// Xmit queues one frame; it blocks the caller only for the
	// driver's own TX-path work (never for the wire).
	Xmit(p *sim.Proc, pkt TxPacket) error
}

// iface is one configured network interface.
type iface struct {
	nic NIC
	ip  IPv4
}

type route struct {
	dst  IPv4
	mask IPv4
	nic  string
}

// Stack is a host network stack instance.
type Stack struct {
	host   *hostos.Host
	costs  Costs
	ifaces map[string]*iface
	routes []route
	arp    map[IPv4]MAC
	socks  map[uint16]*UDPSocket

	met stackMetrics
}

type stackMetrics struct {
	txPackets, rxPackets *telemetry.Counter
	rxDropped            *telemetry.Counter
	arpHits, arpMisses   *telemetry.Counter
	csumBytes            *telemetry.Counter
}

// New returns an empty stack bound to the host cost model.
func New(h *hostos.Host, costs Costs) *Stack {
	reg := h.Metrics()
	return &Stack{
		host:   h,
		costs:  costs,
		ifaces: make(map[string]*iface),
		arp:    make(map[IPv4]MAC),
		socks:  make(map[uint16]*UDPSocket),
		met: stackMetrics{
			txPackets: reg.Counter(telemetry.MetricNetstackTxPackets),
			rxPackets: reg.Counter(telemetry.MetricNetstackRxPackets),
			rxDropped: reg.Counter(telemetry.MetricNetstackRxDropped),
			arpHits:   reg.Counter(telemetry.MetricNetstackARPHits),
			arpMisses: reg.Counter(telemetry.MetricNetstackARPMisses),
			csumBytes: reg.Counter(telemetry.MetricNetstackCsumBytes),
		},
	}
}

// AddInterface configures a NIC with an address (ip addr add).
func (st *Stack) AddInterface(nic NIC, ip IPv4) {
	st.ifaces[nic.Name()] = &iface{nic: nic, ip: ip}
}

// AddRoute installs a static route (ip route add dst/mask dev nic).
func (st *Stack) AddRoute(dst, mask IPv4, nicName string) {
	st.routes = append(st.routes, route{dst: dst, mask: mask, nic: nicName})
}

// AddARP installs a static neighbour entry (arp -s), as the paper's
// test setup does to route packets to the FPGA.
func (st *Stack) AddARP(ip IPv4, mac MAC) { st.arp[ip] = mac }

func (st *Stack) lookupRoute(dst IPv4) (*iface, error) {
	var best *route
	for i := range st.routes {
		r := &st.routes[i]
		if dst&r.mask == r.dst&r.mask {
			if best == nil || r.mask > best.mask {
				best = r
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("netstack: no route to %v", dst)
	}
	ifc, ok := st.ifaces[best.nic]
	if !ok {
		return nil, fmt.Errorf("netstack: route device %q not configured", best.nic)
	}
	return ifc, nil
}

// UDPSocket is a blocking datagram socket.
//
//fvlint:hotpath
type UDPSocket struct {
	stack *Stack
	port  uint16
	queue []recvItem
	head  int // index of the next datagram to pop from queue
	wq    *hostos.WaitQueue

	txScratch []byte   // reused frame-encode buffer for SendTo
	pool      [][]byte // recycled receive-payload buffers (see Recycle)
}

type recvItem struct {
	payload []byte
	from    IPv4
	port    uint16
}

// Bind allocates a socket on the given local UDP port.
func (st *Stack) Bind(port uint16) (*UDPSocket, error) {
	if _, busy := st.socks[port]; busy {
		return nil, fmt.Errorf("netstack: port %d in use", port)
	}
	s := &UDPSocket{stack: st, port: port, wq: st.host.NewWaitQueue(fmt.Sprintf("udp:%d", port))}
	st.socks[port] = s
	return s, nil
}

// Close releases the socket's port.
func (s *UDPSocket) Close() { delete(s.stack.socks, s.port) }

// SendTo runs the sendto(2) fast path: syscall boundary, socket/UDP/IP
// layers, route+neighbour lookup, checksum (unless the NIC offloads
// it), then the driver's transmit op.
func (s *UDPSocket) SendTo(p *sim.Proc, dst IPv4, dstPort uint16, payload []byte) error {
	st, h, c := s.stack, s.stack.host, s.stack.costs
	h.SyscallEnter(p)
	h.CPUWork(p, c.SocketSend)
	h.CPUWork(p, c.RouteLookup)
	ifc, err := st.lookupRoute(dst)
	if err != nil {
		h.SyscallExit(p)
		return err
	}
	h.CPUWork(p, c.NeighLookup)
	dstMAC, ok := st.arp[dst]
	if !ok {
		st.met.arpMisses.Inc()
		h.SyscallExit(p)
		return fmt.Errorf("netstack: no ARP entry for %v", dst)
	}
	st.met.arpHits.Inc()
	h.CPUWork(p, c.SkbAlloc)
	h.Copy(p, len(payload)) // copy_from_user into the skb
	h.CPUWork(p, c.UDPLayerTx+c.IPLayerTx)

	off := ifc.nic.Offloads()
	d := UDPDatagram{
		SrcMAC: ifc.nic.MAC(), DstMAC: dstMAC,
		SrcIP: ifc.ip, DstIP: dst,
		SrcPort: s.port, DstPort: dstPort,
		Payload: payload,
	}
	frame := d.EncodeFrameInto(s.txScratch, !off.TxCsum)
	s.txScratch = frame
	if !off.TxCsum {
		st.met.csumBytes.Add(int64(UDPHdrSize + len(payload)))
		h.CPUWork(p, sim.Duration(UDPHdrSize+len(payload))*c.CsumPerByte)
	}
	h.CPUWork(p, c.DevXmit)
	pkt := TxPacket{Frame: frame}
	if off.TxCsum {
		pkt.NeedsCsum = true
		pkt.CsumStart = EthHdrSize + IPv4HdrSize
		pkt.CsumOffset = 6
	}
	err = ifc.nic.Xmit(p, pkt)
	if err == nil {
		st.met.txPackets.Inc()
	}
	h.SyscallExit(p)
	return err
}

// RecvFrom blocks until a datagram arrives on the socket, then copies
// it out (recvfrom(2)). The returned payload is caller-owned; callers
// on the per-packet path hand it back with Recycle once done.
func (s *UDPSocket) RecvFrom(p *sim.Proc) (payload []byte, from IPv4, fromPort uint16, err error) {
	h := s.stack.host
	h.SyscallEnter(p)
	for s.Pending() == 0 {
		s.wq.Wait(p)
	}
	return s.pop(p)
}

// RecvFromPolled is RecvFrom's busy-poll variant (the SO_BUSY_POLL
// shape): when nothing is queued the socket never parks on its wait
// queue — it invokes poll, which spins on the device's completion
// state and delivers frames inline via Input from this process's
// context. IRQ dispatch, softirq scheduling and the scheduler wake
// latency (with its tails) never appear on this path.
func (s *UDPSocket) RecvFromPolled(p *sim.Proc, poll func(p *sim.Proc)) (payload []byte, from IPv4, fromPort uint16, err error) {
	h := s.stack.host
	h.SyscallEnter(p)
	for s.Pending() == 0 {
		poll(p)
	}
	return s.pop(p)
}

// pop dequeues the head datagram and completes the syscall.
func (s *UDPSocket) pop(p *sim.Proc) (payload []byte, from IPv4, fromPort uint16, err error) {
	h := s.stack.host
	item := s.queue[s.head]
	s.queue[s.head] = recvItem{}
	s.head++
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
	}
	h.Copy(p, len(item.payload)) // copy_to_user
	h.SyscallExit(p)
	return item.payload, item.from, item.port, nil
}

// Pending reports queued datagrams (poll(2) without blocking).
func (s *UDPSocket) Pending() int { return len(s.queue) - s.head }

// Recycle returns a payload buffer obtained from RecvFrom to the
// socket's receive pool, letting Input reuse it for a later datagram
// instead of allocating. Callers must not touch buf afterwards.
func (s *UDPSocket) Recycle(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	s.pool = append(s.pool, buf)
}

// Input is the receive path drivers call from softirq context: parse,
// verify, demultiplex, wake. Frames that are not for a bound socket
// are counted and dropped.
func (st *Stack) Input(p *sim.Proc, rx RxPacket) error {
	h, c := st.host, st.costs
	h.CPUWork(p, c.NetifReceive)
	d, err := DecodeFrame(rx.Frame)
	if err != nil {
		st.met.rxDropped.Inc()
		return err
	}
	h.CPUWork(p, c.IPLayerRx)
	if !VerifyIPChecksum(rx.Frame) {
		st.met.rxDropped.Inc()
		return fmt.Errorf("netstack: bad IP checksum")
	}
	h.CPUWork(p, c.UDPLayerRx)
	if !rx.CsumValid {
		st.met.csumBytes.Add(int64(UDPHdrSize + len(d.Payload)))
		h.CPUWork(p, sim.Duration(UDPHdrSize+len(d.Payload))*c.CsumPerByte)
		if !VerifyUDPChecksum(rx.Frame) {
			st.met.rxDropped.Inc()
			return fmt.Errorf("netstack: bad UDP checksum")
		}
	}
	sock, ok := st.socks[d.DstPort]
	if !ok {
		st.met.rxDropped.Inc()
		return fmt.Errorf("netstack: no socket on port %d", d.DstPort)
	}
	h.CPUWork(p, c.SocketDeliver)
	st.met.rxPackets.Inc()
	var pl []byte
	if n := len(sock.pool); n > 0 && cap(sock.pool[n-1]) >= len(d.Payload) {
		pl = sock.pool[n-1][:len(d.Payload)]
		sock.pool[n-1] = nil
		sock.pool = sock.pool[:n-1]
	} else {
		pl = make([]byte, len(d.Payload))
	}
	copy(pl, d.Payload)
	sock.queue = append(sock.queue, recvItem{payload: pl, from: d.SrcIP, port: d.SrcPort})
	sock.wq.Wake()
	return nil
}
