// Package xdmadrv is the vendor reference character-device driver for
// the XDMA IP, with the structure of the Xilinx dma_ip_drivers code the
// paper benchmarks: per-channel bounce buffers and descriptor slots, an
// engine start per I/O (descriptor address programming plus control
// writes), a completion interrupt whose ISR reads the engine's
// read-clear status register, and read()/write() file operations that
// block the caller until the DMA finishes.
//
// This per-operation descriptor exchange — rebuilt and re-programmed on
// every transfer — is the design-philosophy contrast to VirtIO's
// share-the-rings-once model that the paper analyses in §IV-A.
package xdmadrv

import (
	"fmt"

	"fpgavirtio/internal/fvassert"
	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
	"fpgavirtio/internal/xdmaip"
)

// Driver CPU costs (engine programming and completion handling),
// following the reference driver's per-transfer work: transfer_init,
// dma_map_single + descriptor assembly, engine_start (which also reads
// the engine's status register before setting Run), ISR engine
// service, and transfer teardown with unmap.
const (
	descBuildCost  = sim.Duration(2000) * sim.Nanosecond // transfer init + dma_map + desc build
	descChainCost  = sim.Duration(300) * sim.Nanosecond  // each additional descriptor in a list
	submitCost     = sim.Duration(1000) * sim.Nanosecond // engine_start bookkeeping
	isrBodyCost    = sim.Duration(1000) * sim.Nanosecond // xdma_isr + engine service
	completionCost = sim.Duration(2800) * sim.Nanosecond // teardown, unmap, wait-list processing
)

// MaxTransfer is the per-call transfer limit of the bounce buffers.
const MaxTransfer = 1 << 20

// MaxBatchDescs bounds one chained descriptor list (the size of the
// driver's descriptor-ring allocation per channel).
const MaxBatchDescs = 256

// Recovery tuning, active only when the endpoint has a fault injector
// armed (the zero-fault submit path takes none of these branches).
const (
	// maxResubmits bounds the retry loop of a failing transfer.
	maxResubmits = 5
	// resubmitBackoff is the base delay before a resubmission; it
	// doubles per attempt.
	resubmitBackoff = sim.Duration(2) * sim.Microsecond
)

// xferTimeout is the completion watchdog deadline for an n-byte
// transfer: generous fixed slack plus a per-byte term, so a slow large
// transfer is never mistaken for a lost one.
func xferTimeout(n int) sim.Duration {
	return sim.Ms(1) + sim.Duration(n)*20*sim.Nanosecond
}

// Options selects optional driver behaviours at probe time.
type Options struct {
	// PollMode runs the driver without completion interrupts: channel
	// IRQs stay disabled in the IRQ block and every submit programs the
	// engine's poll-mode writeback (CtrlPollModeWB), then busy-spins on
	// the 4-byte status word the engine DMA-writes into host memory.
	// This is the poll_mode=1 variant of the reference driver.
	PollMode bool
	// Poll tunes the spin loop; zero fields take
	// hostos.DefaultPollPolicy values.
	Poll hostos.PollPolicy
}

// Driver is a bound XDMA function exposing H2C and C2H device nodes.
type Driver struct {
	host *hostos.Host
	ep   *pcie.Endpoint
	bar1 uint64
	opt  Options

	// spinner drives poll-mode completion waits (nil in interrupt mode).
	spinner *hostos.Spinner

	h2c *channelState
	c2h *channelState

	// CardOffset is where transfers land in / come from card memory.
	CardOffset uint64

	// Recovery counters, registered only when fault injection is armed.
	recResets, recWatchdog, recResubmits *telemetry.Counter
}

type channelState struct {
	drv      *Driver
	name     string
	h2c      bool
	chanBase uint64
	sgdma    uint64
	vector   int
	irqBit   uint32

	buf      mem.Addr // bounce buffer
	descSlot mem.Addr // single descriptor in host memory
	descList mem.Addr // chained descriptor ring for batch submissions
	// wbSlot is the poll-mode writeback word (own cache line); wbReadyFn
	// is the spin predicate over it, bound once at probe so the
	// steady-state poll path does not allocate.
	wbSlot    mem.Addr
	wbReadyFn func(p *sim.Proc) bool
	wq        *hostos.WaitQueue
	complete  bool
	busy      bool
	// errSeen records a StatusDescError observed by the ISR; timedOut
	// records a completion-watchdog expiry. Both only change under
	// fault injection.
	errSeen  bool
	timedOut bool

	Transfers int

	spanName               string
	transfers, bytes, irqs *telemetry.Counter
}

// Probe binds the driver to an enumerated XDMA function and registers
// its character devices as /dev/<name>_h2c_0 and /dev/<name>_c2h_0.
func Probe(p *sim.Proc, h *hostos.Host, info *pcie.DeviceInfo, name string) (*Driver, error) {
	return ProbeWithOptions(p, h, info, name, Options{})
}

// ProbeWithOptions is Probe with explicit driver options.
func ProbeWithOptions(p *sim.Proc, h *hostos.Host, info *pcie.DeviceInfo, name string, opt Options) (*Driver, error) {
	if info.VendorID != xdmaip.XilinxVendorID || info.DeviceID != xdmaip.XDMADeviceID {
		return nil, fmt.Errorf("xdmadrv: not an XDMA function: %04x:%04x", info.VendorID, info.DeviceID)
	}
	d := &Driver{host: h, ep: info.EP, bar1: info.BAR[1], opt: opt}
	if opt.PollMode {
		d.spinner = h.NewSpinner(opt.Poll)
	}
	d.h2c = d.newChannel(p, name+"_h2c_0", true, xdmaip.H2CChannelBase, xdmaip.H2CSGDMABase, xdmaip.VecH2C, 1<<0)
	d.c2h = d.newChannel(p, name+"_c2h_0", false, xdmaip.C2HChannelBase, xdmaip.C2HSGDMABase, xdmaip.VecC2H, 1<<1)

	if opt.PollMode {
		// No completion interrupts: the IRQ block's channel enables stay
		// 0, so the engines never raise VecH2C/VecC2H and the critical
		// path carries no irq-layer time at all.
		h.RC.MMIOWrite(p, d.bar1+xdmaip.IRQBlockBase+xdmaip.RegIRQChanEnable, 4, 0)
	} else {
		// Enable both channel interrupts in the IRQ block.
		h.RC.MMIOWrite(p, d.bar1+xdmaip.IRQBlockBase+xdmaip.RegIRQChanEnable, 4, 0x3)
	}

	if d.ep.Faults() != nil {
		reg := h.Metrics()
		d.recResets = reg.Counter(telemetry.MetricRecoveryXDMAResets)
		d.recWatchdog = reg.Counter(telemetry.MetricRecoveryXDMAWatchdog)
		d.recResubmits = reg.Counter(telemetry.MetricRecoveryXDMAResubmits)
	}

	h.RegisterCharDev("/dev/"+d.h2c.name, d.h2c)
	h.RegisterCharDev("/dev/"+d.c2h.name, d.c2h)
	return d, nil
}

func (d *Driver) newChannel(p *sim.Proc, name string, h2c bool, chanBase, sgdma uint64, vector int, irqBit uint32) *channelState {
	reg := d.host.Metrics()
	dir := "c2h"
	if h2c {
		dir = "h2c"
	}
	ch := &channelState{
		drv:       d,
		name:      name,
		h2c:       h2c,
		chanBase:  chanBase,
		sgdma:     sgdma,
		vector:    vector,
		irqBit:    irqBit,
		buf:       d.host.Alloc.Alloc(MaxTransfer, 4096),
		descSlot:  d.host.Alloc.Alloc(xdmaip.DescSize, 32),
		descList:  d.host.Alloc.Alloc(MaxBatchDescs*xdmaip.DescSize, 32),
		wq:        d.host.NewWaitQueue(name),
		spanName:  "xdma." + dir,
		transfers: reg.Counter(telemetry.MetricXDMATransfers(dir)),
		bytes:     reg.Counter(telemetry.MetricXDMABytes(dir)),
		irqs:      reg.Counter(telemetry.MetricXDMAIRQs(dir)),
	}
	d.host.RegisterIRQ(d.ep, vector, ch.isr)
	if d.opt.PollMode {
		// One writeback word per channel on its own cache line, plus the
		// one-time programming of the engine's writeback address.
		ch.wbSlot = d.host.Alloc.Alloc(64, 64)
		ch.wbReadyFn = func(p *sim.Proc) bool {
			return d.host.Mem.U32(ch.wbSlot)&xdmaip.WbDone != 0
		}
		d.host.RC.MMIOWrite(p, d.bar1+chanBase+xdmaip.RegPollWbLo, 4, uint64(uint32(ch.wbSlot)))
		d.host.RC.MMIOWrite(p, d.bar1+chanBase+xdmaip.RegPollWbHi, 4, uint64(ch.wbSlot)>>32)
	}
	return ch
}

// Spinner exposes the poll-mode spin accounting (nil in interrupt
// mode), so sessions and tests can read the spin policy in effect.
func (d *Driver) Spinner() *hostos.Spinner { return d.spinner }

// NoteDataRetry records a session-level end-to-end retry (a round trip
// whose data integrity check failed under fault injection and was
// reissued). Callers must only invoke it with fault injection armed.
func (d *Driver) NoteDataRetry() { d.recResubmits.Inc() }

// H2CStats and C2HStats report per-channel transfer counts.
func (d *Driver) H2CStats() int { return d.h2c.Transfers }

// C2HStats reports completed card-to-host transfers.
func (d *Driver) C2HStats() int { return d.c2h.Transfers }

// isr is the interrupt handler: read (and clear) engine status, then
// wake the blocked file operation. An engine-error status (never set
// without fault injection) wakes the waiter with errSeen so the submit
// loop can reset the channel and resubmit.
func (ch *channelState) isr(p *sim.Proc) {
	d := ch.drv
	ch.irqs.Inc()
	d.host.CPUWork(p, isrBodyCost)
	st := d.host.RC.MMIORead(p, d.bar1+ch.chanBase+xdmaip.RegChanStatus+4, 4)
	if st&xdmaip.StatusDescError != 0 {
		ch.errSeen = true
		ch.wq.Wake()
		return
	}
	if st&xdmaip.StatusDescComplete != 0 {
		ch.complete = true
		ch.wq.Wake()
	}
}

// transfer runs one blocking DMA operation of n bytes.
func (ch *channelState) transfer(p *sim.Proc, n int) error {
	if n <= 0 || n > MaxTransfer {
		return fmt.Errorf("xdmadrv: %s: invalid transfer size %d", ch.name, n)
	}
	if ch.busy {
		return fmt.Errorf("xdmadrv: %s: channel busy", ch.name)
	}
	ch.busy = true
	defer func() { ch.busy = false }()
	d := ch.drv
	sp := d.host.Sim.BeginSpan(telemetry.LayerDriver, ch.spanName)
	defer sp.End()

	// Build the descriptor in host memory.
	d.host.CPUWork(p, descBuildCost)
	desc := xdmaip.Descriptor{
		Control: xdmaip.DescStop | xdmaip.DescCompleted | xdmaip.DescEOP,
		Len:     uint32(n),
	}
	if ch.h2c {
		desc.Src = uint64(ch.buf)
		desc.Dst = d.CardOffset
	} else {
		desc.Src = d.CardOffset
		desc.Dst = uint64(ch.buf)
	}
	desc.Encode(d.host.Mem, ch.descSlot)

	if err := ch.submit(p, ch.descSlot, n); err != nil {
		return err
	}

	// Stop the engine (clear Run) and tear down.
	d.host.RC.MMIOWrite(p, d.bar1+ch.chanBase+xdmaip.RegChanControl, 4, 0)
	d.host.CPUWork(p, completionCost)
	ch.Transfers++
	ch.transfers.Inc()
	ch.bytes.Add(int64(n))
	return nil
}

// submit programs the engine for a descriptor (or descriptor list) of
// n total bytes and blocks until completion. Without fault injection
// it is exactly the reference driver's engine start and bare wait;
// with faults armed a failed or lost run is retried after a channel
// reset with bounded exponential backoff. Resubmission is idempotent:
// the descriptors, bounce buffer, and card addresses are unchanged.
func (ch *channelState) submit(p *sim.Proc, descAddr mem.Addr, n int) error {
	d := ch.drv
	faulted := d.ep.Faults() != nil
	for attempt := 0; ; attempt++ {
		// Program the engine: the reference driver first reads the engine
		// status (a non-posted round trip), then writes the descriptor
		// address (lo/hi/adjacent) and the control register with Run +
		// interrupt enables.
		d.host.CPUWork(p, submitCost)
		d.host.RC.MMIORead(p, d.bar1+ch.chanBase+xdmaip.RegChanStatus, 4)
		d.host.RC.MMIOWrite(p, d.bar1+ch.sgdma+xdmaip.RegDescLo, 4, uint64(uint32(descAddr)))
		d.host.RC.MMIOWrite(p, d.bar1+ch.sgdma+xdmaip.RegDescHi, 4, uint64(descAddr)>>32)
		d.host.RC.MMIOWrite(p, d.bar1+ch.sgdma+xdmaip.RegDescAdj, 4, 0)
		ch.complete = false
		ch.errSeen = false
		if d.opt.PollMode {
			// Clear the writeback word, then start the run with poll-mode
			// writeback instead of the interrupt enables.
			d.host.Mem.PutU32(ch.wbSlot, 0)
			d.host.RC.MMIOWrite(p, d.bar1+ch.chanBase+xdmaip.RegChanControl, 4,
				xdmaip.CtrlRun|xdmaip.CtrlPollModeWB)
			if ch.pollAwait(p, n, faulted) {
				return nil
			}
		} else {
			d.host.RC.MMIOWrite(p, d.bar1+ch.chanBase+xdmaip.RegChanControl, 4,
				xdmaip.CtrlRun|xdmaip.CtrlIEDescComplete|xdmaip.CtrlIEDescStopped)

			if !faulted {
				// Block until the completion interrupt.
				for !ch.complete {
					ch.wq.Wait(p)
				}
				return nil
			}
			if ch.await(p, n) {
				return nil
			}
		}
		// Engine error or lost run: reset the channel (clear Run) and
		// resubmit after a backoff.
		d.host.RC.MMIOWrite(p, d.bar1+ch.chanBase+xdmaip.RegChanControl, 4, 0)
		d.recResets.Inc()
		if attempt >= maxResubmits {
			return fmt.Errorf("xdmadrv: %s: transfer failed after %d resubmits", ch.name, attempt)
		}
		p.Sleep(resubmitBackoff << uint(attempt))
		d.recResubmits.Inc()
	}
}

// await blocks for the transfer outcome under a completion watchdog.
// It reports true when the transfer completed (including completions
// whose interrupt was lost, recovered via the status mirror) and false
// when the channel needs a reset and resubmit.
func (ch *channelState) await(p *sim.Proc, n int) bool {
	d := ch.drv
	for {
		ch.timedOut = false
		ev := d.host.Sim.After(xferTimeout(n), ch.name+".watchdog", func() {
			if fvassert.Enabled && !ch.busy {
				fvassert.Failf("xdmadrv: %s: watchdog fired with no transfer in flight", ch.name)
			}
			if ch.complete {
				// Completion raced the timer arm; never escalate a
				// finished transfer.
				return
			}
			ch.timedOut = true
			ch.wq.Wake()
		})
		for !ch.complete && !ch.errSeen && !ch.timedOut {
			ch.wq.Wait(p)
		}
		ev.Cancel()
		if ch.complete {
			return true
		}
		if ch.errSeen {
			return false
		}
		// Watchdog expiry: triage through the engine's status mirror.
		d.recWatchdog.Inc()
		st := d.host.RC.MMIORead(p, d.bar1+ch.chanBase+xdmaip.RegChanStatus+4, 4)
		switch {
		case st == 1<<32-1:
			// Poisoned/stalled readback: assume the worst and resubmit.
			return false
		case st&xdmaip.StatusDescError != 0:
			return false
		case st&xdmaip.StatusDescComplete != 0:
			// The transfer finished but its interrupt was lost.
			ch.complete = true
			return true
		case st&xdmaip.StatusBusy != 0:
			// An honestly slow transfer: keep waiting.
			continue
		default:
			// The engine never started — the Run write was lost.
			return false
		}
	}
}

// pollAwait spins on the channel's poll-writeback word until the
// engine reports the run's outcome, charging spin and yield costs
// through the driver's spinner. It reports true when the transfer
// completed and false when the channel needs a reset and resubmit.
//
// Without fault injection the writeback always arrives and its error
// bit never sets, so the wait is a bare spin on the pre-bound
// predicate (allocation-free). With faults armed the writeback itself
// can be lost or the run can fail, so deadline triage rides the
// spinner's yield slots: past the watchdog deadline the loop reads the
// engine's status mirror and applies the same triage the interrupt
// watchdog does — no timer, no interrupt, just the poll loop noticing.
func (ch *channelState) pollAwait(p *sim.Proc, n int, faulted bool) bool {
	d := ch.drv
	if !faulted {
		d.spinner.Spin(p, ch.wbReadyFn, nil)
		return true
	}
	outcome := 0 // 0 spinning, >0 complete, <0 reset-and-resubmit
	deadline := p.Now().Add(xferTimeout(n))
	d.spinner.Spin(p, func(p *sim.Proc) bool {
		if outcome != 0 {
			return true
		}
		wb := d.host.Mem.U32(ch.wbSlot)
		if wb&xdmaip.WbDone == 0 {
			return false
		}
		if wb&xdmaip.WbErr != 0 {
			outcome = -1
		} else {
			outcome = 1
		}
		return true
	}, func(p *sim.Proc) {
		if outcome != 0 || p.Now() < deadline {
			return
		}
		d.recWatchdog.Inc()
		st := d.host.RC.MMIORead(p, d.bar1+ch.chanBase+xdmaip.RegChanStatus+4, 4)
		switch {
		case st == 1<<32-1:
			// Poisoned/stalled readback: assume the worst and resubmit.
			outcome = -1
		case st&xdmaip.StatusDescError != 0:
			outcome = -1
		case st&xdmaip.StatusDescComplete != 0:
			// The run finished but its writeback never landed.
			outcome = 1
		case st&xdmaip.StatusBusy != 0:
			// An honestly slow transfer: extend the deadline, keep spinning.
			deadline = p.Now().Add(xferTimeout(n))
		default:
			// The engine never started — the Run write was lost.
			outcome = -1
		}
	})
	return outcome > 0
}

// xferSeg is one entry of a chained descriptor list: n bytes between
// bounce-buffer offset off and card address card.
type xferSeg struct {
	card uint64
	off  int
	n    int
}

// transferList runs one blocking DMA over a chained descriptor list:
// one engine start, one completion interrupt, and one teardown for the
// whole batch, against descBuildCost + (len-1)·descChainCost of CPU
// work. This is the descriptor-list submission mode the streaming
// benchmark uses to pipeline transfers through the engine.
func (ch *channelState) transferList(p *sim.Proc, segs []xferSeg) error {
	if len(segs) == 0 || len(segs) > MaxBatchDescs {
		return fmt.Errorf("xdmadrv: %s: invalid descriptor list length %d", ch.name, len(segs))
	}
	total := 0
	for _, s := range segs {
		if s.n <= 0 || s.off < 0 || s.off+s.n > MaxTransfer {
			return fmt.Errorf("xdmadrv: %s: invalid segment off=%d len=%d", ch.name, s.off, s.n)
		}
		total += s.n
	}
	if ch.busy {
		return fmt.Errorf("xdmadrv: %s: channel busy", ch.name)
	}
	ch.busy = true
	defer func() { ch.busy = false }()
	d := ch.drv
	sp := d.host.Sim.BeginSpan(telemetry.LayerDriver, ch.spanName)
	defer sp.End()

	// Build the chained list in host memory; extra descriptors amortize
	// against the first one's full transfer-init cost.
	d.host.CPUWork(p, descBuildCost)
	if len(segs) > 1 {
		d.host.CPUWork(p, sim.Duration(len(segs)-1)*descChainCost)
	}
	for i, s := range segs {
		slot := ch.descList + mem.Addr(i*xdmaip.DescSize)
		desc := xdmaip.Descriptor{
			Control: xdmaip.DescCompleted | xdmaip.DescEOP,
			Len:     uint32(s.n),
		}
		if i == len(segs)-1 {
			desc.Control |= xdmaip.DescStop
		} else {
			desc.Next = uint64(slot) + xdmaip.DescSize
		}
		if ch.h2c {
			desc.Src = uint64(ch.buf) + uint64(s.off)
			desc.Dst = s.card
		} else {
			desc.Src = s.card
			desc.Dst = uint64(ch.buf) + uint64(s.off)
		}
		desc.Encode(d.host.Mem, slot)
	}

	// Program the engine once for the whole list.
	if err := ch.submit(p, ch.descList, total); err != nil {
		return err
	}

	d.host.RC.MMIOWrite(p, d.bar1+ch.chanBase+xdmaip.RegChanControl, 4, 0)
	d.host.CPUWork(p, completionCost)
	ch.Transfers++
	ch.transfers.Inc()
	ch.bytes.Add(int64(total))
	return nil
}

// Write implements hostos.CharDev for the H2C node: copy_from_user
// into the bounce buffer, then DMA host-to-card.
func (ch *channelState) Write(p *sim.Proc, data []byte) (int, error) {
	if !ch.h2c {
		return 0, fmt.Errorf("xdmadrv: %s: write on C2H node", ch.name)
	}
	if len(data) > MaxTransfer {
		return 0, fmt.Errorf("xdmadrv: transfer too large: %d", len(data))
	}
	ch.drv.host.Copy(p, len(data))
	ch.drv.host.Mem.Write(ch.buf, data)
	if err := ch.transfer(p, len(data)); err != nil {
		return 0, err
	}
	return len(data), nil
}

// Read implements hostos.CharDev for the C2H node: DMA card-to-host,
// then copy_to_user.
func (ch *channelState) Read(p *sim.Proc, buf []byte) (int, error) {
	if ch.h2c {
		return 0, fmt.Errorf("xdmadrv: %s: read on H2C node", ch.name)
	}
	if err := ch.transfer(p, len(buf)); err != nil {
		return 0, err
	}
	ch.drv.host.Copy(p, len(buf))
	ch.drv.host.Mem.ReadInto(ch.buf, buf)
	return len(buf), nil
}

// WriteBatch writes every payload host-to-card through one chained
// descriptor list, landing payload i at card address cardBase+i·stride.
// The whole batch shares a single copy_from_user, engine start, and
// completion interrupt.
func (d *Driver) WriteBatch(p *sim.Proc, cardBase uint64, stride int, payloads [][]byte) error {
	ch := d.h2c
	segs := make([]xferSeg, 0, len(payloads))
	off := 0
	for i, b := range payloads {
		if off+len(b) > MaxTransfer {
			return fmt.Errorf("xdmadrv: batch exceeds bounce buffer: %d bytes", off+len(b))
		}
		segs = append(segs, xferSeg{card: cardBase + uint64(i*stride), off: off, n: len(b)})
		off += len(b)
	}
	d.host.Copy(p, off)
	off = 0
	for _, b := range payloads {
		d.host.Mem.Write(ch.buf+mem.Addr(off), b)
		off += len(b)
	}
	return ch.transferList(p, segs)
}

// ReadBatch fills every buffer card-to-host from cardBase+i·stride
// through one chained descriptor list, then a single copy_to_user.
func (d *Driver) ReadBatch(p *sim.Proc, cardBase uint64, stride int, bufs [][]byte) error {
	ch := d.c2h
	segs := make([]xferSeg, 0, len(bufs))
	off := 0
	for i, b := range bufs {
		if off+len(b) > MaxTransfer {
			return fmt.Errorf("xdmadrv: batch exceeds bounce buffer: %d bytes", off+len(b))
		}
		segs = append(segs, xferSeg{card: cardBase + uint64(i*stride), off: off, n: len(b)})
		off += len(b)
	}
	if err := ch.transferList(p, segs); err != nil {
		return err
	}
	d.host.Copy(p, off)
	off = 0
	for _, b := range bufs {
		d.host.Mem.ReadInto(ch.buf+mem.Addr(off), b)
		off += len(b)
	}
	return nil
}
