package xdmadrv_test

import (
	"bytes"
	"testing"

	"fpgavirtio/internal/drivers/xdmadrv"
	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/xdmaip"
)

func testbed(t *testing.T, fn func(p *sim.Proc, h *hostos.Host, dev *xdmaip.VendorDevice, drv *xdmadrv.Driver)) {
	t.Helper()
	s := sim.New()
	cfg := hostos.DefaultConfig()
	cfg.JitterSigma = 0
	cfg.PreemptMeanGap = 0
	cfg.WakeTailProb = 0
	h := hostos.New(s, 8<<20, cfg, 21)
	dev := xdmaip.NewVendor(s, h.RC, "xdma0", xdmaip.DefaultConfig())
	failed := false
	s.Go("app", func(p *sim.Proc) {
		defer s.Stop()
		infos := h.RC.Enumerate(p)
		if len(infos) != 1 {
			t.Errorf("enumerated %d devices", len(infos))
			failed = true
			return
		}
		drv, err := xdmadrv.Probe(p, h, infos[0], "xdma0")
		if err != nil {
			t.Error(err)
			failed = true
			return
		}
		fn(p, h, dev, drv)
	})
	if err := s.Run(); err != nil && !failed {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	testbed(t, func(p *sim.Proc, h *hostos.Host, dev *xdmaip.VendorDevice, drv *xdmadrv.Driver) {
		h2c, err := h.Open("/dev/xdma0_h2c_0")
		if err != nil {
			t.Error(err)
			return
		}
		c2h, err := h.Open("/dev/xdma0_c2h_0")
		if err != nil {
			t.Error(err)
			return
		}
		payload := make([]byte, 1024)
		sim.NewRNG(5).Bytes(payload)
		if n, err := h2c.Write(p, payload); err != nil || n != len(payload) {
			t.Errorf("write: n=%d err=%v", n, err)
			return
		}
		// Data must be in card BRAM now.
		if !bytes.Equal(dev.BRAM().Read(0, len(payload)), payload) {
			t.Error("BRAM does not hold written data")
		}
		back := make([]byte, len(payload))
		if n, err := c2h.Read(p, back); err != nil || n != len(back) {
			t.Errorf("read: n=%d err=%v", n, err)
			return
		}
		if !bytes.Equal(back, payload) {
			t.Error("round-trip data mismatch")
		}
		if drv.H2CStats() != 1 || drv.C2HStats() != 1 {
			t.Errorf("transfer counts: h2c=%d c2h=%d", drv.H2CStats(), drv.C2HStats())
		}
	})
}

func TestManyRoundTripsAndCounters(t *testing.T) {
	testbed(t, func(p *sim.Proc, h *hostos.Host, dev *xdmaip.VendorDevice, drv *xdmadrv.Driver) {
		h2c, _ := h.Open("/dev/xdma0_h2c_0")
		c2h, _ := h.Open("/dev/xdma0_c2h_0")
		const n = 10
		buf := make([]byte, 256)
		for i := 0; i < n; i++ {
			buf[0] = byte(i)
			if _, err := h2c.Write(p, buf); err != nil {
				t.Error(err)
				return
			}
			out := make([]byte, 256)
			if _, err := c2h.Read(p, out); err != nil {
				t.Error(err)
				return
			}
			if out[0] != byte(i) {
				t.Errorf("iteration %d data mismatch", i)
				return
			}
		}
		if got := len(dev.H2CCounter().Samples()); got != n {
			t.Errorf("H2C hw samples = %d, want %d", got, n)
		}
		if got := len(dev.C2HCounter().Samples()); got != n {
			t.Errorf("C2H hw samples = %d, want %d", got, n)
		}
		// Two interrupts (H2C + C2H) per round trip — the cost the paper
		// notes the XDMA path pays that VirtIO avoids.
		if irqs := dev.EP().Stats().Interrupts; irqs != 2*n {
			t.Errorf("interrupts = %d, want %d", irqs, 2*n)
		}
	})
}

func TestWrongDirectionRejected(t *testing.T) {
	testbed(t, func(p *sim.Proc, h *hostos.Host, dev *xdmaip.VendorDevice, drv *xdmadrv.Driver) {
		h2c, _ := h.Open("/dev/xdma0_h2c_0")
		c2h, _ := h.Open("/dev/xdma0_c2h_0")
		if _, err := h2c.Read(p, make([]byte, 8)); err == nil {
			t.Error("read on H2C node succeeded")
		}
		if _, err := c2h.Write(p, make([]byte, 8)); err == nil {
			t.Error("write on C2H node succeeded")
		}
	})
}

func TestOversizeTransferRejected(t *testing.T) {
	testbed(t, func(p *sim.Proc, h *hostos.Host, dev *xdmaip.VendorDevice, drv *xdmadrv.Driver) {
		h2c, _ := h.Open("/dev/xdma0_h2c_0")
		if _, err := h2c.Write(p, make([]byte, xdmadrv.MaxTransfer+1)); err == nil {
			t.Error("oversize write succeeded")
		}
	})
}

func TestProbeRejectsWrongDevice(t *testing.T) {
	s := sim.New()
	cfg := hostos.DefaultConfig()
	cfg.JitterSigma = 0
	cfg.PreemptMeanGap = 0
	cfg.WakeTailProb = 0
	h := hostos.New(s, 1<<20, cfg, 1)
	// No device attached at all: enumeration returns nothing to probe.
	s.Go("app", func(p *sim.Proc) {
		defer s.Stop()
		if infos := h.RC.Enumerate(p); len(infos) != 0 {
			t.Errorf("unexpected devices: %d", len(infos))
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyIsDeterministicWhenQuiet(t *testing.T) {
	measure := func() sim.Duration {
		var rtt sim.Duration
		testbed(t, func(p *sim.Proc, h *hostos.Host, dev *xdmaip.VendorDevice, drv *xdmadrv.Driver) {
			h2c, _ := h.Open("/dev/xdma0_h2c_0")
			c2h, _ := h.Open("/dev/xdma0_c2h_0")
			buf := make([]byte, 128)
			t0 := p.Now()
			h2c.Write(p, buf)
			out := make([]byte, 128)
			c2h.Read(p, out)
			rtt = p.Now().Sub(t0)
		})
		return rtt
	}
	a, b := measure(), measure()
	if a != b {
		t.Fatalf("quiet-config RTT not deterministic: %v vs %v", a, b)
	}
	if a < sim.Us(5) || a > sim.Us(60) {
		t.Fatalf("RTT %v outside plausible envelope", a)
	}
}
