package virtiopci_test

import (
	"testing"

	"fpgavirtio/internal/drivers/virtiopci"
	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/vdev"
	"fpgavirtio/internal/virtio"
)

func newConsoleTestbed(t *testing.T) (*sim.Sim, *hostos.Host, *vdev.ConsoleDevice) {
	t.Helper()
	s := sim.New()
	cfg := hostos.DefaultConfig()
	cfg.JitterSigma = 0
	cfg.PreemptMeanGap = 0
	cfg.WakeTailProb = 0
	h := hostos.New(s, 4<<20, cfg, 1)
	dev := vdev.NewConsole(s, h.RC, "vcon", vdev.ConsoleOptions{Link: pcie.DefaultGen2x2()})
	return s, h, dev
}

func run(t *testing.T, s *sim.Sim, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	s.Go("test", func(p *sim.Proc) {
		defer s.Stop()
		fn(p)
		done = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("test proc did not finish")
	}
}

func TestProbeFindsAllWindows(t *testing.T) {
	s, h, _ := newConsoleTestbed(t)
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		tr, err := virtiopci.Probe(p, h, infos[0])
		if err != nil {
			t.Error(err)
			return
		}
		// Feature negotiation proves the common window was located;
		// queue setup proves notify; device config read proves device.
		feats, err := tr.Negotiate(p, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if !feats.Has(virtio.FVersion1) {
			t.Errorf("features = %v", feats)
		}
		if tr.NumQueues() != 2 {
			t.Errorf("num queues = %d", tr.NumQueues())
		}
	})
}

func TestProbeRejectsForeignVendor(t *testing.T) {
	s := sim.New()
	cfg := hostos.DefaultConfig()
	cfg.JitterSigma = 0
	cfg.PreemptMeanGap = 0
	cfg.WakeTailProb = 0
	h := hostos.New(s, 1<<20, cfg, 1)
	cs := pcie.NewConfigSpace(0xabcd, 0x1234, 0, 0, 0)
	cs.SetBARSize(0, 4096)
	ep := h.RC.Attach("other", cs, pcie.DefaultGen2x2())
	ep.SetBarHandlers(0, pcie.BarHandlers{})
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		if _, err := virtiopci.Probe(p, h, infos[0]); err == nil {
			t.Error("foreign device probed successfully")
		}
	})
}

func TestNegotiateMasksUnwantedFeatures(t *testing.T) {
	s := sim.New()
	cfg := hostos.DefaultConfig()
	cfg.JitterSigma = 0
	cfg.PreemptMeanGap = 0
	cfg.WakeTailProb = 0
	h := hostos.New(s, 4<<20, cfg, 1)
	vdev.NewNet(s, h.RC, "vnet", vdev.NetOptions{
		Link:        pcie.DefaultGen2x2(),
		OfferCsum:   true,
		OfferCtrlVQ: true,
	})
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		tr, err := virtiopci.Probe(p, h, infos[0])
		if err != nil {
			t.Error(err)
			return
		}
		// Want only MAC: CSUM must not be negotiated even though offered.
		feats, err := tr.Negotiate(p, virtio.NetFMAC)
		if err != nil {
			t.Error(err)
			return
		}
		if feats.Has(virtio.NetFCsum) {
			t.Errorf("unwanted CSUM negotiated: %v", feats)
		}
		if !feats.Has(virtio.NetFMAC) || !feats.Has(virtio.FVersion1) {
			t.Errorf("wanted features missing: %v", feats)
		}
	})
}

func TestSetupQueueErrors(t *testing.T) {
	s, h, _ := newConsoleTestbed(t)
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		tr, err := virtiopci.Probe(p, h, infos[0])
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := tr.Negotiate(p, 0); err != nil {
			t.Error(err)
			return
		}
		// Console has queues 0 and 1; 5 must not exist.
		if _, err := tr.SetupQueue(p, 5, 64); err == nil {
			t.Error("setup of nonexistent queue succeeded")
		}
		// Oversized request clamps to the device maximum.
		vq, err := tr.SetupQueue(p, 0, 100000)
		if err != nil {
			t.Error(err)
			return
		}
		if vq.Size() > 256 {
			t.Errorf("queue size %d not clamped", vq.Size())
		}
	})
}

func TestKickAndChainLifecycle(t *testing.T) {
	s, h, _ := newConsoleTestbed(t)
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		tr, _ := virtiopci.Probe(p, h, infos[0])
		tr.Negotiate(p, 0)
		rxq, err := tr.SetupQueue(p, 0, 16)
		if err != nil {
			t.Error(err)
			return
		}
		txq, err := tr.SetupQueue(p, 1, 16)
		if err != nil {
			t.Error(err)
			return
		}
		// Post an RX buffer, then write via TX; the echo device fills
		// the RX buffer and completes the TX chain.
		rxBuf := tr.AllocBuffer(256)
		if err := rxq.AddChain(p, []virtio.BufSeg{{Addr: rxBuf, Len: 256, DeviceWritten: true}}, "rx"); err != nil {
			t.Error(err)
			return
		}
		rxq.Kick(p)

		// No-op handlers: the test polls instead of sleeping in an ISR.
		rxq.RegisterIRQ(func(p *sim.Proc) {})
		txq.RegisterIRQ(func(p *sim.Proc) {})

		txBuf := tr.AllocBuffer(16)
		h.Mem.Write(txBuf, []byte("ping-console!!!!"))
		tr.DriverOK(p)
		if err := txq.AddChain(p, []virtio.BufSeg{{Addr: txBuf, Len: 16}}, "tx"); err != nil {
			t.Error(err)
			return
		}
		txq.Kick(p)

		// Give the device time to run both directions.
		p.Sleep(sim.Ms(1))
		if got := txq.Harvest(p); len(got) != 1 || got[0].Token != "tx" {
			t.Errorf("tx harvest = %+v", got)
		}
		got := rxq.Harvest(p)
		if len(got) != 1 || got[0].Written != 16 {
			t.Errorf("rx harvest = %+v", got)
			return
		}
		if string(h.Mem.Read(rxBuf, 16)) != "ping-console!!!!" {
			t.Error("echo data mismatch")
		}
	})
}

func TestResetClearsDeviceState(t *testing.T) {
	s, h, dev := newConsoleTestbed(t)
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		tr, _ := virtiopci.Probe(p, h, infos[0])
		tr.Negotiate(p, 0)
		tr.SetupQueue(p, 0, 16)
		tr.DriverOK(p)
		p.Sleep(sim.Us(2)) // DriverOK is a posted write; let it land
		if dev.Controller().Status()&virtio.StatusDriverOK == 0 {
			t.Error("driver-ok not visible on device")
		}
		tr.Reset(p)
		if dev.Controller().Status() != 0 {
			t.Errorf("status after reset = %#x", dev.Controller().Status())
		}
	})
}

func TestISRReadClears(t *testing.T) {
	s, h, _ := newConsoleTestbed(t)
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		tr, _ := virtiopci.Probe(p, h, infos[0])
		tr.Negotiate(p, 0)
		rxq, _ := tr.SetupQueue(p, 0, 16)
		txq, _ := tr.SetupQueue(p, 1, 16)
		rxq.RegisterIRQ(func(p *sim.Proc) {})
		txq.RegisterIRQ(func(p *sim.Proc) {})
		rxBuf := tr.AllocBuffer(64)
		rxq.AddChain(p, []virtio.BufSeg{{Addr: rxBuf, Len: 64, DeviceWritten: true}}, nil)
		rxq.Kick(p)
		tr.DriverOK(p)
		txBuf := tr.AllocBuffer(4)
		txq.AddChain(p, []virtio.BufSeg{{Addr: txBuf, Len: 4}}, nil)
		txq.Kick(p)
		p.Sleep(sim.Ms(1))
		if isr := tr.ReadISR(p); isr&virtio.ISRQueue == 0 {
			t.Errorf("ISR = %#x, want queue bit", isr)
		}
		if isr := tr.ReadISR(p); isr != 0 {
			t.Errorf("ISR not cleared by read: %#x", isr)
		}
	})
}
