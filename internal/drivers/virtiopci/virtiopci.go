// Package virtiopci is the modern VirtIO PCI transport as the kernel
// implements it: it discovers the VirtIO configuration structures by
// walking the PCI capability chain, drives the device status state
// machine, negotiates features, and sets up virtqueues. Because the
// FPGA controller presents a spec-compliant interface, this driver is
// exactly the unmodified front-end the paper runs against the device
// (§II-C).
package virtiopci

import (
	"fmt"

	"fpgavirtio/internal/fvassert"
	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
	"fpgavirtio/internal/virtio"
)

// Driver-side CPU costs of ring maintenance (virtqueue_add/get_buf).
const (
	addChainBaseCost = sim.Duration(220) * sim.Nanosecond
	addSegCost       = sim.Duration(70) * sim.Nanosecond
	getUsedCost      = sim.Duration(160) * sim.Nanosecond
)

// Transport is one bound virtio-pci function.
type Transport struct {
	Host *hostos.Host
	EP   *pcie.Endpoint

	commonBase uint64
	notifyBase uint64
	isrBase    uint64
	deviceBase uint64
	notifyMult uint32

	deviceFeatures virtio.Feature
	features       virtio.Feature // negotiated
	numQueues      int

	doorbells, kicksElided      *telemetry.Counter
	descsPosted, descsCompleted *telemetry.Counter

	// mmioRetries counts config-space read retries and status rewrites
	// issued while recovering from injected completion faults. Only
	// registered when the endpoint has a fault injector armed, so the
	// zero-fault metric snapshot is unchanged.
	mmioRetries *telemetry.Counter
}

// Probe binds to an enumerated VirtIO function: verify IDs, walk the
// capability chain (config reads over the bus), and locate the four
// configuration windows.
func Probe(p *sim.Proc, h *hostos.Host, info *pcie.DeviceInfo) (*Transport, error) {
	if info.VendorID != virtio.PCIVendorID {
		return nil, fmt.Errorf("virtiopci: not a virtio device: vendor %#x", info.VendorID)
	}
	reg := h.Metrics()
	t := &Transport{
		Host:           h,
		EP:             info.EP,
		doorbells:      reg.Counter(telemetry.MetricVirtioDoorbells),
		kicksElided:    reg.Counter(telemetry.MetricVirtioKicksElided),
		descsPosted:    reg.Counter(telemetry.MetricVirtioDescsPosted),
		descsCompleted: reg.Counter(telemetry.MetricVirtioDescsCompleted),
	}
	if info.EP.Faults() != nil {
		t.mmioRetries = reg.Counter(telemetry.MetricRecoveryMMIORetries)
	}
	// Walk the capability list the way pci_find_capability does.
	status := h.RC.ConfigRead32(p, info.EP, pcie.CfgCommand) >> 16
	if status&pcie.StatusCapList == 0 {
		return nil, fmt.Errorf("virtiopci: device has no capability list")
	}
	ptr := int(h.RC.ConfigRead32(p, info.EP, pcie.CfgCapPtr) & 0xff)
	for ptr != 0 {
		hdr := h.RC.ConfigRead32(p, info.EP, ptr)
		id := byte(hdr)
		next := int(hdr >> 8 & 0xff)
		if id == pcie.CapIDVendor {
			// Read the capability body (up to 20 bytes => 5 dwords).
			var body []byte
			for i := 0; i < 5; i++ {
				w := h.RC.ConfigRead32(p, info.EP, ptr+4*i)
				body = append(body, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
			}
			cap, err := virtio.DecodePCICap(body[2:])
			if err != nil {
				return nil, err
			}
			base := info.BAR[cap.Bar] + uint64(cap.Offset)
			switch cap.CfgType {
			case virtio.CfgTypeCommon:
				t.commonBase = base
			case virtio.CfgTypeNotify:
				t.notifyBase = base
				t.notifyMult = cap.NotifyOffMultiplier
			case virtio.CfgTypeISR:
				t.isrBase = base
			case virtio.CfgTypeDevice:
				t.deviceBase = base
			}
		}
		ptr = next
	}
	if t.commonBase == 0 || t.notifyBase == 0 {
		return nil, fmt.Errorf("virtiopci: missing common/notify capability")
	}
	return t, nil
}

// common-config accessors (MMIO through the root complex).

// readRetry is an MMIO read that tolerates injected completion faults.
// The bus surfaces a poisoned, timed-out, or stalled completion as
// all-ones (what a real root port returns on an unsupported-request or
// completer-abort), so an all-ones value from a register that can never
// legitimately be all-ones is retried with doubling backoff. Six
// retries starting at 1 us (1+2+4+8+16+32 us) outlast the injected
// stall window, after which the last value is returned as-is.
func (t *Transport) readRetry(p *sim.Proc, addr uint64, size int) uint64 {
	v := t.Host.RC.MMIORead(p, addr, size)
	if t.EP.Faults() == nil {
		return v
	}
	ones := uint64(1)<<(8*uint(size)) - 1
	delay := sim.Us(1)
	for i := 0; i < 6 && v == ones; i++ {
		t.mmioRetries.Inc()
		p.Sleep(delay)
		delay *= 2
		v = t.Host.RC.MMIORead(p, addr, size)
	}
	return v
}

func (t *Transport) cr8(p *sim.Proc, off uint64) byte {
	return byte(t.readRetry(p, t.commonBase+off, 1))
}
func (t *Transport) cw8(p *sim.Proc, off uint64, v byte) {
	t.Host.RC.MMIOWrite(p, t.commonBase+off, 1, uint64(v))
}
func (t *Transport) cr16(p *sim.Proc, off uint64) uint16 {
	return uint16(t.readRetry(p, t.commonBase+off, 2))
}
func (t *Transport) cw16(p *sim.Proc, off uint64, v uint16) {
	t.Host.RC.MMIOWrite(p, t.commonBase+off, 2, uint64(v))
}
func (t *Transport) cr32(p *sim.Proc, off uint64) uint32 {
	return uint32(t.readRetry(p, t.commonBase+off, 4))
}
func (t *Transport) cw32(p *sim.Proc, off uint64, v uint32) {
	t.Host.RC.MMIOWrite(p, t.commonBase+off, 4, uint64(v))
}

// statusWrite writes the device status register and, under fault
// injection, verifies the write landed — a dropped posted TLP would
// otherwise lose a bring-up step silently and wedge negotiation.
func (t *Transport) statusWrite(p *sim.Proc, st byte) {
	t.cw8(p, virtio.CommonDeviceStatus, st)
	if t.EP.Faults() == nil {
		return
	}
	for i := 0; i < 6; i++ {
		if t.cr8(p, virtio.CommonDeviceStatus) == st {
			return
		}
		t.mmioRetries.Inc()
		t.cw8(p, virtio.CommonDeviceStatus, st)
	}
}

// Reset writes status 0 and waits for the device to acknowledge. Under
// fault injection the zero write is reissued periodically in case the
// original TLP was dropped.
func (t *Transport) Reset(p *sim.Proc) {
	t.cw8(p, virtio.CommonDeviceStatus, 0)
	faulted := t.EP.Faults() != nil
	for i := 0; t.cr8(p, virtio.CommonDeviceStatus) != 0; i++ {
		p.Sleep(sim.Us(1))
		if faulted && i%4 == 3 {
			t.mmioRetries.Inc()
			t.cw8(p, virtio.CommonDeviceStatus, 0)
		}
	}
}

// ReadStatus reads the device status byte — the driver's NEEDS_RESET
// detection point (virtio 1.2 §2.1).
func (t *Transport) ReadStatus(p *sim.Proc) byte {
	return t.cr8(p, virtio.CommonDeviceStatus)
}

// Negotiate performs the status/feature dance up to FEATURES_OK.
func (t *Transport) Negotiate(p *sim.Proc, want virtio.Feature) (virtio.Feature, error) {
	t.Reset(p)
	t.statusWrite(p, virtio.StatusAcknowledge)
	t.statusWrite(p, virtio.StatusAcknowledge|virtio.StatusDriver)

	t.cw32(p, virtio.CommonDeviceFeatureSel, 0)
	lo := t.cr32(p, virtio.CommonDeviceFeature)
	t.cw32(p, virtio.CommonDeviceFeatureSel, 1)
	hi := t.cr32(p, virtio.CommonDeviceFeature)
	t.deviceFeatures = virtio.Feature(uint64(hi)<<32 | uint64(lo))

	if !t.deviceFeatures.Has(virtio.FVersion1) {
		return 0, fmt.Errorf("virtiopci: device does not offer VERSION_1")
	}
	t.features = t.deviceFeatures & (want | virtio.FVersion1)

	t.cw32(p, virtio.CommonDriverFeatureSel, 0)
	t.cw32(p, virtio.CommonDriverFeature, uint32(t.features))
	t.cw32(p, virtio.CommonDriverFeatureSel, 1)
	t.cw32(p, virtio.CommonDriverFeature, uint32(uint64(t.features)>>32))

	st := virtio.StatusAcknowledge | virtio.StatusDriver | virtio.StatusFeaturesOK
	t.statusWrite(p, byte(st))
	if t.cr8(p, virtio.CommonDeviceStatus)&virtio.StatusFeaturesOK == 0 {
		return 0, fmt.Errorf("virtiopci: device rejected features %v", t.features)
	}
	t.numQueues = int(t.cr16(p, virtio.CommonNumQueues))
	return t.features, nil
}

// Features returns the negotiated feature set.
func (t *Transport) Features() virtio.Feature { return t.features }

// NumQueues returns the device's queue count.
func (t *Transport) NumQueues() int { return t.numQueues }

// DriverOK completes bring-up.
func (t *Transport) DriverOK(p *sim.Proc) {
	st := virtio.StatusAcknowledge | virtio.StatusDriver | virtio.StatusFeaturesOK | virtio.StatusDriverOK
	t.statusWrite(p, byte(st))
}

// ReadDeviceConfig reads n bytes from the device-specific window.
func (t *Transport) ReadDeviceConfig(p *sim.Proc, off uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = byte(t.Host.RC.MMIORead(p, t.deviceBase+off+uint64(i), 1))
	}
	return out
}

// ReadISR reads (and thereby clears) the ISR status byte. The retry on
// a faulted completion is safe: a poisoned read never reaches the
// device, so the ISR bits are not consumed by the failed attempt.
func (t *Transport) ReadISR(p *sim.Proc) byte {
	return byte(t.readRetry(p, t.isrBase, 1))
}

// VQ is one configured virtqueue: the driver-side ring (split or
// packed, behind the DriverRing interface) plus its doorbell address.
type VQ struct {
	ring       virtio.DriverRing
	split      *virtio.DriverQueue // nil when the packed format is in use
	tr         *Transport
	Index      int
	size       int
	notifyAddr uint64

	// dead marks a queue torn down by a device reset. The ring memory is
	// gone from the device's point of view; any further use is a driver
	// bug the fvinvariants build turns into a panic.
	dead bool

	// segScratch backs AddChain1's one-element chain. It is filled after
	// the CPU-cost yield and consumed in the same runnable interval, so
	// concurrent posters on the same queue cannot observe a torn fill.
	segScratch [1]virtio.BufSeg
}

// MarkDead flags the queue as torn down by a reset; subsequent ring
// operations trip the use-after-reset invariant under -tags fvinvariants.
func (vq *VQ) MarkDead() { vq.dead = true }

// Size reports the negotiated queue size.
func (vq *VQ) Size() int { return vq.size }

// Packed reports whether the queue uses the packed format.
func (vq *VQ) Packed() bool { return vq.split == nil }

// NumFree reports unallocated descriptors.
func (vq *VQ) NumFree() int { return vq.ring.NumFree() }

// HasUsed reports unharvested completions.
func (vq *VQ) HasUsed() bool { return vq.ring.HasUsed() }

// GetUsed harvests one completion without CPU-cost accounting (callers
// in ISR context prefer Harvest).
func (vq *VQ) GetUsed() (virtio.Used, bool) { return vq.ring.GetUsed() }

// SetNoInterrupt toggles completion-interrupt suppression.
func (vq *VQ) SetNoInterrupt(on bool) { vq.ring.SetNoInterrupt(on) }

// Add exposes a chain without CPU-cost accounting (prefer AddChain).
func (vq *VQ) Add(segs []virtio.BufSeg, token any) (uint16, error) {
	return vq.ring.Add(segs, token)
}

// NeedKick reports whether a doorbell is owed.
func (vq *VQ) NeedKick() bool { return vq.ring.NeedKick() }

// KickDone records that added chains were notified (or intentionally not).
func (vq *VQ) KickDone() { vq.ring.KickDone() }

// AddIndirect exposes a chain through an indirect table (split rings
// only; the packed format here does not negotiate INDIRECT_DESC).
func (vq *VQ) AddIndirect(segs []virtio.BufSeg, token any, table mem.Addr) (uint16, error) {
	if vq.split == nil {
		return 0, fmt.Errorf("virtiopci: indirect descriptors unavailable on a packed queue")
	}
	return vq.split.AddIndirect(segs, token, table)
}

// SetupQueue allocates a ring of the given size in host memory, hands
// its addresses to the device, assigns MSI-X vector index+1, and
// enables the queue — the one-time information exchange that lets the
// runtime path get away with a single doorbell write (paper §IV-A).
// With VIRTIO_F_RING_PACKED negotiated the three address registers
// carry the packed ring and its two event-suppression structures.
func (t *Transport) SetupQueue(p *sim.Proc, index int, size int) (*VQ, error) {
	t.cw16(p, virtio.CommonQueueSelect, uint16(index))
	max := int(t.cr16(p, virtio.CommonQueueSize))
	if max == 0 {
		return nil, fmt.Errorf("virtiopci: queue %d does not exist", index)
	}
	if size > max {
		size = max
	}
	t.cw16(p, virtio.CommonQueueSize, uint16(size))

	vq := &VQ{tr: t, Index: index, size: size}
	var descA, driverA, deviceA uint64
	if t.features.Has(virtio.FRingPacked) {
		lay := virtio.AllocPackedRing(t.Host.Alloc, size)
		vq.ring = virtio.NewPackedDriverQueue(t.Host.Mem, lay)
		descA, driverA, deviceA = uint64(lay.Ring), uint64(lay.DriverEvent), uint64(lay.DeviceEvent)
	} else {
		lay := virtio.AllocRing(t.Host.Alloc, size)
		dq := virtio.NewDriverQueue(t.Host.Mem, lay)
		if t.features.Has(virtio.FRingEventIdx) {
			dq.EnableEventIdx()
		}
		vq.ring, vq.split = dq, dq
		descA, driverA, deviceA = uint64(lay.Desc), uint64(lay.Avail), uint64(lay.Used)
	}

	t.cw32(p, virtio.CommonQueueDesc, uint32(descA))
	t.cw32(p, virtio.CommonQueueDesc+4, uint32(descA>>32))
	t.cw32(p, virtio.CommonQueueDriver, uint32(driverA))
	t.cw32(p, virtio.CommonQueueDriver+4, uint32(driverA>>32))
	t.cw32(p, virtio.CommonQueueDevice, uint32(deviceA))
	t.cw32(p, virtio.CommonQueueDevice+4, uint32(deviceA>>32))
	t.cw16(p, virtio.CommonQueueMSIXVector, uint16(index+1))

	notifyOff := t.cr16(p, virtio.CommonQueueNotifyOff)
	t.cw16(p, virtio.CommonQueueEnable, 1)
	vq.notifyAddr = t.notifyBase + uint64(notifyOff)*uint64(t.notifyMult)
	return vq, nil
}

// RegisterIRQ binds a handler to the queue's MSI-X vector.
func (vq *VQ) RegisterIRQ(handler func(p *sim.Proc)) {
	vq.tr.Host.RegisterIRQ(vq.tr.EP, vq.Index+1, handler)
}

// AddChain exposes a buffer chain, charging the driver's CPU cost.
func (vq *VQ) AddChain(p *sim.Proc, segs []virtio.BufSeg, token any) error {
	if fvassert.Enabled && vq.dead {
		fvassert.Failf("virtiopci: AddChain on queue %d after reset began", vq.Index)
	}
	vq.tr.Host.CPUWork(p, addChainBaseCost+sim.Duration(len(segs))*addSegCost)
	_, err := vq.ring.Add(segs, token)
	if err == nil {
		vq.tr.descsPosted.Add(int64(len(segs)))
	}
	return err
}

// AddChain1 posts a one-segment chain without materialising a slice —
// the allocation-free form for per-packet TX and RX-repost paths.
func (vq *VQ) AddChain1(p *sim.Proc, seg virtio.BufSeg, token any) error {
	if fvassert.Enabled && vq.dead {
		fvassert.Failf("virtiopci: AddChain1 on queue %d after reset began", vq.Index)
	}
	vq.tr.Host.CPUWork(p, addChainBaseCost+addSegCost)
	vq.segScratch[0] = seg
	_, err := vq.ring.Add(vq.segScratch[:], token)
	if err == nil {
		vq.tr.descsPosted.Inc()
	}
	return err
}

// Harvest drains completed chains into a fresh slice, charging
// per-completion CPU cost.
func (vq *VQ) Harvest(p *sim.Proc) []virtio.Used {
	return vq.HarvestInto(p, nil)
}

// HarvestInto drains completed chains into buf's capacity — the
// allocation-free form for per-packet ISR paths, which keep the
// returned slice as scratch for the next harvest.
func (vq *VQ) HarvestInto(p *sim.Proc, buf []virtio.Used) []virtio.Used {
	if fvassert.Enabled && vq.dead {
		fvassert.Failf("virtiopci: HarvestInto on queue %d after reset began", vq.Index)
	}
	out := buf[:0]
	for {
		u, ok := vq.ring.GetUsed()
		if !ok {
			return out
		}
		vq.tr.Host.CPUWork(p, getUsedCost)
		vq.tr.descsCompleted.Inc()
		out = append(out, u)
	}
}

// Kick rings the queue's doorbell: a single posted MMIO write — the
// entire runtime signalling cost of the VirtIO TX path.
func (vq *VQ) Kick(p *sim.Proc) {
	if fvassert.Enabled && vq.dead {
		fvassert.Failf("virtiopci: Kick on queue %d after reset began", vq.Index)
	}
	vq.tr.doorbells.Inc()
	vq.tr.Host.RC.MMIOWrite(p, vq.notifyAddr, 2, uint64(vq.Index))
	vq.KickDone()
}

// KickIfNeeded honours the device's notification hints: the used-flags
// no-notify bit, the avail_event threshold in EVENT_IDX mode, or the
// packed event structure.
func (vq *VQ) KickIfNeeded(p *sim.Proc) {
	if vq.ring.NeedKick() {
		vq.Kick(p)
		return
	}
	vq.tr.kicksElided.Inc()
	vq.ring.KickDone()
}

// AllocBuffer carves a DMA-able buffer from host memory.
func (t *Transport) AllocBuffer(n int) mem.Addr {
	return t.Host.Alloc.Alloc(n, 64)
}
