package virtionet_test

import (
	"bytes"
	"testing"

	"fpgavirtio/internal/drivers/virtionet"
	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/netstack"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/vdev"
	"fpgavirtio/internal/virtio"
)

var mac = netstack.MAC{0x02, 0xaa, 0xbb, 0xcc, 0xdd, 0xee}

func testbed(t *testing.T, devMut func(*vdev.NetOptions)) (*sim.Sim, *hostos.Host, *netstack.Stack, *vdev.NetDevice) {
	t.Helper()
	s := sim.New()
	cfg := hostos.DefaultConfig()
	cfg.JitterSigma = 0
	cfg.PreemptMeanGap = 0
	cfg.WakeTailProb = 0
	h := hostos.New(s, 8<<20, cfg, 4)
	opt := vdev.NetOptions{Link: pcie.DefaultGen2x2(), MAC: mac, OfferCsum: true, OfferCtrlVQ: true, MTU: 1500}
	if devMut != nil {
		devMut(&opt)
	}
	dev := vdev.NewNet(s, h.RC, "vnet", opt)
	st := netstack.New(h, netstack.DefaultCosts())
	return s, h, st, dev
}

func run(t *testing.T, s *sim.Sim, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	s.Go("test", func(p *sim.Proc) {
		defer s.Stop()
		fn(p)
		done = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("test did not finish")
	}
}

func probe(t *testing.T, p *sim.Proc, h *hostos.Host, st *netstack.Stack, opt virtionet.Options) *virtionet.Device {
	t.Helper()
	infos := h.RC.Enumerate(p)
	d, err := virtionet.Probe(p, h, st, infos[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	st.AddInterface(d, netstack.IP(10, 0, 0, 1))
	st.AddRoute(netstack.IP(10, 0, 0, 0), netstack.IP(255, 255, 255, 0), d.Name())
	st.AddARP(netstack.IP(10, 0, 0, 2), mac)
	return d
}

func TestConfigSpaceFieldsReachDriver(t *testing.T) {
	s, h, st, _ := testbed(t, func(o *vdev.NetOptions) { o.MTU = 9000 })
	run(t, s, func(p *sim.Proc) {
		d := probe(t, p, h, st, virtionet.DefaultOptions("eth0"))
		if d.MAC() != mac {
			t.Errorf("MAC = %v", d.MAC())
		}
		if d.MTU() != 9000 {
			t.Errorf("MTU = %d, want 9000", d.MTU())
		}
	})
}

func TestSmallQueueRingPressure(t *testing.T) {
	// A 4-entry TX queue with many sends exercises the reclaim path
	// and, when exhausted, the netif-stop wait.
	s, h, st, dev := testbed(t, nil)
	run(t, s, func(p *sim.Proc) {
		opt := virtionet.DefaultOptions("eth0")
		opt.QueueSize = 4
		opt.RXBuffers = 4
		probe(t, p, h, st, opt)
		sock, err := st.Bind(9100)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 32; i++ {
			if err := sock.SendTo(p, netstack.IP(10, 0, 0, 2), 9000, []byte("pressure")); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
			got, _, _, err := sock.RecvFrom(p)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, []byte("pressure")) {
				t.Fatalf("echo %d mismatch", i)
			}
		}
		if tx, rx := dev.Stats(); tx != 32 || rx != 32 {
			t.Errorf("device frames tx=%d rx=%d", tx, rx)
		}
	})
}

func TestBurstThenDrain(t *testing.T) {
	// Fire a burst of sends before receiving anything: the RX queue's
	// pre-posted buffers and NAPI batching must deliver every reply.
	s, h, st, _ := testbed(t, nil)
	run(t, s, func(p *sim.Proc) {
		probe(t, p, h, st, virtionet.DefaultOptions("eth0"))
		sock, err := st.Bind(9200)
		if err != nil {
			t.Fatal(err)
		}
		const burst = 16
		for i := 0; i < burst; i++ {
			payload := []byte{byte(i), 1, 2, 3}
			if err := sock.SendTo(p, netstack.IP(10, 0, 0, 2), 9000, payload); err != nil {
				t.Fatal(err)
			}
		}
		seen := map[byte]bool{}
		for i := 0; i < burst; i++ {
			got, _, _, err := sock.RecvFrom(p)
			if err != nil {
				t.Fatal(err)
			}
			seen[got[0]] = true
		}
		if len(seen) != burst {
			t.Errorf("received %d distinct replies, want %d", len(seen), burst)
		}
	})
}

func TestCtrlQueueAbsentWhenNotNegotiated(t *testing.T) {
	s, h, st, _ := testbed(t, func(o *vdev.NetOptions) { o.OfferCtrlVQ = false })
	run(t, s, func(p *sim.Proc) {
		opt := virtionet.DefaultOptions("eth0")
		d := probe(t, p, h, st, opt)
		if err := d.SetPromiscuous(p, true); err == nil {
			t.Error("ctrl command succeeded without control queue")
		}
	})
}

func TestRxIRQCountsWithTxSuppression(t *testing.T) {
	s, h, st, _ := testbed(t, nil)
	run(t, s, func(p *sim.Proc) {
		d := probe(t, p, h, st, virtionet.DefaultOptions("eth0"))
		sock, _ := st.Bind(9300)
		const n = 10
		for i := 0; i < n; i++ {
			sock.SendTo(p, netstack.IP(10, 0, 0, 2), 9000, []byte("x"))
			sock.RecvFrom(p)
		}
		if d.RxIRQs != n {
			t.Errorf("RX IRQs = %d, want %d (one per packet in ping-pong)", d.RxIRQs, n)
		}
		if d.TxPackets != n || d.RxPackets != n {
			t.Errorf("driver counters tx=%d rx=%d", d.TxPackets, d.RxPackets)
		}
	})
}

func TestTxInterruptPathWithTinyRing(t *testing.T) {
	// With TX interrupts enabled and a 4-slot ring, bursts exercise the
	// netif-stop wait and the onTxIRQ reclaim/wake path.
	s, h, st, _ := testbed(t, nil)
	run(t, s, func(p *sim.Proc) {
		opt := virtionet.DefaultOptions("eth0")
		opt.SuppressTxInterrupts = false
		opt.QueueSize = 4
		opt.RXBuffers = 4
		probe(t, p, h, st, opt)
		sock, err := st.Bind(9400)
		if err != nil {
			t.Fatal(err)
		}
		const burst = 8 // twice the ring size: the sender must stall and recover
		for i := 0; i < burst; i++ {
			if err := sock.SendTo(p, netstack.IP(10, 0, 0, 2), 9000, []byte{byte(i)}); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
		}
		seen := 0
		for i := 0; i < burst; i++ {
			if _, _, _, err := sock.RecvFrom(p); err != nil {
				t.Fatal(err)
			}
			seen++
		}
		if seen != burst {
			t.Fatalf("received %d/%d", seen, burst)
		}
	})
}

func TestWantEventIdxAndPackedNegotiation(t *testing.T) {
	s, h, st, dev := testbed(t, func(o *vdev.NetOptions) {
		o.OfferEventIdx = true
		o.OfferPacked = true
	})
	run(t, s, func(p *sim.Proc) {
		opt := virtionet.DefaultOptions("eth0")
		opt.WantEventIdx = true
		opt.WantPacked = true
		probe(t, p, h, st, opt)
		neg := dev.Controller().Negotiated()
		if !neg.Has(virtio.FRingPacked) {
			t.Errorf("packed not negotiated: %v", neg)
		}
		sock, _ := st.Bind(9500)
		for i := 0; i < 5; i++ {
			if err := sock.SendTo(p, netstack.IP(10, 0, 0, 2), 9000, []byte("pk")); err != nil {
				t.Fatal(err)
			}
			got, _, _, err := sock.RecvFrom(p)
			if err != nil || !bytes.Equal(got, []byte("pk")) {
				t.Fatalf("packed echo %d failed: %q %v", i, got, err)
			}
		}
	})
}
