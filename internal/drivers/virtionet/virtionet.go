// Package virtionet is the virtio-net front-end driver: it binds a
// VirtIO network function through the virtio-pci transport, registers
// as a NIC with the host network stack, and implements the TX
// (doorbell) and RX (interrupt + NAPI poll) paths with the kernel
// driver's structure. The FPGA appears to the host as an ordinary
// network interface — the semantic benefit the paper highlights in
// §IV-B.
package virtionet

import (
	"fmt"

	"fpgavirtio/internal/drivers/virtiopci"
	"fpgavirtio/internal/fvassert"
	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/netstack"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
	"fpgavirtio/internal/virtio"
)

// Queue indices of a single-queue-pair virtio-net device. With
// VIRTIO_NET_F_MQ the pairs interleave (receiveqN = 2(N-1),
// transmitqN = 2N-1) and the control queue follows the last pair.
const (
	queueRX   = 0
	queueTX   = 1
	queueCtrl = 2
)

// Driver CPU costs specific to the net front-end.
const (
	xmitPathCost   = sim.Duration(350) * sim.Nanosecond // start_xmit bookkeeping
	irqBodyCost    = sim.Duration(250) * sim.Nanosecond // vring_interrupt
	napiPerPktCost = sim.Duration(380) * sim.Nanosecond // receive_buf + skb build
	refillCost     = sim.Duration(150) * sim.Nanosecond // try_fill_recv per buffer
)

// Completion-watchdog tuning. The watchdog process only exists when the
// endpoint has a fault injector armed; the zero-fault simulation runs
// no watchdog at all.
const (
	// watchdogPeriod is the poll interval of the recovery watchdog.
	watchdogPeriod = sim.Duration(50) * sim.Microsecond
	// watchdogStrikes is how many consecutive stuck observations a queue
	// needs before the watchdog intervenes — one tick of grace so a
	// poll that is merely scheduled-but-not-run is not misdiagnosed.
	watchdogStrikes = 2
)

// Options controls bring-up.
type Options struct {
	Name string
	// WantCsum asks for NET_F_CSUM/GUEST_CSUM if the device offers it.
	WantCsum bool
	// WantCtrlVQ asks for the control virtqueue.
	WantCtrlVQ bool
	// RXBuffers is the number of pre-posted receive buffers (default 64).
	RXBuffers int
	// QueueSize overrides the ring size (default: device maximum).
	QueueSize int
	// SuppressTxInterrupts mirrors the kernel's TX-completion strategy:
	// reclaim on the next transmit rather than per-packet interrupts.
	// On by default via DefaultOptions.
	SuppressTxInterrupts bool
	// WantEventIdx negotiates VIRTIO_F_RING_EVENT_IDX when offered.
	WantEventIdx bool
	// WantPacked negotiates VIRTIO_F_RING_PACKED when offered.
	WantPacked bool
	// QueuePairs requests that many RX/TX queue pairs (default 1),
	// capped by the device's max_virtqueue_pairs; more than one pair
	// requires the control queue for VIRTIO_NET_CTRL_MQ_VQ_PAIRS_SET.
	// Transmits spread round-robin across the active pairs.
	QueuePairs int
	// TxKickBatch defers the TX doorbell until that many packets have
	// been queued since the last kick (FlushTx forces the pending one)
	// — the driver-side descriptor batching used by windowed streaming.
	// 0 or 1 keeps the kick-per-packet policy.
	TxKickBatch int
	// ForceKicks disables every doorbell elision (device hints, event
	// thresholds, batching): one doorbell per ring update. This is the
	// suppression-off arm of the throughput comparison.
	ForceKicks bool
	// PollMode runs the datapath without interrupts: every queue
	// interrupt stays suppressed and completions are discovered by
	// spinning on the used rings from the consuming process's context
	// (BusyPoll / the internal spin helpers). EVENT_IDX is rejected —
	// the poll loop never arms a notification threshold.
	PollMode bool
	// Poll tunes the PollMode spin loop; zero fields take
	// hostos.DefaultPollPolicy.
	Poll hostos.PollPolicy
}

// DefaultOptions matches the paper's test configuration.
func DefaultOptions(name string) Options {
	return Options{Name: name, WantCsum: true, WantCtrlVQ: true, RXBuffers: 64, SuppressTxInterrupts: true}
}

// pairQueues is the driver state of one RX/TX queue pair.
type pairQueues struct {
	rx, tx *virtiopci.VQ
	txBufs []mem.Addr
	txFree []int
	txWQ   *hostos.WaitQueue
	// unkicked counts packets queued since the last TX doorbell under
	// the TxKickBatch policy.
	unkicked int

	// txTokens holds the pre-boxed txToken for each transmit buffer, so
	// the per-packet AddChain does not re-box the token interface.
	txTokens []any
	// txInFlight / txLen track which transmit buffers are exposed to the
	// device and how long each posted frame is — the requeue set a device
	// reset must resubmit. txInFlight doubles as the double-complete
	// invariant's state.
	txInFlight []bool
	txLen      []int
	// rxAddrs remembers every receive buffer ever posted, so a reset can
	// repost the full set into the rebuilt ring.
	rxAddrs []mem.Addr
	// polling is the single-flight latch of napiPoll: the watchdog's
	// rescue poll must not interleave with an interrupt-driven poll.
	polling bool
	// Watchdog strike counters (see watchdogStrikes).
	rxStrikes, txStrikes int
	lastInFlight         int
	// txUsed / rxUsed / irqUsed are harvest scratch. IRQ-context reclaim
	// (onTxIRQ) gets its own buffer because it can preempt a process-
	// context reclaim at a CPU-cost yield; reclaiming asserts that two
	// process-context reclaims never overlap on one pair.
	txUsed, rxUsed, irqUsed []virtio.Used
	reclaiming              bool
	// rxBuf stages one received buffer's bytes out of host memory.
	rxBuf []byte
}

// reclaimTx drains TX completions into the pair's scratch and returns
// freed buffer indices to the free list, reporting how many it freed.
// The scratch makes this single-flight per pair: process context and
// the (suppressed by default) TX IRQ must not overlap here.
func (pq *pairQueues) reclaimTx(p *sim.Proc) int {
	if fvassert.Enabled {
		if pq.reclaiming {
			fvassert.Failf("virtionet: concurrent TX reclaim on one queue pair")
		}
		pq.reclaiming = true
	}
	used := pq.tx.HarvestInto(p, pq.txUsed)
	for _, u := range used {
		idx := u.Token.(txToken).idx
		if fvassert.Enabled && !pq.txInFlight[idx] {
			fvassert.Failf("virtionet: TX completion for buffer %d that is not in flight", idx)
		}
		pq.txInFlight[idx] = false
		pq.txFree = append(pq.txFree, idx)
	}
	pq.txUsed = used[:0]
	if fvassert.Enabled {
		pq.reclaiming = false
	}
	return len(used)
}

// Device is a bound virtio-net interface; it implements netstack.NIC.
type Device struct {
	tr    *virtiopci.Transport
	host  *hostos.Host
	stack *netstack.Stack
	opt   Options

	mac      netstack.MAC
	mtu      uint16
	offloads netstack.Offloads

	pairs  []*pairQueues
	txNext int
	ctrlq  *virtiopci.VQ

	rxBufSize int
	ctrlWQ    *hostos.WaitQueue

	// stats
	TxPackets, RxPackets, RxIRQs int

	txPkts, rxPkts, rxIRQs *telemetry.Counter

	// spinner executes PollMode's busy loops under the host's poll
	// cost model; nil outside poll mode.
	spinner *hostos.Spinner

	// Recovery state. want/qsize/maxPairs are the bring-up parameters a
	// device reset must replay; resetting gates every IRQ path while the
	// rings are being rebuilt. The rec* counters are registered only when
	// the endpoint has a fault injector armed.
	want      virtio.Feature
	qsize     int
	maxPairs  int
	resetting bool

	recResets, recWatchdog, recRequeued *telemetry.Counter

	// hdrBuf stages the virtio-net header encode; it is filled and
	// written to host memory in one runnable interval, so sharing it
	// across queue pairs is safe under the cooperative scheduler.
	hdrBuf [virtio.NetHdrSize]byte
}

// rxToken records one posted receive buffer.
type rxToken struct {
	addr mem.Addr
	idx  int
}

// txToken records one in-flight transmit buffer.
type txToken struct{ idx int }

// Probe binds the driver to an enumerated device and brings the
// interface up: feature negotiation, ring setup, RX buffer posting,
// IRQ registration, DRIVER_OK, and (with MQ) pair activation.
func Probe(p *sim.Proc, h *hostos.Host, stack *netstack.Stack, info *pcie.DeviceInfo, opt Options) (*Device, error) {
	if opt.RXBuffers == 0 {
		opt.RXBuffers = 64
	}
	if opt.Name == "" {
		opt.Name = "eth-virtio"
	}
	if opt.PollMode && opt.WantEventIdx {
		return nil, fmt.Errorf("virtionet: poll mode disables EVENT_IDX (no notification thresholds are armed)")
	}
	tr, err := virtiopci.Probe(p, h, info)
	if err != nil {
		return nil, err
	}
	if info.DeviceID != virtio.DeviceNet.PCIDeviceID() {
		return nil, fmt.Errorf("virtionet: not a net device: %#x", info.DeviceID)
	}
	reg := h.Metrics()
	d := &Device{
		tr:     tr,
		host:   h,
		stack:  stack,
		opt:    opt,
		ctrlWQ: h.NewWaitQueue(opt.Name + ".ctrl"),
		txPkts: reg.Counter(telemetry.MetricVirtionetTxPackets),
		rxPkts: reg.Counter(telemetry.MetricVirtionetRxPackets),
		rxIRQs: reg.Counter(telemetry.MetricVirtionetRxIRQs),
	}
	if opt.PollMode {
		d.spinner = h.NewSpinner(opt.Poll)
	}

	// MQ is always requested; Negotiate intersects with the device
	// offer, so the bit survives only on multi-pair devices — which is
	// also how the driver learns the control queue moved past the pairs.
	want := virtio.NetFMAC | virtio.NetFMTU | virtio.NetFStatus | virtio.NetFMQ
	if opt.WantCsum {
		want |= virtio.NetFCsum | virtio.NetFGuestCsum
	}
	if opt.WantCtrlVQ {
		want |= virtio.NetFCtrlVQ
	}
	if opt.WantEventIdx {
		want |= virtio.FRingEventIdx
	}
	if opt.WantPacked {
		want |= virtio.FRingPacked
	}
	d.want = want
	feats, err := tr.Negotiate(p, want)
	if err != nil {
		return nil, err
	}
	d.offloads = netstack.Offloads{
		TxCsum: feats.Has(virtio.NetFCsum),
		RxCsum: feats.Has(virtio.NetFGuestCsum),
	}

	cfg := tr.ReadDeviceConfig(p, virtio.NetCfgMAC, virtio.NetCfgLen)
	copy(d.mac[:], cfg[virtio.NetCfgMAC:])
	d.mtu = uint16(cfg[virtio.NetCfgMTU]) | uint16(cfg[virtio.NetCfgMTU+1])<<8
	d.rxBufSize = virtio.NetHdrSize + netstack.EthHdrSize + int(d.mtu) + 64

	maxPairs := 1
	if feats.Has(virtio.NetFMQ) {
		maxPairs = int(cfg[virtio.NetCfgMaxVQP]) | int(cfg[virtio.NetCfgMaxVQP+1])<<8
		if maxPairs < 1 {
			maxPairs = 1
		}
	}
	pairs := opt.QueuePairs
	if pairs <= 0 {
		pairs = 1
	}
	if pairs > maxPairs {
		pairs = maxPairs
	}
	if pairs > 1 && !feats.Has(virtio.NetFCtrlVQ) {
		return nil, fmt.Errorf("virtionet: %d queue pairs need the control queue", pairs)
	}
	d.maxPairs = maxPairs

	qsize := opt.QueueSize
	if qsize == 0 {
		qsize = 256
	}
	d.qsize = qsize
	for i := 0; i < pairs; i++ {
		pq := &pairQueues{txWQ: h.NewWaitQueue(fmt.Sprintf("%s.tx%d", opt.Name, i))}
		if pq.rx, err = tr.SetupQueue(p, virtio.NetRXQueue(i), qsize); err != nil {
			return nil, err
		}
		if pq.tx, err = tr.SetupQueue(p, virtio.NetTXQueue(i), qsize); err != nil {
			return nil, err
		}
		d.pairs = append(d.pairs, pq)
	}
	if feats.Has(virtio.NetFCtrlVQ) {
		ctrlIdx := queueCtrl
		if feats.Has(virtio.NetFMQ) {
			// The control queue sits after the device's full pair set,
			// not after the subset this driver activates.
			ctrlIdx = virtio.NetCtrlQueue(maxPairs)
		}
		if d.ctrlq, err = tr.SetupQueue(p, ctrlIdx, 16); err != nil {
			return nil, err
		}
		d.ctrlq.RegisterIRQ(d.onCtrlIRQ)
		if opt.PollMode {
			d.ctrlq.SetNoInterrupt(true)
		}
	}
	for _, pq := range d.pairs {
		pq := pq
		pq.rx.RegisterIRQ(func(p *sim.Proc) { d.onRxIRQ(p, pq) })
		pq.tx.RegisterIRQ(func(p *sim.Proc) { d.onTxIRQ(p, pq) })
		if opt.PollMode {
			// No IRQ arming: every queue interrupt stays suppressed for
			// the session's lifetime; the handlers registered above are
			// never reached (the device honors the suppression flags).
			pq.rx.SetNoInterrupt(true)
			pq.tx.SetNoInterrupt(true)
		} else if opt.SuppressTxInterrupts {
			pq.tx.SetNoInterrupt(true)
		}
	}

	// Pre-post receive buffers and kick once so the device knows.
	for _, pq := range d.pairs {
		for i := 0; i < opt.RXBuffers; i++ {
			addr := tr.AllocBuffer(d.rxBufSize)
			pq.rxAddrs = append(pq.rxAddrs, addr)
			if err := pq.rx.AddChain1(p, virtio.BufSeg{Addr: addr, Len: d.rxBufSize, DeviceWritten: true}, rxToken{addr: addr, idx: i}); err != nil {
				return nil, err
			}
		}
		pq.rx.Kick(p)
	}

	// Per-pair transmit buffer pools sized to the ring. Tokens are boxed
	// once here so the per-packet post reuses the interface values.
	for _, pq := range d.pairs {
		pq.txInFlight = make([]bool, qsize)
		pq.txLen = make([]int, qsize)
		for i := 0; i < qsize; i++ {
			pq.txBufs = append(pq.txBufs, tr.AllocBuffer(virtio.NetHdrSize+netstack.EthHdrSize+int(d.mtu)+64))
			pq.txFree = append(pq.txFree, i)
			pq.txTokens = append(pq.txTokens, txToken{idx: i})
		}
	}

	tr.DriverOK(p)
	if tr.EP.Faults() != nil {
		// Recovery machinery exists only under fault injection: the
		// config-change interrupt catches device-initiated NEEDS_RESET,
		// and the watchdog process catches lost completions and lost
		// interrupts. Started before the MQ activation command so a
		// fault on the very first control exchange is already rescued.
		d.recResets = reg.Counter(telemetry.MetricRecoveryVirtioResets)
		d.recWatchdog = reg.Counter(telemetry.MetricRecoveryVirtioWatchd)
		d.recRequeued = reg.Counter(telemetry.MetricRecoveryVirtioRequeue)
		if opt.PollMode {
			// Watchdog-less recovery: the config vector is claimed so a
			// NEEDS_RESET announcement is not a fatal unhandled IRQ, but
			// detection happens in the spin loops' yield slow path
			// (PollYield reads device status) — never from IRQ context,
			// and no watchdog process exists.
			h.RegisterIRQ(tr.EP, 0, func(p *sim.Proc) {})
		} else {
			h.RegisterIRQ(tr.EP, 0, d.onConfigIRQ)
			h.Sim.Go(opt.Name+".watchdog", d.watchdog)
		}
	}
	if feats.Has(virtio.NetFMQ) {
		if err := d.ctrlCommand(p, virtio.NetCtrlMQ, virtio.NetCtrlMQPairs,
			[]byte{byte(pairs), byte(pairs >> 8)}); err != nil {
			return nil, fmt.Errorf("virtionet: VQ_PAIRS_SET: %w", err)
		}
	}
	return d, nil
}

// Name implements netstack.NIC.
func (d *Device) Name() string { return d.opt.Name }

// MAC implements netstack.NIC.
func (d *Device) MAC() netstack.MAC { return d.mac }

// MTU reports the device MTU from config space.
func (d *Device) MTU() uint16 { return d.mtu }

// Offloads implements netstack.NIC.
func (d *Device) Offloads() netstack.Offloads { return d.offloads }

// Transport exposes the underlying transport (examples and tests).
func (d *Device) Transport() *virtiopci.Transport { return d.tr }

// QueuePairs reports the number of active RX/TX queue pairs.
func (d *Device) QueuePairs() int { return len(d.pairs) }

// txQueue picks the transmit pair for the next packet (round-robin,
// the stand-in for the kernel's XPS mapping).
func (d *Device) txQueue() *pairQueues {
	pq := d.pairs[d.txNext%len(d.pairs)]
	d.txNext++
	return pq
}

// Xmit implements netstack.NIC: virtio-net's start_xmit. Completed
// transmissions are reclaimed here rather than by interrupt, matching
// the suppressed-TX-interrupt configuration.
func (d *Device) Xmit(p *sim.Proc, pkt netstack.TxPacket) error {
	sp := p.Sim().BeginSpan(telemetry.LayerDriver, "virtionet.xmit")
	defer sp.End()
	d.host.CPUWork(p, xmitPathCost)
	pq := d.txQueue()

	// Reclaim finished TX chains (free_old_xmit_skbs).
	pq.reclaimTx(p)
	for len(pq.txFree) == 0 {
		if d.opt.PollMode {
			// Ring full under poll mode: no completion interrupt will
			// ever fire, so spin-reclaim until the device frees a chain.
			// Flush any batched doorbell first — the device has not seen
			// those chains yet.
			if pq.unkicked > 0 {
				pq.tx.KickIfNeeded(p)
				pq.unkicked = 0
			}
			d.spin(p, func(p *sim.Proc) bool { return pq.reclaimTx(p) > 0 })
			continue
		}
		// Ring full: netif_stop_queue. Any doorbell still batched under
		// TxKickBatch must go out now — the device has never seen those
		// chains, and with TX interrupts suppressed nothing else would
		// wake this queue. Then re-enable TX completion interrupts for
		// the sleep (virtqueue_enable_cb before the stop), re-checking
		// once in case completions already landed with the interrupt
		// elided.
		if pq.unkicked > 0 {
			pq.tx.KickIfNeeded(p)
			pq.unkicked = 0
		}
		if d.opt.SuppressTxInterrupts {
			pq.tx.SetNoInterrupt(false)
		}
		if pq.reclaimTx(p) == 0 {
			if fvassert.Enabled && pq.unkicked > 0 {
				fvassert.Failf("transmitter parking with %d batched chains unkicked", pq.unkicked)
			}
			pq.txWQ.Wait(p)
			pq.reclaimTx(p)
		}
		if d.opt.SuppressTxInterrupts {
			pq.tx.SetNoInterrupt(true)
		}
	}
	idx := pq.txFree[len(pq.txFree)-1]
	pq.txFree = pq.txFree[:len(pq.txFree)-1]
	buf := pq.txBufs[idx]

	hdr := virtio.NetHdr{NumBuffers: 1}
	if pkt.NeedsCsum {
		hdr.Flags = virtio.NetHdrFNeedsCsum
		hdr.CsumStart = uint16(pkt.CsumStart)
		hdr.CsumOffset = uint16(pkt.CsumOffset)
	}
	n := virtio.NetHdrSize + len(pkt.Frame)
	d.host.Copy(p, n)
	hdr.EncodeInto(d.hdrBuf[:])
	d.host.Mem.Write(buf, d.hdrBuf[:])
	d.host.Mem.Write(buf+virtio.NetHdrSize, pkt.Frame)

	if err := pq.tx.AddChain1(p, virtio.BufSeg{Addr: buf, Len: n}, pq.txTokens[idx]); err != nil {
		return err
	}
	pq.txLen[idx] = n
	pq.txInFlight[idx] = true
	switch {
	case d.opt.ForceKicks:
		pq.tx.Kick(p)
	case d.opt.TxKickBatch > 1:
		pq.unkicked++
		if pq.unkicked >= d.opt.TxKickBatch {
			pq.tx.KickIfNeeded(p)
			pq.unkicked = 0
		}
	default:
		pq.tx.KickIfNeeded(p)
	}
	d.TxPackets++
	d.txPkts.Inc()
	return nil
}

// UnkickedTx reports how many transmitted chains still await their
// batched doorbell across all pairs — the kick-flush invariant's
// runtime observable (must be zero before any blocking wait on
// transmit completions).
func (d *Device) UnkickedTx() int {
	n := 0
	for _, pq := range d.pairs {
		n += pq.unkicked
	}
	return n
}

// FlushTx forces the doorbell for any packets still batched under
// TxKickBatch — the end-of-window drain of the streaming engine.
func (d *Device) FlushTx(p *sim.Proc) {
	for _, pq := range d.pairs {
		if pq.unkicked > 0 {
			pq.tx.KickIfNeeded(p)
			pq.unkicked = 0
		}
	}
}

// onTxIRQ handles (rare) TX completion interrupts when suppression is
// off: reclaim and wake any stalled transmitter.
func (d *Device) onTxIRQ(p *sim.Proc, pq *pairQueues) {
	d.host.CPUWork(p, irqBodyCost)
	if d.resetting {
		return
	}
	used := pq.tx.HarvestInto(p, pq.irqUsed)
	for _, u := range used {
		idx := u.Token.(txToken).idx
		if fvassert.Enabled && !pq.txInFlight[idx] {
			fvassert.Failf("virtionet: TX completion for buffer %d that is not in flight", idx)
		}
		pq.txInFlight[idx] = false
		pq.txFree = append(pq.txFree, idx)
	}
	pq.irqUsed = used[:0]
	pq.txWQ.Wake()
}

// onRxIRQ is the receive interrupt: disable further RX interrupts and
// hand off to NAPI poll, per the kernel's structure.
func (d *Device) onRxIRQ(p *sim.Proc, pq *pairQueues) {
	d.RxIRQs++
	d.rxIRQs.Inc()
	d.host.CPUWork(p, irqBodyCost)
	if d.resetting {
		return
	}
	pq.rx.SetNoInterrupt(true)
	p.Sleep(d.host.Config().SoftIRQLatency)
	d.napiPoll(p, pq)
}

// napiPoll drains the RX used ring, delivers frames to the stack,
// reposts buffers, then re-enables interrupts (with the standard
// re-check to close the race).
func (d *Device) napiPoll(p *sim.Proc, pq *pairQueues) {
	// Single-flight: a spurious interrupt or a watchdog rescue poll must
	// not interleave with a poll already in progress (they would share
	// the pair's harvest scratch).
	if pq.polling {
		return
	}
	pq.polling = true
	sp := p.Sim().BeginSpan(telemetry.LayerDriver, "virtionet.napi")
	defer sp.End()
	for {
		if d.resetting || d.drainRx(p, pq) < 0 {
			pq.polling = false
			return
		}
		pq.rx.SetNoInterrupt(false)
		if !pq.rx.HasUsed() {
			pq.polling = false
			return
		}
		// More arrived between drain and re-enable: poll again.
		pq.rx.SetNoInterrupt(true)
	}
}

// drainRx harvests one batch of RX completions, delivers the frames to
// the stack and reposts their buffers — the body shared by the
// interrupt pipeline (napiPoll) and the poll-mode busy loop (BusyPoll).
// It returns the number of frames harvested, or -1 when a device reset
// claimed the ring mid-drain (the caller must bail out; recoverReset
// owns the buffers now).
func (d *Device) drainRx(p *sim.Proc, pq *pairQueues) int {
	used := pq.rx.HarvestInto(p, pq.rxUsed)
	pq.rxUsed = used
	for _, u := range used {
		tok := u.Token.(rxToken)
		d.host.CPUWork(p, napiPerPktCost)
		if cap(pq.rxBuf) < u.Written {
			pq.rxBuf = make([]byte, u.Written)
		}
		raw := pq.rxBuf[:u.Written]
		d.host.Mem.ReadInto(tok.addr, raw)
		hdr, err := virtio.DecodeNetHdr(raw)
		if err == nil {
			frame := raw[virtio.NetHdrSize:]
			rx := netstack.RxPacket{
				Frame:     frame,
				CsumValid: hdr.Flags&virtio.NetHdrFDataValid != 0,
			}
			d.RxPackets++
			d.rxPkts.Inc()
			// Delivery errors (stray ports, bad checksums) drop the
			// packet, as the stack does.
			_ = d.stack.Input(p, rx)
		}
		// A reset that began at one of the yields above owns the
		// buffers now: recoverReset reposts the full RX set itself.
		if d.resetting {
			return -1
		}
		// Repost the buffer, reusing the token the harvest returned.
		d.host.CPUWork(p, refillCost)
		if err := pq.rx.AddChain1(p, virtio.BufSeg{Addr: tok.addr, Len: d.rxBufSize, DeviceWritten: true}, u.Token); err != nil {
			panic("virtionet: repost: " + err.Error())
		}
	}
	if d.opt.ForceKicks {
		pq.rx.Kick(p)
	} else {
		pq.rx.KickIfNeeded(p) // tell the device buffers were returned
	}
	return len(used)
}

// BusyPoll drains pending RX completions inline from the calling
// process — poll mode's replacement for the interrupt → softirq → NAPI
// pipeline. The suppression flags are never touched (poll mode keeps
// every queue interrupt off for the session's lifetime). Returns the
// number of frames delivered to the stack.
func (d *Device) BusyPoll(p *sim.Proc) int {
	total := 0
	for _, pq := range d.pairs {
		if pq.polling || d.resetting || !pq.rx.HasUsed() {
			continue
		}
		pq.polling = true
		sp := p.Sim().BeginSpan(telemetry.LayerDriver, "virtionet.busypoll")
		n := d.drainRx(p, pq)
		sp.End()
		pq.polling = false
		if n > 0 {
			total += n
		}
	}
	return total
}

// PollYield is the spin loops' yield-time slow path: with fault
// injection armed it reads device status and triggers the reset walk
// on DEVICE_NEEDS_RESET — poll mode's watchdog-less detection (no
// config-IRQ recovery, no watchdog process). Without faults armed it
// costs nothing beyond the yield itself.
func (d *Device) PollYield(p *sim.Proc) {
	if d.recResets == nil || d.resetting {
		return
	}
	if d.tr.ReadStatus(p)&virtio.StatusNeedsReset != 0 {
		d.recWatchdog.Inc()
		d.recoverReset(p)
	}
}

// spin busy-waits on ready under the driver's poll policy, folding the
// fault-detection slow path into each yield slot.
func (d *Device) spin(p *sim.Proc, ready func(p *sim.Proc) bool) {
	d.spinner.Spin(p, ready, d.PollYield)
}

// Spinner exposes the poll-mode spin executor (nil outside poll mode);
// sessions share it so the whole datapath spins under one policy and
// one set of poll.* instruments.
func (d *Device) Spinner() *hostos.Spinner { return d.spinner }

// onCtrlIRQ completes a pending control command.
func (d *Device) onCtrlIRQ(p *sim.Proc) {
	d.host.CPUWork(p, irqBodyCost)
	if d.resetting {
		return
	}
	d.ctrlWQ.Wake()
}

// ctrlCommand issues one control-queue command (class, command,
// payload) and blocks for the device's ack byte.
func (d *Device) ctrlCommand(p *sim.Proc, class, cmd byte, payload []byte) error {
	if d.ctrlq == nil {
		return fmt.Errorf("virtionet: no control queue negotiated")
	}
	n := 2 + len(payload)
	cmdBuf := d.tr.AllocBuffer(n)
	ack := d.tr.AllocBuffer(1)
	d.host.Mem.Write(cmdBuf, append([]byte{class, cmd}, payload...))
	d.host.Mem.PutU8(ack, 0xff)
	if err := d.ctrlq.AddChain(p, []virtio.BufSeg{
		{Addr: cmdBuf, Len: n},
		{Addr: ack, Len: 1, DeviceWritten: true},
	}, "ctrl"); err != nil {
		return err
	}
	d.ctrlq.Kick(p)
	if d.opt.PollMode {
		// Control completions are polled like everything else (the ctrl
		// queue's interrupt is suppressed for the session's lifetime).
		d.spin(p, func(p *sim.Proc) bool { return d.ctrlq.HasUsed() })
	} else {
		for !d.ctrlq.HasUsed() {
			d.ctrlWQ.Wait(p)
		}
	}
	d.ctrlq.Harvest(p)
	if st := d.host.Mem.U8(ack); st != virtio.NetCtrlAckOK {
		return fmt.Errorf("virtionet: ctrl command %d/%d failed: status %d", class, cmd, st)
	}
	return nil
}

// SetPromiscuous issues VIRTIO_NET_CTRL_RX_PROMISC over the control
// queue and blocks for the device's ack.
func (d *Device) SetPromiscuous(p *sim.Proc, on bool) error {
	v := byte(0)
	if on {
		v = 1
	}
	return d.ctrlCommand(p, virtio.NetCtrlRx, virtio.NetCtrlRxPromisc, []byte{v})
}

// Resetting reports whether a device reset recovery is in progress.
func (d *Device) Resetting() bool { return d.resetting }

// onConfigIRQ handles the config-change interrupt (MSI-X vector 0):
// the device uses it to announce DEVICE_NEEDS_RESET.
func (d *Device) onConfigIRQ(p *sim.Proc) {
	d.host.CPUWork(p, irqBodyCost)
	if d.resetting {
		return
	}
	if d.tr.ReadISR(p)&virtio.ISRConfig == 0 {
		return
	}
	if d.tr.ReadStatus(p)&virtio.StatusNeedsReset == 0 {
		return
	}
	d.recoverReset(p)
}

// recoverReset is the spec's reset sequence (virtio 1.2 §2.4): tear the
// driver state down, re-negotiate from status 0, rebuild every ring,
// repost all receive buffers, and resubmit the transmits the device
// abandoned mid-flight. Runs in whatever process observed NEEDS_RESET
// (config IRQ or watchdog).
func (d *Device) recoverReset(p *sim.Proc) {
	if d.resetting {
		return
	}
	d.resetting = true
	sp := p.Sim().BeginSpan(telemetry.LayerDriver, "virtionet.reset")
	d.recResets.Inc()

	// Harvest completions that landed before the device stopped, so
	// finished chains are returned to the free list and never requeued.
	for _, pq := range d.pairs {
		pq.reclaimTx(p)
	}
	// The old rings are dead the moment re-negotiation starts; any
	// further use is a driver bug (fvinvariants builds panic on it).
	for _, pq := range d.pairs {
		pq.rx.MarkDead()
		pq.tx.MarkDead()
	}
	if d.ctrlq != nil {
		d.ctrlq.MarkDead()
	}

	feats, err := d.tr.Negotiate(p, d.want)
	if err != nil {
		panic("virtionet: reset re-negotiation: " + err.Error())
	}
	for i, pq := range d.pairs {
		rx, err := d.tr.SetupQueue(p, virtio.NetRXQueue(i), d.qsize)
		if err != nil {
			panic("virtionet: reset RX rebuild: " + err.Error())
		}
		tx, err := d.tr.SetupQueue(p, virtio.NetTXQueue(i), d.qsize)
		if err != nil {
			panic("virtionet: reset TX rebuild: " + err.Error())
		}
		pq.rx, pq.tx = rx, tx
		if d.opt.PollMode {
			pq.rx.SetNoInterrupt(true)
			pq.tx.SetNoInterrupt(true)
		} else if d.opt.SuppressTxInterrupts {
			pq.tx.SetNoInterrupt(true)
		}
	}
	if d.ctrlq != nil {
		ctrlIdx := queueCtrl
		if feats.Has(virtio.NetFMQ) {
			ctrlIdx = virtio.NetCtrlQueue(d.maxPairs)
		}
		cq, err := d.tr.SetupQueue(p, ctrlIdx, 16)
		if err != nil {
			panic("virtionet: reset ctrl rebuild: " + err.Error())
		}
		d.ctrlq = cq
		if d.opt.PollMode {
			d.ctrlq.SetNoInterrupt(true)
		}
	}
	// The IRQ registrations survive: the handler closures dereference
	// pq.rx / pq.tx / d.ctrlq at delivery time and the vector numbers
	// are a function of the queue indices, which did not change.

	// Repost the entire receive buffer set into the fresh ring.
	for _, pq := range d.pairs {
		for i, addr := range pq.rxAddrs {
			if err := pq.rx.AddChain1(p, virtio.BufSeg{Addr: addr, Len: d.rxBufSize, DeviceWritten: true}, rxToken{addr: addr, idx: i}); err != nil {
				panic("virtionet: reset RX repost: " + err.Error())
			}
		}
		pq.rx.Kick(p)
	}
	d.tr.DriverOK(p)

	// Requeue the transmits the device never completed. Anything the
	// pre-reset reclaim freed has txInFlight cleared, so a buffer can
	// not be double-requeued.
	for _, pq := range d.pairs {
		requeued := 0
		for idx, inflight := range pq.txInFlight {
			if !inflight {
				continue
			}
			if fvassert.Enabled {
				for _, f := range pq.txFree {
					if f == idx {
						fvassert.Failf("virtionet: requeue of TX buffer %d already on the free list", idx)
					}
				}
			}
			if err := pq.tx.AddChain1(p, virtio.BufSeg{Addr: pq.txBufs[idx], Len: pq.txLen[idx]}, pq.txTokens[idx]); err != nil {
				panic("virtionet: reset TX requeue: " + err.Error())
			}
			d.recRequeued.Inc()
			requeued++
		}
		pq.unkicked = 0
		if requeued > 0 {
			pq.tx.Kick(p)
		}
	}

	// Recovery done: lift the gate before the MQ command, whose
	// completion interrupt would otherwise be swallowed by it.
	d.resetting = false
	if feats.Has(virtio.NetFMQ) {
		pairs := len(d.pairs)
		if err := d.ctrlCommand(p, virtio.NetCtrlMQ, virtio.NetCtrlMQPairs,
			[]byte{byte(pairs), byte(pairs >> 8)}); err != nil {
			panic("virtionet: reset VQ_PAIRS_SET: " + err.Error())
		}
	}
	for _, pq := range d.pairs {
		pq.txWQ.Wake()
	}
	sp.End()
}

// watchdog is the completion watchdog: a periodic sweep that catches
// what a lost interrupt or a silently stopped device would otherwise
// turn into a hang. It only runs when fault injection is armed.
func (d *Device) watchdog(p *sim.Proc) {
	for {
		p.Sleep(watchdogPeriod)
		if d.resetting {
			continue
		}
		// A NEEDS_RESET whose config interrupt was dropped.
		if d.tr.ReadStatus(p)&virtio.StatusNeedsReset != 0 {
			d.recWatchdog.Inc()
			d.recoverReset(p)
			continue
		}
		for _, pq := range d.pairs {
			// RX completions pending with no poll running: the RX
			// interrupt was lost. Two strikes, then rescue-poll.
			if pq.rx.HasUsed() && !pq.polling {
				pq.rxStrikes++
				if pq.rxStrikes >= watchdogStrikes {
					pq.rxStrikes = 0
					d.recWatchdog.Inc()
					pq.rx.SetNoInterrupt(true)
					d.napiPoll(p, pq)
				}
			} else {
				pq.rxStrikes = 0
			}
			if d.resetting {
				break
			}
			// TX chains in flight with no progress and nothing harvested:
			// the doorbell (or the device's run) was lost — re-ring. A
			// spurious doorbell is harmless, so this is safe to be wrong.
			inflight := 0
			for _, f := range pq.txInFlight {
				if f {
					inflight++
				}
			}
			if inflight > 0 && inflight == pq.lastInFlight && !pq.tx.HasUsed() {
				pq.txStrikes++
				if pq.txStrikes >= watchdogStrikes {
					pq.txStrikes = 0
					d.recWatchdog.Inc()
					pq.tx.Kick(p)
				}
			} else {
				pq.txStrikes = 0
			}
			pq.lastInFlight = inflight
			// Completions landed but the waker's interrupt was elided or
			// dropped while a transmitter sleeps: wake it to reclaim.
			if pq.tx.HasUsed() && pq.txWQ.Waiters() > 0 {
				d.recWatchdog.Inc()
				pq.txWQ.Wake()
			}
		}
		// A control command waiting on a completion whose interrupt was
		// dropped.
		if !d.resetting && d.ctrlq != nil && d.ctrlq.HasUsed() && d.ctrlWQ.Waiters() > 0 {
			d.recWatchdog.Inc()
			d.ctrlWQ.Wake()
		}
	}
}
