// Package virtionet is the virtio-net front-end driver: it binds a
// VirtIO network function through the virtio-pci transport, registers
// as a NIC with the host network stack, and implements the TX
// (doorbell) and RX (interrupt + NAPI poll) paths with the kernel
// driver's structure. The FPGA appears to the host as an ordinary
// network interface — the semantic benefit the paper highlights in
// §IV-B.
package virtionet

import (
	"fmt"

	"fpgavirtio/internal/drivers/virtiopci"
	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/netstack"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
	"fpgavirtio/internal/virtio"
)

// Queue indices of a single-queue-pair virtio-net device.
const (
	queueRX   = 0
	queueTX   = 1
	queueCtrl = 2
)

// Driver CPU costs specific to the net front-end.
const (
	xmitPathCost   = sim.Duration(350) * sim.Nanosecond // start_xmit bookkeeping
	irqBodyCost    = sim.Duration(250) * sim.Nanosecond // vring_interrupt
	napiPerPktCost = sim.Duration(380) * sim.Nanosecond // receive_buf + skb build
	refillCost     = sim.Duration(150) * sim.Nanosecond // try_fill_recv per buffer
)

// Options controls bring-up.
type Options struct {
	Name string
	// WantCsum asks for NET_F_CSUM/GUEST_CSUM if the device offers it.
	WantCsum bool
	// WantCtrlVQ asks for the control virtqueue.
	WantCtrlVQ bool
	// RXBuffers is the number of pre-posted receive buffers (default 64).
	RXBuffers int
	// QueueSize overrides the ring size (default: device maximum).
	QueueSize int
	// SuppressTxInterrupts mirrors the kernel's TX-completion strategy:
	// reclaim on the next transmit rather than per-packet interrupts.
	// On by default via DefaultOptions.
	SuppressTxInterrupts bool
	// WantEventIdx negotiates VIRTIO_F_RING_EVENT_IDX when offered.
	WantEventIdx bool
	// WantPacked negotiates VIRTIO_F_RING_PACKED when offered.
	WantPacked bool
}

// DefaultOptions matches the paper's test configuration.
func DefaultOptions(name string) Options {
	return Options{Name: name, WantCsum: true, WantCtrlVQ: true, RXBuffers: 64, SuppressTxInterrupts: true}
}

// Device is a bound virtio-net interface; it implements netstack.NIC.
type Device struct {
	tr    *virtiopci.Transport
	host  *hostos.Host
	stack *netstack.Stack
	opt   Options

	mac      netstack.MAC
	mtu      uint16
	offloads netstack.Offloads

	rxq, txq, ctrlq *virtiopci.VQ

	rxBufSize int
	txBufs    []mem.Addr
	txFree    []int
	txWQ      *hostos.WaitQueue

	ctrlWQ *hostos.WaitQueue

	// stats
	TxPackets, RxPackets, RxIRQs int

	txPkts, rxPkts, rxIRQs *telemetry.Counter
}

// rxToken records one posted receive buffer.
type rxToken struct {
	addr mem.Addr
	idx  int
}

// txToken records one in-flight transmit buffer.
type txToken struct{ idx int }

// Probe binds the driver to an enumerated device and brings the
// interface up: feature negotiation, ring setup, RX buffer posting,
// IRQ registration, DRIVER_OK.
func Probe(p *sim.Proc, h *hostos.Host, stack *netstack.Stack, info *pcie.DeviceInfo, opt Options) (*Device, error) {
	if opt.RXBuffers == 0 {
		opt.RXBuffers = 64
	}
	if opt.Name == "" {
		opt.Name = "eth-virtio"
	}
	tr, err := virtiopci.Probe(p, h, info)
	if err != nil {
		return nil, err
	}
	if info.DeviceID != virtio.DeviceNet.PCIDeviceID() {
		return nil, fmt.Errorf("virtionet: not a net device: %#x", info.DeviceID)
	}
	reg := h.Metrics()
	d := &Device{
		tr:     tr,
		host:   h,
		stack:  stack,
		opt:    opt,
		txWQ:   h.NewWaitQueue(opt.Name + ".tx"),
		ctrlWQ: h.NewWaitQueue(opt.Name + ".ctrl"),
		txPkts: reg.Counter("driver.virtionet.tx.packets"),
		rxPkts: reg.Counter("driver.virtionet.rx.packets"),
		rxIRQs: reg.Counter("driver.virtionet.rx.irqs"),
	}

	want := virtio.NetFMAC | virtio.NetFMTU | virtio.NetFStatus
	if opt.WantCsum {
		want |= virtio.NetFCsum | virtio.NetFGuestCsum
	}
	if opt.WantCtrlVQ {
		want |= virtio.NetFCtrlVQ
	}
	if opt.WantEventIdx {
		want |= virtio.FRingEventIdx
	}
	if opt.WantPacked {
		want |= virtio.FRingPacked
	}
	feats, err := tr.Negotiate(p, want)
	if err != nil {
		return nil, err
	}
	d.offloads = netstack.Offloads{
		TxCsum: feats.Has(virtio.NetFCsum),
		RxCsum: feats.Has(virtio.NetFGuestCsum),
	}

	cfg := tr.ReadDeviceConfig(p, virtio.NetCfgMAC, virtio.NetCfgLen)
	copy(d.mac[:], cfg[virtio.NetCfgMAC:])
	d.mtu = uint16(cfg[virtio.NetCfgMTU]) | uint16(cfg[virtio.NetCfgMTU+1])<<8
	d.rxBufSize = virtio.NetHdrSize + netstack.EthHdrSize + int(d.mtu) + 64

	qsize := opt.QueueSize
	if qsize == 0 {
		qsize = 256
	}
	if d.rxq, err = tr.SetupQueue(p, queueRX, qsize); err != nil {
		return nil, err
	}
	if d.txq, err = tr.SetupQueue(p, queueTX, qsize); err != nil {
		return nil, err
	}
	if feats.Has(virtio.NetFCtrlVQ) {
		if d.ctrlq, err = tr.SetupQueue(p, queueCtrl, 16); err != nil {
			return nil, err
		}
		d.ctrlq.RegisterIRQ(d.onCtrlIRQ)
	}
	d.rxq.RegisterIRQ(d.onRxIRQ)
	d.txq.RegisterIRQ(d.onTxIRQ)
	if opt.SuppressTxInterrupts {
		d.txq.SetNoInterrupt(true)
	}

	// Pre-post receive buffers and kick once so the device knows.
	for i := 0; i < opt.RXBuffers; i++ {
		addr := tr.AllocBuffer(d.rxBufSize)
		if err := d.rxq.AddChain(p, []virtio.BufSeg{{Addr: addr, Len: d.rxBufSize, DeviceWritten: true}}, rxToken{addr: addr, idx: i}); err != nil {
			return nil, err
		}
	}
	d.rxq.Kick(p)

	// Transmit buffer pool sized to the ring.
	for i := 0; i < qsize; i++ {
		d.txBufs = append(d.txBufs, tr.AllocBuffer(virtio.NetHdrSize+netstack.EthHdrSize+int(d.mtu)+64))
		d.txFree = append(d.txFree, i)
	}

	tr.DriverOK(p)
	return d, nil
}

// Name implements netstack.NIC.
func (d *Device) Name() string { return d.opt.Name }

// MAC implements netstack.NIC.
func (d *Device) MAC() netstack.MAC { return d.mac }

// MTU reports the device MTU from config space.
func (d *Device) MTU() uint16 { return d.mtu }

// Offloads implements netstack.NIC.
func (d *Device) Offloads() netstack.Offloads { return d.offloads }

// Transport exposes the underlying transport (examples and tests).
func (d *Device) Transport() *virtiopci.Transport { return d.tr }

// Xmit implements netstack.NIC: virtio-net's start_xmit. Completed
// transmissions are reclaimed here rather than by interrupt, matching
// the suppressed-TX-interrupt configuration.
func (d *Device) Xmit(p *sim.Proc, pkt netstack.TxPacket) error {
	sp := p.Sim().BeginSpan(telemetry.LayerDriver, "virtionet.xmit")
	defer sp.End()
	d.host.CPUWork(p, xmitPathCost)

	// Reclaim finished TX chains (free_old_xmit_skbs).
	for _, u := range d.txq.Harvest(p) {
		d.txFree = append(d.txFree, u.Token.(txToken).idx)
	}
	for len(d.txFree) == 0 {
		d.txWQ.Wait(p) // ring full: netif_stop_queue
		for _, u := range d.txq.Harvest(p) {
			d.txFree = append(d.txFree, u.Token.(txToken).idx)
		}
	}
	idx := d.txFree[len(d.txFree)-1]
	d.txFree = d.txFree[:len(d.txFree)-1]
	buf := d.txBufs[idx]

	hdr := virtio.NetHdr{NumBuffers: 1}
	if pkt.NeedsCsum {
		hdr.Flags = virtio.NetHdrFNeedsCsum
		hdr.CsumStart = uint16(pkt.CsumStart)
		hdr.CsumOffset = uint16(pkt.CsumOffset)
	}
	n := virtio.NetHdrSize + len(pkt.Frame)
	d.host.Copy(p, n)
	d.host.Mem.Write(buf, hdr.Encode())
	d.host.Mem.Write(buf+virtio.NetHdrSize, pkt.Frame)

	if err := d.txq.AddChain(p, []virtio.BufSeg{{Addr: buf, Len: n}}, txToken{idx: idx}); err != nil {
		return err
	}
	d.txq.KickIfNeeded(p)
	d.TxPackets++
	d.txPkts.Inc()
	return nil
}

// onTxIRQ handles (rare) TX completion interrupts when suppression is
// off: reclaim and wake any stalled transmitter.
func (d *Device) onTxIRQ(p *sim.Proc) {
	d.host.CPUWork(p, irqBodyCost)
	for _, u := range d.txq.Harvest(p) {
		d.txFree = append(d.txFree, u.Token.(txToken).idx)
	}
	d.txWQ.Wake()
}

// onRxIRQ is the receive interrupt: disable further RX interrupts and
// hand off to NAPI poll, per the kernel's structure.
func (d *Device) onRxIRQ(p *sim.Proc) {
	d.RxIRQs++
	d.rxIRQs.Inc()
	d.host.CPUWork(p, irqBodyCost)
	d.rxq.SetNoInterrupt(true)
	p.Sleep(d.host.Config().SoftIRQLatency)
	d.napiPoll(p)
}

// napiPoll drains the RX used ring, delivers frames to the stack,
// reposts buffers, then re-enables interrupts (with the standard
// re-check to close the race).
func (d *Device) napiPoll(p *sim.Proc) {
	sp := p.Sim().BeginSpan(telemetry.LayerDriver, "virtionet.napi")
	defer sp.End()
	for {
		for _, u := range d.rxq.Harvest(p) {
			tok := u.Token.(rxToken)
			d.host.CPUWork(p, napiPerPktCost)
			raw := d.host.Mem.Read(tok.addr, u.Written)
			hdr, err := virtio.DecodeNetHdr(raw)
			if err == nil {
				frame := raw[virtio.NetHdrSize:]
				rx := netstack.RxPacket{
					Frame:     frame,
					CsumValid: hdr.Flags&virtio.NetHdrFDataValid != 0,
				}
				d.RxPackets++
				d.rxPkts.Inc()
				// Delivery errors (stray ports, bad checksums) drop the
				// packet, as the stack does.
				_ = d.stack.Input(p, rx)
			}
			// Repost the buffer.
			d.host.CPUWork(p, refillCost)
			if err := d.rxq.AddChain(p, []virtio.BufSeg{{Addr: tok.addr, Len: d.rxBufSize, DeviceWritten: true}}, tok); err != nil {
				panic("virtionet: repost: " + err.Error())
			}
		}
		d.rxq.KickIfNeeded(p) // tell the device buffers were returned
		d.rxq.SetNoInterrupt(false)
		if !d.rxq.HasUsed() {
			return
		}
		// More arrived between drain and re-enable: poll again.
		d.rxq.SetNoInterrupt(true)
	}
}

// onCtrlIRQ completes a pending control command.
func (d *Device) onCtrlIRQ(p *sim.Proc) {
	d.host.CPUWork(p, irqBodyCost)
	d.ctrlWQ.Wake()
}

// SetPromiscuous issues VIRTIO_NET_CTRL_RX_PROMISC over the control
// queue and blocks for the device's ack.
func (d *Device) SetPromiscuous(p *sim.Proc, on bool) error {
	if d.ctrlq == nil {
		return fmt.Errorf("virtionet: no control queue negotiated")
	}
	cmd := d.tr.AllocBuffer(3)
	ack := d.tr.AllocBuffer(1)
	v := byte(0)
	if on {
		v = 1
	}
	d.host.Mem.Write(cmd, []byte{virtio.NetCtrlRx, virtio.NetCtrlRxPromisc, v})
	d.host.Mem.PutU8(ack, 0xff)
	if err := d.ctrlq.AddChain(p, []virtio.BufSeg{
		{Addr: cmd, Len: 3},
		{Addr: ack, Len: 1, DeviceWritten: true},
	}, "ctrl"); err != nil {
		return err
	}
	d.ctrlq.Kick(p)
	for !d.ctrlq.HasUsed() {
		d.ctrlWQ.Wait(p)
	}
	d.ctrlq.Harvest(p)
	if st := d.host.Mem.U8(ack); st != virtio.NetCtrlAckOK {
		return fmt.Errorf("virtionet: ctrl command failed: status %d", st)
	}
	return nil
}
