package virtioconsole_test

import (
	"bytes"
	"testing"

	"fpgavirtio/internal/drivers/virtioconsole"
	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/vdev"
)

// upperHandler is console user logic that upper-cases ASCII input.
type upperHandler struct{}

func (upperHandler) HandleBytes(p *sim.Proc, data []byte) []byte {
	out := make([]byte, len(data))
	for i, b := range data {
		if b >= 'a' && b <= 'z' {
			b -= 32
		}
		out[i] = b
	}
	return out
}

func testbed(t *testing.T, handler vdev.ByteHandler) (*sim.Sim, *hostos.Host) {
	t.Helper()
	s := sim.New()
	cfg := hostos.DefaultConfig()
	cfg.JitterSigma = 0
	cfg.PreemptMeanGap = 0
	cfg.WakeTailProb = 0
	h := hostos.New(s, 4<<20, cfg, 3)
	vdev.NewConsole(s, h.RC, "vcon", vdev.ConsoleOptions{Link: pcie.DefaultGen2x2(), Handler: handler})
	return s, h
}

func run(t *testing.T, s *sim.Sim, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	s.Go("test", func(p *sim.Proc) {
		defer s.Stop()
		fn(p)
		done = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("test did not finish")
	}
}

func TestCustomUserLogic(t *testing.T) {
	s, h := testbed(t, upperHandler{})
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		con, err := virtioconsole.Probe(p, h, infos[0])
		if err != nil {
			t.Error(err)
			return
		}
		if err := con.Write(p, []byte("hello FPGA")); err != nil {
			t.Error(err)
			return
		}
		got, err := con.Read(p)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, []byte("HELLO FPGA")) {
			t.Errorf("got %q", got)
		}
	})
}

func TestPipelinedWrites(t *testing.T) {
	s, h := testbed(t, nil) // default echo
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		con, err := virtioconsole.Probe(p, h, infos[0])
		if err != nil {
			t.Error(err)
			return
		}
		msgs := []string{"one", "two", "three", "four", "five"}
		for _, m := range msgs {
			if err := con.Write(p, []byte(m)); err != nil {
				t.Error(err)
				return
			}
		}
		for _, m := range msgs {
			got, err := con.Read(p)
			if err != nil {
				t.Error(err)
				return
			}
			if string(got) != m {
				t.Errorf("got %q, want %q (ordering)", got, m)
			}
		}
	})
}

func TestOversizeWriteRejected(t *testing.T) {
	s, h := testbed(t, nil)
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		con, err := virtioconsole.Probe(p, h, infos[0])
		if err != nil {
			t.Error(err)
			return
		}
		if err := con.Write(p, make([]byte, 5000)); err == nil {
			t.Error("oversize write succeeded")
		}
	})
}
