package virtioconsole_test

import (
	"bytes"
	"testing"

	"fpgavirtio/internal/drivers/virtioconsole"
	"fpgavirtio/internal/drivers/virtiopci"
	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/vdev"
	"fpgavirtio/internal/virtio"
)

// TestRingSetupTable checks queue geometry negotiation on the console's
// two-queue layout: both the RX and TX queues honour the requested size
// up to the device's queue_size_max, oversized requests clamp, and the
// first index past NumQueues reads queue_size == 0 and fails setup.
func TestRingSetupTable(t *testing.T) {
	cases := []struct {
		name     string
		index    int
		req      int
		wantSize int
		wantErr  bool
	}{
		{"rx small", 0, 16, 16, false},
		{"rx driver default", 0, 64, 64, false},
		{"tx driver default", 1, 64, 64, false},
		{"tx clamped to device max", 1, 512, 256, false},
		{"missing queue", 2, 64, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, h := testbed(t, nil)
			run(t, s, func(p *sim.Proc) {
				infos := h.RC.Enumerate(p)
				tr, err := virtiopci.Probe(p, h, infos[0])
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := tr.Negotiate(p, 0); err != nil {
					t.Error(err)
					return
				}
				vq, err := tr.SetupQueue(p, tc.index, tc.req)
				if tc.wantErr {
					if err == nil {
						t.Errorf("SetupQueue(%d, %d) succeeded, want error", tc.index, tc.req)
					}
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				if vq.Size() != tc.wantSize {
					t.Errorf("ring size = %d, want %d", vq.Size(), tc.wantSize)
				}
				if vq.NumFree() != tc.wantSize {
					t.Errorf("fresh ring NumFree = %d, want %d", vq.NumFree(), tc.wantSize)
				}
			})
		})
	}
}

// TestResetWalkTable walks the VirtIO 1.2 §3.1 status sequence on the
// console personality, asserting after each stage that driver-read and
// device-latched status agree — through a mid-life reset back to 0 and
// a second bring-up.
func TestResetWalkTable(t *testing.T) {
	s := sim.New()
	cfg := hostos.DefaultConfig()
	cfg.JitterSigma = 0
	cfg.PreemptMeanGap = 0
	cfg.WakeTailProb = 0
	h := hostos.New(s, 4<<20, cfg, 3)
	dev := vdev.NewConsole(s, h.RC, "vcon", vdev.ConsoleOptions{Link: pcie.DefaultGen2x2()})
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		tr, err := virtiopci.Probe(p, h, infos[0])
		if err != nil {
			t.Error(err)
			return
		}
		const negotiated = virtio.StatusAcknowledge | virtio.StatusDriver | virtio.StatusFeaturesOK
		steps := []struct {
			name string
			do   func() error
			want byte
		}{
			{"fresh device", func() error { return nil }, 0},
			{"negotiate", func() error { _, err := tr.Negotiate(p, 0); return err }, negotiated},
			{"driver-ok", func() error { tr.DriverOK(p); return nil }, negotiated | virtio.StatusDriverOK},
			{"reset", func() error { tr.Reset(p); return nil }, 0},
			{"re-negotiate", func() error { _, err := tr.Negotiate(p, 0); return err }, negotiated},
			{"re-driver-ok", func() error { tr.DriverOK(p); return nil }, negotiated | virtio.StatusDriverOK},
		}
		for _, st := range steps {
			if err := st.do(); err != nil {
				t.Errorf("%s: %v", st.name, err)
				return
			}
			if got := tr.ReadStatus(p); got != st.want {
				t.Errorf("%s: driver reads status %#x, want %#x", st.name, got, st.want)
			}
			if got := dev.Controller().Status(); got != st.want {
				t.Errorf("%s: device latched status %#x, want %#x", st.name, got, st.want)
			}
		}
	})
}

// TestResetWalkThenIO re-probes the console after a completed session
// and proves the rebuilt rings still move bytes both ways.
func TestResetWalkThenIO(t *testing.T) {
	s, h := testbed(t, nil) // default echo
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		con, err := virtioconsole.Probe(p, h, infos[0])
		if err != nil {
			t.Error(err)
			return
		}
		if err := con.Write(p, []byte("before reset")); err != nil {
			t.Error(err)
			return
		}
		if _, err := con.Read(p); err != nil {
			t.Error(err)
			return
		}
		// Second probe resets the device and rebuilds both rings.
		con2, err := virtioconsole.Probe(p, h, infos[0])
		if err != nil {
			t.Errorf("re-probe after reset: %v", err)
			return
		}
		if err := con2.Write(p, []byte("after reset")); err != nil {
			t.Error(err)
			return
		}
		got, err := con2.Read(p)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, []byte("after reset")) {
			t.Errorf("echo after reset = %q", got)
		}
	})
}

// TestIORoundTripTable sweeps payload shapes through the echo device:
// from a single byte to a full RX buffer, every write comes back
// byte-identical and in order.
func TestIORoundTripTable(t *testing.T) {
	cases := []struct {
		name string
		n    int
	}{
		{"single byte", 1},
		{"cacheline", 64},
		{"one sector", 512},
		{"page minus header", 4000},
		{"full rx buffer", 4096},
	}
	s, h := testbed(t, nil)
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		con, err := virtioconsole.Probe(p, h, infos[0])
		if err != nil {
			t.Error(err)
			return
		}
		rng := sim.NewRNG(23)
		for _, tc := range cases {
			data := make([]byte, tc.n)
			rng.Bytes(data)
			if err := con.Write(p, data); err != nil {
				t.Errorf("%s: write: %v", tc.name, err)
				continue
			}
			got, err := con.Read(p)
			if err != nil {
				t.Errorf("%s: read: %v", tc.name, err)
				continue
			}
			if !bytes.Equal(got, data) {
				t.Errorf("%s: echo mismatch (%d bytes in, %d out)", tc.name, len(data), len(got))
			}
		}
	})
}
