// Package virtioconsole is the virtio-console front-end: the device
// type the prior work [14] demonstrated. It offers blocking Write
// (host-to-device over the transmit queue) and Read (device-to-host
// over pre-posted receive buffers).
package virtioconsole

import (
	"fmt"

	"fpgavirtio/internal/drivers/virtiopci"
	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
	"fpgavirtio/internal/virtio"
)

const (
	queueRX = 0
	queueTX = 1

	rxBufSize = 4096
	rxBufs    = 16
)

// Device is a bound virtio-console.
type Device struct {
	tr   *virtiopci.Transport
	host *hostos.Host

	rxq, txq *virtiopci.VQ
	txBuf    mem.Addr
	rxWQ     *hostos.WaitQueue
	txWQ     *hostos.WaitQueue
	txDone   int // TX completions harvested by the ISR, not yet consumed

	pending [][]byte

	txBytes, rxBytes *telemetry.Counter
}

type rxTok struct{ addr mem.Addr }

// Probe binds the console driver to an enumerated device.
func Probe(p *sim.Proc, h *hostos.Host, info *pcie.DeviceInfo) (*Device, error) {
	tr, err := virtiopci.Probe(p, h, info)
	if err != nil {
		return nil, err
	}
	if info.DeviceID != virtio.DeviceConsole.PCIDeviceID() {
		return nil, fmt.Errorf("virtioconsole: not a console device: %#x", info.DeviceID)
	}
	if _, err := tr.Negotiate(p, 0); err != nil {
		return nil, err
	}
	d := &Device{
		tr:      tr,
		host:    h,
		rxWQ:    h.NewWaitQueue("console.rx"),
		txWQ:    h.NewWaitQueue("console.tx"),
		txBytes: h.Metrics().Counter(telemetry.MetricVirtioconsoleTxBytes),
		rxBytes: h.Metrics().Counter(telemetry.MetricVirtioconsoleRxBytes),
	}
	if d.rxq, err = tr.SetupQueue(p, queueRX, 64); err != nil {
		return nil, err
	}
	if d.txq, err = tr.SetupQueue(p, queueTX, 64); err != nil {
		return nil, err
	}
	d.rxq.RegisterIRQ(d.onRxIRQ)
	d.txq.RegisterIRQ(d.onTxIRQ)
	d.txBuf = tr.AllocBuffer(rxBufSize)
	for i := 0; i < rxBufs; i++ {
		a := tr.AllocBuffer(rxBufSize)
		if err := d.rxq.AddChain(p, []virtio.BufSeg{{Addr: a, Len: rxBufSize, DeviceWritten: true}}, rxTok{a}); err != nil {
			return nil, err
		}
	}
	d.rxq.Kick(p)
	tr.DriverOK(p)
	return d, nil
}

func (d *Device) onRxIRQ(p *sim.Proc) {
	d.host.CPUWork(p, sim.Ns(250))
	for _, u := range d.rxq.Harvest(p) {
		tok := u.Token.(rxTok)
		data := d.host.Mem.Read(tok.addr, u.Written)
		d.pending = append(d.pending, data)
		if err := d.rxq.AddChain(p, []virtio.BufSeg{{Addr: tok.addr, Len: rxBufSize, DeviceWritten: true}}, tok); err != nil {
			panic("virtioconsole: repost: " + err.Error())
		}
	}
	d.rxq.Kick(p)
	d.rxWQ.Wake()
}

func (d *Device) onTxIRQ(p *sim.Proc) {
	d.host.CPUWork(p, sim.Ns(250))
	d.txDone += len(d.txq.Harvest(p))
	d.txWQ.Wake()
}

// Write sends bytes to the device, blocking until the device consumed
// them (the hvc console's flow-controlled put_chars path).
func (d *Device) Write(p *sim.Proc, data []byte) error {
	if len(data) > rxBufSize {
		return fmt.Errorf("virtioconsole: write too large: %d", len(data))
	}
	sp := p.Sim().BeginSpan(telemetry.LayerDriver, "console.write")
	defer sp.End()
	d.host.SyscallEnter(p)
	d.host.Copy(p, len(data))
	d.host.Mem.Write(d.txBuf, data)
	d.txBytes.Add(int64(len(data)))
	if err := d.txq.AddChain(p, []virtio.BufSeg{{Addr: d.txBuf, Len: len(data)}}, "tx"); err != nil {
		d.host.SyscallExit(p)
		return err
	}
	d.txq.Kick(p)
	for d.txDone == 0 {
		d.txWQ.Wait(p)
	}
	d.txDone--
	d.host.SyscallExit(p)
	return nil
}

// Read blocks until the device delivers bytes, then returns them.
func (d *Device) Read(p *sim.Proc) ([]byte, error) {
	d.host.SyscallEnter(p)
	for len(d.pending) == 0 {
		d.rxWQ.Wait(p)
	}
	out := d.pending[0]
	d.pending = d.pending[1:]
	d.rxBytes.Add(int64(len(out)))
	d.host.Copy(p, len(out))
	d.host.SyscallExit(p)
	return out, nil
}
