package virtioblk_test

import (
	"bytes"
	"testing"

	"fpgavirtio/internal/drivers/virtioblk"
	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/vdev"
	"fpgavirtio/internal/virtio"
)

func testbed(t *testing.T, sectors uint64) (*sim.Sim, *hostos.Host, *vdev.BlkDevice) {
	t.Helper()
	s := sim.New()
	cfg := hostos.DefaultConfig()
	cfg.JitterSigma = 0
	cfg.PreemptMeanGap = 0
	cfg.WakeTailProb = 0
	h := hostos.New(s, 8<<20, cfg, 2)
	dev := vdev.NewBlk(s, h.RC, "vblk", vdev.BlkOptions{Link: pcie.DefaultGen2x2(), CapacitySectors: sectors})
	return s, h, dev
}

func run(t *testing.T, s *sim.Sim, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	s.Go("test", func(p *sim.Proc) {
		defer s.Stop()
		fn(p)
		done = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("test did not finish")
	}
}

func TestCapacityFromConfigSpace(t *testing.T) {
	s, h, _ := testbed(t, 777)
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		d, err := virtioblk.Probe(p, h, infos[0])
		if err != nil {
			t.Error(err)
			return
		}
		if d.CapacitySectors() != 777 {
			t.Errorf("capacity = %d, want 777", d.CapacitySectors())
		}
	})
}

func TestReadWriteManySectors(t *testing.T) {
	s, h, dev := testbed(t, 64)
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		d, err := virtioblk.Probe(p, h, infos[0])
		if err != nil {
			t.Error(err)
			return
		}
		rng := sim.NewRNG(9)
		want := map[uint64][]byte{}
		for _, sec := range []uint64{0, 1, 31, 63} {
			data := make([]byte, virtio.BlkSectorSize)
			rng.Bytes(data)
			want[sec] = data
			if err := d.WriteSector(p, sec, data); err != nil {
				t.Errorf("write %d: %v", sec, err)
				return
			}
		}
		for sec, data := range want {
			got, err := d.ReadSector(p, sec)
			if err != nil {
				t.Errorf("read %d: %v", sec, err)
				return
			}
			if !bytes.Equal(got, data) {
				t.Errorf("sector %d mismatch", sec)
			}
		}
		if d.Requests != 8 {
			t.Errorf("requests = %d, want 8", d.Requests)
		}
		if r, w := dev.Stats(); r != 4 || w != 4 {
			t.Errorf("device stats r=%d w=%d", r, w)
		}
	})
}

func TestErrorPaths(t *testing.T) {
	s, h, _ := testbed(t, 16)
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		d, err := virtioblk.Probe(p, h, infos[0])
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := d.ReadSector(p, 16); err == nil {
			t.Error("read beyond capacity succeeded")
		}
		if err := d.WriteSector(p, 16, make([]byte, 512)); err == nil {
			t.Error("write beyond capacity succeeded")
		}
		if err := d.WriteSector(p, 0, make([]byte, 100)); err == nil {
			t.Error("non-sector-sized write succeeded")
		}
		// Valid operation still works after errors.
		if err := d.WriteSector(p, 15, make([]byte, 512)); err != nil {
			t.Error(err)
		}
		if err := d.Flush(p); err != nil {
			t.Error(err)
		}
	})
}

func TestProbeRejectsNonBlk(t *testing.T) {
	s := sim.New()
	cfg := hostos.DefaultConfig()
	cfg.JitterSigma = 0
	cfg.PreemptMeanGap = 0
	cfg.WakeTailProb = 0
	h := hostos.New(s, 4<<20, cfg, 1)
	vdev.NewConsole(s, h.RC, "vcon", vdev.ConsoleOptions{Link: pcie.DefaultGen2x2()})
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		if _, err := virtioblk.Probe(p, h, infos[0]); err == nil {
			t.Error("console probed as block device")
		}
	})
}

func TestMultiSectorRequests(t *testing.T) {
	s, h, dev := testbed(t, 64)
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		d, err := virtioblk.Probe(p, h, infos[0])
		if err != nil {
			t.Error(err)
			return
		}
		if !d.Indirect() {
			t.Error("indirect descriptors not negotiated")
		}
		// Write 8 sectors in one request, read them back in one request.
		data := make([]byte, 8*virtio.BlkSectorSize)
		sim.NewRNG(14).Bytes(data)
		if err := d.WriteSectors(p, 4, data); err != nil {
			t.Error(err)
			return
		}
		got, err := d.ReadSectors(p, 4, 8)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("multi-sector data mismatch")
		}
		// Two requests total, not sixteen.
		if d.Requests != 2 {
			t.Errorf("requests = %d, want 2", d.Requests)
		}
		if r, w := dev.Stats(); r != 1 || w != 1 {
			t.Errorf("device ops r=%d w=%d, want 1/1", r, w)
		}
		// Limits enforced.
		if _, err := d.ReadSectors(p, 0, 9); err == nil {
			t.Error("over-limit read accepted")
		}
		if _, err := d.ReadSectors(p, 60, 8); err == nil {
			t.Error("read past capacity accepted")
		}
	})
}

func TestMultiSectorFasterPerByte(t *testing.T) {
	s, h, _ := testbed(t, 64)
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		d, err := virtioblk.Probe(p, h, infos[0])
		if err != nil {
			t.Error(err)
			return
		}
		// 8 single-sector reads vs one 8-sector read.
		t0 := p.Now()
		for i := 0; i < 8; i++ {
			if _, err := d.ReadSector(p, uint64(i)); err != nil {
				t.Error(err)
				return
			}
		}
		singles := p.Now().Sub(t0)
		t0 = p.Now()
		if _, err := d.ReadSectors(p, 0, 8); err != nil {
			t.Error(err)
			return
		}
		batched := p.Now().Sub(t0)
		if batched*3 >= singles {
			t.Errorf("batched read %v not >3x faster than %v", batched, singles)
		}
	})
}
