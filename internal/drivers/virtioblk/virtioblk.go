// Package virtioblk is the virtio-blk front-end: single request queue,
// three-descriptor requests (header, data, status), completion by
// MSI-X interrupt. It demonstrates the paper's claim that the same
// FPGA controller serves different device semantics with minimal
// change (§IV-B).
package virtioblk

import (
	"fmt"

	"fpgavirtio/internal/drivers/virtiopci"
	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
	"fpgavirtio/internal/virtio"
)

const queueReq = 0

// Device is a bound virtio-blk disk.
type Device struct {
	tr   *virtiopci.Transport
	host *hostos.Host

	vq       *virtiopci.VQ
	capacity uint64 // sectors
	indirect bool   // VIRTIO_F_RING_INDIRECT_DESC negotiated

	hdrBuf, dataBuf, statusBuf mem.Addr
	indTable                   mem.Addr // indirect descriptor table
	dataBufSectors             int

	wq *hostos.WaitQueue

	Requests int

	requests *telemetry.Counter
}

// MaxSectorsPerRequest bounds one request's data segment.
const MaxSectorsPerRequest = 8

// Probe binds the block driver to an enumerated device.
func Probe(p *sim.Proc, h *hostos.Host, info *pcie.DeviceInfo) (*Device, error) {
	tr, err := virtiopci.Probe(p, h, info)
	if err != nil {
		return nil, err
	}
	if info.DeviceID != virtio.DeviceBlock.PCIDeviceID() {
		return nil, fmt.Errorf("virtioblk: not a block device: %#x", info.DeviceID)
	}
	feats, err := tr.Negotiate(p, virtio.FRingIndirectDesc)
	if err != nil {
		return nil, err
	}
	d := &Device{
		tr:       tr,
		host:     h,
		wq:       h.NewWaitQueue("vblk"),
		indirect: feats.Has(virtio.FRingIndirectDesc),
		requests: h.Metrics().Counter(telemetry.MetricVirtioblkRequests),
	}
	cfg := tr.ReadDeviceConfig(p, virtio.BlkCfgCapacity, 8)
	for i := 7; i >= 0; i-- {
		d.capacity = d.capacity<<8 | uint64(cfg[i])
	}
	if d.vq, err = tr.SetupQueue(p, queueReq, 128); err != nil {
		return nil, err
	}
	d.vq.RegisterIRQ(d.onIRQ)
	d.hdrBuf = tr.AllocBuffer(virtio.BlkReqHdrSize)
	d.dataBufSectors = MaxSectorsPerRequest
	d.dataBuf = tr.AllocBuffer(d.dataBufSectors * virtio.BlkSectorSize)
	d.statusBuf = tr.AllocBuffer(1)
	d.indTable = tr.AllocBuffer(3 * 16) // hdr + data + status descriptors
	tr.DriverOK(p)
	return d, nil
}

// Indirect reports whether indirect descriptors were negotiated.
func (d *Device) Indirect() bool { return d.indirect }

// CapacitySectors reports the device capacity from config space.
func (d *Device) CapacitySectors() uint64 { return d.capacity }

func (d *Device) onIRQ(p *sim.Proc) {
	d.host.CPUWork(p, sim.Ns(260))
	d.wq.Wake()
}

// submit issues one request chain and blocks for its completion, using
// an indirect table when negotiated (one ring slot, one device fetch).
func (d *Device) submit(p *sim.Proc, segs []virtio.BufSeg) error {
	sp := p.Sim().BeginSpan(telemetry.LayerDriver, "virtioblk.submit")
	defer sp.End()
	if d.indirect {
		d.host.CPUWork(p, 150*sim.Nanosecond) // table setup
		if _, err := d.vq.AddIndirect(segs, "req", d.indTable); err != nil {
			return err
		}
	} else if err := d.vq.AddChain(p, segs, "req"); err != nil {
		return err
	}
	d.vq.Kick(p)
	for !d.vq.HasUsed() {
		d.wq.Wait(p)
	}
	d.vq.Harvest(p)
	d.Requests++
	d.requests.Inc()
	if st := d.host.Mem.U8(d.statusBuf); st != virtio.BlkStatusOK {
		return fmt.Errorf("virtioblk: request failed: status %d", st)
	}
	return nil
}

// ReadSector reads one 512-byte sector.
func (d *Device) ReadSector(p *sim.Proc, sector uint64) ([]byte, error) {
	return d.ReadSectors(p, sector, 1)
}

// ReadSectors reads count consecutive sectors in a single request.
func (d *Device) ReadSectors(p *sim.Proc, sector uint64, count int) ([]byte, error) {
	if count <= 0 || count > d.dataBufSectors {
		return nil, fmt.Errorf("virtioblk: count %d out of range [1,%d]", count, d.dataBufSectors)
	}
	if sector+uint64(count) > d.capacity {
		return nil, fmt.Errorf("virtioblk: sectors [%d,%d) beyond capacity %d", sector, sector+uint64(count), d.capacity)
	}
	n := count * virtio.BlkSectorSize
	d.host.SyscallEnter(p)
	defer d.host.SyscallExit(p)
	d.host.Mem.Write(d.hdrBuf, virtio.BlkReqHdr{Type: virtio.BlkTIn, Sector: sector}.Encode())
	err := d.submit(p, []virtio.BufSeg{
		{Addr: d.hdrBuf, Len: virtio.BlkReqHdrSize},
		{Addr: d.dataBuf, Len: n, DeviceWritten: true},
		{Addr: d.statusBuf, Len: 1, DeviceWritten: true},
	})
	if err != nil {
		return nil, err
	}
	d.host.Copy(p, n)
	return d.host.Mem.Read(d.dataBuf, n), nil
}

// WriteSector writes one 512-byte sector.
func (d *Device) WriteSector(p *sim.Proc, sector uint64, data []byte) error {
	return d.WriteSectors(p, sector, data)
}

// WriteSectors writes len(data)/512 consecutive sectors in a single
// request.
func (d *Device) WriteSectors(p *sim.Proc, sector uint64, data []byte) error {
	if len(data) == 0 || len(data)%virtio.BlkSectorSize != 0 {
		return fmt.Errorf("virtioblk: write length %d not a sector multiple", len(data))
	}
	count := len(data) / virtio.BlkSectorSize
	if count > d.dataBufSectors {
		return fmt.Errorf("virtioblk: %d sectors exceeds per-request limit %d", count, d.dataBufSectors)
	}
	if sector+uint64(count) > d.capacity {
		return fmt.Errorf("virtioblk: sectors [%d,%d) beyond capacity %d", sector, sector+uint64(count), d.capacity)
	}
	d.host.SyscallEnter(p)
	defer d.host.SyscallExit(p)
	d.host.Copy(p, len(data))
	d.host.Mem.Write(d.hdrBuf, virtio.BlkReqHdr{Type: virtio.BlkTOut, Sector: sector}.Encode())
	d.host.Mem.Write(d.dataBuf, data)
	return d.submit(p, []virtio.BufSeg{
		{Addr: d.hdrBuf, Len: virtio.BlkReqHdrSize},
		{Addr: d.dataBuf, Len: len(data)},
		{Addr: d.statusBuf, Len: 1, DeviceWritten: true},
	})
}

// Flush issues a VIRTIO_BLK_T_FLUSH barrier.
func (d *Device) Flush(p *sim.Proc) error {
	d.host.SyscallEnter(p)
	defer d.host.SyscallExit(p)
	d.host.Mem.Write(d.hdrBuf, virtio.BlkReqHdr{Type: virtio.BlkTFlush}.Encode())
	return d.submit(p, []virtio.BufSeg{
		{Addr: d.hdrBuf, Len: virtio.BlkReqHdrSize},
		{Addr: d.statusBuf, Len: 1, DeviceWritten: true},
	})
}
