package virtioblk_test

import (
	"bytes"
	"testing"

	"fpgavirtio/internal/drivers/virtioblk"
	"fpgavirtio/internal/drivers/virtiopci"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/virtio"
)

// TestRingSetupTable drives the transport's queue setup directly and
// checks the negotiated ring geometry against the device's limits: the
// driver's request is honoured up to queue_size_max (256), clamped
// above it, and a queue index the device does not expose reads
// queue_size == 0 and fails setup.
func TestRingSetupTable(t *testing.T) {
	cases := []struct {
		name     string
		index    int
		req      int
		wantSize int
		wantErr  bool
	}{
		{"small power of two", 0, 8, 8, false},
		{"driver default", 0, 128, 128, false},
		{"device maximum", 0, 256, 256, false},
		{"clamped to device max", 0, 1024, 256, false},
		{"missing queue", 1, 64, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, h, _ := testbed(t, 32)
			run(t, s, func(p *sim.Proc) {
				infos := h.RC.Enumerate(p)
				tr, err := virtiopci.Probe(p, h, infos[0])
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := tr.Negotiate(p, 0); err != nil {
					t.Error(err)
					return
				}
				vq, err := tr.SetupQueue(p, tc.index, tc.req)
				if tc.wantErr {
					if err == nil {
						t.Errorf("SetupQueue(%d, %d) succeeded, want error", tc.index, tc.req)
					}
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				if vq.Size() != tc.wantSize {
					t.Errorf("ring size = %d, want %d", vq.Size(), tc.wantSize)
				}
				if vq.NumFree() != tc.wantSize {
					t.Errorf("fresh ring NumFree = %d, want %d", vq.NumFree(), tc.wantSize)
				}
				if vq.Packed() {
					t.Error("split-ring negotiation produced a packed ring")
				}
				// The ring holds exactly Size descriptors: filling it
				// succeeds, one more chain is refused.
				buf := tr.AllocBuffer(64)
				for i := 0; i < tc.wantSize; i++ {
					if err := vq.AddChain(p, []virtio.BufSeg{{Addr: buf, Len: 64}}, i); err != nil {
						t.Errorf("AddChain %d/%d: %v", i, tc.wantSize, err)
						return
					}
				}
				if err := vq.AddChain(p, []virtio.BufSeg{{Addr: buf, Len: 64}}, -1); err == nil {
					t.Error("AddChain on a full ring succeeded")
				}
			})
		})
	}
}

// TestResetWalkTable walks the VirtIO 1.2 §3.1 status sequence through
// the public transport API and checks, at every stage, that the status
// the driver reads back and the status latched device-side agree on
// the expected bit pattern — including the walk back to 0 on reset and
// a second full bring-up after it.
func TestResetWalkTable(t *testing.T) {
	s, h, dev := testbed(t, 32)
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		tr, err := virtiopci.Probe(p, h, infos[0])
		if err != nil {
			t.Error(err)
			return
		}
		const negotiated = virtio.StatusAcknowledge | virtio.StatusDriver | virtio.StatusFeaturesOK
		steps := []struct {
			name string
			do   func() error
			want byte
		}{
			{"fresh device", func() error { return nil }, 0},
			{"negotiate", func() error { _, err := tr.Negotiate(p, 0); return err }, negotiated},
			{"driver-ok", func() error { tr.DriverOK(p); return nil }, negotiated | virtio.StatusDriverOK},
			{"reset", func() error { tr.Reset(p); return nil }, 0},
			{"re-negotiate", func() error { _, err := tr.Negotiate(p, 0); return err }, negotiated},
			{"re-driver-ok", func() error { tr.DriverOK(p); return nil }, negotiated | virtio.StatusDriverOK},
		}
		for _, st := range steps {
			if err := st.do(); err != nil {
				t.Errorf("%s: %v", st.name, err)
				return
			}
			if got := tr.ReadStatus(p); got != st.want {
				t.Errorf("%s: driver reads status %#x, want %#x", st.name, got, st.want)
			}
			if got := dev.Controller().Status(); got != st.want {
				t.Errorf("%s: device latched status %#x, want %#x", st.name, got, st.want)
			}
		}
	})
}

// TestResetWalkThenIO proves the reset walk leaves the device fully
// reusable: after a completed bring-up and a reset, a second driver
// probe negotiates fresh rings and moves data intact.
func TestResetWalkThenIO(t *testing.T) {
	s, h, _ := testbed(t, 32)
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		d, err := virtioblk.Probe(p, h, infos[0])
		if err != nil {
			t.Error(err)
			return
		}
		data := make([]byte, virtio.BlkSectorSize)
		sim.NewRNG(3).Bytes(data)
		if err := d.WriteSector(p, 7, data); err != nil {
			t.Error(err)
			return
		}
		// Second probe resets the device (Negotiate starts with status 0)
		// and rebuilds the rings from scratch.
		d2, err := virtioblk.Probe(p, h, infos[0])
		if err != nil {
			t.Errorf("re-probe after reset: %v", err)
			return
		}
		got, err := d2.ReadSector(p, 7)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("data written before reset not readable after re-probe")
		}
	})
}

// TestIORoundTripTable sweeps request shapes through one bound device:
// every (sector, count) cell writes fresh random data and reads it
// back through a separate request.
func TestIORoundTripTable(t *testing.T) {
	cases := []struct {
		name   string
		sector uint64
		count  int
	}{
		{"first sector", 0, 1},
		{"middle single", 17, 1},
		{"two sectors", 5, 2},
		{"half request limit", 20, 4},
		{"full request limit", 8, virtioblk.MaxSectorsPerRequest},
		{"tail of disk", 32 - uint64(virtioblk.MaxSectorsPerRequest), virtioblk.MaxSectorsPerRequest},
	}
	s, h, _ := testbed(t, 32)
	run(t, s, func(p *sim.Proc) {
		infos := h.RC.Enumerate(p)
		d, err := virtioblk.Probe(p, h, infos[0])
		if err != nil {
			t.Error(err)
			return
		}
		rng := sim.NewRNG(11)
		for _, tc := range cases {
			data := make([]byte, tc.count*virtio.BlkSectorSize)
			rng.Bytes(data)
			if err := d.WriteSectors(p, tc.sector, data); err != nil {
				t.Errorf("%s: write: %v", tc.name, err)
				continue
			}
			got, err := d.ReadSectors(p, tc.sector, tc.count)
			if err != nil {
				t.Errorf("%s: read: %v", tc.name, err)
				continue
			}
			if !bytes.Equal(got, data) {
				t.Errorf("%s: round-trip mismatch", tc.name)
			}
		}
	})
}
