package fpga

import (
	"testing"
	"testing/quick"

	"fpgavirtio/internal/sim"
)

func TestClockPeriod(t *testing.T) {
	clk := Default125MHz()
	if clk.Period() != sim.Ns(8) {
		t.Fatalf("125MHz period = %v, want 8ns", clk.Period())
	}
	if NewClock(250).Period() != sim.Ns(4) {
		t.Fatal("250MHz period wrong")
	}
	if clk.Cycles(10) != sim.Ns(80) {
		t.Fatalf("Cycles(10) = %v", clk.Cycles(10))
	}
}

func TestCyclesFor(t *testing.T) {
	clk := Default125MHz()
	cases := []struct{ n, w, want int }{
		{0, 16, 0}, {1, 16, 1}, {16, 16, 1}, {17, 16, 2}, {1024, 16, 64},
	}
	for _, c := range cases {
		if got := clk.CyclesFor(c.n, c.w); got != c.want {
			t.Errorf("CyclesFor(%d,%d) = %d, want %d", c.n, c.w, got, c.want)
		}
	}
}

func TestBRAM(t *testing.T) {
	b := NewBRAM("bram0", 4096)
	b.PutU32(0, 0x12345678)
	if b.U32(0) != 0x12345678 {
		t.Fatal("BRAM round trip failed")
	}
	if b.Name() != "bram0" {
		t.Fatal("name lost")
	}
}

func TestPerfCounterQuantization(t *testing.T) {
	clk := Default125MHz()
	pc := NewPerfCounter(clk, "dma")
	pc.Begin(sim.Time(0))
	d := pc.End(sim.Time(sim.Ns(100))) // 100ns -> 96ns (12 cycles)
	if d != sim.Ns(96) {
		t.Fatalf("quantized = %v, want 96ns", d)
	}
	if len(pc.Samples()) != 1 {
		t.Fatal("sample not recorded")
	}
}

func TestPerfCounterQuantizeProperty(t *testing.T) {
	clk := Default125MHz()
	f := func(ns uint16) bool {
		pc := NewPerfCounter(clk, "x")
		pc.Begin(0)
		d := pc.End(sim.Time(sim.Ns(int64(ns))))
		raw := sim.Ns(int64(ns))
		return d <= raw && raw-d < sim.Ns(8) && d%sim.Ns(8) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerfCounterPauseAccumulates(t *testing.T) {
	clk := Default125MHz()
	pc := NewPerfCounter(clk, "dma")
	pc.Begin(0)
	pc.Pause(sim.Time(sim.Ns(80))) // 10 cycles
	pc.Begin(sim.Time(sim.Ns(1000)))
	d := pc.End(sim.Time(sim.Ns(1080))) // +10 cycles
	if d != sim.Ns(160) {
		t.Fatalf("accumulated = %v, want 160ns", d)
	}
}

func TestPerfCounterMisusePanics(t *testing.T) {
	clk := Default125MHz()
	pc := NewPerfCounter(clk, "x")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("End without Begin should panic")
			}
		}()
		pc.End(0)
	}()
	pc.Begin(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Begin should panic")
			}
		}()
		pc.Begin(0)
	}()
}

func TestPerfCounterTakeLastAndReset(t *testing.T) {
	clk := Default125MHz()
	pc := NewPerfCounter(clk, "x")
	for i := 1; i <= 3; i++ {
		pc.Begin(0)
		pc.End(sim.Time(sim.Ns(int64(8 * i))))
	}
	d, ok := pc.TakeLast()
	if !ok || d != sim.Ns(24) {
		t.Fatalf("TakeLast = %v,%v", d, ok)
	}
	if len(pc.Samples()) != 2 {
		t.Fatal("TakeLast did not pop")
	}
	pc.Reset()
	if len(pc.Samples()) != 0 {
		t.Fatal("Reset did not clear")
	}
	if _, ok := pc.TakeLast(); ok {
		t.Fatal("TakeLast on empty should report !ok")
	}
}

func TestRegFile(t *testing.T) {
	r := NewRegFile()
	r.Set(0x10, 7)
	if r.Read(0x10) != 7 {
		t.Fatal("Set/Read failed")
	}
	var hooked uint32
	r.OnWrite(0x20, func(v uint32) { hooked = v })
	r.Write(0x20, 99)
	if hooked != 99 || r.Get(0x20) != 99 {
		t.Fatal("write hook or storage failed")
	}
	calls := 0
	r.OnRead(0x30, func() uint32 { calls++; return 42 })
	if r.Read(0x30) != 42 || calls != 1 {
		t.Fatal("read hook failed")
	}
}
