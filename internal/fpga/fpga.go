// Package fpga models the on-card fabric the paper's designs are built
// from: a fabric clock (125 MHz in the testbed), block RAM, and the
// hardware performance counters used to separate hardware from software
// latency in Figures 4 and 5.
package fpga

import (
	"fmt"

	"fpgavirtio/internal/mem"
	"fpgavirtio/internal/sim"
)

// Clock is a fabric clock domain. All hardware costs are expressed in
// cycles of a Clock; the paper's designs run at 125 MHz (8 ns period).
type Clock struct {
	period sim.Duration
}

// NewClock returns a clock with the given frequency in MHz.
func NewClock(mhz int) *Clock {
	if mhz <= 0 {
		panic("fpga: non-positive clock frequency")
	}
	return &Clock{period: sim.Duration(1_000_000/mhz) * sim.Picosecond}
}

// Default125MHz is the testbed fabric clock.
func Default125MHz() *Clock { return NewClock(125) }

// Period returns one cycle's duration.
func (c *Clock) Period() sim.Duration { return c.period }

// Cycles converts a cycle count to a duration.
func (c *Clock) Cycles(n int) sim.Duration { return sim.Duration(n) * c.period }

// CyclesFor returns the number of cycles (rounded up) needed to move n
// bytes through a datapath of width bytes per cycle.
func (c *Clock) CyclesFor(n, widthBytes int) int {
	if widthBytes <= 0 {
		panic("fpga: non-positive datapath width")
	}
	return (n + widthBytes - 1) / widthBytes
}

// String describes the clock.
func (c *Clock) String() string {
	return fmt.Sprintf("%.0fMHz", 1e6/float64(c.period/sim.Picosecond))
}

// BRAM is on-card memory (block RAM or, for larger regions, the
// behavioural equivalent of board DRAM). Timing is charged by the
// engines that access it, not here.
type BRAM struct {
	*mem.Memory
	name string
}

// NewBRAM returns a named on-card memory of the given size.
func NewBRAM(name string, size int) *BRAM {
	return &BRAM{Memory: mem.New(size), name: name}
}

// Name reports the BRAM instance name.
func (b *BRAM) Name() string { return b.name }

// PerfCounter is a free-running hardware latency counter: Begin latches
// the current time, End produces an interval quantized to the fabric
// clock period — the 8 ns resolution the paper reports for its
// hardware measurements. Samples accumulate for later retrieval.
type PerfCounter struct {
	clk     *Clock
	name    string
	started bool
	begin   sim.Time
	samples []sim.Duration
	// accumulating mode: sub-intervals summed into one sample
	accum sim.Duration
}

// NewPerfCounter returns an idle counter on clk.
func NewPerfCounter(clk *Clock, name string) *PerfCounter {
	return &PerfCounter{clk: clk, name: name}
}

// Name reports the counter name.
func (pc *PerfCounter) Name() string { return pc.name }

// Begin latches the interval start. Beginning twice without End panics:
// in hardware that is a one-bit state machine and cannot double-start.
func (pc *PerfCounter) Begin(now sim.Time) {
	if pc.started {
		panic("fpga: perf counter " + pc.name + " already started")
	}
	pc.started = true
	pc.begin = now
}

// End closes the interval opened by Begin, adding a quantized sample.
func (pc *PerfCounter) End(now sim.Time) sim.Duration {
	if !pc.started {
		panic("fpga: perf counter " + pc.name + " not started")
	}
	pc.started = false
	d := pc.quantize(now.Sub(pc.begin)) + pc.accum
	pc.accum = 0
	pc.samples = append(pc.samples, d)
	return d
}

// Pause closes the current sub-interval, accumulating it into the
// pending sample without emitting it; a later Begin/End continues the
// same sample. This models gating the counter while the engine waits on
// work that should not be attributed to hardware.
func (pc *PerfCounter) Pause(now sim.Time) {
	if !pc.started {
		panic("fpga: perf counter " + pc.name + " not started")
	}
	pc.started = false
	pc.accum += pc.quantize(now.Sub(pc.begin))
}

func (pc *PerfCounter) quantize(d sim.Duration) sim.Duration {
	step := pc.clk.Period()
	return d - d%step
}

// Samples returns the recorded intervals (live slice; callers must not
// modify it).
func (pc *PerfCounter) Samples() []sim.Duration { return pc.samples }

// Reset discards recorded samples and accumulated sub-intervals. An
// interval that is currently open stays open (the hardware may be mid-
// operation); its eventual End lands in the fresh sample list.
func (pc *PerfCounter) Reset() {
	pc.samples = pc.samples[:0]
	pc.accum = 0
}

// TakeLast removes and returns the most recent sample; ok is false if
// none exist. Experiment harnesses use this to pair each operation with
// its hardware time.
func (pc *PerfCounter) TakeLast() (sim.Duration, bool) {
	if len(pc.samples) == 0 {
		return 0, false
	}
	d := pc.samples[len(pc.samples)-1]
	pc.samples = pc.samples[:len(pc.samples)-1]
	return d, true
}

// RegFile is a small helper for 32-bit device register blocks: storage
// plus optional per-offset write hooks, used by the device models to
// implement their BAR handlers.
type RegFile struct {
	regs    map[uint64]uint32
	onWrite map[uint64]func(v uint32)
	onRead  map[uint64]func() uint32
}

// NewRegFile returns an empty register file.
func NewRegFile() *RegFile {
	return &RegFile{
		regs:    make(map[uint64]uint32),
		onWrite: make(map[uint64]func(v uint32)),
		onRead:  make(map[uint64]func() uint32),
	}
}

// Set stores a register value without invoking hooks.
func (r *RegFile) Set(off uint64, v uint32) { r.regs[off] = v }

// Get loads a register value without invoking hooks.
func (r *RegFile) Get(off uint64) uint32 { return r.regs[off] }

// OnWrite installs a side-effect hook for writes to off.
func (r *RegFile) OnWrite(off uint64, fn func(v uint32)) { r.onWrite[off] = fn }

// OnRead installs a compute hook for reads of off (overrides storage).
func (r *RegFile) OnRead(off uint64, fn func() uint32) { r.onRead[off] = fn }

// Read services a bus read of a 32-bit register.
func (r *RegFile) Read(off uint64) uint32 {
	if fn, ok := r.onRead[off]; ok {
		return fn()
	}
	return r.regs[off]
}

// Write services a bus write of a 32-bit register.
func (r *RegFile) Write(off uint64, v uint32) {
	r.regs[off] = v
	if fn, ok := r.onWrite[off]; ok {
		fn(v)
	}
}
