package fpgavirtio

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpgavirtio/internal/sim"
)

// The calendar event queue in internal/sim has a container/heap twin
// behind the `simrefqueue` build tag. Both must produce byte-identical
// runs: same RTT samples, same metric snapshots, same event traces —
// the trace is where the (at, seq) tie-break order is directly
// observable. This test hashes all three into one fingerprint and
// compares it against the committed golden, so
//
//	go test .                  // calendar queue
//	go test -tags simrefqueue .  // reference heap
//
// must both match the same committed hash. Regenerate with
//
//	go test -run TestReplayFingerprint -update .
//
// (only under the default build — the golden is defined as the calendar
// queue's output) after any intentional model change.
var updateFingerprint = flag.Bool("update", false, "rewrite testdata goldens")

const fingerprintFile = "testdata/replay_fingerprint.txt"

func replayFingerprint(t *testing.T) string {
	t.Helper()
	h := sha256.New()

	// Arm 1: traced VirtIO-net pings. The trace exposes dispatch order
	// event by event.
	ns, err := OpenNet(NetConfig{Config: Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	tr := &sim.RecordingTracer{}
	ns.s.SetTracer(tr)
	buf := make([]byte, 128)
	for i := 0; i < 40; i++ {
		s, err := ns.PingDetailed(buf)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "net %d %v %v %v %v\n", i, s.Total, s.Hardware, s.RespGen, s.Software)
	}
	ns.s.SetTracer(nil)
	for _, r := range tr.Records {
		fmt.Fprintf(h, "ev %d %s\n", int64(r.At), r.Name)
	}
	for _, m := range ns.Registry().Snapshot() {
		fmt.Fprintf(h, "m %s %s %v %d %v %v\n", m.Name, m.Type, m.Value, m.Count, m.Sum, m.Buckets)
	}

	// Arm 2: vendor-path round trips, untraced, with metric snapshot.
	xs, err := OpenXDMA(XDMAConfig{Config: Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	xbuf := make([]byte, 256)
	for i := 0; i < 40; i++ {
		s, err := xs.RoundTripDetailed(xbuf)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "xdma %d %v %v %v %v\n", i, s.Total, s.Hardware, s.RespGen, s.Software)
	}
	for _, m := range xs.Registry().Snapshot() {
		fmt.Fprintf(h, "m %s %s %v %d %v %v\n", m.Name, m.Type, m.Value, m.Count, m.Sum, m.Buckets)
	}

	// Arm 3: poll-mode datapath — a different event population (spin
	// loops, no IRQ cascade) through the same queue.
	ps, err := OpenNet(NetConfig{Config: Config{Seed: 7, PollMode: true}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s, err := ps.PingDetailed(buf)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "poll %d %v %v %v %v\n", i, s.Total, s.Hardware, s.RespGen, s.Software)
	}

	return hex.EncodeToString(h.Sum(nil))
}

// TestReplayFingerprint pins the simulation's bit-level output against
// the committed golden hash under whichever queue implementation this
// test binary was built with.
func TestReplayFingerprint(t *testing.T) {
	got := replayFingerprint(t)
	if *updateFingerprint {
		if err := os.MkdirAll(filepath.Dir(fingerprintFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fingerprintFile, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", fingerprintFile)
		return
	}
	want, err := os.ReadFile(fingerprintFile)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if got != strings.TrimSpace(string(want)) {
		t.Fatalf("replay fingerprint diverged from %s:\n got  %s\n want %s\n"+
			"If a model change is intentional, regenerate with: go test -run TestReplayFingerprint -update .\n"+
			"If this build used -tags simrefqueue, the calendar queue and the reference heap disagree — a determinism bug.",
			fingerprintFile, got, strings.TrimSpace(string(want)))
	}
}
