package fpgavirtio

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// crossCheck asserts the span-derived attribution agrees with the
// counter-based RTTSample decomposition. The FPGA counters quantize to
// 8 ns intervals (125 MHz) and the app clock to 1 ns, so per round the
// two views may differ by a few tens of nanoseconds; 100 ns per round
// is a comfortable bound that still catches any structural mismatch.
func crossCheck(t *testing.T, r BreakdownReport) {
	t.Helper()
	if r.OpenSpans != 0 {
		t.Errorf("%s/%dB: %d spans left open", r.Driver, r.PayloadBytes, r.OpenSpans)
	}
	var total, hw, rg, sw time.Duration
	for _, s := range r.Samples {
		total += s.Total
		hw += s.Hardware
		rg += s.RespGen
		sw += s.Software
	}
	tol := time.Duration(r.Rounds) * 100 * time.Nanosecond
	check := func(name string, spanV, counterV time.Duration) {
		d := spanV - counterV
		if d < 0 {
			d = -d
		}
		if d > tol {
			t.Errorf("%s/%dB %s: spans say %v, counters say %v (|diff| %v > tol %v)",
				r.Driver, r.PayloadBytes, name, spanV, counterV, d, tol)
		}
	}
	check("total", r.Total, total)
	check("hardware", r.Hardware, hw)
	check("respgen", r.RespGen, rg)
	check("software", r.Software, sw)
	if r.Total <= 0 || r.Hardware <= 0 || r.Software <= 0 {
		t.Errorf("%s/%dB: non-positive attribution: total %v hw %v sw %v",
			r.Driver, r.PayloadBytes, r.Total, r.Hardware, r.Software)
	}
	crossCheckCritical(t, r)
}

// crossCheckCritical pins the structural relation between the two
// span-derived views: the critical path partitions the app time exactly
// (CriticalTotal == Total, layer sums with no residue), and no layer
// can be on the critical path longer than it was occupied at all.
func crossCheckCritical(t *testing.T, r BreakdownReport) {
	t.Helper()
	if r.CriticalTotal != r.Total {
		t.Errorf("%s/%dB: critical total %v != app total %v (must partition exactly)",
			r.Driver, r.PayloadBytes, r.CriticalTotal, r.Total)
	}
	var sum time.Duration
	occupancy := map[string]time.Duration{}
	for _, l := range r.Layers {
		occupancy[l.Layer] = l.Time
	}
	for _, l := range r.Critical {
		sum += l.Time
		// Both views convert ps to ns independently (occupancy truncates
		// per layer, the critical fold telescopes), so the bound holds
		// to within 2 ns of rounding residue.
		if occ, ok := occupancy[l.Layer]; !ok {
			t.Errorf("%s/%dB: critical layer %q has no occupancy row", r.Driver, r.PayloadBytes, l.Layer)
		} else if l.Time > occ+2*time.Nanosecond {
			t.Errorf("%s/%dB: layer %q critical %v exceeds occupancy %v",
				r.Driver, r.PayloadBytes, l.Layer, l.Time, occ)
		}
	}
	if sum != r.CriticalTotal {
		t.Errorf("%s/%dB: critical layers sum to %v, want %v", r.Driver, r.PayloadBytes, sum, r.CriticalTotal)
	}
	if len(r.Critical) < 4 {
		t.Errorf("%s/%dB: critical path touches only %d layers", r.Driver, r.PayloadBytes, len(r.Critical))
	}
}

func TestBreakdownCrossCheckVirtIO(t *testing.T) {
	for _, payload := range []int{64, 1024} {
		ns, err := OpenNet(NetConfig{Config: Config{Seed: 7}})
		if err != nil {
			t.Fatal(err)
		}
		r, err := ns.Breakdown(20, payload)
		if err != nil {
			t.Fatal(err)
		}
		if r.Driver != "virtio-net" || r.Rounds != 20 || r.PayloadBytes != payload {
			t.Fatalf("report header = %+v", r)
		}
		if r.RespGen <= 0 {
			t.Errorf("virtio respgen share = %v, want > 0", r.RespGen)
		}
		crossCheck(t, r)
	}
}

func TestBreakdownCrossCheckXDMA(t *testing.T) {
	for _, nbytes := range []int{64, 1024} {
		xs, err := OpenXDMA(XDMAConfig{Config: Config{Seed: 7}})
		if err != nil {
			t.Fatal(err)
		}
		r, err := xs.Breakdown(20, nbytes)
		if err != nil {
			t.Fatal(err)
		}
		if r.Driver != "xdma" {
			t.Fatalf("driver = %q", r.Driver)
		}
		if r.RespGen != 0 {
			t.Errorf("xdma respgen share = %v, want 0", r.RespGen)
		}
		crossCheck(t, r)
	}
}

func TestBreakdownRejectsBadRounds(t *testing.T) {
	ns, err := OpenNet(NetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Breakdown(0, 64); err == nil {
		t.Fatal("Breakdown(0, ...) did not error")
	}
}

func TestTraceNetLayersAndChrome(t *testing.T) {
	tr, err := TraceNet(NetConfig{Config: Config{Seed: 1, Quiet: true}}, 256)
	if err != nil {
		t.Fatal(err)
	}
	if tr.DroppedEvents != 0 || tr.OpenSpans != 0 {
		t.Fatalf("dropped=%d open=%d, want clean capture", tr.DroppedEvents, tr.OpenSpans)
	}
	layers := tr.Layers()
	if len(layers) < 6 {
		t.Fatalf("virtio trace has %d layers (%v), want >= 6", len(layers), layers)
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output not JSON: %v", err)
	}
	pids := make(map[float64]bool)
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			pids[ev["pid"].(float64)] = true
		}
	}
	if len(pids) < 6 {
		t.Fatalf("chrome trace has %d layer tracks, want >= 6", len(pids))
	}

	filtered := tr.FilterLayers("driver", "irq")
	for _, sp := range filtered.Spans {
		if sp.Layer != "driver" && sp.Layer != "irq" {
			t.Fatalf("FilterLayers leaked layer %q", sp.Layer)
		}
	}
	if len(filtered.Spans) == 0 {
		t.Fatal("FilterLayers(driver, irq) kept no spans")
	}
	if len(filtered.Events) != len(tr.Events) {
		t.Fatal("FilterLayers dropped flat events")
	}
	got := strings.Join(filtered.Layers(), ",")
	if got != "driver,irq" {
		t.Fatalf("filtered layers = %q", got)
	}
}

func TestTraceXDMAHasDMAEngine(t *testing.T) {
	tr, err := TraceXDMA(XDMAConfig{Config: Config{Seed: 1, Quiet: true}}, 310)
	if err != nil {
		t.Fatal(err)
	}
	layers := tr.Layers()
	has := func(l string) bool {
		for _, x := range layers {
			if x == l {
				return true
			}
		}
		return false
	}
	if !has("dma-engine") || !has("app") || !has("driver") {
		t.Fatalf("xdma trace layers = %v", layers)
	}
	if has("virtio-device") {
		t.Fatalf("xdma trace contains virtio-device spans: %v", layers)
	}
}
