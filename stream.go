package fpgavirtio

import (
	"fmt"
	"time"

	"fpgavirtio/internal/drivers/xdmadrv"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
	"fpgavirtio/internal/virtio"
)

// StreamConfig drives a fixed packet count at an offered rate through a
// configurable window of in-flight requests. Window 1 degenerates to
// the latency experiment: the engine then executes exactly the same
// per-packet sequence as Ping/RoundTrip and reports per-packet samples.
type StreamConfig struct {
	// Packets is the total number of packets to stream (default 1000).
	Packets int
	// PayloadSize is the UDP payload (VirtIO) or transfer size (XDMA)
	// in bytes (default 64).
	PayloadSize int
	// Window is the number of requests kept in flight (default 1).
	Window int
	// RatePPS is the offered rate in packets per second; 0 streams
	// closed-loop as fast as the window allows.
	RatePPS float64
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Packets == 0 {
		c.Packets = 1000
	}
	if c.PayloadSize == 0 {
		c.PayloadSize = 64
	}
	if c.Window == 0 {
		c.Window = 1
	}
	return c
}

func (c StreamConfig) validate() error {
	if c.Packets < 1 {
		return fmt.Errorf("fpgavirtio: stream packets must be >= 1, got %d", c.Packets)
	}
	if c.PayloadSize < 1 {
		return fmt.Errorf("fpgavirtio: stream payload must be >= 1 byte, got %d", c.PayloadSize)
	}
	if c.Window < 1 {
		return fmt.Errorf("fpgavirtio: stream window must be >= 1, got %d", c.Window)
	}
	if c.RatePPS < 0 {
		return fmt.Errorf("fpgavirtio: stream rate must be >= 0, got %g", c.RatePPS)
	}
	return nil
}

// StreamResult reports one streaming run. Rates are computed over the
// application-observed wall time from first send to last completion.
type StreamResult struct {
	Packets      int
	PayloadBytes int
	Window       int
	Elapsed      time.Duration
	// PPS is completed packets per second; GoodputBps counts payload
	// bits only (headers and ring metadata excluded).
	PPS        float64
	GoodputBps float64
	// Drops counts stack-level receive drops during the stream;
	// Backpressure counts sends that missed their offered-rate slot
	// because the window or the device held them back.
	Drops        int
	Backpressure int
	// OccupancyMax/OccupancyMean describe the in-flight request count
	// (peak, and time-weighted mean) over the stream.
	OccupancyMax  int
	OccupancyMean float64
	// Doorbells and Interrupts are the signalling totals the stream
	// generated (notify MMIO writes / engine starts, and MSI-X messages).
	Doorbells  int
	Interrupts int
	// RTT holds the per-packet decomposition when Window == 1.
	RTT []RTTSample
}

// occTracker accumulates the time-weighted in-flight request count.
type occTracker struct {
	last     sim.Time
	inflight int
	acc      int64 // in-flight · picoseconds
	max      int
}

func (o *occTracker) update(now sim.Time, delta int) {
	o.acc += int64(o.inflight) * int64(now.Sub(o.last))
	o.last = now
	o.inflight += delta
	if o.inflight > o.max {
		o.max = o.inflight
	}
}

func (o *occTracker) mean(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(o.acc) / float64(elapsed)
}

// pacer meters sends to the offered rate; it reports how often the
// sender fell behind its schedule.
type pacer struct {
	start    sim.Time
	interval sim.Duration
	missed   int
}

func newPacer(start sim.Time, ratePPS float64) *pacer {
	p := &pacer{start: start}
	if ratePPS > 0 {
		p.interval = sim.NsF(1e9 / ratePPS)
	}
	return p
}

// wait blocks until packet seq's slot. Returns immediately (counting a
// miss) when the slot already passed.
func (pc *pacer) wait(h interface {
	Nanosleep(p *sim.Proc, d sim.Duration)
}, p *sim.Proc, seq int) {
	if pc.interval == 0 {
		return
	}
	scheduled := pc.start.Add(sim.Duration(seq) * pc.interval)
	if now := p.Now(); now < scheduled {
		h.Nanosleep(p, scheduled.Sub(now))
	} else if seq > 0 {
		pc.missed++
	}
}

// publishStreamMetrics mirrors a stream result into the session's
// telemetry registry, alongside the per-layer instruments.
func publishStreamMetrics(reg *telemetry.Registry, res StreamResult) {
	reg.Counter(telemetry.MetricStreamPackets).Add(int64(res.Packets))
	reg.Counter(telemetry.MetricStreamBackpressure).Add(int64(res.Backpressure))
	reg.Counter(telemetry.MetricStreamDrops).Add(int64(res.Drops))
	reg.Gauge(telemetry.MetricStreamWindow).Set(float64(res.Window))
	reg.Gauge(telemetry.MetricStreamPPS).Set(res.PPS)
	reg.Gauge(telemetry.MetricStreamGoodputBps).Set(res.GoodputBps)
	reg.Gauge(telemetry.MetricStreamOccupancyMax).Set(float64(res.OccupancyMax))
	reg.Gauge(telemetry.MetricStreamOccupancyMean).Set(res.OccupancyMean)
	reg.Gauge(telemetry.MetricStreamDoorbells).Set(float64(res.Doorbells))
	reg.Gauge(telemetry.MetricStreamInterrupts).Set(float64(res.Interrupts))
}

// Stream drives cfg.Packets echo exchanges through the VirtIO path with
// cfg.Window requests in flight. Window 1 runs the exact latency-mode
// sequence per packet and fills StreamResult.RTT; larger windows stream
// closed-loop (or paced) and report aggregate throughput figures.
func (ns *NetSession) Stream(cfg StreamConfig) (StreamResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return StreamResult{}, err
	}
	res := StreamResult{Packets: cfg.Packets, PayloadBytes: cfg.PayloadSize, Window: cfg.Window}

	dropsBefore := ns.Registry().Counter(telemetry.MetricNetstackRxDropped).Value()
	notifyBefore := ns.dev.Controller().NotifyCount()
	busBefore := ns.BusStats()

	var elapsed sim.Duration
	var occ occTracker
	var missed int
	err := ns.run(func(p *sim.Proc) error {
		payload := make([]byte, cfg.PayloadSize)
		pc := newPacer(p.Now(), cfg.RatePPS)
		if cfg.Window == 1 {
			res.RTT = make([]RTTSample, 0, cfg.Packets)
			t0 := ns.host.ClockGettime(p)
			for i := 0; i < cfg.Packets; i++ {
				pc.wait(ns.host, p, i)
				_, s, err := ns.pingOnce(p, payload)
				if err != nil {
					return err
				}
				res.RTT = append(res.RTT, s)
			}
			elapsed = ns.host.ClockGettime(p).Sub(t0)
			missed = pc.missed
			return nil
		}

		occ.last = p.Now()
		tagSeq := ns.drv.QueuePairs() > 1 && cfg.PayloadSize >= 4
		send := func(seq int) error {
			pc.wait(ns.host, p, seq)
			if tagSeq {
				// Distinguish packets across queue pairs, where
				// completion order is no longer FIFO.
				payload[0] = byte(seq)
				payload[1] = byte(seq >> 8)
				payload[2] = byte(seq >> 16)
				payload[3] = byte(seq >> 24)
			}
			if err := ns.sock.SendTo(p, fpgaIP, echoPort, payload); err != nil {
				return err
			}
			occ.update(p.Now(), +1)
			return nil
		}

		t0 := ns.host.ClockGettime(p)
		sent, recvd := 0, 0
		for sent < cfg.Window && sent < cfg.Packets {
			if err := send(sent); err != nil {
				return err
			}
			sent++
		}
		for recvd < cfg.Packets {
			if ns.sock.Pending() == 0 {
				// Nothing deliverable: make sure no packet is stuck
				// behind a deferred TxKickBatch doorbell before blocking.
				ns.drv.FlushTx(p)
			}
			if _, err := ns.recv(p); err != nil {
				return err
			}
			// Windowed streaming has no per-packet RTTSample, so the
			// flight recorder's fault trigger is checked per completion.
			ns.flight.noteFaults()
			occ.update(p.Now(), -1)
			recvd++
			if sent < cfg.Packets {
				if err := send(sent); err != nil {
					return err
				}
				sent++
			}
		}
		elapsed = ns.host.ClockGettime(p).Sub(t0)
		occ.update(p.Now(), 0)
		missed = pc.missed

		// Drain the per-queue hardware counters so later detailed pings
		// pair samples correctly (windowed runs leave many behind).
		for pair := 0; pair < ns.drv.QueuePairs(); pair++ {
			ns.dev.Controller().QueueCounter(virtio.NetRXQueue(pair)).Reset()
			ns.dev.Controller().QueueCounter(virtio.NetTXQueue(pair)).Reset()
		}
		ns.dev.RespGenCounter().Reset()
		return nil
	})
	if err != nil {
		return StreamResult{}, err
	}

	res.Elapsed = toStd(elapsed)
	secs := res.Elapsed.Seconds()
	if secs > 0 {
		res.PPS = float64(cfg.Packets) / secs
		res.GoodputBps = float64(cfg.Packets) * float64(cfg.PayloadSize) * 8 / secs
	}
	res.Drops = int(ns.Registry().Counter(telemetry.MetricNetstackRxDropped).Value() - dropsBefore)
	res.Backpressure = missed
	res.OccupancyMax = occ.max
	res.OccupancyMean = occ.mean(elapsed)
	if cfg.Window == 1 {
		res.OccupancyMax = 1
		res.OccupancyMean = 1
	}
	res.Doorbells = ns.dev.Controller().NotifyCount() - notifyBefore
	res.Interrupts = ns.BusStats().Interrupts - busBefore.Interrupts
	ns.publishStream(res)
	return res, nil
}

// publishStream mirrors a stream result into the telemetry registry.
func (ns *NetSession) publishStream(res StreamResult) {
	publishStreamMetrics(ns.Registry(), res)
}

// Stream drives cfg.Packets write/read exchanges through the XDMA path
// with cfg.Window transfers per descriptor list. Window 1 runs the
// exact latency-mode sequence per packet and fills StreamResult.RTT;
// larger windows pipeline H2C and C2H batches through double-buffered
// card regions, one chained descriptor list per direction per batch.
func (xs *XDMASession) Stream(cfg StreamConfig) (StreamResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return StreamResult{}, err
	}
	res := StreamResult{Packets: cfg.Packets, PayloadBytes: cfg.PayloadSize, Window: cfg.Window}

	regionBytes := cfg.Window * cfg.PayloadSize
	if cfg.Window > 1 {
		if cfg.Window > xdmadrv.MaxBatchDescs {
			return StreamResult{}, fmt.Errorf("fpgavirtio: stream window %d exceeds descriptor list limit %d", cfg.Window, xdmadrv.MaxBatchDescs)
		}
		if regionBytes > xdmadrv.MaxTransfer {
			return StreamResult{}, fmt.Errorf("fpgavirtio: stream batch of %d bytes exceeds bounce buffer", regionBytes)
		}
		if 2*regionBytes > xs.bramBytes {
			return StreamResult{}, fmt.Errorf("fpgavirtio: stream needs %d bytes of card memory, device has %d", 2*regionBytes, xs.bramBytes)
		}
	}

	h2cBefore := xs.drv.H2CStats()
	c2hBefore := xs.drv.C2HStats()
	busBefore := xs.BusStats()

	var elapsed sim.Duration
	var occ occTracker
	var missed int
	err := xs.run(func(p *sim.Proc) error {
		pc := newPacer(p.Now(), cfg.RatePPS)
		if cfg.Window == 1 {
			res.RTT = make([]RTTSample, 0, cfg.Packets)
			data := make([]byte, cfg.PayloadSize)
			t0 := xs.host.ClockGettime(p)
			for i := 0; i < cfg.Packets; i++ {
				pc.wait(xs.host, p, i)
				s, err := xs.roundTripOnce(p, data)
				if err != nil {
					return err
				}
				res.RTT = append(res.RTT, s)
			}
			elapsed = xs.host.ClockGettime(p).Sub(t0)
			missed = pc.missed
			return nil
		}

		occ.last = p.Now()
		batches := (cfg.Packets + cfg.Window - 1) / cfg.Window
		batchSize := func(b int) int {
			n := cfg.Packets - b*cfg.Window
			if n > cfg.Window {
				n = cfg.Window
			}
			return n
		}
		payloadFor := func(seq int) []byte {
			b := make([]byte, cfg.PayloadSize)
			for i := range b {
				b[i] = byte(seq*131 + i)
			}
			return b
		}
		regionBase := func(b int) uint64 { return uint64((b % 2) * regionBytes) }

		cond := sim.NewCond(xs.s, "xdma.stream")
		written, readDone := 0, 0
		var writerErr error

		t0 := xs.host.ClockGettime(p)
		xs.s.Go("stream-writer", func(wp *sim.Proc) {
			for b := 0; b < batches; b++ {
				// Double buffering: region b%2 is free once batch b-2
				// has been read back.
				for readDone < b-1 {
					cond.Wait(wp)
				}
				n := batchSize(b)
				pc.wait(xs.host, wp, b*cfg.Window)
				payloads := make([][]byte, n)
				for i := range payloads {
					payloads[i] = payloadFor(b*cfg.Window + i)
				}
				if err := xs.drv.WriteBatch(wp, regionBase(b), cfg.PayloadSize, payloads); err != nil {
					writerErr = err
					cond.Broadcast()
					return
				}
				occ.update(wp.Now(), n)
				written++
				cond.Broadcast()
			}
		})

		for b := 0; b < batches; b++ {
			for written <= b && writerErr == nil {
				cond.Wait(p)
			}
			if writerErr != nil {
				return writerErr
			}
			n := batchSize(b)
			bufs := make([][]byte, n)
			for i := range bufs {
				bufs[i] = make([]byte, cfg.PayloadSize)
			}
			if err := xs.drv.ReadBatch(p, regionBase(b), cfg.PayloadSize, bufs); err != nil {
				return err
			}
			for i, buf := range bufs {
				want := payloadFor(b*cfg.Window + i)
				for j := range buf {
					if buf[j] != want[j] {
						return fmt.Errorf("fpgavirtio: stream data mismatch in packet %d", b*cfg.Window+i)
					}
				}
			}
			// Batched streaming has no per-packet RTTSample, so the
			// flight recorder's fault trigger is checked per batch.
			xs.flight.noteFaults()
			occ.update(p.Now(), -n)
			readDone++
			cond.Broadcast()
		}
		elapsed = xs.host.ClockGettime(p).Sub(t0)
		occ.update(p.Now(), 0)
		missed = pc.missed

		// Drain the engine counters so later detailed round trips pair
		// samples correctly.
		xs.dev.H2CCounter().Reset()
		xs.dev.C2HCounter().Reset()
		return nil
	})
	if err != nil {
		return StreamResult{}, err
	}

	res.Elapsed = toStd(elapsed)
	secs := res.Elapsed.Seconds()
	if secs > 0 {
		res.PPS = float64(cfg.Packets) / secs
		res.GoodputBps = float64(cfg.Packets) * float64(cfg.PayloadSize) * 8 / secs
	}
	res.Backpressure = missed
	res.OccupancyMax = occ.max
	res.OccupancyMean = occ.mean(elapsed)
	if cfg.Window == 1 {
		res.OccupancyMax = 1
		res.OccupancyMean = 1
	}
	// Engine starts are the XDMA path's doorbell analogue.
	res.Doorbells = (xs.drv.H2CStats() - h2cBefore) + (xs.drv.C2HStats() - c2hBefore)
	res.Interrupts = xs.BusStats().Interrupts - busBefore.Interrupts
	publishStreamMetrics(xs.Registry(), res)
	return res, nil
}
