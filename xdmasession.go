package fpgavirtio

import (
	"bytes"
	"fmt"
	"time"

	"fpgavirtio/internal/drivers/xdmadrv"
	"fpgavirtio/internal/faults"
	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
	"fpgavirtio/internal/xdmaip"
)

// XDMAConfig configures a vendor-driver session. The zero value (plus
// Config) reproduces the paper's baseline: the XDMA example design
// (BRAM behind the DMA engine, no user logic), driven through the
// reference character-device driver.
type XDMAConfig struct {
	Config
	// WaitC2HReady switches from the paper's favourable back-to-back
	// setup to the realistic one (§IV-C): user logic raises a
	// data-ready interrupt after the H2C transfer, and the application
	// waits for it before issuing the read.
	WaitC2HReady bool
}

// XDMASession is a booted vendor-path testbed.
type XDMASession struct {
	s    *sim.Sim
	host *hostos.Host
	dev  *xdmaip.VendorDevice
	drv  *xdmadrv.Driver
	h2c  *hostos.File
	c2h  *hostos.File

	waitReady bool
	readyWQ   *hostos.WaitQueue
	dataReady bool
	bramBytes int
	faults    *faults.Injector
	flight    *flightWatch
}

// OpenXDMA boots the vendor baseline: attach the XDMA example design,
// enumerate, probe the reference driver, open both device nodes.
func OpenXDMA(cfg XDMAConfig) (*XDMASession, error) {
	plan, err := faults.Parse(cfg.Faults)
	if err != nil {
		return nil, err
	}
	s := sim.New()
	h := hostos.New(s, hostMemBytes, cfg.hostConfig(), cfg.Seed)
	// Arm fault injection before the device attaches so the endpoint
	// sees the injector from its first TLP. The injector draws from its
	// own fork of the seed, leaving the host-noise stream untouched.
	inj := faults.NewInjector(plan, sim.NewRNG(cfg.Seed).Fork("faults"), h.Metrics())
	h.RC.SetFaults(inj)
	devCfg := xdmaip.DefaultConfig()
	devCfg.Link = cfg.Link.config()
	devCfg.NotifyOnH2CComplete = cfg.WaitC2HReady
	dev := xdmaip.NewVendor(s, h.RC, "xdma0", devCfg)
	xs := &XDMASession{s: s, host: h, dev: dev, waitReady: cfg.WaitC2HReady, bramBytes: devCfg.BRAMBytes, faults: inj}
	// Always-on flight recorder: installed before boot so the ring
	// already holds context when the first trigger fires.
	xs.flight = newFlightWatch(s, inj, h.Metrics())

	var bootErr error
	booted := false
	s.Go("boot", func(p *sim.Proc) {
		defer s.Stop()
		infos := h.RC.Enumerate(p)
		if len(infos) != 1 {
			bootErr = fmt.Errorf("fpgavirtio: enumerated %d devices, want 1", len(infos))
			return
		}
		drv, err := xdmadrv.ProbeWithOptions(p, h, infos[0], "xdma0",
			xdmadrv.Options{PollMode: cfg.PollMode})
		if err != nil {
			bootErr = err
			return
		}
		xs.drv = drv
		if xs.h2c, err = h.Open("/dev/xdma0_h2c_0"); err != nil {
			bootErr = err
			return
		}
		if xs.c2h, err = h.Open("/dev/xdma0_c2h_0"); err != nil {
			bootErr = err
			return
		}
		if xs.waitReady {
			// Realistic mode: enable user interrupt 0 and register the
			// data-ready handler the stock example design lacks.
			xs.readyWQ = h.NewWaitQueue("xdma.ready")
			h.RC.MMIOWrite(p, infos[0].BAR[1]+xdmaip.IRQBlockBase+xdmaip.RegIRQUserEnable, 4, 1)
			h.RegisterIRQ(infos[0].EP, xdmaip.VecUserBase, func(ip *sim.Proc) {
				h.CPUWork(ip, 300*sim.Nanosecond)
				xs.dataReady = true
				xs.readyWQ.Wake()
			})
		}
		booted = true
	})
	if err := s.Run(); err != nil {
		return nil, err
	}
	if bootErr != nil {
		return nil, bootErr
	}
	if !booted {
		return nil, fmt.Errorf("fpgavirtio: xdma session did not boot")
	}
	return xs, nil
}

func (xs *XDMASession) run(fn func(p *sim.Proc) error) error {
	var opErr error
	done := false
	xs.s.Go("app", func(p *sim.Proc) {
		defer xs.s.Stop()
		opErr = fn(p)
		done = true
	})
	err := xs.s.Run()
	publishSimStats(xs.s, xs.host.Metrics())
	if err != nil {
		return err
	}
	if !done {
		return fmt.Errorf("fpgavirtio: operation did not complete")
	}
	return opErr
}

// RoundTrip writes data to the FPGA and reads the same number of bytes
// back, exactly the paper's XDMA test-program loop: back-to-back
// write() and read() with no device-side wait in between (the
// favourable setup of §IV-C), returning the total round-trip time.
func (xs *XDMASession) RoundTrip(data []byte) (time.Duration, error) {
	sample, err := xs.RoundTripDetailed(data)
	return sample.Total, err
}

// RoundTripDetailed is RoundTrip plus the hardware-counter
// decomposition (H2C engine time + C2H engine time).
func (xs *XDMASession) RoundTripDetailed(data []byte) (RTTSample, error) {
	var sample RTTSample
	err := xs.run(func(p *sim.Proc) error {
		var err error
		sample, err = xs.roundTripOnce(p, data)
		return err
	})
	return sample, err
}

// RoundTripSeries runs n timed write/read exchanges inside one
// application process, reusing a single read-back buffer — the sweep's
// hot loop, allocation-free in steady state. sample (optional)
// receives each round trip's index and decomposition as it completes.
func (xs *XDMASession) RoundTripSeries(data []byte, n int, sample func(i int, s RTTSample)) error {
	back := make([]byte, len(data))
	return xs.run(func(p *sim.Proc) error {
		for i := 0; i < n; i++ {
			s, err := xs.roundTripInto(p, data, back)
			if err != nil {
				return fmt.Errorf("fpgavirtio: round trip %d: %w", i, err)
			}
			if sample != nil {
				sample(i, s)
			}
		}
		return nil
	})
}

// roundTripOnce runs one timed write/read exchange inside an
// application process. Both the latency mode and the window=1 streaming
// mode execute exactly this sequence, which is what makes their
// per-packet results agree.
func (xs *XDMASession) roundTripOnce(p *sim.Proc, data []byte) (RTTSample, error) {
	return xs.roundTripInto(p, data, make([]byte, len(data)))
}

// roundTripInto is roundTripOnce with a caller-supplied read-back
// buffer (len(back) must equal len(data)). Under fault injection a
// round trip whose read-back does not match (a corrupted DMA read or a
// dropped DMA write) is retried end to end a bounded number of times —
// the application-level recovery the character-device interface forces,
// since the driver has no integrity information of its own.
func (xs *XDMASession) roundTripInto(p *sim.Proc, data, back []byte) (RTTSample, error) {
	sample, err := xs.roundTripAttempt(p, data, back)
	if xs.faults == nil || err == nil || err != errDataMismatch {
		if err == nil {
			xs.flight.note(sample)
		} else {
			xs.flight.noteFaults()
		}
		return sample, err
	}
	for retry := 0; retry < 2; retry++ {
		xs.drv.NoteDataRetry()
		sample, err = xs.roundTripAttempt(p, data, back)
		if err != errDataMismatch {
			if err == nil {
				xs.flight.note(sample)
			}
			return sample, err
		}
	}
	xs.flight.noteFaults()
	return sample, fmt.Errorf("fpgavirtio: xdma round-trip data mismatch persisted across retries")
}

// errDataMismatch flags a round trip whose read-back differed from the
// written data.
var errDataMismatch = fmt.Errorf("fpgavirtio: xdma round-trip data mismatch")

func (xs *XDMASession) roundTripAttempt(p *sim.Proc, data, back []byte) (RTTSample, error) {
	t0 := xs.host.ClockGettime(p)
	// The app span brackets the same instants as the RTT timer, so
	// span-derived totals agree with RTTSample.Total.
	sp := xs.s.BeginSpan(telemetry.LayerApp, "roundtrip")
	if xs.waitReady {
		xs.dataReady = false
	}
	if _, err := xs.h2c.Write(p, data); err != nil {
		sp.End()
		return RTTSample{}, err
	}
	if xs.waitReady {
		// poll(2) on the user-interrupt eventfd, then re-arm.
		xs.host.SyscallEnter(p)
		for !xs.dataReady {
			xs.readyWQ.Wait(p)
		}
		xs.host.SyscallExit(p)
	}
	if _, err := xs.c2h.Read(p, back); err != nil {
		sp.End()
		return RTTSample{}, err
	}
	t1 := xs.host.ClockGettime(p)
	sp.End()
	if !bytes.Equal(back, data) {
		return RTTSample{}, errDataMismatch
	}
	total := t1.Sub(t0)
	var hw sim.Duration
	if d, ok := xs.dev.H2CCounter().TakeLast(); ok {
		hw += d
	}
	if d, ok := xs.dev.C2HCounter().TakeLast(); ok {
		hw += d
	}
	return RTTSample{
		Total:    toStd(total),
		Hardware: toStd(hw),
		Software: toStd(total - hw),
	}, nil
}

// Registry returns the session's telemetry metrics registry, holding
// the per-layer instruments every subsystem registered at boot.
func (xs *XDMASession) Registry() *telemetry.Registry { return xs.host.Metrics() }

// FaultPlan reports the armed fault plan's canonical string (empty when
// no injection is armed).
func (xs *XDMASession) FaultPlan() string {
	if xs.faults == nil {
		return ""
	}
	return xs.faults.Plan().String()
}

// FaultEvents reports the total number of faults injected so far.
func (xs *XDMASession) FaultEvents() int64 { return xs.faults.Total() }

// FaultSummary reports per-class injected-fault counts (nil when no
// injection is armed).
func (xs *XDMASession) FaultSummary() map[string]int64 { return xs.faults.Summary() }

// FlightDumps returns the post-mortem snapshots the always-on flight
// recorder has taken so far (fault recoveries, new worst-case round
// trips), oldest trigger first.
func (xs *XDMASession) FlightDumps() []telemetry.FlightDump { return xs.flight.dumps() }

// CaptureCriticalPaths replays the deterministic round-trip series up
// to the largest target index and returns the critical-path analysis
// of each targeted exchange. It must be called on a freshly opened
// session with the same config as the measured run: sessions are pure
// functions of their seed, so round trip i here is the same round
// trip i the measurement saw.
func (xs *XDMASession) CaptureCriticalPaths(data []byte, targets []int) ([]CapturedPath, error) {
	if len(targets) == 0 {
		return nil, nil
	}
	want := make(map[int]bool, len(targets))
	maxT := 0
	for _, t := range targets {
		if t < 0 {
			return nil, fmt.Errorf("fpgavirtio: negative capture target %d", t)
		}
		want[t] = true
		if t > maxT {
			maxT = t
		}
	}
	rec := telemetry.NewRecorder(0)
	back := make([]byte, len(data))
	out := make([]CapturedPath, 0, len(targets))
	err := xs.run(func(p *sim.Proc) error {
		for i := 0; i <= maxT; i++ {
			capture := want[i]
			if capture {
				rec.Reset()
				xs.s.SetSpanSink(rec)
			}
			s, err := xs.roundTripInto(p, data, back)
			if capture {
				xs.s.SetSpanSink(nil)
			}
			if err != nil {
				return fmt.Errorf("fpgavirtio: replay round trip %d: %w", i, err)
			}
			if capture {
				cp, err := telemetry.AnalyzeCriticalPath(rec.Spans())
				if err != nil {
					return fmt.Errorf("fpgavirtio: replay round trip %d: %w", i, err)
				}
				out = append(out, CapturedPath{Index: i, RTT: sim.Ns(s.Total.Nanoseconds()), Path: cp})
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BusStats returns the FPGA endpoint's accumulated bus counters.
func (xs *XDMASession) BusStats() BusStats {
	st := xs.dev.EP().Stats()
	out := BusStats{DownBytes: st.DownBytes, UpBytes: st.UpBytes, Interrupts: st.Interrupts}
	for _, n := range st.DownTLPs {
		out.DownTLPs += n
	}
	for _, n := range st.UpTLPs {
		out.UpTLPs += n
	}
	return out
}
